// Scenario: recover the latent hierarchy of a web-style graph.
//
// Generates a planted multi-level block graph, summarizes it, and prints
// how the discovered supernode hierarchy lines up with the planted blocks —
// the paper's §I motivation (universities -> departments -> labs).
//
// Build & run:   ./build/examples/hierarchy_explorer
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "api/engine.hpp"
#include "gen/generators.hpp"

int main() {
  using namespace slugger;

  gen::PlantedHierarchyOptions opt;
  opt.branching = 4;
  opt.depth = 3;
  opt.leaf_size = 8;       // 64 leaf blocks of 8 nodes, 512 nodes total
  opt.leaf_density = 0.92;
  opt.pair_link_prob = 0.45;
  opt.pair_link_decay = 0.3;
  opt.noise_density = 1e-4;
  graph::Graph g = gen::PlantedHierarchy(opt, 99);
  std::printf("planted hierarchy: %u nodes, %llu edges, %u levels of "
              "nesting over blocks of %u\n\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              opt.depth, opt.leaf_size);

  EngineOptions options;
  options.config.iterations = 30;
  options.config.seed = 99;
  Engine engine(options);
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  if (!compressed.ok()) {
    std::fprintf(stderr, "summarize failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  const CompressedGraph& cg = compressed.value();
  std::printf("summary: %s\n", cg.stats().ToString().c_str());
  std::printf("relative size: %.3f\n\n",
              cg.stats().RelativeSize(g.num_edges()));

  // Depth histogram of the recovered forest (read-only introspection of
  // the internal layer through the facade's summary() accessor).
  const summary::HierarchyForest& forest = cg.summary().forest();
  std::map<uint32_t, uint32_t> depth_histogram;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    uint32_t depth = 0;
    for (SupernodeId s = u; forest.Parent(s) != kInvalidId;
         s = forest.Parent(s)) {
      ++depth;
    }
    ++depth_histogram[depth];
  }
  std::printf("leaf depth histogram (how deep each node sits in the "
              "recovered hierarchy):\n");
  for (const auto& [depth, count] : depth_histogram) {
    std::printf("  depth %2u: %5u nodes %s\n", depth, count,
                std::string(count * 60 / g.num_nodes(), '#').c_str());
  }

  // Block purity: for each non-trivial supernode, does it stay inside one
  // planted leaf block (or one planted super-block)?
  uint32_t pure_leaf_block = 0, pure_super_block = 0, mixed = 0;
  for (SupernodeId s = g.num_nodes(); s < forest.capacity(); ++s) {
    if (!forest.IsAlive(s)) continue;
    std::vector<NodeId> leaves;
    forest.ForEachLeaf(s, [&](NodeId u) { leaves.push_back(u); });
    auto block = [&](NodeId u, uint32_t span) { return u / span; };
    bool same_leaf_block = true, same_super_block = true;
    for (NodeId u : leaves) {
      same_leaf_block &= block(u, opt.leaf_size) == block(leaves[0], opt.leaf_size);
      same_super_block &=
          block(u, opt.leaf_size * opt.branching) ==
          block(leaves[0], opt.leaf_size * opt.branching);
    }
    if (same_leaf_block) {
      ++pure_leaf_block;
    } else if (same_super_block) {
      ++pure_super_block;
    } else {
      ++mixed;
    }
  }
  std::printf("\nsupernode alignment with the planted blocks:\n");
  std::printf("  within one leaf block:   %u\n", pure_leaf_block);
  std::printf("  within one super block:  %u\n", pure_super_block);
  std::printf("  spanning several blocks: %u\n", mixed);
  std::printf("\nHigh alignment means the lossless summary doubles as a "
              "hierarchy-discovery tool.\n");
  return 0;
}
