// Quickstart for the service-grade facade: build a slugger::Engine,
// summarize a synthetic graph with per-iteration progress reporting,
// inspect the resulting slugger::CompressedGraph, verify losslessness,
// and query neighbors directly on the compressed form.
//
// Build & run:   ./build/example_quickstart [leaf_size]
#include <cstdio>
#include <optional>

#include "api/engine.hpp"
#include "gen/generators.hpp"
#include "util/parse.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace slugger;

  // 1. Build an input graph (here: a planted hierarchy; swap in your own
  //    edges via graph::Graph::FromEdges or graph::LoadEdgeListText).
  gen::PlantedHierarchyOptions opt;
  opt.branching = 4;
  opt.depth = 3;
  opt.leaf_size = 12;
  if (argc > 1) {
    std::optional<uint32_t> parsed = ParseUint32(argv[1]);
    if (!parsed.has_value() || *parsed == 0) {
      std::fprintf(stderr, "invalid leaf size '%s'\nusage: %s [leaf_size >= 1]\n",
                   argv[1], argv[0]);
      return 2;
    }
    opt.leaf_size = *parsed;
  }
  opt.leaf_density = 0.9;
  opt.pair_link_prob = 0.5;
  opt.pair_link_decay = 0.08;
  opt.noise_density = 2e-5;
  graph::Graph g = gen::PlantedHierarchy(opt, /*seed=*/42);
  std::printf("input: %u nodes, %llu edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  // 2. One Engine per service, reused across runs; options are validated
  //    up front (an invalid config surfaces as InvalidArgument, never an
  //    assert). Settings follow the paper (T = 20).
  EngineOptions options;
  options.config.iterations = 20;
  options.config.seed = 42;
  Engine engine(options);

  // 3. Summarize with a per-iteration progress callback (a service would
  //    also pass RunOptions::cancel to stop long runs cooperatively).
  RunOptions run;
  run.progress = [](const ProgressEvent& e) {
    std::printf("  iteration %2u/%u: %llu merges, cost=%llu (%.2fs)\n",
                e.iteration, e.total_iterations,
                static_cast<unsigned long long>(e.merges),
                static_cast<unsigned long long>(e.p_count + e.n_count +
                                                e.h_count),
                e.elapsed_seconds);
  };
  WallTimer timer;
  StatusOr<CompressedGraph> compressed = engine.Summarize(g, run);
  if (!compressed.ok()) {
    std::fprintf(stderr, "summarize failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  const CompressedGraph& cg = compressed.value();
  std::printf("summarized in %.2fs\n", timer.Seconds());

  // 4. Inspect: encoding cost and composition (Eq. 1 / Eq. 10).
  std::printf("summary: %s\n", cg.stats().ToString().c_str());
  std::printf("relative size (cost/|E|): %.4f\n",
              cg.stats().RelativeSize(g.num_edges()));

  // 5. Losslessness is guaranteed; verify explicitly.
  Status ok = cg.Verify(g);
  std::printf("lossless check: %s\n", ok.ToString().c_str());

  // 6. Query straight off the compressed form (Algorithm 4). Concurrent
  //    readers each bring their own QueryScratch.
  QueryScratch scratch;
  NodeId probe = g.num_nodes() / 2;
  std::printf("node %u has %zu neighbors (via partial decompression)\n",
              probe, cg.Neighbors(probe, &scratch).size());
  return ok.ok() ? 0 : 1;
}
