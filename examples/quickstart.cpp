// Quickstart: summarize a synthetic graph, inspect the result, verify
// losslessness, and query neighbors directly on the summary.
//
// Build & run:   ./build/examples/quickstart [num_nodes]
#include <cstdio>
#include <cstdlib>

#include "core/slugger.hpp"
#include "gen/generators.hpp"
#include "summary/neighbor_query.hpp"
#include "summary/verify.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace slugger;

  // 1. Build an input graph (here: a planted hierarchy; swap in your own
  //    edges via graph::Graph::FromEdges or graph::LoadEdgeListText).
  gen::PlantedHierarchyOptions opt;
  opt.branching = 4;
  opt.depth = 3;
  opt.leaf_size = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 12;
  opt.leaf_density = 0.9;
  opt.pair_link_prob = 0.5;
  opt.pair_link_decay = 0.08;
  opt.noise_density = 2e-5;
  graph::Graph g = gen::PlantedHierarchy(opt, /*seed=*/42);
  std::printf("input: %u nodes, %llu edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  // 2. Summarize with the paper's default settings (T = 20).
  core::SluggerConfig config;
  config.iterations = 20;
  config.seed = 42;
  WallTimer timer;
  core::SluggerResult result = core::Summarize(g, config);
  std::printf("summarized in %.2fs (merge %.2fs, prune %.2fs), %llu merges\n",
              timer.Seconds(), result.merge_seconds, result.prune_seconds,
              static_cast<unsigned long long>(result.merges));

  // 3. Inspect: encoding cost and composition (Eq. 1 / Eq. 10).
  const summary::SummaryStats& stats = result.stats;
  std::printf("summary: %s\n", stats.ToString().c_str());
  std::printf("relative size (cost/|E|): %.4f\n",
              stats.RelativeSize(g.num_edges()));

  // 4. Losslessness is guaranteed; verify explicitly.
  Status ok = summary::VerifyLossless(g, result.summary);
  std::printf("lossless check: %s\n", ok.ToString().c_str());

  // 5. Query neighbors straight off the compressed form (Algorithm 4).
  summary::NeighborQuery query(result.summary);
  NodeId probe = g.num_nodes() / 2;
  std::printf("node %u has %zu neighbors (via partial decompression)\n",
              probe, query.Neighbors(probe).size());
  return ok.ok() ? 0 : 1;
}
