// Scenario: compress a social-style graph once, then serve neighbor and
// analytics queries directly from the compressed form (paper §VIII-B/C)
// without ever fully decompressing it — the compress-then-serve lifecycle
// the slugger::Engine / slugger::CompressedGraph facade is built around.
//
// Build & run:   ./build/examples/compress_and_query [num_nodes]
#include <cstdio>
#include <optional>

#include "algs/bfs.hpp"
#include "algs/pagerank.hpp"
#include "api/engine.hpp"
#include "gen/generators.hpp"
#include "util/parse.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace slugger;

  // A social network with duplication-driven redundancy — the kind of
  // input where hierarchical summarization pays off (PAPER.md; see the
  // README "Quickstart" and "API" sections for the serving pattern).
  NodeId nodes = 30000;
  if (argc > 1) {
    std::optional<uint32_t> parsed = ParseUint32(argv[1]);
    if (!parsed.has_value() || *parsed == 0) {
      std::fprintf(stderr, "invalid node count '%s'\nusage: %s [num_nodes >= 1]\n",
                   argv[1], argv[0]);
      return 2;
    }
    nodes = *parsed;
  }
  graph::Graph g = gen::DuplicationDivergence(nodes, 3, 0.45, 0.7, 2024);
  std::printf("social graph: %u nodes, %llu edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  EngineOptions options;
  options.config.iterations = 20;
  options.config.seed = 2024;
  Engine engine(options);
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  if (!compressed.ok()) {
    std::fprintf(stderr, "summarize failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  const CompressedGraph& cg = compressed.value();
  std::printf("compressed to %.1f%% of the input edge count "
              "(|P+|=%llu |P-|=%llu |H|=%llu)\n\n",
              100.0 * cg.stats().RelativeSize(g.num_edges()),
              static_cast<unsigned long long>(cg.stats().p_count),
              static_cast<unsigned long long>(cg.stats().n_count),
              static_cast<unsigned long long>(cg.stats().h_count));

  // 1. Point queries: neighbors straight off the compressed graph. One
  //    QueryScratch per serving thread makes this safe to run from a
  //    whole reader pool concurrently (see bench_query_throughput).
  QueryScratch scratch;
  Rng rng(7);
  WallTimer timer;
  const int kProbes = 100000;
  uint64_t total_degree = 0;
  for (int i = 0; i < kProbes; ++i) {
    total_degree +=
        cg.Neighbors(static_cast<NodeId>(rng.Below(g.num_nodes())), &scratch)
            .size();
  }
  std::printf("%d neighbor queries in %.1f ms (avg %.2f us, avg degree "
              "%.1f)\n",
              kProbes, timer.Millis(), timer.Micros() / kProbes,
              static_cast<double>(total_degree) / kProbes);

  // 2. Analytics on the compressed form: PageRank + BFS.
  timer.Restart();
  std::vector<double> rank = algs::PageRankOnSummary(cg.summary(), 0.85, 10);
  std::printf("PageRank (10 iters) on the summary: %.1f ms\n", timer.Millis());
  NodeId top = 0;
  for (NodeId u = 1; u < g.num_nodes(); ++u) {
    if (rank[u] > rank[top]) top = u;
  }
  timer.Restart();
  auto dist = algs::BfsOnSummary(cg.summary(), top);
  uint64_t reached = 0;
  for (uint32_t d : dist) reached += d != algs::kUnreached;
  std::printf("BFS from top-ranked node %u reaches %llu nodes (%.1f ms)\n",
              top, static_cast<unsigned long long>(reached), timer.Millis());

  // 3. Cross-check against the raw graph.
  std::vector<double> raw_rank = algs::PageRankOnGraph(g, 0.85, 10);
  double max_err = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_err = std::max(max_err, std::abs(raw_rank[u] - rank[u]));
  }
  std::printf("max |PageRank(summary) - PageRank(raw)| = %.2e\n", max_err);
  return max_err < 1e-9 ? 0 : 1;
}
