// Scenario: one graph outgrows a single summarizer, so the service
// shards it in-process. slugger::ShardedGraph partitions the graph,
// summarizes every shard concurrently, and serves batched queries
// through a scatter-gather coordinator whose answers are byte-identical
// to a single box. The walkthrough then exercises the operational
// moves a sharded deployment lives by:
//   1. a shard-local refresh — republish a better summary of one
//      shard's edge set, no coordination, answers invariant;
//   2. a skew check + Rebalance — re-partition and atomically install
//      a new epoch while queries keep flowing;
//   3. a degraded shard — lose one replica and watch the strict
//      coordinator fail the batch with a Status naming the casualty.
//
// Build & run:
//   ./build/example_shard_and_serve [num_nodes] [num_shards]
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "api/engine.hpp"
#include "api/sharded_graph.hpp"
#include "api/snapshot_registry.hpp"
#include "dist/coordinator.hpp"
#include "gen/generators.hpp"
#include "graph/partition_stream.hpp"
#include "obs/export.hpp"
#include "util/parse.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace slugger;

  NodeId nodes = 20000;
  uint32_t num_shards = 4;
  const char* names[] = {"num_nodes", "num_shards"};
  uint32_t* targets[] = {&nodes, &num_shards};
  for (int a = 1; a < argc && a <= 2; ++a) {
    std::optional<uint32_t> parsed = ParseUint32(argv[a]);
    if (!parsed.has_value() || *parsed == 0) {
      std::fprintf(stderr,
                   "invalid %s '%s'\n"
                   "usage: %s [num_nodes >= 1] [num_shards >= 1]\n",
                   names[a - 1], argv[a], argv[0]);
      return 2;
    }
    *targets[a - 1] = *parsed;
  }

  graph::Graph g = gen::BarabasiAlbert(nodes, 4, 0.3, /*seed=*/17);
  std::printf("serving graph: %u nodes, %llu edges, %u shards\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              num_shards);

  // Metrics: dump the process-wide registry as Prometheus text while
  // the walkthrough serves — shard builds, coordinator batches, and
  // snapshot publishes all land in it. The final dump at Stop() is
  // what a real deployment's /metrics endpoint would be scraped for.
  // (With -DSLUGGER_OBS=OFF the registry is empty and dumps are blank.)
  obs::PeriodicDumper metrics_dumper(
      [](const std::string& text) {
        std::printf("--- metrics dump (%zu bytes) ---\n%s--- end metrics ---\n",
                    text.size(), text.c_str());
      },
      /*interval_seconds=*/1.0);
  metrics_dumper.Start();

  // Build: partition + per-shard summarize + publish, one call.
  ShardedOptions options;
  options.partition.num_shards = num_shards;
  options.engine.config.iterations = 10;
  options.engine.config.seed = 17;
  WallTimer build_timer;
  StatusOr<ShardedGraph> built = ShardedGraph::Build(g, options);
  if (!built.ok()) {
    std::fprintf(stderr, "sharded build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  ShardedGraph& sharded = built.value();
  std::printf("built %u shards in %.2fs (cost skew %.2f)\n",
              sharded.num_shards(), build_timer.Seconds(),
              sharded.CostSkew());
  const std::shared_ptr<const dist::ShardManifest> manifest =
      sharded.manifest();
  for (uint32_t s = 0; s < sharded.num_shards(); ++s) {
    const dist::ShardStats& st = manifest->shard_stats()[s];
    std::printf("  shard %u: %llu nodes, %llu edges (%llu boundary)\n", s,
                static_cast<unsigned long long>(st.num_nodes),
                static_cast<unsigned long long>(st.owned_edges),
                static_cast<unsigned long long>(st.boundary_edges));
  }

  // Serve a batch and check it against the graph itself.
  Rng rng(0x5EED);
  std::vector<NodeId> batch(2000);
  for (NodeId& v : batch) v = static_cast<NodeId>(rng.Below(g.num_nodes()));
  BatchResult answers;
  dist::GatherStats stats;
  Status served = sharded.NeighborsBatch(batch, &answers, &stats);
  if (!served.ok()) {
    std::fprintf(stderr, "batch failed: %s\n", served.ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (answers[i].size() != g.Degree(batch[i])) {
      std::fprintf(stderr, "answer mismatch at node %u\n", batch[i]);
      return 1;
    }
  }
  std::printf(
      "batch of %zu served: %u shards touched, %llu subqueries, "
      "stitch %.1f%% of dispatch\n",
      batch.size(), stats.shards_dispatched,
      static_cast<unsigned long long>(stats.subqueries),
      stats.max_shard_seconds > 0
          ? 100.0 * stats.stitch_seconds / stats.max_shard_seconds
          : 0.0);

  // 1. Shard-local refresh: a better summary of the SAME shard edges
  // goes live with one Publish; lossless means answers cannot move.
  const uint32_t refreshed = 0;
  graph::Graph shard_graph =
      graph::BuildShardGraph(g, manifest->node_map(), refreshed);
  EngineOptions better;
  better.config.iterations = 40;
  better.config.seed = 18;
  Engine refine(better);
  StatusOr<CompressedGraph> refined = refine.Summarize(shard_graph);
  if (!refined.ok()) {
    std::fprintf(stderr, "refresh summarize failed: %s\n",
                 refined.status().ToString().c_str());
    return 1;
  }
  sharded.shard_registry(refreshed)->Publish(std::move(refined).value());
  BatchResult after_refresh;
  if (!sharded.NeighborsBatch(batch, &after_refresh).ok() ||
      after_refresh.neighbors != answers.neighbors ||
      after_refresh.offsets != answers.offsets) {
    std::fprintf(stderr, "refresh changed answers — lossless bug\n");
    return 1;
  }
  std::printf("shard %u republished; answers byte-identical\n", refreshed);

  // 2. Rebalance when skew demands it (0.99 forces it here, to show the
  // full path: repartition, resummarize, atomic epoch swap).
  StatusOr<RebalanceReport> rebalanced = sharded.Rebalance(g, 0.99);
  if (!rebalanced.ok()) {
    std::fprintf(stderr, "rebalance failed: %s\n",
                 rebalanced.status().ToString().c_str());
    return 1;
  }
  std::printf("rebalance: %s, skew %.2f -> %.2f\n",
              rebalanced.value().rebalanced ? "repartitioned" : "no-op",
              rebalanced.value().skew_before, rebalanced.value().skew_after);
  BatchResult after_rebalance;
  if (!sharded.NeighborsBatch(batch, &after_rebalance).ok() ||
      after_rebalance.neighbors != answers.neighbors) {
    std::fprintf(stderr, "rebalance changed answers — epoch swap bug\n");
    return 1;
  }

  // 3. Degraded shard: drop one replica from a copy of the epoch and
  // serve through a strict coordinator — the batch fails loudly instead
  // of quietly missing edges.
  dist::ServingEpoch degraded = *sharded.coordinator().epoch();
  degraded.shards[0] = std::make_shared<SnapshotRegistry>();
  dist::Coordinator strict(degraded);
  BatchResult ignored;
  Status failure = strict.NeighborsBatch(batch, &ignored);
  std::printf("degraded shard 0 (strict): %s\n",
              failure.ToString().c_str());
  if (failure.ok()) {
    std::fprintf(stderr, "strict coordinator served a missing shard\n");
    return 1;
  }
  metrics_dumper.Stop();
  std::printf("emitted %llu metrics dumps while serving\n",
              static_cast<unsigned long long>(metrics_dumper.dumps()));
  std::printf("done\n");
  return 0;
}
