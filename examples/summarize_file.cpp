// Command-line tool: summarize an edge-list file, save/load the binary
// summary through slugger::CompressedGraph, and verify the round trip —
// the end-to-end production flow on the facade.
//
// Usage:
//   ./build/examples/summarize_file <edges.txt> <out.summary> [iterations]
//   ./build/examples/summarize_file --demo          (self-contained demo)
#include <cstdio>
#include <optional>
#include <string>

#include "api/engine.hpp"
#include "gen/generators.hpp"
#include "graph/graph_io.hpp"
#include "util/parse.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace slugger;

  graph::Graph g;
  std::string out_path = "/tmp/slugger_demo.summary";
  uint32_t iterations = 20;

  if (argc >= 2 && std::string(argv[1]) != "--demo") {
    if (argc < 3) {
      std::fprintf(stderr,
                   "usage: %s <edges.txt> <out.summary> [iterations >= 1]\n",
                   argv[0]);
      return 2;
    }
    if (argc >= 4) {
      std::optional<uint32_t> parsed = ParseUint32(argv[3]);
      if (!parsed.has_value() || *parsed == 0) {
        std::fprintf(stderr,
                     "invalid iteration count '%s'\n"
                     "usage: %s <edges.txt> <out.summary> [iterations >= 1]\n",
                     argv[3], argv[0]);
        return 2;
      }
      iterations = *parsed;
    }
    auto loaded = graph::LoadEdgeListText(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(loaded).value();
    out_path = argv[2];
  } else {
    std::printf("no input given; running the built-in demo workload\n");
    gen::PlantedHierarchyOptions opt;
    opt.branching = 5;
    opt.depth = 3;
    opt.leaf_size = 8;
    opt.leaf_density = 0.9;
    opt.pair_link_prob = 0.4;
    opt.pair_link_decay = 0.2;
    g = gen::PlantedHierarchy(opt, 1);
  }
  std::printf("input: %u nodes, %llu edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  EngineOptions options;
  options.config.iterations = iterations;
  Engine engine(options);

  WallTimer timer;
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  if (!compressed.ok()) {
    // e.g. iterations 0 from the command line: rejected up front with
    // InvalidArgument instead of failing deep inside the core layer.
    std::fprintf(stderr, "summarize failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  const CompressedGraph& cg = compressed.value();
  std::printf("summarized in %.2fs: cost=%llu (%.1f%% of |E|)\n",
              timer.Seconds(),
              static_cast<unsigned long long>(cg.stats().cost),
              100.0 * cg.stats().RelativeSize(g.num_edges()));

  Status saved = cg.Save(out_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("summary written to %s\n", out_path.c_str());

  StatusOr<CompressedGraph> reloaded = CompressedGraph::Load(out_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "reload failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  Status lossless = reloaded.value().Verify(g);
  std::printf("reload + lossless verification: %s\n",
              lossless.ToString().c_str());
  return lossless.ok() ? 0 : 1;
}
