// Command-line tool: summarize an edge-list file, persist it through the
// unified slugger::storage API in both formats, and verify the round
// trips — the end-to-end production flow on the facade.
//
// The monolithic v1 summary lands at <out.summary> (unchanged CLI
// contract); the paged v2 file lands next to it at <out.summary>.paged
// and is then cold-opened out-of-core: the open reads only the header
// and page table, queries fault in pages on demand, and the final
// lossless verification materializes the rest.
//
// Usage:
//   ./build/examples/summarize_file <edges.txt> <out.summary> [iterations]
//   ./build/examples/summarize_file --demo          (self-contained demo)
#include <cstdio>
#include <optional>
#include <string>

#include "api/engine.hpp"
#include "gen/generators.hpp"
#include "graph/graph_io.hpp"
#include "storage/paged_source.hpp"
#include "storage/storage.hpp"
#include "util/parse.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace slugger;

  graph::Graph g;
  std::string out_path = "/tmp/slugger_demo.summary";
  uint32_t iterations = 20;

  if (argc >= 2 && std::string(argv[1]) != "--demo") {
    if (argc < 3) {
      std::fprintf(stderr,
                   "usage: %s <edges.txt> <out.summary> [iterations >= 1]\n",
                   argv[0]);
      return 2;
    }
    if (argc >= 4) {
      std::optional<uint32_t> parsed = ParseUint32(argv[3]);
      if (!parsed.has_value() || *parsed == 0) {
        std::fprintf(stderr,
                     "invalid iteration count '%s'\n"
                     "usage: %s <edges.txt> <out.summary> [iterations >= 1]\n",
                     argv[3], argv[0]);
        return 2;
      }
      iterations = *parsed;
    }
    auto loaded = graph::LoadEdgeListText(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(loaded).value();
    out_path = argv[2];
  } else {
    std::printf("no input given; running the built-in demo workload\n");
    gen::PlantedHierarchyOptions opt;
    opt.branching = 5;
    opt.depth = 3;
    opt.leaf_size = 8;
    opt.leaf_density = 0.9;
    opt.pair_link_prob = 0.4;
    opt.pair_link_decay = 0.2;
    g = gen::PlantedHierarchy(opt, 1);
  }
  std::printf("input: %u nodes, %llu edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  EngineOptions options;
  options.config.iterations = iterations;
  Engine engine(options);

  WallTimer timer;
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  if (!compressed.ok()) {
    // e.g. iterations 0 from the command line: rejected up front with
    // InvalidArgument instead of failing deep inside the core layer.
    std::fprintf(stderr, "summarize failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  const CompressedGraph& cg = compressed.value();
  std::printf("summarized in %.2fs: cost=%llu (%.1f%% of |E|)\n",
              timer.Seconds(),
              static_cast<unsigned long long>(cg.stats().cost),
              100.0 * cg.stats().RelativeSize(g.num_edges()));

  // One save call per format, same entry point.
  storage::SaveOptions v1_opts;
  v1_opts.format = storage::Format::kMonolithicV1;
  Status saved = storage::Save(cg, out_path, v1_opts);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  const std::string paged_path = out_path + ".paged";
  Status saved_paged = storage::Save(cg, paged_path);  // default: paged v2
  if (!saved_paged.ok()) {
    std::fprintf(stderr, "paged save failed: %s\n",
                 saved_paged.ToString().c_str());
    return 1;
  }
  std::printf("summary written to %s (v1) and %s (paged v2)\n",
              out_path.c_str(), paged_path.c_str());

  // Round trip 1: the monolithic file, fully parsed back into memory.
  // storage::Open sniffs the magic, so the same call handles both files.
  StatusOr<CompressedGraph> reloaded = storage::Open(out_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "reload failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  Status lossless = reloaded.value().Verify(g);
  std::printf("v1 reload + lossless verification: %s\n",
              lossless.ToString().c_str());
  if (!lossless.ok()) return 1;

  // Round trip 2: the paged file, served out-of-core. The open touches
  // only the header and page table; each query then faults in just the
  // pages its ancestor-chain walk needs.
  storage::OpenOptions paged_open;
  paged_open.mode = storage::OpenOptions::Mode::kPaged;
  WallTimer open_timer;
  StatusOr<CompressedGraph> paged = storage::Open(paged_path, paged_open);
  if (!paged.ok()) {
    std::fprintf(stderr, "paged open failed: %s\n",
                 paged.status().ToString().c_str());
    return 1;
  }
  std::printf("paged cold open in %.3fms (serving %s)\n",
              open_timer.Seconds() * 1e3,
              paged.value().paged() ? "out-of-core" : "in-memory");

  QueryScratch scratch;
  Rng rng(1234);
  uint32_t checked = 0;
  for (; checked < 64 && g.num_nodes() > 0; ++checked) {
    const NodeId v = static_cast<NodeId>(rng.Below(g.num_nodes()));
    if (paged.value().Degree(v, &scratch) != g.Degree(v)) {
      std::fprintf(stderr, "paged degree mismatch at node %u\n", v);
      return 1;
    }
  }
  const storage::BufferStats bstats =
      paged.value().paged_source()->buffer_stats();
  const uint32_t num_pages = paged.value().paged_source()->header().num_pages;
  std::printf("%u spot queries faulted %llu of %u pages\n", checked,
              static_cast<unsigned long long>(bstats.faults), num_pages);

  // Full lossless verification materializes the summary behind the same
  // handle, then decodes every adjacency list.
  Status paged_lossless = paged.value().Verify(g);
  std::printf("paged reload + lossless verification: %s\n",
              paged_lossless.ToString().c_str());
  return paged_lossless.ok() ? 0 : 1;
}
