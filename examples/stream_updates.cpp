// Scenario: a live graph service under continuous mutation. A
// slugger::DynamicGraph serves exact neighbor queries while a stream of
// edge insertions and deletions lands in batches; background compaction
// folds the accumulated corrections back into the summary and publishes
// each new base through the internal SnapshotRegistry — readers never
// pause, answers always equal the mutated graph.
//
// The demo replays the same stream on a plain reference edge set and
// proves exactness at the end (decode == reference).
//
// Build & run:
//   ./build/example_stream_updates [num_nodes] [edits] [readers]
#include <atomic>
#include <cstdio>
#include <deque>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

#include "api/dynamic_graph.hpp"
#include "api/engine.hpp"
#include "gen/generators.hpp"
#include "util/parse.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace slugger;

  NodeId nodes = 10000;
  uint32_t num_edits = 50000;
  uint32_t num_readers = 2;
  const char* names[] = {"num_nodes", "edits", "readers"};
  uint32_t* targets[] = {&nodes, &num_edits, &num_readers};
  for (int a = 1; a < argc && a <= 3; ++a) {
    std::optional<uint32_t> parsed = ParseUint32(argv[a]);
    const uint32_t minimum = a == 1 ? 2 : 1;  // edits need two endpoints
    if (!parsed.has_value() || *parsed < minimum) {
      std::fprintf(stderr,
                   "invalid %s '%s'\n"
                   "usage: %s [num_nodes >= 2] [edits >= 1] [readers >= 1]\n",
                   names[a - 1], argv[a], argv[0]);
      return 2;
    }
    *targets[a - 1] = *parsed;
  }

  graph::Graph g = gen::DuplicationDivergence(nodes, 3, 0.45, 0.7, 42);
  std::printf("live graph: %u nodes, %llu edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  // Reference edge set the stream is replayed on, for the final proof.
  std::unordered_set<uint64_t> ref;
  ref.reserve(g.num_edges() * 2);
  const auto key = [](NodeId u, NodeId v) {
    Edge e = MakeEdge(u, v);
    return (static_cast<uint64_t>(e.first) << 32) | e.second;
  };
  for (const Edge& e : g.Edges()) ref.insert(key(e.first, e.second));

  EngineOptions compress;
  compress.config.iterations = 8;
  compress.config.seed = 42;
  Engine engine(compress);
  StatusOr<CompressedGraph> base = engine.Summarize(g);
  if (!base.ok()) {
    std::fprintf(stderr, "summarize failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  std::printf("summary live: cost=%llu (%.3f of |E|)\n",
              static_cast<unsigned long long>(base.value().stats().cost),
              base.value().stats().RelativeSize(g.num_edges()));

  DynamicGraphOptions options;
  options.auto_compact = true;
  options.policy.min_corrections = 512;
  options.policy.max_overlay_ratio = 0.01;
  options.rebuild.config.iterations = 8;
  options.rebuild.config.seed = 42;
  DynamicGraph dg(std::move(base).value(), options);

  // Readers serve exact queries from whatever state is current.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::vector<std::thread> readers;
  for (uint32_t r = 0; r < num_readers; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(0xFEEDull + r);
      QueryScratch scratch;
      while (!stop.load(std::memory_order_relaxed)) {
        const NodeId u = static_cast<NodeId>(rng.Below(dg.num_nodes()));
        (void)dg.Neighbors(u, &scratch);
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: random inserts/deletes in batches; deletes probe the live
  // graph itself for real edges (DynamicGraph answers are exact).
  Rng rng(0xF00Dull);
  QueryScratch writer_scratch;
  WallTimer timer;
  uint32_t remaining = num_edits;
  const uint32_t batch_size = 1024;
  while (remaining > 0) {
    std::vector<EdgeEdit> batch;
    const uint32_t take = remaining < batch_size ? remaining : batch_size;
    batch.reserve(take);
    for (uint32_t i = 0; i < take; ++i) {
      NodeId u = static_cast<NodeId>(rng.Below(nodes));
      NodeId v = static_cast<NodeId>(rng.Below(nodes));
      while (v == u) v = static_cast<NodeId>(rng.Below(nodes));
      if (rng.Chance(0.5)) {
        const std::vector<NodeId>& nbrs = dg.Neighbors(u, &writer_scratch);
        if (!nbrs.empty()) v = nbrs[rng.Below(nbrs.size())];
        batch.push_back({u, v, EditKind::kDelete});
      } else {
        batch.push_back({u, v, EditKind::kInsert});
      }
    }
    Status status = dg.ApplyEdits(batch);
    if (!status.ok()) {
      std::fprintf(stderr, "ApplyEdits failed: %s\n",
                   status.ToString().c_str());
      stop.store(true);
      for (std::thread& t : readers) t.join();
      return 1;
    }
    for (const EdgeEdit& e : batch) {
      if (e.kind == EditKind::kInsert) {
        ref.insert(key(e.u, e.v));
      } else {
        ref.erase(key(e.u, e.v));
      }
    }
    remaining -= take;
  }
  const double edit_seconds = timer.Seconds();

  DynamicGraphStats mid = dg.stats();
  std::printf(
      "applied %llu edits (%llu redundant) in %.2fs (%.0f edits/s); "
      "overlay: %llu corrections over %llu dirty nodes\n",
      static_cast<unsigned long long>(mid.edits_applied),
      static_cast<unsigned long long>(mid.edits_redundant), edit_seconds,
      static_cast<double>(num_edits) / edit_seconds,
      static_cast<unsigned long long>(mid.corrections),
      static_cast<unsigned long long>(mid.dirty_nodes));

  dg.WaitForCompaction();
  Status compact_status = dg.Compact();
  if (!compact_status.ok()) {
    std::fprintf(stderr, "compaction failed: %s\n",
                 compact_status.ToString().c_str());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  DynamicGraphStats fin = dg.stats();
  std::printf(
      "compactions: %llu fold, %llu rebuild; base version %llu, "
      "cost %llu; %llu reader queries served\n",
      static_cast<unsigned long long>(fin.compactions_fold),
      static_cast<unsigned long long>(fin.compactions_rebuild),
      static_cast<unsigned long long>(fin.base_version),
      static_cast<unsigned long long>(fin.base_cost),
      static_cast<unsigned long long>(queries.load()));

  // The proof: the served graph IS the mutated reference.
  std::vector<Edge> edges;
  edges.reserve(ref.size());
  for (uint64_t k : ref) {
    edges.push_back({static_cast<NodeId>(k >> 32),
                     static_cast<NodeId>(k & 0xFFFFFFFFu)});
  }
  const graph::Graph expected = graph::Graph::FromEdges(nodes, edges);
  const bool exact = dg.Decode() == expected;
  std::printf("final check: decode(DynamicGraph) %s the mutated graph "
              "(%llu edges)\n",
              exact ? "equals" : "DIFFERS FROM",
              static_cast<unsigned long long>(expected.num_edges()));
  return exact && compact_status.ok() ? 0 : 1;
}
