// Scenario: zero-downtime serving. A slugger::SnapshotRegistry holds the
// live CompressedGraph; reader threads serve batched neighbor queries
// from whatever snapshot is current while the main thread rebuilds
// progressively better summaries of the same graph and publishes each
// one. Readers never pause across a swap, every answer stays correct
// (each snapshot is lossless, so the served adjacency never changes),
// and retired summaries are freed by their last reader.
//
// The bootstrap snapshot takes the restart path of a real service: the
// first summary is written as a paged v2 file, cold-opened through
// slugger::storage (header + page table only), and published while still
// out-of-core — readers fault in pages as their queries touch them, and
// later refreshes swap in fully in-memory summaries.
//
// Build & run:
//   ./build/example_serve_with_refresh [num_nodes] [readers] [refreshes]
#include <atomic>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/snapshot_registry.hpp"
#include "gen/generators.hpp"
#include "obs/export.hpp"
#include "storage/storage.hpp"
#include "util/parse.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace slugger;

  NodeId nodes = 20000;
  uint32_t num_readers = 4;
  uint32_t refreshes = 3;
  const char* names[] = {"num_nodes", "readers", "refreshes"};
  uint32_t* targets[] = {&nodes, &num_readers, &refreshes};
  for (int a = 1; a < argc && a <= 3; ++a) {
    std::optional<uint32_t> parsed = ParseUint32(argv[a]);
    if (!parsed.has_value() || *parsed == 0) {
      std::fprintf(stderr,
                   "invalid %s '%s'\n"
                   "usage: %s [num_nodes >= 1] [readers >= 1] [refreshes >= 1]\n",
                   names[a - 1], argv[a], argv[0]);
      return 2;
    }
    *targets[a - 1] = *parsed;
  }

  graph::Graph g = gen::DuplicationDivergence(nodes, 3, 0.45, 0.7, 99);
  std::printf("serving graph: %u nodes, %llu edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  // Bootstrap: publish a cheap first summary immediately so serving can
  // start, then refine in the background — the swap pattern of a service
  // that cannot wait for the best compression before taking traffic.
  EngineOptions options;
  options.config.iterations = 1;
  options.config.seed = 99;
  Engine bootstrap(options);
  StatusOr<CompressedGraph> first = bootstrap.Summarize(g);
  if (!first.ok()) {
    std::fprintf(stderr, "bootstrap summarize failed: %s\n",
                 first.status().ToString().c_str());
    return 1;
  }

  // Restart path: persist the bootstrap summary as a paged file and
  // cold-open it out-of-core, the way a restarted server would come back
  // up without re-summarizing or re-reading the whole file.
  const std::string bootstrap_path = "/tmp/slugger_serve_bootstrap.paged";
  Status persisted = storage::Save(first.value(), bootstrap_path);
  if (!persisted.ok()) {
    std::fprintf(stderr, "bootstrap save failed: %s\n",
                 persisted.ToString().c_str());
    return 1;
  }
  storage::OpenOptions paged_open;
  paged_open.mode = storage::OpenOptions::Mode::kPaged;
  StatusOr<CompressedGraph> opened = storage::Open(bootstrap_path, paged_open);
  if (!opened.ok()) {
    std::fprintf(stderr, "bootstrap open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  // The mapping keeps the pages reachable after the unlink; nothing to
  // clean up on any later exit path.
  std::remove(bootstrap_path.c_str());

  SnapshotRegistry registry(std::move(opened).value());
  std::printf("bootstrap summary live: cost=%llu (version %llu, %s)\n",
              static_cast<unsigned long long>(
                  registry.Current()->stats().cost),
              static_cast<unsigned long long>(registry.version()),
              registry.Current()->paged() ? "serving paged from disk"
                                          : "in-memory");

  // Metrics: while serving, periodically dump the process-wide registry
  // in Prometheus text format — the payload a real server's /metrics
  // endpoint would return. Stop() emits one final dump, so even a short
  // run prints the engine/query/buffer/snapshot counters it produced.
  // (With -DSLUGGER_OBS=OFF the registry is empty and dumps are blank.)
  obs::PeriodicDumper metrics_dumper(
      [](const std::string& text) {
        std::printf("--- metrics dump (%zu bytes) ---\n%s--- end metrics ---\n",
                    text.size(), text.c_str());
      },
      /*interval_seconds=*/1.0);
  metrics_dumper.Start();

  // Readers: grab the current snapshot once per batch, serve a batch of
  // random nodes from it, and spot-check one answer against the raw
  // graph — correct under every swap because each snapshot is lossless.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batches_served{0};
  std::atomic<uint64_t> queries_served{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  readers.reserve(num_readers);
  for (uint32_t r = 0; r < num_readers; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(0xC0FFEEull + r);
      BatchScratch scratch;
      BatchResult result;
      std::vector<NodeId> batch(512);
      while (!stop.load(std::memory_order_relaxed)) {
        SnapshotRegistry::Snapshot snap = registry.Current();
        for (NodeId& v : batch) {
          v = static_cast<NodeId>(rng.Below(g.num_nodes()));
        }
        Status status = snap->NeighborsBatch(batch, &result, &scratch);
        if (!status.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        const size_t probe = rng.Below(batch.size());
        if (result[probe].size() != g.Degree(batch[probe])) {
          mismatches.fetch_add(1);
        }
        batches_served.fetch_add(1, std::memory_order_relaxed);
        queries_served.fetch_add(batch.size(), std::memory_order_relaxed);
      }
    });
  }

  // Writer: progressively better summaries, one publish per refresh.
  WallTimer timer;
  for (uint32_t refresh = 1; refresh <= refreshes; ++refresh) {
    EngineOptions better;
    better.config.iterations = 1 + 4 * refresh;
    better.config.seed = 99;
    Engine engine(better);
    StatusOr<CompressedGraph> rebuilt = engine.Summarize(g);
    if (!rebuilt.ok()) {
      std::fprintf(stderr, "refresh %u failed: %s\n", refresh,
                   rebuilt.status().ToString().c_str());
      stop.store(true);
      for (std::thread& t : readers) t.join();
      return 1;
    }
    const uint64_t served_before = queries_served.load();
    SnapshotRegistry::Snapshot live =
        registry.Publish(std::move(rebuilt).value());
    std::printf(
        "refresh %u live after %.2fs: cost=%llu, version=%llu, "
        "%llu queries already served\n",
        refresh, timer.Seconds(),
        static_cast<unsigned long long>(live->stats().cost),
        static_cast<unsigned long long>(registry.version()),
        static_cast<unsigned long long>(served_before));
  }

  stop.store(true);
  for (std::thread& t : readers) t.join();
  metrics_dumper.Stop();
  std::printf("emitted %llu metrics dumps while serving\n",
              static_cast<unsigned long long>(metrics_dumper.dumps()));

  std::printf(
      "served %llu queries in %llu batches across %u readers and %llu "
      "snapshot versions; %llu mismatches\n",
      static_cast<unsigned long long>(queries_served.load()),
      static_cast<unsigned long long>(batches_served.load()),
      num_readers, static_cast<unsigned long long>(registry.version()),
      static_cast<unsigned long long>(mismatches.load()));
  return mismatches.load() == 0 && queries_served.load() > 0 ? 0 : 1;
}
