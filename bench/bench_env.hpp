// Shared env-knob parsing for the scaling benches (bench_threads,
// bench_prune_verify_threads, bench_query_throughput, bench_batch_query).
// Built on the checked parsers of util/parse.hpp: a malformed knob falls
// back to the default (or is dropped from a list) instead of silently
// becoming atoi's zero.
#ifndef SLUGGER_BENCH_BENCH_ENV_HPP_
#define SLUGGER_BENCH_BENCH_ENV_HPP_

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "util/parse.hpp"

namespace slugger::bench {

/// Value of env var `name`, or `fallback` when unset, unparsable, or 0.
inline uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  std::optional<uint64_t> v = ParseUint64(env);
  return v.has_value() && *v > 0 ? *v : fallback;
}

/// SLUGGER_BENCH_THREAD_LIST as worker counts (default 1,2,4,8).
inline std::vector<uint32_t> ThreadList() {
  const char* env = std::getenv("SLUGGER_BENCH_THREAD_LIST");
  const std::string spec = env != nullptr ? env : "1,2,4,8";
  std::vector<uint32_t> list;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::optional<uint32_t> v =
        ParseUint32(spec.substr(pos, comma - pos).c_str());
    if (v.has_value() && *v >= 1) list.push_back(*v);
    pos = comma + 1;
  }
  if (list.empty()) list = {1, 2, 4, 8};
  return list;
}

}  // namespace slugger::bench

#endif  // SLUGGER_BENCH_BENCH_ENV_HPP_
