// Table V: effect of the height bound Hb on hierarchy trees — deeper
// hierarchies give smaller outputs; Hb = 10 is close to unbounded.
#include "bench_common.hpp"

int main() {
  using namespace slugger;
  using namespace slugger::bench;

  gen::Scale scale = BenchScale(gen::Scale::kTiny);
  PrintHeaderLine("Table V — effect of the height of hierarchy trees", scale,
                  1);

  const uint32_t bounds[] = {2, 5, 7, 10, 0};  // 0 = unbounded (∞)
  std::printf("%-8s | %-44s | %-44s\n", "dataset",
              "avg leaf depth (Hb=2/5/7/10/inf)",
              "relative size (Hb=2/5/7/10/inf)");
  for (const auto& spec : gen::AllDatasets()) {
    graph::Graph g = gen::GenerateDataset(spec.name, scale, 1);
    double depth[5], rel[5];
    for (int i = 0; i < 5; ++i) {
      core::SluggerConfig config;
      config.iterations = 20;
      config.seed = 1;
      config.max_height = bounds[i];
      core::SluggerResult r = core::Summarize(g, config);
      depth[i] = r.stats.avg_leaf_depth;
      rel[i] = r.stats.RelativeSize(g.num_edges());
    }
    std::printf("%-8s | %8.2f %8.2f %8.2f %8.2f %8.2f | "
                "%8.3f %8.3f %8.3f %8.3f %8.3f\n",
                spec.name.c_str(), depth[0], depth[1], depth[2], depth[3],
                depth[4], rel[0], rel[1], rel[2], rel[3], rel[4]);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: avg leaf depth grows and relative size "
              "shrinks as Hb loosens; Hb = 10 ~ unbounded (paper Table V).\n");
  return 0;
}
