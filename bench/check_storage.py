#!/usr/bin/env python3
"""CI smoke gate for the out-of-core storage layer.

Reads the JSON emitted by bench_storage (BENCH_storage.json) and fails
when either of the paged format's two serving promises regresses:

  1. Cold open: a paged open reads only the header and page table, so it
     must be at least --min-open-speedup (default 10x) faster than the
     monolithic load of the same summary.
  2. Warm throughput: once the record cache is warm, paged batch queries
     must stay within --max-query-slowdown (default 2x) of the in-memory
     walk.

Also requires the in-memory and paged query sweeps to have agreed on
their checksums (same answers off disk as from memory).

Usage:
    check_storage.py [BENCH_storage.json]
        [--min-open-speedup X] [--max-query-slowdown Y]
        [--min-mono-open-seconds S]

Exit codes: 0 pass, 1 regression, 2 bad input. If the monolithic open
finished faster than --min-mono-open-seconds, the open-speedup gate
passes with a notice instead of judging noise-dominated timings (the
checksum and throughput gates still apply).
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?", default="BENCH_storage.json")
    parser.add_argument("--min-open-speedup", type=float, default=10.0,
                        help="minimum cold-open speedup of paged over "
                             "monolithic")
    parser.add_argument("--max-query-slowdown", type=float, default=2.0,
                        help="max warm paged query latency as a multiple "
                             "of the in-memory batch walk")
    parser.add_argument("--min-mono-open-seconds", type=float, default=0.005,
                        help="skip the open gate when the monolithic open "
                             "is shorter than this (timing noise)")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {args.report}: {err}", file=sys.stderr)
        return 2

    open_stats = report.get("open", {})
    query = report.get("query", {})
    for section, keys in (("open", ("monolithic_seconds", "paged_seconds")),
                          ("query", ("inmem_qps", "paged_qps",
                                     "checksums_agree"))):
        block = report.get(section, {})
        missing = [k for k in keys if k not in block]
        if missing:
            print(f"error: {args.report} section '{section}' is missing "
                  f"{missing}", file=sys.stderr)
            return 2

    failures = []

    if not query["checksums_agree"]:
        failures.append("paged and in-memory query checksums disagree")

    mono = open_stats["monolithic_seconds"]
    paged = open_stats["paged_seconds"]
    if mono < args.min_mono_open_seconds:
        print(f"notice: monolithic open took only {mono * 1e3:.2f}ms "
              f"(< {args.min_mono_open_seconds * 1e3:.0f}ms); open-speedup "
              f"gate skipped as noise-dominated")
    else:
        speedup = mono / paged if paged > 0 else float("inf")
        print(f"cold open: monolithic {mono * 1e3:.2f}ms, paged "
              f"{paged * 1e3:.3f}ms -> {speedup:.1f}x "
              f"(gate >= {args.min_open_speedup:.0f}x)")
        if speedup < args.min_open_speedup:
            failures.append(
                f"paged cold open only {speedup:.1f}x faster than the "
                f"monolithic load (need >= {args.min_open_speedup:.0f}x)")

    inmem_qps = query["inmem_qps"]
    paged_qps = query["paged_qps"]
    slowdown = inmem_qps / paged_qps if paged_qps > 0 else float("inf")
    print(f"warm query: in-memory {inmem_qps:.0f} q/s, paged "
          f"{paged_qps:.0f} q/s -> {slowdown:.2f}x slower "
          f"(gate <= {args.max_query_slowdown:.1f}x)")
    if slowdown > args.max_query_slowdown:
        failures.append(
            f"warm paged queries {slowdown:.2f}x slower than in-memory "
            f"(limit {args.max_query_slowdown:.1f}x)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("storage gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
