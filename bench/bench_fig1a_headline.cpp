// Fig. 1(a): relative output size of the five summarizers on the Protein
// analog — the paper's headline 29.6 % improvement over SWeG.
#include "bench_common.hpp"

int main() {
  using namespace slugger;
  using namespace slugger::bench;

  gen::Scale scale = BenchScale(gen::Scale::kSmall);
  uint32_t seeds = SeedsFromEnv(3);
  PrintHeaderLine("Fig. 1(a) — relative size of outputs (PR dataset analog)",
                  scale, seeds);

  graph::Graph g = gen::GenerateDataset("PR-syn", scale, 1);
  std::printf("PR-syn: %u nodes, %llu edges (paper PR: 6,229 / 146,160)\n\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()));

  const char* algos[] = {"Slugger", "SWeG", "MoSSo", "Randomized", "SAGS"};
  std::printf("%-12s %14s %10s\n", "Algorithm", "RelSize(mean)", "+/-std");
  double slugger_mean = 0.0;
  double best_competitor = 1e30;
  for (const char* algo : algos) {
    std::vector<double> sizes;
    for (uint32_t s = 1; s <= seeds; ++s) {
      sizes.push_back(RunAlgorithm(algo, g, s).relative_size);
    }
    MeanStd agg = Aggregate(sizes);
    std::printf("%-12s %14.4f %10.4f\n", algo, agg.mean, agg.stdev);
    if (std::string(algo) == "Slugger") {
      slugger_mean = agg.mean;
    } else {
      best_competitor = std::min(best_competitor, agg.mean);
    }
  }
  std::printf("\nSlugger vs best competitor: %.1f%% smaller "
              "(paper: 29.6%% on PR)\n",
              100.0 * (1.0 - slugger_mean / best_competitor));
  return 0;
}
