// Thread-scaling benchmark of the parallel merge engine (ISSUE 1).
//
// Runs SLUGGER on an RMAT graph with a sweep of worker counts and reports
// merge-phase and candidate-generation wall time per count, for both the
// deterministic round-based engine and (at the largest count) the async
// work-stealing engine. Every run is verified lossless. Results go to
// stdout as a table and to BENCH_threads.json as a single machine-readable
// JSON object for the perf trajectory.
//
// Env knobs:
//   SLUGGER_BENCH_THREADS_SCALE  RMAT scale (default 14 -> 16384 nodes)
//   SLUGGER_BENCH_THREADS_EDGES  edge count (default 8 * num_nodes)
//   SLUGGER_BENCH_THREADS_ITERS  iterations T (default 20, per the paper)
//   SLUGGER_BENCH_THREAD_LIST    comma list of worker counts (default 1,2,4,8)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_env.hpp"
#include "core/slugger.hpp"
#include "gen/generators.hpp"
#include "summary/verify.hpp"

namespace {

using slugger::bench::EnvU64;
using slugger::bench::ThreadList;

struct Run {
  uint32_t threads;
  bool deterministic;
  double merge_seconds;
  double candidate_seconds;
  double prune_seconds;
  uint64_t cost;
  uint64_t merges;
  bool lossless;
};

}  // namespace

int main() {
  using namespace slugger;

  const uint32_t scale =
      static_cast<uint32_t>(EnvU64("SLUGGER_BENCH_THREADS_SCALE", 14));
  const uint64_t num_nodes = 1ull << scale;
  const uint64_t edges = EnvU64("SLUGGER_BENCH_THREADS_EDGES", 8 * num_nodes);
  const uint32_t iterations =
      static_cast<uint32_t>(EnvU64("SLUGGER_BENCH_THREADS_ITERS", 20));
  std::vector<uint32_t> threads = ThreadList();

  std::printf("=== thread scaling (parallel merge engine) ===\n");
  std::printf("rmat scale=%u nodes=%llu edges=%llu iterations=%u\n\n", scale,
              static_cast<unsigned long long>(num_nodes),
              static_cast<unsigned long long>(edges), iterations);

  graph::Graph g = gen::RMat(scale, edges, 0.57, 0.19, 0.19, /*seed=*/7);

  std::vector<Run> runs;
  auto run_once = [&](uint32_t t, bool deterministic) {
    core::SluggerConfig config;
    config.iterations = iterations;
    config.seed = 7;
    config.num_threads = t;
    config.deterministic = deterministic;
    core::SluggerResult r = core::Summarize(g, config);
    Run run;
    run.threads = t;
    run.deterministic = deterministic;
    run.merge_seconds = r.merge_seconds;
    run.candidate_seconds = r.candidate_seconds;
    run.prune_seconds = r.prune_seconds;
    run.cost = r.stats.cost;
    run.merges = r.merges;
    run.lossless = summary::VerifyLossless(g, r.summary).ok();
    runs.push_back(run);
    std::printf(
        "threads=%-2u %-13s merge=%8.3fs  candidates=%7.3fs  prune=%6.3fs  "
        "cost=%llu  lossless=%s\n",
        t, deterministic ? "deterministic" : "async", run.merge_seconds,
        run.candidate_seconds, run.prune_seconds,
        static_cast<unsigned long long>(run.cost),
        run.lossless ? "yes" : "NO");
  };

  for (uint32_t t : threads) run_once(t, /*deterministic=*/true);
  uint32_t max_threads = threads.back();
  if (max_threads > 1) run_once(max_threads, /*deterministic=*/false);

  const Run* baseline = nullptr;
  for (const Run& r : runs) {
    if (r.threads == 1 && r.deterministic) baseline = &r;
  }
  if (baseline != nullptr) {
    std::printf("\nspeedup vs 1 thread (merge phase):\n");
    for (const Run& r : runs) {
      std::printf("  threads=%-2u %-13s %.2fx\n", r.threads,
                  r.deterministic ? "deterministic" : "async",
                  r.merge_seconds > 0
                      ? baseline->merge_seconds / r.merge_seconds
                      : 0.0);
    }
  } else {
    std::printf("\n(no 1-thread run in SLUGGER_BENCH_THREAD_LIST; "
                "skipping speedup table)\n");
  }

  // Machine-readable line for the perf trajectory.
  std::string json = "{\"bench\":\"threads\",\"graph\":\"rmat\",\"scale\":" +
                     std::to_string(scale) +
                     ",\"nodes\":" + std::to_string(g.num_nodes()) +
                     ",\"edges\":" + std::to_string(g.num_edges()) +
                     ",\"iterations\":" + std::to_string(iterations) +
                     ",\"runs\":[";
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"threads\":%u,\"deterministic\":%s,"
                  "\"merge_seconds\":%.6f,\"candidate_seconds\":%.6f,"
                  "\"prune_seconds\":%.6f,\"cost\":%llu,\"merges\":%llu,"
                  "\"lossless\":%s}",
                  i == 0 ? "" : ",", r.threads,
                  r.deterministic ? "true" : "false", r.merge_seconds,
                  r.candidate_seconds, r.prune_seconds,
                  static_cast<unsigned long long>(r.cost),
                  static_cast<unsigned long long>(r.merges),
                  r.lossless ? "true" : "false");
    json += buf;
  }
  json += "]}";

  std::printf("\n%s\n", json.c_str());
  FILE* f = std::fopen("BENCH_threads.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("wrote BENCH_threads.json\n");
  }

  bool all_lossless = true;
  for (const Run& r : runs) all_lossless = all_lossless && r.lossless;
  return all_lossless ? 0 : 1;
}
