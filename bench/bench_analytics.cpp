// Hierarchy-native vs adjacency-materializing analytics (ISSUE 6): how
// much does running PageRank directly on the summary (algs/summary_ops,
// O(n + |P| + |N|) per round) buy over PageRankOnSummaryBatched, which
// materializes the full adjacency before iterating (O(|E|) per round)?
//
// Three graph families at different compression ratios:
//   high    caveman cliques, rewire 0.02 — summary cost << |E|
//   medium  planted hierarchical blocks  — moderate compression
//   low     RMAT                         — little block structure
// Per config we summarize once, time the batched baseline and the
// hierarchy-native path at each pool size, and verify agreement on the
// spot: PageRank within 1e-9 of the baseline, BFS distances and triangle
// counts exactly equal to decode-then-compute. Disagreement fails the
// bench regardless of timings. Results go to stdout and to
// BENCH_analytics.json; CI gates on the high-compression 1-thread
// speedup staying >= 2x (bench/check_analytics.py).
//
// Env knobs:
//   SLUGGER_BENCH_AN_CAVES       caveman cave count  (default 96)
//   SLUGGER_BENCH_AN_CAVE_SIZE   caveman cave size   (default 96)
//   SLUGGER_BENCH_AN_PH_BRANCH   planted-hierarchy branching (default 6)
//   SLUGGER_BENCH_AN_RMAT_SCALE  RMAT scale (default 11)
//   SLUGGER_BENCH_AN_ITERS       PageRank iterations (default 20)
//   SLUGGER_BENCH_AN_REPS        repetitions per timed mode (default 3)
//   SLUGGER_BENCH_THREAD_LIST    comma list of pool sizes (default 1,2,4,8)
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "algs/bfs.hpp"
#include "algs/pagerank.hpp"
#include "algs/summary_ops.hpp"
#include "algs/triangles.hpp"
#include "api/engine.hpp"
#include "bench_env.hpp"
#include "gen/generators.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using slugger::bench::EnvU64;
using slugger::bench::ThreadList;

struct Run {
  std::string mode;  ///< "batched" or "hierarchy"
  uint32_t threads;
  double seconds;  ///< total over all reps
};

struct ConfigResult {
  std::string name;
  uint64_t nodes = 0;
  uint64_t edges = 0;
  uint64_t cost = 0;
  std::vector<Run> runs;
  double max_abs_diff = 0.0;  ///< hierarchy vs batched PageRank
  bool bfs_agree = false;
  bool triangles_agree = false;
};

}  // namespace

int main() {
  using namespace slugger;

  const uint64_t caves = EnvU64("SLUGGER_BENCH_AN_CAVES", 96);
  const uint64_t cave_size = EnvU64("SLUGGER_BENCH_AN_CAVE_SIZE", 96);
  const uint64_t ph_branch = EnvU64("SLUGGER_BENCH_AN_PH_BRANCH", 6);
  const uint64_t rmat_scale = EnvU64("SLUGGER_BENCH_AN_RMAT_SCALE", 11);
  const uint32_t iters =
      static_cast<uint32_t>(EnvU64("SLUGGER_BENCH_AN_ITERS", 20));
  const uint64_t reps = EnvU64("SLUGGER_BENCH_AN_REPS", 3);
  const std::vector<uint32_t> thread_list = ThreadList();

  std::printf("=== hierarchy-native vs adjacency-materializing analytics ===\n");
  std::printf("pagerank iters=%u reps=%llu\n\n", iters,
              static_cast<unsigned long long>(reps));

  struct Config {
    const char* name;
    graph::Graph g;
  };
  gen::PlantedHierarchyOptions ph;
  ph.branching = static_cast<uint32_t>(ph_branch);
  ph.depth = 3;
  ph.leaf_size = 10;
  std::vector<Config> configs;
  configs.push_back({"high", gen::Caveman(static_cast<uint32_t>(caves),
                                          static_cast<uint32_t>(cave_size),
                                          0.02, /*seed=*/7)});
  configs.push_back({"medium", gen::PlantedHierarchy(ph, /*seed=*/7)});
  configs.push_back(
      {"low", gen::RMat(static_cast<uint32_t>(rmat_scale),
                        4ull << rmat_scale, 0.57, 0.19, 0.19, /*seed=*/7)});

  std::vector<ConfigResult> results;
  bool all_agree = true;
  for (Config& config : configs) {
    const graph::Graph& g = config.g;
    EngineOptions options;
    options.config.iterations = 20;
    options.config.seed = 7;
    Engine engine(options);
    StatusOr<CompressedGraph> compressed = engine.Summarize(g);
    if (!compressed.ok()) {
      std::fprintf(stderr, "summarize(%s) failed: %s\n", config.name,
                   compressed.status().ToString().c_str());
      return 1;
    }
    const summary::SummaryGraph& s = compressed.value().summary();

    ConfigResult r;
    r.name = config.name;
    r.nodes = g.num_nodes();
    r.edges = g.num_edges();
    r.cost = compressed.value().stats().cost;
    std::printf("[%s] nodes=%llu edges=%llu cost=%llu (%.1f%% of |E|)\n",
                config.name, static_cast<unsigned long long>(r.nodes),
                static_cast<unsigned long long>(r.edges),
                static_cast<unsigned long long>(r.cost),
                100.0 * static_cast<double>(r.cost) /
                    static_cast<double>(r.edges));

    // Baseline: materialize adjacency once, then iterate at edge cost.
    std::vector<double> batched_pr;
    {
      WallTimer timer;
      for (uint64_t rep = 0; rep < reps; ++rep) {
        batched_pr = algs::PageRankOnSummaryBatched(s, 0.85, iters);
      }
      r.runs.push_back({"batched", 1, timer.Seconds()});
    }

    std::vector<double> native_pr;
    for (uint32_t t : thread_list) {
      ThreadPool pool(t);
      ThreadPool* pool_ptr = t > 1 ? &pool : nullptr;
      WallTimer timer;
      for (uint64_t rep = 0; rep < reps; ++rep) {
        native_pr = algs::PageRankOnHierarchy(s, 0.85, iters, pool_ptr);
      }
      r.runs.push_back({"hierarchy", t, timer.Seconds()});
      for (size_t i = 0; i < native_pr.size(); ++i) {
        r.max_abs_diff =
            std::max(r.max_abs_diff, std::fabs(native_pr[i] - batched_pr[i]));
      }
    }

    // Exactness spot checks against decode-then-compute.
    const NodeId start = g.num_nodes() / 2;
    r.bfs_agree = algs::BfsOnHierarchy(s, start) == algs::BfsOnGraph(g, start);
    r.triangles_agree =
        algs::TrianglesOnHierarchy(s) == algs::TrianglesOnGraph(g);

    const double base_seconds = r.runs.front().seconds;
    std::printf("  %-10s %-8s %10s %10s\n", "mode", "threads", "seconds",
                "speedup");
    for (const Run& run : r.runs) {
      std::printf("  %-10s %-8u %10.3f %9.2fx\n", run.mode.c_str(),
                  run.threads, run.seconds, base_seconds / run.seconds);
    }
    std::printf("  pagerank max|diff|=%.3g bfs=%s triangles=%s\n\n",
                r.max_abs_diff, r.bfs_agree ? "exact" : "MISMATCH",
                r.triangles_agree ? "exact" : "MISMATCH");
    all_agree = all_agree && r.bfs_agree && r.triangles_agree &&
                r.max_abs_diff < 1e-9;
    results.push_back(std::move(r));
  }

  std::string json = "{\"bench\":\"analytics\",\"iters\":" +
                     std::to_string(iters) +
                     ",\"reps\":" + std::to_string(reps) + ",\"configs\":[";
  for (size_t c = 0; c < results.size(); ++c) {
    const ConfigResult& r = results[c];
    json += (c == 0 ? "" : ",");
    json += "{\"name\":\"" + r.name + "\",\"nodes\":" +
            std::to_string(r.nodes) + ",\"edges\":" + std::to_string(r.edges) +
            ",\"cost\":" + std::to_string(r.cost) + ",\"runs\":[";
    const double base_seconds = r.runs.front().seconds;
    for (size_t i = 0; i < r.runs.size(); ++i) {
      const Run& run = r.runs[i];
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"mode\":\"%s\",\"threads\":%u,\"seconds\":%.6f,"
                    "\"speedup_vs_batched\":%.4f}",
                    i == 0 ? "" : ",", run.mode.c_str(), run.threads,
                    run.seconds, base_seconds / run.seconds);
      json += buf;
    }
    char tail[160];
    std::snprintf(tail, sizeof(tail),
                  "],\"pagerank_max_abs_diff\":%.3e,\"bfs_agree\":%s,"
                  "\"triangles_agree\":%s}",
                  r.max_abs_diff, r.bfs_agree ? "true" : "false",
                  r.triangles_agree ? "true" : "false");
    json += tail;
  }
  json += "]}";

  std::printf("%s\n", json.c_str());
  FILE* f = std::fopen("BENCH_analytics.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("wrote BENCH_analytics.json\n");
  }
  if (!all_agree) {
    std::fprintf(stderr, "FAIL: hierarchy-native results diverged\n");
    return 1;
  }
  return 0;
}
