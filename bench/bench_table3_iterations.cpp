// Table III: effect of the iteration count T on SLUGGER's relative output
// size — sizes shrink with T and nearly converge by T = 40.
#include "bench_common.hpp"

int main() {
  using namespace slugger;
  using namespace slugger::bench;

  // Heavy sweep (156 iterations worth of work per dataset): default to the
  // tiny scale; export SLUGGER_BENCH_SCALE to override.
  gen::Scale scale = BenchScale(gen::Scale::kTiny);
  PrintHeaderLine("Table III — effect of the number of iterations T", scale, 1);

  const uint32_t ts[] = {1, 5, 10, 20, 40, 80};
  std::printf("%-8s", "dataset");
  for (uint32_t t : ts) std::printf("    T=%-4u", t);
  std::printf("   paper(T=20)\n");

  for (const auto& spec : gen::AllDatasets()) {
    graph::Graph g = gen::GenerateDataset(spec.name, scale, 1);
    std::printf("%-8s", spec.name.c_str());
    double prev = 2.0;
    for (uint32_t t : ts) {
      RunResult r = RunAlgorithm("Slugger", g, 1, t);
      std::printf(" %9.3f", r.relative_size);
      std::fflush(stdout);
      prev = r.relative_size;
    }
    (void)prev;
    std::printf("   %9.3f\n", spec.paper_relative_size);
  }
  std::printf("\nExpected shape: monotone-ish decrease, near-convergence "
              "after T = 40 (paper Table III).\n");
  return 0;
}
