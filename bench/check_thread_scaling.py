#!/usr/bin/env python3
"""CI smoke gate for thread-scaling regressions.

Reads the JSON emitted by bench_threads (BENCH_threads.json) and fails when
the merge-phase speedup of the deterministic engine at a given thread count
over the 1-thread run drops below a threshold. Meant for smoke-scale CI
runs, so the default threshold (1.3x at 4 threads) leaves ample headroom
over the ~3x seen on dedicated hardware.

Usage:
    check_thread_scaling.py [BENCH_threads.json]
        [--threads N] [--min-speedup X] [--min-merge-seconds S]

Exit codes: 0 pass, 1 regression, 2 bad input. If the 1-thread merge phase
ran faster than --min-merge-seconds, the gate passes with a notice instead
of judging noise-dominated timings.
"""

import argparse
import json
import os
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?", default="BENCH_threads.json")
    parser.add_argument("--threads", type=int, default=4,
                        help="thread count whose speedup is gated")
    parser.add_argument("--min-speedup", type=float, default=1.3,
                        help="minimum acceptable merge-phase speedup")
    parser.add_argument("--min-merge-seconds", type=float, default=0.2,
                        help="skip the gate when the 1-thread merge phase "
                             "is shorter than this (timing noise)")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {args.report}: {err}", file=sys.stderr)
        return 2

    runs = report.get("runs", [])
    deterministic = {r["threads"]: r for r in runs if r.get("deterministic")}
    base = deterministic.get(1)
    gated = deterministic.get(args.threads)
    if base is None or gated is None:
        print(f"error: need deterministic runs at 1 and {args.threads} "
              f"threads in {args.report}", file=sys.stderr)
        return 2

    for run in runs:
        if not run.get("lossless", False):
            print(f"FAIL: run at {run['threads']} threads was not lossless",
                  file=sys.stderr)
            return 1

    cores = os.cpu_count() or 1
    if cores < args.threads:
        print(f"SKIP: only {cores} core(s) available; cannot judge a "
              f"{args.threads}-thread speedup")
        return 0

    base_s = base["merge_seconds"]
    gated_s = gated["merge_seconds"]
    if base_s < args.min_merge_seconds:
        print(f"SKIP: 1-thread merge phase took only {base_s:.3f}s "
              f"(< {args.min_merge_seconds}s); too noisy to gate")
        return 0

    speedup = base_s / gated_s if gated_s > 0 else float("inf")
    verdict = "PASS" if speedup >= args.min_speedup else "FAIL"
    print(f"{verdict}: merge-phase speedup at {args.threads} threads = "
          f"{speedup:.2f}x (1t {base_s:.3f}s -> {args.threads}t "
          f"{gated_s:.3f}s, threshold {args.min_speedup}x)")
    return 0 if verdict == "PASS" else 1


if __name__ == "__main__":
    sys.exit(main())
