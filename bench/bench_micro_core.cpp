// Micro benchmarks of the core operations (google-benchmark), plus the
// §III-B3 memoization claims: warm-up time (< 2 s in the paper) and
// memo-table footprint (~56 KB in the paper).
#include <benchmark/benchmark.h>

#include "core/candidate_generation.hpp"
#include "core/memo_table.hpp"
#include "core/slugger.hpp"
#include "core/merge_planner.hpp"
#include "core/slugger_state.hpp"
#include "gen/generators.hpp"
#include "summary/neighbor_query.hpp"
#include "util/dsu.hpp"
#include "util/flat_map.hpp"
#include "util/timer.hpp"

namespace {

using namespace slugger;

const graph::Graph& BenchGraph() {
  static const graph::Graph* g = [] {
    gen::PlantedHierarchyOptions opt;
    opt.branching = 4;
    opt.depth = 3;
    opt.leaf_size = 10;
    opt.leaf_density = 0.9;
    opt.pair_link_prob = 0.4;
    opt.pair_link_decay = 0.1;
    opt.noise_density = 1e-4;
    return new graph::Graph(gen::PlantedHierarchy(opt, 13));
  }();
  return *g;
}

void BM_FlatMapPutFind(benchmark::State& state) {
  FlatMap32<int8_t> map;
  uint32_t i = 0;
  for (auto _ : state) {
    map.Put(i & 1023, 1);
    benchmark::DoNotOptimize(map.Find((i * 7) & 1023));
    ++i;
  }
}
BENCHMARK(BM_FlatMapPutFind);

void BM_DsuFind(benchmark::State& state) {
  Dsu dsu(100000);
  Rng rng(1);
  for (uint32_t i = 0; i < 90000; ++i) {
    dsu.Unite(static_cast<uint32_t>(rng.Below(100000)),
              static_cast<uint32_t>(rng.Below(100000)));
  }
  uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsu.Find(i % 100000));
    ++i;
  }
}
BENCHMARK(BM_DsuFind);

void BM_MemoSolveHit(benchmark::State& state) {
  core::MemoTable table;
  const core::Universe& u =
      core::GetCase2Universe(true, true, true);
  int8_t target[16] = {0};
  target[0] = 1;
  target[3] = 1;
  table.Solve(u, target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Solve(u, target));
  }
}
BENCHMARK(BM_MemoSolveHit);

void BM_SavingEvaluation(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  core::SluggerState st(g);
  core::MergePlanner planner(&st);
  core::MergePlan plan;
  uint32_t i = 0;
  const auto& roots = st.roots();
  for (auto _ : state) {
    SupernodeId a = roots[i % roots.size()];
    SupernodeId b = roots[(i * 31 + 7) % roots.size()];
    if (a != b) {
      planner.EvaluateInto(a, b, &plan);
      benchmark::DoNotOptimize(plan.saving);
    }
    ++i;
  }
}
BENCHMARK(BM_SavingEvaluation);

void BM_ShinglePass(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  core::SluggerState st(g);
  core::CandidateGenerator generator(g, 1, 500, 10);
  uint32_t t = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Generate(st, t++));
  }
}
BENCHMARK(BM_ShinglePass)->Unit(benchmark::kMillisecond);

void BM_NeighborQuery(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  core::SluggerConfig config;
  config.iterations = 10;
  static core::SluggerResult* result =
      new core::SluggerResult(core::Summarize(g, config));
  summary::NeighborQuery query(result->summary);
  uint32_t u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.Neighbors(u % g.num_nodes()));
    ++u;
  }
}
BENCHMARK(BM_NeighborQuery);

void BM_SummarizeEndToEnd(benchmark::State& state) {
  graph::Graph g = gen::ErdosRenyi(2000, 8000, 3);
  for (auto _ : state) {
    core::SluggerConfig config;
    config.iterations = 5;
    benchmark::DoNotOptimize(core::Summarize(g, config));
  }
}
BENCHMARK(BM_SummarizeEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Paper §III-B3 claims first: warm-up under 2 seconds, table ~56 KB.
  slugger::core::MemoTable table;
  slugger::WallTimer timer;
  size_t entries = table.WarmUp();
  double secs = timer.Seconds();
  std::printf("memo warm-up: %zu entries in %.2fs (paper: < 2s); "
              "approx footprint %.1f KB (paper: ~56 KB)\n\n",
              entries, secs, table.ApproxBytes() / 1024.0);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
