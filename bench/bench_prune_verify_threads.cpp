// Thread-scaling benchmark of the parallel pruning and verify/decode
// paths (ISSUE 2).
//
// Builds one unpruned summary of an RMAT graph, then sweeps worker counts:
// per count it times PruneSummary on the pool (on a fresh copy of the
// summary) and VerifyLossless of the pruned result (parallel decode +
// compare). The pruned bytes are checked identical across counts (the
// parallel pruning path is thread-count invariant). Results go to stdout
// and to BENCH_prune_verify.json as one machine-readable JSON object.
//
// Env knobs:
//   SLUGGER_BENCH_PV_SCALE   RMAT scale (default 14 -> 16384 nodes)
//   SLUGGER_BENCH_PV_EDGES   edge count (default 8 * num_nodes)
//   SLUGGER_BENCH_PV_ITERS   merge iterations T (default 20)
//   SLUGGER_BENCH_THREAD_LIST  comma list of worker counts (default 1,2,4,8)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_env.hpp"
#include "core/pruning.hpp"
#include "core/slugger.hpp"
#include "gen/generators.hpp"
#include "summary/serialize.hpp"
#include "summary/verify.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using slugger::bench::EnvU64;
using slugger::bench::ThreadList;

struct Run {
  uint32_t threads;
  double prune_seconds;
  double verify_seconds;
  uint64_t pruned_cost;
  bool lossless;
  bool bytes_match;
};

}  // namespace

int main() {
  using namespace slugger;

  const uint32_t scale =
      static_cast<uint32_t>(EnvU64("SLUGGER_BENCH_PV_SCALE", 14));
  const uint64_t num_nodes = 1ull << scale;
  const uint64_t edges = EnvU64("SLUGGER_BENCH_PV_EDGES", 8 * num_nodes);
  const uint32_t iterations =
      static_cast<uint32_t>(EnvU64("SLUGGER_BENCH_PV_ITERS", 20));
  std::vector<uint32_t> threads = ThreadList();

  std::printf("=== prune + verify thread scaling ===\n");
  std::printf("rmat scale=%u nodes=%llu edges=%llu iterations=%u\n\n", scale,
              static_cast<unsigned long long>(num_nodes),
              static_cast<unsigned long long>(edges), iterations);

  graph::Graph g = gen::RMat(scale, edges, 0.57, 0.19, 0.19, /*seed=*/7);

  // One unpruned summary, shared by every pool-size run.
  core::SluggerConfig config;
  config.iterations = iterations;
  config.seed = 7;
  config.num_threads = ThreadPool::DefaultThreads();
  config.pruning_rounds = 0;
  core::SluggerResult base = core::Summarize(g, config);
  std::printf("unpruned cost=%llu (merge %.3fs at %u threads)\n\n",
              static_cast<unsigned long long>(base.stats.cost),
              base.merge_seconds, base.threads_used);

  std::string reference_bytes;
  std::vector<Run> runs;
  for (uint32_t t : threads) {
    ThreadPool pool(t);
    summary::SummaryGraph pruned = base.summary;
    core::PruneOptions popt;
    popt.pool = &pool;

    WallTimer prune_timer;
    core::PruneSummary(&pruned, g, popt);
    double prune_seconds = prune_timer.Seconds();

    WallTimer verify_timer;
    bool lossless = summary::VerifyLossless(g, pruned, &pool).ok();
    double verify_seconds = verify_timer.Seconds();

    std::string bytes = summary::SerializeSummary(pruned);
    if (reference_bytes.empty()) reference_bytes = bytes;

    Run run;
    run.threads = t;
    run.prune_seconds = prune_seconds;
    run.verify_seconds = verify_seconds;
    run.pruned_cost = summary::ComputeStats(pruned).cost;
    run.lossless = lossless;
    run.bytes_match = bytes == reference_bytes;
    runs.push_back(run);
    std::printf(
        "threads=%-2u prune=%7.3fs  verify=%7.3fs  cost=%llu  lossless=%s  "
        "bytes_match=%s\n",
        t, run.prune_seconds, run.verify_seconds,
        static_cast<unsigned long long>(run.pruned_cost),
        run.lossless ? "yes" : "NO", run.bytes_match ? "yes" : "NO");
  }

  const Run* baseline = nullptr;
  for (const Run& r : runs) {
    if (r.threads == 1) baseline = &r;
  }
  if (baseline != nullptr) {
    std::printf("\nspeedup vs 1 thread:\n");
    for (const Run& r : runs) {
      std::printf("  threads=%-2u prune %.2fx  verify %.2fx\n", r.threads,
                  r.prune_seconds > 0
                      ? baseline->prune_seconds / r.prune_seconds
                      : 0.0,
                  r.verify_seconds > 0
                      ? baseline->verify_seconds / r.verify_seconds
                      : 0.0);
    }
  }

  std::string json =
      "{\"bench\":\"prune_verify\",\"graph\":\"rmat\",\"scale\":" +
      std::to_string(scale) + ",\"nodes\":" + std::to_string(g.num_nodes()) +
      ",\"edges\":" + std::to_string(g.num_edges()) +
      ",\"iterations\":" + std::to_string(iterations) + ",\"runs\":[";
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"threads\":%u,\"prune_seconds\":%.6f,"
                  "\"verify_seconds\":%.6f,\"cost\":%llu,\"lossless\":%s,"
                  "\"bytes_match\":%s}",
                  i == 0 ? "" : ",", r.threads, r.prune_seconds,
                  r.verify_seconds,
                  static_cast<unsigned long long>(r.pruned_cost),
                  r.lossless ? "true" : "false",
                  r.bytes_match ? "true" : "false");
    json += buf;
  }
  json += "]}";

  std::printf("\n%s\n", json.c_str());
  FILE* f = std::fopen("BENCH_prune_verify.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("wrote BENCH_prune_verify.json\n");
  }

  bool ok = true;
  for (const Run& r : runs) ok = ok && r.lossless && r.bytes_match;
  return ok ? 0 : 1;
}
