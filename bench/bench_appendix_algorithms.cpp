// §VIII-C: graph algorithms running directly on summaries vs. on the raw
// graph — BFS, PageRank, Dijkstra, triangle counting. Results must match
// exactly; the summary pays a partial-decompression overhead.
#include "algs/bfs.hpp"
#include "algs/dijkstra.hpp"
#include "algs/pagerank.hpp"
#include "algs/triangles.hpp"
#include "bench_common.hpp"

int main() {
  using namespace slugger;
  using namespace slugger::bench;

  gen::Scale scale = BenchScale(gen::Scale::kTiny);
  PrintHeaderLine("Appendix VIII-C — algorithms on summaries vs raw graphs",
                  scale, 1);

  const char* datasets[] = {"PR-syn", "EM-syn", "CN-syn", "EU-syn"};
  std::printf("%-8s %-10s %12s %12s %10s %8s\n", "dataset", "algorithm",
              "raw [ms]", "summary [ms]", "overhead", "match");
  for (const char* name : datasets) {
    graph::Graph g = gen::GenerateDataset(name, scale, 1);
    core::SluggerConfig config;
    config.iterations = 20;
    config.seed = 1;
    core::SluggerResult r = core::Summarize(g, config);
    const summary::SummaryGraph& s = r.summary;

    {
      WallTimer t1;
      auto raw = algs::BfsOnGraph(g, 0);
      double ms_raw = t1.Millis();
      WallTimer t2;
      auto sum = algs::BfsOnSummary(s, 0);
      double ms_sum = t2.Millis();
      std::printf("%-8s %-10s %12.2f %12.2f %9.1fx %8s\n", name, "BFS",
                  ms_raw, ms_sum, ms_sum / std::max(ms_raw, 1e-9),
                  raw == sum ? "yes" : "NO");
    }
    {
      WallTimer t1;
      auto raw = algs::PageRankOnGraph(g, 0.85, 10);
      double ms_raw = t1.Millis();
      WallTimer t2;
      auto sum = algs::PageRankOnSummary(s, 0.85, 10);
      double ms_sum = t2.Millis();
      bool match = true;
      for (size_t i = 0; i < raw.size(); ++i) {
        if (std::abs(raw[i] - sum[i]) > 1e-9) match = false;
      }
      std::printf("%-8s %-10s %12.2f %12.2f %9.1fx %8s\n", name, "PageRank",
                  ms_raw, ms_sum, ms_sum / std::max(ms_raw, 1e-9),
                  match ? "yes" : "NO");
    }
    {
      WallTimer t1;
      auto raw = algs::DijkstraOnGraph(g, 0);
      double ms_raw = t1.Millis();
      WallTimer t2;
      auto sum = algs::DijkstraOnSummary(s, 0);
      double ms_sum = t2.Millis();
      std::printf("%-8s %-10s %12.2f %12.2f %9.1fx %8s\n", name, "Dijkstra",
                  ms_raw, ms_sum, ms_sum / std::max(ms_raw, 1e-9),
                  raw == sum ? "yes" : "NO");
    }
    {
      WallTimer t1;
      uint64_t raw = algs::TrianglesOnGraph(g);
      double ms_raw = t1.Millis();
      WallTimer t2;
      uint64_t sum = algs::TrianglesOnSummary(s);
      double ms_sum = t2.Millis();
      std::printf("%-8s %-10s %12.2f %12.2f %9.1fx %8s\n", name, "Triangles",
                  ms_raw, ms_sum, ms_sum / std::max(ms_raw, 1e-9),
                  raw == sum ? "yes" : "NO");
    }
    std::fflush(stdout);
  }
  std::printf("\nAll algorithms produce identical results on the summary; "
              "the overhead factor is the price of on-the-fly partial "
              "decompression (paper §VIII-C).\n");
  return 0;
}
