// Fig. 5(a)+(b): relative output size and running time of the five
// summarizers on all 16 dataset analogs, with SLUGGER's speedups over
// SWeG and SAGS (the orange/green factors of Fig. 5(b)).
#include "bench_common.hpp"

int main() {
  using namespace slugger;
  using namespace slugger::bench;

  gen::Scale scale = BenchScale(gen::Scale::kSmall);
  uint32_t seeds = SeedsFromEnv(1);
  PrintHeaderLine(
      "Fig. 5 — compactness and speed on all 16 dataset analogs", scale,
      seeds);

  const char* algos[] = {"Slugger", "SWeG", "MoSSo", "Randomized", "SAGS"};

  std::printf("(a) relative size of outputs; (b) running time [s]\n");
  std::printf("'*' = Randomized hit its %.0fs budget (paper: >24h timeout)\n\n",
              kRandomizedBudgetSeconds);
  std::printf("%-8s %10s |", "dataset", "|E|");
  for (const char* algo : algos) std::printf(" %10s", algo);
  std::printf(" | paper(Slg)\n");

  double win_count = 0, total = 0;
  for (const auto& spec : gen::AllDatasets()) {
    graph::Graph g = gen::GenerateDataset(spec.name, scale, 1);
    double sizes[5] = {0};
    double times[5] = {0};
    bool capped[5] = {false};
    for (int a = 0; a < 5; ++a) {
      std::vector<double> size_acc, time_acc;
      for (uint32_t s = 1; s <= seeds; ++s) {
        RunResult r = RunAlgorithm(algos[a], g, s);
        size_acc.push_back(r.relative_size);
        time_acc.push_back(r.seconds);
        capped[a] |= r.timed_out;
      }
      sizes[a] = Aggregate(size_acc).mean;
      times[a] = Aggregate(time_acc).mean;
    }
    // (a) sizes row
    std::printf("%-8s %10llu |", spec.name.c_str(),
                static_cast<unsigned long long>(g.num_edges()));
    for (int a = 0; a < 5; ++a) {
      std::printf(" %9.3f%s", sizes[a], capped[a] ? "*" : " ");
    }
    std::printf(" | %10.3f\n", spec.paper_relative_size);
    // (b) times row
    std::printf("%-8s %10s |", "", "time[s]");
    for (int a = 0; a < 5; ++a) std::printf(" %9.2f ", times[a]);
    std::printf(" | x%.2f vs SWeG, x%.2f vs SAGS\n", times[1] / times[0],
                times[4] / times[0]);

    double best_other = 1e30;
    for (int a = 1; a < 5; ++a) best_other = std::min(best_other, sizes[a]);
    if (sizes[0] <= best_other) win_count += 1;
    total += 1;
  }
  std::printf("\nSlugger most concise on %.0f/%.0f datasets "
              "(paper: 16/16)\n",
              win_count, total);
  return 0;
}
