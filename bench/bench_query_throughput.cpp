// Multi-threaded neighbor-query throughput over one shared
// slugger::CompressedGraph (ISSUE 3).
//
// Compress an RMAT graph once, then hammer Neighbors() from 1/2/4/8
// reader threads, each with its own QueryScratch — the scratch split that
// makes the facade's query path safe for concurrent readers. Near-linear
// scaling proves the shared index really is contention-free. Results go
// to stdout as a table and to BENCH_query_throughput.json as one
// machine-readable JSON object for the perf trajectory.
//
// Env knobs:
//   SLUGGER_BENCH_QT_SCALE     RMAT scale (default 14 -> 16384 nodes)
//   SLUGGER_BENCH_QT_EDGES     edge count (default 8 * num_nodes)
//   SLUGGER_BENCH_QT_QUERIES   queries per thread (default 200000)
//   SLUGGER_BENCH_THREAD_LIST  comma list of reader counts (default 1,2,4,8)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "bench_env.hpp"
#include "gen/generators.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace {

using slugger::bench::EnvU64;
using slugger::bench::ThreadList;

struct Run {
  uint32_t readers;
  double seconds;
  double queries_per_second;
  uint64_t checksum;  ///< summed degrees; must match across runs
};

}  // namespace

int main() {
  using namespace slugger;

  const uint32_t scale =
      static_cast<uint32_t>(EnvU64("SLUGGER_BENCH_QT_SCALE", 14));
  const uint64_t num_nodes = 1ull << scale;
  const uint64_t edges = EnvU64("SLUGGER_BENCH_QT_EDGES", 8 * num_nodes);
  const uint64_t queries_per_thread =
      EnvU64("SLUGGER_BENCH_QT_QUERIES", 200000);
  std::vector<uint32_t> readers = ThreadList();

  std::printf("=== neighbor-query throughput (shared CompressedGraph) ===\n");
  std::printf("rmat scale=%u nodes=%llu edges=%llu queries/thread=%llu\n\n",
              scale, static_cast<unsigned long long>(num_nodes),
              static_cast<unsigned long long>(edges),
              static_cast<unsigned long long>(queries_per_thread));

  graph::Graph g = gen::RMat(scale, edges, 0.57, 0.19, 0.19, /*seed=*/7);

  EngineOptions options;
  options.config.iterations = 20;
  options.config.seed = 7;
  Engine engine(options);
  WallTimer compress_timer;
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  if (!compressed.ok()) {
    std::fprintf(stderr, "summarize failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  const CompressedGraph& cg = compressed.value();
  std::printf("compressed once in %.2fs: cost=%llu (%.1f%% of |E|)\n\n",
              compress_timer.Seconds(),
              static_cast<unsigned long long>(cg.stats().cost),
              100.0 * cg.stats().RelativeSize(g.num_edges()));

  std::vector<Run> runs;
  for (uint32_t t : readers) {
    std::vector<uint64_t> degree_sums(t, 0);
    WallTimer timer;
    std::vector<std::thread> threads;
    threads.reserve(t);
    for (uint32_t r = 0; r < t; ++r) {
      threads.emplace_back([&, r] {
        // Distinct deterministic probe streams per reader: the total
        // work is t * queries_per_thread, so per-reader time staying
        // flat as t grows is the scaling claim.
        Rng rng(0x9E3779B9ull * (r + 1));
        QueryScratch scratch;
        uint64_t sum = 0;
        for (uint64_t q = 0; q < queries_per_thread; ++q) {
          NodeId v = static_cast<NodeId>(rng.Below(cg.num_nodes()));
          sum += cg.Neighbors(v, &scratch).size();
        }
        degree_sums[r] = sum;
      });
    }
    for (std::thread& th : threads) th.join();
    Run run;
    run.readers = t;
    run.seconds = timer.Seconds();
    run.queries_per_second =
        static_cast<double>(t) * static_cast<double>(queries_per_thread) /
        run.seconds;
    run.checksum = 0;
    for (uint64_t s : degree_sums) run.checksum += s;
    runs.push_back(run);
    std::printf("readers=%-2u %8.3fs total  %12.0f queries/s  checksum=%llu\n",
                t, run.seconds, run.queries_per_second,
                static_cast<unsigned long long>(run.checksum));
  }

  const Run* baseline = nullptr;
  for (const Run& r : runs) {
    if (r.readers == 1) baseline = &r;
  }
  if (baseline != nullptr) {
    std::printf("\nthroughput scaling vs 1 reader:\n");
    for (const Run& r : runs) {
      std::printf("  readers=%-2u %.2fx\n", r.readers,
                  r.queries_per_second / baseline->queries_per_second);
    }
  }

  // Machine-readable line for the perf trajectory.
  std::string json =
      "{\"bench\":\"query_throughput\",\"graph\":\"rmat\",\"scale\":" +
      std::to_string(scale) + ",\"nodes\":" + std::to_string(g.num_nodes()) +
      ",\"edges\":" + std::to_string(g.num_edges()) +
      ",\"queries_per_thread\":" + std::to_string(queries_per_thread) +
      ",\"cost\":" + std::to_string(cg.stats().cost) + ",\"runs\":[";
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"readers\":%u,\"seconds\":%.6f,"
                  "\"queries_per_second\":%.1f}",
                  i == 0 ? "" : ",", r.readers, r.seconds,
                  r.queries_per_second);
    json += buf;
  }
  json += "]}";

  std::printf("\n%s\n", json.c_str());
  FILE* f = std::fopen("BENCH_query_throughput.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("wrote BENCH_query_throughput.json\n");
  }
  return 0;
}
