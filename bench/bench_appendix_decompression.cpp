// §VIII-B: partial decompression — mean time to retrieve one node's
// neighbors straight off the summary, and its correlation with the
// average leaf depth (the paper reports Pearson r ≈ 0.82).
#include <algorithm>

#include "bench_common.hpp"
#include "summary/neighbor_query.hpp"
#include "util/random.hpp"

int main() {
  using namespace slugger;
  using namespace slugger::bench;

  gen::Scale scale = BenchScale(gen::Scale::kTiny);
  PrintHeaderLine("Appendix VIII-B — neighbor queries on summaries", scale, 1);

  std::printf("%-8s %14s %14s %12s\n", "dataset", "avg query [us]",
              "avg leaf depth", "rel. size");
  std::vector<double> depths, micros;
  for (const auto& spec : gen::AllDatasets()) {
    graph::Graph g = gen::GenerateDataset(spec.name, scale, 1);
    core::SluggerConfig config;
    config.iterations = 20;
    config.seed = 1;
    core::SluggerResult r = core::Summarize(g, config);

    summary::NeighborQuery query(r.summary);
    Rng rng(3);
    const uint32_t probes = 20000;
    uint64_t touched = 0;
    WallTimer timer;
    for (uint32_t i = 0; i < probes; ++i) {
      NodeId u = static_cast<NodeId>(rng.Below(g.num_nodes()));
      touched += query.Neighbors(u).size();
    }
    double us = timer.Micros() / probes;
    (void)touched;
    std::printf("%-8s %14.3f %14.2f %12.3f\n", spec.name.c_str(), us,
                r.stats.avg_leaf_depth,
                r.stats.RelativeSize(g.num_edges()));
    std::fflush(stdout);
    depths.push_back(r.stats.avg_leaf_depth);
    micros.push_back(us);
  }

  // Pearson correlation between avg leaf depth and query time.
  double mx = 0, my = 0;
  for (size_t i = 0; i < depths.size(); ++i) {
    mx += depths[i];
    my += micros[i];
  }
  mx /= depths.size();
  my /= micros.size();
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < depths.size(); ++i) {
    sxy += (depths[i] - mx) * (micros[i] - my);
    sxx += (depths[i] - mx) * (depths[i] - mx);
    syy += (micros[i] - my) * (micros[i] - my);
  }
  std::printf("\nPearson(depth, query time) = %.2f (paper: ~0.82); "
              "paper reports <15us per query everywhere.\n",
              sxy / std::sqrt(sxx * syy));
  return 0;
}
