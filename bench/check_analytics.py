#!/usr/bin/env python3
"""CI gate for hierarchy-native analytics (ISSUE 6).

Reads the JSON emitted by bench_analytics (BENCH_analytics.json) and
enforces two things:

1. Exactness, always: every config must report hierarchy-native PageRank
   within 1e-9 of the adjacency-materializing baseline, and exact BFS /
   triangle agreement. Agreement failures fail the gate even when the
   timings are too noisy to judge — correctness does not get a SKIP.
2. Speed, when timings are trustworthy: at the high-compression config
   the 1-thread hierarchy-native PageRank must beat
   PageRankOnSummaryBatched by --min-speedup (default 2x). This part is
   skipped when the baseline ran shorter than --min-single-seconds.

Usage:
    check_analytics.py [BENCH_analytics.json]
        [--config NAME] [--min-speedup X] [--min-single-seconds S]
        [--max-diff D]

Exit codes: 0 pass, 1 regression/disagreement, 2 bad input.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?", default="BENCH_analytics.json")
    parser.add_argument("--config", default="high",
                        help="config name whose 1-thread speedup is gated")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="minimum hierarchy-native speedup over the "
                             "adjacency-materializing baseline")
    parser.add_argument("--min-single-seconds", type=float, default=0.2,
                        help="skip the speed gate when the baseline is "
                             "shorter than this (timing noise)")
    parser.add_argument("--max-diff", type=float, default=1e-9,
                        help="maximum tolerated PageRank |diff| vs baseline")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {args.report}: {err}", file=sys.stderr)
        return 2

    configs = report.get("configs", [])
    if not configs:
        print(f"error: no configs in {args.report}", file=sys.stderr)
        return 2

    # Exactness first: never skipped, every config.
    exact_ok = True
    for c in configs:
        name = c.get("name", "?")
        diff = c.get("pagerank_max_abs_diff", float("inf"))
        bfs = c.get("bfs_agree", False)
        tri = c.get("triangles_agree", False)
        if diff > args.max_diff or not bfs or not tri:
            print(f"FAIL: config '{name}' disagrees with the baseline "
                  f"(pagerank |diff|={diff:.3e}, bfs_agree={bfs}, "
                  f"triangles_agree={tri})")
            exact_ok = False
    if not exact_ok:
        return 1
    print(f"exactness: all {len(configs)} config(s) agree "
          f"(PageRank within {args.max_diff}, BFS/triangles exact)")

    gated = next((c for c in configs if c.get("name") == args.config), None)
    if gated is None:
        print(f"error: no config named '{args.config}' in {args.report}",
              file=sys.stderr)
        return 2
    runs = gated.get("runs", [])
    batched = next((r for r in runs if r.get("mode") == "batched"), None)
    native = next((r for r in runs if r.get("mode") == "hierarchy"
                   and r.get("threads") == 1), None)
    if batched is None or native is None:
        print(f"error: need a 'batched' run and a 1-thread 'hierarchy' run "
              f"in config '{args.config}'", file=sys.stderr)
        return 2

    if batched["seconds"] < args.min_single_seconds:
        print(f"SKIP: batched baseline took only {batched['seconds']:.3f}s "
              f"(< {args.min_single_seconds}s); too noisy to gate speed")
        return 0

    speedup = (batched["seconds"] / native["seconds"]
               if native["seconds"] > 0 else float("inf"))
    verdict = "PASS" if speedup >= args.min_speedup else "FAIL"
    print(f"{verdict}: hierarchy-native PageRank at config "
          f"'{args.config}' = {speedup:.2f}x over the adjacency-"
          f"materializing baseline (threshold {args.min_speedup}x)")
    return 0 if verdict == "PASS" else 1


if __name__ == "__main__":
    sys.exit(main())
