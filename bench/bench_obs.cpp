// Observability overhead on the warm serving path (ISSUE 10): what do
// the registry counters, sampled latency histograms, and trace spans
// cost where it matters — the hot batch/single query loops?
//
// The same binary is built twice in CI: once normally and once with
// -DSLUGGER_OBS=OFF (instrumentation compiled out). Both builds run the
// IDENTICAL timed workload — summarize an RMAT graph, then best-of-reps
// warm NeighborsBatch and single-node Neighbors sweeps — and write
// their numbers to BENCH_obs.json (instrumented) or BENCH_obs_off.json
// (stripped). bench/check_obs.py compares the two and fails CI when the
// instrumented build is more than 5% slower on the warm batch path.
//
// The instrumented build additionally drives every layer the obs
// registry covers — engine, query path, paged storage + buffer manager,
// dynamic graph, snapshot registry, sharded coordinator — and dumps the
// Prometheus text to BENCH_obs.prom, which check_obs.py asserts carries
// metric families from all six layers (the end-to-end wiring proof).
//
// Env knobs:
//   SLUGGER_BENCH_OBS_SCALE   RMAT scale (default 13 -> 8192 nodes)
//   SLUGGER_BENCH_OBS_EDGES   edge count (default 8 * num_nodes)
//   SLUGGER_BENCH_OBS_BATCH   query batch size (default 10000)
//   SLUGGER_BENCH_OBS_REPS    repetitions per timed loop (default 30)
//   SLUGGER_BENCH_OBS_ITERS   summarize iterations (default 10)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "api/dynamic_graph.hpp"
#include "api/engine.hpp"
#include "api/sharded_graph.hpp"
#include "bench_env.hpp"
#include "gen/generators.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "storage/storage.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace {

using slugger::bench::EnvU64;

}  // namespace

int main() {
  using namespace slugger;

  const uint32_t scale =
      static_cast<uint32_t>(EnvU64("SLUGGER_BENCH_OBS_SCALE", 13));
  const uint64_t num_nodes = 1ull << scale;
  const uint64_t edges = EnvU64("SLUGGER_BENCH_OBS_EDGES", 8 * num_nodes);
  const uint64_t batch_size = EnvU64("SLUGGER_BENCH_OBS_BATCH", 10000);
  const uint64_t reps = EnvU64("SLUGGER_BENCH_OBS_REPS", 30);
  const uint64_t iterations = EnvU64("SLUGGER_BENCH_OBS_ITERS", 10);

  std::printf("=== observability overhead (SLUGGER_OBS=%s) ===\n",
              obs::kEnabled ? "ON" : "OFF");
  std::printf("rmat scale=%u nodes=%llu edges=%llu batch=%llu reps=%llu\n\n",
              scale, static_cast<unsigned long long>(num_nodes),
              static_cast<unsigned long long>(edges),
              static_cast<unsigned long long>(batch_size),
              static_cast<unsigned long long>(reps));

  graph::Graph g = gen::RMat(scale, edges, 0.57, 0.19, 0.19, /*seed=*/7);

  EngineOptions options;
  options.config.iterations = static_cast<uint32_t>(iterations);
  options.config.seed = 7;
  Engine engine(options);
  WallTimer compress_timer;
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  if (!compressed.ok()) {
    std::fprintf(stderr, "summarize failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  const CompressedGraph& cg = compressed.value();
  std::printf("compressed in %.2fs: cost=%llu\n", compress_timer.Seconds(),
              static_cast<unsigned long long>(cg.stats().cost));

  Rng rng(0x0B5);
  std::vector<NodeId> batch(batch_size);
  for (NodeId& v : batch) {
    v = static_cast<NodeId>(rng.Below(cg.num_nodes()));
  }

  // ------------------------------------------------- timed query loops
  // Best-of-reps: the minimum over many short reps is the steady-state
  // number least polluted by scheduler noise — exactly what a <= 5%
  // overhead gate needs.
  uint64_t checksum = 0;
  double batch_best_seconds = 1e300;
  double batch_total_seconds = 0;
  {
    BatchResult result;
    BatchScratch scratch;
    if (!cg.NeighborsBatch(batch, &result, &scratch).ok()) return 1;  // warm
    for (uint64_t rep = 0; rep < reps; ++rep) {
      WallTimer timer;
      if (!cg.NeighborsBatch(batch, &result, &scratch).ok()) return 1;
      const double seconds = timer.Seconds();
      batch_best_seconds = std::min(batch_best_seconds, seconds);
      batch_total_seconds += seconds;
      checksum = result.neighbors.size();
    }
  }
  const double batch_qps =
      static_cast<double>(batch_size) / batch_best_seconds;
  std::printf("warm batch query:  %12.0f q/s best-of-%llu (%.3fs total, "
              "checksum %llu)\n",
              batch_qps, static_cast<unsigned long long>(reps),
              batch_total_seconds, static_cast<unsigned long long>(checksum));

  double single_best_seconds = 1e300;
  double single_total_seconds = 0;
  {
    QueryScratch scratch;
    uint64_t sink = 0;
    for (const NodeId v : batch) sink += cg.Neighbors(v, &scratch).size();
    for (uint64_t rep = 0; rep < reps; ++rep) {
      WallTimer timer;
      for (const NodeId v : batch) sink += cg.Neighbors(v, &scratch).size();
      const double seconds = timer.Seconds();
      single_best_seconds = std::min(single_best_seconds, seconds);
      single_total_seconds += seconds;
    }
    if (sink == 0) std::printf("(empty graph?)\n");
  }
  const double single_qps =
      static_cast<double>(batch_size) / single_best_seconds;
  std::printf("warm single query: %12.0f q/s best-of-%llu (%.3fs total)\n\n",
              single_qps, static_cast<unsigned long long>(reps),
              single_total_seconds);

  // ------------------------------- exercise every layer (ON mode only)
  // Everything below runs AFTER the timed loops, so it cannot perturb
  // the overhead numbers; it exists to populate the registry from all
  // six instrumented layers for the BENCH_obs.prom wiring assertion.
  if (obs::kEnabled) {
    // Paged storage + buffer manager.
    const std::string paged_path = "BENCH_obs.v2.tmp";
    if (!storage::Save(cg, paged_path).ok()) {
      std::fprintf(stderr, "paged save failed\n");
      return 1;
    }
    storage::OpenOptions paged_open;
    paged_open.mode = storage::OpenOptions::Mode::kPaged;
    StatusOr<CompressedGraph> paged = storage::Open(paged_path, paged_open);
    if (!paged.ok()) {
      std::fprintf(stderr, "paged open failed: %s\n",
                   paged.status().ToString().c_str());
      return 1;
    }
    BatchResult result;
    BatchScratch scratch;
    if (!paged.value().NeighborsBatch(batch, &result, &scratch).ok()) {
      return 1;
    }
    std::remove(paged_path.c_str());

    // Dynamic graph: a burst of edits, then one compaction.
    DynamicGraph dg(cg, DynamicGraphOptions{});
    std::vector<EdgeEdit> edits;
    for (int i = 0; i < 2048; ++i) {
      NodeId u = static_cast<NodeId>(rng.Below(num_nodes));
      NodeId v = static_cast<NodeId>(rng.Below(num_nodes));
      if (u == v) v = (v + 1) % static_cast<NodeId>(num_nodes);
      edits.push_back({u, v, i % 2 == 0 ? EditKind::kInsert
                                        : EditKind::kDelete});
    }
    if (!dg.ApplyEdits(edits).ok() || !dg.Compact().ok()) {
      std::fprintf(stderr, "dynamic graph exercise failed\n");
      return 1;
    }

    // Snapshot registry: publish a refresh over the initial snapshot.
    SnapshotRegistry registry(cg);
    registry.Publish(cg);

    // Sharded coordinator (its shard builds also publish snapshots).
    ShardedOptions sharded_options;
    sharded_options.partition.num_shards = 2;
    sharded_options.engine.config.iterations =
        static_cast<uint32_t>(iterations);
    sharded_options.engine.config.seed = 7;
    StatusOr<ShardedGraph> sharded = ShardedGraph::Build(g, sharded_options);
    if (!sharded.ok()) {
      std::fprintf(stderr, "sharded build failed: %s\n",
                   sharded.status().ToString().c_str());
      return 1;
    }
    dist::GatherStats stats;
    if (!sharded.value().NeighborsBatch(batch, &result, &stats).ok()) {
      return 1;
    }
    std::printf("coordinator batch span id: %llu (2 shards)\n",
                static_cast<unsigned long long>(stats.span_id));

    const std::string prom = obs::DumpPrometheus();
    FILE* pf = std::fopen("BENCH_obs.prom", "w");
    if (pf == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_obs.prom\n");
      return 1;
    }
    std::fwrite(prom.data(), 1, prom.size(), pf);
    std::fclose(pf);
    std::printf("wrote BENCH_obs.prom (%zu bytes)\n", prom.size());
  }

  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"obs\",\"obs_enabled\":%s,\"graph\":\"rmat\","
      "\"scale\":%u,\"nodes\":%llu,\"edges\":%llu,\"batch\":%llu,"
      "\"reps\":%llu,\"checksum\":%llu,"
      "\"batch_qps\":%.1f,\"batch_total_seconds\":%.6f,"
      "\"single_qps\":%.1f,\"single_total_seconds\":%.6f}",
      obs::kEnabled ? "true" : "false", scale,
      static_cast<unsigned long long>(g.num_nodes()),
      static_cast<unsigned long long>(g.num_edges()),
      static_cast<unsigned long long>(batch_size),
      static_cast<unsigned long long>(reps),
      static_cast<unsigned long long>(checksum), batch_qps,
      batch_total_seconds, single_qps, single_total_seconds);

  const char* json_path =
      obs::kEnabled ? "BENCH_obs.json" : "BENCH_obs_off.json";
  std::printf("\n%s\n", buf);
  FILE* f = std::fopen(json_path, "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", buf);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
