#!/usr/bin/env python3
"""CI smoke gate for sharded scatter-gather serving regressions.

Reads the JSON emitted by bench_dist (BENCH_dist.json) and fails when
the coordinator at a given shard count stops beating the sequential
single-box NeighborsBatch by the required factor. Checksum agreement
between the single box and every sharded run is checked UNCONDITIONALLY
and is fatal — a sharded deployment that answers differently is wrong at
any speed, noise floor or not.

Usage:
    check_dist.py [BENCH_dist.json]
        [--shards N] [--min-speedup X] [--min-single-seconds S]

Exit codes: 0 pass, 1 regression or checksum divergence, 2 bad input.
If the single-box baseline ran faster than --min-single-seconds, the
speedup gate passes with a notice instead of judging noise-dominated
timings (the checksum check stays live).
"""

import argparse
import json
import os
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?", default="BENCH_dist.json")
    parser.add_argument("--shards", type=int, default=4,
                        help="shard count whose coordinator speedup is gated")
    parser.add_argument("--min-speedup", type=float, default=1.3,
                        help="minimum acceptable speedup over the "
                             "sequential single-box batch")
    parser.add_argument("--min-single-seconds", type=float, default=0.2,
                        help="skip the speedup gate when the single-box "
                             "baseline is shorter than this (timing noise)")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {args.report}: {err}", file=sys.stderr)
        return 2

    runs = report.get("runs", [])
    single = next((r for r in runs if r.get("mode") == "single"), None)
    sharded = next((r for r in runs if r.get("mode") == "sharded"
                    and r.get("shards") == args.shards), None)
    if single is None or sharded is None:
        print(f"error: need a 'single' run and a 'sharded' run at "
              f"{args.shards} shards in {args.report}", file=sys.stderr)
        return 2

    # Correctness first, and never skipped: every sharded run must agree
    # with the single box byte for byte (the bench sums neighbor counts).
    diverged = [r for r in runs
                if r.get("checksum") != single.get("checksum")]
    if diverged:
        for r in diverged:
            print(f"FAIL: checksum diverged at {r.get('shards')} shard(s): "
                  f"{r.get('checksum')} != {single.get('checksum')}",
                  file=sys.stderr)
        return 1
    print(f"checksums agree across {len(runs)} run(s)")

    cores = os.cpu_count() or 1
    if cores < args.shards:
        print(f"SKIP: only {cores} core(s) available; cannot judge a "
              f"{args.shards}-shard dispatch speedup")
        return 0

    if single["seconds"] < args.min_single_seconds:
        print(f"SKIP: single-box baseline took {single['seconds']:.3f}s "
              f"(< {args.min_single_seconds}s); timings are noise at this "
              f"scale")
        return 0

    speedup = sharded["queries_per_second"] / single["queries_per_second"]
    print(f"single box: {single['queries_per_second']:,.0f} q/s; "
          f"{args.shards}-shard coordinator: "
          f"{sharded['queries_per_second']:,.0f} q/s -> {speedup:.2f}x")
    if speedup < args.min_speedup:
        print(f"FAIL: {args.shards}-shard speedup {speedup:.2f}x is below "
              f"the {args.min_speedup:.2f}x floor", file=sys.stderr)
        return 1
    print(f"PASS: >= {args.min_speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
