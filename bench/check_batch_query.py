#!/usr/bin/env python3
"""CI smoke gate for batched-query throughput regressions.

Reads the JSON emitted by bench_batch_query (BENCH_batch_query.json) and
fails when the parallel NeighborsBatch run at a given pool size stops
beating the per-node Neighbors() loop by the required factor. Meant for
smoke-scale CI runs, so the default threshold (1.3x at 4 threads) leaves
ample headroom over what dedicated hardware shows.

Usage:
    check_batch_query.py [BENCH_batch_query.json]
        [--threads N] [--min-speedup X] [--min-single-seconds S]

Exit codes: 0 pass, 1 regression, 2 bad input. If the single-node
baseline ran faster than --min-single-seconds, the gate passes with a
notice instead of judging noise-dominated timings.
"""

import argparse
import json
import os
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?", default="BENCH_batch_query.json")
    parser.add_argument("--threads", type=int, default=4,
                        help="pool size whose batch speedup is gated")
    parser.add_argument("--min-speedup", type=float, default=1.3,
                        help="minimum acceptable speedup over the "
                             "single-node query loop")
    parser.add_argument("--min-single-seconds", type=float, default=0.2,
                        help="skip the gate when the single-node baseline "
                             "is shorter than this (timing noise)")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {args.report}: {err}", file=sys.stderr)
        return 2

    runs = report.get("runs", [])
    single = next((r for r in runs if r.get("mode") == "single"), None)
    batch = next((r for r in runs if r.get("mode") == "batch"
                  and r.get("threads") == args.threads), None)
    if single is None or batch is None:
        print(f"error: need a 'single' run and a 'batch' run at "
              f"{args.threads} threads in {args.report}", file=sys.stderr)
        return 2

    cores = os.cpu_count() or 1
    if cores < args.threads:
        print(f"SKIP: only {cores} core(s) available; cannot judge a "
              f"{args.threads}-thread batch speedup")
        return 0

    if single["seconds"] < args.min_single_seconds:
        print(f"SKIP: single-node baseline took only "
              f"{single['seconds']:.3f}s (< {args.min_single_seconds}s); "
              f"too noisy to gate")
        return 0

    speedup = (batch["queries_per_second"] / single["queries_per_second"]
               if single["queries_per_second"] > 0 else float("inf"))
    verdict = "PASS" if speedup >= args.min_speedup else "FAIL"
    print(f"{verdict}: batch-query speedup at {args.threads} threads = "
          f"{speedup:.2f}x over the single-node loop "
          f"(threshold {args.min_speedup}x)")
    return 0 if verdict == "PASS" else 1


if __name__ == "__main__":
    sys.exit(main())
