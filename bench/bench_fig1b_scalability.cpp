// Fig. 1(b): SLUGGER scales linearly with |E|. Reproduced by inducing
// subgraphs of increasing size from the largest analog (U5-syn), exactly
// like the paper samples nodes from UK-05.
#include "bench_common.hpp"

int main() {
  using namespace slugger;
  using namespace slugger::bench;

  gen::Scale scale = BenchScale(gen::Scale::kSmall);
  PrintHeaderLine("Fig. 1(b) — scalability: runtime vs |E| (U5-syn subsamples)",
                  scale, 1);

  graph::Graph base = gen::GenerateDataset("U5-syn", scale, 1);
  std::printf("base: %u nodes, %llu edges\n\n", base.num_nodes(),
              static_cast<unsigned long long>(base.num_edges()));

  std::printf("%12s %12s %10s %14s\n", "|V|", "|E|", "seconds", "edges/sec");
  std::vector<double> xs, ys;
  for (double frac : {0.125, 0.25, 0.5, 0.75, 1.0}) {
    NodeId n = static_cast<NodeId>(base.num_nodes() * frac);
    graph::Graph g = gen::InducedSubsample(base, n, 7);
    core::SluggerConfig config;
    config.iterations = 20;
    config.seed = 1;
    WallTimer timer;
    core::SluggerResult r = core::Summarize(g, config);
    double secs = timer.Seconds();
    (void)r;
    std::printf("%12u %12llu %10.2f %14.0f\n", g.num_nodes(),
                static_cast<unsigned long long>(g.num_edges()), secs,
                g.num_edges() / std::max(secs, 1e-9));
    xs.push_back(static_cast<double>(g.num_edges()));
    ys.push_back(secs);
  }

  // Least-squares fit through the origin + R^2 against the linear model.
  double sxy = 0, sxx = 0, sy = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += xs[i] * ys[i];
    sxx += xs[i] * xs[i];
    sy += ys[i];
    syy += ys[i] * ys[i];
  }
  double slope = sxy / sxx;
  double ss_res = 0, ss_tot = 0, ymean = sy / ys.size();
  for (size_t i = 0; i < xs.size(); ++i) {
    ss_res += (ys[i] - slope * xs[i]) * (ys[i] - slope * xs[i]);
    ss_tot += (ys[i] - ymean) * (ys[i] - ymean);
  }
  std::printf("\nlinear fit through origin: time = %.3g * |E|;  R^2 vs "
              "linear model = %.4f (paper: linear, O(|E|))\n",
              slope, ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0);
  return 0;
}
