// Fig. 6: composition of SLUGGER outputs — the fraction of p-edges,
// n-edges and h-edges in the final encoding per dataset.
#include "bench_common.hpp"

int main() {
  using namespace slugger;
  using namespace slugger::bench;

  gen::Scale scale = BenchScale(gen::Scale::kSmall);
  PrintHeaderLine("Fig. 6 — edge-type composition of SLUGGER outputs", scale,
                  1);

  std::printf("%-8s %10s %10s %10s %12s\n", "dataset", "p-edges", "n-edges",
              "h-edges", "largest");
  uint32_t p_major = 0, h_major = 0;
  for (const auto& spec : gen::AllDatasets()) {
    graph::Graph g = gen::GenerateDataset(spec.name, scale, 1);
    core::SluggerConfig config;
    config.iterations = 20;
    config.seed = 1;
    core::SluggerResult r = core::Summarize(g, config);
    double p = r.stats.PFraction();
    double n = r.stats.NFraction();
    double h = r.stats.HFraction();
    const char* largest = p >= n && p >= h ? "p" : (h >= n ? "h" : "n");
    if (*largest == 'p') ++p_major;
    if (*largest == 'h') ++h_major;
    std::printf("%-8s %9.1f%% %9.1f%% %9.1f%% %12s\n", spec.name.c_str(),
                100 * p, 100 * n, 100 * h, largest);
    std::fflush(stdout);
  }
  std::printf("\np-edges largest on %u datasets, h-edges on %u "
              "(paper: 11 and 5); n-edges stay small except PR "
              "(paper: <5.1%% everywhere but PR at 13.2%%).\n",
              p_major, h_major);
  return 0;
}
