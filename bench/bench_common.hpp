// Shared infrastructure for the table/figure reproduction benches.
#ifndef SLUGGER_BENCH_BENCH_COMMON_HPP_
#define SLUGGER_BENCH_BENCH_COMMON_HPP_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/mosso.hpp"
#include "bench_env.hpp"
#include "baselines/randomized.hpp"
#include "baselines/sags.hpp"
#include "baselines/sweg.hpp"
#include "core/slugger.hpp"
#include "gen/datasets.hpp"
#include "gen/generators.hpp"
#include "summary/verify.hpp"
#include "util/timer.hpp"

namespace slugger::bench {

/// Result of one summarizer run.
struct RunResult {
  double relative_size = 0.0;
  double seconds = 0.0;
  bool timed_out = false;  ///< Randomized hit its budget (paper: "missing")
};

inline constexpr double kRandomizedBudgetSeconds = 20.0;

/// Runs one of {Slugger, SWeG, MoSSo, Randomized, SAGS} with the paper's
/// §IV-A parameters. Algorithms are named as in Fig. 5.
inline RunResult RunAlgorithm(const std::string& algo, const graph::Graph& g,
                              uint64_t seed, uint32_t slugger_iterations = 20) {
  RunResult out;
  WallTimer timer;
  if (algo == "Slugger") {
    core::SluggerConfig config;
    config.iterations = slugger_iterations;
    config.seed = seed;
    core::SluggerResult r = core::Summarize(g, config);
    out.seconds = timer.Seconds();
    out.relative_size = r.stats.RelativeSize(g.num_edges());
  } else if (algo == "SWeG") {
    baselines::SwegConfig config;
    config.iterations = 20;
    config.seed = seed;
    baselines::FlatSummary s = baselines::SummarizeSweg(g, config);
    out.seconds = timer.Seconds();
    out.relative_size = s.RelativeSize(g.num_edges());
  } else if (algo == "MoSSo") {
    baselines::MossoConfig config;
    config.seed = seed;
    baselines::FlatSummary s = baselines::SummarizeMosso(g, config);
    out.seconds = timer.Seconds();
    out.relative_size = s.RelativeSize(g.num_edges());
  } else if (algo == "Randomized") {
    baselines::RandomizedConfig config;
    config.seed = seed;
    config.time_budget_seconds = kRandomizedBudgetSeconds;
    baselines::FlatSummary s = baselines::SummarizeRandomized(g, config);
    out.seconds = timer.Seconds();
    out.relative_size = s.RelativeSize(g.num_edges());
    out.timed_out = out.seconds >= kRandomizedBudgetSeconds;
  } else if (algo == "SAGS") {
    baselines::SagsConfig config;
    config.seed = seed;
    baselines::FlatSummary s = baselines::SummarizeSags(g, config);
    out.seconds = timer.Seconds();
    out.relative_size = s.RelativeSize(g.num_edges());
  } else {
    std::fprintf(stderr, "unknown algorithm %s\n", algo.c_str());
    std::abort();
  }
  return out;
}

struct MeanStd {
  double mean = 0.0;
  double stdev = 0.0;
};

inline MeanStd Aggregate(const std::vector<double>& xs) {
  MeanStd out;
  if (xs.empty()) return out;
  for (double x : xs) out.mean += x;
  out.mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - out.mean) * (x - out.mean);
  out.stdev = xs.size() > 1 ? std::sqrt(var / (xs.size() - 1)) : 0.0;
  return out;
}

/// Number of seeds per configuration (paper: 5). Override with
/// SLUGGER_BENCH_SEEDS to trade precision for time; a malformed value
/// falls back instead of silently becoming atoi's zero.
inline uint32_t SeedsFromEnv(uint32_t fallback = 2) {
  return static_cast<uint32_t>(EnvU64("SLUGGER_BENCH_SEEDS", fallback));
}

/// Scale used by a bench: the env var wins; otherwise the bench default.
inline gen::Scale BenchScale(gen::Scale fallback) {
  const char* env = std::getenv("SLUGGER_BENCH_SCALE");
  if (env == nullptr) return fallback;
  return gen::ScaleFromEnv();
}

inline void PrintHeaderLine(const std::string& title, gen::Scale scale,
                            uint32_t seeds) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("scale=%s seeds=%u (env: SLUGGER_BENCH_SCALE, "
              "SLUGGER_BENCH_SEEDS)\n\n",
              gen::ScaleName(scale).c_str(), seeds);
}

}  // namespace slugger::bench

#endif  // SLUGGER_BENCH_BENCH_COMMON_HPP_
