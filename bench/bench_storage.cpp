// Cold-open latency and warm query throughput of the paged v2 format vs
// the monolithic v1 format (ISSUE 7): what does the out-of-core storage
// layer buy, and what does it cost?
//
// Summarize an RMAT graph once, write it in both formats, then measure:
//   open        per-rep cold open of each file. The monolithic load
//               parses and validates the whole file; the paged open
//               reads the header and page table only, so it should win
//               by orders of magnitude (CI gates >= 10x).
//   query       warm throughput over one random batch, in-memory vs
//               paged serving (CI gates paged within 2x once warm).
// Checksums (summed neighbor counts) must agree between every mode.
// Also reports how many file bytes the paged sweep actually faulted in —
// the out-of-core story in one number.
//
// Results go to stdout and BENCH_storage.json, gated by
// bench/check_storage.py.
//
// Env knobs:
//   SLUGGER_BENCH_STORAGE_SCALE    RMAT scale (default 18)
//   SLUGGER_BENCH_STORAGE_EDGES    edge count (default 8 * num_nodes)
//   SLUGGER_BENCH_STORAGE_BATCH    query batch size (default 20000)
//   SLUGGER_BENCH_STORAGE_REPS    repetitions per timed mode (default 8)
#include <sys/resource.h>

#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "bench_env.hpp"
#include "gen/generators.hpp"
#include "storage/paged_source.hpp"
#include "storage/storage.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace {

using slugger::bench::EnvU64;

uint64_t MaxRssBytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // linux: KiB
}

}  // namespace

int main() {
  using namespace slugger;

  const uint32_t scale =
      static_cast<uint32_t>(EnvU64("SLUGGER_BENCH_STORAGE_SCALE", 18));
  const uint64_t num_nodes = 1ull << scale;
  const uint64_t edges = EnvU64("SLUGGER_BENCH_STORAGE_EDGES", 8 * num_nodes);
  const uint64_t batch_size = EnvU64("SLUGGER_BENCH_STORAGE_BATCH", 20000);
  const uint64_t reps = EnvU64("SLUGGER_BENCH_STORAGE_REPS", 8);

  std::printf("=== paged vs monolithic storage ===\n");
  std::printf("rmat scale=%u nodes=%llu edges=%llu batch=%llu reps=%llu\n\n",
              scale, static_cast<unsigned long long>(num_nodes),
              static_cast<unsigned long long>(edges),
              static_cast<unsigned long long>(batch_size),
              static_cast<unsigned long long>(reps));

  graph::Graph g = gen::RMat(scale, edges, 0.57, 0.19, 0.19, /*seed=*/7);

  EngineOptions options;
  options.config.iterations = 20;
  options.config.seed = 7;
  Engine engine(options);
  WallTimer compress_timer;
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  if (!compressed.ok()) {
    std::fprintf(stderr, "summarize failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  const CompressedGraph& cg = compressed.value();
  std::printf("compressed once in %.2fs: cost=%llu\n", compress_timer.Seconds(),
              static_cast<unsigned long long>(cg.stats().cost));

  const std::string v1_path = "BENCH_storage.v1.tmp";
  const std::string v2_path = "BENCH_storage.v2.tmp";
  storage::SaveOptions v1_opts;
  v1_opts.format = storage::Format::kMonolithicV1;
  storage::SaveOptions v2_opts;  // default: paged v2
  StatusOr<std::string> v1_bytes = storage::Serialize(cg, v1_opts);
  StatusOr<std::string> v2_bytes = storage::Serialize(cg, v2_opts);
  if (!v1_bytes.ok() || !v2_bytes.ok() ||
      !storage::Save(cg, v1_path, v1_opts).ok() ||
      !storage::Save(cg, v2_path, v2_opts).ok()) {
    std::fprintf(stderr, "save failed\n");
    return 1;
  }
  std::printf("file sizes: v1=%zu bytes, v2=%zu bytes (page_size=%u)\n\n",
              v1_bytes.value().size(), v2_bytes.value().size(),
              storage::kDefaultPageSize);

  // ---------------------------------------------------------- cold open
  double mono_open_seconds = 0;
  double paged_open_seconds = 0;
  storage::OpenOptions paged_open;
  paged_open.mode = storage::OpenOptions::Mode::kPaged;
  for (uint64_t rep = 0; rep < reps; ++rep) {
    {
      WallTimer timer;
      StatusOr<CompressedGraph> opened = storage::Open(v1_path);
      mono_open_seconds += timer.Seconds();
      if (!opened.ok() || opened.value().num_nodes() != cg.num_nodes()) {
        std::fprintf(stderr, "monolithic open failed\n");
        return 1;
      }
    }
    {
      WallTimer timer;
      StatusOr<CompressedGraph> opened = storage::Open(v2_path, paged_open);
      paged_open_seconds += timer.Seconds();
      if (!opened.ok() || opened.value().num_nodes() != cg.num_nodes()) {
        std::fprintf(stderr, "paged open failed\n");
        return 1;
      }
    }
  }
  mono_open_seconds /= static_cast<double>(reps);
  paged_open_seconds /= static_cast<double>(reps);
  std::printf("cold open: monolithic %.2fms, paged %.3fms (%.0fx)\n",
              mono_open_seconds * 1e3, paged_open_seconds * 1e3,
              mono_open_seconds / paged_open_seconds);

  // --------------------------------------------------- warm query sweep
  Rng rng(0x57024A6E);
  std::vector<NodeId> batch(batch_size);
  for (NodeId& v : batch) {
    v = static_cast<NodeId>(rng.Below(cg.num_nodes()));
  }
  const double total_queries =
      static_cast<double>(batch_size) * static_cast<double>(reps);

  storage::OpenOptions serve_open;
  serve_open.mode = storage::OpenOptions::Mode::kPaged;
  // Serving configuration: keep the decoded-record working set of the
  // batch hot, the way a server sized for its traffic would.
  serve_open.record_cache_capacity =
      static_cast<uint32_t>(batch_size > (1u << 20) ? (1u << 20) : batch_size);
  StatusOr<CompressedGraph> paged = storage::Open(v2_path, serve_open);
  if (!paged.ok()) {
    std::fprintf(stderr, "paged open failed: %s\n",
                 paged.status().ToString().c_str());
    return 1;
  }

  uint64_t mem_checksum = 0;
  uint64_t paged_checksum = 0;
  double mem_qps = 0;
  double paged_qps = 0;
  {
    BatchResult result;
    BatchScratch scratch;
    if (!cg.NeighborsBatch(batch, &result, &scratch).ok()) return 1;  // warm
    WallTimer timer;
    for (uint64_t rep = 0; rep < reps; ++rep) {
      if (!cg.NeighborsBatch(batch, &result, &scratch).ok()) return 1;
      mem_checksum = result.neighbors.size();
    }
    mem_qps = total_queries / timer.Seconds();
  }
  {
    BatchResult result;
    BatchScratch scratch;
    if (!paged.value().NeighborsBatch(batch, &result, &scratch).ok()) {
      std::fprintf(stderr, "paged warm-up batch failed\n");
      return 1;
    }
    WallTimer timer;
    for (uint64_t rep = 0; rep < reps; ++rep) {
      if (!paged.value().NeighborsBatch(batch, &result, &scratch).ok()) {
        return 1;
      }
      paged_checksum = result.neighbors.size();
    }
    paged_qps = total_queries / timer.Seconds();
  }
  const bool checksums_agree = mem_checksum == paged_checksum;
  std::printf("warm batch query: in-memory %.0f q/s, paged %.0f q/s "
              "(%.2fx slower), checksums %s\n",
              mem_qps, paged_qps, mem_qps / paged_qps,
              checksums_agree ? "agree" : "DISAGREE");

  const storage::BufferStats bstats = paged.value().paged_source()
                                          ->buffer_stats();
  const uint64_t faulted_bytes =
      bstats.faults * paged.value().paged_source()->header().page_size;
  std::printf("paged sweep touched %llu of %zu file bytes (%.1f%%), "
              "process maxrss %llu MiB\n",
              static_cast<unsigned long long>(faulted_bytes),
              v2_bytes.value().size(),
              100.0 * static_cast<double>(faulted_bytes) /
                  static_cast<double>(v2_bytes.value().size()),
              static_cast<unsigned long long>(MaxRssBytes() >> 20));

  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"storage\",\"graph\":\"rmat\",\"scale\":%u,"
      "\"nodes\":%llu,\"edges\":%llu,\"batch\":%llu,\"reps\":%llu,"
      "\"cost\":%llu,\"v1_bytes\":%zu,\"v2_bytes\":%zu,\"page_size\":%u,"
      "\"open\":{\"monolithic_seconds\":%.6f,\"paged_seconds\":%.6f,"
      "\"speedup\":%.2f},"
      "\"query\":{\"inmem_qps\":%.1f,\"paged_qps\":%.1f,"
      "\"paged_slowdown\":%.4f,\"checksums_agree\":%s},"
      "\"paged_faulted_bytes\":%llu}",
      scale, static_cast<unsigned long long>(g.num_nodes()),
      static_cast<unsigned long long>(g.num_edges()),
      static_cast<unsigned long long>(batch_size),
      static_cast<unsigned long long>(reps),
      static_cast<unsigned long long>(cg.stats().cost),
      v1_bytes.value().size(), v2_bytes.value().size(),
      storage::kDefaultPageSize, mono_open_seconds, paged_open_seconds,
      mono_open_seconds / paged_open_seconds, mem_qps, paged_qps,
      mem_qps / paged_qps, checksums_agree ? "true" : "false",
      static_cast<unsigned long long>(faulted_bytes));

  std::printf("\n%s\n", buf);
  FILE* f = std::fopen("BENCH_storage.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", buf);
    std::fclose(f);
    std::printf("wrote BENCH_storage.json\n");
  }
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
  return checksums_agree ? 0 : 1;
}
