#!/usr/bin/env python3
"""CI gate for the observability layer (ISSUE 10).

Compares the two bench_obs runs CI produces — the normal instrumented
build (BENCH_obs.json) and the -DSLUGGER_OBS=OFF stripped build
(BENCH_obs_off.json) — and fails when instrumentation costs more than
--max-overhead (default 5%) on the warm batch-query path. The single-
query overhead is printed for the record but not gated: it is sampled
1-in-64 and sits inside timing noise by construction.

Also verifies the end-to-end wiring: the Prometheus dump the
instrumented run wrote (BENCH_obs.prom) must contain at least one
metric family from EVERY instrumented layer — engine, query path,
paged storage/buffer manager, dynamic graph, snapshot registry, and
the sharded coordinator. A refactor that silently drops one layer's
instrumentation fails here, not in production.

Usage:
    check_obs.py [BENCH_obs.json] [BENCH_obs_off.json]
        [--prom BENCH_obs.prom] [--max-overhead F]
        [--min-loop-seconds S]

Exit codes: 0 pass, 1 regression, 2 bad input. When the stripped
build's batch loop ran shorter than --min-loop-seconds in total, the
overhead gate passes with a notice instead of judging noise-dominated
timings (the wiring assertions still apply).
"""

import argparse
import json
import sys

# One required metric-name prefix per instrumented layer. bench_obs
# exercises all of them before dumping, so every prefix must appear.
LAYER_PREFIXES = {
    "engine": "slugger_engine_",
    "query path": "slugger_query_",
    "buffer manager": "slugger_buffer_",
    "paged storage": "slugger_paged_",
    "dynamic graph": "slugger_dynamic_",
    "snapshot registry": "slugger_snapshot_",
    "coordinator": "slugger_coord_",
}


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("on_report", nargs="?", default="BENCH_obs.json")
    parser.add_argument("off_report", nargs="?", default="BENCH_obs_off.json")
    parser.add_argument("--prom", default="BENCH_obs.prom",
                        help="Prometheus dump from the instrumented run")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="max fractional slowdown of the instrumented "
                             "warm batch path vs the stripped build")
    parser.add_argument("--min-loop-seconds", type=float, default=0.2,
                        help="skip the overhead gate when the stripped "
                             "batch loop totalled less than this")
    args = parser.parse_args()

    try:
        on = load(args.on_report)
        off = load(args.off_report)
        with open(args.prom, encoding="utf-8") as f:
            prom = f.read()
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read inputs: {err}", file=sys.stderr)
        return 2

    if not on.get("obs_enabled") or off.get("obs_enabled"):
        print(f"error: expected {args.on_report} from an instrumented build "
              f"and {args.off_report} from a SLUGGER_OBS=OFF build",
              file=sys.stderr)
        return 2
    for report, name in ((on, args.on_report), (off, args.off_report)):
        missing = [k for k in ("batch_qps", "single_qps", "checksum",
                               "batch_total_seconds") if k not in report]
        if missing:
            print(f"error: {name} is missing {missing}", file=sys.stderr)
            return 2

    failures = []

    # Same workload, same answers: a checksum mismatch means the two
    # builds did not run comparable work, so the comparison is void.
    if on["checksum"] != off["checksum"]:
        failures.append(
            f"checksum mismatch between builds ({on['checksum']} vs "
            f"{off['checksum']}): runs are not comparable")

    single_overhead = (off["single_qps"] - on["single_qps"]) / off["single_qps"]
    print(f"single query: stripped {off['single_qps']:.0f} q/s, "
          f"instrumented {on['single_qps']:.0f} q/s "
          f"({single_overhead * 100:+.1f}% overhead, not gated)")

    overhead = (off["batch_qps"] - on["batch_qps"]) / off["batch_qps"]
    print(f"batch query:  stripped {off['batch_qps']:.0f} q/s, "
          f"instrumented {on['batch_qps']:.0f} q/s "
          f"({overhead * 100:+.1f}% overhead, "
          f"gate <= {args.max_overhead * 100:.0f}%)")
    if off["batch_total_seconds"] < args.min_loop_seconds:
        print(f"notice: stripped batch loop totalled only "
              f"{off['batch_total_seconds']:.3f}s "
              f"(< {args.min_loop_seconds:.1f}s); overhead gate skipped as "
              f"noise-dominated")
    elif overhead > args.max_overhead:
        failures.append(
            f"instrumented warm batch path {overhead * 100:.1f}% slower "
            f"than stripped (limit {args.max_overhead * 100:.0f}%)")

    # Wiring: every layer must show up in the instrumented dump.
    for layer, prefix in LAYER_PREFIXES.items():
        if prefix not in prom:
            failures.append(
                f"{args.prom} has no '{prefix}*' metric: the {layer} "
                f"layer lost its instrumentation")
    print(f"prometheus dump: {len(prom)} bytes, "
          f"{sum(1 for line in prom.splitlines() if line.startswith('# TYPE'))}"
          f" metric families")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("observability gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
