// Table IV: pruning ablation — relative size, max height of hierarchy
// trees, and average leaf depth after each pruning substep (0 = before
// pruning, i = after substep i of the first round).
#include "bench_common.hpp"

int main() {
  using namespace slugger;
  using namespace slugger::bench;

  gen::Scale scale = BenchScale(gen::Scale::kTiny);
  uint32_t seeds = SeedsFromEnv(2);
  PrintHeaderLine("Table IV — effectiveness of the pruning substeps", scale,
                  seeds);

  std::printf("%-8s | %-31s | %-27s | %-27s\n", "dataset",
              "relative size (0/1/2/3)", "avg max height (0/1/2/3)",
              "avg leaf depth (0/1/2/3)");
  for (const auto& spec : gen::AllDatasets()) {
    graph::Graph g = gen::GenerateDataset(spec.name, scale, 1);
    double rel[4] = {0}, height[4] = {0}, depth[4] = {0};
    for (uint32_t s = 1; s <= seeds; ++s) {
      core::SluggerConfig config;
      config.iterations = 20;
      config.seed = s;
      config.pruning_rounds = 1;  // isolate the first round, as in the table
      core::SluggerResult r = core::Summarize(g, config);
      for (int stage = 0; stage < 4; ++stage) {
        const auto& st = r.prune_ablation.stage[stage];
        rel[stage] += st.RelativeSize(g.num_edges()) / seeds;
        height[stage] += static_cast<double>(st.max_height) / seeds;
        depth[stage] += st.avg_leaf_depth / seeds;
      }
    }
    std::printf("%-8s | %6.3f %6.3f %6.3f %6.3f | %6.1f %6.1f %6.1f %6.1f | "
                "%6.2f %6.2f %6.2f %6.2f\n",
                spec.name.c_str(), rel[0], rel[1], rel[2], rel[3], height[0],
                height[1], height[2], height[3], depth[0], depth[1], depth[2],
                depth[3]);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: every substep lowers all three metrics; "
              "substep 1 gives the largest height reduction (paper Table IV).\n");
  return 0;
}
