// Dynamic-update throughput and overlay overhead (ISSUE 5): what does
// keeping a compressed graph live under edits cost, and what does
// compaction buy back?
//
// Compress an RMAT graph once, then time four things over the same
// instance:
//   edits            ApplyEdits batches until the overlay holds
//                    `density` corrections per base edge
//   query_base       single-node Neighbors() loop on the pristine
//                    CompressedGraph (the no-overlay baseline)
//   query_overlay    the same loop on the DynamicGraph with the overlay
//                    at full density (CI gates <= 1.5x latency)
//   compact + query_compacted
//                    one fold compaction, then the loop again (CI gates
//                    parity with the baseline), against the time of a
//                    from-scratch Engine::Summarize of the mutated graph
// Results go to stdout and BENCH_stream.json; bench/check_stream.py is
// the CI gate.
//
// Env knobs:
//   SLUGGER_BENCH_STREAM_SCALE    RMAT scale (default 13 -> 8192 nodes)
//   SLUGGER_BENCH_STREAM_EDGES    edge count (default 8 * num_nodes)
//   SLUGGER_BENCH_STREAM_DENSITY  corrections per 1000 base edges
//                                 (default 10 = 1%)
//   SLUGGER_BENCH_STREAM_QUERIES  nodes per query loop (default 30000)
//   SLUGGER_BENCH_STREAM_ITERS    summarize iterations (default 10)
#include <cstdio>
#include <string>
#include <vector>

#include "api/dynamic_graph.hpp"
#include "api/engine.hpp"
#include "bench_env.hpp"
#include "gen/generators.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace {

using slugger::bench::EnvU64;

struct Run {
  std::string mode;
  double seconds = 0.0;
  double per_second = 0.0;
  uint64_t count = 0;
  uint64_t checksum = 0;
};

}  // namespace

int main() {
  using namespace slugger;

  const uint32_t scale =
      static_cast<uint32_t>(EnvU64("SLUGGER_BENCH_STREAM_SCALE", 13));
  const uint64_t num_nodes = 1ull << scale;
  const uint64_t edges = EnvU64("SLUGGER_BENCH_STREAM_EDGES", 8 * num_nodes);
  const uint64_t density_permille =
      EnvU64("SLUGGER_BENCH_STREAM_DENSITY", 10);
  const uint64_t num_queries = EnvU64("SLUGGER_BENCH_STREAM_QUERIES", 30000);
  const uint64_t iterations = EnvU64("SLUGGER_BENCH_STREAM_ITERS", 10);

  std::printf("=== dynamic updates: edit throughput + overlay overhead ===\n");
  std::printf("rmat scale=%u nodes=%llu edges=%llu density=%.1f%% "
              "queries=%llu\n\n",
              scale, static_cast<unsigned long long>(num_nodes),
              static_cast<unsigned long long>(edges),
              static_cast<double>(density_permille) / 10.0,
              static_cast<unsigned long long>(num_queries));

  graph::Graph g = gen::RMat(scale, edges, 0.57, 0.19, 0.19, 4242);

  EngineOptions compress;
  compress.config.iterations = static_cast<uint32_t>(iterations);
  compress.config.seed = 4242;
  Engine engine(compress);
  StatusOr<CompressedGraph> summarized = engine.Summarize(g);
  if (!summarized.ok()) {
    std::fprintf(stderr, "summarize failed: %s\n",
                 summarized.status().ToString().c_str());
    return 1;
  }
  const CompressedGraph base = summarized.value();  // keep a pristine copy
  std::printf("base summary: cost=%llu (%.3f of |E|)\n",
              static_cast<unsigned long long>(base.stats().cost),
              base.stats().RelativeSize(g.num_edges()));

  DynamicGraphOptions options;
  options.auto_compact = false;  // compaction is timed explicitly below
  options.policy.max_fold_dirty_fraction = 1.0;  // time the fold path
  options.policy.rebuild_after_folded = ~0ull;
  options.rebuild.config.iterations = static_cast<uint32_t>(iterations);
  options.rebuild.config.seed = 4242;
  DynamicGraph dg(std::move(summarized).value(), options);

  std::vector<Run> runs;

  // --- edits: half deletes of real edges, half inserts of fresh pairs,
  // batched, until the overlay reaches the target density.
  const uint64_t target_corrections =
      g.num_edges() * density_permille / 1000 + 1;
  {
    Rng rng(7);
    WallTimer timer;
    uint64_t submitted = 0;
    std::vector<EdgeEdit> batch;
    while (dg.stats().corrections < target_corrections) {
      batch.clear();
      for (int i = 0; i < 1024; ++i) {
        if (i % 2 == 0) {
          const Edge& e = g.Edges()[rng.Below(g.num_edges())];
          batch.push_back({e.first, e.second, EditKind::kDelete});
        } else {
          NodeId u = static_cast<NodeId>(rng.Below(num_nodes));
          NodeId v = static_cast<NodeId>(rng.Below(num_nodes));
          if (u == v) v = (v + 1) % static_cast<NodeId>(num_nodes);
          batch.push_back({u, v, EditKind::kInsert});
        }
      }
      Status status = dg.ApplyEdits(batch);
      if (!status.ok()) {
        std::fprintf(stderr, "ApplyEdits failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      submitted += batch.size();
    }
    Run run;
    run.mode = "edits";
    run.seconds = timer.Seconds();
    run.count = submitted;
    run.per_second = static_cast<double>(submitted) / run.seconds;
    runs.push_back(run);
    std::printf("%-16s %8llu edits in %6.2fs  (%9.0f edits/s, overlay "
                "%llu corrections)\n",
                "edits", static_cast<unsigned long long>(submitted),
                run.seconds, run.per_second,
                static_cast<unsigned long long>(dg.stats().corrections));
  }
  const double overlay_density =
      static_cast<double>(dg.stats().corrections) /
      static_cast<double>(g.num_edges());

  // Fixed query workload, reused by every loop below.
  std::vector<NodeId> query_nodes(num_queries);
  {
    Rng rng(99);
    for (NodeId& v : query_nodes) {
      v = static_cast<NodeId>(rng.Below(num_nodes));
    }
  }

  const auto time_queries = [&](const std::string& mode, auto&& query) {
    QueryScratch scratch;
    WallTimer timer;
    uint64_t checksum = 0;
    for (const NodeId v : query_nodes) checksum += query(v, &scratch);
    Run run;
    run.mode = mode;
    run.seconds = timer.Seconds();
    run.count = num_queries;
    run.per_second = static_cast<double>(num_queries) / run.seconds;
    run.checksum = checksum;
    runs.push_back(run);
    std::printf("%-16s %8llu queries in %6.2fs (%9.0f q/s, checksum "
                "%llu)\n",
                mode.c_str(), static_cast<unsigned long long>(num_queries),
                run.seconds, run.per_second,
                static_cast<unsigned long long>(checksum));
    return run;
  };

  time_queries("query_base", [&](NodeId v, QueryScratch* scratch) {
    return base.Neighbors(v, scratch).size();
  });
  time_queries("query_overlay", [&](NodeId v, QueryScratch* scratch) {
    return dg.Neighbors(v, scratch).size();
  });

  // --- compaction (fold) vs. a from-scratch re-summarize.
  {
    WallTimer timer;
    Status status = dg.Compact();
    const double seconds = timer.Seconds();
    if (!status.ok()) {
      std::fprintf(stderr, "compaction failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    DynamicGraphStats stats = dg.stats();
    Run run;
    run.mode = "compact";
    run.seconds = seconds;
    run.count = stats.compactions_fold > 0 ? 0 : 1;  // 0 = fold, 1 = rebuild
    runs.push_back(run);
    std::printf("%-16s %s in %6.2fs (new cost %llu)\n", "compact",
                stats.compactions_fold > 0 ? "fold" : "rebuild", seconds,
                static_cast<unsigned long long>(stats.base_cost));

    WallTimer full_timer;
    const graph::Graph mutated = dg.Decode();
    StatusOr<CompressedGraph> full = engine.Summarize(mutated);
    Run full_run;
    full_run.mode = "resummarize";
    full_run.seconds = full_timer.Seconds();
    if (!full.ok()) {
      std::fprintf(stderr, "re-summarize failed: %s\n",
                   full.status().ToString().c_str());
      return 1;
    }
    runs.push_back(full_run);
    std::printf("%-16s full rebuild in %6.2fs (cost %llu) -> compaction "
                "is %.1fx faster\n",
                "resummarize", full_run.seconds,
                static_cast<unsigned long long>(full.value().stats().cost),
                full_run.seconds / (seconds > 0 ? seconds : 1e-9));
  }

  time_queries("query_compacted", [&](NodeId v, QueryScratch* scratch) {
    return dg.Neighbors(v, scratch).size();
  });

  // The overlay and compacted loops serve the MUTATED graph; their
  // checksums must agree with each other (not with query_base).
  uint64_t overlay_sum = 0, compacted_sum = 0;
  for (const Run& run : runs) {
    if (run.mode == "query_overlay") overlay_sum = run.checksum;
    if (run.mode == "query_compacted") compacted_sum = run.checksum;
  }
  if (overlay_sum != compacted_sum) {
    std::fprintf(stderr,
                 "CHECKSUM MISMATCH: overlay %llu vs compacted %llu\n",
                 static_cast<unsigned long long>(overlay_sum),
                 static_cast<unsigned long long>(compacted_sum));
    return 1;
  }

  FILE* json = std::fopen("BENCH_stream.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"stream_updates\", \"scale\": %u, "
                 "\"edges\": %llu, \"overlay_density\": %.6f,\n  \"runs\": [",
                 scale, static_cast<unsigned long long>(g.num_edges()),
                 overlay_density);
    for (size_t i = 0; i < runs.size(); ++i) {
      const Run& run = runs[i];
      std::fprintf(json,
                   "%s\n    {\"mode\": \"%s\", \"seconds\": %.6f, "
                   "\"count\": %llu, \"per_second\": %.2f, "
                   "\"checksum\": %llu}",
                   i ? "," : "", run.mode.c_str(), run.seconds,
                   static_cast<unsigned long long>(run.count),
                   run.per_second,
                   static_cast<unsigned long long>(run.checksum));
    }
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_stream.json\n");
  }
  return 0;
}
