// Scatter-gather serving vs a single box (ISSUE 8): what does sharding
// one graph across an in-process coordinator buy on batched neighbor
// queries, and what does the stitch cost?
//
// Compress an RMAT graph once as the single-box baseline, then for each
// shard count S: partition (timed), summarize every shard on an
// S-worker pool (timed), and drive the same fixed batch through the
// coordinator with parallel dispatch. Both sides serve the canonical
// contract the dist tests pin down — neighbor lists sorted ascending —
// so the comparison is like for like. Checksums (summed neighbor
// counts) must agree across every mode — the answers are the same graph
// either way. Results go to stdout and BENCH_dist.json; CI gates on the
// 4-shard coordinator staying >= 1.3x over the sequential single box
// (bench/check_dist.py) and on checksum agreement (fatal here).
//
// Env knobs:
//   SLUGGER_BENCH_DIST_SCALE       RMAT scale (default 14 -> 16384 nodes)
//   SLUGGER_BENCH_DIST_EDGES       edge count (default 8 * num_nodes)
//   SLUGGER_BENCH_DIST_BATCH       batch size (default 10000)
//   SLUGGER_BENCH_DIST_REPS        repetitions per timed mode (default 20)
//   SLUGGER_BENCH_DIST_SHARD_LIST  comma list of shard counts (default 1,2,4)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "api/sharded_graph.hpp"
#include "bench_env.hpp"
#include "gen/generators.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace {

using slugger::bench::EnvU64;

std::vector<uint32_t> ShardList() {
  const char* env = std::getenv("SLUGGER_BENCH_DIST_SHARD_LIST");
  const std::string spec = env != nullptr ? env : "1,2,4";
  std::vector<uint32_t> list;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::optional<uint32_t> v =
        slugger::ParseUint32(spec.substr(pos, comma - pos).c_str());
    if (v.has_value() && *v >= 1) list.push_back(*v);
    pos = comma + 1;
  }
  if (list.empty()) list = {1, 2, 4};
  return list;
}

struct Run {
  std::string mode;  ///< "single" or "sharded"
  uint32_t shards;
  double seconds;    ///< query time, total over all reps
  double queries_per_second;
  double partition_seconds;  ///< 0 for single
  double build_seconds;      ///< partition + summarize + publish
  double stitch_seconds;     ///< summed over reps (coordinator only)
  double fanout;             ///< subqueries per routed query (1.0 single)
  double skew;
  uint64_t checksum;
};

}  // namespace

int main() {
  using namespace slugger;

  const uint32_t scale =
      static_cast<uint32_t>(EnvU64("SLUGGER_BENCH_DIST_SCALE", 14));
  const uint64_t num_nodes = 1ull << scale;
  const uint64_t edges = EnvU64("SLUGGER_BENCH_DIST_EDGES", 8 * num_nodes);
  const uint64_t batch_size = EnvU64("SLUGGER_BENCH_DIST_BATCH", 10000);
  const uint64_t reps = EnvU64("SLUGGER_BENCH_DIST_REPS", 20);
  const std::vector<uint32_t> shard_list = ShardList();

  std::printf("=== sharded scatter-gather vs single box ===\n");
  std::printf("rmat scale=%u nodes=%llu edges=%llu batch=%llu reps=%llu\n\n",
              scale, static_cast<unsigned long long>(num_nodes),
              static_cast<unsigned long long>(edges),
              static_cast<unsigned long long>(batch_size),
              static_cast<unsigned long long>(reps));

  graph::Graph g = gen::RMat(scale, edges, 0.57, 0.19, 0.19, /*seed=*/7);

  EngineOptions options;
  options.config.iterations = 20;
  options.config.seed = 7;
  Engine engine(options);
  WallTimer compress_timer;
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  if (!compressed.ok()) {
    std::fprintf(stderr, "summarize failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  const CompressedGraph& single_box = compressed.value();
  std::printf("single box compressed in %.2fs: cost=%llu\n\n",
              compress_timer.Seconds(),
              static_cast<unsigned long long>(single_box.stats().cost));

  Rng rng(0xD157);
  std::vector<NodeId> batch(batch_size);
  for (NodeId& v : batch) {
    v = static_cast<NodeId>(rng.Below(single_box.num_nodes()));
  }
  const double total_queries =
      static_cast<double>(batch_size) * static_cast<double>(reps);

  std::vector<Run> runs;
  {  // Baseline: the sequential single-box batch every service starts
     // on, serving the same contract as the coordinator — canonical
     // (ascending) neighbor lists. The per-position sort is part of the
     // serving cost on both sides, not coordinator overhead.
    BatchScratch scratch;
    BatchResult result;
    uint64_t checksum = 0;
    WallTimer timer;
    for (uint64_t rep = 0; rep < reps; ++rep) {
      if (!single_box.NeighborsBatch(batch, &result, &scratch).ok()) return 1;
      for (size_t i = 0; i < result.size(); ++i) {
        std::sort(result.neighbors.begin() + result.offsets[i],
                  result.neighbors.begin() + result.offsets[i + 1]);
      }
      checksum = result.neighbors.size();
    }
    const double seconds = timer.Seconds();
    runs.push_back({"single", 1, seconds, total_queries / seconds, 0.0,
                    compress_timer.Seconds(), 0.0, 1.0, 1.0, checksum});
  }

  for (uint32_t shards : shard_list) {
    // Partition timed on its own — it is the coordinator-side cost a
    // rebalance pays over and over, unlike the one-time summarization.
    dist::PartitionOptions partition;
    partition.num_shards = shards;
    WallTimer partition_timer;
    StatusOr<dist::ShardManifest> manifest = dist::PartitionGraph(g, partition);
    const double partition_seconds = partition_timer.Seconds();
    if (!manifest.ok()) {
      std::fprintf(stderr, "partition failed: %s\n",
                   manifest.status().ToString().c_str());
      return 1;
    }

    ShardedOptions sharded_options;
    sharded_options.partition = partition;
    sharded_options.engine.config.iterations = 20;
    sharded_options.engine.config.seed = 7;
    sharded_options.num_threads = shards;
    WallTimer build_timer;
    StatusOr<ShardedGraph> sharded = ShardedGraph::Build(g, sharded_options);
    const double build_seconds = build_timer.Seconds();
    if (!sharded.ok()) {
      std::fprintf(stderr, "sharded build failed: %s\n",
                   sharded.status().ToString().c_str());
      return 1;
    }

    BatchResult result;
    uint64_t checksum = 0;
    double stitch_seconds = 0.0;
    uint64_t subqueries = 0;
    WallTimer timer;
    for (uint64_t rep = 0; rep < reps; ++rep) {
      dist::GatherStats stats;
      if (!sharded.value().NeighborsBatch(batch, &result, &stats).ok()) {
        return 1;
      }
      checksum = result.neighbors.size();
      stitch_seconds += stats.stitch_seconds;
      subqueries = stats.subqueries;
    }
    const double seconds = timer.Seconds();
    runs.push_back({"sharded", shards, seconds, total_queries / seconds,
                    partition_seconds, build_seconds, stitch_seconds,
                    static_cast<double>(subqueries) /
                        static_cast<double>(batch_size),
                    sharded.value().CostSkew(), checksum});
  }

  const Run& baseline = runs.front();
  bool checksums_agree = true;
  std::printf("%-10s %-8s %10s %14s %9s %9s %7s %8s %6s\n", "mode", "shards",
              "seconds", "queries/s", "speedup", "stitch%", "fanout",
              "part(s)", "skew");
  for (const Run& r : runs) {
    std::printf("%-10s %-8u %10.3f %14.0f %8.2fx %8.1f%% %6.2fx %8.3f %6.2f\n",
                r.mode.c_str(), r.shards, r.seconds, r.queries_per_second,
                r.queries_per_second / baseline.queries_per_second,
                r.seconds > 0 ? 100.0 * r.stitch_seconds / r.seconds : 0.0,
                r.fanout, r.partition_seconds, r.skew);
    checksums_agree = checksums_agree && r.checksum == baseline.checksum;
  }
  if (!checksums_agree) {
    std::fprintf(stderr,
                 "FAIL: checksums diverged between single box and shards\n");
    return 1;
  }

  std::string json = "{\"bench\":\"dist\",\"graph\":\"rmat\",\"scale\":" +
                     std::to_string(scale) +
                     ",\"nodes\":" + std::to_string(g.num_nodes()) +
                     ",\"edges\":" + std::to_string(g.num_edges()) +
                     ",\"batch\":" + std::to_string(batch_size) +
                     ",\"reps\":" + std::to_string(reps) + ",\"runs\":[";
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"mode\":\"%s\",\"shards\":%u,\"seconds\":%.6f,"
        "\"queries_per_second\":%.1f,\"speedup_vs_single\":%.4f,"
        "\"partition_seconds\":%.6f,\"build_seconds\":%.6f,"
        "\"stitch_seconds\":%.6f,\"fanout\":%.4f,\"skew\":%.4f,"
        "\"checksum\":%llu}",
        i == 0 ? "" : ",", r.mode.c_str(), r.shards, r.seconds,
        r.queries_per_second,
        r.queries_per_second / baseline.queries_per_second,
        r.partition_seconds, r.build_seconds, r.stitch_seconds, r.fanout,
        r.skew, static_cast<unsigned long long>(r.checksum));
    json += buf;
  }
  json += "]}";

  std::printf("\n%s\n", json.c_str());
  FILE* f = std::fopen("BENCH_dist.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("wrote BENCH_dist.json\n");
  }
  return 0;
}
