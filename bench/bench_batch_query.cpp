// Batched vs per-node neighbor-query throughput on one compressed graph
// (ISSUE 4): how much does NeighborsBatch's ancestor-chain amortization
// plus sharding buy over a plain Neighbors() loop?
//
// Compress an RMAT graph once, draw a fixed batch of random node ids,
// then time three modes over the same batch:
//   single          per-node Neighbors() loop, one thread (the baseline)
//   batch           sequential NeighborsBatch (amortization only)
//   batch@T         parallel NeighborsBatch over a T-worker pool
// Checksums (summed result sizes) must agree across every mode. Results
// go to stdout and to BENCH_batch_query.json; CI gates on the 4-thread
// batch speedup staying >= 1.3x over the single-node loop
// (bench/check_batch_query.py).
//
// Env knobs:
//   SLUGGER_BENCH_BQ_SCALE     RMAT scale (default 14 -> 16384 nodes)
//   SLUGGER_BENCH_BQ_EDGES     edge count (default 8 * num_nodes)
//   SLUGGER_BENCH_BQ_BATCH     batch size (default 10000)
//   SLUGGER_BENCH_BQ_REPS     repetitions per timed mode (default 20)
//   SLUGGER_BENCH_THREAD_LIST  comma list of pool sizes (default 1,2,4,8)
#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "bench_env.hpp"
#include "gen/generators.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using slugger::bench::EnvU64;
using slugger::bench::ThreadList;

struct Run {
  std::string mode;
  uint32_t threads;
  double seconds;         ///< total over all reps
  double queries_per_second;
  uint64_t checksum;      ///< summed neighbor counts; equal across modes
};

}  // namespace

int main() {
  using namespace slugger;

  const uint32_t scale =
      static_cast<uint32_t>(EnvU64("SLUGGER_BENCH_BQ_SCALE", 14));
  const uint64_t num_nodes = 1ull << scale;
  const uint64_t edges = EnvU64("SLUGGER_BENCH_BQ_EDGES", 8 * num_nodes);
  const uint64_t batch_size = EnvU64("SLUGGER_BENCH_BQ_BATCH", 10000);
  const uint64_t reps = EnvU64("SLUGGER_BENCH_BQ_REPS", 20);
  std::vector<uint32_t> thread_list = ThreadList();

  std::printf("=== batched vs single neighbor queries ===\n");
  std::printf("rmat scale=%u nodes=%llu edges=%llu batch=%llu reps=%llu\n\n",
              scale, static_cast<unsigned long long>(num_nodes),
              static_cast<unsigned long long>(edges),
              static_cast<unsigned long long>(batch_size),
              static_cast<unsigned long long>(reps));

  graph::Graph g = gen::RMat(scale, edges, 0.57, 0.19, 0.19, /*seed=*/7);

  EngineOptions options;
  options.config.iterations = 20;
  options.config.seed = 7;
  Engine engine(options);
  WallTimer compress_timer;
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  if (!compressed.ok()) {
    std::fprintf(stderr, "summarize failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  const CompressedGraph& cg = compressed.value();
  std::printf("compressed once in %.2fs: cost=%llu (%.1f%% of |E|)\n\n",
              compress_timer.Seconds(),
              static_cast<unsigned long long>(cg.stats().cost),
              100.0 * cg.stats().RelativeSize(g.num_edges()));

  Rng rng(0xBA7C4);
  std::vector<NodeId> batch(batch_size);
  for (NodeId& v : batch) {
    v = static_cast<NodeId>(rng.Below(cg.num_nodes()));
  }

  const double total_queries =
      static_cast<double>(batch_size) * static_cast<double>(reps);
  std::vector<Run> runs;

  {  // Baseline: the per-node loop every service would write first.
    QueryScratch scratch;
    uint64_t checksum = 0;
    WallTimer timer;
    for (uint64_t rep = 0; rep < reps; ++rep) {
      checksum = 0;
      for (NodeId v : batch) checksum += cg.Neighbors(v, &scratch).size();
    }
    runs.push_back({"single", 1, timer.Seconds(),
                    total_queries / timer.Seconds(), checksum});
  }

  {  // Sequential batch: amortization only, no extra threads.
    BatchScratch scratch;
    BatchResult result;
    uint64_t checksum = 0;
    WallTimer timer;
    for (uint64_t rep = 0; rep < reps; ++rep) {
      if (!cg.NeighborsBatch(batch, &result, &scratch).ok()) return 1;
      checksum = result.neighbors.size();
    }
    runs.push_back({"batch", 1, timer.Seconds(),
                    total_queries / timer.Seconds(), checksum});
  }

  for (uint32_t t : thread_list) {
    if (t <= 1) continue;  // covered by the sequential batch run
    ThreadPool pool(t);
    BatchResult result;
    uint64_t checksum = 0;
    WallTimer timer;
    for (uint64_t rep = 0; rep < reps; ++rep) {
      if (!cg.NeighborsBatch(batch, &result, &pool).ok()) return 1;
      checksum = result.neighbors.size();
    }
    runs.push_back({"batch", t, timer.Seconds(),
                    total_queries / timer.Seconds(), checksum});
  }

  const Run& baseline = runs.front();
  bool checksums_agree = true;
  std::printf("%-10s %-8s %10s %14s %10s\n", "mode", "threads", "seconds",
              "queries/s", "speedup");
  for (const Run& r : runs) {
    std::printf("%-10s %-8u %10.3f %14.0f %9.2fx\n", r.mode.c_str(),
                r.threads, r.seconds, r.queries_per_second,
                r.queries_per_second / baseline.queries_per_second);
    checksums_agree = checksums_agree && r.checksum == baseline.checksum;
  }
  if (!checksums_agree) {
    std::fprintf(stderr, "FAIL: checksums diverged across modes\n");
    return 1;
  }

  std::string json =
      "{\"bench\":\"batch_query\",\"graph\":\"rmat\",\"scale\":" +
      std::to_string(scale) + ",\"nodes\":" + std::to_string(g.num_nodes()) +
      ",\"edges\":" + std::to_string(g.num_edges()) +
      ",\"batch\":" + std::to_string(batch_size) +
      ",\"reps\":" + std::to_string(reps) +
      ",\"cost\":" + std::to_string(cg.stats().cost) + ",\"runs\":[";
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"mode\":\"%s\",\"threads\":%u,\"seconds\":%.6f,"
                  "\"queries_per_second\":%.1f,\"speedup_vs_single\":%.4f}",
                  i == 0 ? "" : ",", r.mode.c_str(), r.threads, r.seconds,
                  r.queries_per_second,
                  r.queries_per_second / baseline.queries_per_second);
    json += buf;
  }
  json += "]}";

  std::printf("\n%s\n", json.c_str());
  FILE* f = std::fopen("BENCH_batch_query.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("wrote BENCH_batch_query.json\n");
  }
  return 0;
}
