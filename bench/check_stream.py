#!/usr/bin/env python3
"""CI smoke gate for dynamic-update (stream) overhead regressions.

Reads the JSON emitted by bench_stream_updates (BENCH_stream.json) and
fails when either of the subsystem's two serving promises regresses:

  1. Overlay overhead: an overlay-aware single query at ~1% correction
     density must stay within --max-overlay-slowdown (default 1.5x) of
     the pristine-summary query latency.
  2. Compaction parity: after compaction the overlay is empty, so query
     latency must return to within --max-compacted-slowdown (default
     1.25x) of the baseline.

Also sanity-checks that the overlay and compacted query loops agreed on
their checksums (both serve the same mutated graph).

Usage:
    check_stream.py [BENCH_stream.json]
        [--max-overlay-slowdown X] [--max-compacted-slowdown Y]
        [--min-single-seconds S]

Exit codes: 0 pass, 1 regression, 2 bad input. If the baseline query
loop ran faster than --min-single-seconds, the latency gates pass with
a notice instead of judging noise-dominated timings (the checksum check
still applies).
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?", default="BENCH_stream.json")
    parser.add_argument("--max-overlay-slowdown", type=float, default=1.5,
                        help="max acceptable overlay-query latency as a "
                             "multiple of the pristine baseline")
    parser.add_argument("--max-compacted-slowdown", type=float, default=1.25,
                        help="max acceptable post-compaction latency as a "
                             "multiple of the pristine baseline")
    parser.add_argument("--min-single-seconds", type=float, default=0.2,
                        help="skip the latency gates when the baseline "
                             "loop is shorter than this (timing noise)")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {args.report}: {err}", file=sys.stderr)
        return 2

    runs = {r.get("mode"): r for r in report.get("runs", [])}
    required = ("query_base", "query_overlay", "query_compacted")
    missing = [m for m in required if m not in runs]
    if missing:
        print(f"error: {args.report} is missing runs: {missing}",
              file=sys.stderr)
        return 2

    overlay = runs["query_overlay"]
    compacted = runs["query_compacted"]
    if overlay["checksum"] != compacted["checksum"]:
        print(f"FAIL: overlay checksum {overlay['checksum']} != compacted "
              f"checksum {compacted['checksum']} — the two paths served "
              f"different graphs", file=sys.stderr)
        return 1

    base = runs["query_base"]
    if base["seconds"] < args.min_single_seconds:
        print(f"SKIP: baseline query loop took only {base['seconds']:.3f}s "
              f"(< {args.min_single_seconds}s); too noisy to gate latency "
              f"(checksums OK)")
        return 0

    ok = True
    for name, run, limit in (
            ("overlay", overlay, args.max_overlay_slowdown),
            ("compacted", compacted, args.max_compacted_slowdown)):
        slowdown = (base["per_second"] / run["per_second"]
                    if run["per_second"] > 0 else float("inf"))
        verdict = "PASS" if slowdown <= limit else "FAIL"
        ok = ok and verdict == "PASS"
        density = report.get("overlay_density", 0.0)
        print(f"{verdict}: {name} query latency = {slowdown:.2f}x baseline "
              f"(threshold {limit}x, overlay density {density:.3%})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
