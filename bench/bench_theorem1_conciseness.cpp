// Theorem 1 / Fig. 3: on the cycle-of-groups construction the hierarchical
// model needs Θ(nk) edges while any flat summary needs Ω(n^2)-ish — the
// separation grows with n. We compare SLUGGER against the strongest flat
// baseline (SWeG) and against the ideal hand encodings of both models.
#include "bench_common.hpp"

int main() {
  using namespace slugger;
  using namespace slugger::bench;

  PrintHeaderLine("Theorem 1 / Fig. 3 — hierarchical vs flat conciseness",
                  BenchScale(gen::Scale::kSmall), 1);

  std::printf("%6s %4s %9s %11s %11s %12s %12s %9s\n", "groups", "k", "|E|",
              "ideal-hier", "ideal-flat", "Slugger", "SWeG(flat)", "ratio");
  for (uint32_t n : {8u, 12u, 16u, 24u, 32u}) {
    uint32_t k = 4;
    graph::Graph g = gen::Fig3Graph(n, k);
    // Ideal hierarchical: one (M,M) self p-edge, n n-edges on the cycle,
    // h-edges: n groups + n*k leaves.
    uint64_t ideal_hier = 1 + n + (n + static_cast<uint64_t>(n) * k);
    // Ideal flat with groups as supernodes: superedges between all
    // non-adjacent group pairs + n self-loops, membership h-edges.
    uint64_t ideal_flat =
        (static_cast<uint64_t>(n) * (n - 1) / 2 - n) + n +
        static_cast<uint64_t>(n) * k;

    core::SluggerConfig config;
    config.iterations = 20;
    config.seed = 1;
    core::SluggerResult r = core::Summarize(g, config);

    baselines::SwegConfig sweg_config;
    sweg_config.iterations = 20;
    sweg_config.seed = 1;
    baselines::FlatSummary flat = baselines::SummarizeSweg(g, sweg_config);
    uint64_t flat_cost = flat.Cost() + flat.MembershipCost();

    std::printf("%6u %4u %9llu %11llu %11llu %12llu %12llu %8.2fx\n", n, k,
                static_cast<unsigned long long>(g.num_edges()),
                static_cast<unsigned long long>(ideal_hier),
                static_cast<unsigned long long>(ideal_flat),
                static_cast<unsigned long long>(r.stats.cost),
                static_cast<unsigned long long>(flat_cost),
                static_cast<double>(flat_cost) /
                    static_cast<double>(r.stats.cost));
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: the flat/hierarchical cost ratio grows "
              "with n (Theorem 1: o(n^1.5) vs Omega(n^1.5) at "
              "k = Theta(sqrt(n))).\n");
  return 0;
}
