#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace slugger::obs {

namespace {

// Formats a double the way Prometheus clients expect: shortest
// round-trippable decimal, no locale surprises.
void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

// Bucket bound with enough digits to distinguish exponential bounds but
// without 1e-06 noise like %.17g would produce for every le label.
void AppendBound(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string DumpPrometheus(const MetricsRegistry& registry) {
  std::string out;
  out.reserve(4096);
  for (const MetricsRegistry::Entry& e : registry.Collect()) {
    if (!e.help.empty()) {
      out.append("# HELP ").append(e.name).push_back(' ');
      out.append(e.help).push_back('\n');
    }
    switch (e.kind) {
      case MetricsRegistry::Kind::kCounter: {
        out.append("# TYPE ").append(e.name).append(" counter\n");
        out.append(e.name).push_back(' ');
        AppendU64(&out, e.counter->Value());
        out.push_back('\n');
        break;
      }
      case MetricsRegistry::Kind::kGauge: {
        out.append("# TYPE ").append(e.name).append(" gauge\n");
        out.append(e.name).push_back(' ');
        AppendI64(&out, e.gauge->Value());
        out.push_back('\n');
        break;
      }
      case MetricsRegistry::Kind::kHistogram: {
        out.append("# TYPE ").append(e.name).append(" histogram\n");
        const HistogramSnapshot snap = e.histogram->Snapshot();
        uint64_t cumulative = 0;
        for (size_t b = 0; b < snap.bounds.size(); ++b) {
          cumulative += snap.counts[b];
          out.append(e.name).append("_bucket{le=\"");
          AppendBound(&out, snap.bounds[b]);
          out.append("\"} ");
          AppendU64(&out, cumulative);
          out.push_back('\n');
        }
        out.append(e.name).append("_bucket{le=\"+Inf\"} ");
        AppendU64(&out, snap.count);
        out.push_back('\n');
        out.append(e.name).append("_sum ");
        AppendDouble(&out, snap.sum);
        out.push_back('\n');
        out.append(e.name).append("_count ");
        AppendU64(&out, snap.count);
        out.push_back('\n');
        break;
      }
    }
  }
  return out;
}

std::string DumpJson(const MetricsRegistry& registry) {
  std::string out;
  out.reserve(4096);
  out.append("{\"counters\":{");
  bool first = true;
  const std::vector<MetricsRegistry::Entry> entries = registry.Collect();
  for (const auto& e : entries) {
    if (e.kind != MetricsRegistry::Kind::kCounter) continue;
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, e.name);
    out.push_back(':');
    AppendU64(&out, e.counter->Value());
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& e : entries) {
    if (e.kind != MetricsRegistry::Kind::kGauge) continue;
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, e.name);
    out.push_back(':');
    AppendI64(&out, e.gauge->Value());
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& e : entries) {
    if (e.kind != MetricsRegistry::Kind::kHistogram) continue;
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, e.name);
    out.append(":{\"bounds\":[");
    const HistogramSnapshot snap = e.histogram->Snapshot();
    for (size_t b = 0; b < snap.bounds.size(); ++b) {
      if (b != 0) out.push_back(',');
      AppendBound(&out, snap.bounds[b]);
    }
    out.append("],\"counts\":[");
    for (size_t b = 0; b < snap.counts.size(); ++b) {
      if (b != 0) out.push_back(',');
      AppendU64(&out, snap.counts[b]);
    }
    out.append("],\"count\":");
    AppendU64(&out, snap.count);
    out.append(",\"sum\":");
    AppendDouble(&out, snap.sum);
    out.push_back('}');
  }
  out.append("},\"spans\":[");
  first = true;
  for (const Span& s : registry.RecentSpans()) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"id\":");
    AppendU64(&out, s.id);
    out.append(",\"parent\":");
    AppendU64(&out, s.parent);
    out.append(",\"name\":");
    AppendJsonString(&out, s.name);
    out.append(",\"start\":");
    AppendDouble(&out, s.start_seconds);
    out.append(",\"duration\":");
    AppendDouble(&out, s.duration_seconds);
    out.append(",\"detail\":");
    AppendU64(&out, s.detail);
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

// ------------------------------------------------------------ PeriodicDumper

PeriodicDumper::PeriodicDumper(Sink sink, double interval_seconds,
                               const MetricsRegistry& registry)
    : registry_(registry),
      sink_(std::move(sink)),
      interval_seconds_(interval_seconds > 0 ? interval_seconds : 1.0) {}

PeriodicDumper::~PeriodicDumper() { Stop(); }

void PeriodicDumper::Start() {
  {
    MutexLock lock(&mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { Run(); });
}

void PeriodicDumper::Stop() {
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  stop_cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  MutexLock lock(&mu_);
  running_ = false;
}

uint64_t PeriodicDumper::dumps() const {
  MutexLock lock(&mu_);
  return dumps_;
}

void PeriodicDumper::Run() {
  for (;;) {
    bool stopping;
    {
      MutexLock lock(&mu_);
      while (!stop_requested_) {
        if (!stop_cv_.WaitFor(mu_, interval_seconds_)) break;  // interval due
      }
      stopping = stop_requested_;
    }
    // Dump outside the lock: the sink may be arbitrarily slow (stderr,
    // file) and must not block Stop()'s request handshake.
    const std::string text = sink_ ? DumpPrometheus(registry_) : std::string();
    if (sink_) sink_(text);
    {
      MutexLock lock(&mu_);
      ++dumps_;
    }
    if (stopping) return;  // final dump emitted
  }
}

}  // namespace slugger::obs
