// slugger::obs — the process-wide observability vocabulary (ISSUE 10).
//
// One MetricsRegistry per process (Global()) holds named counters,
// gauges, and fixed-boundary exponential-bucket latency histograms.
// Every layer of the serving stack registers its metrics once (stable
// pointers, registry-owned for the process lifetime) and updates them on
// the hot path with relaxed atomics: a Counter::Add is one fetch_add on
// a per-thread shard cell — one cache line touch, no lock, no false
// sharing with other threads — and aggregation across shards happens
// only when a reader (exporter, test) asks for Value().
//
// Trace spans ride alongside: NextSpanId() mints process-unique ids that
// batch entry points thread through their fan-out (see
// dist::GatherStats::span_id), and ScopedSpan records completed spans
// into a bounded ring the JSON exporter drains — enough to answer
// "where did this batch spend its time" across facade -> paged source ->
// buffer manager -> shard coordinator without a tracing dependency.
//
// Compile-time escape hatch: building with -DSLUGGER_OBS_ENABLED=0
// (CMake -DSLUGGER_OBS=OFF) swaps every type here for an inline no-op
// stub with the identical API, so instrumentation call sites compile
// away to nothing. obs::kEnabled tells callers which world they are in.
// Functional timing (progress events, GatherStats fields, compaction
// cost decisions) must therefore NEVER flow through these types — it
// stays on util::WallTimer, which survives SLUGGER_OBS=OFF.
//
// Metric naming convention (enforced by review, documented in README):
//   slugger_<layer>_<what>[_<unit>]   e.g. slugger_coord_dispatch_seconds
// counters end in _total, histograms in _seconds (values are seconds),
// gauges are bare nouns. Names are a FIXED small set — no per-node,
// per-shard, or per-request names (cardinality rule); per-shard detail
// belongs in spans.
//
// Thread-safety contract: every method on every type here is safe from
// any number of threads concurrently. Hot-path updates (Add/Set/Observe)
// are wait-free relaxed atomics; registration and snapshot reads
// serialize on internal mutexes (sync.hpp annotated). Returned metric
// pointers are valid for the registry's lifetime (the Global() registry
// never dies).
#ifndef SLUGGER_OBS_METRICS_HPP_
#define SLUGGER_OBS_METRICS_HPP_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/sync.hpp"

#ifndef SLUGGER_OBS_ENABLED
#define SLUGGER_OBS_ENABLED 1
#endif

namespace slugger::obs {

/// True when the observability layer is compiled in; with false every
/// type below is an inline no-op stub and dumps are empty.
inline constexpr bool kEnabled = SLUGGER_OBS_ENABLED != 0;

// ------------------------------------------------------------- span types
// Defined in both modes so structs that carry span ids (GatherStats)
// keep their layout regardless of SLUGGER_OBS.

/// Process-unique trace span id; 0 means "no span".
using SpanId = uint64_t;

/// One completed span. `name` must be a string literal (spans are
/// recorded at hot-path exit; no allocation). `detail` is a free-form
/// small integer — shard index, batch size — interpreted per name.
struct Span {
  SpanId id = 0;
  SpanId parent = 0;
  const char* name = "";
  double start_seconds = 0.0;  ///< process-relative (ProcessSeconds clock)
  double duration_seconds = 0.0;
  uint64_t detail = 0;
};

/// Exponential bucket layout of a Histogram: bucket b spans
/// (first_bound * growth^(b-1), first_bound * growth^b], bucket 0 is
/// (-inf, first_bound], plus one overflow bucket above the last bound.
struct HistogramOptions {
  double first_bound = 1e-6;  ///< seconds; smallest upper bound
  double growth = 2.0;        ///< bound ratio between adjacent buckets
  uint32_t num_buckets = 24;  ///< finite buckets (1e-6 * 2^23 ~ 8.4 s)
};

/// Point-in-time aggregate of a Histogram, for exporters and tests.
struct HistogramSnapshot {
  std::vector<double> bounds;    ///< upper bounds, ascending
  std::vector<uint64_t> counts;  ///< per-bucket (bounds.size() + 1 entries)
  uint64_t count = 0;            ///< total observations (== sum of counts)
  double sum = 0.0;              ///< sum of observed values, seconds
};

#if SLUGGER_OBS_ENABLED

namespace detail {
/// Number of per-thread shard cells in every counter/histogram; a power
/// of two. 8 cells x 64 B keeps a Counter at one page-friendly 512 B
/// while making cross-thread contention on one hot counter unlikely.
inline constexpr unsigned kShards = 8;

/// This thread's shard slot, assigned round-robin at first use.
unsigned ShardIndex();

/// One cache line per cell so two threads bumping the same counter never
/// write-share a line.
struct alignas(64) Cell {
  std::atomic<uint64_t> value{0};
};
}  // namespace detail

/// Monotonic counter. Add is wait-free (one relaxed fetch_add on this
/// thread's shard cell); Value sums the shards at one point in time.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    cells_[detail::ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const detail::Cell& c : cells_) {
      total += c.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<detail::Cell, detail::kShards> cells_;
};

/// Last-writer-wins signed gauge (set semantics cannot shard). Updates
/// are single relaxed stores/adds on one atomic.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-boundary exponential-bucket histogram of nonnegative seconds.
/// Observe is wait-free: a bound scan over <= 64 doubles plus two relaxed
/// fetch_adds on this thread's shard (bucket cell + nanosecond sum cell).
/// The value sum is kept in integer nanoseconds so shards need no
/// floating-point atomics; sub-nanosecond truncation is the (documented)
/// precision floor of `HistogramSnapshot::sum`.
class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options);

  void Observe(double seconds);

  /// Aggregates the shards. Each cell is read once; counts are exact for
  /// all observations that completed before the call (relaxed counters,
  /// same contract as Counter::Value).
  HistogramSnapshot Snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  /// Cells laid out shard-major: shard s owns
  /// cells_[s * stride_ .. s * stride_ + num_buckets], one per bucket
  /// (finite buckets then overflow), then the shard's nanosecond sum at
  /// offset num_buckets + 1. stride_ rounds to a cache line so shards
  /// never share one.
  std::vector<double> bounds_;
  size_t stride_ = 0;
  std::unique_ptr<std::atomic<uint64_t>[]> cells_;
};

/// The process-wide metric namespace. Get* registers on first use and
/// returns the same stable pointer for every later call with that name
/// (re-registration is how independent call sites share one metric). A
/// name already claimed by a DIFFERENT metric kind is a registration
/// conflict: the call returns a process-wide no-op sink of the requested
/// kind (never null, never the other kind's metric) and bumps
/// slugger_obs_registration_conflicts_total — misuse is visible in the
/// export instead of crashing the serving path.
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process registry every layer instruments into. Never destroyed
  /// (metric pointers outlive static teardown races).
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name, std::string_view help = {})
      SLUGGER_REQUIRES(!mu_);
  Gauge* GetGauge(std::string_view name, std::string_view help = {})
      SLUGGER_REQUIRES(!mu_);
  Histogram* GetHistogram(std::string_view name,
                          const HistogramOptions& options = {},
                          std::string_view help = {}) SLUGGER_REQUIRES(!mu_);

  /// One registered metric, for exporters. `kind` disambiguates which
  /// pointer is set.
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  /// All registered metrics sorted by name (the exporters' stable
  /// iteration order). Values are read by the caller afterwards, so a
  /// dump is per-metric consistent, never blocked on writers.
  std::vector<Entry> Collect() const SLUGGER_REQUIRES(!mu_);

  /// Appends a completed span to the bounded ring (oldest dropped).
  void RecordSpan(const Span& span) SLUGGER_REQUIRES(!span_mu_);

  /// The ring's contents, oldest first.
  std::vector<Span> RecentSpans() const SLUGGER_REQUIRES(!span_mu_);

  /// Ring capacity; spans beyond it evict the oldest.
  static constexpr size_t kSpanRingCapacity = 256;

 private:
  template <typename T>
  using Map = std::unordered_map<std::string, std::unique_ptr<T>>;

  mutable Mutex mu_;
  Map<Counter> counters_ SLUGGER_GUARDED_BY(mu_);
  Map<Gauge> gauges_ SLUGGER_GUARDED_BY(mu_);
  Map<Histogram> histograms_ SLUGGER_GUARDED_BY(mu_);
  Map<std::string> help_ SLUGGER_GUARDED_BY(mu_);
  Counter* conflicts_ = nullptr;  ///< registered in the constructor

  mutable Mutex span_mu_;
  std::vector<Span> span_ring_ SLUGGER_GUARDED_BY(span_mu_);
  size_t span_next_ SLUGGER_GUARDED_BY(span_mu_) = 0;
};

/// Mints the next process-unique span id (never 0).
SpanId NextSpanId();

/// Monotonic seconds since the process first touched the obs layer; the
/// clock Span::start_seconds is expressed in.
double ProcessSeconds();

/// RAII metrics stopwatch: observes its lifetime into `histogram` at
/// destruction. Null histogram = inert. Metrics-only by contract — for
/// timing that feeds program logic use util::WallTimer, which survives
/// SLUGGER_OBS=OFF.
class ScopedTimer {
 public:
  /// A null histogram makes the timer fully inert — no clock reads — so
  /// hot paths can sample (pass the histogram 1-in-N calls, else null).
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = Clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(
          std::chrono::duration<double>(Clock::now() - start_).count());
    }
  }

  /// Drops the pending observation (e.g. on an error path that should
  /// not pollute the latency distribution).
  void Cancel() { histogram_ = nullptr; }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_;
};

/// RAII trace span: mints an id at construction, records the completed
/// Span into `registry`'s ring at destruction, and optionally observes
/// the duration into `histogram` too (one clock read serves both).
class ScopedSpan {
 public:
  ScopedSpan(MetricsRegistry* registry, const char* name, SpanId parent = 0,
             Histogram* histogram = nullptr, uint64_t detail = 0)
      : registry_(registry),
        histogram_(histogram),
        name_(name),
        id_(NextSpanId()),
        parent_(parent),
        detail_(detail),
        start_(ProcessSeconds()) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  SpanId id() const { return id_; }

 private:
  MetricsRegistry* registry_;
  Histogram* histogram_;
  const char* name_;
  SpanId id_;
  SpanId parent_;
  uint64_t detail_;
  double start_;
};

#else  // SLUGGER_OBS_ENABLED == 0 ------------------------- no-op stubs

// The identical API with empty bodies: instrumentation call sites
// compile unchanged and the optimizer deletes them. Registered names do
// not exist (dumps are empty), values read as zero, span ids as 0.

class Counter {
 public:
  void Add(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  int64_t Value() const { return 0; }
};

class Histogram {
 public:
  void Observe(double) {}
  HistogramSnapshot Snapshot() const { return {}; }
  const std::vector<double>& bounds() const {
    static const std::vector<double> empty;
    return empty;
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }

  Counter* GetCounter(std::string_view, std::string_view = {}) {
    static Counter sink;
    return &sink;
  }
  Gauge* GetGauge(std::string_view, std::string_view = {}) {
    static Gauge sink;
    return &sink;
  }
  Histogram* GetHistogram(std::string_view, const HistogramOptions& = {},
                          std::string_view = {}) {
    static Histogram sink;
    return &sink;
  }

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  std::vector<Entry> Collect() const { return {}; }

  void RecordSpan(const Span&) {}
  std::vector<Span> RecentSpans() const { return {}; }
  static constexpr size_t kSpanRingCapacity = 0;
};

inline SpanId NextSpanId() { return 0; }
inline double ProcessSeconds() { return 0.0; }

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram*) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  void Cancel() {}
};

class ScopedSpan {
 public:
  ScopedSpan(MetricsRegistry*, const char*, SpanId = 0, Histogram* = nullptr,
             uint64_t = 0) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  SpanId id() const { return 0; }
};

#endif  // SLUGGER_OBS_ENABLED

}  // namespace slugger::obs

#endif  // SLUGGER_OBS_METRICS_HPP_
