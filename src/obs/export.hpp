// slugger::obs exporters — turn a MetricsRegistry into wire formats.
//
//   DumpPrometheus  Prometheus text exposition format 0.0.4: HELP/TYPE
//                   lines, cumulative histogram buckets with le labels,
//                   _sum and _count series. This is the payload the
//                   future server binary's /metrics endpoint returns.
//   DumpJson        One structured JSON object (counters / gauges /
//                   histograms / spans) for log pipelines and tests.
//   PeriodicDumper  Background thread that invokes a sink with a fresh
//                   dump every interval, plus one final dump at Stop()
//                   so short-lived processes always emit at least once.
//
// All three compile in both SLUGGER_OBS modes; with the layer off the
// registry is empty, so dumps contain headers only and the dumper just
// ticks its sink with empty payloads.
#ifndef SLUGGER_OBS_EXPORT_HPP_
#define SLUGGER_OBS_EXPORT_HPP_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace slugger::obs {

/// Renders every metric in `registry` (Global() by default) in
/// Prometheus text exposition format, sorted by metric name.
std::string DumpPrometheus(const MetricsRegistry& registry =
                               MetricsRegistry::Global());

/// Renders metrics plus the recent-span ring as one JSON object.
std::string DumpJson(const MetricsRegistry& registry =
                         MetricsRegistry::Global());

/// Periodically renders DumpPrometheus and hands the text to `sink` on a
/// background thread. Start() spawns the thread; Stop() (or destruction)
/// joins it after one final dump, so even a process shorter than one
/// interval emits a complete dump. The sink is invoked from the dumper
/// thread only, never concurrently with itself.
class PeriodicDumper {
 public:
  using Sink = std::function<void(const std::string&)>;

  PeriodicDumper(Sink sink, double interval_seconds,
                 const MetricsRegistry& registry = MetricsRegistry::Global());
  ~PeriodicDumper();
  PeriodicDumper(const PeriodicDumper&) = delete;
  PeriodicDumper& operator=(const PeriodicDumper&) = delete;

  void Start() SLUGGER_REQUIRES(!mu_);
  void Stop() SLUGGER_REQUIRES(!mu_);

  /// Dumps emitted so far (periodic + final).
  uint64_t dumps() const SLUGGER_REQUIRES(!mu_);

 private:
  void Run() SLUGGER_REQUIRES(!mu_);

  const MetricsRegistry& registry_;
  Sink sink_;
  double interval_seconds_;
  std::thread thread_;

  mutable Mutex mu_;
  CondVar stop_cv_;
  bool stop_requested_ SLUGGER_GUARDED_BY(mu_) = false;
  bool running_ SLUGGER_GUARDED_BY(mu_) = false;
  uint64_t dumps_ SLUGGER_GUARDED_BY(mu_) = 0;
};

}  // namespace slugger::obs

#endif  // SLUGGER_OBS_EXPORT_HPP_
