#include "obs/metrics.hpp"

#if SLUGGER_OBS_ENABLED

#include <algorithm>
#include <cmath>

namespace slugger::obs {

namespace detail {

unsigned ShardIndex() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned idx =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return idx;
}

}  // namespace detail

// ----------------------------------------------------------------- Histogram

namespace {

// Cells per shard: one per finite bucket, one overflow bucket, one
// nanosecond value sum — rounded up to a whole number of cache lines
// (8 x 8-byte atomics) so shards never share a line.
size_t PaddedStride(size_t num_buckets) {
  const size_t cells = num_buckets + 2;
  return (cells + 7) / 8 * 8;
}

std::vector<double> MakeBounds(const HistogramOptions& options) {
  // Clamp rather than reject: a bad config degrades resolution, it must
  // not take down the serving path.
  const uint32_t n = std::min<uint32_t>(std::max<uint32_t>(options.num_buckets, 1), 64);
  const double growth = std::max(options.growth, 1.1);
  double bound = options.first_bound > 0 ? options.first_bound : 1e-6;
  std::vector<double> bounds;
  bounds.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    bounds.push_back(bound);
    bound *= growth;
  }
  return bounds;
}

}  // namespace

Histogram::Histogram(const HistogramOptions& options)
    : bounds_(MakeBounds(options)),
      stride_(PaddedStride(bounds_.size())),
      cells_(std::make_unique<std::atomic<uint64_t>[]>(stride_ *
                                                       detail::kShards)) {}

void Histogram::Observe(double seconds) {
  if (!(seconds >= 0)) seconds = 0;  // NaN / negative clamp to bucket 0
  // Linear scan: <= 64 comparisons over a contiguous double array is
  // faster than branchy binary search at these sizes.
  size_t bucket = bounds_.size();  // overflow unless a bound catches it
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (seconds <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  std::atomic<uint64_t>* shard = cells_.get() + detail::ShardIndex() * stride_;
  shard[bucket].fetch_add(1, std::memory_order_relaxed);
  const double ns = seconds * 1e9;
  const uint64_t ns_clamped =
      ns >= 9.2e18 ? uint64_t{9200000000000000000u} : static_cast<uint64_t>(ns);
  shard[bounds_.size() + 1].fetch_add(ns_clamped, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  uint64_t sum_ns = 0;
  for (unsigned s = 0; s < detail::kShards; ++s) {
    const std::atomic<uint64_t>* shard = cells_.get() + s * stride_;
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      snap.counts[b] += shard[b].load(std::memory_order_relaxed);
    }
    sum_ns += shard[bounds_.size() + 1].load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) snap.count += c;
  snap.sum = static_cast<double>(sum_ns) * 1e-9;
  return snap;
}

// ----------------------------------------------------------- MetricsRegistry

MetricsRegistry::MetricsRegistry() {
  conflicts_ = GetCounter(
      "slugger_obs_registration_conflicts_total",
      "Get* calls whose name was already registered as a different kind");
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: metric pointers held by static ObsHandles in other
  // translation units must stay valid through process teardown.
  static MetricsRegistry* registry =
      new MetricsRegistry();  // lint:allow(naked-new: intentional immortal singleton)
  return *registry;
}

namespace {

// A name claimed by another kind routes to a shared no-op sink so the
// caller still gets a usable pointer of the kind it asked for.
template <typename T>
T* ConflictSink() {
  static T sink;
  return &sink;
}

bool NameTaken(const std::string& key,
               const std::unordered_map<std::string, std::unique_ptr<Counter>>& a,
               const std::unordered_map<std::string, std::unique_ptr<Gauge>>& b,
               const std::unordered_map<std::string, std::unique_ptr<Histogram>>& c) {
  return a.count(key) + b.count(key) + c.count(key) > 0;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  std::string key(name);
  MutexLock lock(&mu_);
  auto it = counters_.find(key);
  if (it != counters_.end()) return it->second.get();
  if (NameTaken(key, counters_, gauges_, histograms_)) {
    if (conflicts_ != nullptr) conflicts_->Add(1);
    return ConflictSink<Counter>();
  }
  if (!help.empty()) help_[key] = std::make_unique<std::string>(help);
  return counters_.emplace(std::move(key), std::make_unique<Counter>())
      .first->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help) {
  std::string key(name);
  MutexLock lock(&mu_);
  auto it = gauges_.find(key);
  if (it != gauges_.end()) return it->second.get();
  if (NameTaken(key, counters_, gauges_, histograms_)) {
    if (conflicts_ != nullptr) conflicts_->Add(1);
    return ConflictSink<Gauge>();
  }
  if (!help.empty()) help_[key] = std::make_unique<std::string>(help);
  return gauges_.emplace(std::move(key), std::make_unique<Gauge>())
      .first->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const HistogramOptions& options,
                                         std::string_view help) {
  std::string key(name);
  MutexLock lock(&mu_);
  auto it = histograms_.find(key);
  if (it != histograms_.end()) return it->second.get();
  if (NameTaken(key, counters_, gauges_, histograms_)) {
    if (conflicts_ != nullptr) conflicts_->Add(1);
    static Histogram* sink =
        new Histogram(HistogramOptions{});  // lint:allow(naked-new: intentional immortal conflict sink)
    return sink;
  }
  if (!help.empty()) help_[key] = std::make_unique<std::string>(help);
  return histograms_.emplace(std::move(key), std::make_unique<Histogram>(options))
      .first->second.get();
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Collect() const {
  std::vector<Entry> out;
  {
    MutexLock lock(&mu_);
    out.reserve(counters_.size() + gauges_.size() + histograms_.size());
    // Help lookup is inlined (not a lambda): the analysis checks lambdas
    // with an empty lock set, see the sync.hpp header comment.
    for (const auto& [name, c] : counters_) {
      Entry e;
      e.name = name;
      auto h_it = help_.find(name);
      if (h_it != help_.end()) e.help = *h_it->second;
      e.kind = Kind::kCounter;
      e.counter = c.get();
      out.push_back(std::move(e));
    }
    for (const auto& [name, g] : gauges_) {
      Entry e;
      e.name = name;
      auto h_it = help_.find(name);
      if (h_it != help_.end()) e.help = *h_it->second;
      e.kind = Kind::kGauge;
      e.gauge = g.get();
      out.push_back(std::move(e));
    }
    for (const auto& [name, h] : histograms_) {
      Entry e;
      e.name = name;
      auto h_it = help_.find(name);
      if (h_it != help_.end()) e.help = *h_it->second;
      e.kind = Kind::kHistogram;
      e.histogram = h.get();
      out.push_back(std::move(e));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

void MetricsRegistry::RecordSpan(const Span& span) {
  MutexLock lock(&span_mu_);
  if (span_ring_.size() < kSpanRingCapacity) {
    span_ring_.push_back(span);
  } else {
    span_ring_[span_next_ % kSpanRingCapacity] = span;
  }
  ++span_next_;
}

std::vector<Span> MetricsRegistry::RecentSpans() const {
  MutexLock lock(&span_mu_);
  if (span_ring_.size() < kSpanRingCapacity) return span_ring_;
  // Full ring: oldest entry is the next overwrite slot.
  std::vector<Span> out;
  out.reserve(kSpanRingCapacity);
  const size_t head = span_next_ % kSpanRingCapacity;
  out.insert(out.end(), span_ring_.begin() + head, span_ring_.end());
  out.insert(out.end(), span_ring_.begin(), span_ring_.begin() + head);
  return out;
}

// ------------------------------------------------------------ spans / clock

SpanId NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

double ProcessSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double>(Clock::now() - epoch).count();
}

ScopedSpan::~ScopedSpan() {
  const double end = ProcessSeconds();
  Span span;
  span.id = id_;
  span.parent = parent_;
  span.name = name_;
  span.start_seconds = start_;
  span.duration_seconds = end - start_;
  span.detail = detail_;
  if (registry_ != nullptr) registry_->RecordSpan(span);
  if (histogram_ != nullptr) histogram_->Observe(span.duration_seconds);
}

}  // namespace slugger::obs

#endif  // SLUGGER_OBS_ENABLED
