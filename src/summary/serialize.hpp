// Binary serialization of hierarchical summaries.
//
// Format (all varint-coded):
//   magic, version, num_leaves,
//   #non-leaf supernodes, then per supernode (bottom-up order):
//     #children, child ids (delta-coded against a running counter),
//   #superedges, then per edge: a-delta, b-delta, sign bit.
// Loading validates structure (each node parented once, ids in range,
// signs well-formed) and returns Corruption on any inconsistency.
#ifndef SLUGGER_SUMMARY_SERIALIZE_HPP_
#define SLUGGER_SUMMARY_SERIALIZE_HPP_

#include <string>

#include "summary/summary_graph.hpp"
#include "util/status.hpp"

namespace slugger::summary {

/// Serializes to an in-memory buffer.
std::string SerializeSummary(const SummaryGraph& summary);

/// Parses a buffer produced by SerializeSummary.
StatusOr<SummaryGraph> DeserializeSummary(const std::string& buffer);

/// File convenience wrappers.
Status SaveSummary(const SummaryGraph& summary, const std::string& path);
StatusOr<SummaryGraph> LoadSummary(const std::string& path);

}  // namespace slugger::summary

#endif  // SLUGGER_SUMMARY_SERIALIZE_HPP_
