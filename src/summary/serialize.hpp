// Binary serialization of hierarchical summaries.
//
// Format (all varint-coded):
//   magic, version, num_leaves,
//   #non-leaf supernodes, then per supernode (bottom-up order):
//     #children, child ids (delta-coded against a running counter),
//   #superedges, then per edge: a-delta, b-delta, sign bit.
// Loading treats the buffer as untrusted: every varint-decoded count is
// bounded against the remaining buffer and the supernode id space
// (kMaxNodes) BEFORE it sizes an allocation or a loop, so a truncated or
// hostile file gets InvalidArgument up front. The one count the buffer
// cannot bound is the leaf count (isolated leaves occupy zero bytes); it
// is capped by the id space, and an allocation the process cannot honor
// within that cap is reported as InvalidArgument too (subject to the
// OS's overcommit policy) rather than escaping as std::bad_alloc.
// Structure is validated (each node parented once, ids in range, signs
// well-formed) with Corruption on any inconsistency.
#ifndef SLUGGER_SUMMARY_SERIALIZE_HPP_
#define SLUGGER_SUMMARY_SERIALIZE_HPP_

#include <string>

#include "summary/summary_graph.hpp"
#include "util/status.hpp"

namespace slugger::summary {

/// Serializes to an in-memory buffer.
std::string SerializeSummary(const SummaryGraph& summary);

/// Parses a buffer produced by SerializeSummary.
StatusOr<SummaryGraph> DeserializeSummary(const std::string& buffer);

/// File convenience wrappers.
Status SaveSummary(const SummaryGraph& summary, const std::string& path);
StatusOr<SummaryGraph> LoadSummary(const std::string& path);

}  // namespace slugger::summary

#endif  // SLUGGER_SUMMARY_SERIALIZE_HPP_
