// Losslessness verification: does a summary represent exactly this graph?
#ifndef SLUGGER_SUMMARY_VERIFY_HPP_
#define SLUGGER_SUMMARY_VERIFY_HPP_

#include "graph/graph.hpp"
#include "summary/summary_graph.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace slugger::summary {

/// Decodes `summary` and compares against `expected` edge-for-edge.
/// OK on exact match; Corruption with a diff sample otherwise.
/// With a non-null `pool`, reconstruction and the edge comparison run in
/// parallel (per-node-range, thread-local accumulators); the verdict and
/// diff sample are identical for every pool size.
Status VerifyLossless(const graph::Graph& expected, const SummaryGraph& summary,
                      ThreadPool* pool = nullptr);

}  // namespace slugger::summary

#endif  // SLUGGER_SUMMARY_VERIFY_HPP_
