// Losslessness verification: does a summary represent exactly this graph?
#ifndef SLUGGER_SUMMARY_VERIFY_HPP_
#define SLUGGER_SUMMARY_VERIFY_HPP_

#include "graph/graph.hpp"
#include "summary/summary_graph.hpp"
#include "util/status.hpp"

namespace slugger::summary {

/// Decodes `summary` and compares against `expected` edge-for-edge.
/// OK on exact match; Corruption with a diff sample otherwise.
Status VerifyLossless(const graph::Graph& expected, const SummaryGraph& summary);

}  // namespace slugger::summary

#endif  // SLUGGER_SUMMARY_VERIFY_HPP_
