#include "summary/hierarchy_forest.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace slugger::summary {

HierarchyForest::HierarchyForest(NodeId num_leaves) : num_leaves_(num_leaves) {
  parent_.assign(num_leaves, kInvalidId);
  children_.resize(num_leaves);
  size_.assign(num_leaves, 1);
  alive_.assign(num_leaves, 1);
  alive_count_ = num_leaves;
}

SupernodeId HierarchyForest::CreateParent(SupernodeId a, SupernodeId b) {
  assert(IsRoot(a) && IsRoot(b) && a != b);
  SupernodeId id = static_cast<SupernodeId>(parent_.size());
  parent_.push_back(kInvalidId);
  children_.push_back({a, b});
  size_.push_back(size_[a] + size_[b]);
  alive_.push_back(1);
  ++alive_count_;
  parent_[a] = id;
  parent_[b] = id;
  h_count_ += 2;
  return id;
}

void HierarchyForest::AdoptChild(SupernodeId p, SupernodeId c) {
  assert(alive_[p] && IsRoot(c) && p != c);
  children_[p].push_back(c);
  parent_[c] = p;
  ++h_count_;
  for (SupernodeId anc = p; anc != kInvalidId; anc = parent_[anc]) {
    size_[anc] += size_[c];
  }
}

void HierarchyForest::SpliceOut(SupernodeId s) {
  assert(alive_[s] && !IsLeaf(s));
  SupernodeId p = parent_[s];
  std::vector<SupernodeId>& kids = children_[s];
  if (p == kInvalidId) {
    // s was a root; its children become roots. |H| drops by #children.
    for (SupernodeId c : kids) parent_[c] = kInvalidId;
    h_count_ -= kids.size();
  } else {
    // Children move under the grandparent. |H| drops by exactly 1 (the
    // link s->p disappears; each child keeps one parent link).
    std::vector<SupernodeId>& up = children_[p];
    up.erase(std::find(up.begin(), up.end(), s));
    for (SupernodeId c : kids) {
      parent_[c] = p;
      up.push_back(c);
    }
    h_count_ -= 1;
  }
  kids.clear();
  kids.shrink_to_fit();
  alive_[s] = 0;
  parent_[s] = kInvalidId;
  --alive_count_;
}

SupernodeId HierarchyForest::Root(SupernodeId s) const {
  while (parent_[s] != kInvalidId) s = parent_[s];
  return s;
}

bool HierarchyForest::IsProperAncestor(SupernodeId anc, SupernodeId s) const {
  while (parent_[s] != kInvalidId) {
    s = parent_[s];
    if (s == anc) return true;
  }
  return false;
}

std::vector<SupernodeId> HierarchyForest::CollectRoots() const {
  std::vector<SupernodeId> roots;
  for (SupernodeId s = 0; s < capacity(); ++s) {
    if (IsRoot(s)) roots.push_back(s);
  }
  return roots;
}

uint32_t HierarchyForest::TreeHeight(SupernodeId s) const {
  struct Frame {
    SupernodeId node;
    uint32_t depth;
  };
  uint32_t height = 0;
  std::vector<Frame> stack{{s, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    height = std::max(height, f.depth);
    for (SupernodeId c : children_[f.node]) stack.push_back({c, f.depth + 1});
  }
  return height;
}

uint32_t HierarchyForest::MaxHeight() const {
  uint32_t best = 0;
  for (SupernodeId s = 0; s < capacity(); ++s) {
    if (IsRoot(s)) best = std::max(best, TreeHeight(s));
  }
  return best;
}

double HierarchyForest::AvgLeafDepth() const {
  if (num_leaves_ == 0) return 0.0;
  uint64_t total = 0;
  for (NodeId u = 0; u < num_leaves_; ++u) {
    SupernodeId s = u;
    while (parent_[s] != kInvalidId) {
      s = parent_[s];
      ++total;
    }
  }
  return static_cast<double>(total) / static_cast<double>(num_leaves_);
}

std::vector<uint32_t> HierarchyForest::ComputeLeafPreorder() const {
  std::vector<uint32_t> rank(num_leaves_, 0);
  std::vector<SupernodeId> stack;
  uint32_t next = 0;
  for (SupernodeId s = 0; s < capacity(); ++s) {
    if (!IsRoot(s)) continue;
    ForEachLeafWith(&stack, s, [&](NodeId leaf) { rank[leaf] = next++; });
  }
  return rank;
}

HierarchyForest::LeafLayout HierarchyForest::ComputeLeafLayout() const {
  LeafLayout layout;
  layout.rank.assign(num_leaves_, 0);
  layout.leaf_at.assign(num_leaves_, 0);
  layout.lo.assign(capacity(), 0);
  layout.hi.assign(capacity(), 0);
  uint32_t next = 0;
  // Two-phase DFS: a frame is revisited after its subtree is numbered, at
  // which point [lo, next) is exactly its leaf interval.
  std::vector<std::pair<SupernodeId, bool>> stack;
  for (SupernodeId s = 0; s < capacity(); ++s) {
    if (!IsRoot(s)) continue;
    stack.push_back({s, false});
    while (!stack.empty()) {
      auto [x, expanded] = stack.back();
      stack.pop_back();
      if (expanded) {
        layout.hi[x] = next;
        continue;
      }
      layout.lo[x] = next;
      if (IsLeaf(x)) {
        layout.rank[x] = next;
        layout.leaf_at[next] = static_cast<NodeId>(x);
        ++next;
        layout.hi[x] = next;
        continue;
      }
      stack.push_back({x, true});
      for (SupernodeId c : children_[x]) stack.push_back({c, false});
    }
  }
  return layout;
}

std::vector<SupernodeId> HierarchyForest::ComputeRootMap() const {
  std::vector<SupernodeId> root(capacity(), kInvalidId);
  for (SupernodeId s = 0; s < capacity(); ++s) {
    if (!IsRoot(s)) continue;
    root[s] = s;
    scratch_.clear();
    scratch_.push_back(s);
    while (!scratch_.empty()) {
      SupernodeId x = scratch_.back();
      scratch_.pop_back();
      for (SupernodeId c : children_[x]) {
        root[c] = s;
        scratch_.push_back(c);
      }
    }
  }
  return root;
}

}  // namespace slugger::summary
