// Partial decompression: neighbor retrieval directly on a summary
// (paper Algorithm 4) without reconstructing the whole graph.
#ifndef SLUGGER_SUMMARY_NEIGHBOR_QUERY_HPP_
#define SLUGGER_SUMMARY_NEIGHBOR_QUERY_HPP_

#include <vector>

#include "summary/summary_graph.hpp"
#include "util/types.hpp"

namespace slugger::summary {

/// Reusable neighbor-query engine over a fixed summary. Not thread-safe
/// (keeps per-query scratch buffers to stay allocation-free after warmup).
class NeighborQuery {
 public:
  explicit NeighborQuery(const SummaryGraph& summary);

  /// One-hop neighbors of subnode v in the represented graph, in
  /// unspecified order. Implements Algorithm 4: walk v's ancestors, apply
  /// signed coverage of their superedges, keep subnodes with positive net.
  const std::vector<NodeId>& Neighbors(NodeId v);

  /// Degree of v (size of Neighbors(v)).
  size_t Degree(NodeId v) { return Neighbors(v).size(); }

 private:
  const SummaryGraph& summary_;
  std::vector<int32_t> count_;       // per-subnode signed coverage
  std::vector<NodeId> touched_;      // subnodes with nonzero entries
  std::vector<NodeId> result_;
  std::vector<NodeId> leaf_buffer_;
};

}  // namespace slugger::summary

#endif  // SLUGGER_SUMMARY_NEIGHBOR_QUERY_HPP_
