// Partial decompression: neighbor retrieval directly on a summary
// (paper Algorithm 4) without reconstructing the whole graph.
//
// The query state is split so a service can serve concurrent readers:
// the SummaryGraph is the immutable shared index, and ALL mutable
// per-query state lives in a QueryScratch the caller owns. Any number of
// threads may call QueryNeighbors / QueryDegree on the same summary
// simultaneously as long as each brings its own scratch.
#ifndef SLUGGER_SUMMARY_NEIGHBOR_QUERY_HPP_
#define SLUGGER_SUMMARY_NEIGHBOR_QUERY_HPP_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "summary/summary_graph.hpp"
#include "util/types.hpp"

namespace slugger::summary {

/// Reusable per-caller (or per-thread) query buffers. Stays allocation-
/// free after warmup; automatically grows when reused across summaries of
/// different sizes (the coverage counters are all zero between queries,
/// so growth never observes stale state).
struct QueryScratch {
  std::vector<int32_t> count;        ///< per-subnode signed coverage
  std::vector<NodeId> touched;       ///< subnodes with nonzero entries
  std::vector<NodeId> result;        ///< last Neighbors() answer
  std::vector<SupernodeId> stack;    ///< leaf-traversal stack
};

/// One-hop neighbors of subnode v in the represented graph, in
/// unspecified order; the returned reference points into *scratch and is
/// valid until its next use. Implements Algorithm 4: walk v's ancestors,
/// apply signed coverage of their superedges, keep subnodes with positive
/// net. Thread-safe for concurrent callers with distinct scratches.
/// v must be < summary.num_leaves() (asserted); untrusted ids are
/// validated one layer up, at the slugger::CompressedGraph boundary.
const std::vector<NodeId>& QueryNeighbors(const SummaryGraph& summary,
                                          NodeId v, QueryScratch* scratch);

/// Degree of v (the size of QueryNeighbors(v)) without materializing the
/// neighbor list — counts positive-net subnodes straight off the coverage
/// pass. Thread-safe under the same contract as QueryNeighbors.
size_t QueryDegree(const SummaryGraph& summary, NodeId v,
                   QueryScratch* scratch);

/// One adjacency correction merged into the coverage walk: sign > 0
/// forces `neighbor` into the answer, sign < 0 forces it out, regardless
/// of the summary's own net coverage of the pair. This is the overlay
/// hook of the dynamic-update subsystem (stream::EdgeOverlay): a summary
/// stays immutable while a correction set layered on top mutates the
/// represented graph, and queries merge the two right in the walk.
struct NeighborOverride {
  NodeId neighbor;
  EdgeSign sign;
};

/// Sign of the override on `neighbor` in a list sorted by neighbor id
/// (0 when absent) — the one lookup every override consumer shares, so
/// membership probes can never diverge from the stored order.
inline EdgeSign FindOverrideSign(std::span<const NeighborOverride> sorted,
                                 NodeId neighbor) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), neighbor,
                             [](const NeighborOverride& o, NodeId key) {
                               return o.neighbor < key;
                             });
  return it != sorted.end() && it->neighbor == neighbor ? it->sign : 0;
}

/// QueryNeighbors with corrections: identical to the plain overload when
/// `overrides` is empty; otherwise each override's subnode is forced
/// present/absent in the answer. Every override neighbor must be a valid
/// subnode id and appear at most once; an override for v itself is
/// ignored (a simple graph has no self-loops). Same thread contract.
const std::vector<NodeId>& QueryNeighbors(
    const SummaryGraph& summary, NodeId v, QueryScratch* scratch,
    std::span<const NeighborOverride> overrides);

/// QueryDegree with corrections, under the QueryNeighbors contract.
size_t QueryDegree(const SummaryGraph& summary, NodeId v,
                   QueryScratch* scratch,
                   std::span<const NeighborOverride> overrides);

/// The raw coverage pass of Algorithm 4: walks the ancestor chain of v
/// and leaves the NET signed coverage of every covered pair {v, u} in
/// scratch->count[u], recording covered subnodes in scratch->touched
/// (entries may repeat when coverage cancels and returns; count is
/// authoritative). Exposed for consumers that need the magnitude, not
/// just the sign — the stream compactor folds corrections by solving for
/// the leaf-level superedge that flips a pair's net across zero. The
/// caller MUST restore the between-queries scratch invariant afterwards:
/// zero count over touched, then clear touched.
void AccumulateCoverage(const SummaryGraph& summary, NodeId v,
                        QueryScratch* scratch);

/// Adjacency lists of one batched query, concatenated: the neighbors of
/// the i-th input node are neighbors[offsets[i] .. offsets[i+1]), in the
/// caller's input order (not the internal processing order).
struct BatchResult {
  std::vector<NodeId> neighbors;
  std::vector<uint64_t> offsets;  ///< batch size + 1 entries (0 when empty)

  size_t size() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  std::span<const NodeId> operator[](size_t i) const {
    return std::span<const NodeId>(neighbors)
        .subspan(offsets[i], offsets[i + 1] - offsets[i]);
  }
};

/// Per-caller buffers of the batched query path. Like QueryScratch it is
/// allocation-free after warmup and reusable across summaries; every
/// coverage counter and membership flag is zero between batches, so one
/// scratch may serve interleaved single and batched queries.
struct BatchScratch {
  QueryScratch query;                ///< coverage counters + traversal stack
  std::vector<uint8_t> in_touched;   ///< membership flags for query.touched
  std::vector<SupernodeId> chains;   ///< concatenated root-first chains
  std::vector<uint64_t> chain_begin; ///< chain offsets (batch size + 1)
  std::vector<uint32_t> order;       ///< batch positions, locality-sorted
  std::vector<SupernodeId> applied;  ///< currently applied ancestor chain
  std::vector<NodeId> staged;        ///< neighbors in processing order
  std::vector<uint64_t> staged_begin;
  std::vector<uint32_t> preorder;    ///< fallback leaf ranks (see below)
};

/// Fills scratch->chains/chain_begin with each node's root-first ancestor
/// chain and scratch->order with the batch positions sorted by hierarchy
/// locality (leaf preorder): nodes sharing a long ancestor chain become
/// adjacent, which is what lets the batch pass below reuse one coverage
/// application per shared ancestor. Exposed so callers that shard a batch
/// across threads can sort once globally and keep each shard's slice
/// locality-contiguous. Every node must be < num_leaves().
///
/// `leaf_rank`, when provided, must be ComputeLeafPreorder() of the
/// summary's forest; since the forest is immutable while queries run,
/// long-lived holders (slugger::CompressedGraph) compute it once and pass
/// it to every batch. When null it is rebuilt into scratch->preorder, an
/// extra O(|summary|) per call.
///
/// `precomputed_order`, when non-empty, must be a permutation of
/// [0, nodes.size()) that already sorts the batch by leaf rank (ties by
/// position); it is copied into scratch->order and the O(b log b) sort is
/// skipped — the win for callers that sorted once globally and now batch a
/// presorted slice, who pass the identity. The ancestor chains are built
/// either way. An order that is not locality-sorted only costs speed,
/// never correctness.
void ComputeBatchOrder(const SummaryGraph& summary,
                       std::span<const NodeId> nodes, BatchScratch* scratch,
                       const std::vector<uint32_t>* leaf_rank = nullptr,
                       std::span<const uint32_t> precomputed_order = {});

/// Batched QueryNeighbors: answers every node of `nodes` (duplicates
/// allowed) into *result, in input order. Internally processes the batch
/// in hierarchy-locality order and keeps the signed coverage of the
/// shared ancestor-chain prefix applied across consecutive nodes, so the
/// dominant cost of Algorithm 4 — expanding each ancestor's superedges to
/// leaves — is paid once per distinct chain segment instead of once per
/// node. Thread-safe for concurrent callers with distinct scratches.
/// `leaf_rank` and `precomputed_order` as in ComputeBatchOrder.
void QueryNeighborsBatch(const SummaryGraph& summary,
                         std::span<const NodeId> nodes, BatchResult* result,
                         BatchScratch* scratch,
                         const std::vector<uint32_t>* leaf_rank = nullptr,
                         std::span<const uint32_t> precomputed_order = {});

/// Batched QueryDegree under the same amortization: degrees->at(i) is the
/// degree of nodes[i]; no neighbor list is materialized.
void QueryDegreeBatch(const SummaryGraph& summary,
                      std::span<const NodeId> nodes,
                      std::vector<uint64_t>* degrees, BatchScratch* scratch,
                      const std::vector<uint32_t>* leaf_rank = nullptr,
                      std::span<const uint32_t> precomputed_order = {});

/// Convenience wrapper bundling a summary reference with one scratch.
/// Not thread-safe (share the summary, not the NeighborQuery); concurrent
/// readers should call QueryNeighbors/QueryDegree with their own scratch,
/// or go through the slugger::CompressedGraph facade.
class NeighborQuery {
 public:
  explicit NeighborQuery(const SummaryGraph& summary) : summary_(summary) {}

  const std::vector<NodeId>& Neighbors(NodeId v) {
    return QueryNeighbors(summary_, v, &scratch_);
  }

  size_t Degree(NodeId v) { return QueryDegree(summary_, v, &scratch_); }

 private:
  const SummaryGraph& summary_;
  QueryScratch scratch_;
};

}  // namespace slugger::summary

#endif  // SLUGGER_SUMMARY_NEIGHBOR_QUERY_HPP_
