// Partial decompression: neighbor retrieval directly on a summary
// (paper Algorithm 4) without reconstructing the whole graph.
//
// The query state is split so a service can serve concurrent readers:
// the SummaryGraph is the immutable shared index, and ALL mutable
// per-query state lives in a QueryScratch the caller owns. Any number of
// threads may call QueryNeighbors / QueryDegree on the same summary
// simultaneously as long as each brings its own scratch.
#ifndef SLUGGER_SUMMARY_NEIGHBOR_QUERY_HPP_
#define SLUGGER_SUMMARY_NEIGHBOR_QUERY_HPP_

#include <vector>

#include "summary/summary_graph.hpp"
#include "util/types.hpp"

namespace slugger::summary {

/// Reusable per-caller (or per-thread) query buffers. Stays allocation-
/// free after warmup; automatically grows when reused across summaries of
/// different sizes (the coverage counters are all zero between queries,
/// so growth never observes stale state).
struct QueryScratch {
  std::vector<int32_t> count;        ///< per-subnode signed coverage
  std::vector<NodeId> touched;       ///< subnodes with nonzero entries
  std::vector<NodeId> result;        ///< last Neighbors() answer
  std::vector<SupernodeId> stack;    ///< leaf-traversal stack
};

/// One-hop neighbors of subnode v in the represented graph, in
/// unspecified order; the returned reference points into *scratch and is
/// valid until its next use. Implements Algorithm 4: walk v's ancestors,
/// apply signed coverage of their superedges, keep subnodes with positive
/// net. Thread-safe for concurrent callers with distinct scratches.
const std::vector<NodeId>& QueryNeighbors(const SummaryGraph& summary,
                                          NodeId v, QueryScratch* scratch);

/// Degree of v (the size of QueryNeighbors(v)) without materializing the
/// neighbor list — counts positive-net subnodes straight off the coverage
/// pass. Thread-safe under the same contract as QueryNeighbors.
size_t QueryDegree(const SummaryGraph& summary, NodeId v,
                   QueryScratch* scratch);

/// Convenience wrapper bundling a summary reference with one scratch.
/// Not thread-safe (share the summary, not the NeighborQuery); concurrent
/// readers should call QueryNeighbors/QueryDegree with their own scratch,
/// or go through the slugger::CompressedGraph facade.
class NeighborQuery {
 public:
  explicit NeighborQuery(const SummaryGraph& summary) : summary_(summary) {}

  const std::vector<NodeId>& Neighbors(NodeId v) {
    return QueryNeighbors(summary_, v, &scratch_);
  }

  size_t Degree(NodeId v) { return QueryDegree(summary_, v, &scratch_); }

 private:
  const SummaryGraph& summary_;
  QueryScratch scratch_;
};

}  // namespace slugger::summary

#endif  // SLUGGER_SUMMARY_NEIGHBOR_QUERY_HPP_
