#include "summary/summary_graph.hpp"

#include <cassert>

namespace slugger::summary {

SummaryGraph::SummaryGraph(NodeId num_leaves) : forest_(num_leaves) {
  adj_.resize(num_leaves);
}

EdgeSign SummaryGraph::GetSign(SupernodeId a, SupernodeId b) const {
  const EdgeSign* sign = adj_[a].Find(b);
  return sign != nullptr ? *sign : 0;
}

bool SummaryGraph::AddEdge(SupernodeId a, SupernodeId b, EdgeSign sign) {
  assert(sign == 1 || sign == -1);
  assert(forest_.IsAlive(a) && forest_.IsAlive(b));
  assert(a == b || (!forest_.IsProperAncestor(a, b) &&
                    !forest_.IsProperAncestor(b, a)));
  const EdgeSign* existing = adj_[a].Find(b);
  if (existing != nullptr) {
    assert(*existing == sign && "sign flip requires RemoveEdge first");
    return false;
  }
  adj_[a].Put(b, sign);
  if (a != b) adj_[b].Put(a, sign);
  if (sign > 0) {
    ++p_count_;
  } else {
    ++n_count_;
  }
  return true;
}

EdgeSign SummaryGraph::RemoveEdge(SupernodeId a, SupernodeId b) {
  const EdgeSign* existing = adj_[a].Find(b);
  if (existing == nullptr) return 0;
  EdgeSign sign = *existing;
  adj_[a].Erase(b);
  if (a != b) adj_[b].Erase(a);
  if (sign > 0) {
    --p_count_;
  } else {
    --n_count_;
  }
  return sign;
}

void SummaryGraph::CollectLeaves(SupernodeId s, std::vector<NodeId>* out) const {
  out->clear();
  forest_.ForEachLeaf(s, [&](NodeId u) { out->push_back(u); });
}

void SummaryGraph::CollectLeaves(SupernodeId s, std::vector<NodeId>* out,
                                 std::vector<SupernodeId>* stack) const {
  out->clear();
  forest_.ForEachLeafWith(stack, s, [&](NodeId u) { out->push_back(u); });
}

}  // namespace slugger::summary
