// The supernode forest: hierarchy trees of supernodes (the H component).
#ifndef SLUGGER_SUMMARY_HIERARCHY_FOREST_HPP_
#define SLUGGER_SUMMARY_HIERARCHY_FOREST_HPP_

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace slugger::summary {

/// Forest of supernodes. Supernodes 0..num_leaves-1 are the singleton
/// leaves {0}, ..., {n-1}; merged supernodes get fresh ids. Every non-leaf
/// supernode is exactly the union of its children. |H| equals the number of
/// alive supernodes that have a parent.
class HierarchyForest {
 public:
  explicit HierarchyForest(NodeId num_leaves = 0);

  NodeId num_leaves() const { return num_leaves_; }
  SupernodeId capacity() const { return static_cast<SupernodeId>(parent_.size()); }

  bool IsAlive(SupernodeId s) const { return alive_[s]; }
  bool IsLeaf(SupernodeId s) const { return s < num_leaves_; }
  SupernodeId Parent(SupernodeId s) const { return parent_[s]; }
  bool IsRoot(SupernodeId s) const {
    return alive_[s] && parent_[s] == kInvalidId;
  }
  const std::vector<SupernodeId>& Children(SupernodeId s) const {
    return children_[s];
  }
  /// Number of subnodes contained in s.
  uint32_t Size(SupernodeId s) const { return size_[s]; }

  /// Number of h-edges (parent links) over alive supernodes.
  uint64_t h_count() const { return h_count_; }

  /// Number of alive supernodes.
  uint64_t alive_count() const { return alive_count_; }

  /// Creates a new supernode whose children are roots a and b; adds two
  /// h-edges. Returns the new id.
  SupernodeId CreateParent(SupernodeId a, SupernodeId b);

  /// Attaches root c as an additional child of p (one new h-edge); the
  /// sizes of p and its ancestors grow by Size(c).
  void AdoptChild(SupernodeId p, SupernodeId c);

  /// Removes non-leaf supernode s from the forest, splicing its children to
  /// its parent (or promoting them to roots if s was a root). Adjusts |H|.
  /// The caller must have removed all p/n-edges incident to s first.
  void SpliceOut(SupernodeId s);

  /// Root of the tree containing s (parent-pointer walk).
  SupernodeId Root(SupernodeId s) const;

  /// True iff `anc` is a proper ancestor of `s`.
  bool IsProperAncestor(SupernodeId anc, SupernodeId s) const;

  /// Invokes fn(leaf) for every subnode contained in s.
  template <typename Fn>
  void ForEachLeaf(SupernodeId s, Fn&& fn) const {
    ForEachLeafWith(&scratch_, s, fn);
  }

  /// ForEachLeaf with a caller-provided traversal stack. The shared-scratch
  /// overload above is NOT safe to call from several threads at once; give
  /// each worker its own stack and this one is (the traversal only reads
  /// the forest).
  template <typename Fn>
  void ForEachLeafWith(std::vector<SupernodeId>* stack, SupernodeId s,
                       Fn&& fn) const {
    if (IsLeaf(s)) {
      fn(static_cast<NodeId>(s));
      return;
    }
    stack->clear();
    stack->push_back(s);
    while (!stack->empty()) {
      SupernodeId x = stack->back();
      stack->pop_back();
      if (IsLeaf(x)) {
        fn(static_cast<NodeId>(x));
      } else {
        for (SupernodeId c : children_[x]) stack->push_back(c);
      }
    }
  }

  /// Pre-allocates every per-supernode array to `total` entries so that
  /// CreateParent never reallocates. Concurrent readers of existing
  /// entries then stay safe while a (serialized) writer appends.
  void Reserve(SupernodeId total) {
    parent_.reserve(total);
    children_.reserve(total);
    size_.reserve(total);
    alive_.reserve(total);
  }

  /// Collects alive roots.
  std::vector<SupernodeId> CollectRoots() const;

  /// Height in edges of the tree rooted at s (0 for a childless node).
  uint32_t TreeHeight(SupernodeId s) const;

  /// Maximum tree height over all roots.
  uint32_t MaxHeight() const;

  /// Mean depth of the num_leaves leaves (roots have depth 0).
  double AvgLeafDepth() const;

  /// root[s] for every alive supernode, computed in one pass.
  std::vector<SupernodeId> ComputeRootMap() const;

  /// Preorder rank of every leaf (dense, 0-based): the leaves of any
  /// subtree occupy one contiguous rank range, so sorting node ids by
  /// rank is equivalent to sorting their root-first ancestor chains
  /// lexicographically — the hierarchy-locality order the batched query
  /// path wants, at one integer comparison per pair.
  std::vector<uint32_t> ComputeLeafPreorder() const;

  /// The leaf preorder plus its inverse and, per supernode, the rank
  /// interval its leaves occupy. This is the bottom-up aggregate substrate
  /// of the summary-domain analytics layer (algs/summary_ops): because the
  /// interval family of a forest is laminar, any per-supernode aggregate
  /// over leaf values (sum, count, frontier mass) is one prefix-sum
  /// difference, and any supernode-pair intersection is an interval clamp.
  struct LeafLayout {
    std::vector<uint32_t> rank;     ///< leaf -> preorder position
    std::vector<NodeId> leaf_at;    ///< preorder position -> leaf
    /// Leaves of supernode s occupy positions [lo[s], hi[s]); capacity()
    /// entries, with lo == hi == 0 for dead supernodes.
    std::vector<uint32_t> lo;
    std::vector<uint32_t> hi;
  };
  LeafLayout ComputeLeafLayout() const;

 private:
  NodeId num_leaves_ = 0;
  std::vector<SupernodeId> parent_;
  std::vector<std::vector<SupernodeId>> children_;
  std::vector<uint32_t> size_;
  std::vector<uint8_t> alive_;
  uint64_t h_count_ = 0;
  uint64_t alive_count_ = 0;
  mutable std::vector<SupernodeId> scratch_;
};

}  // namespace slugger::summary

#endif  // SLUGGER_SUMMARY_HIERARCHY_FOREST_HPP_
