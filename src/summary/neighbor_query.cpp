#include "summary/neighbor_query.hpp"

namespace slugger::summary {

NeighborQuery::NeighborQuery(const SummaryGraph& summary) : summary_(summary) {
  count_.assign(summary.num_leaves(), 0);
}

const std::vector<NodeId>& NeighborQuery::Neighbors(NodeId v) {
  const HierarchyForest& forest = summary_.forest();
  result_.clear();

  // Walk the ancestor chain of v (including the leaf {v} itself); apply
  // each incident superedge's coverage to the per-subnode counters.
  SupernodeId node = v;
  while (node != kInvalidId) {
    summary_.ForEachEdgeOf(node, [&](SupernodeId other, EdgeSign sign) {
      forest.ForEachLeaf(other, [&](NodeId u) {
        if (count_[u] == 0 && sign != 0) touched_.push_back(u);
        count_[u] += sign;
      });
    });
    node = forest.Parent(node);
  }

  for (NodeId u : touched_) {
    if (count_[u] > 0 && u != v) result_.push_back(u);
    count_[u] = 0;
  }
  touched_.clear();
  return result_;
}

}  // namespace slugger::summary
