#include "summary/neighbor_query.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "obs/metrics.hpp"

namespace slugger::summary {

/// The shared coverage pass of Algorithm 4: walks the ancestor chain of v
/// (including the leaf {v} itself) and applies each incident superedge's
/// signed coverage to scratch->count, recording touched subnodes. Reads
/// only the summary (via the caller-owned traversal stack), so concurrent
/// invocations with distinct scratches are race-free.
void AccumulateCoverage(const SummaryGraph& summary, NodeId v,
                        QueryScratch* scratch) {
  assert(v < summary.num_leaves());
  if (scratch->count.size() < summary.num_leaves()) {
    scratch->count.resize(summary.num_leaves(), 0);
  }
  const HierarchyForest& forest = summary.forest();
  SupernodeId node = v;
  while (node != kInvalidId) {
    summary.ForEachEdgeOf(node, [&](SupernodeId other, EdgeSign sign) {
      forest.ForEachLeafWith(&scratch->stack, other, [&](NodeId u) {
        if (scratch->count[u] == 0 && sign != 0) scratch->touched.push_back(u);
        scratch->count[u] += sign;
      });
    });
    node = forest.Parent(node);
  }
}

namespace {

/// Coverage magnitude that dominates any real summary's net on a pair, so
/// an override decides presence no matter what the walk accumulated. Net
/// coverage is bounded by the superedge count, far below INT32_MAX / 2.
constexpr int32_t kForcedCoverage = INT32_MAX / 2;

/// Merges overlay corrections into an accumulated coverage: after this,
/// the normal positive-net extraction emits exactly the corrected
/// adjacency. Duplicates in touched are benign — extraction zeroes each
/// count on first visit, so revisits contribute nothing.
void ApplyOverrides(std::span<const NeighborOverride> overrides,
                    QueryScratch* scratch) {
  for (const NeighborOverride& o : overrides) {
    if (scratch->count[o.neighbor] == 0) scratch->touched.push_back(o.neighbor);
    scratch->count[o.neighbor] =
        o.sign > 0 ? kForcedCoverage : -kForcedCoverage;
  }
}

/// Applies (dir = +1) or retracts (dir = -1) the coverage contribution of
/// one ancestor to the batch scratch. Unlike AccumulateCoverage this keeps
/// an explicit membership flag per touched subnode: counts move both ways
/// across a batch, so "count just became nonzero" no longer implies "first
/// time seen" and duplicates in the touched list would double-report.
void ApplyAncestorCoverage(const SummaryGraph& summary, SupernodeId node,
                           int32_t dir, BatchScratch* s) {
  const HierarchyForest& forest = summary.forest();
  QueryScratch& q = s->query;
  summary.ForEachEdgeOf(node, [&](SupernodeId other, EdgeSign sign) {
    forest.ForEachLeafWith(&q.stack, other, [&](NodeId u) {
      if (!s->in_touched[u]) {
        s->in_touched[u] = 1;
        q.touched.push_back(u);
      }
      q.count[u] += dir * sign;
    });
  });
}

/// Zeroes every coverage counter and membership flag in O(|touched|),
/// restoring the between-queries invariant without re-walking superedges.
void ResetCoverage(BatchScratch* s) {
  QueryScratch& q = s->query;
  for (NodeId u : q.touched) {
    q.count[u] = 0;
    s->in_touched[u] = 0;
  }
  q.touched.clear();
  s->applied.clear();
}

// How often the batch walk amortizes work: chain reuse (retract only the
// divergent ancestor suffix), full resets, and duplicate-node copy hits.
// Updated once per batch from local tallies — never per node.
struct BatchObs {
  obs::Counter* chain_reuse = obs::MetricsRegistry::Global().GetCounter(
      "slugger_query_chain_reuse_total",
      "batch nodes that kept a shared ancestor-chain prefix applied");
  obs::Counter* chain_reset = obs::MetricsRegistry::Global().GetCounter(
      "slugger_query_chain_reset_total",
      "batch nodes that discarded coverage (single-query strategy)");
  obs::Counter* dup_hits = obs::MetricsRegistry::Global().GetCounter(
      "slugger_query_batch_dup_hits_total",
      "batch nodes answered by copying the previous duplicate's answer");
};

const BatchObs& Obs() {
  static BatchObs handles;
  return handles;
}

/// One pass for both batch flavors; kDegreesOnly skips materialization.
template <bool kDegreesOnly>
void RunBatch(const SummaryGraph& summary, std::span<const NodeId> nodes,
              BatchResult* result, std::vector<uint64_t>* degrees,
              BatchScratch* s, const std::vector<uint32_t>* leaf_rank,
              std::span<const uint32_t> precomputed_order) {
  const size_t batch = nodes.size();
  if constexpr (kDegreesOnly) {
    degrees->assign(batch, 0);
  } else {
    result->neighbors.clear();
    result->offsets.assign(batch + 1, 0);
  }
  if (batch == 0) return;

  QueryScratch& q = s->query;
  if (q.count.size() < summary.num_leaves()) {
    q.count.resize(summary.num_leaves(), 0);
  }
  if (s->in_touched.size() < summary.num_leaves()) {
    s->in_touched.resize(summary.num_leaves(), 0);
  }

  ComputeBatchOrder(summary, nodes, s, leaf_rank, precomputed_order);
  s->applied.clear();
  if constexpr (!kDegreesOnly) {
    s->staged.clear();
    s->staged_begin.assign(1, 0);
  }

  // Shared-prefix length of the node at position k+1's chain against the
  // chain starting at chain_b (length chain_len); 0 for the last node.
  const auto prefix_shared_with_next = [s, batch](size_t k, uint64_t chain_b,
                                                  size_t chain_len) {
    if (k + 1 >= batch) return size_t{0};
    const uint64_t next_b = s->chain_begin[s->order[k + 1]];
    const size_t next_len = s->chain_begin[s->order[k + 1] + 1] - next_b;
    size_t n = 0;
    while (n < chain_len && n < next_len &&
           s->chains[next_b + n] == s->chains[chain_b + n]) {
      ++n;
    }
    return n;
  };

  // Shared-prefix length of the current chain against the applied one,
  // carried from the peek at the bottom of the previous iteration (0
  // whenever that peek chose to reset the coverage).
  size_t common = 0;
  uint64_t obs_reuse = 0, obs_reset = 0, obs_dup = 0;
  for (size_t k = 0; k < batch; ++k) {
    const uint32_t i = s->order[k];
    const NodeId v = nodes[i];
    const uint64_t chain_b = s->chain_begin[i];
    const size_t chain_len = s->chain_begin[i + 1] - chain_b;

    // Duplicates sort adjacently (ties break by position), and a
    // repeated node's answer is identical — copy it instead of
    // re-scanning the coverage. Hot nodes make this common in real
    // serving batches.
    if (k > 0 && nodes[s->order[k - 1]] == v) {
      ++obs_dup;
      if constexpr (kDegreesOnly) {
        (*degrees)[i] = (*degrees)[s->order[k - 1]];
      } else {
        const uint64_t prev_b = s->staged_begin[k - 1];
        const uint64_t prev_e = s->staged_begin[k];
        const size_t old_size = s->staged.size();
        s->staged.resize(old_size + (prev_e - prev_b));
        std::copy(s->staged.begin() + prev_b, s->staged.begin() + prev_e,
                  s->staged.begin() + old_size);
        s->staged_begin.push_back(s->staged.size());
      }
      // The skipped extraction also skipped the keep-or-reset peek; redo
      // it here so `common` stays the prefix of the NEXT chain against
      // the applied stack (which this fast path left untouched).
      const size_t next_common = prefix_shared_with_next(k, chain_b, chain_len);
      if (2 * next_common > chain_len && !s->applied.empty()) {
        common = next_common;
      } else {
        ResetCoverage(s);
        common = 0;
      }
      continue;
    }

    // Keep the longest ancestor-chain prefix shared with the previous
    // node applied; retract only the divergent suffix and apply the new
    // one. (After a reset below, `applied` is empty and this degenerates
    // to a full application — the single-query cost.)
    while (s->applied.size() > common) {
      ApplyAncestorCoverage(summary, s->applied.back(), -1, s);
      s->applied.pop_back();
    }
    for (size_t d = common; d < chain_len; ++d) {
      const SupernodeId node = s->chains[chain_b + d];
      ApplyAncestorCoverage(summary, node, +1, s);
      s->applied.push_back(node);
    }

    // Peek at the next node's chain: retracting level by level pays off
    // only when more than half of this chain stays applied (retraction
    // walks superedges; zeroing counters in the extraction scan below is
    // nearly free). Otherwise extraction destroys the coverage as it
    // reads it — one pass, exactly the single-query strategy.
    const size_t next_common = prefix_shared_with_next(k, chain_b, chain_len);
    const bool keep_applied = 2 * next_common > chain_len;

    if (keep_applied) {
      ++obs_reuse;
    } else {
      ++obs_reset;
    }

    uint64_t degree = 0;
    if (keep_applied) {
      // Extract positive-net subnodes, compacting entries whose coverage
      // cancelled back to zero so the touched list keeps tracking exactly
      // the currently applied chain.
      size_t w = 0;
      for (size_t t = 0; t < q.touched.size(); ++t) {
        const NodeId u = q.touched[t];
        const int32_t c = q.count[u];
        if (c == 0) {
          s->in_touched[u] = 0;
          continue;
        }
        q.touched[w++] = u;
        if (c > 0 && u != v) {
          if constexpr (kDegreesOnly) {
            ++degree;
          } else {
            s->staged.push_back(u);
          }
        }
      }
      q.touched.resize(w);
      common = next_common;
    } else {
      for (const NodeId u : q.touched) {
        if (q.count[u] > 0 && u != v) {
          if constexpr (kDegreesOnly) {
            ++degree;
          } else {
            s->staged.push_back(u);
          }
        }
        q.count[u] = 0;
        s->in_touched[u] = 0;
      }
      q.touched.clear();
      s->applied.clear();
      common = 0;
    }
    if constexpr (kDegreesOnly) {
      (*degrees)[i] = degree;
    } else {
      s->staged_begin.push_back(s->staged.size());
    }
  }
  ResetCoverage(s);

  // One flush per batch keeps the per-node loop free of atomics.
  if (obs_reuse != 0) Obs().chain_reuse->Add(obs_reuse);
  if (obs_reset != 0) Obs().chain_reset->Add(obs_reset);
  if (obs_dup != 0) Obs().dup_hits->Add(obs_dup);

  if constexpr (!kDegreesOnly) {
    // Staged answers are in processing order; emit them in input order.
    for (size_t k = 0; k < batch; ++k) {
      result->offsets[s->order[k] + 1] =
          s->staged_begin[k + 1] - s->staged_begin[k];
    }
    for (size_t i = 0; i < batch; ++i) {
      result->offsets[i + 1] += result->offsets[i];
    }
    result->neighbors.resize(s->staged.size());
    for (size_t k = 0; k < batch; ++k) {
      std::copy(s->staged.begin() + s->staged_begin[k],
                s->staged.begin() + s->staged_begin[k + 1],
                result->neighbors.begin() + result->offsets[s->order[k]]);
    }
  }
}

}  // namespace

const std::vector<NodeId>& QueryNeighbors(const SummaryGraph& summary,
                                          NodeId v, QueryScratch* scratch) {
  return QueryNeighbors(summary, v, scratch, {});
}

size_t QueryDegree(const SummaryGraph& summary, NodeId v,
                   QueryScratch* scratch) {
  return QueryDegree(summary, v, scratch, {});
}

const std::vector<NodeId>& QueryNeighbors(
    const SummaryGraph& summary, NodeId v, QueryScratch* scratch,
    std::span<const NeighborOverride> overrides) {
  AccumulateCoverage(summary, v, scratch);
  ApplyOverrides(overrides, scratch);
  scratch->result.clear();
  for (NodeId u : scratch->touched) {
    if (scratch->count[u] > 0 && u != v) scratch->result.push_back(u);
    scratch->count[u] = 0;
  }
  scratch->touched.clear();
  return scratch->result;
}

size_t QueryDegree(const SummaryGraph& summary, NodeId v,
                   QueryScratch* scratch,
                   std::span<const NeighborOverride> overrides) {
  AccumulateCoverage(summary, v, scratch);
  ApplyOverrides(overrides, scratch);
  size_t degree = 0;
  for (NodeId u : scratch->touched) {
    degree += scratch->count[u] > 0 && u != v;
    scratch->count[u] = 0;
  }
  scratch->touched.clear();
  return degree;
}

void ComputeBatchOrder(const SummaryGraph& summary,
                       std::span<const NodeId> nodes, BatchScratch* scratch,
                       const std::vector<uint32_t>* leaf_rank,
                       std::span<const uint32_t> precomputed_order) {
  const HierarchyForest& forest = summary.forest();
  scratch->chains.clear();
  scratch->chain_begin.assign(1, 0);
  scratch->chain_begin.reserve(nodes.size() + 1);
  for (NodeId v : nodes) {
    assert(v < summary.num_leaves());
    const size_t begin = scratch->chains.size();
    for (SupernodeId node = v; node != kInvalidId; node = forest.Parent(node)) {
      scratch->chains.push_back(node);
    }
    std::reverse(scratch->chains.begin() + begin, scratch->chains.end());
    scratch->chain_begin.push_back(scratch->chains.size());
  }

  if (!precomputed_order.empty()) {
    assert(precomputed_order.size() == nodes.size());
    scratch->order.assign(precomputed_order.begin(), precomputed_order.end());
    return;
  }

  if (leaf_rank == nullptr) {
    scratch->preorder = forest.ComputeLeafPreorder();
    leaf_rank = &scratch->preorder;
  }
  assert(leaf_rank->size() >= summary.num_leaves());

  scratch->order.resize(nodes.size());
  std::iota(scratch->order.begin(), scratch->order.end(), 0u);
  const std::vector<uint32_t>& rank = *leaf_rank;
  std::sort(scratch->order.begin(), scratch->order.end(),
            [&rank, nodes](uint32_t a, uint32_t b) {
              // Leaf preorder keeps every subtree's leaves contiguous, so
              // ascending rank clusters shared ancestor chains as tightly
              // as any chain-lexicographic order would — at one integer
              // comparison. Equal ranks mean the same node; break by
              // position to keep the order deterministic.
              const uint32_t ra = rank[nodes[a]];
              const uint32_t rb = rank[nodes[b]];
              if (ra != rb) return ra < rb;
              return a < b;
            });
}

void QueryNeighborsBatch(const SummaryGraph& summary,
                         std::span<const NodeId> nodes, BatchResult* result,
                         BatchScratch* scratch,
                         const std::vector<uint32_t>* leaf_rank,
                         std::span<const uint32_t> precomputed_order) {
  RunBatch<false>(summary, nodes, result, nullptr, scratch, leaf_rank,
                  precomputed_order);
}

void QueryDegreeBatch(const SummaryGraph& summary,
                      std::span<const NodeId> nodes,
                      std::vector<uint64_t>* degrees, BatchScratch* scratch,
                      const std::vector<uint32_t>* leaf_rank,
                      std::span<const uint32_t> precomputed_order) {
  RunBatch<true>(summary, nodes, nullptr, degrees, scratch, leaf_rank,
                 precomputed_order);
}

}  // namespace slugger::summary
