#include "summary/neighbor_query.hpp"

namespace slugger::summary {

namespace {

/// The shared coverage pass of Algorithm 4: walks the ancestor chain of v
/// (including the leaf {v} itself) and applies each incident superedge's
/// signed coverage to scratch->count, recording touched subnodes. Reads
/// only the summary (via the caller-owned traversal stack), so concurrent
/// invocations with distinct scratches are race-free.
void AccumulateCoverage(const SummaryGraph& summary, NodeId v,
                        QueryScratch* scratch) {
  if (scratch->count.size() < summary.num_leaves()) {
    scratch->count.resize(summary.num_leaves(), 0);
  }
  const HierarchyForest& forest = summary.forest();
  SupernodeId node = v;
  while (node != kInvalidId) {
    summary.ForEachEdgeOf(node, [&](SupernodeId other, EdgeSign sign) {
      forest.ForEachLeafWith(&scratch->stack, other, [&](NodeId u) {
        if (scratch->count[u] == 0 && sign != 0) scratch->touched.push_back(u);
        scratch->count[u] += sign;
      });
    });
    node = forest.Parent(node);
  }
}

}  // namespace

const std::vector<NodeId>& QueryNeighbors(const SummaryGraph& summary,
                                          NodeId v, QueryScratch* scratch) {
  AccumulateCoverage(summary, v, scratch);
  scratch->result.clear();
  for (NodeId u : scratch->touched) {
    if (scratch->count[u] > 0 && u != v) scratch->result.push_back(u);
    scratch->count[u] = 0;
  }
  scratch->touched.clear();
  return scratch->result;
}

size_t QueryDegree(const SummaryGraph& summary, NodeId v,
                   QueryScratch* scratch) {
  AccumulateCoverage(summary, v, scratch);
  size_t degree = 0;
  for (NodeId u : scratch->touched) {
    degree += scratch->count[u] > 0 && u != v;
    scratch->count[u] = 0;
  }
  scratch->touched.clear();
  return degree;
}

}  // namespace slugger::summary
