// Descriptive statistics of a summary, matching the paper's reporting.
#ifndef SLUGGER_SUMMARY_STATS_HPP_
#define SLUGGER_SUMMARY_STATS_HPP_

#include <cstdint>
#include <string>

#include "summary/summary_graph.hpp"

namespace slugger::summary {

/// Aggregates reported across the paper's tables and figures.
struct SummaryStats {
  uint64_t num_subnodes = 0;
  uint64_t num_supernodes = 0;   ///< alive supernodes, leaves included
  uint64_t num_roots = 0;
  uint64_t p_count = 0;
  uint64_t n_count = 0;
  uint64_t h_count = 0;
  uint64_t cost = 0;             ///< |P+| + |P-| + |H| (Eq. 1)
  uint32_t max_height = 0;       ///< Table IV "Max Height"
  double avg_leaf_depth = 0.0;   ///< Table IV/V "Avg. Depth of Leaf Nodes"

  /// Eq. 10: cost / |E| of the input graph.
  double RelativeSize(uint64_t input_edges) const {
    return input_edges == 0 ? 0.0
                            : static_cast<double>(cost) /
                                  static_cast<double>(input_edges);
  }

  /// Fractions for Fig. 6 (p-edges : n-edges : h-edges).
  double PFraction() const { return cost ? 1.0 * p_count / cost : 0.0; }
  double NFraction() const { return cost ? 1.0 * n_count / cost : 0.0; }
  double HFraction() const { return cost ? 1.0 * h_count / cost : 0.0; }

  std::string ToString() const;
};

/// Computes all statistics in one pass over the summary.
SummaryStats ComputeStats(const SummaryGraph& summary);

}  // namespace slugger::summary

#endif  // SLUGGER_SUMMARY_STATS_HPP_
