// The hierarchical graph summarization model G = (S, P+, P-, H).
#ifndef SLUGGER_SUMMARY_SUMMARY_GRAPH_HPP_
#define SLUGGER_SUMMARY_SUMMARY_GRAPH_HPP_

#include <cassert>
#include <cstdint>
#include <vector>

#include "summary/hierarchy_forest.hpp"
#include "util/flat_map.hpp"
#include "util/types.hpp"

namespace slugger::summary {

/// A hierarchical summary of a graph with `num_leaves` subnodes.
///
/// Semantics (paper §II-B): subedge (u, v) exists iff more p-edges than
/// n-edges cover the pair {u, v}; a superedge (A, B) covers {u, v} iff
/// u ∈ A, v ∈ B or vice versa. This implementation restricts superedges to
/// non-nested supernode pairs (self-loops allowed); every encoding SLUGGER
/// produces obeys the restriction, and it keeps partial decompression
/// (Algorithm 4) exact with a single ancestor walk.
class SummaryGraph {
 public:
  explicit SummaryGraph(NodeId num_leaves = 0);

  const HierarchyForest& forest() const { return forest_; }
  HierarchyForest& forest() { return forest_; }

  NodeId num_leaves() const { return forest_.num_leaves(); }
  uint64_t p_count() const { return p_count_; }
  uint64_t n_count() const { return n_count_; }
  uint64_t h_count() const { return forest_.h_count(); }

  /// The objective Cost(G) = |P+| + |P-| + |H| (paper Eq. 1).
  uint64_t Cost() const { return p_count_ + n_count_ + h_count(); }

  /// Sign of superedge {a, b}: +1 p-edge, -1 n-edge, 0 absent.
  EdgeSign GetSign(SupernodeId a, SupernodeId b) const;

  /// Inserts superedge {a, b} (a == b encodes a self-loop) with `sign`.
  /// Returns false if an identical-sign edge was already present. Replacing
  /// the opposite sign is a programming error (remove first).
  bool AddEdge(SupernodeId a, SupernodeId b, EdgeSign sign);

  /// Removes superedge {a, b}; returns its former sign (0 if absent).
  EdgeSign RemoveEdge(SupernodeId a, SupernodeId b);

  /// Number of p/n-edges incident to s (self-loop counts once).
  size_t EdgeCountOf(SupernodeId s) const { return adj_[s].size(); }

  /// Invokes fn(other, sign) for each superedge incident to s; a self-loop
  /// reports other == s.
  template <typename Fn>
  void ForEachEdgeOf(SupernodeId s, Fn&& fn) const {
    adj_[s].ForEach(fn);
  }

  /// Invokes fn(a, b, sign) once per superedge (a <= b).
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    for (SupernodeId a = 0; a < static_cast<SupernodeId>(adj_.size()); ++a) {
      adj_[a].ForEach([&](SupernodeId b, EdgeSign sign) {
        if (a <= b) fn(a, b, sign);
      });
    }
  }

  /// Creates the supernode a ∪ b above roots a and b (two new h-edges).
  SupernodeId Merge(SupernodeId a, SupernodeId b) {
    SupernodeId m = forest_.CreateParent(a, b);
    adj_.emplace_back();
    return m;
  }

  /// Removes supernode s from the forest; all incident p/n-edges must have
  /// been removed already.
  void SpliceOut(SupernodeId s) {
    assert(adj_[s].empty());
    forest_.SpliceOut(s);
  }

  /// Collects the leaves (subnode ids) of s into a reusable buffer.
  void CollectLeaves(SupernodeId s, std::vector<NodeId>* out) const;

  /// CollectLeaves with a caller-provided traversal stack — safe to call
  /// concurrently from several threads (each with its own buffers).
  void CollectLeaves(SupernodeId s, std::vector<NodeId>* out,
                     std::vector<SupernodeId>* stack) const;

  /// Pre-allocates forest and adjacency storage for `total` supernodes so
  /// Merge never reallocates (see HierarchyForest::Reserve).
  void Reserve(SupernodeId total) {
    forest_.Reserve(total);
    adj_.reserve(total);
  }

  /// Initializes the summary to represent graph edges verbatim:
  /// P+ = {({u},{v})}, P- = {}, H = {} (paper Alg. 1, lines 1-4).
  template <typename EdgeRange>
  void InitFromEdges(const EdgeRange& edges) {
    for (const auto& e : edges) AddEdge(e.first, e.second, +1);
  }

 private:
  HierarchyForest forest_;
  std::vector<FlatSignedMap> adj_;
  // Atomic (relaxed): the async merge engine lets commits on disjoint lock
  // shards add/remove edges concurrently, and these two tallies are the
  // only state they share.
  RelaxedCounter p_count_ = 0;
  RelaxedCounter n_count_ = 0;
};

}  // namespace slugger::summary

#endif  // SLUGGER_SUMMARY_SUMMARY_GRAPH_HPP_
