#include "summary/stats.hpp"

#include <cstdio>

namespace slugger::summary {

SummaryStats ComputeStats(const SummaryGraph& summary) {
  const HierarchyForest& forest = summary.forest();
  SummaryStats stats;
  stats.num_subnodes = forest.num_leaves();
  stats.num_supernodes = forest.alive_count();
  for (SupernodeId s = 0; s < forest.capacity(); ++s) {
    if (forest.IsRoot(s)) ++stats.num_roots;
  }
  stats.p_count = summary.p_count();
  stats.n_count = summary.n_count();
  stats.h_count = summary.h_count();
  stats.cost = summary.Cost();
  stats.max_height = forest.MaxHeight();
  stats.avg_leaf_depth = forest.AvgLeafDepth();
  return stats;
}

std::string SummaryStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "supernodes=%llu roots=%llu |P+|=%llu |P-|=%llu |H|=%llu "
                "cost=%llu max_height=%u avg_leaf_depth=%.3f",
                static_cast<unsigned long long>(num_supernodes),
                static_cast<unsigned long long>(num_roots),
                static_cast<unsigned long long>(p_count),
                static_cast<unsigned long long>(n_count),
                static_cast<unsigned long long>(h_count),
                static_cast<unsigned long long>(cost), max_height,
                avg_leaf_depth);
  return buf;
}

}  // namespace slugger::summary
