#include "summary/verify.hpp"

#include <atomic>
#include <string>

#include "summary/decode.hpp"

namespace slugger::summary {

namespace {

/// Parallel equality pre-check over aligned edge slices. Only reached when
/// the edge counts match, so a mismatch at any index decides inequality.
bool EdgesEqual(const std::vector<Edge>& a, const std::vector<Edge>& b,
                ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1 || a.size() < (1u << 14)) {
    return a == b;
  }
  std::atomic<bool> equal{true};
  constexpr uint64_t kGrain = 1 << 14;
  pool->ParallelFor(a.size(), kGrain,
                    [&](uint64_t begin, uint64_t end, unsigned) {
                      if (!equal.load(std::memory_order_relaxed)) return;
                      for (uint64_t i = begin; i < end; ++i) {
                        if (a[i] != b[i]) {
                          equal.store(false, std::memory_order_relaxed);
                          return;
                        }
                      }
                    });
  return equal.load(std::memory_order_relaxed);
}

}  // namespace

Status VerifyLossless(const graph::Graph& expected, const SummaryGraph& summary,
                      ThreadPool* pool) {
  if (summary.num_leaves() != expected.num_nodes()) {
    return Status::Corruption(
        "node count mismatch: summary has " +
        std::to_string(summary.num_leaves()) + ", graph has " +
        std::to_string(expected.num_nodes()));
  }
  graph::Graph decoded = Decode(summary, pool);
  const auto& a = expected.Edges();
  const auto& b = decoded.Edges();
  if (a.size() == b.size() && EdgesEqual(a, b, pool)) return Status::OK();

  // Report a small sample of differing edges to aid debugging.
  std::string diff;
  int reported = 0;
  size_t i = 0, j = 0;
  while ((i < a.size() || j < b.size()) && reported < 5) {
    if (j >= b.size() || (i < a.size() && a[i] < b[j])) {
      diff += " missing(" + std::to_string(a[i].first) + "," +
              std::to_string(a[i].second) + ")";
      ++i;
      ++reported;
    } else if (i >= a.size() || b[j] < a[i]) {
      diff += " spurious(" + std::to_string(b[j].first) + "," +
              std::to_string(b[j].second) + ")";
      ++j;
      ++reported;
    } else {
      ++i;
      ++j;
    }
  }
  return Status::Corruption(
      "decode mismatch: expected " + std::to_string(a.size()) + " edges, got " +
      std::to_string(b.size()) + ";" + diff);
}

}  // namespace slugger::summary
