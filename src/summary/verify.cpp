#include "summary/verify.hpp"

#include <string>

#include "summary/decode.hpp"

namespace slugger::summary {

Status VerifyLossless(const graph::Graph& expected, const SummaryGraph& summary) {
  if (summary.num_leaves() != expected.num_nodes()) {
    return Status::Corruption(
        "node count mismatch: summary has " +
        std::to_string(summary.num_leaves()) + ", graph has " +
        std::to_string(expected.num_nodes()));
  }
  graph::Graph decoded = Decode(summary);
  if (decoded == expected) return Status::OK();

  // Report a small sample of differing edges to aid debugging.
  std::string diff;
  int reported = 0;
  const auto& a = expected.Edges();
  const auto& b = decoded.Edges();
  size_t i = 0, j = 0;
  while ((i < a.size() || j < b.size()) && reported < 5) {
    if (j >= b.size() || (i < a.size() && a[i] < b[j])) {
      diff += " missing(" + std::to_string(a[i].first) + "," +
              std::to_string(a[i].second) + ")";
      ++i;
      ++reported;
    } else if (i >= a.size() || b[j] < a[i]) {
      diff += " spurious(" + std::to_string(b[j].first) + "," +
              std::to_string(b[j].second) + ")";
      ++j;
      ++reported;
    } else {
      ++i;
      ++j;
    }
  }
  return Status::Corruption(
      "decode mismatch: expected " + std::to_string(a.size()) + " edges, got " +
      std::to_string(b.size()) + ";" + diff);
}

}  // namespace slugger::summary
