#include "summary/decode.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/edge_list.hpp"
#include "util/hashing.hpp"

namespace slugger::summary {

namespace {

struct SuperEdge {
  SupernodeId a;
  SupernodeId b;
  EdgeSign sign;
};

/// The historical single-threaded path: one global coverage map.
graph::Graph DecodeSequential(const SummaryGraph& summary) {
  const NodeId n = summary.num_leaves();

  std::unordered_map<uint64_t, int32_t> coverage;
  coverage.reserve(summary.p_count() * 2 + 16);

  std::vector<NodeId> leaves_a;
  std::vector<NodeId> leaves_b;
  summary.ForEachEdge([&](SupernodeId a, SupernodeId b, EdgeSign sign) {
    if (a == b) {
      summary.CollectLeaves(a, &leaves_a);
      for (size_t i = 0; i < leaves_a.size(); ++i) {
        for (size_t j = i + 1; j < leaves_a.size(); ++j) {
          coverage[PairKey(leaves_a[i], leaves_a[j])] += sign;
        }
      }
    } else {
      // Non-self superedges join disjoint supernodes (nested pairs are
      // excluded by the model restriction), so the cross product never
      // repeats a subnode pair.
      summary.CollectLeaves(a, &leaves_a);
      summary.CollectLeaves(b, &leaves_b);
      for (NodeId u : leaves_a) {
        for (NodeId v : leaves_b) {
          coverage[PairKey(u, v)] += sign;
        }
      }
    }
  });

  graph::EdgeListBuilder builder(n);
  builder.EnsureNodes(n);
  for (const auto& [key, net] : coverage) {
    if (net > 0) builder.Add(PairFirst(key), PairSecond(key));
  }
  return graph::Graph::FromCanonicalEdges(n, builder.Finalize());
}

}  // namespace

graph::Graph Decode(const SummaryGraph& summary, ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1 || summary.num_leaves() < 2) {
    return DecodeSequential(summary);
  }
  const NodeId n = summary.num_leaves();
  const unsigned workers = pool->size();

  // Snapshot the superedge list so workers can claim disjoint slices.
  std::vector<SuperEdge> supers;
  supers.reserve(summary.p_count() + summary.n_count());
  summary.ForEachEdge([&](SupernodeId a, SupernodeId b, EdgeSign sign) {
    supers.push_back({a, b, sign});
  });

  // Ranges partition the node-id space by the smaller endpoint of a pair.
  // More ranges than workers load-balances skewed supernode sizes; the
  // output is range-count independent (ranges concatenate in id order).
  const uint32_t num_ranges = std::min<uint32_t>(n, workers * 8);
  auto range_of = [&](NodeId min_id) -> uint32_t {
    return static_cast<uint32_t>(static_cast<uint64_t>(min_id) * num_ranges / n);
  };

  // Phase 1: expand superedge slices into per-(worker, range) accumulators.
  // Each signed pair is recorded exactly once, keyed canonically.
  std::vector<std::vector<std::vector<std::pair<uint64_t, int32_t>>>> buckets(
      workers);
  for (auto& per_worker : buckets) per_worker.resize(num_ranges);
  struct ExpandScratch {
    std::vector<NodeId> leaves_a;
    std::vector<NodeId> leaves_b;
    std::vector<SupernodeId> stack;
  };
  std::vector<ExpandScratch> scratch(workers);

  constexpr uint64_t kSuperGrain = 8;
  pool->ParallelFor(
      supers.size(), kSuperGrain,
      [&](uint64_t begin, uint64_t end, unsigned worker) {
        ExpandScratch& sc = scratch[worker];
        auto& out = buckets[worker];
        auto emit = [&](NodeId u, NodeId v, EdgeSign sign) {
          uint64_t key = PairKey(u, v);
          out[range_of(PairFirst(key))].emplace_back(key, sign);
        };
        for (uint64_t e = begin; e < end; ++e) {
          const SuperEdge& se = supers[e];
          if (se.a == se.b) {
            summary.CollectLeaves(se.a, &sc.leaves_a, &sc.stack);
            for (size_t i = 0; i < sc.leaves_a.size(); ++i) {
              for (size_t j = i + 1; j < sc.leaves_a.size(); ++j) {
                emit(sc.leaves_a[i], sc.leaves_a[j], se.sign);
              }
            }
          } else {
            summary.CollectLeaves(se.a, &sc.leaves_a, &sc.stack);
            summary.CollectLeaves(se.b, &sc.leaves_b, &sc.stack);
            for (NodeId u : sc.leaves_a) {
              for (NodeId v : sc.leaves_b) emit(u, v, se.sign);
            }
          }
        }
      });

  // Phase 2: per range, fold every worker's bucket into a net-coverage map
  // and emit the surviving pairs in canonical order. Range r's keys all
  // precede range r+1's, so per-range sorted outputs concatenate sorted.
  std::vector<std::vector<Edge>> range_edges(num_ranges);
  pool->Run(num_ranges, [&](uint64_t r, unsigned) {
    size_t total = 0;
    for (unsigned w = 0; w < workers; ++w) total += buckets[w][r].size();
    if (total == 0) return;
    std::unordered_map<uint64_t, int32_t> net;
    net.reserve(total * 2);
    for (unsigned w = 0; w < workers; ++w) {
      for (const auto& [key, sign] : buckets[w][r]) net[key] += sign;
    }
    std::vector<Edge>& out = range_edges[r];
    for (const auto& [key, cov] : net) {
      if (cov > 0) out.emplace_back(PairFirst(key), PairSecond(key));
    }
    std::sort(out.begin(), out.end());
  });

  std::vector<Edge> edges;
  size_t total_edges = 0;
  for (const auto& re : range_edges) total_edges += re.size();
  edges.reserve(total_edges);
  for (const auto& re : range_edges) {
    edges.insert(edges.end(), re.begin(), re.end());
  }
  return graph::Graph::FromCanonicalEdges(n, std::move(edges));
}

}  // namespace slugger::summary
