#include "summary/decode.hpp"

#include <unordered_map>

#include "graph/edge_list.hpp"
#include "util/hashing.hpp"

namespace slugger::summary {

graph::Graph Decode(const SummaryGraph& summary) {
  const NodeId n = summary.num_leaves();

  std::unordered_map<uint64_t, int32_t> coverage;
  coverage.reserve(summary.p_count() * 2 + 16);

  std::vector<NodeId> leaves_a;
  std::vector<NodeId> leaves_b;
  summary.ForEachEdge([&](SupernodeId a, SupernodeId b, EdgeSign sign) {
    if (a == b) {
      summary.CollectLeaves(a, &leaves_a);
      for (size_t i = 0; i < leaves_a.size(); ++i) {
        for (size_t j = i + 1; j < leaves_a.size(); ++j) {
          coverage[PairKey(leaves_a[i], leaves_a[j])] += sign;
        }
      }
    } else {
      // Non-self superedges join disjoint supernodes (nested pairs are
      // excluded by the model restriction), so the cross product never
      // repeats a subnode pair.
      summary.CollectLeaves(a, &leaves_a);
      summary.CollectLeaves(b, &leaves_b);
      for (NodeId u : leaves_a) {
        for (NodeId v : leaves_b) {
          coverage[PairKey(u, v)] += sign;
        }
      }
    }
  });

  graph::EdgeListBuilder builder(n);
  builder.EnsureNodes(n);
  for (const auto& [key, net] : coverage) {
    if (net > 0) builder.Add(PairFirst(key), PairSecond(key));
  }
  return graph::Graph::FromCanonicalEdges(n, builder.Finalize());
}

}  // namespace slugger::summary
