#include "summary/serialize.hpp"

#include <algorithm>
#include <fstream>
#include <new>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/varint.hpp"

namespace slugger::summary {

namespace {
constexpr uint64_t kMagic = 0x534C474753554Dull;  // "SLGGSUM"
constexpr uint64_t kVersion = 1;
}  // namespace

std::string SerializeSummary(const SummaryGraph& summary) {
  const HierarchyForest& forest = summary.forest();
  std::string out;
  PutVarint64(&out, kMagic);
  PutVarint64(&out, kVersion);
  PutVarint64(&out, forest.num_leaves());

  // Renumber alive supernodes: leaves keep their ids; non-leaves get dense
  // ids in a bottom-up (children-before-parent) order, which creation order
  // already guarantees; pruning only removes nodes, preserving the order.
  std::vector<SupernodeId> non_leaves;
  std::vector<SupernodeId> renumber(forest.capacity(), kInvalidId);
  for (NodeId u = 0; u < forest.num_leaves(); ++u) renumber[u] = u;
  for (SupernodeId s = forest.num_leaves(); s < forest.capacity(); ++s) {
    if (forest.IsAlive(s)) {
      renumber[s] = forest.num_leaves() + static_cast<SupernodeId>(non_leaves.size());
      non_leaves.push_back(s);
    }
  }

  PutVarint64(&out, non_leaves.size());
  for (SupernodeId s : non_leaves) {
    const auto& kids = forest.Children(s);
    PutVarint64(&out, kids.size());
    std::vector<SupernodeId> mapped;
    mapped.reserve(kids.size());
    for (SupernodeId c : kids) mapped.push_back(renumber[c]);
    std::sort(mapped.begin(), mapped.end());
    SupernodeId prev = 0;
    for (SupernodeId c : mapped) {
      PutVarint64(&out, c - prev);
      prev = c;
    }
  }

  // Edges, sorted canonically on renumbered ids, delta-coded.
  std::vector<std::pair<uint64_t, EdgeSign>> edges;
  edges.reserve(summary.p_count() + summary.n_count());
  summary.ForEachEdge([&](SupernodeId a, SupernodeId b, EdgeSign sign) {
    uint64_t ra = renumber[a];
    uint64_t rb = renumber[b];
    if (ra > rb) std::swap(ra, rb);
    edges.emplace_back((ra << 32) | rb, sign);
  });
  std::sort(edges.begin(), edges.end());
  PutVarint64(&out, edges.size());
  uint64_t prev_a = 0;
  uint64_t prev_b = 0;
  for (const auto& [key, sign] : edges) {
    uint64_t a = key >> 32;
    uint64_t b = key & 0xFFFFFFFFull;
    if (a != prev_a) {
      PutVarint64(&out, a - prev_a);
      prev_a = a;
      prev_b = 0;
    } else {
      PutVarint64(&out, 0);
    }
    PutVarint64(&out, ((b - prev_b) << 1) | (sign > 0 ? 1 : 0));
    prev_b = b;
  }
  return out;
}

namespace {

StatusOr<SummaryGraph> DeserializeSummaryImpl(const std::string& buffer) {
  VarintReader reader(buffer);
  uint64_t magic = 0, version = 0, num_leaves = 0, num_internal = 0;
  Status s = reader.Get(&magic);
  if (!s.ok()) return s;
  if (magic != kMagic) return Status::Corruption("bad summary magic");
  if (!(s = reader.Get(&version)).ok()) return s;
  if (version != kVersion) return Status::Corruption("unsupported version");
  if (!(s = reader.Get(&num_leaves)).ok()) return s;
  // Every varint-decoded count below is bounded BEFORE it sizes an
  // allocation or a loop: an untrusted buffer may claim any 64-bit value,
  // and the bound is what turns "huge allocation / out-of-range id" into
  // InvalidArgument. The leaf count has no buffer-derived bound (isolated
  // leaves occupy zero bytes), so it is gated by the id-space limit that
  // Engine::Summarize also enforces — a loadable file is one the engine
  // could have produced.
  if (num_leaves > kMaxNodes) {
    return Status::InvalidArgument(
        "declared num_leaves " + std::to_string(num_leaves) +
        " exceeds the supernode id space (max " + std::to_string(kMaxNodes) +
        ")");
  }
  if (!(s = reader.Get(&num_internal)).ok()) return s;
  // A forest over n leaves whose internal nodes all have >= 2 children has
  // at most n - 1 internal nodes...
  if (num_internal + 1 > num_leaves && num_internal != 0) {
    return Status::InvalidArgument("too many internal supernodes");
  }
  // ...and each one needs at least 3 encoded bytes (a child count plus two
  // child deltas), so a count the remaining buffer cannot possibly back is
  // rejected before the per-node vector below is allocated.
  if (num_internal > (reader.remaining() + 2) / 3) {
    return Status::InvalidArgument(
        "declared internal supernode count " + std::to_string(num_internal) +
        " exceeds what the remaining " + std::to_string(reader.remaining()) +
        " bytes can encode");
  }

  SummaryGraph summary(static_cast<NodeId>(num_leaves));
  uint64_t total = num_leaves + num_internal;

  // Rebuild the forest. Children arrive before parents; we first create all
  // internal nodes as parents of a fake pair, so instead we reconstruct
  // manually through CreateParent on the first two children and a splice
  // trick is avoided by building with explicit adoption below.
  std::vector<std::vector<SupernodeId>> pending(num_internal);
  for (uint64_t i = 0; i < num_internal; ++i) {
    uint64_t num_children = 0;
    if (!(s = reader.Get(&num_children)).ok()) return s;
    if (num_children < 2) return Status::Corruption("supernode with <2 children");
    if (num_children > reader.remaining()) {
      // Each child delta takes at least one byte.
      return Status::InvalidArgument(
          "declared child count " + std::to_string(num_children) +
          " exceeds the remaining buffer");
    }
    uint64_t prev = 0;
    for (uint64_t j = 0; j < num_children; ++j) {
      uint64_t delta = 0;
      if (!(s = reader.Get(&delta)).ok()) return s;
      if (delta > 0xFFFFFFFFull) {
        // Larger deltas could wrap the running child id back into range.
        return Status::Corruption("child delta out of range");
      }
      uint64_t child = prev + delta;
      prev = child;
      if (child >= num_leaves + i) {
        return Status::Corruption("child id out of range (not bottom-up)");
      }
      pending[i].push_back(static_cast<SupernodeId>(child));
    }
  }

  // Materialize: create each internal node from its first two children,
  // then adopt the remaining children via forest surgery.
  HierarchyForest& forest = summary.forest();
  std::vector<uint8_t> has_parent(total, 0);
  for (uint64_t i = 0; i < num_internal; ++i) {
    for (SupernodeId c : pending[i]) {
      if (has_parent[c]) return Status::Corruption("node parented twice");
      has_parent[c] = 1;
      if (!forest.IsRoot(c)) return Status::Corruption("child is not a root");
    }
    SupernodeId m = summary.Merge(pending[i][0], pending[i][1]);
    for (size_t j = 2; j < pending[i].size(); ++j) {
      // Adopt: create a temporary pair then splice — instead we extend the
      // forest API minimally: Merge handles pairs; remaining children are
      // attached through AdoptChild.
      forest.AdoptChild(m, pending[i][j]);
    }
  }

  // Edges. Each edge encodes as two varints, so at least two bytes.
  uint64_t num_edges = 0;
  if (!(s = reader.Get(&num_edges)).ok()) return s;
  if (num_edges > (reader.remaining() + 1) / 2) {
    return Status::InvalidArgument(
        "declared superedge count " + std::to_string(num_edges) +
        " exceeds what the remaining " + std::to_string(reader.remaining()) +
        " bytes can encode");
  }
  uint64_t prev_a = 0;
  uint64_t prev_b = 0;
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint64_t da = 0, packed = 0;
    if (!(s = reader.Get(&da)).ok()) return s;
    if (da > 0xFFFFFFFFull) {
      // Bounded so the running endpoint below cannot wrap back into range.
      return Status::Corruption("superedge delta out of range");
    }
    if (da != 0) {
      prev_a += da;
      prev_b = 0;
    }
    if (!(s = reader.Get(&packed)).ok()) return s;
    if ((packed >> 1) > 0xFFFFFFFFull) {
      return Status::Corruption("superedge delta out of range");
    }
    uint64_t b = prev_b + (packed >> 1);
    prev_b = b;
    EdgeSign sign = (packed & 1) ? +1 : -1;
    uint64_t a = prev_a;
    if (a >= total || b >= total || a > b) {
      return Status::Corruption("superedge out of range");
    }
    if (!forest.IsAlive(static_cast<SupernodeId>(a)) ||
        !forest.IsAlive(static_cast<SupernodeId>(b))) {
      return Status::Corruption("superedge touches dead supernode");
    }
    if (a != b && (forest.IsProperAncestor(static_cast<SupernodeId>(a),
                                           static_cast<SupernodeId>(b)) ||
                   forest.IsProperAncestor(static_cast<SupernodeId>(b),
                                           static_cast<SupernodeId>(a)))) {
      return Status::Corruption("nested superedge");
    }
    if (summary.GetSign(static_cast<SupernodeId>(a),
                        static_cast<SupernodeId>(b)) != 0) {
      return Status::Corruption("duplicate superedge");
    }
    summary.AddEdge(static_cast<SupernodeId>(a), static_cast<SupernodeId>(b),
                    sign);
  }
  if (!reader.exhausted()) return Status::Corruption("trailing bytes");
  return summary;
}

}  // namespace

StatusOr<SummaryGraph> DeserializeSummary(const std::string& buffer) {
  // The per-count bounds above reject everything the buffer itself can
  // contradict, but a declared leaf count has no buffer-derived bound
  // (isolated leaves occupy zero bytes), so a hostile file may still
  // declare more leaves than this process can allocate within the
  // id-space gate. Surface that as a Status instead of an uncaught
  // std::bad_alloc tearing down the serving process.
  try {
    return DeserializeSummaryImpl(buffer);
  } catch (const std::bad_alloc&) {
    return Status::InvalidArgument(
        "summary declares more supernodes than memory allows");
  } catch (const std::length_error&) {
    return Status::InvalidArgument(
        "summary declares more supernodes than memory allows");
  }
}

Status SaveSummary(const SummaryGraph& summary, const std::string& path) {
  std::string buf = SerializeSummary(summary);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

StatusOr<SummaryGraph> LoadSummary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return DeserializeSummary(ss.str());
}

}  // namespace slugger::summary
