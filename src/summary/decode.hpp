// Full decompression of a hierarchical summary back to the input graph.
#ifndef SLUGGER_SUMMARY_DECODE_HPP_
#define SLUGGER_SUMMARY_DECODE_HPP_

#include "graph/graph.hpp"
#include "summary/summary_graph.hpp"
#include "util/thread_pool.hpp"

namespace slugger::summary {

/// Reconstructs the exact graph a summary represents: subedge (u, v) exists
/// iff the net signed coverage of {u, v} is positive (paper §II-B).
/// Cost is linear in the total pair coverage of all superedges, which for
/// SLUGGER outputs is O(|E| + cancelled pairs).
///
/// With a non-null `pool`, reconstruction runs in parallel: workers expand
/// disjoint slices of the superedge list into thread-local accumulators
/// bucketed by the smaller endpoint's node range, then each range is
/// reduced and emitted independently. The decoded graph is identical for
/// every pool size (including none) — net coverage per pair is a sum, and
/// ranges concatenate in canonical order.
graph::Graph Decode(const SummaryGraph& summary, ThreadPool* pool = nullptr);

}  // namespace slugger::summary

#endif  // SLUGGER_SUMMARY_DECODE_HPP_
