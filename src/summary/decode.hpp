// Full decompression of a hierarchical summary back to the input graph.
#ifndef SLUGGER_SUMMARY_DECODE_HPP_
#define SLUGGER_SUMMARY_DECODE_HPP_

#include "graph/graph.hpp"
#include "summary/summary_graph.hpp"

namespace slugger::summary {

/// Reconstructs the exact graph a summary represents: subedge (u, v) exists
/// iff the net signed coverage of {u, v} is positive (paper §II-B).
/// Cost is linear in the total pair coverage of all superedges, which for
/// SLUGGER outputs is O(|E| + cancelled pairs).
graph::Graph Decode(const SummaryGraph& summary);

}  // namespace slugger::summary

#endif  // SLUGGER_SUMMARY_DECODE_HPP_
