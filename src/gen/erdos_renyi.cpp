#include <unordered_set>

#include "gen/generators.hpp"
#include "graph/edge_list.hpp"
#include "util/hashing.hpp"

namespace slugger::gen {

Graph ErdosRenyi(NodeId n, uint64_t m, uint64_t seed) {
  Rng rng(seed);
  uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  if (m > max_edges) m = max_edges;

  graph::EdgeListBuilder builder(n);
  builder.Reserve(m);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    NodeId u = static_cast<NodeId>(rng.Below(n));
    NodeId v = static_cast<NodeId>(rng.Below(n));
    if (u == v) continue;
    if (seen.insert(PairKey(u, v)).second) builder.Add(u, v);
  }
  return Graph::FromCanonicalEdges(n, builder.Finalize());
}

}  // namespace slugger::gen
