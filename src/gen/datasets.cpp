#include "gen/datasets.hpp"

#include <cstdlib>
#include <cstdio>

#include "gen/generators.hpp"

namespace slugger::gen {

Scale ScaleFromEnv() {
  const char* env = std::getenv("SLUGGER_BENCH_SCALE");
  if (env == nullptr) return Scale::kSmall;
  std::string v(env);
  if (v == "tiny") return Scale::kTiny;
  if (v == "full") return Scale::kFull;
  return Scale::kSmall;
}

std::string ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return "tiny";
    case Scale::kFull:
      return "full";
    case Scale::kSmall:
      break;
  }
  return "small";
}

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec> kSpecs = {
      {"CA-syn", "Caida (CA)", "Internet", 0.835},
      {"FA-syn", "Ego-Facebook (FA)", "Social", 0.429},
      {"PR-syn", "Protein (PR)", "Protein Interaction", 0.094},
      {"EM-syn", "Email-Enron (EM)", "Email", 0.743},
      {"DB-syn", "DBLP (DB)", "Collaboration", 0.678},
      {"AM-syn", "Amazon0601 (AM)", "Co-purchase", 0.700},
      {"CN-syn", "CNR-2000 (CN)", "Hyperlinks", 0.216},
      {"YO-syn", "Youtube (YO)", "Social", 0.917},
      {"SK-syn", "Skitter (SK)", "Internet", 0.542},
      {"EU-syn", "EU-05 (EU)", "Hyperlinks", 0.187},
      {"ES-syn", "Eswiki-13 (ES)", "Social", 0.718},
      {"LJ-syn", "LiveJournal (LJ)", "Social", 0.744},
      {"HO-syn", "Hollywood (HO)", "Collaboration", 0.422},
      {"IC-syn", "IC-04 (IC)", "Hyperlinks", 0.101},
      {"U2-syn", "UK-02 (U2)", "Hyperlinks", 0.142},
      {"U5-syn", "UK-05 (U5)", "Hyperlinks", 0.108},
  };
  return kSpecs;
}

namespace {

/// Multiplicative size factor per scale; applied to node counts.
double Factor(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return 0.25;
    case Scale::kFull:
      return 3.0;
    case Scale::kSmall:
      break;
  }
  return 1.0;
}

NodeId Sz(double base, double f) {
  double v = base * f;
  return v < 4 ? 4 : static_cast<NodeId>(v);
}

}  // namespace

graph::Graph GenerateDataset(const std::string& name, Scale scale,
                             uint64_t seed) {
  const double f = Factor(scale);

  if (name == "CA-syn") {
    // Internet AS topology: hubs plus multi-homed stub duplication;
    // mildly compressible like Caida.
    return DuplicationDivergence(Sz(14000, f), 2, 0.30, 0.7, seed);
  }
  if (name == "FA-syn") {
    // Ego-network: dense overlapping friend circles.
    return Caveman(static_cast<uint32_t>(Sz(44, f)), 46, 0.12, seed);
  }
  if (name == "PR-syn") {
    // Protein interaction: small and block-dense with nested modules; the
    // headline dataset (best compression in the paper).
    PlantedHierarchyOptions opt;
    opt.branching = 9;
    opt.depth = 3;
    opt.leaf_size = static_cast<uint32_t>(Sz(4, f));
    opt.leaf_density = 0.9;
    opt.pair_link_prob = 0.28;
    opt.pair_link_decay = 0.3;
    opt.noise_density = 3e-5;
    return PlantedHierarchy(opt, seed);
  }
  if (name == "EM-syn") {
    // Email: heavy-tailed with mailing-list style duplication.
    return DuplicationDivergence(Sz(16000, f), 5, 0.40, 0.65, seed);
  }
  if (name == "DB-syn") {
    // DBLP: papers project onto small author cliques.
    return Affiliation(Sz(40000, f), static_cast<uint32_t>(Sz(15000, f)), 4, 9,
                       seed);
  }
  if (name == "AM-syn") {
    // Co-purchase: many small overlapping cliques.
    return Affiliation(Sz(45000, f), static_cast<uint32_t>(Sz(18000, f)), 3, 8,
                       seed);
  }
  if (name == "CN-syn") {
    // Hyperlink host graph: deep nesting, many near-identical rows.
    PlantedHierarchyOptions opt;
    opt.branching = 5;
    opt.depth = 4;
    opt.leaf_size = static_cast<uint32_t>(Sz(14, f));
    opt.leaf_density = 0.85;
    opt.pair_link_prob = 0.35;
    opt.pair_link_decay = 0.06;
    opt.noise_density = 2e-5;
    return PlantedHierarchy(opt, seed);
  }
  if (name == "YO-syn") {
    // Youtube: sparse social graph, nearly incompressible.
    return DuplicationDivergence(Sz(70000, f), 2, 0.12, 0.5, seed);
  }
  if (name == "SK-syn") {
    // Skitter traceroutes: heavy path/stub duplication along routes.
    return DuplicationDivergence(Sz(90000, f), 3, 0.55, 0.75, seed);
  }
  if (name == "EU-syn") {
    // EU-05 hyperlinks: strong hierarchy, dense blocks.
    PlantedHierarchyOptions opt;
    opt.branching = 6;
    opt.depth = 4;
    opt.leaf_size = static_cast<uint32_t>(Sz(10, f));
    opt.leaf_density = 0.9;
    opt.pair_link_prob = 0.4;
    opt.pair_link_decay = 0.04;
    opt.noise_density = 1e-5;
    return PlantedHierarchy(opt, seed);
  }
  if (name == "ES-syn") {
    // Eswiki: wiki link graph, moderate template duplication.
    return DuplicationDivergence(Sz(110000, f), 4, 0.35, 0.6, seed);
  }
  if (name == "LJ-syn") {
    // LiveJournal: social graph with community duplication.
    return DuplicationDivergence(Sz(130000, f), 4, 0.30, 0.6, seed);
  }
  if (name == "HO-syn") {
    // Hollywood: large casts project onto large cliques.
    return Affiliation(Sz(40000, f), static_cast<uint32_t>(Sz(4500, f)), 12, 32,
                       seed);
  }
  if (name == "IC-syn") {
    // IC-04 crawl: very dense nested blocks.
    PlantedHierarchyOptions opt;
    opt.branching = 7;
    opt.depth = 4;
    opt.leaf_size = static_cast<uint32_t>(Sz(9, f));
    opt.leaf_density = 0.93;
    opt.pair_link_prob = 0.45;
    opt.pair_link_decay = 0.03;
    opt.noise_density = 4e-6;
    return PlantedHierarchy(opt, seed);
  }
  if (name == "U2-syn") {
    // UK-02 crawl.
    PlantedHierarchyOptions opt;
    opt.branching = 6;
    opt.depth = 5;
    opt.leaf_size = static_cast<uint32_t>(Sz(8, f));
    opt.leaf_density = 0.9;
    opt.pair_link_prob = 0.35;
    opt.pair_link_decay = 0.035;
    opt.noise_density = 2e-6;
    return PlantedHierarchy(opt, seed);
  }
  if (name == "U5-syn") {
    // UK-05 crawl: the largest dataset; also the Fig. 1(b) scalability base.
    PlantedHierarchyOptions opt;
    opt.branching = 7;
    opt.depth = 5;
    opt.leaf_size = static_cast<uint32_t>(Sz(7, f));
    opt.leaf_density = 0.9;
    opt.pair_link_prob = 0.3;
    opt.pair_link_decay = 0.025;
    opt.noise_density = 1e-6;
    return PlantedHierarchy(opt, seed);
  }

  std::fprintf(stderr, "unknown dataset analog: %s\n", name.c_str());
  std::abort();
}

}  // namespace slugger::gen
