#include "gen/generators.hpp"
#include "graph/edge_list.hpp"

namespace slugger::gen {

Graph DuplicationDivergence(NodeId n, uint32_t base_edges, double dup_prob,
                            double keep_prob, uint64_t seed) {
  Rng rng(seed);
  graph::EdgeListBuilder builder(n);
  std::vector<std::vector<NodeId>> adj(n);
  // Endpoint pool for preferential attachment of non-duplicating nodes.
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<size_t>(n) * base_edges);

  auto add_edge = [&](NodeId u, NodeId v) {
    builder.Add(u, v);
    endpoints.push_back(u);
    endpoints.push_back(v);
    adj[u].push_back(v);
    adj[v].push_back(u);
  };

  uint32_t seed_nodes = base_edges + 1;
  if (seed_nodes > n) seed_nodes = n;
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_nodes; ++v) add_edge(u, v);
  }

  for (NodeId u = seed_nodes; u < n; ++u) {
    if (rng.Chance(dup_prob)) {
      // Duplicate: copy a uniform template's neighborhood (with decay) and
      // link to the template itself.
      NodeId tmpl = static_cast<NodeId>(rng.Below(u));
      // Copy from a snapshot: adj[tmpl] may grow while we iterate.
      size_t count = adj[tmpl].size();
      for (size_t i = 0; i < count; ++i) {
        NodeId w = adj[tmpl][i];
        if (w != u && rng.Chance(keep_prob)) add_edge(u, w);
      }
      add_edge(u, tmpl);
    } else {
      for (uint32_t j = 0; j < base_edges; ++j) {
        NodeId target = endpoints[rng.Below(endpoints.size())];
        if (target != u) add_edge(u, target);
      }
    }
  }
  return Graph::FromCanonicalEdges(n, builder.Finalize());
}

}  // namespace slugger::gen
