#include "gen/generators.hpp"
#include "graph/edge_list.hpp"

namespace slugger::gen {

Graph Affiliation(NodeId n, uint32_t num_groups, uint32_t min_group,
                  uint32_t max_group, uint64_t seed) {
  Rng rng(seed);
  graph::EdgeListBuilder builder(n);
  builder.EnsureNodes(n);
  // Preferential membership: nodes that already belong to groups are more
  // likely to join new ones (prolific authors / busy actors).
  std::vector<NodeId> member_pool;
  member_pool.reserve(static_cast<size_t>(num_groups) * max_group);

  std::vector<NodeId> group;
  for (uint32_t gidx = 0; gidx < num_groups; ++gidx) {
    uint32_t size = min_group +
                    static_cast<uint32_t>(rng.Below(max_group - min_group + 1));
    group.clear();
    for (uint32_t i = 0; i < size; ++i) {
      NodeId member;
      if (!member_pool.empty() && rng.Chance(0.5)) {
        member = member_pool[rng.Below(member_pool.size())];
      } else {
        member = static_cast<NodeId>(rng.Below(n));
      }
      group.push_back(member);
    }
    // Project the group onto a clique.
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        if (group[i] != group[j]) builder.Add(group[i], group[j]);
      }
      member_pool.push_back(group[i]);
    }
  }
  return Graph::FromCanonicalEdges(n, builder.Finalize());
}

}  // namespace slugger::gen
