#include <unordered_set>

#include "gen/generators.hpp"
#include "graph/edge_list.hpp"
#include "util/hashing.hpp"

namespace slugger::gen {

Graph RMat(uint32_t scale, uint64_t m, double a, double b, double c,
           uint64_t seed) {
  Rng rng(seed);
  NodeId n = static_cast<NodeId>(1u) << scale;
  uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  if (m > max_edges) m = max_edges;

  graph::EdgeListBuilder builder(n);
  builder.Reserve(m);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  uint64_t attempts = 0;
  const uint64_t max_attempts = m * 64 + 1024;
  while (seen.size() < m && attempts++ < max_attempts) {
    NodeId u = 0, v = 0;
    for (uint32_t level = 0; level < scale; ++level) {
      double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // upper-left: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    if (seen.insert(PairKey(u, v)).second) builder.Add(u, v);
  }
  return Graph::FromCanonicalEdges(n, builder.Finalize());
}

}  // namespace slugger::gen
