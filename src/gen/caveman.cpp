#include "gen/generators.hpp"
#include "graph/edge_list.hpp"

namespace slugger::gen {

Graph Caveman(uint32_t num_caves, uint32_t cave_size, double rewire_prob,
              uint64_t seed) {
  Rng rng(seed);
  NodeId n = num_caves * cave_size;
  graph::EdgeListBuilder builder(n);
  for (uint32_t cave = 0; cave < num_caves; ++cave) {
    NodeId base = cave * cave_size;
    for (uint32_t i = 0; i < cave_size; ++i) {
      for (uint32_t j = i + 1; j < cave_size; ++j) {
        NodeId u = base + i;
        NodeId v = base + j;
        if (rng.Chance(rewire_prob)) {
          // Redirect one endpoint to a uniform outside node, linking caves.
          v = static_cast<NodeId>(rng.Below(n));
          if (v == u) continue;
        }
        builder.Add(u, v);
      }
    }
  }
  return Graph::FromCanonicalEdges(n, builder.Finalize());
}

}  // namespace slugger::gen
