#include <cmath>

#include "gen/generators.hpp"
#include "graph/edge_list.hpp"

namespace slugger::gen {
namespace {

/// Emits each of the `total` linearized pairs independently with probability
/// p, using geometric skips (O(#emitted) expected time).
template <typename Emit>
void SkipSample(uint64_t total, double p, Rng& rng, Emit&& emit) {
  if (p <= 0.0 || total == 0) return;
  if (p >= 1.0) {
    for (uint64_t i = 0; i < total; ++i) emit(i);
    return;
  }
  const double log1mp = std::log1p(-p);
  double cursor = -1.0;
  while (true) {
    double u = rng.NextDouble();
    if (u <= 0.0) u = 1e-300;
    cursor += 1.0 + std::floor(std::log(u) / log1mp);
    if (cursor >= static_cast<double>(total)) break;
    emit(static_cast<uint64_t>(cursor));
  }
}

/// Samples edges inside the half-open id range [lo, hi) with probability p.
void SampleWithin(NodeId lo, NodeId hi, double p, Rng& rng,
                  graph::EdgeListBuilder* builder) {
  uint64_t span = hi - lo;
  if (span < 2) return;
  uint64_t total = span * (span - 1) / 2;
  SkipSample(total, p, rng, [&](uint64_t idx) {
    // Unrank the idx-th pair (i > j) of the range.
    uint64_t i = static_cast<uint64_t>(
        (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(idx))) / 2.0);
    while (i * (i - 1) / 2 > idx) --i;
    while ((i + 1) * i / 2 <= idx) ++i;
    uint64_t j = idx - i * (i - 1) / 2;
    builder->Add(lo + static_cast<NodeId>(i), lo + static_cast<NodeId>(j));
  });
}

/// Adds the complete bipartite link between two id ranges.
void FullBipartite(NodeId alo, NodeId ahi, NodeId blo, NodeId bhi,
                   graph::EdgeListBuilder* builder) {
  for (NodeId u = alo; u < ahi; ++u) {
    for (NodeId v = blo; v < bhi; ++v) builder->Add(u, v);
  }
}

}  // namespace

Graph PlantedHierarchy(const PlantedHierarchyOptions& opt, uint64_t seed) {
  Rng rng(seed);
  uint64_t num_leaf_blocks = 1;
  for (uint32_t d = 0; d < opt.depth; ++d) num_leaf_blocks *= opt.branching;
  NodeId n = static_cast<NodeId>(num_leaf_blocks * opt.leaf_size);
  graph::EdgeListBuilder builder(n);
  builder.EnsureNodes(n);

  // Probability that a sibling-subtree pair at `level` (children of a
  // level-(level-1) block; deepest = opt.depth) is fully linked.
  auto link_prob = [&](uint32_t level) {
    return opt.pair_link_prob *
           std::pow(opt.pair_link_decay,
                    static_cast<double>(opt.depth - level));
  };

  struct Frame {
    NodeId lo;
    NodeId hi;
    uint32_t level;  // 0 = root block (all nodes)
  };
  std::vector<Frame> stack{{0, n, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.level == opt.depth) {
      SampleWithin(f.lo, f.hi, opt.leaf_density, rng, &builder);
      continue;
    }
    NodeId span = f.hi - f.lo;
    NodeId child_span = span / opt.branching;
    double p = link_prob(f.level + 1);
    for (uint32_t i = 0; i < opt.branching; ++i) {
      NodeId ilo = f.lo + i * child_span;
      NodeId ihi = (i + 1 == opt.branching) ? f.hi : ilo + child_span;
      stack.push_back({ilo, ihi, f.level + 1});
      for (uint32_t j = i + 1; j < opt.branching; ++j) {
        if (!rng.Chance(p)) continue;
        NodeId jlo = f.lo + j * child_span;
        NodeId jhi = (j + 1 == opt.branching) ? f.hi : jlo + child_span;
        FullBipartite(ilo, ihi, jlo, jhi, &builder);
      }
    }
  }

  if (opt.noise_density > 0.0) {
    uint64_t total = static_cast<uint64_t>(n) * (n - 1) / 2;
    SkipSample(total, opt.noise_density, rng, [&](uint64_t idx) {
      uint64_t i = static_cast<uint64_t>(
          (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(idx))) / 2.0);
      while (i * (i - 1) / 2 > idx) --i;
      while ((i + 1) * i / 2 <= idx) ++i;
      uint64_t j = idx - i * (i - 1) / 2;
      builder.Add(static_cast<NodeId>(i), static_cast<NodeId>(j));
    });
  }
  return Graph::FromCanonicalEdges(n, builder.Finalize());
}

}  // namespace slugger::gen
