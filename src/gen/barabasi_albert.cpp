#include "gen/generators.hpp"
#include "graph/edge_list.hpp"

namespace slugger::gen {

Graph BarabasiAlbert(NodeId n, uint32_t edges_per_node, double closure_prob,
                     uint64_t seed) {
  Rng rng(seed);
  graph::EdgeListBuilder builder(n);
  // `endpoints` holds one entry per edge endpoint; sampling uniformly from
  // it realizes degree-proportional (preferential) attachment.
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<size_t>(n) * edges_per_node * 2);
  // Growing adjacency, used only to close triangles.
  std::vector<std::vector<NodeId>> adj(n);

  auto add_edge = [&](NodeId u, NodeId v) {
    builder.Add(u, v);
    endpoints.push_back(u);
    endpoints.push_back(v);
    adj[u].push_back(v);
    adj[v].push_back(u);
  };

  uint32_t seed_nodes = edges_per_node + 1;
  if (seed_nodes > n) seed_nodes = n;
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_nodes; ++v) add_edge(u, v);
  }

  std::vector<NodeId> picks;
  for (NodeId u = seed_nodes; u < n; ++u) {
    picks.clear();
    for (uint32_t j = 0; j < edges_per_node; ++j) {
      NodeId target;
      if (!picks.empty() && rng.Chance(closure_prob)) {
        // Triadic closure: jump to a random neighbor of a previously chosen
        // neighbor, creating a triangle u - via - target.
        NodeId via = picks[rng.Below(picks.size())];
        target = adj[via][rng.Below(adj[via].size())];
      } else {
        target = endpoints[rng.Below(endpoints.size())];
      }
      if (target == u) continue;
      add_edge(u, target);
      picks.push_back(target);
    }
  }
  return Graph::FromCanonicalEdges(n, builder.Finalize());
}

}  // namespace slugger::gen
