#include "gen/generators.hpp"
#include "graph/edge_list.hpp"

namespace slugger::gen {

Graph Fig3Graph(uint32_t n_groups, uint32_t k_per_group) {
  // n groups of k subnodes in a cycle. Every pair of subnodes is adjacent
  // UNLESS their groups are cyclically adjacent. Each subnode therefore
  // misses exactly 2k neighbors and the complement has exactly n*k^2 pairs,
  // matching the Theorem-1 construction (paper §VII-A).
  NodeId n = n_groups * k_per_group;
  graph::EdgeListBuilder builder(n);
  builder.Reserve(static_cast<size_t>(n) * n / 2);
  for (NodeId u = 0; u < n; ++u) {
    uint32_t gu = u / k_per_group;
    for (NodeId v = u + 1; v < n; ++v) {
      uint32_t gv = v / k_per_group;
      uint32_t d = gv - gu;  // gu <= gv
      bool adjacent_groups = (d == 1) || (d == n_groups - 1);
      if (!adjacent_groups) builder.Add(u, v);
    }
  }
  return Graph::FromCanonicalEdges(n, builder.Finalize());
}

}  // namespace slugger::gen
