#include "gen/generators.hpp"
#include "graph/edge_list.hpp"

namespace slugger::gen {

Graph InducedSubsample(const Graph& g, NodeId num_nodes, uint64_t seed) {
  if (num_nodes >= g.num_nodes()) return g;
  Rng rng(seed);
  std::vector<uint64_t> chosen =
      SampleWithoutReplacement(g.num_nodes(), num_nodes, rng);
  std::vector<NodeId> relabel(g.num_nodes(), kInvalidId);
  NodeId next = 0;
  for (uint64_t node : chosen) relabel[node] = next++;

  graph::EdgeListBuilder builder(num_nodes);
  builder.EnsureNodes(num_nodes);
  for (const Edge& e : g.Edges()) {
    NodeId u = relabel[e.first];
    NodeId v = relabel[e.second];
    if (u != kInvalidId && v != kInvalidId) builder.Add(u, v);
  }
  return Graph::FromCanonicalEdges(num_nodes, builder.Finalize());
}

}  // namespace slugger::gen
