// Synthetic graph generators.
//
// These stand in for the paper's 16 real-world datasets (see DESIGN.md §3):
// the offline environment cannot download SNAP / LAW corpora, so each
// experiment draws from a generator matched to the structural property that
// drives the corresponding dataset's compressibility.
#ifndef SLUGGER_GEN_GENERATORS_HPP_
#define SLUGGER_GEN_GENERATORS_HPP_

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace slugger::gen {

using graph::Graph;

/// Erdős–Rényi G(n, m): exactly m distinct edges chosen uniformly.
Graph ErdosRenyi(NodeId n, uint64_t m, uint64_t seed);

/// Barabási–Albert preferential attachment with optional triadic closure:
/// each new node attaches `edges_per_node` times; with probability
/// `closure_prob` an attachment instead closes a triangle through a
/// previously chosen neighbor (models social clustering).
Graph BarabasiAlbert(NodeId n, uint32_t edges_per_node, double closure_prob,
                     uint64_t seed);

/// R-MAT recursive-matrix generator; n = 2^scale nodes, ~m distinct edges.
/// (a, b, c) are the upper-left / upper-right / lower-left quadrant masses;
/// the remainder goes to the lower-right quadrant.
Graph RMat(uint32_t scale, uint64_t m, double a, double b, double c,
           uint64_t seed);

/// Watts–Strogatz small world: ring lattice of even degree k, each edge
/// rewired with probability beta.
Graph WattsStrogatz(NodeId n, uint32_t k, double beta, uint64_t seed);

/// Connected caveman-style graph: `num_caves` cliques of size `cave_size`;
/// each within-cave edge is rewired to a uniform random endpoint with
/// probability `rewire_prob` (models overlapping social circles).
Graph Caveman(uint32_t num_caves, uint32_t cave_size, double rewire_prob,
              uint64_t seed);

/// Parameters of the planted hierarchical block generator.
struct PlantedHierarchyOptions {
  uint32_t branching = 4;     ///< children per internal block
  uint32_t depth = 3;         ///< levels of nesting above the leaf blocks
  uint32_t leaf_size = 16;    ///< subnodes per deepest block
  double leaf_density = 0.9;  ///< edge probability within a leaf block

  /// Probability that a pair of sibling subtrees at the DEEPEST level is
  /// fully bipartitely connected. Cross links are block-structured (whole
  /// bipartite cliques, present or absent) — the regime of web/hyperlink
  /// graphs where groups of pages share identical out-neighborhoods.
  double pair_link_prob = 0.5;

  /// pair_link_prob is multiplied by this per level walking up, so
  /// coarse-grained full links are rarer but each covers many subnodes.
  double pair_link_decay = 0.5;

  /// Density of incompressible uniform noise edges (fraction of all node
  /// pairs), modeling stray links.
  double noise_density = 0.0;
};

/// Planted hierarchical blocks: the "hierarchies are pervasive" workload
/// (paper §I). Groups with similar connectivity contain subgroups with
/// higher similarity, recursively — the regime where the hierarchical model
/// out-compresses flat summarization.
Graph PlantedHierarchy(const PlantedHierarchyOptions& opt, uint64_t seed);

/// Affiliation (bipartite projection) graph: `num_groups` groups with sizes
/// in [min_group, max_group], members drawn with preferential repetition;
/// each group projects to a clique. Models collaboration networks
/// (DBLP / Hollywood: papers and movies become cliques).
Graph Affiliation(NodeId n, uint32_t num_groups, uint32_t min_group,
                  uint32_t max_group, uint64_t seed);

/// Duplication-divergence growth: each new node either copies a random
/// existing node's neighborhood (probability dup_prob), keeping each
/// copied edge with probability keep_prob and always linking to the
/// template, or attaches preferentially `base_edges` times. Duplication
/// creates the shared-neighborhood redundancy real internet / social /
/// PPI graphs exhibit — the structure summarization exploits.
Graph DuplicationDivergence(NodeId n, uint32_t base_edges, double dup_prob,
                            double keep_prob, uint64_t seed);

/// The Theorem-1 / Fig-3 construction: n groups of k subnodes arranged in a
/// cycle; all subnode pairs are connected except pairs in cyclically
/// adjacent groups. Hierarchical encoding costs Θ(nk); any flat encoding
/// costs Ω(n^1.5) when k = Θ(sqrt(n)) (paper Theorem 1).
Graph Fig3Graph(uint32_t n_groups, uint32_t k_per_group);

/// Induced subgraph on `num_nodes` uniformly sampled nodes, relabeled
/// densely. Used for the Fig. 1(b) scalability sweep.
Graph InducedSubsample(const Graph& g, NodeId num_nodes, uint64_t seed);

}  // namespace slugger::gen

#endif  // SLUGGER_GEN_GENERATORS_HPP_
