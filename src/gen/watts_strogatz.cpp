#include <unordered_set>

#include "gen/generators.hpp"
#include "graph/edge_list.hpp"
#include "util/hashing.hpp"

namespace slugger::gen {

Graph WattsStrogatz(NodeId n, uint32_t k, double beta, uint64_t seed) {
  Rng rng(seed);
  if (k % 2 == 1) ++k;  // ring lattice requires even degree
  if (k >= n) k = n - 1 - ((n - 1) % 2);

  std::unordered_set<uint64_t> present;
  present.reserve(static_cast<size_t>(n) * k);
  graph::EdgeListBuilder builder(n);

  for (NodeId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= k / 2; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      NodeId target = v;
      if (rng.Chance(beta)) {
        // Rewire: pick a uniform non-self endpoint, avoiding duplicates.
        for (int tries = 0; tries < 16; ++tries) {
          NodeId w = static_cast<NodeId>(rng.Below(n));
          if (w == u) continue;
          if (present.count(PairKey(u, w))) continue;
          target = w;
          break;
        }
      }
      if (present.insert(PairKey(u, target)).second) builder.Add(u, target);
    }
  }
  return Graph::FromCanonicalEdges(n, builder.Finalize());
}

}  // namespace slugger::gen
