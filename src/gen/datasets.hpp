// The 16 named synthetic dataset analogs used by the benchmark harness.
//
// Each analog substitutes for one real-world graph of the paper's Table II
// (see DESIGN.md §3 for the mapping and rationale). Sizes are laptop-scale;
// the Scale knob shrinks or grows every dataset consistently.
#ifndef SLUGGER_GEN_DATASETS_HPP_
#define SLUGGER_GEN_DATASETS_HPP_

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace slugger::gen {

/// Global size knob for the benchmark suite. Also settable through the
/// SLUGGER_BENCH_SCALE environment variable ("tiny" | "small" | "full").
enum class Scale { kTiny, kSmall, kFull };

/// Reads SLUGGER_BENCH_SCALE from the environment (default kSmall).
Scale ScaleFromEnv();

/// Short name ("tiny"/"small"/"full") for report headers.
std::string ScaleName(Scale scale);

/// Descriptor of one dataset analog.
struct DatasetSpec {
  std::string name;        ///< e.g. "PR-syn"
  std::string paper_name;  ///< e.g. "Protein (PR)"
  std::string domain;      ///< e.g. "Protein Interaction"
  /// Relative output size the paper reports for SLUGGER at T = 20 (Table
  /// III), recorded for paper-vs-measured comparisons in EXPERIMENTS.md.
  double paper_relative_size;
};

/// All 16 analogs in the paper's Table II order (Caida ... UK-05).
const std::vector<DatasetSpec>& AllDatasets();

/// Generates the analog by name, deterministically for a given seed.
/// Aborts on unknown names (programming error).
graph::Graph GenerateDataset(const std::string& name, Scale scale,
                             uint64_t seed);

}  // namespace slugger::gen

#endif  // SLUGGER_GEN_DATASETS_HPP_
