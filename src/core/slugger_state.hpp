// Mutable algorithm state for SLUGGER's merge phase.
//
// Wraps the summary under construction with the incremental aggregates the
// greedy search needs (paper §III-A cost functions):
//   h(R)        — Cost_H: h-edges in the tree rooted at R
//   inc(R)      — Cost_P: p/n-edges incident to any supernode of R's tree
//   within(R)   — edges with both endpoints inside R's tree
//   between(R1,R2) — edges between the two trees (root adjacency)
// plus root lookup (union-find) and per-root height for the Table-V bound.
#ifndef SLUGGER_CORE_SLUGGER_STATE_HPP_
#define SLUGGER_CORE_SLUGGER_STATE_HPP_

#include <vector>

#include "graph/graph.hpp"
#include "summary/summary_graph.hpp"
#include "util/dsu.hpp"
#include "util/flat_map.hpp"

namespace slugger::core {

using summary::SummaryGraph;

/// Algorithm state: summary + aggregates, kept consistent through
/// AddEdge / RemoveEdge / MergeRoots.
class SluggerState {
 public:
  /// Initializes the trivial summary: singleton supernodes, P+ = E.
  explicit SluggerState(const graph::Graph& g);

  const graph::Graph& input() const { return *input_; }
  SummaryGraph& summary() { return summary_; }
  const SummaryGraph& summary() const { return summary_; }

  /// Root supernode containing s (near-O(1) amortized). Mutates the
  /// union-find (path compression) — never call concurrently.
  SupernodeId FindRoot(SupernodeId s) {
    return root_of_[dsu_.Find(s)];
  }

  /// Root supernode containing s without path compression. Safe to call
  /// from concurrent evaluation threads while no merge is committing.
  SupernodeId FindRootConst(SupernodeId s) const {
    return root_of_[dsu_.FindConst(s)];
  }

  /// Current roots, in unspecified order.
  const std::vector<SupernodeId>& roots() const { return roots_; }

  /// Upper bound on supernode ids this state can ever allocate (leaves plus
  /// at most n - 1 merges). Constant for the life of the state, so worker
  /// scratch sized to it never needs the (concurrently growing) capacity.
  SupernodeId max_supernodes() const { return max_supernodes_; }

  /// Pre-allocates every growable structure to max_supernodes() so the
  /// merge phase never reallocates. Mandatory before the sharded async
  /// engine runs: with stable storage, concurrent readers of existing
  /// entries stay safe while the (growth-serialized) committer appends.
  void ReserveForMergePhase();

  uint64_t HCost(SupernodeId root) const { return h_[root]; }
  uint64_t IncCost(SupernodeId root) const { return inc_[root]; }
  uint32_t Height(SupernodeId root) const { return height_[root]; }

  /// Number of superedges between the trees of two distinct roots.
  uint32_t Between(SupernodeId root_a, SupernodeId root_b) const {
    const uint32_t* v = root_adj_[root_a].Find(root_b);
    return v != nullptr ? *v : 0;
  }

  /// Adjacent-root map of a root: neighbor root -> inter-tree edge count.
  const FlatCountMap& RootAdjacency(SupernodeId root) const {
    return root_adj_[root];
  }

  /// Cost_A(G) = Cost_H + Cost_P for one root (paper Eq. 6).
  uint64_t RootCost(SupernodeId root) const { return h_[root] + inc_[root]; }

  /// Adds superedge {x, y} with aggregate maintenance.
  void AddEdge(SupernodeId x, SupernodeId y, EdgeSign sign);

  /// Removes superedge {x, y}; returns its sign (0 if absent).
  EdgeSign RemoveEdge(SupernodeId x, SupernodeId y);

  /// AddEdge / RemoveEdge for concurrent committers: root lookups use the
  /// compression-free FindRootConst, so the union-find is never written.
  /// The caller must hold the shard locks of both endpoint roots (they are
  /// the only aggregates written) and ReserveForMergePhase() must have run.
  void AddEdgeConcurrent(SupernodeId x, SupernodeId y, EdgeSign sign);
  EdgeSign RemoveEdgeConcurrent(SupernodeId x, SupernodeId y);

  /// Creates M = a ∪ b over roots a and b and folds aggregates; returns M.
  /// Does not touch p/n-edges (the merge planner applies those deltas).
  SupernodeId MergeRoots(SupernodeId a, SupernodeId b);

  /// The two phases of MergeRoots, split for the sharded async engine.
  /// MergeRootsStructural allocates M, extends the per-supernode arrays,
  /// unions the union-find and swaps the root list — everything a
  /// concurrent committer must serialize on (call under the growth lock).
  /// FoldRootAdjacency rewires the neighbor adjacency maps onto M; it only
  /// touches root_adj_ of {a, b, m} and their neighbor roots, all covered
  /// by the committer's shard locks, so folds of disjoint neighborhoods
  /// run concurrently. MergeRoots == Structural + Fold.
  SupernodeId MergeRootsStructural(SupernodeId a, SupernodeId b);
  void FoldRootAdjacency(SupernodeId a, SupernodeId b, SupernodeId m);

  /// True iff x is the root or a direct child of the root of its tree
  /// (i.e. within the re-encodable top band S_root).
  bool InTopBand(SupernodeId x, SupernodeId root) const {
    return x == root || summary_.forest().Parent(x) == root;
  }

  /// Sum of RootCost over all roots minus double-counted inter-tree edges:
  /// equals Cost(G) (used by tests to validate the aggregates).
  uint64_t TotalCostFromAggregates() const;

  /// Exhaustive consistency check of aggregates (tests only; slow).
  bool ValidateAggregates() const;

 private:
  void RootAdjAdd(SupernodeId ra, SupernodeId rb, int delta);
  void ApplyEdgeAdd(SupernodeId rx, SupernodeId ry);
  EdgeSign ApplyEdgeRemove(SupernodeId x, SupernodeId y, SupernodeId rx,
                           SupernodeId ry);

  const graph::Graph* input_;
  SupernodeId max_supernodes_ = 0;
  SummaryGraph summary_;
  Dsu dsu_;                          // over supernode ids, tracks trees
  std::vector<SupernodeId> root_of_; // dsu representative -> root id
  std::vector<SupernodeId> roots_;
  std::vector<uint32_t> root_pos_;   // root id -> index in roots_
  std::vector<uint64_t> h_;
  std::vector<uint64_t> inc_;
  std::vector<uint64_t> within_;
  std::vector<uint32_t> height_;
  std::vector<FlatCountMap> root_adj_;
};

}  // namespace slugger::core

#endif  // SLUGGER_CORE_SLUGGER_STATE_HPP_
