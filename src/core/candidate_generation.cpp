#include "core/candidate_generation.hpp"

#include <algorithm>
#include <utility>

#include "util/hashing.hpp"

namespace slugger::core {

namespace {

/// Hash key of the level-0 pass for iteration t (kept identical to the
/// historical per-(iteration, level) key so level-0 groupings match the
/// pre-cache implementation exactly).
uint64_t IterationKey(uint64_t seed, uint32_t iteration, uint32_t level) {
  return Mix64(seed ^ (iteration * 0xA5A5A5A5ull) ^ (level * 0x5151FF11ull));
}

constexpr uint64_t kShingleGrain = 2048;

/// Re-division groups below this size are re-keyed inline; larger ones go
/// to the pool (the output is identical either way — each root's shingle
/// lands at its index). Oversized groups exceed max_group_size (500 by
/// default), so in practice every re-division qualifies.
constexpr size_t kParallelRedivideMin = 256;
constexpr uint64_t kRedivideGrain = 16;

}  // namespace

uint64_t CandidateGenerator::LeafShingleAtLevel(NodeId u,
                                                uint64_t level_salt) const {
  uint64_t best = Mix64(node_base_[u] ^ level_salt);
  for (NodeId v : graph_->Neighbors(u)) {
    best = std::min(best, Mix64(node_base_[v] ^ level_salt));
  }
  return best;
}

void CandidateGenerator::BuildIterationCache(const SluggerState& state,
                                             uint32_t iteration,
                                             ThreadPool* pool) {
  const graph::Graph& g = *graph_;
  const summary::HierarchyForest& forest = state.summary().forest();
  const std::vector<SupernodeId>& roots = state.roots();
  const NodeId n = g.num_nodes();

  node_base_.resize(n);
  node_shingle_.resize(n);

  // Pass 1: one keyed hash per node for this iteration.
  KeyedHash hash(IterationKey(seed_, iteration, 0));
  auto base_range = [&](uint64_t begin, uint64_t end, unsigned) {
    for (uint64_t u = begin; u < end; ++u) {
      node_base_[u] = hash(static_cast<NodeId>(u));
    }
  };
  // Pass 2: closed-neighborhood min over the cached hashes (CSR scan).
  auto shingle_range = [&](uint64_t begin, uint64_t end, unsigned) {
    for (uint64_t u = begin; u < end; ++u) {
      uint64_t best = node_base_[u];
      for (NodeId v : g.Neighbors(static_cast<NodeId>(u))) {
        best = std::min(best, node_base_[v]);
      }
      node_shingle_[u] = best;
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->ParallelFor(n, kShingleGrain, base_range);
    pool->ParallelFor(n, kShingleGrain, shingle_range);
  } else {
    base_range(0, n, 0);
    shingle_range(0, n, 0);
  }

  // Bucket leaves per root once (CSR), replacing per-level tree walks.
  std::vector<SupernodeId> root_map = forest.ComputeRootMap();
  root_slot_.resize(forest.capacity());
  const uint32_t num_roots = static_cast<uint32_t>(roots.size());
  for (uint32_t i = 0; i < num_roots; ++i) root_slot_[roots[i]] = i;

  leaf_offsets_.assign(num_roots + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    ++leaf_offsets_[root_slot_[root_map[u]] + 1];
  }
  for (uint32_t i = 0; i < num_roots; ++i) {
    leaf_offsets_[i + 1] += leaf_offsets_[i];
  }
  leaf_ids_.resize(n);
  {
    std::vector<uint32_t> cursor(leaf_offsets_.begin(),
                                 leaf_offsets_.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      leaf_ids_[cursor[root_slot_[root_map[u]]]++] = u;
    }
  }

  // Level-0 min-shingle per root: fold the node shingles of its leaves.
  root_shingle_.assign(num_roots, ~0ull);
  for (uint32_t i = 0; i < num_roots; ++i) {
    uint64_t best = ~0ull;
    for (uint32_t k = leaf_offsets_[i]; k < leaf_offsets_[i + 1]; ++k) {
      best = std::min(best, node_shingle_[leaf_ids_[k]]);
    }
    root_shingle_[i] = best;
  }
}

std::vector<std::vector<SupernodeId>> CandidateGenerator::Generate(
    SluggerState& state, uint32_t iteration, ThreadPool* pool) {
  Rng rng(Mix64(seed_ ^ (0x9E3779B9ull * iteration)));
  const std::vector<SupernodeId>& roots = state.roots();

  struct Pending {
    std::vector<SupernodeId> roots;
    uint32_t level;
  };

  std::vector<Pending> work;
  std::vector<std::vector<SupernodeId>> out;
  std::vector<std::pair<uint64_t, SupernodeId>> keyed;

  // Splits one keyed batch into emitted groups and oversized re-divisions.
  auto split_runs = [&](uint32_t level) {
    std::sort(keyed.begin(), keyed.end());
    size_t i = 0;
    while (i < keyed.size()) {
      size_t j = i + 1;
      while (j < keyed.size() && keyed[j].first == keyed[i].first) ++j;
      size_t len = j - i;
      if (len >= 2) {
        std::vector<SupernodeId> sub;
        sub.reserve(len);
        for (size_t k = i; k < j; ++k) sub.push_back(keyed[k].second);
        if (len <= max_group_size_) {
          out.push_back(std::move(sub));
        } else {
          work.push_back({std::move(sub), level + 1});
        }
      }
      i = j;
    }
  };

  if (shingle_levels_ == 0) {
    // Random division only (no shingle pass at all): the level check in
    // the work loop sends the whole root set straight to random splits.
    work.push_back({roots, 0});
  } else {
    // Level 0 over all roots, straight from the per-iteration cache.
    BuildIterationCache(state, iteration, pool);
    keyed.reserve(roots.size());
    for (uint32_t i = 0; i < static_cast<uint32_t>(roots.size()); ++i) {
      keyed.emplace_back(root_shingle_[i], roots[i]);
    }
    split_runs(0);
  }

  while (!work.empty()) {
    Pending group = std::move(work.back());
    work.pop_back();
    if (group.level >= shingle_levels_) {
      // Random division down to the size cap.
      rng.Shuffle(group.roots);
      for (size_t start = 0; start < group.roots.size();
           start += max_group_size_) {
        size_t end = std::min(start + max_group_size_, group.roots.size());
        if (end - start >= 2) {
          out.emplace_back(group.roots.begin() + static_cast<int64_t>(start),
                           group.roots.begin() + static_cast<int64_t>(end));
        }
      }
      continue;
    }

    // Re-divide with a fresh level hash, derived by re-mixing the cached
    // per-node hashes — no keyed-hash pass and no tree walk. Each root's
    // shingle is independent, so deep levels fan out on the pool too.
    uint64_t level_salt = IterationKey(seed_, iteration, group.level);
    keyed.assign(group.roots.size(), {0, 0});
    auto key_range = [&](uint64_t begin, uint64_t end, unsigned) {
      for (uint64_t i = begin; i < end; ++i) {
        SupernodeId r = group.roots[i];
        uint64_t shingle = ~0ull;
        uint32_t slot = root_slot_[r];
        for (uint32_t k = leaf_offsets_[slot]; k < leaf_offsets_[slot + 1];
             ++k) {
          shingle =
              std::min(shingle, LeafShingleAtLevel(leaf_ids_[k], level_salt));
        }
        keyed[i] = {shingle, r};
      }
    };
    if (pool != nullptr && pool->size() > 1 &&
        group.roots.size() >= kParallelRedivideMin) {
      pool->ParallelFor(group.roots.size(), kRedivideGrain, key_range);
    } else {
      key_range(0, group.roots.size(), 0);
    }
    split_runs(group.level);
  }
  return out;
}

}  // namespace slugger::core
