#include "core/candidate_generation.hpp"

#include <algorithm>

#include "util/hashing.hpp"

namespace slugger::core {

uint64_t CandidateGenerator::NodeShingle(NodeId u, uint64_t hash_key) const {
  KeyedHash h(hash_key);
  uint64_t best = h(u);
  for (NodeId v : graph_->Neighbors(u)) {
    best = std::min(best, h(v));
  }
  return best;
}

std::vector<std::vector<SupernodeId>> CandidateGenerator::Generate(
    SluggerState& state, uint32_t iteration) {
  const summary::HierarchyForest& forest = state.summary().forest();
  Rng rng(Mix64(seed_ ^ (0x9E3779B9ull * iteration)));

  struct Pending {
    std::vector<SupernodeId> roots;
    uint32_t level;
  };

  std::vector<Pending> work;
  work.push_back({state.roots(), 0});
  std::vector<std::vector<SupernodeId>> out;

  std::vector<std::pair<uint64_t, SupernodeId>> keyed;
  while (!work.empty()) {
    Pending group = std::move(work.back());
    work.pop_back();
    if (group.roots.size() <= 1) continue;
    if (group.roots.size() <= max_group_size_ && group.level > 0) {
      out.push_back(std::move(group.roots));
      continue;
    }
    if (group.level >= shingle_levels_) {
      // Random division down to the size cap.
      rng.Shuffle(group.roots);
      for (size_t start = 0; start < group.roots.size();
           start += max_group_size_) {
        size_t end = std::min(start + max_group_size_, group.roots.size());
        if (end - start >= 2) {
          out.emplace_back(group.roots.begin() + static_cast<int64_t>(start),
                           group.roots.begin() + static_cast<int64_t>(end));
        }
      }
      continue;
    }

    // Shingle-divide this group with a fresh hash for (iteration, level).
    uint64_t hash_key =
        Mix64(seed_ ^ (iteration * 0xA5A5A5A5ull) ^ (group.level * 0x5151FF11ull));
    keyed.clear();
    keyed.reserve(group.roots.size());
    for (SupernodeId r : group.roots) {
      uint64_t shingle = ~0ull;
      forest.ForEachLeaf(r, [&](NodeId u) {
        shingle = std::min(shingle, NodeShingle(u, hash_key));
      });
      keyed.emplace_back(shingle, r);
    }
    std::sort(keyed.begin(), keyed.end());
    size_t i = 0;
    while (i < keyed.size()) {
      size_t j = i + 1;
      while (j < keyed.size() && keyed[j].first == keyed[i].first) ++j;
      size_t len = j - i;
      if (len >= 2) {
        std::vector<SupernodeId> sub;
        sub.reserve(len);
        for (size_t k = i; k < j; ++k) sub.push_back(keyed[k].second);
        if (len <= max_group_size_) {
          out.push_back(std::move(sub));
        } else {
          work.push_back({std::move(sub), group.level + 1});
        }
      }
      i = j;
    }
  }
  return out;
}

}  // namespace slugger::core
