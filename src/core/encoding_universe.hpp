// Local re-encoding universes for the merging step (paper §III-B3, Fig. 4).
//
// When SLUGGER (temporarily) merges two root nodes A and B into M = A ∪ B,
// it re-encodes p/n-edges among a bounded *family* of supernodes:
//
//   Case 1 (within): {M} ∪ S_A ∪ S_B, where S_X = {X} ∪ children(X);
//                    at most 7 supernodes (merges are binary).
//   Case 2 (cross):  the family above versus S_C = {C} ∪ children(C) for an
//                    adjacent root C; at most 7 x 3 supernodes.
//
// The subnode pairs covered by family edges factor into *unit classes*:
// unordered pairs of atomic units, where a side's units are its direct
// children (or the node itself when childless). A family edge covers a
// class iff each unit is contained in one endpoint. Re-encoding must
// preserve the signed coverage count of every nonempty class — that is
// exactly what makes the replacement lossless (DESIGN.md §1).
//
// A Universe materializes this combinatorial structure for one *shape*
// (which sides are internal, which units are singletons): the legal edge
// slots, their class-coverage masks, and the active-class mask. Universes
// are shape-canonical and graph-independent, enabling global memoization.
#ifndef SLUGGER_CORE_ENCODING_UNIVERSE_HPP_
#define SLUGGER_CORE_ENCODING_UNIVERSE_HPP_

#include <cstdint>
#include <vector>

namespace slugger::core {

/// Shape of one merge side: childless, or internal with two children whose
/// singleton-ness (size == 1) decides whether their self-class is empty.
enum class SideShape : uint8_t {
  kLeaf = 0,      ///< childless root (a singleton supernode)
  kInt00 = 1,     ///< internal; neither child singleton
  kInt01 = 2,     ///< internal; only second child singleton
  kInt10 = 3,     ///< internal; only first child singleton
  kInt11 = 4,     ///< internal; both children singleton
};

/// Builds the shape code of an internal side.
SideShape InternalShape(bool first_singleton, bool second_singleton);

inline bool IsInternal(SideShape s) { return s != SideShape::kLeaf; }

/// Fixed local node indices inside a universe.
/// Case 1 uses kM..kB2; Case 2 additionally uses kC..kC2.
enum LocalNode : uint8_t {
  kM = 0,   ///< the merged supernode A ∪ B (does not exist yet during eval)
  kA = 1,
  kA1 = 2,
  kA2 = 3,
  kB = 4,
  kB1 = 5,
  kB2 = 6,
  kC = 7,
  kC1 = 8,
  kC2 = 9,
  kNumLocalNodes = 10,
};

/// A legal superedge slot between two local nodes, with its coverage mask
/// over active classes.
struct Slot {
  uint8_t p;       ///< local node index, p <= q
  uint8_t q;
  uint16_t cover;  ///< bitmask over class indices (restricted to active)
};

/// One canonical re-encoding instance shape. Case 1 has up to 10 classes
/// (unordered pairs of the 4 m-side units); Case 2 has up to 8 (m-side
/// unit x c-side unit).
struct Universe {
  enum class Kind : uint8_t { kCase1 = 0, kCase2 = 1 };

  Kind kind;
  uint8_t num_classes;     ///< 10 (case 1) or 8 (case 2), fixed per kind
  uint16_t active_mask;    ///< classes that exist and contain >= 1 pair
  std::vector<Slot> slots;
  /// slot id for a local node pair, or -1 if the pair is not a legal slot.
  int8_t slot_index[kNumLocalNodes][kNumLocalNodes];
  /// For each class, the slots covering it (indices into `slots`).
  std::vector<std::vector<uint8_t>> covering_slots;
  /// Compact universe id (< 64), used in memo keys.
  uint8_t code;

  int SlotIdFor(uint8_t p, uint8_t q) const {
    return p <= q ? slot_index[p][q] : slot_index[q][p];
  }
};

/// Case-1 class index of the unordered m-side unit pair (i, j), i,j in 0..3.
int Case1ClassIndex(int i, int j);

/// Case-2 class index of (m-side unit mi in 0..3, c-side unit cj in 0..1).
int Case2ClassIndex(int mi, int cj);

/// Returns the canonical Case-1 universe for side shapes (a, b).
/// Units: 0 = A (leaf) or first child of A; 1 = second child of A (absent
/// for leaf shape); 2, 3 likewise for B.
const Universe& GetCase1Universe(SideShape a, SideShape b);

/// Returns the canonical Case-2 universe. Only internality matters (all
/// cross classes are nonempty regardless of singleton-ness).
const Universe& GetCase2Universe(bool a_internal, bool b_internal,
                                 bool c_internal);

}  // namespace slugger::core

#endif  // SLUGGER_CORE_ENCODING_UNIVERSE_HPP_
