// Evaluation and application of root merges (paper §III-B3, Fig. 4).
//
// Evaluate() computes Saving(A, B) (Eq. 8) without mutating state: it
// gathers the re-encodable superedges (within the merge family, and between
// the family and the top band S_C of each adjacent root C), derives the
// class-coverage targets, and looks up memoized optimal replacements.
// Commit() applies the recorded edge rewrites and performs the merge.
//
// The scan protocol accelerates Algorithm 2's partner search: BeginScan(A)
// marks A's adjacent roots once; MayOverlap(Z) then rejects partners with
// no shared adjacency in O(min degree) — such merges always have negative
// saving (Lemma 1), so they can never beat the threshold θ(t) >= 0.
#ifndef SLUGGER_CORE_MERGE_PLANNER_HPP_
#define SLUGGER_CORE_MERGE_PLANNER_HPP_

#include <vector>

#include "core/encoding_universe.hpp"
#include "core/memo_table.hpp"
#include "core/slugger_state.hpp"

namespace slugger::core {

/// Result of evaluating one candidate merge. `adds` may reference the
/// not-yet-existing merged supernode through kMergedSentinel.
struct MergePlan {
  static constexpr SupernodeId kMergedSentinel = kInvalidId;

  SupernodeId a = kInvalidId;
  SupernodeId b = kInvalidId;
  bool valid = false;
  double saving = 0.0;
  uint64_t cost_after = 0;     ///< Cost_{A∪B}(Ĝ), numerator of Eq. 8
  uint64_t cost_before = 0;    ///< denominator of Eq. 8

  struct SignedEdge {
    SupernodeId x;
    SupernodeId y;
    EdgeSign sign;
  };
  std::vector<std::pair<SupernodeId, SupernodeId>> removes;
  std::vector<SignedEdge> adds;

  void Reset(SupernodeId a_in, SupernodeId b_in) {
    a = a_in;
    b = b_in;
    valid = false;
    saving = 0.0;
    cost_after = cost_before = 0;
    removes.clear();
    adds.clear();
  }
};

/// Stateful evaluator bound to the algorithm state and a memo table.
/// Reuses internal scratch across evaluations, so one planner serves one
/// thread. BeginScan / MayOverlap / EvaluateInto never mutate the shared
/// state (root lookups go through SluggerState::FindRootConst), so
/// planners on different threads may evaluate concurrently as long as no
/// Commit is running; Commit requires exclusive access to the state.
/// The default-constructed planner uses the process-wide memo table, which
/// is NOT thread-safe — concurrent planners must each bring their own.
class MergePlanner {
 public:
  explicit MergePlanner(SluggerState* state, MemoTable* memo = nullptr)
      : state_(state), memo_(memo != nullptr ? memo : &MemoTable::Global()) {
    // Scratch is sized once to the state's id bound instead of lazily to
    // the forest's current capacity: a planner re-evaluating inside the
    // async engine's commit room must not read the capacity (another
    // committer may be appending under the growth lock).
    size_t bound = state_->max_supernodes();
    mark_epoch_.assign(bound, 0);
    root_stamp_.assign(bound, 0);
    root_count_.assign(bound, 0);
  }

  /// Marks the adjacency of root a for fast MayOverlap tests.
  void BeginScan(SupernodeId a);

  /// True iff merging a (from BeginScan) with z could have positive saving:
  /// they are adjacent or share an adjacent root. Others are skipped —
  /// distance >= 3 merges always increase the cost (paper Lemma 1).
  bool MayOverlap(SupernodeId z) const;

  /// Computes the merge plan for roots a and b into *plan. Never mutates
  /// state; reuses plan buffers.
  void EvaluateInto(SupernodeId a, SupernodeId b, MergePlan* plan);

  /// Convenience wrappers (tests).
  MergePlan Evaluate(SupernodeId a, SupernodeId b) {
    MergePlan plan;
    EvaluateInto(a, b, &plan);
    return plan;
  }
  double Saving(SupernodeId a, SupernodeId b) { return Evaluate(a, b).saving; }

  /// Applies `plan` (must have been evaluated against the current state)
  /// and returns the merged supernode id.
  SupernodeId Commit(const MergePlan& plan);

 private:
  struct Bucket {
    SupernodeId c_root;
    bool c_internal;
    SupernodeId c_nodes[3];  // C, C1, C2 (kInvalidId if absent)
    int8_t target[8];
    std::vector<MergePlan::SignedEdge> old_edges;
  };

  SluggerState* state_;
  MemoTable* memo_;

  // Scan state (BeginScan / MayOverlap).
  std::vector<uint32_t> mark_epoch_;
  uint32_t epoch_ = 0;
  SupernodeId scan_root_ = kInvalidId;
  uint32_t scan_adj_count_ = 0;
  std::vector<SupernodeId> scan_adj_;

  // Evaluate scratch.
  struct CrossEdge {
    SupernodeId c_root;
    SupernodeId other;
    uint8_t f_local;
    EdgeSign sign;
  };
  std::vector<Bucket> buckets_;
  size_t buckets_used_ = 0;
  FlatMap32<uint32_t> bucket_of_root_;
  std::vector<MergePlan::SignedEdge> old_within_;
  std::vector<CrossEdge> cross_edges_;
  std::vector<uint32_t> root_stamp_;
  std::vector<uint32_t> root_count_;
  uint32_t eval_epoch_ = 0;
};

}  // namespace slugger::core

#endif  // SLUGGER_CORE_MERGE_PLANNER_HPP_
