// The pruning step (paper §III-B4, Algorithm 3).
//
// Three lossless substeps, repeated for a configurable number of rounds:
//   1. remove non-leaf supernodes with no incident p/n-edge (splice);
//   2. remove non-leaf roots with exactly one incident non-loop edge by
//      pushing the edge down to the children with sign cancellation;
//   3. per adjacent root pair, fall back to the flat-model encoding
//      (superedge + leaf-level corrections) when it is strictly cheaper.
// Every substep preserves the net signed coverage of every subnode pair,
// so the summary keeps representing the same graph.
//
// With a non-null PruneOptions::pool the substeps run in the merge
// engine's evaluate-parallel / apply-serial style: candidates and edge
// rewrites are computed in parallel against a frozen state, then applied
// serially in a fixed order with revalidation. The parallel path is
// deterministic and thread-count invariant (a pool of size 1 produces the
// same summary as a pool of size 8); substeps 1 and 3 produce exactly the
// sequential result, substep 2 dissolves roots in sorted-id rounds instead
// of the sequential path's stack order (equally lossless).
#ifndef SLUGGER_CORE_PRUNING_HPP_
#define SLUGGER_CORE_PRUNING_HPP_

#include "graph/graph.hpp"
#include "summary/stats.hpp"
#include "summary/summary_graph.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace slugger::core {

struct PruneOptions {
  uint32_t rounds = 2;  ///< substeps 1-3 repeated (paper: "a few times")
  bool enable_step1 = true;
  bool enable_step2 = true;
  bool enable_step3 = true;
  /// Non-null: run the parallel pruning path on this pool (any size).
  /// Null: the historical sequential path.
  ThreadPool* pool = nullptr;
  /// Polled at round boundaries; a fired token skips the remaining rounds
  /// (every substep is lossless, so the summary stays valid).
  const CancelToken* cancel = nullptr;
};

/// Per-substep snapshots of the first round, for the Table IV ablation.
/// Index 0 is the state before pruning, i the state after substep i.
struct PruneAblation {
  summary::SummaryStats stage[4];
};

/// Prunes `summary` in place; `g` is the input graph (needed by substep 3
/// to count subedges between trees). Returns first-round snapshots.
PruneAblation PruneSummary(summary::SummaryGraph* summary,
                           const graph::Graph& g,
                           const PruneOptions& options = {});

}  // namespace slugger::core

#endif  // SLUGGER_CORE_PRUNING_HPP_
