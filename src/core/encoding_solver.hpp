// Exact solver for the minimum signed coverage-matching problem.
//
// Given a Universe and an integer target per active class, find the
// smallest set of signed slots whose summed coverage equals the target on
// every active class. This is the exhaustive search the paper performs once
// per input case and memoizes (§III-B3 "Memoization").
#ifndef SLUGGER_CORE_ENCODING_SOLVER_HPP_
#define SLUGGER_CORE_ENCODING_SOLVER_HPP_

#include <cstdint>
#include <vector>

#include "core/encoding_universe.hpp"

namespace slugger::core {

/// A solved minimum encoding: slot ids with signs, or infeasible.
struct SolvedEncoding {
  bool feasible = false;
  std::vector<std::pair<uint8_t, int8_t>> edges;  ///< (slot id, +1/-1)
  int cost() const { return static_cast<int>(edges.size()); }
};

/// Exactly solves the instance via iterative-deepening DFS with a
/// max-residual lower bound. `target` has one entry per universe class
/// (entries on inactive classes must be 0). `node_budget` caps search
/// expansions; on exhaustion the result is marked infeasible (the caller
/// falls back to keeping the old encoding, which is always valid).
SolvedEncoding SolveMinimumEncoding(const Universe& universe,
                                    const int8_t* target,
                                    uint64_t node_budget = 1u << 20);

/// Brute-force reference solver (subset enumeration over signed slots),
/// exponential; only for small universes in tests.
SolvedEncoding SolveByBruteForce(const Universe& universe, const int8_t* target,
                                 int max_cost);

}  // namespace slugger::core

#endif  // SLUGGER_CORE_ENCODING_SOLVER_HPP_
