#include "core/merge_planner.hpp"

#include <cassert>
#include <cstring>
#include <limits>

namespace slugger::core {

namespace {

/// m-side unit bitmask (units 0..3) of a local family node.
uint8_t MSideUnitMask(int local, bool a_internal, bool b_internal) {
  switch (local) {
    case kA:
      return a_internal ? 0b0011 : 0b0001;
    case kA1:
      return 0b0001;
    case kA2:
      return 0b0010;
    case kB:
      return b_internal ? 0b1100 : 0b0100;
    case kB1:
      return 0b0100;
    case kB2:
      return 0b1000;
    default:
      assert(false && "kM has no old edges; C-side nodes are not m-side");
      return 0;
  }
}

/// c-side unit bitmask (units 0..1) of a local C-side slot position 0..2.
uint8_t CSideUnitMask(int c_pos, bool c_internal) {
  switch (c_pos) {
    case 0:
      return c_internal ? 0b11 : 0b01;
    case 1:
      return 0b01;
    default:
      return 0b10;
  }
}

}  // namespace

void MergePlanner::BeginScan(SupernodeId a) {
  assert(mark_epoch_.size() >= state_->summary().forest().capacity());
  ++epoch_;
  scan_root_ = a;
  scan_adj_.clear();
  mark_epoch_[a] = epoch_;
  scan_adj_.push_back(a);
  state_->RootAdjacency(a).ForEach([&](SupernodeId c, uint32_t) {
    mark_epoch_[c] = epoch_;
    scan_adj_.push_back(c);
  });
  scan_adj_count_ = static_cast<uint32_t>(scan_adj_.size());
}

bool MergePlanner::MayOverlap(SupernodeId z) const {
  assert(scan_root_ != kInvalidId);
  if (mark_epoch_[z] == epoch_) return true;  // z adjacent to a
  const FlatCountMap& z_adj = state_->RootAdjacency(z);
  if (z_adj.size() <= scan_adj_count_) {
    bool found = false;
    z_adj.ForEach([&](SupernodeId c, uint32_t) {
      if (mark_epoch_[c] == epoch_) found = true;
    });
    return found;
  }
  for (SupernodeId c : scan_adj_) {
    if (z_adj.Contains(c)) return true;
  }
  return false;
}

void MergePlanner::EvaluateInto(SupernodeId a, SupernodeId b, MergePlan* plan) {
  const SummaryGraph& summary = state_->summary();
  const summary::HierarchyForest& forest = summary.forest();

  plan->Reset(a, b);

  // ---- Local family table: [M, A, A1, A2, B, B1, B2]. ----
  SupernodeId concrete[7];
  concrete[kM] = MergePlan::kMergedSentinel;
  concrete[kA] = a;
  concrete[kB] = b;
  concrete[kA1] = concrete[kA2] = kInvalidId;
  concrete[kB1] = concrete[kB2] = kInvalidId;

  const auto& a_kids = forest.Children(a);
  const auto& b_kids = forest.Children(b);
  assert(a_kids.size() <= 2 && b_kids.size() <= 2 &&
         "merge phase trees are binary");
  const bool a_internal = !a_kids.empty();
  const bool b_internal = !b_kids.empty();
  if (a_internal) {
    concrete[kA1] = a_kids[0];
    concrete[kA2] = a_kids[1];
  }
  if (b_internal) {
    concrete[kB1] = b_kids[0];
    concrete[kB2] = b_kids[1];
  }

  auto local_of = [&](SupernodeId id) -> int {
    for (int l = kA; l <= kB2; ++l) {
      if (concrete[l] == id) return l;
    }
    return -1;
  };

  SideShape a_shape =
      a_internal ? InternalShape(forest.Size(a_kids[0]) == 1,
                                 forest.Size(a_kids[1]) == 1)
                 : SideShape::kLeaf;
  SideShape b_shape =
      b_internal ? InternalShape(forest.Size(b_kids[0]) == 1,
                                 forest.Size(b_kids[1]) == 1)
                 : SideShape::kLeaf;
  const Universe& case1 = GetCase1Universe(a_shape, b_shape);

  // ---- Gather within-family edges and cross buckets. ----
  int8_t target1[16];
  std::memset(target1, 0, sizeof(target1));
  old_within_.clear();
  cross_edges_.clear();
  // Unregister the previous evaluation's buckets individually: sweeping the
  // whole map would cost its high-water capacity on every evaluation.
  for (size_t bi = 0; bi < buckets_used_; ++bi) {
    bucket_of_root_.Erase(buckets_[bi].c_root);
  }
  buckets_used_ = 0;

  // Pass 1: visit incident edges once, splitting into within-family edges
  // and cross edges tallied per adjacent root (epoch-stamped counters).
  // Scratch was sized to the id bound at construction, so no capacity
  // check (and no capacity read) happens on this concurrent-safe path.
  ++eval_epoch_;

  for (int f_local = kA; f_local <= kB2; ++f_local) {
    SupernodeId f = concrete[f_local];
    if (f == kInvalidId) continue;
    summary.ForEachEdgeOf(f, [&](SupernodeId other, EdgeSign sign) {
      int o_local = local_of(other);
      if (o_local >= 0) {
        if (o_local < f_local) return;  // dedup (each family pair once)
        int slot = case1.SlotIdFor(static_cast<uint8_t>(f_local),
                                   static_cast<uint8_t>(o_local));
        assert(slot >= 0 && "existing family edge must map to a legal slot");
        uint16_t cover = case1.slots[slot].cover;
        for (int c = 0; c < case1.num_classes; ++c) {
          if (cover >> c & 1) {
            target1[c] = static_cast<int8_t>(target1[c] + sign);
          }
        }
        old_within_.push_back({f, other, sign});
        return;
      }
      // Cross edge: classify against the other endpoint's tree. The
      // compression-free root lookup keeps evaluation read-only (shared
      // across concurrent evaluation threads).
      SupernodeId c_root = state_->FindRootConst(other);
      if (c_root == a || c_root == b) return;  // deep in merged tree: fixed
      if (!state_->InTopBand(other, c_root)) return;  // deep on C side: fixed
      if (root_stamp_[c_root] != eval_epoch_) {
        root_stamp_[c_root] = eval_epoch_;
        root_count_[c_root] = 1;
      } else {
        ++root_count_[c_root];
      }
      cross_edges_.push_back(
          {c_root, other, static_cast<uint8_t>(f_local), sign});
    });
  }

  // Pass 2: materialize buckets only for roots with >= 2 re-encodable
  // edges. A single-edge bucket can never improve (any nonzero target
  // costs at least one edge), so it is kept as-is at zero cost delta.
  for (const CrossEdge& ce : cross_edges_) {
    if (root_count_[ce.c_root] < 2) continue;
    uint32_t* idx = bucket_of_root_.Find(ce.c_root);
    Bucket* bucket;
    if (idx == nullptr) {
      bucket_of_root_.Put(ce.c_root, static_cast<uint32_t>(buckets_used_));
      if (buckets_used_ == buckets_.size()) buckets_.emplace_back();
      bucket = &buckets_[buckets_used_++];
      bucket->c_root = ce.c_root;
      const auto& c_kids = forest.Children(ce.c_root);
      assert(c_kids.size() <= 2);
      bucket->c_internal = !c_kids.empty();
      bucket->c_nodes[0] = ce.c_root;
      bucket->c_nodes[1] = bucket->c_internal ? c_kids[0] : kInvalidId;
      bucket->c_nodes[2] = bucket->c_internal ? c_kids[1] : kInvalidId;
      std::memset(bucket->target, 0, sizeof(bucket->target));
      bucket->old_edges.clear();
    } else {
      bucket = &buckets_[*idx];
    }

    int c_pos = ce.other == bucket->c_nodes[0]   ? 0
                : ce.other == bucket->c_nodes[1] ? 1
                                                 : 2;
    assert(c_pos != 2 || ce.other == bucket->c_nodes[2]);
    uint8_t mmask = MSideUnitMask(ce.f_local, a_internal, b_internal);
    uint8_t cmask = CSideUnitMask(c_pos, bucket->c_internal);
    for (int mi = 0; mi < 4; ++mi) {
      if (!(mmask >> mi & 1)) continue;
      for (int cj = 0; cj < 2; ++cj) {
        if (!(cmask >> cj & 1)) continue;
        int cls = Case2ClassIndex(mi, cj);
        bucket->target[cls] = static_cast<int8_t>(bucket->target[cls] + ce.sign);
      }
    }
    bucket->old_edges.push_back({concrete[ce.f_local], ce.other, ce.sign});
  }

  // ---- Solve within-family (Case 1). ----
  uint64_t removed_total = 0;
  uint64_t added_total = 0;

  const SolvedEncoding& solved1 = memo_->Solve(case1, target1);
  if (solved1.feasible && solved1.edges.size() < old_within_.size()) {
    removed_total += old_within_.size();
    added_total += solved1.edges.size();
    for (const auto& e : old_within_) plan->removes.emplace_back(e.x, e.y);
    for (auto [slot, sign] : solved1.edges) {
      const Slot& s = case1.slots[slot];
      plan->adds.push_back({concrete[s.p], concrete[s.q], sign});
    }
  }
  // else: keep the old within-family edges (equal cost, less churn).

  // ---- Solve each cross bucket (Case 2). ----
  for (size_t bi = 0; bi < buckets_used_; ++bi) {
    const Bucket& bucket = buckets_[bi];
    const Universe& case2 =
        GetCase2Universe(a_internal, b_internal, bucket.c_internal);
    const SolvedEncoding& solved2 = memo_->Solve(case2, bucket.target);
    if (solved2.feasible && solved2.edges.size() < bucket.old_edges.size()) {
      removed_total += bucket.old_edges.size();
      added_total += solved2.edges.size();
      for (const auto& e : bucket.old_edges) {
        plan->removes.emplace_back(e.x, e.y);
      }
      for (auto [slot, sign] : solved2.edges) {
        const Slot& s = case2.slots[slot];
        plan->adds.push_back(
            {concrete[s.p], bucket.c_nodes[s.q - kC], sign});
      }
    }
  }

  // ---- Costs and saving (Eq. 8). ----
  uint64_t h_a = state_->HCost(a);
  uint64_t h_b = state_->HCost(b);
  uint64_t between_ab = state_->Between(a, b);
  uint64_t p_before = state_->IncCost(a) + state_->IncCost(b) - between_ab;

  plan->cost_before = h_a + h_b + p_before;
  plan->cost_after = h_a + h_b + 2 + p_before - removed_total + added_total;
  plan->valid = true;
  if (plan->cost_before == 0) {
    plan->saving = -std::numeric_limits<double>::infinity();
  } else {
    plan->saving = 1.0 - static_cast<double>(plan->cost_after) /
                             static_cast<double>(plan->cost_before);
  }
}

SupernodeId MergePlanner::Commit(const MergePlan& plan) {
  assert(plan.valid);
  for (const auto& [x, y] : plan.removes) {
    EdgeSign sign = state_->RemoveEdge(x, y);
    assert(sign != 0 && "plan is stale: edge to remove is absent");
    (void)sign;
  }
  SupernodeId m = state_->MergeRoots(plan.a, plan.b);
  for (const auto& e : plan.adds) {
    SupernodeId x = e.x == MergePlan::kMergedSentinel ? m : e.x;
    SupernodeId y = e.y == MergePlan::kMergedSentinel ? m : e.y;
    state_->AddEdge(x, y, e.sign);
  }
  return m;
}

}  // namespace slugger::core
