#include "core/memo_table.hpp"

#include <cassert>

namespace slugger::core {

MemoTable& MemoTable::Global() {
  // lint:allow(naked-new: intentionally leaked singleton, no exit-order dtor)
  static MemoTable* instance = new MemoTable();
  return *instance;
}

uint64_t MemoTable::PackKey(const Universe& universe, const int8_t* target) {
  // 3 bits per class (supports targets in [-3, 3]), up to 10 classes ->
  // 30 bits, plus the universe code above them.
  uint64_t key = static_cast<uint64_t>(universe.code) << 32;
  for (int c = 0; c < universe.num_classes; ++c) {
    int8_t t = (universe.active_mask >> c & 1) ? target[c] : 0;
    assert(t >= -3 && t <= 3);
    key |= static_cast<uint64_t>(t + 3) << (3 * c);
  }
  return key;
}

const SolvedEncoding& MemoTable::Solve(const Universe& universe,
                                       const int8_t* target) {
  uint64_t key = PackKey(universe, target);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  SolvedEncoding solved = SolveMinimumEncoding(universe, target);
  return cache_.emplace(key, std::move(solved)).first->second;
}

size_t MemoTable::WarmUp() {
  size_t before = cache_.size();
  auto warm_universe = [&](const Universe& u) {
    // Enumerate {0,1} assignments over active classes.
    int active[16];
    int num_active = 0;
    for (int c = 0; c < u.num_classes; ++c) {
      if (u.active_mask >> c & 1) active[num_active++] = c;
    }
    uint32_t combos = 1u << num_active;
    int8_t target[16] = {0};
    for (uint32_t bits = 0; bits < combos; ++bits) {
      for (int i = 0; i < num_active; ++i) {
        target[active[i]] = static_cast<int8_t>(bits >> i & 1);
      }
      Solve(u, target);
    }
  };

  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 5; ++b) {
      warm_universe(GetCase1Universe(static_cast<SideShape>(a),
                                     static_cast<SideShape>(b)));
    }
  }
  for (int bits = 0; bits < 8; ++bits) {
    warm_universe(GetCase2Universe(bits & 4, bits & 2, bits & 1));
  }
  return cache_.size() - before;
}

size_t MemoTable::ApproxBytes() const {
  size_t bytes = cache_.bucket_count() * sizeof(void*) +
                 cache_.size() * (sizeof(uint64_t) + sizeof(SolvedEncoding) +
                                  2 * sizeof(void*));
  for (const auto& [key, enc] : cache_) {
    bytes += enc.edges.capacity() * sizeof(std::pair<uint8_t, int8_t>);
  }
  return bytes;
}

}  // namespace slugger::core
