// Global memoization of optimal local encodings (paper §III-B3).
//
// The best output encoding for a (universe shape, class target) pair is
// independent of the input graph, so solutions are memoized process-wide
// and even shared across different graphs, exactly as the paper describes.
// WarmUp() eagerly enumerates every {0,1} target of every shape (the cases
// SLUGGER's own invariant produces); anything else is solved lazily.
#ifndef SLUGGER_CORE_MEMO_TABLE_HPP_
#define SLUGGER_CORE_MEMO_TABLE_HPP_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "core/encoding_solver.hpp"
#include "core/encoding_universe.hpp"

namespace slugger::core {

/// Process-wide cache: (universe code, packed target) -> optimal encoding.
class MemoTable {
 public:
  static MemoTable& Global();

  /// Returns the memoized optimal encoding, solving on first use.
  /// Entries of `target` on inactive classes are ignored.
  const SolvedEncoding& Solve(const Universe& universe, const int8_t* target);

  /// Eagerly solves all {0,1}-valued targets for every universe shape.
  /// Returns the number of entries added.
  size_t WarmUp();

  size_t entry_count() const { return cache_.size(); }

  /// Rough memory footprint of the cache, for the §III-B3 size claim.
  size_t ApproxBytes() const;

  void Clear() { cache_.clear(); }

 private:
  static uint64_t PackKey(const Universe& universe, const int8_t* target);

  std::unordered_map<uint64_t, SolvedEncoding> cache_;
};

}  // namespace slugger::core

#endif  // SLUGGER_CORE_MEMO_TABLE_HPP_
