#include "core/slugger.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/candidate_generation.hpp"
#include "core/memo_table.hpp"
#include "core/merge_planner.hpp"
#include "core/slugger_state.hpp"
#include "util/random.hpp"
#include "util/sharded_lock.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace slugger::core {

double MergingThreshold(uint32_t t, uint32_t total_iterations) {
  if (t >= total_iterations) return 0.0;
  return 1.0 / (1.0 + static_cast<double>(t));
}

MergeEngine ResolveEngine(const SluggerConfig& config, unsigned threads) {
  if (config.engine != MergeEngine::kAuto) return config.engine;
  return threads <= 1          ? MergeEngine::kSequential
         : config.deterministic ? MergeEngine::kRoundBased
                                : MergeEngine::kAsync;
}

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// RNG seed of one candidate group: an independent deterministic stream per
/// (run seed, iteration, group index), so the outcome never depends on
/// which worker processes the group.
uint64_t GroupSeed(uint64_t seed, uint32_t t, uint64_t group) {
  return Mix64(seed ^ (t * 0x7C0FFEE5ull) ^ Mix64(group * 0x51D5EED7ull));
}

/// Per-worker evaluation context. Each worker brings its own memo table
/// (the process-wide MemoTable is not thread-safe; private tables re-warm
/// within a few evaluations and stay hot for the whole run) plus planner
/// scratch and reusable plan buffers.
struct WorkerContext {
  explicit WorkerContext(SluggerState* state) : planner(state, &memo) {}
  WorkerContext(const WorkerContext&) = delete;
  WorkerContext& operator=(const WorkerContext&) = delete;

  MemoTable memo;  // must outlive planner; declared first (init order)
  MergePlanner planner;
  MergePlan plan;
  MergePlan best;
};

/// Algorithm 2 inner loop: scans q for the best merge partner of a.
/// Read-only on the state (safe under concurrent evaluation). Returns the
/// index of the winning partner in q (meaningful only if best->valid).
size_t ScanPartners(const SluggerState& state, MergePlanner& planner,
                    const std::vector<SupernodeId>& q, SupernodeId a,
                    uint32_t height_bound, MergePlan* plan, MergePlan* best,
                    uint64_t* evaluations) {
  planner.BeginScan(a);
  best->Reset(a, a);
  best->saving = kNegInf;
  size_t best_idx = q.size();
  for (size_t i = 0; i < q.size(); ++i) {
    SupernodeId z = q[i];
    if (height_bound != 0 &&
        std::max(state.Height(a), state.Height(z)) + 1 > height_bound) {
      continue;  // Table V height-bounded variant
    }
    if (!planner.MayOverlap(z)) continue;  // Lemma 1: cannot pay off
    planner.EvaluateInto(a, z, plan);
    ++*evaluations;
    if (plan->valid && plan->saving > best->saving) {
      std::swap(*best, *plan);
      best_idx = i;
    }
  }
  return best_idx;
}

/// Pops a uniformly random element of q (the Algorithm 2 pick of A).
SupernodeId PopRandom(std::vector<SupernodeId>& q, Rng& rng) {
  size_t a_idx = rng.Below(q.size());
  SupernodeId a = q[a_idx];
  q[a_idx] = q.back();
  q.pop_back();
  return a;
}

/// The sequential merge phase (num_threads == 1): the pre-parallelism
/// control flow — one planner, one RNG stream shared across iterations.
/// (Outputs can still differ from pre-shingle-cache binaries on graphs
/// whose candidate groups overflow max_group_size, because re-division
/// levels >= 1 derive their hashes from the per-iteration cache.)
void RunGroupsSequential(const SluggerState& state, MergePlanner& planner,
                         Rng& rng,
                         std::vector<std::vector<SupernodeId>>& groups,
                         double theta, uint32_t height_bound,
                         const CancelToken* cancel, SluggerResult* result) {
  MergePlan plan;
  MergePlan best;
  for (std::vector<SupernodeId>& q : groups) {
    while (q.size() > 1) {
      if (IsCancelled(cancel)) return;  // every commit leaves a lossless state
      SupernodeId a = PopRandom(q, rng);
      size_t best_idx = ScanPartners(state, planner, q, a, height_bound,
                                     &plan, &best, &result->evaluations);
      if (best.valid && best.saving >= theta) {
        SupernodeId m = planner.Commit(best);
        ++result->merges;
        q[best_idx] = m;
      }
    }
  }
}

/// Round-based deterministic engine: every active group picks its merge
/// candidate against the same frozen state in parallel (read-only), then
/// the chosen merges commit serially in group order, re-evaluated against
/// the live state (an earlier commit in the round may have re-encoded
/// edges incident to this family, so the stored plan could be stale).
/// Output is byte-identical for every thread count.
void RunGroupsDeterministic(
    const SluggerState& state,
    std::vector<std::unique_ptr<WorkerContext>>& workers, ThreadPool& pool,
    uint64_t seed, uint32_t t, std::vector<std::vector<SupernodeId>>& groups,
    double theta, uint32_t height_bound, const CancelToken* cancel,
    SluggerResult* result) {
  struct GroupTask {
    std::vector<SupernodeId> q;
    Rng rng;
    MergePlan plan;  ///< winning plan of this round's evaluate phase
    size_t best_idx = 0;
    bool want_commit = false;
  };
  std::vector<GroupTask> tasks(groups.size());
  std::vector<uint32_t> active;
  active.reserve(tasks.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    tasks[i].q = std::move(groups[i]);
    tasks[i].rng.Reseed(GroupSeed(seed, t, i));
    if (tasks[i].q.size() > 1) active.push_back(static_cast<uint32_t>(i));
  }

  std::atomic<uint64_t> evaluations{0};
  MergePlan commit_plan;
  while (!active.empty()) {
    // Round boundary: all of this round's commits have applied, so the
    // state is a consistent lossless summary — safe to stop here.
    if (IsCancelled(cancel)) break;
    pool.Run(active.size(), [&](uint64_t task, unsigned worker) {
      GroupTask& gt = tasks[active[task]];
      WorkerContext& ctx = *workers[worker];
      SupernodeId a = PopRandom(gt.q, gt.rng);
      uint64_t local_evals = 0;
      size_t best_idx = ScanPartners(state, ctx.planner, gt.q, a,
                                     height_bound, &ctx.plan, &ctx.best,
                                     &local_evals);
      evaluations.fetch_add(local_evals, std::memory_order_relaxed);
      gt.want_commit = ctx.best.valid && ctx.best.saving >= theta;
      if (gt.want_commit) {
        std::swap(gt.plan, ctx.best);
        gt.best_idx = best_idx;
      }
    });

    // The first commit of a round still sees exactly the frozen state its
    // plan was evaluated against, so it applies directly; later commits
    // re-evaluate because an earlier one may have re-encoded edges
    // incident to this family. (The choice depends only on the commit
    // count, so thread-count invariance is preserved.)
    MergePlanner& committer = workers[0]->planner;
    uint64_t committed_this_round = 0;
    for (uint32_t idx : active) {
      GroupTask& gt = tasks[idx];
      if (!gt.want_commit) continue;
      const MergePlan* to_commit = &gt.plan;
      if (committed_this_round != 0) {
        committer.EvaluateInto(gt.plan.a, gt.plan.b, &commit_plan);
        ++result->evaluations;
        if (!(commit_plan.valid && commit_plan.saving >= theta)) continue;
        to_commit = &commit_plan;
      }
      SupernodeId m = committer.Commit(*to_commit);
      ++committed_this_round;
      ++result->merges;
      gt.q[gt.best_idx] = m;
    }

    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](uint32_t idx) {
                                  return tasks[idx].q.size() <= 1;
                                }),
                 active.end());
  }
  result->evaluations += evaluations.load(std::memory_order_relaxed);
}

// Room indices of the async engine's group lock.
constexpr unsigned kEvalRoom = 0;
constexpr unsigned kCommitRoom = 1;

/// Shared synchronization of one async merge phase. Evaluations (read-only
/// scans) occupy the eval room; commits occupy the commit room, where each
/// one locks the hash shards of its write neighborhood — {a, b} and every
/// root adjacent to either — so commits on disjoint neighborhoods apply
/// concurrently. The growth mutex serializes only the O(1) structural part
/// of a merge (id allocation, array appends, union-find, root list).
struct AsyncShared {
  explicit AsyncShared(uint32_t shard_count) : locks(shard_count) {}
  TwoGroupLock rooms;
  ShardedLockTable locks;
  // No guarded members: the state it serializes (MergeRootsStructural's
  // appends) lives in SluggerState, whose concurrent ops carry their own
  // contract. The mutex expresses mutual exclusion, not data ownership.
  Mutex growth_mu;
  std::atomic<uint64_t> commit_version{0};
};

/// Acquires the shard locks covering {a, b} ∪ adj(a) ∪ adj(b) into `held`
/// (sorted unique, ascending — the acquisition order that rules out
/// deadlock). The neighborhood can change between computing the set and
/// locking it, so after acquisition the set is recomputed and, if it
/// escaped the held set, everything is released and retried with the
/// union. Monotone growth of `held` (bounded by the shard count)
/// guarantees termination. Must be called inside the commit room.
// ACQUIRE(locks) hands the whole-table capability to the caller; the body
// opts out of analysis because the retry loop's transient Lock/Unlock
// cycling is exactly the dynamic-lock-set pattern the static model
// abstracts away (see sharded_lock.hpp).
void LockCommitNeighborhood(const SluggerState& state, ShardedLockTable& locks,
                            SupernodeId a, SupernodeId b,
                            std::vector<uint32_t>* held,
                            std::vector<uint32_t>* want,
                            std::vector<uint32_t>* merged)
    SLUGGER_ACQUIRE(locks) SLUGGER_NO_THREAD_SAFETY_ANALYSIS {
  held->clear();
  held->push_back(locks.ShardOf(a));
  held->push_back(locks.ShardOf(b));
  ShardedLockTable::Normalize(held);
  while (true) {
    locks.Lock(*held);
    // Reading root_adj_ of a root requires its shard, which the first
    // iteration already holds for both a and b.
    want->clear();
    want->push_back(locks.ShardOf(a));
    want->push_back(locks.ShardOf(b));
    state.RootAdjacency(a).ForEach([&](SupernodeId c, uint32_t) {
      want->push_back(locks.ShardOf(c));
    });
    state.RootAdjacency(b).ForEach([&](SupernodeId c, uint32_t) {
      want->push_back(locks.ShardOf(c));
    });
    ShardedLockTable::Normalize(want);
    if (std::includes(held->begin(), held->end(), want->begin(),
                      want->end())) {
      return;  // held ⊇ current neighborhood; extra shards are harmless
    }
    locks.Unlock(*held);
    merged->clear();
    std::set_union(held->begin(), held->end(), want->begin(), want->end(),
                   std::back_inserter(*merged));
    held->swap(*merged);
  }
}

/// Applies a validated plan under the caller's shard locks: edge rewrites
/// go through the compression-free concurrent state ops, and only the
/// structural merge takes the growth mutex. Returns the merged supernode.
SupernodeId CommitSharded(SluggerState& state, AsyncShared& shared,
                          const MergePlan& plan) {
  for (const auto& [x, y] : plan.removes) {
    EdgeSign sign = state.RemoveEdgeConcurrent(x, y);
    assert(sign != 0 && "plan is stale: edge to remove is absent");
    (void)sign;
  }
  SupernodeId m;
  {
    MutexLock growth(&shared.growth_mu);
    m = state.MergeRootsStructural(plan.a, plan.b);
  }
  // The fold touches root_adj_ of {a, b, m} and of their neighbors only —
  // all inside the held shard set — so disjoint folds run concurrently.
  state.FoldRootAdjacency(plan.a, plan.b, m);
  for (const auto& e : plan.adds) {
    SupernodeId x = e.x == MergePlan::kMergedSentinel ? m : e.x;
    SupernodeId y = e.y == MergePlan::kMergedSentinel ? m : e.y;
    state.AddEdgeConcurrent(x, y, e.sign);
  }
  return m;
}

/// Async work-stealing engine: workers pull whole groups and run Algorithm
/// 2 to completion without barriers. Evaluations run concurrently in the
/// eval room; commits batch in the commit room, each locking the hash
/// shards of its write neighborhood so disjoint commits apply in parallel,
/// and re-evaluating its plan when any commit landed since the evaluation
/// snapshot (a neighboring family may have been re-encoded). Lossless for
/// every schedule, but the summary depends on commit interleaving.
void RunGroupsAsync(SluggerState& state,
                    std::vector<std::unique_ptr<WorkerContext>>& workers,
                    ThreadPool& pool, AsyncShared& shared, uint64_t seed,
                    uint32_t t, std::vector<std::vector<SupernodeId>>& groups,
                    double theta, uint32_t height_bound,
                    const CancelToken* cancel, SluggerResult* result) {
  std::atomic<uint64_t> evaluations{0};
  std::atomic<uint64_t> merges{0};

  pool.Run(groups.size(), [&](uint64_t task, unsigned worker) {
    WorkerContext& ctx = *workers[worker];
    std::vector<SupernodeId>& q = groups[task];
    Rng rng(GroupSeed(seed, t, task));
    uint64_t local_evals = 0;
    std::vector<uint32_t> held;
    std::vector<uint32_t> want;
    std::vector<uint32_t> merged;
    while (q.size() > 1) {
      // Outside the rooms every in-flight commit has fully applied, so
      // bailing here leaves the shared state lossless; remaining groups
      // drain the same way as their workers reach this check.
      if (IsCancelled(cancel)) break;
      shared.rooms.Enter(kEvalRoom);
      SupernodeId a = PopRandom(q, rng);
      uint64_t seen_version =
          shared.commit_version.load(std::memory_order_relaxed);
      size_t best_idx = ScanPartners(state, ctx.planner, q, a, height_bound,
                                     &ctx.plan, &ctx.best, &local_evals);
      shared.rooms.Exit(kEvalRoom);
      if (!(ctx.best.valid && ctx.best.saving >= theta)) continue;

      shared.rooms.Enter(kCommitRoom);
      LockCommitNeighborhood(state, shared.locks, ctx.best.a, ctx.best.b,
                             &held, &want, &merged);
      const MergePlan* to_commit = &ctx.best;
      bool commit = true;
      if (shared.commit_version.load(std::memory_order_relaxed) !=
          seen_version) {
        // A commit landed since the snapshot. If it overlapped this
        // neighborhood, the shard handover above made its writes visible;
        // re-evaluate against the now-stable neighborhood.
        ctx.planner.EvaluateInto(ctx.best.a, ctx.best.b, &ctx.plan);
        ++local_evals;
        commit = ctx.plan.valid && ctx.plan.saving >= theta;
        to_commit = &ctx.plan;
      }
      SupernodeId m = kInvalidId;
      if (commit) {
        m = CommitSharded(state, shared, *to_commit);
        shared.commit_version.fetch_add(1, std::memory_order_relaxed);
        merges.fetch_add(1, std::memory_order_relaxed);
      }
      shared.locks.Unlock(held);
      shared.rooms.Exit(kCommitRoom);
      if (m != kInvalidId) q[best_idx] = m;
    }
    evaluations.fetch_add(local_evals, std::memory_order_relaxed);
  });
  result->evaluations += evaluations.load(std::memory_order_relaxed);
  result->merges += merges.load(std::memory_order_relaxed);
}

}  // namespace

SluggerResult Summarize(const graph::Graph& g, const SluggerConfig& config) {
  return Summarize(g, config, SummarizeHooks{});
}

SluggerResult Summarize(const graph::Graph& g, const SluggerConfig& config,
                        const SummarizeHooks& hooks) {
  SluggerResult result;
  WallTimer total_timer;

  // An external pool's size wins: the caller (e.g. slugger::Engine) sized
  // it once for its whole lifetime.
  const unsigned threads = hooks.pool != nullptr
                               ? hooks.pool->size()
                               : config.num_threads == 0
                                     ? ThreadPool::DefaultThreads()
                                     : config.num_threads;
  result.threads_used = threads;

  // Resolve the engine: kAuto keeps the historical dispatch (an explicit
  // engine wins, which lets the round-based engine run even at one thread
  // — its output does not depend on the worker count at all).
  const MergeEngine engine = ResolveEngine(config, threads);

  SluggerState state(g);
  CandidateGenerator generator(g, config.seed, config.max_group_size,
                               config.shingle_levels);

  // A pool exists whenever anything can use it: a parallel engine (even of
  // size 1 — same algorithm, inline execution) or spare worker threads for
  // candidate generation and pruning under the sequential engine. A hook-
  // supplied pool is borrowed instead of building one (amortizing thread
  // startup across runs); either way the algorithms see the same pool
  // semantics, so outputs are unchanged. Worker contexts (planner scratch
  // is sized eagerly to the id bound) are built only for the engine that
  // runs them.
  std::optional<ThreadPool> owned_pool;
  ThreadPool* pool = nullptr;
  std::vector<std::unique_ptr<WorkerContext>> workers;
  std::optional<AsyncShared> async_shared;
  if (threads > 1 || engine != MergeEngine::kSequential) {
    pool = hooks.pool != nullptr ? hooks.pool : &owned_pool.emplace(threads);
  }
  if (engine != MergeEngine::kSequential) {
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      workers.push_back(std::make_unique<WorkerContext>(&state));
    }
  }
  if (engine == MergeEngine::kAsync) {
    // Stable storage is what makes concurrent commits safe: committers on
    // disjoint shards index into these arrays while the (serialized)
    // structural phase appends. The shard count caps the mutexes one
    // commit can hold at once; 32 keeps worst-case holds (all shards plus
    // the growth mutex) under ThreadSanitizer's 64-held-locks limit while
    // still letting typical small neighborhoods commit in parallel.
    state.ReserveForMergePhase();
    async_shared.emplace(/*shard_count=*/32);
  }
  // Sequential path only: one planner on the process-wide memo table.
  std::optional<MergePlanner> seq_planner;
  if (engine == MergeEngine::kSequential) seq_planner.emplace(&state);
  Rng seq_rng(Mix64(config.seed ^ 0xC0FFEEull));

  const uint32_t hb = config.max_height;  // 0 = unbounded

  for (uint32_t t = 1; t <= config.iterations; ++t) {
    if (IsCancelled(hooks.cancel)) {
      result.cancelled = true;
      break;
    }
    const double theta = MergingThreshold(t, config.iterations);
    WallTimer candidate_timer;
    std::vector<std::vector<SupernodeId>> groups =
        generator.Generate(state, t, pool);
    result.candidate_seconds += candidate_timer.Seconds();

    switch (engine) {
      case MergeEngine::kSequential:
        RunGroupsSequential(state, *seq_planner, seq_rng, groups, theta, hb,
                            hooks.cancel, &result);
        break;
      case MergeEngine::kRoundBased:
        RunGroupsDeterministic(state, workers, *pool, config.seed, t, groups,
                               theta, hb, hooks.cancel, &result);
        break;
      case MergeEngine::kAsync:
        RunGroupsAsync(state, workers, *pool, *async_shared, config.seed, t,
                       groups, theta, hb, hooks.cancel, &result);
        break;
      case MergeEngine::kAuto:
        break;  // resolved above; unreachable
    }
    if (config.check_aggregates) {
      result.aggregates_valid =
          result.aggregates_valid && state.ValidateAggregates();
    }
    if (IsCancelled(hooks.cancel)) {
      // The engine bailed mid-iteration; the state is lossless but the
      // iteration is partial, so no progress event fires for it.
      result.cancelled = true;
      break;
    }
    result.iterations_completed = t;
    if (hooks.progress) {
      const summary::SummaryGraph& s = state.summary();
      ProgressEvent event;
      event.iteration = t;
      event.total_iterations = config.iterations;
      event.merges = result.merges;
      event.p_count = s.p_count();
      event.n_count = s.n_count();
      event.h_count = s.h_count();
      event.elapsed_seconds = total_timer.Seconds();
      hooks.progress(event);
    }
  }
  result.merge_seconds = total_timer.Seconds();

  // Pruning (paper §III-B4), on the pool when one exists (thread-count
  // invariant; see PruneOptions::pool).
  WallTimer prune_timer;
  PruneOptions popt;
  popt.rounds = config.pruning_rounds;
  popt.enable_step1 = config.prune_step1;
  popt.enable_step2 = config.prune_step2;
  popt.enable_step3 = config.prune_step3;
  popt.pool = config.parallel_pruning ? pool : nullptr;
  popt.cancel = hooks.cancel;
  if (config.pruning_rounds > 0) {
    result.prune_ablation = PruneSummary(&state.summary(), g, popt);
    result.cancelled = result.cancelled || IsCancelled(hooks.cancel);
  } else {
    result.prune_ablation.stage[0] = summary::ComputeStats(state.summary());
    for (int i = 1; i < 4; ++i) {
      result.prune_ablation.stage[i] = result.prune_ablation.stage[0];
    }
  }
  result.prune_seconds = prune_timer.Seconds();

  result.summary = std::move(state.summary());
  result.stats = summary::ComputeStats(result.summary);
  return result;
}

}  // namespace slugger::core
