#include "core/slugger.hpp"

#include <limits>
#include <utility>

#include "core/candidate_generation.hpp"
#include "core/merge_planner.hpp"
#include "core/slugger_state.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace slugger::core {

double MergingThreshold(uint32_t t, uint32_t total_iterations) {
  if (t >= total_iterations) return 0.0;
  return 1.0 / (1.0 + static_cast<double>(t));
}

SluggerResult Summarize(const graph::Graph& g, const SluggerConfig& config) {
  SluggerResult result;
  WallTimer total_timer;

  SluggerState state(g);
  MergePlanner planner(&state);
  CandidateGenerator generator(g, config.seed, config.max_group_size,
                               config.shingle_levels);
  Rng rng(Mix64(config.seed ^ 0xC0FFEEull));

  const uint32_t hb = config.max_height;  // 0 = unbounded

  for (uint32_t t = 1; t <= config.iterations; ++t) {
    const double theta = MergingThreshold(t, config.iterations);
    std::vector<std::vector<SupernodeId>> groups = generator.Generate(state, t);

    MergePlan plan;
    MergePlan best;
    for (std::vector<SupernodeId>& q : groups) {
      // Algorithm 2: repeatedly pick a random A, merge with the best B.
      while (q.size() > 1) {
        size_t a_idx = rng.Below(q.size());
        SupernodeId a = q[a_idx];
        q[a_idx] = q.back();
        q.pop_back();

        planner.BeginScan(a);
        best.Reset(a, a);
        best.saving = -std::numeric_limits<double>::infinity();
        size_t best_idx = 0;
        for (size_t i = 0; i < q.size(); ++i) {
          SupernodeId z = q[i];
          if (hb != 0 &&
              std::max(state.Height(a), state.Height(z)) + 1 > hb) {
            continue;  // Table V height-bounded variant
          }
          if (!planner.MayOverlap(z)) continue;  // Lemma 1: cannot pay off
          planner.EvaluateInto(a, z, &plan);
          ++result.evaluations;
          if (plan.valid && plan.saving > best.saving) {
            std::swap(best, plan);
            best_idx = i;
          }
        }
        if (best.valid && best.saving >= theta) {
          SupernodeId m = planner.Commit(best);
          ++result.merges;
          q[best_idx] = m;  // the merged node stays in the pool
        }
      }
    }
  }
  result.merge_seconds = total_timer.Seconds();

  // Pruning (paper §III-B4).
  WallTimer prune_timer;
  PruneOptions popt;
  popt.rounds = config.pruning_rounds;
  popt.enable_step1 = config.prune_step1;
  popt.enable_step2 = config.prune_step2;
  popt.enable_step3 = config.prune_step3;
  if (config.pruning_rounds > 0) {
    result.prune_ablation = PruneSummary(&state.summary(), g, popt);
  } else {
    result.prune_ablation.stage[0] = summary::ComputeStats(state.summary());
    for (int i = 1; i < 4; ++i) {
      result.prune_ablation.stage[i] = result.prune_ablation.stage[0];
    }
  }
  result.prune_seconds = prune_timer.Seconds();

  result.summary = std::move(state.summary());
  result.stats = summary::ComputeStats(result.summary);
  return result;
}

}  // namespace slugger::core
