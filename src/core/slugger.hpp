// SLUGGER: Scalable Lossless Summarization of Graphs with Hierarchy.
//
// The library's primary entry point (paper Algorithm 1): greedily merges
// supernodes under the hierarchical graph summarization model, updating
// p/n-edges through memoized optimal local re-encodings, then prunes
// supernodes that do not pay for themselves.
//
// Quickstart:
//   graph::Graph g = gen::ErdosRenyi(1000, 5000, /*seed=*/1);
//   core::SluggerResult r = core::Summarize(g, {});
//   summary::VerifyLossless(g, r.summary);          // always OK
//   double ratio = r.stats.RelativeSize(g.num_edges());
#ifndef SLUGGER_CORE_SLUGGER_HPP_
#define SLUGGER_CORE_SLUGGER_HPP_

#include "core/config.hpp"
#include "core/pruning.hpp"
#include "graph/graph.hpp"
#include "summary/stats.hpp"
#include "summary/summary_graph.hpp"

namespace slugger::core {

/// Output of one summarization run.
struct SluggerResult {
  summary::SummaryGraph summary;
  summary::SummaryStats stats;      ///< stats of the final summary
  PruneAblation prune_ablation;     ///< Table IV instrumentation
  uint64_t merges = 0;              ///< accepted merges
  uint64_t evaluations = 0;         ///< Saving() evaluations performed
  double merge_seconds = 0.0;       ///< candidate generation + merging
  double candidate_seconds = 0.0;   ///< candidate generation alone
  double prune_seconds = 0.0;
  uint32_t threads_used = 1;        ///< effective worker count
  bool aggregates_valid = true;     ///< set by SluggerConfig::check_aggregates
};

/// Runs SLUGGER on g. Deterministic for a fixed config: num_threads <= 1
/// runs the sequential engine (reproducible run to run), and with
/// config.deterministic (the default) the result is additionally
/// identical across all num_threads >= 2; with deterministic = false the
/// async engine's result depends on scheduling. Pinning
/// config.engine = MergeEngine::kRoundBased extends the byte-identity
/// guarantee to every thread count including 1 (see SluggerConfig).
SluggerResult Summarize(const graph::Graph& g, const SluggerConfig& config);

/// Merging threshold θ(t) (paper Eq. 9).
double MergingThreshold(uint32_t t, uint32_t total_iterations);

}  // namespace slugger::core

#endif  // SLUGGER_CORE_SLUGGER_HPP_
