// SLUGGER: Scalable Lossless Summarization of Graphs with Hierarchy.
//
// The algorithmic entry point (paper Algorithm 1): greedily merges
// supernodes under the hierarchical graph summarization model, updating
// p/n-edges through memoized optimal local re-encodings, then prunes
// supernodes that do not pay for themselves. Services should prefer the
// stable facade in api/engine.hpp (slugger::Engine validates options,
// keeps a persistent pool, and returns a slugger::CompressedGraph);
// this header is the internal layer it sits on.
//
// Quickstart:
//   graph::Graph g = gen::ErdosRenyi(1000, 5000, /*seed=*/1);
//   core::SluggerResult r = core::Summarize(g, {});
//   summary::VerifyLossless(g, r.summary);          // always OK
//   double ratio = r.stats.RelativeSize(g.num_edges());
#ifndef SLUGGER_CORE_SLUGGER_HPP_
#define SLUGGER_CORE_SLUGGER_HPP_

#include "core/config.hpp"
#include "core/hooks.hpp"
#include "core/pruning.hpp"
#include "graph/graph.hpp"
#include "summary/stats.hpp"
#include "summary/summary_graph.hpp"

namespace slugger::core {

/// Output of one summarization run.
struct SluggerResult {
  summary::SummaryGraph summary;
  summary::SummaryStats stats;      ///< stats of the final summary
  PruneAblation prune_ablation;     ///< Table IV instrumentation
  uint64_t merges = 0;              ///< accepted merges
  uint64_t evaluations = 0;         ///< Saving() evaluations performed
  double merge_seconds = 0.0;       ///< candidate generation + merging
  double candidate_seconds = 0.0;   ///< candidate generation alone
  double prune_seconds = 0.0;
  uint32_t threads_used = 1;        ///< effective worker count
  bool aggregates_valid = true;     ///< set by SluggerConfig::check_aggregates
  uint32_t iterations_completed = 0;  ///< fully finished iterations
  bool cancelled = false;           ///< a SummarizeHooks::cancel token fired
};

/// Runs SLUGGER on g. Deterministic for a fixed config: num_threads <= 1
/// runs the sequential engine (reproducible run to run), and with
/// config.deterministic (the default) the result is additionally
/// identical across all num_threads >= 2; with deterministic = false the
/// async engine's result depends on scheduling. Pinning
/// config.engine = MergeEngine::kRoundBased extends the byte-identity
/// guarantee to every thread count including 1 (see SluggerConfig).
SluggerResult Summarize(const graph::Graph& g, const SluggerConfig& config);

/// Summarize with run-scoped hooks: per-iteration progress reporting,
/// cooperative cancellation (the returned summary is the lossless
/// best-so-far state when the token fires), and an externally owned
/// thread pool reused across runs. Default-constructed hooks make this
/// identical to the two-argument overload.
SluggerResult Summarize(const graph::Graph& g, const SluggerConfig& config,
                        const SummarizeHooks& hooks);

/// Merging threshold θ(t) (paper Eq. 9).
double MergingThreshold(uint32_t t, uint32_t total_iterations);

/// The concrete engine a config runs at `threads` workers: kAuto maps to
/// the historical dispatch (sequential at one thread, then
/// round-based/async per `deterministic`); an explicit engine wins. The
/// single source of truth for Summarize and for callers that must predict
/// whether a pool is needed (slugger::Engine's persistent pool).
MergeEngine ResolveEngine(const SluggerConfig& config, unsigned threads);

}  // namespace slugger::core

#endif  // SLUGGER_CORE_SLUGGER_HPP_
