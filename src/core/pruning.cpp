#include "core/pruning.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/hashing.hpp"

namespace slugger::core {

namespace {

using summary::HierarchyForest;
using summary::SummaryGraph;

/// Substep 1: splice out edge-free non-leaf supernodes. Returns #removed.
uint64_t PruneStep1(SummaryGraph* summary) {
  const HierarchyForest& forest = summary->forest();
  uint64_t removed = 0;
  for (SupernodeId s = forest.capacity(); s-- > 0;) {
    if (!forest.IsAlive(s) || forest.IsLeaf(s)) continue;
    if (summary->EdgeCountOf(s) != 0) continue;
    summary->SpliceOut(s);
    ++removed;
  }
  return removed;
}

/// Whether root `a` qualifies for substep 2 against the current state; on
/// success fills its single neighbor `b` and the edge sign. Read-only —
/// shared by the sequential path, the parallel evaluate phase, and the
/// serial revalidation before an apply.
bool EvaluateStep2(const SummaryGraph& summary, SupernodeId a, SupernodeId* b,
                   EdgeSign* sign) {
  const HierarchyForest& forest = summary.forest();
  if (!forest.IsAlive(a) || !forest.IsRoot(a) || forest.IsLeaf(a)) {
    return false;
  }
  if (summary.EdgeCountOf(a) != 1) return false;

  *b = kInvalidId;
  *sign = 0;
  summary.ForEachEdgeOf(a, [&](SupernodeId other, EdgeSign s) {
    *b = other;
    *sign = s;
  });
  if (*b == a) return false;  // a lone self-loop cannot be pushed down

  // A same-sign (child, b) edge would leave a coverage deficit after the
  // rewrite; it cannot arise from SLUGGER's own encodings, but skip the
  // root defensively rather than corrupt the summary.
  for (SupernodeId c : forest.Children(a)) {
    if (summary.GetSign(c, *b) == *sign) return false;
  }
  return true;
}

/// Applies one substep-2 dissolution (paper Algorithm 3, lines 17-23):
/// replaces (a, b) by one edge per child of a, cancelling against existing
/// opposite-sign (child, b) edges, then splices a out.
template <typename OnTouched>
void ApplyStep2(SummaryGraph* summary, SupernodeId a, SupernodeId b,
                EdgeSign sign, OnTouched&& on_touched) {
  const HierarchyForest& forest = summary->forest();
  summary->RemoveEdge(a, b);
  // Children of a partition a exactly, so replacing (a, b) by one edge
  // per child preserves coverage; an existing opposite-sign (child, b)
  // cancels instead.
  for (SupernodeId c : forest.Children(a)) {
    EdgeSign existing = summary->GetSign(c, b);
    if (existing == -sign) {
      summary->RemoveEdge(c, b);
    } else {
      summary->AddEdge(c, b, sign);
    }
    on_touched(c);  // children become roots; may now qualify
  }
  on_touched(b);  // b's incident-edge set changed; may (dis)qualify
  summary->SpliceOut(a);
}

/// Substep 2: dissolve non-leaf roots with exactly one incident non-loop
/// edge, pushing the edge down to every child with sign cancellation.
uint64_t PruneStep2(SummaryGraph* summary) {
  const HierarchyForest& forest = summary->forest();
  uint64_t removed = 0;
  std::vector<SupernodeId> queue = forest.CollectRoots();
  while (!queue.empty()) {
    SupernodeId a = queue.back();
    queue.pop_back();
    SupernodeId b;
    EdgeSign sign;
    if (!EvaluateStep2(*summary, a, &b, &sign)) continue;
    ApplyStep2(summary, a, b, sign,
               [&](SupernodeId touched) { queue.push_back(touched); });
    ++removed;
  }
  return removed;
}

/// Substep 3's cost decision: which root pairs does the flat model encode
/// strictly cheaper than their current superedge count, and how.
/// marked[key] = true: use corrections-only; false: superedge + n-edges.
/// Shared by the sequential and parallel substeps so their outputs can
/// never diverge.
std::unordered_map<uint64_t, bool> DecideMarkedPairs(
    const HierarchyForest& forest,
    const std::unordered_map<uint64_t, uint32_t>& current,
    const std::unordered_map<uint64_t, uint64_t>& subedges) {
  std::unordered_map<uint64_t, bool> marked;
  for (const auto& [key, count] : current) {
    SupernodeId ra = PairFirst(key);
    SupernodeId rb = PairSecond(key);
    auto it = subedges.find(key);
    uint64_t e_ab = it == subedges.end() ? 0 : it->second;
    uint64_t sa = forest.Size(ra);
    uint64_t t_ab = ra == rb ? sa * (sa - 1) / 2 : sa * forest.Size(rb);
    uint64_t with_super = 1 + (t_ab - e_ab);
    uint64_t flat = std::min(e_ab, with_super);
    if (flat < count) marked[key] = e_ab <= with_super;
  }
  return marked;
}

/// Substep 3: per adjacent root pair (including self pairs), switch to the
/// optimal flat encoding when strictly cheaper. Returns #pairs rewritten.
uint64_t PruneStep3(SummaryGraph* summary, const graph::Graph& g) {
  const HierarchyForest& forest = summary->forest();
  std::vector<SupernodeId> root_map = forest.ComputeRootMap();

  // Current superedge count per root pair.
  std::unordered_map<uint64_t, uint32_t> current;
  summary->ForEachEdge([&](SupernodeId x, SupernodeId y, EdgeSign) {
    ++current[PairKey(root_map[x], root_map[y])];
  });

  // Subedge count per root pair (from the input graph).
  std::unordered_map<uint64_t, uint64_t> subedges;
  for (const Edge& e : g.Edges()) {
    ++subedges[PairKey(root_map[e.first], root_map[e.second])];
  }

  std::unordered_map<uint64_t, bool> marked =
      DecideMarkedPairs(forest, current, subedges);
  if (marked.empty()) return 0;

  // Remove every superedge of a marked pair.
  std::vector<std::pair<SupernodeId, SupernodeId>> removals;
  summary->ForEachEdge([&](SupernodeId x, SupernodeId y, EdgeSign) {
    if (marked.count(PairKey(root_map[x], root_map[y]))) {
      removals.emplace_back(x, y);
    }
  });
  for (const auto& [x, y] : removals) summary->RemoveEdge(x, y);

  // Re-encode marked pairs flat.
  std::vector<NodeId> leaves_a;
  std::vector<NodeId> leaves_b;
  for (const auto& [key, corrections_only] : marked) {
    SupernodeId ra = PairFirst(key);
    SupernodeId rb = PairSecond(key);
    if (corrections_only) continue;  // p-edges added in the edge sweep below
    // Superedge + n-edge corrections for the missing subnode pairs.
    summary->AddEdge(ra, rb, +1);
    summary->CollectLeaves(ra, &leaves_a);
    if (ra == rb) {
      for (size_t i = 0; i < leaves_a.size(); ++i) {
        for (size_t j = i + 1; j < leaves_a.size(); ++j) {
          if (!g.HasEdge(leaves_a[i], leaves_a[j])) {
            summary->AddEdge(leaves_a[i], leaves_a[j], -1);
          }
        }
      }
    } else {
      summary->CollectLeaves(rb, &leaves_b);
      for (NodeId u : leaves_a) {
        for (NodeId v : leaves_b) {
          if (!g.HasEdge(u, v)) summary->AddEdge(u, v, -1);
        }
      }
    }
  }
  // Correction p-edges for pairs encoded without a superedge.
  for (const Edge& e : g.Edges()) {
    uint64_t key = PairKey(root_map[e.first], root_map[e.second]);
    auto it = marked.find(key);
    if (it != marked.end() && it->second) {
      summary->AddEdge(e.first, e.second, +1);
    }
  }
  return marked.size();
}

// --------------------------------------------------------------------------
// Parallel substeps: evaluate against a frozen state on the pool, apply
// serially in a fixed order. Thread-count invariant by construction (the
// apply order never depends on which worker evaluated what).
// --------------------------------------------------------------------------

/// Substep 1, parallel scan. The predicate of one candidate is unaffected
/// by splicing another (edge counts and leaf-ness never change), so the
/// frozen-state scan finds exactly the sequential sweep's set; applying in
/// descending id order reproduces the sequential result bit for bit.
uint64_t PruneStep1Parallel(SummaryGraph* summary, ThreadPool* pool) {
  const HierarchyForest& forest = summary->forest();
  const unsigned workers = pool->size();
  std::vector<std::vector<SupernodeId>> found(workers);
  constexpr uint64_t kGrain = 4096;
  pool->ParallelFor(forest.capacity(), kGrain,
                    [&](uint64_t begin, uint64_t end, unsigned w) {
                      for (uint64_t i = begin; i < end; ++i) {
                        SupernodeId s = static_cast<SupernodeId>(i);
                        if (!forest.IsAlive(s) || forest.IsLeaf(s)) continue;
                        if (summary->EdgeCountOf(s) != 0) continue;
                        found[w].push_back(s);
                      }
                    });
  std::vector<SupernodeId> all;
  for (const auto& f : found) all.insert(all.end(), f.begin(), f.end());
  std::sort(all.begin(), all.end(), std::greater<SupernodeId>());
  for (SupernodeId s : all) summary->SpliceOut(s);
  return all.size();
}

/// Substep 2, round-based: every frontier root is evaluated in parallel
/// against the same frozen state, then the qualifying dissolutions apply
/// serially in ascending id order. An apply may invalidate a later
/// candidate of the same round (it rewrites edges incident to b and to the
/// children), so a candidate whose recorded nodes were touched this round
/// is re-evaluated before applying. Touched nodes and fresh roots seed the
/// next frontier.
uint64_t PruneStep2Parallel(SummaryGraph* summary, ThreadPool* pool) {
  const HierarchyForest& forest = summary->forest();
  struct Candidate {
    SupernodeId b = kInvalidId;
    EdgeSign sign = 0;
    bool ok = false;
  };
  uint64_t removed = 0;
  std::vector<SupernodeId> frontier = forest.CollectRoots();
  std::sort(frontier.begin(), frontier.end());
  // 0 = untouched this round; applies stamp the nodes they rewrite.
  std::vector<uint8_t> touched(forest.capacity(), 0);
  std::vector<Candidate> cands;
  std::vector<SupernodeId> next;
  constexpr uint64_t kGrain = 32;
  while (!frontier.empty()) {
    cands.assign(frontier.size(), Candidate{});
    pool->ParallelFor(frontier.size(), kGrain,
                      [&](uint64_t begin, uint64_t end, unsigned) {
                        for (uint64_t i = begin; i < end; ++i) {
                          Candidate& c = cands[i];
                          c.ok = EvaluateStep2(*summary, frontier[i], &c.b,
                                               &c.sign);
                        }
                      });
    next.clear();
    for (size_t i = 0; i < frontier.size(); ++i) {
      if (!cands[i].ok) continue;
      SupernodeId a = frontier[i];
      SupernodeId b = cands[i].b;
      EdgeSign sign = cands[i].sign;
      // `a`'s own edge set only changes when a is stamped (a root is never
      // another dissolution's child); a stale partner or stale child signs
      // require stamps on a or b.
      if (touched[a] || touched[b]) {
        if (!EvaluateStep2(*summary, a, &b, &sign)) continue;
      }
      ApplyStep2(summary, a, b, sign, [&](SupernodeId t) {
        touched[t] = 1;
        next.push_back(t);
      });
      // Stamp the dissolved root too: a later candidate of this round may
      // have recorded it as its partner, whose edges just vanished.
      touched[a] = 1;
      next.push_back(a);
      ++removed;
    }
    for (SupernodeId t : next) touched[t] = 0;
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier.swap(next);
  }
  return removed;
}

/// Substep 3, parallel: the pair tallies, the marked-pair decisions, the
/// removal sweep, and the expensive leaf-level correction products are all
/// computed on the pool against the frozen state; edits apply serially.
/// The final edge set is exactly the sequential substep's.
uint64_t PruneStep3Parallel(SummaryGraph* summary, const graph::Graph& g,
                            ThreadPool* pool) {
  const HierarchyForest& forest = summary->forest();
  const std::vector<SupernodeId> root_map = forest.ComputeRootMap();
  const SupernodeId cap = forest.capacity();
  const unsigned workers = pool->size();
  constexpr uint64_t kNodeGrain = 2048;
  constexpr uint64_t kEdgeGrain = 8192;

  // Current superedge count per root pair.
  std::vector<std::unordered_map<uint64_t, uint32_t>> cur_local(workers);
  pool->ParallelFor(cap, kNodeGrain,
                    [&](uint64_t begin, uint64_t end, unsigned w) {
                      auto& local = cur_local[w];
                      for (uint64_t i = begin; i < end; ++i) {
                        SupernodeId x = static_cast<SupernodeId>(i);
                        summary->ForEachEdgeOf(
                            x, [&](SupernodeId y, EdgeSign) {
                              if (x > y) return;  // each superedge once
                              ++local[PairKey(root_map[x], root_map[y])];
                            });
                      }
                    });
  std::unordered_map<uint64_t, uint32_t> current;
  for (auto& local : cur_local) {
    for (const auto& [key, count] : local) current[key] += count;
  }

  // Subedge count per root pair, restricted to pairs that have superedges
  // (only those can be marked; `current` is read-only here).
  std::vector<std::unordered_map<uint64_t, uint64_t>> sub_local(workers);
  const auto& graph_edges = g.Edges();
  pool->ParallelFor(graph_edges.size(), kEdgeGrain,
                    [&](uint64_t begin, uint64_t end, unsigned w) {
                      auto& local = sub_local[w];
                      for (uint64_t i = begin; i < end; ++i) {
                        const Edge& e = graph_edges[i];
                        uint64_t key =
                            PairKey(root_map[e.first], root_map[e.second]);
                        if (current.count(key)) ++local[key];
                      }
                    });
  std::unordered_map<uint64_t, uint64_t> subedges;
  for (auto& local : sub_local) {
    for (const auto& [key, count] : local) subedges[key] += count;
  }

  // Decide marked pairs (cheap arithmetic; serial). Kept in sorted order
  // so the apply sequence below is reproducible.
  std::unordered_map<uint64_t, bool> marked =
      DecideMarkedPairs(forest, current, subedges);
  if (marked.empty()) return 0;
  std::vector<std::pair<uint64_t, bool>> marked_list(marked.begin(),
                                                     marked.end());
  std::sort(marked_list.begin(), marked_list.end());

  // Collect and apply the removals of every marked pair's superedges.
  std::vector<std::vector<std::pair<SupernodeId, SupernodeId>>> rem_local(
      workers);
  pool->ParallelFor(cap, kNodeGrain,
                    [&](uint64_t begin, uint64_t end, unsigned w) {
                      auto& local = rem_local[w];
                      for (uint64_t i = begin; i < end; ++i) {
                        SupernodeId x = static_cast<SupernodeId>(i);
                        summary->ForEachEdgeOf(
                            x, [&](SupernodeId y, EdgeSign) {
                              if (x > y) return;
                              if (marked.count(
                                      PairKey(root_map[x], root_map[y]))) {
                                local.emplace_back(x, y);
                              }
                            });
                      }
                    });
  for (const auto& local : rem_local) {
    for (const auto& [x, y] : local) summary->RemoveEdge(x, y);
  }

  // Build each superedge-encoded pair's correction edges in parallel (the
  // leaf cross products dominate substep 3), then apply serially.
  struct Scratch {
    std::vector<NodeId> leaves_a;
    std::vector<NodeId> leaves_b;
    std::vector<SupernodeId> stack;
  };
  std::vector<Scratch> scratch(workers);
  std::vector<std::vector<Edge>> n_edges(marked_list.size());
  pool->Run(marked_list.size(), [&](uint64_t idx, unsigned w) {
    const auto& [key, corrections_only] = marked_list[idx];
    if (corrections_only) return;  // p-edges collected in the sweep below
    Scratch& sc = scratch[w];
    SupernodeId ra = PairFirst(key);
    SupernodeId rb = PairSecond(key);
    std::vector<Edge>& out = n_edges[idx];
    summary->CollectLeaves(ra, &sc.leaves_a, &sc.stack);
    if (ra == rb) {
      for (size_t i = 0; i < sc.leaves_a.size(); ++i) {
        for (size_t j = i + 1; j < sc.leaves_a.size(); ++j) {
          if (!g.HasEdge(sc.leaves_a[i], sc.leaves_a[j])) {
            out.emplace_back(sc.leaves_a[i], sc.leaves_a[j]);
          }
        }
      }
    } else {
      summary->CollectLeaves(rb, &sc.leaves_b, &sc.stack);
      for (NodeId u : sc.leaves_a) {
        for (NodeId v : sc.leaves_b) {
          if (!g.HasEdge(u, v)) out.emplace_back(u, v);
        }
      }
    }
  });

  // Correction p-edges for pairs encoded without a superedge.
  std::vector<std::vector<Edge>> p_local(workers);
  pool->ParallelFor(graph_edges.size(), kEdgeGrain,
                    [&](uint64_t begin, uint64_t end, unsigned w) {
                      auto& local = p_local[w];
                      for (uint64_t i = begin; i < end; ++i) {
                        const Edge& e = graph_edges[i];
                        auto it = marked.find(
                            PairKey(root_map[e.first], root_map[e.second]));
                        if (it != marked.end() && it->second) {
                          local.push_back(e);
                        }
                      }
                    });

  // Serial apply: superedges + their n-edge corrections, then p-edges.
  for (size_t idx = 0; idx < marked_list.size(); ++idx) {
    const auto& [key, corrections_only] = marked_list[idx];
    if (corrections_only) continue;
    summary->AddEdge(PairFirst(key), PairSecond(key), +1);
    for (const Edge& e : n_edges[idx]) summary->AddEdge(e.first, e.second, -1);
  }
  for (const auto& local : p_local) {
    for (const Edge& e : local) summary->AddEdge(e.first, e.second, +1);
  }
  return marked_list.size();
}

}  // namespace

PruneAblation PruneSummary(summary::SummaryGraph* summary,
                           const graph::Graph& g,
                           const PruneOptions& options) {
  // Note: a pool of size 1 still runs the parallel algorithms (inline), so
  // the pruned summary is identical for every pool size.
  ThreadPool* pool = options.pool;
  PruneAblation ablation;
  ablation.stage[0] = summary::ComputeStats(*summary);
  for (uint32_t round = 0; round < options.rounds; ++round) {
    if (IsCancelled(options.cancel)) {
      if (round == 0) {
        // Cancelled before any pruning: the ablation snapshots degenerate
        // to the pre-prune state so Table IV consumers still see totals.
        for (int i = 1; i < 4; ++i) ablation.stage[i] = ablation.stage[0];
      }
      break;
    }
    uint64_t changes = 0;
    if (options.enable_step1) {
      changes += pool ? PruneStep1Parallel(summary, pool) : PruneStep1(summary);
    }
    if (round == 0) ablation.stage[1] = summary::ComputeStats(*summary);
    if (options.enable_step2) {
      changes += pool ? PruneStep2Parallel(summary, pool) : PruneStep2(summary);
    }
    if (round == 0) ablation.stage[2] = summary::ComputeStats(*summary);
    if (options.enable_step3) {
      changes +=
          pool ? PruneStep3Parallel(summary, g, pool) : PruneStep3(summary, g);
    }
    if (round == 0) ablation.stage[3] = summary::ComputeStats(*summary);
    if (changes == 0) break;
  }
  return ablation;
}

}  // namespace slugger::core
