#include "core/pruning.hpp"

#include <cassert>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/hashing.hpp"

namespace slugger::core {

namespace {

using summary::HierarchyForest;
using summary::SummaryGraph;

/// Substep 1: splice out edge-free non-leaf supernodes. Returns #removed.
uint64_t PruneStep1(SummaryGraph* summary) {
  const HierarchyForest& forest = summary->forest();
  uint64_t removed = 0;
  for (SupernodeId s = forest.capacity(); s-- > 0;) {
    if (!forest.IsAlive(s) || forest.IsLeaf(s)) continue;
    if (summary->EdgeCountOf(s) != 0) continue;
    summary->SpliceOut(s);
    ++removed;
  }
  return removed;
}

/// Substep 2: dissolve non-leaf roots with exactly one incident non-loop
/// edge, pushing the edge down to every child with sign cancellation.
uint64_t PruneStep2(SummaryGraph* summary) {
  const HierarchyForest& forest = summary->forest();
  uint64_t removed = 0;
  std::vector<SupernodeId> queue = forest.CollectRoots();
  while (!queue.empty()) {
    SupernodeId a = queue.back();
    queue.pop_back();
    if (!forest.IsAlive(a) || !forest.IsRoot(a) || forest.IsLeaf(a)) continue;
    if (summary->EdgeCountOf(a) != 1) continue;

    SupernodeId b = kInvalidId;
    EdgeSign sign = 0;
    summary->ForEachEdgeOf(a, [&](SupernodeId other, EdgeSign s) {
      b = other;
      sign = s;
    });
    if (b == a) continue;  // a lone self-loop cannot be pushed down

    // A same-sign (child, b) edge would leave a coverage deficit after the
    // rewrite; it cannot arise from SLUGGER's own encodings, but skip the
    // root defensively rather than corrupt the summary.
    bool rewritable = true;
    for (SupernodeId c : forest.Children(a)) {
      if (summary->GetSign(c, b) == sign) {
        rewritable = false;
        break;
      }
    }
    if (!rewritable) continue;

    summary->RemoveEdge(a, b);
    // Children of a partition a exactly, so replacing (a, b) by one edge
    // per child preserves coverage; an existing opposite-sign (child, b)
    // cancels instead (paper Algorithm 3, lines 17-23).
    for (SupernodeId c : forest.Children(a)) {
      EdgeSign existing = summary->GetSign(c, b);
      if (existing == -sign) {
        summary->RemoveEdge(c, b);
      } else {
        summary->AddEdge(c, b, sign);
      }
      queue.push_back(c);  // children become roots; may now qualify
    }
    summary->SpliceOut(a);
    ++removed;
  }
  return removed;
}

/// Substep 3: per adjacent root pair (including self pairs), switch to the
/// optimal flat encoding when strictly cheaper. Returns #pairs rewritten.
uint64_t PruneStep3(SummaryGraph* summary, const graph::Graph& g) {
  const HierarchyForest& forest = summary->forest();
  std::vector<SupernodeId> root_map = forest.ComputeRootMap();

  // Current superedge count per root pair.
  std::unordered_map<uint64_t, uint32_t> current;
  summary->ForEachEdge([&](SupernodeId x, SupernodeId y, EdgeSign) {
    ++current[PairKey(root_map[x], root_map[y])];
  });

  // Subedge count per root pair (from the input graph).
  std::unordered_map<uint64_t, uint64_t> subedges;
  for (const Edge& e : g.Edges()) {
    ++subedges[PairKey(root_map[e.first], root_map[e.second])];
  }

  // Decide which pairs the flat model encodes strictly cheaper.
  // marked[key] = true: use corrections-only; false: superedge + n-edges.
  std::unordered_map<uint64_t, bool> marked;
  for (const auto& [key, count] : current) {
    SupernodeId ra = PairFirst(key);
    SupernodeId rb = PairSecond(key);
    auto it = subedges.find(key);
    uint64_t e_ab = it == subedges.end() ? 0 : it->second;
    uint64_t sa = forest.Size(ra);
    uint64_t t_ab = ra == rb ? sa * (sa - 1) / 2 : sa * forest.Size(rb);
    uint64_t with_super = 1 + (t_ab - e_ab);
    uint64_t flat = std::min(e_ab, with_super);
    if (flat < count) marked[key] = e_ab <= with_super;
  }
  if (marked.empty()) return 0;

  // Remove every superedge of a marked pair.
  std::vector<std::pair<SupernodeId, SupernodeId>> removals;
  summary->ForEachEdge([&](SupernodeId x, SupernodeId y, EdgeSign) {
    if (marked.count(PairKey(root_map[x], root_map[y]))) {
      removals.emplace_back(x, y);
    }
  });
  for (const auto& [x, y] : removals) summary->RemoveEdge(x, y);

  // Re-encode marked pairs flat.
  std::vector<NodeId> leaves_a;
  std::vector<NodeId> leaves_b;
  for (const auto& [key, corrections_only] : marked) {
    SupernodeId ra = PairFirst(key);
    SupernodeId rb = PairSecond(key);
    if (corrections_only) continue;  // p-edges added in the edge sweep below
    // Superedge + n-edge corrections for the missing subnode pairs.
    summary->AddEdge(ra, rb, +1);
    summary->CollectLeaves(ra, &leaves_a);
    if (ra == rb) {
      for (size_t i = 0; i < leaves_a.size(); ++i) {
        for (size_t j = i + 1; j < leaves_a.size(); ++j) {
          if (!g.HasEdge(leaves_a[i], leaves_a[j])) {
            summary->AddEdge(leaves_a[i], leaves_a[j], -1);
          }
        }
      }
    } else {
      summary->CollectLeaves(rb, &leaves_b);
      for (NodeId u : leaves_a) {
        for (NodeId v : leaves_b) {
          if (!g.HasEdge(u, v)) summary->AddEdge(u, v, -1);
        }
      }
    }
  }
  // Correction p-edges for pairs encoded without a superedge.
  for (const Edge& e : g.Edges()) {
    uint64_t key = PairKey(root_map[e.first], root_map[e.second]);
    auto it = marked.find(key);
    if (it != marked.end() && it->second) {
      summary->AddEdge(e.first, e.second, +1);
    }
  }
  return marked.size();
}

}  // namespace

PruneAblation PruneSummary(summary::SummaryGraph* summary,
                           const graph::Graph& g,
                           const PruneOptions& options) {
  PruneAblation ablation;
  ablation.stage[0] = summary::ComputeStats(*summary);
  for (uint32_t round = 0; round < options.rounds; ++round) {
    uint64_t changes = 0;
    if (options.enable_step1) changes += PruneStep1(summary);
    if (round == 0) ablation.stage[1] = summary::ComputeStats(*summary);
    if (options.enable_step2) changes += PruneStep2(summary);
    if (round == 0) ablation.stage[2] = summary::ComputeStats(*summary);
    if (options.enable_step3) changes += PruneStep3(summary, g);
    if (round == 0) ablation.stage[3] = summary::ComputeStats(*summary);
    if (changes == 0) break;
  }
  return ablation;
}

}  // namespace slugger::core
