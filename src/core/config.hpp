// User-facing configuration of the SLUGGER algorithm.
#ifndef SLUGGER_CORE_CONFIG_HPP_
#define SLUGGER_CORE_CONFIG_HPP_

#include <cstdint>

namespace slugger::core {

/// Tuning knobs; defaults follow the paper's experimental settings (§IV-A).
struct SluggerConfig {
  /// Number of candidate-generation + merging iterations T (paper: 20).
  uint32_t iterations = 20;

  /// Seed for every random choice; identical seeds reproduce runs exactly.
  uint64_t seed = 0;

  /// Candidate-set size cap (paper: 500).
  uint32_t max_group_size = 500;

  /// Shingle re-division levels before falling back to random splitting
  /// (paper: 10).
  uint32_t shingle_levels = 10;

  /// Height bound Hb on hierarchy trees (Table V); 0 means unbounded.
  uint32_t max_height = 0;

  /// Pruning rounds over substeps 1-3 (§III-B4); 0 disables pruning.
  uint32_t pruning_rounds = 2;
  bool prune_step1 = true;
  bool prune_step2 = true;
  bool prune_step3 = true;

  /// Worker threads for the merge engine and the shingle pass. 1 runs the
  /// original sequential path; 0 uses all hardware threads.
  uint32_t num_threads = 1;

  /// Parallel engine flavor (ignored when the effective thread count is 1,
  /// which always runs the historical sequential path).
  /// true: round-based evaluate-parallel / commit-serial engine whose
  /// output is byte-identical across runs and across every thread
  /// count >= 2 (the sequential path explores merges in a different,
  /// equally deterministic order).
  /// false: async work-stealing engine — groups run to completion without
  /// barriers (commits serialized on a writer lock and revalidated), still
  /// lossless, but the summary depends on scheduling.
  bool deterministic = true;

  /// Debug: validate state aggregates after every iteration (slow); the
  /// verdict lands in SluggerResult::aggregates_valid.
  bool check_aggregates = false;
};

}  // namespace slugger::core

#endif  // SLUGGER_CORE_CONFIG_HPP_
