// User-facing configuration of the SLUGGER algorithm.
#ifndef SLUGGER_CORE_CONFIG_HPP_
#define SLUGGER_CORE_CONFIG_HPP_

#include <cstdint>

namespace slugger::core {

/// Which merge-phase engine Summarize runs.
enum class MergeEngine : uint8_t {
  /// Historical dispatch: sequential at 1 effective thread, otherwise the
  /// round-based engine when `deterministic` is set, else the async one.
  kAuto = 0,
  /// The original single-threaded control flow (one planner, one RNG
  /// stream). With num_threads > 1 the pool still accelerates candidate
  /// generation and pruning; the merge loop itself stays sequential.
  kSequential,
  /// Round-based evaluate-parallel / commit-serial engine. Byte-identical
  /// output at EVERY thread count, including 1.
  kRoundBased,
  /// Async work-stealing engine with sharded commit locks. Lossless for
  /// every schedule, but the summary depends on commit interleaving.
  kAsync,
};

/// Tuning knobs; defaults follow the paper's experimental settings (§IV-A).
struct SluggerConfig {
  /// Number of candidate-generation + merging iterations T (paper: 20).
  uint32_t iterations = 20;

  /// Seed for every random choice; identical seeds reproduce runs exactly.
  uint64_t seed = 0;

  /// Candidate-set size cap (paper: 500).
  uint32_t max_group_size = 500;

  /// Shingle re-division levels before falling back to random splitting
  /// (paper: 10).
  uint32_t shingle_levels = 10;

  /// Height bound Hb on hierarchy trees (Table V); 0 means unbounded.
  uint32_t max_height = 0;

  /// Pruning rounds over substeps 1-3 (§III-B4); 0 disables pruning.
  uint32_t pruning_rounds = 2;
  bool prune_step1 = true;
  bool prune_step2 = true;
  bool prune_step3 = true;

  /// Worker threads for the merge engine and the shingle pass. 1 runs the
  /// original sequential path; 0 uses all hardware threads.
  uint32_t num_threads = 1;

  /// Parallel engine flavor under MergeEngine::kAuto (ignored when the
  /// effective thread count is 1, which kAuto maps to the historical
  /// sequential path).
  /// true: round-based evaluate-parallel / commit-serial engine whose
  /// output is byte-identical across runs and across every thread
  /// count >= 2 (the sequential path explores merges in a different,
  /// equally deterministic order).
  /// false: async work-stealing engine — groups run to completion without
  /// barriers (commits take hash-sharded per-supernode locks, so commits
  /// on disjoint neighborhoods apply concurrently and are revalidated),
  /// still lossless, but the summary depends on scheduling.
  bool deterministic = true;

  /// Explicit engine selection; kAuto preserves the historical dispatch
  /// described on `deterministic`. Setting kRoundBased pins the
  /// deterministic parallel engine even at num_threads == 1, which makes
  /// the serialized output byte-identical across ALL thread counts.
  MergeEngine engine = MergeEngine::kAuto;

  /// Run the pruning step (§III-B4) on the thread pool when one exists
  /// (num_threads > 1, or a parallel engine pinned via `engine`). The
  /// parallel pruning path is deterministic and thread-count invariant:
  /// substeps evaluate in parallel against a frozen state and apply
  /// serially in a fixed order (substep 2 therefore dissolves roots in
  /// sorted-id rounds rather than the sequential path's stack order).
  bool parallel_pruning = true;

  /// Debug: validate state aggregates after every iteration (slow); the
  /// verdict lands in SluggerResult::aggregates_valid.
  bool check_aggregates = false;
};

}  // namespace slugger::core

#endif  // SLUGGER_CORE_CONFIG_HPP_
