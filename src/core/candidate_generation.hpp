// Candidate generation via min-hash shingles (paper §III-B2).
//
// Roots whose subnodes share a minimum hash over their closed neighborhoods
// (in the ORIGINAL graph) land in the same candidate set; such roots are
// within distance 2 of each other with high probability, and Lemma 1 shows
// distance >= 3 merges never pay off. Oversized sets are re-divided with
// fresh hashes up to `shingle_levels` times, then split randomly to the
// `max_group_size` cap (the paper uses 500).
#ifndef SLUGGER_CORE_CANDIDATE_GENERATION_HPP_
#define SLUGGER_CORE_CANDIDATE_GENERATION_HPP_

#include <vector>

#include "core/slugger_state.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

namespace slugger::core {

class CandidateGenerator {
 public:
  CandidateGenerator(const graph::Graph& g, uint64_t seed,
                     uint32_t max_group_size, uint32_t shingle_levels)
      : graph_(&g),
        seed_(seed),
        max_group_size_(max_group_size),
        shingle_levels_(shingle_levels) {}

  /// Divides the current roots into candidate sets for iteration t.
  /// Groups of size 1 are omitted (nothing to merge).
  std::vector<std::vector<SupernodeId>> Generate(SluggerState& state,
                                                 uint32_t iteration);

 private:
  /// Shingle f(u) = min hash over {u} ∪ N(u) with the level hash.
  uint64_t NodeShingle(NodeId u, uint64_t hash_key) const;

  const graph::Graph* graph_;
  uint64_t seed_;
  uint32_t max_group_size_;
  uint32_t shingle_levels_;
};

}  // namespace slugger::core

#endif  // SLUGGER_CORE_CANDIDATE_GENERATION_HPP_
