// Candidate generation via min-hash shingles (paper §III-B2).
//
// Roots whose subnodes share a minimum hash over their closed neighborhoods
// (in the ORIGINAL graph) land in the same candidate set; such roots are
// within distance 2 of each other with high probability, and Lemma 1 shows
// distance >= 3 merges never pay off. Oversized sets are re-divided with
// fresh hashes up to `shingle_levels` times, then split randomly to the
// `max_group_size` cap (the paper uses 500).
//
// A per-iteration shingle cache removes the hot-path waste of the naive
// formulation: one keyed hash per node is computed once per iteration (a
// parallelizable pass over the CSR graph), per-node closed-neighborhood
// shingles are derived from it in a second pass, and leaves are bucketed
// per root once (via the forest's root map) so re-division levels scan flat
// leaf arrays instead of re-walking hierarchy trees. Deeper levels derive
// fresh hash values by re-mixing the cached per-node hash with a level
// salt, so no level ever re-runs the keyed hash over the graph.
#ifndef SLUGGER_CORE_CANDIDATE_GENERATION_HPP_
#define SLUGGER_CORE_CANDIDATE_GENERATION_HPP_

#include <vector>

#include "core/slugger_state.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace slugger::core {

class CandidateGenerator {
 public:
  CandidateGenerator(const graph::Graph& g, uint64_t seed,
                     uint32_t max_group_size, uint32_t shingle_levels)
      : graph_(&g),
        seed_(seed),
        max_group_size_(max_group_size),
        shingle_levels_(shingle_levels) {}

  /// Divides the current roots into candidate sets for iteration t.
  /// Groups of size 1 are omitted (nothing to merge). When `pool` is
  /// non-null the top-level shingle pass and the deeper re-division
  /// levels run on it; the output is identical for every pool size
  /// (including none).
  std::vector<std::vector<SupernodeId>> Generate(SluggerState& state,
                                                 uint32_t iteration,
                                                 ThreadPool* pool = nullptr);

 private:
  /// Fills node_base_, node_shingle_, and the per-root leaf buckets for
  /// this iteration.
  void BuildIterationCache(const SluggerState& state, uint32_t iteration,
                           ThreadPool* pool);

  /// Level-l (l >= 1) shingle of leaf u: min over the closed neighborhood
  /// of the cached per-node hashes re-mixed with the level salt.
  uint64_t LeafShingleAtLevel(NodeId u, uint64_t level_salt) const;

  const graph::Graph* graph_;
  uint64_t seed_;
  uint32_t max_group_size_;
  uint32_t shingle_levels_;

  // ---- per-iteration shingle cache (rebuilt by BuildIterationCache) ----
  std::vector<uint64_t> node_base_;     ///< keyed hash h_t(u) per node
  std::vector<uint64_t> node_shingle_;  ///< min over N[u] of node_base_
  std::vector<uint32_t> root_slot_;     ///< root id -> index into buckets
  std::vector<uint32_t> leaf_offsets_;  ///< CSR offsets per root slot
  std::vector<NodeId> leaf_ids_;        ///< leaves grouped by root
  std::vector<uint64_t> root_shingle_;  ///< level-0 min-shingle per slot
};

}  // namespace slugger::core

#endif  // SLUGGER_CORE_CANDIDATE_GENERATION_HPP_
