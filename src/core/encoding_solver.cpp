#include "core/encoding_solver.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace slugger::core {

namespace {

struct SearchState {
  const Universe* universe;
  int8_t residual[16];
  uint64_t used_slots = 0;
  uint64_t nodes = 0;
  uint64_t node_budget = 0;
  std::vector<std::pair<uint8_t, int8_t>> chosen;
  bool aborted = false;

  int FirstUnresolvedClass() const {
    for (int c = 0; c < universe->num_classes; ++c) {
      if ((universe->active_mask >> c & 1) && residual[c] != 0) return c;
    }
    return -1;
  }

  int MaxResidual() const {
    int best = 0;
    for (int c = 0; c < universe->num_classes; ++c) {
      int v = residual[c] < 0 ? -residual[c] : residual[c];
      if (v > best) best = v;
    }
    return best;
  }

  void Apply(uint8_t slot, int8_t sign) {
    const Slot& s = universe->slots[slot];
    for (int c = 0; c < universe->num_classes; ++c) {
      if (s.cover >> c & 1) residual[c] = static_cast<int8_t>(residual[c] - sign);
    }
    used_slots |= 1ull << slot;
    chosen.emplace_back(slot, sign);
  }

  void Undo(uint8_t slot, int8_t sign) {
    const Slot& s = universe->slots[slot];
    for (int c = 0; c < universe->num_classes; ++c) {
      if (s.cover >> c & 1) residual[c] = static_cast<int8_t>(residual[c] + sign);
    }
    used_slots &= ~(1ull << slot);
    chosen.pop_back();
  }

  bool Dfs(int depth_left) {
    if (++nodes > node_budget) {
      aborted = true;
      return false;
    }
    int c = FirstUnresolvedClass();
    if (c < 0) return true;  // all residuals zero: solution found
    if (MaxResidual() > depth_left) return false;
    int8_t sign = residual[c] > 0 ? 1 : -1;
    for (uint8_t slot : universe->covering_slots[c]) {
      if (used_slots >> slot & 1) continue;
      Apply(slot, sign);
      if (Dfs(depth_left - 1)) return true;
      Undo(slot, sign);
      if (aborted) return false;
    }
    return false;
  }
};

}  // namespace

SolvedEncoding SolveMinimumEncoding(const Universe& universe,
                                    const int8_t* target,
                                    uint64_t node_budget) {
  assert(universe.num_classes <= 16);
  SearchState state;
  state.universe = &universe;
  state.node_budget = node_budget;

  int abs_sum = 0;
  bool identity_ok = true;
  for (int c = 0; c < universe.num_classes; ++c) {
    int8_t t = (universe.active_mask >> c & 1) ? target[c] : 0;
    state.residual[c] = t;
    abs_sum += t < 0 ? -t : t;
    if (t < -1 || t > 1) identity_ok = false;
  }

  // Upper bound: the per-class identity encoding when all |t| <= 1;
  // otherwise a slack bound (targets outside {-1,0,1} are not produced by
  // SLUGGER itself but the solver stays total for robustness).
  int upper = identity_ok ? abs_sum : abs_sum + 4;
  if (static_cast<size_t>(upper) > universe.slots.size() + 4) {
    upper = static_cast<int>(universe.slots.size()) + 4;
  }

  SolvedEncoding out;
  for (int limit = 0; limit <= upper; ++limit) {
    state.chosen.clear();
    state.used_slots = 0;
    if (state.Dfs(limit)) {
      out.feasible = true;
      out.edges = state.chosen;
      return out;
    }
    if (state.aborted) break;
  }
  return out;  // infeasible (or search budget exhausted)
}

SolvedEncoding SolveByBruteForce(const Universe& universe, const int8_t* target,
                                 int max_cost) {
  const size_t n = universe.slots.size();
  SolvedEncoding best;
  std::vector<std::pair<uint8_t, int8_t>> current;

  // Enumerate subsets in increasing size via simple recursion with signs.
  struct Ctx {
    const Universe& u;
    const int8_t* target;
    SolvedEncoding* best;
    std::vector<std::pair<uint8_t, int8_t>>* current;
    size_t n;

    bool Matches() const {
      int sum[16] = {0};
      for (auto [slot, sign] : *current) {
        for (int c = 0; c < u.num_classes; ++c) {
          if (u.slots[slot].cover >> c & 1) sum[c] += sign;
        }
      }
      for (int c = 0; c < u.num_classes; ++c) {
        if (!(u.active_mask >> c & 1)) continue;
        if (sum[c] != target[c]) return false;
      }
      return true;
    }

    void Rec(size_t from, int remaining) {
      if (best->feasible &&
          current->size() >= best->edges.size()) {
        return;
      }
      if (Matches()) {
        best->feasible = true;
        best->edges = *current;
        return;
      }
      if (remaining == 0 || from >= n) return;
      for (size_t s = from; s < n; ++s) {
        for (int8_t sign : {int8_t{1}, int8_t{-1}}) {
          current->emplace_back(static_cast<uint8_t>(s), sign);
          Rec(s + 1, remaining - 1);
          current->pop_back();
        }
      }
    }
  } ctx{universe, target, &best, &current, n};

  ctx.Rec(0, max_cost);
  return best;
}

}  // namespace slugger::core
