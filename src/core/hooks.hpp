// Run-scoped hooks of core::Summarize: progress reporting, cooperative
// cancellation, and an externally owned thread pool (so a service can
// amortize pool startup across runs). The api layer (slugger::Engine)
// re-exports these; core stays usable without it.
#ifndef SLUGGER_CORE_HOOKS_HPP_
#define SLUGGER_CORE_HOOKS_HPP_

#include <cstdint>
#include <functional>

#include "util/cancel.hpp"

namespace slugger {
class ThreadPool;
}  // namespace slugger

namespace slugger::core {

/// Snapshot delivered to the progress observer after every completed
/// iteration of the merge phase (Algorithm 1's outer loop).
struct ProgressEvent {
  uint32_t iteration = 0;         ///< 1-based index of the finished iteration
  uint32_t total_iterations = 0;  ///< config.iterations
  uint64_t merges = 0;            ///< accepted merges so far
  uint64_t p_count = 0;           ///< |P+| of the current summary
  uint64_t n_count = 0;           ///< |P-| of the current summary
  uint64_t h_count = 0;           ///< |H| of the current summary
  double elapsed_seconds = 0.0;   ///< wall time since Summarize() began
};

/// Called on the thread driving Summarize (never concurrently with the
/// run itself), once per completed iteration — exactly
/// `config.iterations` times on an uncancelled run. Must not re-enter the
/// engine; firing a CancelToken from inside the observer is supported.
using ProgressObserver = std::function<void(const ProgressEvent&)>;

/// Optional per-run hooks; default-constructed hooks reproduce the plain
/// Summarize(g, config) behavior exactly.
struct SummarizeHooks {
  ProgressObserver progress;

  /// Polled at iteration boundaries, between merges inside every engine
  /// (sequential groups, round-based rounds, async group loops), and at
  /// pruning-round boundaries. When fired, the run stops early and
  /// returns the best-so-far summary, which is still lossless.
  const CancelToken* cancel = nullptr;

  /// Externally owned worker pool reused across runs; its size overrides
  /// config.num_threads. Null: Summarize creates (and tears down) its own
  /// pool as before.
  ThreadPool* pool = nullptr;
};

}  // namespace slugger::core

#endif  // SLUGGER_CORE_HOOKS_HPP_
