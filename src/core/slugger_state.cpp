#include "core/slugger_state.hpp"

#include <cassert>
#include <utility>

namespace slugger::core {

SluggerState::SluggerState(const graph::Graph& g)
    : input_(&g), summary_(g.num_nodes()), dsu_(g.num_nodes()) {
  const NodeId n = g.num_nodes();
  // n leaves plus at most n - 1 merged supernodes.
  max_supernodes_ = n == 0 ? 0 : 2 * n - 1;
  root_of_.resize(n);
  roots_.resize(n);
  root_pos_.resize(n);
  h_.assign(n, 0);
  inc_.assign(n, 0);
  within_.assign(n, 0);
  height_.assign(n, 0);
  root_adj_.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    root_of_[u] = u;
    roots_[u] = u;
    root_pos_[u] = u;
  }
  for (const Edge& e : g.Edges()) {
    AddEdge(e.first, e.second, +1);
  }
}

void SluggerState::ReserveForMergePhase() {
  const SupernodeId total = max_supernodes_;
  root_of_.reserve(total);
  root_pos_.reserve(total);
  h_.reserve(total);
  inc_.reserve(total);
  within_.reserve(total);
  height_.reserve(total);
  root_adj_.reserve(total);
  dsu_.Reserve(total);
  summary_.Reserve(total);
}

void SluggerState::RootAdjAdd(SupernodeId ra, SupernodeId rb, int delta) {
  uint32_t& ab = root_adj_[ra].GetOrInsert(rb, 0);
  ab = static_cast<uint32_t>(static_cast<int64_t>(ab) + delta);
  if (ab == 0) root_adj_[ra].Erase(rb);
  uint32_t& ba = root_adj_[rb].GetOrInsert(ra, 0);
  ba = static_cast<uint32_t>(static_cast<int64_t>(ba) + delta);
  if (ba == 0) root_adj_[rb].Erase(ra);
}

void SluggerState::ApplyEdgeAdd(SupernodeId rx, SupernodeId ry) {
  if (rx == ry) {
    ++within_[rx];
    ++inc_[rx];
  } else {
    RootAdjAdd(rx, ry, +1);
    ++inc_[rx];
    ++inc_[ry];
  }
}

EdgeSign SluggerState::ApplyEdgeRemove(SupernodeId x, SupernodeId y,
                                       SupernodeId rx, SupernodeId ry) {
  EdgeSign sign = summary_.RemoveEdge(x, y);
  if (sign == 0) return 0;
  if (rx == ry) {
    --within_[rx];
    --inc_[rx];
  } else {
    RootAdjAdd(rx, ry, -1);
    --inc_[rx];
    --inc_[ry];
  }
  return sign;
}

void SluggerState::AddEdge(SupernodeId x, SupernodeId y, EdgeSign sign) {
  bool inserted = summary_.AddEdge(x, y, sign);
  assert(inserted);
  (void)inserted;
  ApplyEdgeAdd(FindRoot(x), FindRoot(y));
}

EdgeSign SluggerState::RemoveEdge(SupernodeId x, SupernodeId y) {
  return ApplyEdgeRemove(x, y, FindRoot(x), FindRoot(y));
}

void SluggerState::AddEdgeConcurrent(SupernodeId x, SupernodeId y,
                                     EdgeSign sign) {
  bool inserted = summary_.AddEdge(x, y, sign);
  assert(inserted);
  (void)inserted;
  ApplyEdgeAdd(FindRootConst(x), FindRootConst(y));
}

EdgeSign SluggerState::RemoveEdgeConcurrent(SupernodeId x, SupernodeId y) {
  return ApplyEdgeRemove(x, y, FindRootConst(x), FindRootConst(y));
}

SupernodeId SluggerState::MergeRoots(SupernodeId a, SupernodeId b) {
  SupernodeId m = MergeRootsStructural(a, b);
  FoldRootAdjacency(a, b, m);
  return m;
}

SupernodeId SluggerState::MergeRootsStructural(SupernodeId a, SupernodeId b) {
  assert(a != b);
  uint32_t between_ab = Between(a, b);
  SupernodeId m = summary_.Merge(a, b);

  // Extend per-supernode arrays to cover m.
  root_of_.push_back(m);
  h_.push_back(h_[a] + h_[b] + 2);
  inc_.push_back(inc_[a] + inc_[b] - between_ab);
  within_.push_back(within_[a] + within_[b] + between_ab);
  height_.push_back(std::max(height_[a], height_[b]) + 1);
  root_adj_.emplace_back();
  root_pos_.push_back(0);

  // Union-find: m joins the merged tree and becomes its root label.
  uint32_t dsu_id = dsu_.Add();
  assert(dsu_id == m);
  (void)dsu_id;
  uint32_t rep = dsu_.Unite(dsu_.Unite(a, b), m);
  root_of_[rep] = m;

  // Update the root list: remove a and b, add m.
  auto remove_root = [&](SupernodeId r) {
    uint32_t pos = root_pos_[r];
    SupernodeId last = roots_.back();
    roots_[pos] = last;
    root_pos_[last] = pos;
    roots_.pop_back();
  };
  remove_root(a);
  remove_root(b);
  root_pos_[m] = static_cast<uint32_t>(roots_.size());
  roots_.push_back(m);
  return m;
}

void SluggerState::FoldRootAdjacency(SupernodeId a, SupernodeId b,
                                     SupernodeId m) {
  // Fold root adjacencies of a and b into m: the larger side's map is
  // moved wholesale and becomes m's, so only the smaller side pays map
  // inserts into m. Back-pointer rewrites (other -> a/b becoming
  // other -> m) are unavoidable on both sides.
  SupernodeId big = root_adj_[a].size() >= root_adj_[b].size() ? a : b;
  SupernodeId small = big == a ? b : a;
  FlatCountMap& m_adj = root_adj_[m];
  m_adj = std::move(root_adj_[big]);
  root_adj_[big].clear();  // normalize the moved-from map
  m_adj.Erase(small);      // between(a, b) edges became within(m)
  m_adj.ForEach([&](SupernodeId other, uint32_t count) {
    root_adj_[other].Erase(big);
    root_adj_[other].GetOrInsert(m, 0) += count;
  });
  root_adj_[small].ForEach([&](SupernodeId other, uint32_t count) {
    if (other == big) return;  // became within(m)
    root_adj_[other].Erase(small);
    root_adj_[other].GetOrInsert(m, 0) += count;
    m_adj.GetOrInsert(other, 0) += count;
  });
  root_adj_[small].clear();
}

uint64_t SluggerState::TotalCostFromAggregates() const {
  // sum inc double-counts inter-tree edges; each root_adj entry appears
  // twice (once per side).
  uint64_t inc_sum = 0;
  uint64_t adj_sum = 0;
  for (SupernodeId r : roots_) {
    inc_sum += inc_[r];
    root_adj_[r].ForEach([&](SupernodeId, uint32_t c) { adj_sum += c; });
  }
  return summary_.h_count() + inc_sum - adj_sum / 2;
}

bool SluggerState::ValidateAggregates() const {
  // Recompute everything from scratch and compare.
  const auto& forest = summary_.forest();
  std::vector<SupernodeId> root_map = forest.ComputeRootMap();
  std::vector<uint64_t> h(forest.capacity(), 0);
  std::vector<uint64_t> inc(forest.capacity(), 0);
  std::vector<uint64_t> within(forest.capacity(), 0);
  for (SupernodeId s = 0; s < forest.capacity(); ++s) {
    if (forest.IsAlive(s) && forest.Parent(s) != kInvalidId) {
      ++h[root_map[s]];
    }
  }
  bool ok = true;
  summary_.ForEachEdge([&](SupernodeId x, SupernodeId y, EdgeSign) {
    SupernodeId rx = root_map[x];
    SupernodeId ry = root_map[y];
    if (rx == ry) {
      ++within[rx];
      ++inc[rx];
    } else {
      ++inc[rx];
      ++inc[ry];
    }
  });
  for (SupernodeId r : roots_) {
    if (h[r] != h_[r] || inc[r] != inc_[r] || within[r] != within_[r]) {
      ok = false;
    }
  }
  return ok;
}

}  // namespace slugger::core
