#include "core/encoding_universe.hpp"

#include <array>
#include <cstddef>
#include <cassert>

namespace slugger::core {

SideShape InternalShape(bool first_singleton, bool second_singleton) {
  int code = 1 + (first_singleton ? 2 : 0) + (second_singleton ? 1 : 0);
  return static_cast<SideShape>(code);
}

int Case1ClassIndex(int i, int j) {
  if (i > j) std::swap(i, j);
  // Triangular index over unit pairs (i <= j), units 0..3: 10 classes.
  static constexpr int kBase[4] = {0, 4, 7, 9};
  return kBase[i] + (j - i);
}

int Case2ClassIndex(int mi, int cj) { return mi * 2 + cj; }

namespace {

struct UnitInfo {
  bool present = false;
  bool singleton = false;
};

/// Per-side decomposition: which of the side's two unit positions exist and
/// the local node that equals each unit.
struct SideLayout {
  // Unit positions are (side_base) and (side_base + 1).
  UnitInfo units[2];
  // Local node ids: side node and its two child nodes (kInvalid if absent).
  uint8_t side_node;
  uint8_t child_nodes[2];
};

constexpr uint8_t kAbsent = 0xFF;

SideLayout MakeSide(SideShape shape, uint8_t side_node, uint8_t child0,
                    uint8_t child1) {
  SideLayout out;
  out.side_node = side_node;
  if (!IsInternal(shape)) {
    out.units[0] = {true, true};  // a childless root is a singleton leaf
    out.units[1] = {false, false};
    out.child_nodes[0] = kAbsent;
    out.child_nodes[1] = kAbsent;
  } else {
    bool s1 = shape == SideShape::kInt10 || shape == SideShape::kInt11;
    bool s2 = shape == SideShape::kInt01 || shape == SideShape::kInt11;
    out.units[0] = {true, s1};
    out.units[1] = {true, s2};
    out.child_nodes[0] = child0;
    out.child_nodes[1] = child1;
  }
  return out;
}

/// Builds node -> unit bitmask for the m-side (units 0..3) given layouts.
void FillMSideMasks(const SideLayout& a, const SideLayout& b,
                    std::array<uint8_t, kNumLocalNodes>& mask,
                    std::array<bool, kNumLocalNodes>& present) {
  auto unit_bit = [](int u) { return static_cast<uint8_t>(1u << u); };
  // A side occupies units 0,1; B side units 2,3.
  uint8_t a_mask = unit_bit(0) | (a.units[1].present ? unit_bit(1) : 0);
  uint8_t b_mask = unit_bit(2) | (b.units[1].present ? unit_bit(3) : 0);
  present[kM] = true;
  mask[kM] = a_mask | b_mask;
  present[kA] = true;
  mask[kA] = a_mask;
  present[kB] = true;
  mask[kB] = b_mask;
  if (a.child_nodes[0] != kAbsent) {
    present[kA1] = true;
    mask[kA1] = unit_bit(0);
    present[kA2] = true;
    mask[kA2] = unit_bit(1);
  }
  if (b.child_nodes[0] != kAbsent) {
    present[kB1] = true;
    mask[kB1] = unit_bit(2);
    present[kB2] = true;
    mask[kB2] = unit_bit(3);
  }
}

Universe BuildCase1(SideShape sa, SideShape sb, uint8_t code) {
  Universe u;
  u.kind = Universe::Kind::kCase1;
  u.num_classes = 10;
  u.code = code;
  for (auto& row : u.slot_index) {
    for (auto& cell : row) cell = -1;
  }

  SideLayout a = MakeSide(sa, kA, kA1, kA2);
  SideLayout b = MakeSide(sb, kB, kB1, kB2);
  std::array<uint8_t, kNumLocalNodes> mask{};
  std::array<bool, kNumLocalNodes> present{};
  FillMSideMasks(a, b, mask, present);

  UnitInfo units[4] = {a.units[0], a.units[1], b.units[0], b.units[1]};

  // Active classes: both units present; self-classes need >= 2 subnodes.
  u.active_mask = 0;
  for (int i = 0; i < 4; ++i) {
    for (int j = i; j < 4; ++j) {
      if (!units[i].present || !units[j].present) continue;
      if (i == j && units[i].singleton) continue;
      u.active_mask |= static_cast<uint16_t>(1u << Case1ClassIndex(i, j));
    }
  }

  // Slots: unordered present node pairs, excluding nested distinct pairs
  // (mask containment), with nonzero active coverage.
  for (uint8_t p = 0; p < kC; ++p) {
    if (!present[p]) continue;
    for (uint8_t q = p; q < kC; ++q) {
      if (!present[q]) continue;
      if (p != q) {
        bool nested = (mask[p] | mask[q]) == mask[p] ||
                      (mask[p] | mask[q]) == mask[q];
        if (nested) continue;
      }
      uint16_t cover = 0;
      for (int i = 0; i < 4; ++i) {
        for (int j = i; j < 4; ++j) {
          if (!units[i].present || !units[j].present) continue;
          bool in_p_q = (mask[p] >> i & 1) && (mask[q] >> j & 1);
          bool in_q_p = (mask[q] >> i & 1) && (mask[p] >> j & 1);
          if (in_p_q || in_q_p) {
            cover |= static_cast<uint16_t>(1u << Case1ClassIndex(i, j));
          }
        }
      }
      cover &= u.active_mask;
      if (cover == 0) continue;
      u.slot_index[p][q] = static_cast<int8_t>(u.slots.size());
      u.slots.push_back({p, q, cover});
    }
  }

  u.covering_slots.assign(u.num_classes, {});
  for (size_t s = 0; s < u.slots.size(); ++s) {
    for (int c = 0; c < u.num_classes; ++c) {
      if (u.slots[s].cover >> c & 1) {
        u.covering_slots[c].push_back(static_cast<uint8_t>(s));
      }
    }
  }
  return u;
}

Universe BuildCase2(bool a_int, bool b_int, bool c_int, uint8_t code) {
  Universe u;
  u.kind = Universe::Kind::kCase2;
  u.num_classes = 8;
  u.code = code;
  for (auto& row : u.slot_index) {
    for (auto& cell : row) cell = -1;
  }

  // Singleton flags are irrelevant for cross classes; use kInt00 / kLeaf.
  SideLayout a = MakeSide(a_int ? SideShape::kInt00 : SideShape::kLeaf, kA,
                          kA1, kA2);
  SideLayout b = MakeSide(b_int ? SideShape::kInt00 : SideShape::kLeaf, kB,
                          kB1, kB2);
  std::array<uint8_t, kNumLocalNodes> mmask{};
  std::array<bool, kNumLocalNodes> mpresent{};
  FillMSideMasks(a, b, mmask, mpresent);

  bool m_units[4] = {true, a.units[1].present, true, b.units[1].present};

  // C side: units 0 (C or C1) and 1 (C2, absent when C is childless).
  bool c_units[2] = {true, c_int};
  std::array<uint8_t, 3> cmask{};  // indexed by node - kC
  std::array<bool, 3> cpresent{};
  cpresent[0] = true;
  cmask[0] = c_int ? 0b11 : 0b01;
  if (c_int) {
    cpresent[1] = true;
    cmask[1] = 0b01;
    cpresent[2] = true;
    cmask[2] = 0b10;
  }

  u.active_mask = 0;
  for (int mi = 0; mi < 4; ++mi) {
    for (int cj = 0; cj < 2; ++cj) {
      if (m_units[mi] && c_units[cj]) {
        u.active_mask |= static_cast<uint16_t>(1u << Case2ClassIndex(mi, cj));
      }
    }
  }

  for (uint8_t p = 0; p < kC; ++p) {
    if (!mpresent[p]) continue;
    for (uint8_t q = kC; q < kNumLocalNodes; ++q) {
      if (!cpresent[q - kC]) continue;
      uint16_t cover = 0;
      for (int mi = 0; mi < 4; ++mi) {
        for (int cj = 0; cj < 2; ++cj) {
          if (!m_units[mi] || !c_units[cj]) continue;
          if ((mmask[p] >> mi & 1) && (cmask[q - kC] >> cj & 1)) {
            cover |= static_cast<uint16_t>(1u << Case2ClassIndex(mi, cj));
          }
        }
      }
      cover &= u.active_mask;
      if (cover == 0) continue;
      u.slot_index[p][q] = static_cast<int8_t>(u.slots.size());
      u.slots.push_back({p, q, cover});
    }
  }

  u.covering_slots.assign(u.num_classes, {});
  for (size_t s = 0; s < u.slots.size(); ++s) {
    for (int c = 0; c < u.num_classes; ++c) {
      if (u.slots[s].cover >> c & 1) {
        u.covering_slots[c].push_back(static_cast<uint8_t>(s));
      }
    }
  }
  return u;
}

}  // namespace

const Universe& GetCase1Universe(SideShape a, SideShape b) {
  static const std::array<Universe, 25>* kTable = [] {
    // lint:allow(naked-new: intentionally leaked table, no exit-order dtor)
    auto* table = new std::array<Universe, 25>();
    for (int i = 0; i < 5; ++i) {
      for (int j = 0; j < 5; ++j) {
        (*table)[i * 5 + j] = BuildCase1(static_cast<SideShape>(i),
                                         static_cast<SideShape>(j),
                                         static_cast<uint8_t>(i * 5 + j));
      }
    }
    return table;
  }();
  return (*kTable)[static_cast<int>(a) * 5 + static_cast<int>(b)];
}

const Universe& GetCase2Universe(bool a_internal, bool b_internal,
                                 bool c_internal) {
  static const std::array<Universe, 8>* kTable = [] {
    // lint:allow(naked-new: intentionally leaked table, no exit-order dtor)
    auto* table = new std::array<Universe, 8>();
    for (int i = 0; i < 8; ++i) {
      (*table)[i] = BuildCase2(i & 4, i & 2, i & 1,
                               static_cast<uint8_t>(25 + i));
    }
    return table;
  }();
  int idx = (a_internal ? 4 : 0) | (b_internal ? 2 : 0) | (c_internal ? 1 : 0);
  return (*kTable)[idx];
}

}  // namespace slugger::core
