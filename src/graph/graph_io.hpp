// Reading and writing graphs: whitespace-separated edge-list text files and
// a compact varint-delta binary format.
#ifndef SLUGGER_GRAPH_GRAPH_IO_HPP_
#define SLUGGER_GRAPH_GRAPH_IO_HPP_

#include <string>

#include "graph/graph.hpp"
#include "util/status.hpp"

namespace slugger::graph {

/// Parses "u v" pairs, one per line; '#' and '%' lines are comments.
/// Edge directions, duplicates and self-loops are dropped (paper §IV-A).
StatusOr<Graph> LoadEdgeListText(const std::string& path);

/// Writes the canonical edge list as text, preceded by a comment header.
Status SaveEdgeListText(const Graph& g, const std::string& path);

/// Compact binary format: magic, node count, then delta-varint edges.
Status SaveBinary(const Graph& g, const std::string& path);

/// Loads the binary format written by SaveBinary; validates structure.
StatusOr<Graph> LoadBinary(const std::string& path);

}  // namespace slugger::graph

#endif  // SLUGGER_GRAPH_GRAPH_IO_HPP_
