// Partition-aware edge streams: iterate or materialize the slice of a
// graph's canonical edge list owned by one shard, without ever holding
// more than one shard's copy (ISSUE 8). The ownership rule itself lives
// with the shard manifest (dist/manifest.hpp); this layer only needs
// the node→shard map, so graph/ stays independent of dist/.
#ifndef SLUGGER_GRAPH_PARTITION_STREAM_HPP_
#define SLUGGER_GRAPH_PARTITION_STREAM_HPP_

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace slugger::graph {

/// Owner of canonical edge e under the smaller-endpoint rule: the home
/// shard of e.first (canonical edges satisfy first <= second). Must
/// agree with dist::ShardManifest::OwnerOf — the manifest delegates to
/// the same expression.
inline uint32_t EdgeOwner(std::span<const uint32_t> node_shard,
                          const Edge& e) {
  return node_shard[e.first];
}

/// Streams the canonical edges owned by `shard` in edge-list order,
/// invoking fn(edge) for each. One pass over g.Edges(), no allocation.
template <typename Fn>
void ForEachShardEdge(const Graph& g, std::span<const uint32_t> node_shard,
                      uint32_t shard, Fn&& fn) {
  for (const Edge& e : g.Edges()) {
    if (EdgeOwner(node_shard, e) == shard) fn(e);
  }
}

/// Materializes one shard's edge slice (canonical order preserved, so
/// the result feeds Graph::FromCanonicalEdges directly).
std::vector<Edge> ShardEdges(const Graph& g,
                             std::span<const uint32_t> node_shard,
                             uint32_t shard);

/// The per-shard input graph of the distributed pipeline: the full
/// global node-id space (so shard summaries answer global ids without a
/// translation layer) over exactly the edges `shard` owns. Nodes homed
/// elsewhere appear as isolated leaves, which SLUGGER summarizes for
/// free — the summary's hierarchy never grows past the edges present.
Graph BuildShardGraph(const Graph& g, std::span<const uint32_t> node_shard,
                      uint32_t shard);

}  // namespace slugger::graph

#endif  // SLUGGER_GRAPH_PARTITION_STREAM_HPP_
