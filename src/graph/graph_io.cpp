#include "graph/graph_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/edge_list.hpp"
#include "util/varint.hpp"

namespace slugger::graph {

namespace {
constexpr uint64_t kBinaryMagic = 0x534C47477246ull;  // "SLGGrF"
}  // namespace

StatusOr<Graph> LoadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  EdgeListBuilder builder;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    uint64_t u = 0, v = 0;
    if (!(ss >> u >> v)) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": expected 'u v'");
    }
    if (u > 0xFFFFFFFEull || v > 0xFFFFFFFEull) {
      return Status::OutOfRange(path + ":" + std::to_string(line_no) +
                                ": node id exceeds 32 bits");
    }
    builder.Add(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  NodeId n = builder.num_nodes();
  return Graph::FromCanonicalEdges(n, builder.Finalize());
}

Status SaveEdgeListText(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# nodes " << g.num_nodes() << " edges " << g.num_edges() << "\n";
  for (const Edge& e : g.Edges()) {
    out << e.first << ' ' << e.second << '\n';
  }
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Status SaveBinary(const Graph& g, const std::string& path) {
  std::string buf;
  buf.reserve(16 + g.num_edges() * 3);
  PutVarint64(&buf, kBinaryMagic);
  PutVarint64(&buf, g.num_nodes());
  PutVarint64(&buf, g.num_edges());
  // Edges are canonical-sorted; delta-encode the source, then the gap from
  // source to target (always positive since first < second).
  NodeId prev_u = 0;
  NodeId prev_v = 0;
  for (const Edge& e : g.Edges()) {
    if (e.first != prev_u) {
      PutVarint64(&buf, static_cast<uint64_t>(e.first - prev_u));
      prev_u = e.first;
      prev_v = e.first;  // restart the target chain
    } else {
      PutVarint64(&buf, 0);
    }
    PutVarint64(&buf, static_cast<uint64_t>(e.second - prev_v));
    prev_v = e.second;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

StatusOr<Graph> LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string buf = ss.str();

  VarintReader reader(buf);
  uint64_t magic = 0, n = 0, m = 0;
  Status s = reader.Get(&magic);
  if (!s.ok()) return s;
  if (magic != kBinaryMagic) return Status::Corruption("bad magic in " + path);
  if (!(s = reader.Get(&n)).ok()) return s;
  if (!(s = reader.Get(&m)).ok()) return s;
  if (n > 0xFFFFFFFFull) return Status::Corruption("node count overflow");
  // Bound the claimed edge count before sizing anything by it: every
  // edge costs at least two stream bytes (two varints), so a count the
  // remaining bytes cannot hold is corrupt — not a 16-exabyte reserve.
  if (m > reader.remaining() / 2) {
    return Status::Corruption("edge count exceeds file size in " + path);
  }

  std::vector<Edge> edges;
  edges.reserve(m);
  uint64_t prev_u = 0;
  uint64_t prev_v = 0;
  for (uint64_t i = 0; i < m; ++i) {
    uint64_t du = 0, dv = 0;
    if (!(s = reader.Get(&du)).ok()) return s;
    if (du != 0) {
      prev_u += du;
      prev_v = prev_u;
    }
    if (!(s = reader.Get(&dv)).ok()) return s;
    if (du == 0 && dv == 0 && i > 0) {
      return Status::Corruption("duplicate edge in " + path);
    }
    prev_v += dv;
    if (prev_u >= n || prev_v >= n || prev_u >= prev_v) {
      return Status::Corruption("edge out of range in " + path);
    }
    edges.emplace_back(static_cast<NodeId>(prev_u), static_cast<NodeId>(prev_v));
  }
  return Graph::FromCanonicalEdges(static_cast<NodeId>(n), std::move(edges));
}

}  // namespace slugger::graph
