#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>

#include "graph/edge_list.hpp"

namespace slugger::graph {

Graph Graph::FromCanonicalEdges(NodeId num_nodes, std::vector<Edge> edges) {
  Graph g;
  g.num_nodes_ = num_nodes;
  g.edges_ = std::move(edges);

  std::vector<uint32_t> degree(num_nodes, 0);
  for (const Edge& e : g.edges_) {
    assert(e.first < e.second && e.second < num_nodes);
    ++degree[e.first];
    ++degree[e.second];
  }
  g.offsets_.assign(num_nodes + 1, 0);
  for (NodeId u = 0; u < num_nodes; ++u) {
    g.offsets_[u + 1] = g.offsets_[u] + degree[u];
  }
  g.adjacency_.resize(g.offsets_[num_nodes]);
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : g.edges_) {
    g.adjacency_[cursor[e.first]++] = e.second;
    g.adjacency_[cursor[e.second]++] = e.first;
  }
  // Canonical edge list is sorted, so each adjacency run is already sorted:
  // neighbors of u are appended in increasing order of the other endpoint
  // only for one direction; the mixed directions require a sort.
  for (NodeId u = 0; u < num_nodes; ++u) {
    std::sort(g.adjacency_.begin() + static_cast<int64_t>(g.offsets_[u]),
              g.adjacency_.begin() + static_cast<int64_t>(g.offsets_[u + 1]));
  }
  return g;
}

Graph Graph::FromEdges(NodeId num_nodes, const std::vector<Edge>& edges) {
  EdgeListBuilder b(num_nodes);
  b.Reserve(edges.size());
  for (const Edge& e : edges) b.Add(e.first, e.second);
  b.EnsureNodes(num_nodes);
  std::vector<Edge> canonical = b.Finalize();
  return FromCanonicalEdges(std::max(num_nodes, b.num_nodes()),
                            std::move(canonical));
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace slugger::graph
