#include "graph/edge_list.hpp"

#include <algorithm>

namespace slugger::graph {

void EdgeListBuilder::Add(NodeId u, NodeId v) {
  EnsureNodes(std::max(u, v) + 1);
  edges_.push_back(MakeEdge(u, v));
}

std::vector<Edge> EdgeListBuilder::Finalize() {
  std::vector<Edge> out = std::move(edges_);
  edges_.clear();
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const Edge& e) { return e.first == e.second; }),
            out.end());
  return out;
}

}  // namespace slugger::graph
