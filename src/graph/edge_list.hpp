// Mutable undirected edge-list builder used to assemble graphs.
#ifndef SLUGGER_GRAPH_EDGE_LIST_HPP_
#define SLUGGER_GRAPH_EDGE_LIST_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace slugger::graph {

/// Accumulates undirected edges; Finalize() canonicalizes (sorts endpoint
/// pairs), removes self-loops and duplicates, and fixes the node count.
class EdgeListBuilder {
 public:
  /// `num_nodes` may be 0; it grows to fit the largest endpoint + 1.
  explicit EdgeListBuilder(NodeId num_nodes = 0) : num_nodes_(num_nodes) {}

  /// Adds an undirected edge; order of endpoints is irrelevant.
  /// Self-loops and duplicates are accepted here and dropped by Finalize().
  void Add(NodeId u, NodeId v);

  void Reserve(size_t n) { edges_.reserve(n); }

  /// Declares at least `n` nodes even if some are isolated.
  void EnsureNodes(NodeId n) {
    if (n > num_nodes_) num_nodes_ = n;
  }

  size_t raw_edge_count() const { return edges_.size(); }
  NodeId num_nodes() const { return num_nodes_; }

  /// Canonicalized, deduplicated, loop-free edge list (sorted). Destructive:
  /// the builder is left empty.
  std::vector<Edge> Finalize();

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

}  // namespace slugger::graph

#endif  // SLUGGER_GRAPH_EDGE_LIST_HPP_
