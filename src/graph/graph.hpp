// Immutable simple undirected graph in CSR (compressed sparse row) form.
#ifndef SLUGGER_GRAPH_GRAPH_HPP_
#define SLUGGER_GRAPH_GRAPH_HPP_

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace slugger::graph {

/// The input substrate of the library: a simple undirected graph G = (V, E)
/// with V = {0, ..., n-1}. Adjacency lists are sorted, enabling O(log d)
/// membership queries and linear-time set intersections.
class Graph {
 public:
  Graph() = default;

  /// Builds from a canonical edge list (sorted unique loop-free pairs with
  /// first <= second), e.g. the output of EdgeListBuilder::Finalize().
  /// `num_nodes` must exceed every endpoint.
  static Graph FromCanonicalEdges(NodeId num_nodes, std::vector<Edge> edges);

  /// Convenience: accepts arbitrary (unsorted, possibly duplicated) edges.
  static Graph FromEdges(NodeId num_nodes, const std::vector<Edge>& edges);

  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return edges_.size(); }

  /// Sorted neighbors of u.
  std::span<const NodeId> Neighbors(NodeId u) const {
    return {adjacency_.data() + offsets_[u],
            adjacency_.data() + offsets_[u + 1]};
  }

  uint32_t Degree(NodeId u) const {
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// O(log deg) adjacency test.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Canonical edge list (sorted, first <= second), one entry per edge.
  const std::vector<Edge>& Edges() const { return edges_; }

  bool operator==(const Graph& other) const {
    return num_nodes_ == other.num_nodes_ && edges_ == other.edges_;
  }

 private:
  NodeId num_nodes_ = 0;
  std::vector<uint64_t> offsets_;   // size num_nodes_ + 1
  std::vector<NodeId> adjacency_;   // size 2 * |E|
  std::vector<Edge> edges_;         // canonical list, |E| entries
};

}  // namespace slugger::graph

#endif  // SLUGGER_GRAPH_GRAPH_HPP_
