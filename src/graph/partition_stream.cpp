#include "graph/partition_stream.hpp"

#include <utility>

namespace slugger::graph {

std::vector<Edge> ShardEdges(const Graph& g,
                             std::span<const uint32_t> node_shard,
                             uint32_t shard) {
  std::vector<Edge> edges;
  ForEachShardEdge(g, node_shard, shard,
                   [&edges](const Edge& e) { edges.push_back(e); });
  return edges;
}

Graph BuildShardGraph(const Graph& g, std::span<const uint32_t> node_shard,
                      uint32_t shard) {
  // A filtered subsequence of a canonical list is still canonical
  // (sorted, unique, loop-free), so the fast constructor applies.
  return Graph::FromCanonicalEdges(g.num_nodes(),
                                   ShardEdges(g, node_shard, shard));
}

}  // namespace slugger::graph
