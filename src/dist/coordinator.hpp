// slugger::dist::Coordinator — scatter-gather serving over per-shard
// SnapshotRegistry replicas (ISSUE 8, tentpole part 3). Modeled on the
// RediSearch coordinator's distribute/stitch split: the front end owns
// no graph data, only the manifest (routing) and one registry per shard
// (serving state), and every batch is split, dispatched, and stitched
// back into input order.
//
// Answer contract: byte-identical to a single-box CompressedGraph over
// the same graph — same InvalidArgument on out-of-range ids, same
// offsets, and each neighbor list sorted ascending (the canonical
// serving order; per-shard contributions are disjoint because every
// edge is owned by exactly one shard, so the stitch is a merge, never a
// dedup). Degrees are summed across the shards a boundary node touches.
//
// Consistency across swaps: a batch reads one ServingEpoch (manifest +
// registries) grabbed atomically at entry. Shard-local republish into a
// registry needs no coordination — any lossless summary of the same
// shard edge set serves identical answers, so readers may span versions
// freely (the dist_test churn test runs exactly that under TSan).
// Changing the PARTITION is different: manifest and all shard summaries
// must swap together, which is what AdoptEpoch is for (the rebalance
// path in slugger::ShardedGraph).
//
// Thread-safety: with options.pool == nullptr every method is safe from
// any number of concurrent callers (per-thread scratch comes from the
// scratch-free CompressedGraph overloads). A non-null pool parallelizes
// shard dispatch but ThreadPool::Run serves one job at a time, so only
// one thread may drive pooled batches on a given pool concurrently —
// the same rule as CompressedGraph's parallel batch overloads.
#ifndef SLUGGER_DIST_COORDINATOR_HPP_
#define SLUGGER_DIST_COORDINATOR_HPP_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "api/compressed_graph.hpp"
#include "api/snapshot_registry.hpp"
#include "dist/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace slugger {
class ThreadPool;
}  // namespace slugger

namespace slugger::dist {

/// One consistent view of the cluster: the partition decision and the
/// per-shard serving registries it routes to. Immutable once installed;
/// a rebalance installs a fresh epoch instead of mutating this one.
struct ServingEpoch {
  std::shared_ptr<const ShardManifest> manifest;
  std::vector<std::shared_ptr<SnapshotRegistry>> shards;
};

struct CoordinatorOptions {
  /// Parallel shard dispatch (one task per contributing shard). Null:
  /// shards are queried sequentially on the calling thread, which is
  /// also the only mode safe for concurrent batch callers.
  ThreadPool* pool = nullptr;

  /// Per-shard wall-time budget; a shard exceeding it is counted in
  /// GatherStats::slow_shards (accounting, not enforcement — in-process
  /// dispatch has no transport to abandon). 0 disables the accounting.
  double shard_time_budget_seconds = 0.0;

  /// false (default): the first failing shard fails the whole batch
  /// with its Status. true: failing shards contribute empty answers,
  /// the batch succeeds, and GatherStats::degraded names the casualties
  /// — the "serve what we have" posture of a real fleet.
  bool allow_degraded = false;
};

/// Per-batch observability: where the batch went and what it cost.
struct GatherStats {
  uint32_t shards_dispatched = 0;  ///< shards with a non-empty sub-batch
  uint64_t subqueries = 0;         ///< summed sub-batch sizes (fan-out cost)
  uint32_t slow_shards = 0;        ///< shards over the time budget
  double max_shard_seconds = 0.0;  ///< slowest shard's dispatch time
  double stitch_seconds = 0.0;     ///< gather + reorder + sort time
  std::vector<std::pair<uint32_t, Status>> degraded;  ///< shard -> failure
  /// Trace id of this batch's root span (0 with SLUGGER_OBS=OFF): the
  /// per-shard dispatch spans in obs::MetricsRegistry::RecentSpans()
  /// carry it as their parent, linking a slow batch to its slow shard.
  obs::SpanId span_id = 0;
};

class Coordinator {
 public:
  /// Installs the initial epoch. An invalid epoch (null manifest,
  /// registry count != num_shards, null registry) leaves the
  /// coordinator inert: status() reports why and every batch fails
  /// with it — the Engine idiom for constructors that cannot throw.
  explicit Coordinator(ServingEpoch initial, CoordinatorOptions options = {});

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Verdict of the most recent epoch install (construction or
  /// AdoptEpoch). Returned by value: the verdict may be replaced by a
  /// concurrent AdoptEpoch, so a reference would race.
  Status status() const SLUGGER_REQUIRES(!epoch_mu_);

  const CoordinatorOptions& options() const { return options_; }

  /// The epoch new batches will read; in-flight batches keep the one
  /// they grabbed (shared_ptr pins it, registry snapshots pin the
  /// summaries — nothing a swap can pull out from under a reader).
  std::shared_ptr<const ServingEpoch> epoch() const
      SLUGGER_REQUIRES(!epoch_mu_);

  /// Atomically replaces the served epoch (the rebalance publish step).
  /// InvalidArgument on a malformed epoch; the old epoch keeps serving.
  /// The retired epoch (and whatever snapshots only it still pins) is
  /// released outside epoch_mu_, SnapshotRegistry-style.
  Status AdoptEpoch(ServingEpoch next) SLUGGER_REQUIRES(!epoch_mu_);

  /// Scatter-gather NeighborsBatch: answers land in *out in input
  /// order, each list sorted ascending. InvalidArgument if any id is
  /// >= num_nodes() (*out untouched). A shard failure either fails the
  /// batch (*out emptied) or, with allow_degraded, is recorded in
  /// *stats while the batch succeeds. `stats` may be null.
  Status NeighborsBatch(std::span<const NodeId> nodes, BatchResult* out,
                        GatherStats* stats = nullptr) const;

  /// Scatter-gather DegreeBatch under the same contract; a boundary
  /// node's degree is the sum of its per-shard degrees.
  Status DegreeBatch(std::span<const NodeId> nodes,
                     std::vector<uint64_t>* degrees,
                     GatherStats* stats = nullptr) const;

  /// Cost skew of the live deployment: max over shards of the current
  /// snapshot's summary cost, divided by the even-split mean. Shards
  /// with no published snapshot fall back to their manifest owned-edge
  /// count (the pre-summarization proxy). 1.0 = perfectly balanced;
  /// ShardedGraph::Rebalance re-partitions when this passes a
  /// threshold.
  double CostSkew() const;

 private:
  Status ValidateEpoch(const ServingEpoch& epoch) const;

  template <bool kDegreesOnly>
  Status RunScatterGather(std::span<const NodeId> nodes,
                          summary::BatchResult* out,
                          std::vector<uint64_t>* degrees,
                          GatherStats* stats) const;

  CoordinatorOptions options_;
  mutable Mutex epoch_mu_;
  Status epoch_status_ SLUGGER_GUARDED_BY(epoch_mu_);
  std::shared_ptr<const ServingEpoch> epoch_ SLUGGER_GUARDED_BY(epoch_mu_);
};

}  // namespace slugger::dist

#endif  // SLUGGER_DIST_COORDINATOR_HPP_
