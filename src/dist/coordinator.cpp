#include "dist/coordinator.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace slugger::dist {

namespace {

// Fan-out health of the scatter-gather tier. Slow/degraded/failed are
// counted unconditionally — a caller that passes no GatherStats still
// shows up on the dashboard.
struct CoordObs {
  obs::Counter* batches = obs::MetricsRegistry::Global().GetCounter(
      "slugger_coord_batches_total", "scatter-gather batches served");
  obs::Counter* subqueries = obs::MetricsRegistry::Global().GetCounter(
      "slugger_coord_subqueries_total",
      "per-shard sub-batch entries dispatched");
  obs::Counter* slow_shards = obs::MetricsRegistry::Global().GetCounter(
      "slugger_coord_slow_shards_total",
      "shard dispatches over the configured time budget");
  obs::Counter* degraded_batches = obs::MetricsRegistry::Global().GetCounter(
      "slugger_coord_degraded_batches_total",
      "batches served with at least one failed shard (allow_degraded)");
  obs::Counter* failed_batches = obs::MetricsRegistry::Global().GetCounter(
      "slugger_coord_failed_batches_total",
      "batches failed by a shard error (strict mode)");
  obs::Histogram* dispatch_seconds =
      obs::MetricsRegistry::Global().GetHistogram(
          "slugger_coord_dispatch_seconds",
          obs::HistogramOptions{1e-6, 2.0, 24},
          "per-shard dispatch latency");
  obs::Histogram* stitch_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "slugger_coord_stitch_seconds", obs::HistogramOptions{1e-6, 2.0, 24},
      "gather + reorder + sort time per batch");
  obs::Histogram* batch_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "slugger_coord_batch_seconds", obs::HistogramOptions{1e-6, 2.0, 24},
      "whole scatter-gather batch latency");
};

const CoordObs& Obs() {
  static CoordObs handles;
  return handles;
}

}  // namespace

Coordinator::Coordinator(ServingEpoch initial, CoordinatorOptions options)
    : options_(options) {
  // A rejected initial epoch is observed through status(): the Engine
  // idiom for constructors that cannot throw.
  (void)AdoptEpoch(std::move(initial));
}

Status Coordinator::status() const {
  MutexLock lock(&epoch_mu_);
  return epoch_status_;
}

Status Coordinator::ValidateEpoch(const ServingEpoch& epoch) const {
  if (epoch.manifest == nullptr) {
    return Status::InvalidArgument("epoch has no manifest");
  }
  if (epoch.shards.size() != epoch.manifest->num_shards()) {
    return Status::InvalidArgument(
        "epoch has " + std::to_string(epoch.shards.size()) +
        " shard registries but the manifest declares " +
        std::to_string(epoch.manifest->num_shards()) + " shards");
  }
  for (size_t s = 0; s < epoch.shards.size(); ++s) {
    if (epoch.shards[s] == nullptr) {
      return Status::InvalidArgument("shard " + std::to_string(s) +
                                     " registry is null");
    }
  }
  return Status::OK();
}

std::shared_ptr<const ServingEpoch> Coordinator::epoch() const {
  MutexLock lock(&epoch_mu_);
  return epoch_;
}

Status Coordinator::AdoptEpoch(ServingEpoch next) {
  Status valid = ValidateEpoch(next);
  if (!valid.ok()) {
    MutexLock lock(&epoch_mu_);
    // Record the rejection only while inert; a serving coordinator
    // keeps its healthy verdict and the old epoch keeps serving.
    if (epoch_ == nullptr) epoch_status_ = valid;
    return valid;
  }
  auto installed = std::make_shared<const ServingEpoch>(std::move(next));
  std::shared_ptr<const ServingEpoch> retired;
  {
    MutexLock lock(&epoch_mu_);
    retired = std::move(epoch_);
    epoch_ = std::move(installed);
    epoch_status_ = Status::OK();
  }
  // `retired` drops here, outside epoch_mu_: if this was the last owner
  // of the old epoch (whole registries of summaries), its destruction
  // must not stall concurrent status()/epoch() readers.
  return Status::OK();
}

double Coordinator::CostSkew() const {
  std::shared_ptr<const ServingEpoch> epoch = this->epoch();
  if (epoch == nullptr) return 1.0;
  const ShardManifest& manifest = *epoch->manifest;
  const uint32_t shards = manifest.num_shards();
  uint64_t total = 0;
  uint64_t max_cost = 0;
  for (uint32_t s = 0; s < shards; ++s) {
    SnapshotRegistry::Snapshot snap = epoch->shards[s]->Current();
    const uint64_t cost = snap != nullptr
                              ? snap->stats().cost
                              : manifest.shard_stats()[s].owned_edges;
    total += cost;
    max_cost = std::max(max_cost, cost);
  }
  if (total == 0 || shards == 0) return 1.0;
  return static_cast<double>(max_cost) * shards / static_cast<double>(total);
}

namespace {

struct ShardAnswer {
  Status status;
  summary::BatchResult result;
  std::vector<uint64_t> degrees;
  double seconds = 0.0;
};

/// Per-calling-thread scatter/gather buffers, reused across batches so a
/// serving loop stops paying allocation churn after warmup (the same
/// economics as CompressedGraph's thread-local scratches). Workers of a
/// dispatch pool only ever touch disjoint `answers` entries; the
/// containers themselves are owned and resized by the calling thread.
struct GatherScratch {
  std::vector<std::vector<uint32_t>> positions;
  std::vector<std::vector<NodeId>> sub_nodes;
  std::vector<ShardAnswer> answers;
  std::vector<uint32_t> active;
  std::vector<uint64_t> cursor;
};

GatherScratch& ThreadLocalGatherScratch() {
  thread_local GatherScratch scratch;
  return scratch;
}

}  // namespace

template <bool kDegreesOnly>
Status Coordinator::RunScatterGather(std::span<const NodeId> nodes,
                                     summary::BatchResult* out,
                                     std::vector<uint64_t>* degrees,
                                     GatherStats* stats) const {
  std::shared_ptr<const ServingEpoch> epoch = this->epoch();
  if (epoch == nullptr) return status();
  const ShardManifest& manifest = *epoch->manifest;
  const size_t batch = nodes.size();

  // Same contract (and message shape) as CompressedGraph::ValidateBatch:
  // a hostile id fails the whole batch before any shard is touched.
  for (size_t i = 0; i < batch; ++i) {
    if (nodes[i] >= manifest.num_nodes()) {
      return Status::InvalidArgument(
          "batch node id " + std::to_string(nodes[i]) + " at position " +
          std::to_string(i) + " is out of range (graph has " +
          std::to_string(manifest.num_nodes()) + " nodes)");
    }
  }

  // Scatter: route each position to the shards that can contribute.
  // Isolated nodes route nowhere and fall out of the stitch as empty
  // answers / zero degrees, exactly like the single box.
  const uint32_t num_shards = manifest.num_shards();
  GatherScratch& scratch = ThreadLocalGatherScratch();
  scratch.positions.resize(num_shards);
  scratch.sub_nodes.resize(num_shards);
  scratch.answers.resize(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    scratch.positions[s].clear();
    scratch.sub_nodes[s].clear();
  }
  std::vector<std::vector<uint32_t>>& positions = scratch.positions;
  std::vector<std::vector<NodeId>>& sub_nodes = scratch.sub_nodes;
  uint64_t subqueries = 0;
  for (size_t i = 0; i < batch; ++i) {
    for (uint32_t s : manifest.TouchSet(nodes[i])) {
      positions[s].push_back(static_cast<uint32_t>(i));
      sub_nodes[s].push_back(nodes[i]);
      ++subqueries;
    }
  }
  std::vector<uint32_t>& active = scratch.active;
  active.clear();
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (!sub_nodes[s].empty()) active.push_back(s);
  }

  // Root span of this batch; per-shard dispatch spans hang off it so a
  // span dump reconstructs the fan-out of one slow batch. The id is
  // surfaced through GatherStats for callers that log their own traces.
  const CoordObs& obs = Obs();
  obs.batches->Add(1);
  obs.subqueries->Add(subqueries);
  obs::ScopedSpan batch_span(&obs::MetricsRegistry::Global(), "coord.batch",
                             /*parent=*/0, obs.batch_seconds, batch);
  if (stats != nullptr) stats->span_id = batch_span.id();

  std::vector<ShardAnswer>& answers = scratch.answers;
  const auto dispatch_one = [&](uint32_t s) {
    obs::ScopedSpan dispatch_span(&obs::MetricsRegistry::Global(),
                                  "coord.dispatch", batch_span.id(),
                                  Obs().dispatch_seconds, s);
    WallTimer timer;
    ShardAnswer& a = answers[s];
    a.status = Status::OK();
    SnapshotRegistry::Snapshot snap = epoch->shards[s]->Current();
    if (snap == nullptr) {
      a.status = Status::NotFound("shard " + std::to_string(s) +
                                  " has no published snapshot");
    } else if constexpr (kDegreesOnly) {
      a.status = snap->DegreeBatch(sub_nodes[s], &a.degrees);
    } else {
      a.status = snap->NeighborsBatch(sub_nodes[s], &a.result);
    }
    a.seconds = timer.Seconds();
  };

  if (options_.pool != nullptr && options_.pool->size() > 1 &&
      active.size() > 1) {
    options_.pool->Run(active.size(), [&](uint64_t t, unsigned) {
      dispatch_one(active[t]);
    });
  } else {
    for (uint32_t s : active) dispatch_one(s);
  }

  // Account the fan-out and collect casualties before stitching. Budget
  // and failure accounting always reaches the registry, whether or not
  // the caller asked for GatherStats.
  Status first_failure;
  uint32_t first_failed_shard = 0;
  for (uint32_t s : active) {
    const ShardAnswer& a = answers[s];
    const bool over_budget = options_.shard_time_budget_seconds > 0 &&
                             a.seconds > options_.shard_time_budget_seconds;
    if (over_budget) obs.slow_shards->Add(1);
    if (stats != nullptr) {
      stats->max_shard_seconds = std::max(stats->max_shard_seconds, a.seconds);
      if (over_budget) ++stats->slow_shards;
    }
    if (!a.status.ok()) {
      if (stats != nullptr) stats->degraded.emplace_back(s, a.status);
      if (first_failure.ok()) {
        first_failure = a.status;
        first_failed_shard = s;
      }
    }
  }
  if (stats != nullptr) {
    stats->shards_dispatched = static_cast<uint32_t>(active.size());
    stats->subqueries = subqueries;
  }
  if (!first_failure.ok()) {
    if (options_.allow_degraded) {
      obs.degraded_batches->Add(1);
    } else {
      obs.failed_batches->Add(1);
    }
  }
  if (!first_failure.ok() && !options_.allow_degraded) {
    if constexpr (kDegreesOnly) {
      degrees->clear();
    } else {
      out->neighbors.clear();
      out->offsets.clear();
    }
    return Status::IOError("shard " + std::to_string(first_failed_shard) +
                           " failed: " + first_failure.ToString());
  }

  // Gather: per-shard contributions are disjoint (one owner per edge),
  // so degrees add and neighbor lists concatenate; the final ascending
  // sort per position is what makes the output canonical and
  // byte-comparable to a single box regardless of shard count.
  WallTimer stitch_timer;
  if constexpr (kDegreesOnly) {
    degrees->assign(batch, 0);
    for (uint32_t s : active) {
      const ShardAnswer& a = answers[s];
      if (!a.status.ok()) continue;
      for (size_t k = 0; k < a.degrees.size(); ++k) {
        (*degrees)[positions[s][k]] += a.degrees[k];
      }
    }
  } else {
    out->offsets.assign(batch + 1, 0);
    for (uint32_t s : active) {
      const ShardAnswer& a = answers[s];
      if (!a.status.ok()) continue;
      for (size_t k = 0; k < a.result.size(); ++k) {
        out->offsets[positions[s][k] + 1] += a.result[k].size();
      }
    }
    for (size_t i = 0; i < batch; ++i) {
      out->offsets[i + 1] += out->offsets[i];
    }
    out->neighbors.resize(out->offsets[batch]);
    std::vector<uint64_t>& cursor = scratch.cursor;
    cursor.assign(out->offsets.begin(), out->offsets.end() - 1);
    for (uint32_t s : active) {
      const ShardAnswer& a = answers[s];
      if (!a.status.ok()) continue;
      for (size_t k = 0; k < a.result.size(); ++k) {
        const std::span<const NodeId> src = a.result[k];
        std::copy(src.begin(), src.end(),
                  out->neighbors.begin() + cursor[positions[s][k]]);
        cursor[positions[s][k]] += src.size();
      }
    }
    // Canonicalize: every list ascending. Dispatch leaves sub-answers in
    // the shards' natural emission order (different summaries emit in
    // different orders, so sorting there would still need a re-sort at
    // boundary positions — paying once here is strictly less work), and
    // positions are independent, so the pass rides the pool when one is
    // available. Disjoint position ranges write disjoint slices of
    // out->neighbors.
    const auto sort_range = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        std::sort(out->neighbors.begin() + out->offsets[i],
                  out->neighbors.begin() + out->offsets[i + 1]);
      }
    };
    if (options_.pool != nullptr && options_.pool->size() > 1 && batch > 512) {
      options_.pool->ParallelFor(
          batch, /*grain=*/256,
          [&](uint64_t begin, uint64_t end, unsigned) {
            sort_range(begin, end);
          });
    } else {
      sort_range(0, batch);
    }
  }
  const double stitch_seconds = stitch_timer.Seconds();
  obs.stitch_seconds->Observe(stitch_seconds);
  if (stats != nullptr) stats->stitch_seconds = stitch_seconds;
  return Status::OK();
}

Status Coordinator::NeighborsBatch(std::span<const NodeId> nodes,
                                   BatchResult* out,
                                   GatherStats* stats) const {
  return RunScatterGather<false>(nodes, out, nullptr, stats);
}

Status Coordinator::DegreeBatch(std::span<const NodeId> nodes,
                                std::vector<uint64_t>* degrees,
                                GatherStats* stats) const {
  return RunScatterGather<true>(nodes, nullptr, degrees, stats);
}

}  // namespace slugger::dist
