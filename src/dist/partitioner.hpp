// slugger::dist — deterministic edge-cut partitioning of an input graph
// into N shards (ISSUE 8, tentpole part 1).
//
// PartitionGraph assigns every node a home shard under one of three
// deterministic strategies, derives edge ownership via the manifest's
// smaller-endpoint rule, and returns the ShardManifest the rest of the
// pipeline (ShardSummarizer, Coordinator) consumes. Determinism is a
// hard contract: the same graph and options always produce the same
// manifest, byte for byte — rebalancing audits and the dist_test
// round-trip depend on it. No randomness, no iteration-order hazards.
#ifndef SLUGGER_DIST_PARTITIONER_HPP_
#define SLUGGER_DIST_PARTITIONER_HPP_

#include <cstdint>

#include "dist/manifest.hpp"
#include "graph/graph.hpp"
#include "util/status.hpp"

namespace slugger::dist {

struct PartitionOptions {
  /// Number of shards; must be >= 1 (one shard degenerates to the
  /// single-box pipeline and is the agreement baseline of dist_test).
  uint32_t num_shards = 4;

  /// kContiguous keeps node-id locality (good for id-clustered graphs,
  /// cheapest to compute), kHashed spreads hubs uniformly, and
  /// kBalancedDegree greedily equalizes summed degree per shard — the
  /// default, because owned-edge balance is what bounds the slowest
  /// shard in both summarization and query fan-out.
  PartitionStrategy strategy = PartitionStrategy::kBalancedDegree;
};

/// Partitions g into options.num_shards shards. InvalidArgument when
/// num_shards is 0 or exceeds max(1, num_nodes) — a shard with no
/// possible nodes could never own an edge and only distorts skew
/// accounting.
StatusOr<ShardManifest> PartitionGraph(const graph::Graph& g,
                                       const PartitionOptions& options = {});

}  // namespace slugger::dist

#endif  // SLUGGER_DIST_PARTITIONER_HPP_
