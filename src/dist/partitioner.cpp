#include "dist/partitioner.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "util/random.hpp"

namespace slugger::dist {

namespace {

std::vector<uint32_t> AssignContiguous(NodeId n, uint32_t shards) {
  std::vector<uint32_t> node_shard(n);
  for (NodeId v = 0; v < n; ++v) {
    node_shard[v] = static_cast<uint32_t>(
        static_cast<uint64_t>(v) * shards / std::max<NodeId>(n, 1));
  }
  return node_shard;
}

std::vector<uint32_t> AssignHashed(NodeId n, uint32_t shards) {
  std::vector<uint32_t> node_shard(n);
  for (NodeId v = 0; v < n; ++v) {
    node_shard[v] = static_cast<uint32_t>(Mix64(v) % shards);
  }
  return node_shard;
}

/// Greedy longest-processing-time balance on degree: heaviest nodes
/// first, each to the currently lightest shard. Ties break by node id
/// (the sort) and by shard id (the heap comparator), so the assignment
/// is a pure function of the degree sequence.
std::vector<uint32_t> AssignBalancedDegree(const graph::Graph& g,
                                           uint32_t shards) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0u);
  std::sort(by_degree.begin(), by_degree.end(), [&g](NodeId a, NodeId b) {
    const uint32_t da = g.Degree(a);
    const uint32_t db = g.Degree(b);
    if (da != db) return da > db;
    return a < b;
  });

  using Load = std::pair<uint64_t, uint32_t>;  // (summed degree, shard)
  std::priority_queue<Load, std::vector<Load>, std::greater<Load>> heap;
  for (uint32_t s = 0; s < shards; ++s) heap.push({0, s});

  std::vector<uint32_t> node_shard(n);
  for (NodeId v : by_degree) {
    Load lightest = heap.top();
    heap.pop();
    node_shard[v] = lightest.second;
    lightest.first += g.Degree(v);
    heap.push(lightest);
  }
  return node_shard;
}

}  // namespace

StatusOr<ShardManifest> PartitionGraph(const graph::Graph& g,
                                       const PartitionOptions& options) {
  const NodeId n = g.num_nodes();
  const uint32_t shards = options.num_shards;
  if (shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  if (shards > std::max<NodeId>(n, 1)) {
    return Status::InvalidArgument(
        "num_shards (" + std::to_string(shards) + ") exceeds node count (" +
        std::to_string(n) + "); empty shards cannot own edges");
  }

  std::vector<uint32_t> node_shard;
  switch (options.strategy) {
    case PartitionStrategy::kContiguous:
      node_shard = AssignContiguous(n, shards);
      break;
    case PartitionStrategy::kHashed:
      node_shard = AssignHashed(n, shards);
      break;
    case PartitionStrategy::kBalancedDegree:
      node_shard = AssignBalancedDegree(g, shards);
      break;
    default:
      return Status::InvalidArgument("unknown partition strategy");
  }

  // Touch sets: for each node, the deduplicated owners of its incident
  // edges. The owner of {u, v} is the smaller endpoint's home, so v's
  // incident owners are shard(v) for neighbors above v and shard(u) for
  // neighbors below — one pass over each sorted adjacency list.
  std::vector<uint64_t> touch_offsets(static_cast<size_t>(n) + 1, 0);
  std::vector<uint32_t> touch_shards;
  std::vector<uint32_t> row;
  for (NodeId v = 0; v < n; ++v) {
    row.clear();
    for (NodeId u : g.Neighbors(v)) {
      row.push_back(node_shard[std::min(u, v)]);
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    touch_shards.insert(touch_shards.end(), row.begin(), row.end());
    touch_offsets[v + 1] = touch_shards.size();
  }

  std::vector<ShardStats> stats(shards);
  for (NodeId v = 0; v < n; ++v) {
    ShardStats& home = stats[node_shard[v]];
    ++home.num_nodes;
    home.total_degree += g.Degree(v);
  }
  for (const Edge& e : g.Edges()) {
    ShardStats& owner = stats[node_shard[e.first]];
    ++owner.owned_edges;
    if (node_shard[e.first] == node_shard[e.second]) {
      ++owner.internal_edges;
    } else {
      ++owner.boundary_edges;
    }
  }

  return ShardManifest(shards, g.num_edges(), options.strategy,
                       std::move(node_shard), std::move(touch_offsets),
                       std::move(touch_shards), std::move(stats));
}

}  // namespace slugger::dist
