// slugger::dist::ShardManifest — the shared contract of a sharded
// deployment (ISSUE 8). The partitioner produces one; the shard
// summarizer and the coordinator both consume it and nothing else, so
// the three agree on exactly one question: which shard owns which edge.
//
// Ownership rule (deterministic, total): a canonical edge {u, v} with
// u <= v is owned by the home shard of u, its smaller endpoint. An
// internal edge (both endpoints homed on one shard) trivially lands on
// that shard; a boundary edge lands on the smaller endpoint's home.
// Every edge therefore belongs to exactly one shard — per-shard
// summaries never overlap, so scatter-gather answers are disjoint
// unions and degrees add across shards.
//
// The routing side of the same rule: the edges incident to node v live
// in v's own home shard plus the home shards of v's smaller-id
// boundary neighbors. The manifest precomputes that set per node (the
// "touch set", stored as a CSR over shard ids) so the coordinator
// dispatches each query only to shards that can contribute — most
// nodes touch exactly one shard; only boundary nodes fan out.
//
// A manifest is immutable after construction and safe to share across
// any number of reader threads.
#ifndef SLUGGER_DIST_MANIFEST_HPP_
#define SLUGGER_DIST_MANIFEST_HPP_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.hpp"
#include "util/types.hpp"

namespace slugger::dist {

/// How the partitioner assigned nodes to home shards (recorded in the
/// manifest so a rebalance or an audit can reproduce the run).
enum class PartitionStrategy : uint8_t {
  kContiguous = 0,      ///< equal-width node-id ranges
  kHashed = 1,          ///< multiplicative hash of the node id
  kBalancedDegree = 2,  ///< greedy: heaviest nodes first, lightest shard
};

/// Per-shard accounting the partitioner computes while streaming edges;
/// the coordinator's rebalance policy reads these (and the live
/// snapshots' summary costs) to decide when the partition has skewed.
struct ShardStats {
  uint64_t num_nodes = 0;       ///< nodes homed on this shard
  uint64_t owned_edges = 0;     ///< edges this shard summarizes
  uint64_t internal_edges = 0;  ///< owned edges with both endpoints homed here
  uint64_t boundary_edges = 0;  ///< owned edges crossing a shard boundary
  uint64_t total_degree = 0;    ///< summed degree of homed nodes

  bool operator==(const ShardStats&) const = default;
};

class ShardManifest {
 public:
  ShardManifest() = default;

  /// Assembled by the partitioner: `node_shard[v]` is v's home shard
  /// (every entry < num_shards), `touch_offsets`/`touch_shards` the CSR
  /// of per-node touch sets (each row sorted ascending, deduplicated).
  ShardManifest(uint32_t num_shards, uint64_t num_edges,
                PartitionStrategy strategy, std::vector<uint32_t> node_shard,
                std::vector<uint64_t> touch_offsets,
                std::vector<uint32_t> touch_shards,
                std::vector<ShardStats> shard_stats);

  uint32_t num_shards() const { return num_shards_; }
  NodeId num_nodes() const { return static_cast<NodeId>(node_shard_.size()); }
  uint64_t num_edges() const { return num_edges_; }
  PartitionStrategy strategy() const { return strategy_; }

  /// Home shard of v (v must be < num_nodes()).
  uint32_t HomeOf(NodeId v) const { return node_shard_[v]; }

  /// The whole node→home-shard map, for bulk consumers (the per-shard
  /// edge streams in graph/partition_stream.hpp take exactly this).
  std::span<const uint32_t> node_map() const { return node_shard_; }

  /// Owner of a canonical edge {first, second} with first <= second:
  /// the home shard of the smaller endpoint. THE ownership rule — every
  /// producer and consumer of per-shard edge sets must route through
  /// this function (or TouchSet, which is derived from it).
  uint32_t OwnerOf(const Edge& e) const { return node_shard_[e.first]; }

  /// Shards holding at least one edge incident to v, sorted ascending.
  /// Empty for isolated nodes. v must be < num_nodes().
  std::span<const uint32_t> TouchSet(NodeId v) const {
    return std::span<const uint32_t>(touch_shards_)
        .subspan(touch_offsets_[v], touch_offsets_[v + 1] - touch_offsets_[v]);
  }

  /// True when some edge incident to v is owned outside v's home shard
  /// (equivalently, |TouchSet(v)| > 1, or == 1 but not the home).
  bool IsBoundary(NodeId v) const {
    const std::span<const uint32_t> touch = TouchSet(v);
    return touch.size() > 1 || (touch.size() == 1 && touch[0] != HomeOf(v));
  }

  const std::vector<ShardStats>& shard_stats() const { return shard_stats_; }

  /// Owned-edge skew of the partition: max over shards of owned_edges
  /// divided by the even-split mean (1.0 = perfectly balanced). 0 shards
  /// or 0 edges report 1.0 — nothing to skew.
  double EdgeSkew() const;

  bool operator==(const ShardManifest&) const = default;

  /// Compact varint image (magic + version + payload + checksum); the
  /// persistence story of a deployment's partition decision, analogous
  /// to slugger::storage for summaries.
  std::string Serialize() const;

  /// Parses an untrusted image: every count is bounded before it sizes
  /// an allocation, every shard id is range-checked, the CSR must be
  /// monotone, and the trailing checksum must match — Corruption /
  /// InvalidArgument on any violation, never a crash.
  static StatusOr<ShardManifest> Deserialize(const std::string& bytes);

  /// File round-trip helpers over Serialize/Deserialize.
  Status Save(const std::string& path) const;
  static StatusOr<ShardManifest> Load(const std::string& path);

 private:
  uint32_t num_shards_ = 0;
  uint64_t num_edges_ = 0;
  PartitionStrategy strategy_ = PartitionStrategy::kContiguous;
  std::vector<uint32_t> node_shard_;     ///< size num_nodes
  std::vector<uint64_t> touch_offsets_;  ///< size num_nodes + 1 (0 when empty)
  std::vector<uint32_t> touch_shards_;   ///< CSR payload, rows sorted
  std::vector<ShardStats> shard_stats_;  ///< size num_shards
};

}  // namespace slugger::dist

#endif  // SLUGGER_DIST_MANIFEST_HPP_
