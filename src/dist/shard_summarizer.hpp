// slugger::dist::ShardSummarizer — the offline half of the sharded
// pipeline (ISSUE 8, tentpole part 2): run Engine::Summarize once per
// shard, concurrently on a shared thread pool, and hand back one
// CompressedGraph per shard ready for the coordinator's registries.
//
// Each shard's input is BuildShardGraph(g, manifest, s): the global
// node-id space over exactly the edges shard s owns, built inside the
// shard's task and dropped as soon as its summary exists — peak memory
// is the source graph plus the in-flight shards, not N copies.
//
// Hooks fan IN across shards: a single ShardProgress observer receives
// every shard's per-iteration events (serialized by an internal mutex,
// so the callback needs no locking of its own), and one CancelToken
// stops all shards cooperatively — each returns its lossless
// best-so-far summary, exactly like a single-box cancelled run.
#ifndef SLUGGER_DIST_SHARD_SUMMARIZER_HPP_
#define SLUGGER_DIST_SHARD_SUMMARIZER_HPP_

#include <cstdint>
#include <functional>
#include <vector>

#include "api/compressed_graph.hpp"
#include "api/engine.hpp"
#include "dist/manifest.hpp"
#include "graph/graph.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace slugger::dist {

/// Progress fan-in: fired after every completed iteration of any
/// shard's run, tagged with the shard id. Invocations are serialized
/// across shards; ordering between different shards is unspecified.
using ShardProgress =
    std::function<void(uint32_t shard, const core::ProgressEvent&)>;

struct ShardSummarizeOptions {
  /// Per-shard engine knobs. num_threads is forced to 1 inside each
  /// shard run — parallelism comes from running shards concurrently on
  /// `pool`, which composes better than nesting pools and keeps every
  /// shard's summary byte-deterministic.
  EngineOptions engine;

  /// Shards run as tasks on this pool (work-stealing balances uneven
  /// shard sizes). Null: shards run sequentially on the calling thread.
  ThreadPool* pool = nullptr;

  ShardProgress progress;
  const CancelToken* cancel = nullptr;
};

class ShardSummarizer {
 public:
  /// Validates the engine options once, like slugger::Engine.
  explicit ShardSummarizer(ShardSummarizeOptions options = {});

  const Status& status() const { return options_status_; }

  /// Summarizes every shard of `manifest` over `g` (the same graph the
  /// manifest was built from: num_nodes must match). Returns one
  /// CompressedGraph per shard, indexed by shard id. The first shard
  /// failure wins (others still run to completion); cancellation is not
  /// an error and yields lossless best-so-far summaries for all shards.
  StatusOr<std::vector<CompressedGraph>> SummarizeShards(
      const graph::Graph& g, const ShardManifest& manifest);

 private:
  ShardSummarizeOptions options_;
  Status options_status_;
};

}  // namespace slugger::dist

#endif  // SLUGGER_DIST_SHARD_SUMMARIZER_HPP_
