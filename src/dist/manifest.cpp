#include "dist/manifest.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <utility>

#include "storage/format.hpp"
#include "util/varint.hpp"

namespace slugger::dist {

namespace {

/// Leading bytes of a serialized manifest. Distinct from both summary
/// formats so a mixed-up path fails loudly at the magic, not mid-parse.
constexpr uint8_t kManifestMagic[8] = {'S', 'L', 'G', 'S', 'H', 'R', 'D', '1'};
constexpr uint64_t kManifestVersion = 1;

/// Shard-count ceiling of the serialized format. Far above any
/// in-process deployment (the coordinator dispatches one sub-batch per
/// shard); its job is bounding hostile counts before they size loops.
constexpr uint64_t kMaxShards = 65536;

Status CorruptManifest(const char* what) {
  return Status::Corruption(std::string("shard manifest: ") + what);
}

}  // namespace

ShardManifest::ShardManifest(uint32_t num_shards, uint64_t num_edges,
                             PartitionStrategy strategy,
                             std::vector<uint32_t> node_shard,
                             std::vector<uint64_t> touch_offsets,
                             std::vector<uint32_t> touch_shards,
                             std::vector<ShardStats> shard_stats)
    : num_shards_(num_shards),
      num_edges_(num_edges),
      strategy_(strategy),
      node_shard_(std::move(node_shard)),
      touch_offsets_(std::move(touch_offsets)),
      touch_shards_(std::move(touch_shards)),
      shard_stats_(std::move(shard_stats)) {
  assert(touch_offsets_.size() == node_shard_.size() + 1 ||
         (node_shard_.empty() && touch_offsets_.empty()));
  assert(shard_stats_.size() == num_shards_);
}

double ShardManifest::EdgeSkew() const {
  if (num_shards_ == 0 || num_edges_ == 0) return 1.0;
  uint64_t max_owned = 0;
  for (const ShardStats& s : shard_stats_) {
    max_owned = std::max(max_owned, s.owned_edges);
  }
  const double mean =
      static_cast<double>(num_edges_) / static_cast<double>(num_shards_);
  return static_cast<double>(max_owned) / mean;
}

std::string ShardManifest::Serialize() const {
  std::string out(reinterpret_cast<const char*>(kManifestMagic),
                  sizeof(kManifestMagic));
  PutVarint64(&out, kManifestVersion);
  PutVarint64(&out, num_shards_);
  PutVarint64(&out, node_shard_.size());
  PutVarint64(&out, num_edges_);
  PutVarint64(&out, static_cast<uint64_t>(strategy_));
  for (uint32_t s : node_shard_) PutVarint64(&out, s);
  PutVarint64(&out, touch_shards_.size());
  for (NodeId v = 0; v < node_shard_.size(); ++v) {
    const std::span<const uint32_t> row = TouchSet(v);
    PutVarint64(&out, row.size());
    uint32_t prev = 0;
    for (uint32_t s : row) {
      // Rows are sorted ascending and deduplicated, so consecutive
      // deltas are >= 1 except the first; encode against prev directly.
      PutVarint64(&out, s - prev);
      prev = s;
    }
  }
  for (const ShardStats& s : shard_stats_) {
    PutVarint64(&out, s.num_nodes);
    PutVarint64(&out, s.owned_edges);
    PutVarint64(&out, s.internal_edges);
    PutVarint64(&out, s.boundary_edges);
    PutVarint64(&out, s.total_degree);
  }
  uint8_t sum[8];
  storage::PutLE64(sum, storage::Checksum64(
                            reinterpret_cast<const uint8_t*>(out.data()),
                            out.size()));
  out.append(reinterpret_cast<const char*>(sum), sizeof(sum));
  return out;
}

StatusOr<ShardManifest> ShardManifest::Deserialize(const std::string& bytes) {
  if (bytes.size() < sizeof(kManifestMagic) + 8 ||
      std::memcmp(bytes.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return CorruptManifest("bad magic");
  }
  const size_t payload = bytes.size() - 8;
  const uint64_t declared = storage::GetLE64(
      reinterpret_cast<const uint8_t*>(bytes.data()) + payload);
  const uint64_t actual = storage::Checksum64(
      reinterpret_cast<const uint8_t*>(bytes.data()), payload);
  if (declared != actual) return CorruptManifest("checksum mismatch");

  VarintReader reader(bytes.data() + sizeof(kManifestMagic),
                      payload - sizeof(kManifestMagic));
  uint64_t version, num_shards, num_nodes, num_edges, strategy;
  Status st = reader.Get(&version);
  if (!st.ok()) return st;
  if (version != kManifestVersion) return CorruptManifest("unknown version");
  if (!(st = reader.Get(&num_shards)).ok()) return st;
  if (!(st = reader.Get(&num_nodes)).ok()) return st;
  if (!(st = reader.Get(&num_edges)).ok()) return st;
  if (!(st = reader.Get(&strategy)).ok()) return st;
  if (num_shards == 0 || num_shards > kMaxShards) {
    return CorruptManifest("shard count out of range");
  }
  if (num_nodes > kMaxNodes) return CorruptManifest("node count out of range");
  if (strategy > static_cast<uint64_t>(PartitionStrategy::kBalancedDegree)) {
    return CorruptManifest("unknown partition strategy");
  }
  // Every remaining field costs at least one encoded byte, so the buffer
  // length bounds all counts below before any of them sizes a vector.
  if (num_nodes > reader.remaining()) {
    return CorruptManifest("node map exceeds buffer");
  }

  std::vector<uint32_t> node_shard(num_nodes);
  for (uint64_t v = 0; v < num_nodes; ++v) {
    uint64_t s;
    if (!(st = reader.Get(&s)).ok()) return st;
    if (s >= num_shards) return CorruptManifest("home shard out of range");
    node_shard[v] = static_cast<uint32_t>(s);
  }

  uint64_t total_touch;
  if (!(st = reader.Get(&total_touch)).ok()) return st;
  if (total_touch > reader.remaining() ||
      total_touch > num_nodes * num_shards) {
    return CorruptManifest("touch-set payload exceeds buffer");
  }
  std::vector<uint64_t> touch_offsets(num_nodes + 1, 0);
  std::vector<uint32_t> touch_shards;
  touch_shards.reserve(total_touch);
  for (uint64_t v = 0; v < num_nodes; ++v) {
    uint64_t row_len;
    if (!(st = reader.Get(&row_len)).ok()) return st;
    if (row_len > num_shards) return CorruptManifest("touch row too long");
    uint64_t prev = 0;
    for (uint64_t i = 0; i < row_len; ++i) {
      uint64_t delta;
      if (!(st = reader.Get(&delta)).ok()) return st;
      if (i > 0 && delta == 0) return CorruptManifest("touch row not sorted");
      prev += delta;
      if (prev >= num_shards) return CorruptManifest("touch shard range");
      touch_shards.push_back(static_cast<uint32_t>(prev));
    }
    touch_offsets[v + 1] = touch_shards.size();
  }
  if (touch_shards.size() != total_touch) {
    return CorruptManifest("touch-set size mismatch");
  }

  std::vector<ShardStats> stats(num_shards);
  for (ShardStats& s : stats) {
    uint64_t* fields[] = {&s.num_nodes, &s.owned_edges, &s.internal_edges,
                          &s.boundary_edges, &s.total_degree};
    for (uint64_t* f : fields) {
      if (!(st = reader.Get(f)).ok()) return st;
    }
  }
  if (!reader.exhausted()) return CorruptManifest("trailing bytes");

  return ShardManifest(static_cast<uint32_t>(num_shards), num_edges,
                       static_cast<PartitionStrategy>(strategy),
                       std::move(node_shard), std::move(touch_offsets),
                       std::move(touch_shards), std::move(stats));
}

Status ShardManifest::Save(const std::string& path) const {
  const std::string bytes = Serialize();
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int closed = std::fclose(f);
  if (written != bytes.size() || closed != 0) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

StatusOr<ShardManifest> ShardManifest::Load(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IOError("read failed on " + path);
  return Deserialize(bytes);
}

}  // namespace slugger::dist
