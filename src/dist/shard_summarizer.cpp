#include "dist/shard_summarizer.hpp"

#include <string>
#include <utility>

#include "graph/partition_stream.hpp"
#include "util/sync.hpp"

namespace slugger::dist {

ShardSummarizer::ShardSummarizer(ShardSummarizeOptions options)
    : options_(std::move(options)) {
  // Shard-level parallelism owns the pool; a per-shard inner pool would
  // nest Run() calls, which ThreadPool forbids.
  options_.engine.config.num_threads = 1;
  options_status_ = options_.engine.Validate();
}

StatusOr<std::vector<CompressedGraph>> ShardSummarizer::SummarizeShards(
    const graph::Graph& g, const ShardManifest& manifest) {
  if (!options_status_.ok()) return options_status_;
  if (g.num_nodes() != manifest.num_nodes()) {
    return Status::InvalidArgument(
        "manifest was built for " + std::to_string(manifest.num_nodes()) +
        " nodes but the graph has " + std::to_string(g.num_nodes()));
  }
  const uint32_t shards = manifest.num_shards();
  std::vector<CompressedGraph> result(shards);
  std::vector<Status> shard_status(shards);

  // Serializes the user's progress callback across shard tasks; local to
  // this call, so there are no guarded members — the lambda below is the
  // only code that touches what it protects (the callback itself).
  Mutex progress_mu;
  const std::span<const uint32_t> node_shard = manifest.node_map();

  const auto summarize_one = [&](uint32_t shard) {
    // One Engine per shard: Summarize is not reentrant per Engine, and
    // a fresh single-threaded engine keeps every shard deterministic
    // regardless of how tasks land on workers.
    Engine engine(options_.engine);
    RunOptions run;
    run.cancel = options_.cancel;
    if (options_.progress) {
      run.progress = [&, shard](const core::ProgressEvent& event) {
        MutexLock lock(&progress_mu);
        options_.progress(shard, event);
      };
    }
    graph::Graph shard_graph = graph::BuildShardGraph(g, node_shard, shard);
    StatusOr<CompressedGraph> summarized = engine.Summarize(shard_graph, run);
    if (summarized.ok()) {
      result[shard] = std::move(summarized).value();
    } else {
      shard_status[shard] = summarized.status();
    }
  };

  if (options_.pool != nullptr && options_.pool->size() > 1 && shards > 1) {
    options_.pool->Run(shards, [&](uint64_t shard, unsigned) {
      summarize_one(static_cast<uint32_t>(shard));
    });
  } else {
    for (uint32_t shard = 0; shard < shards; ++shard) summarize_one(shard);
  }

  for (uint32_t shard = 0; shard < shards; ++shard) {
    if (!shard_status[shard].ok()) {
      return Status::InvalidArgument("shard " + std::to_string(shard) +
                                     " failed: " +
                                     shard_status[shard].ToString());
    }
  }
  return result;
}

}  // namespace slugger::dist
