// Core integral type aliases shared across the library.
#ifndef SLUGGER_UTIL_TYPES_HPP_
#define SLUGGER_UTIL_TYPES_HPP_

#include <cstdint>
#include <utility>

namespace slugger {

/// Identifier of a subnode (a vertex of the input graph).
using NodeId = uint32_t;

/// Identifier of a supernode (a set of subnodes, a vertex of the summary).
/// The first |V| supernode ids coincide with subnode ids (singleton leaves).
using SupernodeId = uint32_t;

/// Sentinel for "no node" / "no parent".
inline constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

/// Sign of a superedge: +1 for a p-edge, -1 for an n-edge.
using EdgeSign = int8_t;

/// An undirected subedge, canonicalized so that first <= second.
using Edge = std::pair<NodeId, NodeId>;

/// Canonicalizes an undirected edge (order endpoints).
inline Edge MakeEdge(NodeId u, NodeId v) {
  return u <= v ? Edge{u, v} : Edge{v, u};
}

}  // namespace slugger

#endif  // SLUGGER_UTIL_TYPES_HPP_
