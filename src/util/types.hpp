// Core integral type aliases shared across the library.
#ifndef SLUGGER_UTIL_TYPES_HPP_
#define SLUGGER_UTIL_TYPES_HPP_

#include <atomic>
#include <cstdint>
#include <utility>

namespace slugger {

/// Identifier of a subnode (a vertex of the input graph).
using NodeId = uint32_t;

/// Identifier of a supernode (a set of subnodes, a vertex of the summary).
/// The first |V| supernode ids coincide with subnode ids (singleton leaves).
using SupernodeId = uint32_t;

/// Sentinel for "no node" / "no parent".
inline constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

/// Largest representable leaf count: summarizing n leaves can allocate up
/// to n - 1 fresh supernode ids, so 2n - 2 must stay below kInvalidId.
/// Shared by Engine::Summarize (input gate) and DeserializeSummary
/// (untrusted-buffer gate) so a file that loads also round-trips.
inline constexpr NodeId kMaxNodes = (kInvalidId >> 1) + 1;

/// Sign of a superedge: +1 for a p-edge, -1 for an n-edge.
using EdgeSign = int8_t;

/// An undirected subedge, canonicalized so that first <= second.
using Edge = std::pair<NodeId, NodeId>;

/// Canonicalizes an undirected edge (order endpoints).
inline Edge MakeEdge(NodeId u, NodeId v) {
  return u <= v ? Edge{u, v} : Edge{v, u};
}

/// A uint64 counter whose increments are atomic (relaxed) so concurrent
/// committers on disjoint lock shards may bump it without a data race, yet
/// which copies like a plain integer (reads are only performed in
/// single-writer phases, so relaxed ordering suffices).
class RelaxedCounter {
 public:
  RelaxedCounter(uint64_t v = 0) : v_(v) {}  // NOLINT(runtime/explicit)
  RelaxedCounter(const RelaxedCounter& o) : v_(o.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  uint64_t load() const { return v_.load(std::memory_order_relaxed); }
  operator uint64_t() const { return load(); }

  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator--() {
    v_.fetch_sub(1, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<uint64_t> v_;
};

}  // namespace slugger

#endif  // SLUGGER_UTIL_TYPES_HPP_
