// Cooperative cancellation: a one-way flag a service thread fires and a
// long-running computation polls at safe points.
#ifndef SLUGGER_UTIL_CANCEL_HPP_
#define SLUGGER_UTIL_CANCEL_HPP_

#include <atomic>

namespace slugger {

/// One-shot cancellation flag shared between the thread driving a
/// long-running call and any thread that wants to stop it. Firing is
/// advisory: the computation polls `cancelled()` at boundaries where its
/// state is consistent (SLUGGER's summary is lossless between merges, so
/// a cancelled run still returns a valid best-so-far summary).
///
/// Thread-safe; a token may be reused across runs via Reset() as long as
/// no run is in flight.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// True once Cancel() has been called.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Re-arms the token for a new run. Only call between runs.
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Null-tolerant poll, for call sites holding an optional token pointer.
inline bool IsCancelled(const CancelToken* token) {
  return token != nullptr && token->cancelled();
}

}  // namespace slugger

#endif  // SLUGGER_UTIL_CANCEL_HPP_
