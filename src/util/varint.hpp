// LEB128 variable-length integer coding for compact binary serialization.
#ifndef SLUGGER_UTIL_VARINT_HPP_
#define SLUGGER_UTIL_VARINT_HPP_

#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace slugger {

/// Appends an unsigned LEB128 encoding of `value` to `out`.
void PutVarint64(std::string* out, uint64_t value);

/// Zig-zag + LEB128 for signed values.
void PutVarintSigned64(std::string* out, int64_t value);

/// Cursor over a byte buffer for varint decoding.
class VarintReader {
 public:
  VarintReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit VarintReader(const std::string& buf)
      : VarintReader(buf.data(), buf.size()) {}

  /// Reads an unsigned varint into *value.
  Status Get(uint64_t* value);

  /// Reads a zig-zag signed varint into *value.
  Status GetSigned(int64_t* value);

  /// Reads `n` raw bytes into *out.
  Status GetBytes(size_t n, std::string* out);

  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ >= size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace slugger

#endif  // SLUGGER_UTIL_VARINT_HPP_
