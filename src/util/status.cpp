#include "util/status.hpp"

namespace slugger {

std::string Status::ToString() const {
  const char* name = "Unknown";
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kCorruption:
      name = "Corruption";
      break;
    case Code::kIOError:
      name = "IOError";
      break;
    case Code::kOutOfRange:
      name = "OutOfRange";
      break;
    case Code::kAborted:
      name = "Aborted";
      break;
  }
  std::string out(name);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace slugger
