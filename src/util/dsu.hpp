// Disjoint-set union with path halving and union by size.
#ifndef SLUGGER_UTIL_DSU_HPP_
#define SLUGGER_UTIL_DSU_HPP_

#include <cstdint>
#include <numeric>
#include <vector>

namespace slugger {

/// Classic union-find over dense uint32 ids.
class Dsu {
 public:
  explicit Dsu(uint32_t n = 0) { Reset(n); }

  void Reset(uint32_t n) {
    parent_.resize(n);
    std::iota(parent_.begin(), parent_.end(), 0u);
    size_.assign(n, 1);
  }

  /// Pre-allocates capacity for `n` total elements so later Add() calls
  /// never reallocate. Required before concurrent readers (FindConst) may
  /// overlap with Add() on other elements: without reallocation, Add only
  /// writes fresh entries, which no reader can reach yet.
  void Reserve(uint32_t n) {
    parent_.reserve(n);
    size_.reserve(n);
  }

  /// Appends a fresh singleton set and returns its id.
  uint32_t Add() {
    uint32_t id = static_cast<uint32_t>(parent_.size());
    parent_.push_back(id);
    size_.push_back(1);
    return id;
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Representative of x without path compression. Usable from concurrent
  /// readers while no writer (Find / Unite / Add) is active; union by size
  /// keeps the walk O(log n) even without compression.
  uint32_t FindConst(uint32_t x) const {
    while (parent_[x] != x) x = parent_[x];
    return x;
  }

  /// Unites the sets of a and b; returns the surviving representative.
  uint32_t Unite(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return a;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return a;
  }

  bool Same(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  uint32_t SetSize(uint32_t x) { return size_[Find(x)]; }

  uint32_t universe_size() const { return static_cast<uint32_t>(parent_.size()); }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace slugger

#endif  // SLUGGER_UTIL_DSU_HPP_
