// Hash mixers and keyed hash families used by min-hashing and hash tables.
#ifndef SLUGGER_UTIL_HASHING_HPP_
#define SLUGGER_UTIL_HASHING_HPP_

#include <cstdint>

#include "util/random.hpp"

namespace slugger {

/// Packs an unordered pair of 32-bit ids into a canonical 64-bit key.
inline uint64_t PairKey(uint32_t a, uint32_t b) {
  if (a > b) {
    uint32_t t = a;
    a = b;
    b = t;
  }
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// First component of a PairKey.
inline uint32_t PairFirst(uint64_t key) { return static_cast<uint32_t>(key >> 32); }

/// Second component of a PairKey.
inline uint32_t PairSecond(uint64_t key) { return static_cast<uint32_t>(key); }

/// A keyed hash family: each `seed` selects an independent-looking hash of
/// 32-bit ids into 64-bit values. Used for per-iteration min-hash shingles.
class KeyedHash {
 public:
  explicit KeyedHash(uint64_t seed) : key_(Mix64(seed ^ 0xA24BAED4963EE407ull)) {}

  uint64_t operator()(uint32_t x) const {
    return Mix64(key_ ^ (static_cast<uint64_t>(x) * 0x9E3779B97F4A7C15ull));
  }

 private:
  uint64_t key_;
};

}  // namespace slugger

#endif  // SLUGGER_UTIL_HASHING_HPP_
