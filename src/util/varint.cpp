#include "util/varint.hpp"

namespace slugger {

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void PutVarintSigned64(std::string* out, int64_t value) {
  uint64_t zz = (static_cast<uint64_t>(value) << 1) ^
                static_cast<uint64_t>(value >> 63);
  PutVarint64(out, zz);
}

Status VarintReader::Get(uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (pos_ < size_) {
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift == 63 && byte > 1) {
      return Status::Corruption("varint64 overflow");
    }
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return Status::OK();
    }
    shift += 7;
    if (shift > 63) return Status::Corruption("varint64 too long");
  }
  return Status::Corruption("truncated varint64");
}

Status VarintReader::GetSigned(int64_t* value) {
  uint64_t zz = 0;
  Status s = Get(&zz);
  if (!s.ok()) return s;
  *value = static_cast<int64_t>(zz >> 1) ^ -static_cast<int64_t>(zz & 1);
  return Status::OK();
}

Status VarintReader::GetBytes(size_t n, std::string* out) {
  if (remaining() < n) return Status::Corruption("truncated byte run");
  out->assign(data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

}  // namespace slugger
