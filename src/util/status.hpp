// Minimal Status / StatusOr error-handling vocabulary (RocksDB-style).
//
// Fallible operations (IO, parsing, deserialization) return Status or
// StatusOr<T> instead of throwing; programming errors use assertions.
#ifndef SLUGGER_UTIL_STATUS_HPP_
#define SLUGGER_UTIL_STATUS_HPP_

#include <cassert>
#include <string>
#include <utility>

namespace slugger {

/// Result of a fallible operation: OK or an error code plus message.
///
/// [[nodiscard]] on the class makes every function returning Status (or
/// StatusOr) warn when the result is dropped; under -Werror CI legs that
/// is a build break. Genuinely fire-and-forget call sites must say so
/// with an explicit (void) cast and a comment naming where the error is
/// observed instead.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kIOError,
    kOutOfRange,
    kAborted,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "Corruption: bad magic".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value or the Status explaining why there is none.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
  }
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace slugger

#endif  // SLUGGER_UTIL_STATUS_HPP_
