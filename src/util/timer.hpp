// Wall-clock timing helper for benchmarks and progress reporting.
#ifndef SLUGGER_UTIL_TIMER_HPP_
#define SLUGGER_UTIL_TIMER_HPP_

#include <chrono>

namespace slugger {

/// Monotonic stopwatch; starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace slugger

#endif  // SLUGGER_UTIL_TIMER_HPP_
