// Open-addressing hash maps specialized for the hot paths of the library.
//
// FlatSignedMap maps uint32 keys to a small signed payload (int8 / int32)
// with linear probing, power-of-two capacity and backward-shift deletion.
// Compared to std::unordered_map it avoids per-node allocations, which
// dominate the superedge store of a summary under heavy merge churn.
#ifndef SLUGGER_UTIL_FLAT_MAP_HPP_
#define SLUGGER_UTIL_FLAT_MAP_HPP_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/random.hpp"

namespace slugger {

/// Open-addressing map from uint32 keys to V (a trivially copyable value).
/// The key 0xFFFFFFFF is reserved as the empty sentinel.
template <typename V>
class FlatMap32 {
 public:
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;

  struct Slot {
    uint32_t key;
    V value;
  };

  FlatMap32() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
  }

  /// Empties the map but keeps its capacity (no deallocation); preferred
  /// for maps that are refilled every round.
  void SoftClear() {
    if (size_ == 0) return;
    for (Slot& s : slots_) s.key = kEmpty;
    size_ = 0;
  }

  /// Inserts or overwrites; returns true if the key was newly inserted.
  bool Put(uint32_t key, V value) {
    assert(key != kEmpty);
    if (slots_.empty() || (size_ + 1) * 4 > capacity() * 3) Grow();
    size_t i = IndexFor(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == kEmpty) {
        s.key = key;
        s.value = value;
        ++size_;
        return true;
      }
      if (s.key == key) {
        s.value = value;
        return false;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Returns a pointer to the value for `key`, or nullptr if absent.
  V* Find(uint32_t key) {
    if (slots_.empty()) return nullptr;
    size_t i = IndexFor(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == kEmpty) return nullptr;
      if (s.key == key) return &s.value;
      i = (i + 1) & mask_;
    }
  }
  const V* Find(uint32_t key) const {
    return const_cast<FlatMap32*>(this)->Find(key);
  }

  bool Contains(uint32_t key) const { return Find(key) != nullptr; }

  /// Returns the value for `key`, inserting `def` first if absent.
  V& GetOrInsert(uint32_t key, V def) {
    assert(key != kEmpty);
    if (slots_.empty() || (size_ + 1) * 4 > capacity() * 3) Grow();
    size_t i = IndexFor(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == kEmpty) {
        s.key = key;
        s.value = def;
        ++size_;
        return s.value;
      }
      if (s.key == key) return s.value;
      i = (i + 1) & mask_;
    }
  }

  /// Removes `key`; returns true if it was present. Uses backward-shift
  /// deletion so probe sequences stay contiguous (no tombstones).
  bool Erase(uint32_t key) {
    if (slots_.empty()) return false;
    size_t i = IndexFor(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == kEmpty) return false;
      if (s.key == key) break;
      i = (i + 1) & mask_;
    }
    // Backward-shift: close the hole by moving displaced entries up.
    size_t hole = i;
    size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      Slot& cand = slots_[j];
      if (cand.key == kEmpty) break;
      size_t home = IndexFor(cand.key);
      // cand may move into the hole if its home position does not lie
      // (cyclically) strictly after the hole on the probe path to j.
      bool reachable;
      if (j > hole) {
        reachable = home <= hole || home > j;
      } else {  // wrapped
        reachable = home <= hole && home > j;
      }
      if (reachable) {
        slots_[hole] = cand;
        hole = j;
      }
    }
    slots_[hole].key = kEmpty;
    --size_;
    return true;
  }

  /// Invokes fn(key, value) for every entry, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != kEmpty) fn(s.key, s.value);
    }
  }

  /// Invokes fn(key, value&) for every entry; values may be mutated.
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.key != kEmpty) fn(s.key, s.value);
    }
  }

  size_t capacity() const { return slots_.size(); }

 private:
  size_t IndexFor(uint32_t key) const {
    return static_cast<size_t>(Mix64(key)) & mask_;
  }

  void Grow() {
    size_t new_cap = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{kEmpty, V{}});
    mask_ = new_cap - 1;
    size_ = 0;
    for (const Slot& s : old) {
      if (s.key != kEmpty) Put(s.key, s.value);
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Signed superedge adjacency: neighbor supernode id -> sign (+1 / -1).
using FlatSignedMap = FlatMap32<int8_t>;

/// Root adjacency: neighbor root id -> number of superedges between trees.
using FlatCountMap = FlatMap32<uint32_t>;

}  // namespace slugger

#endif  // SLUGGER_UTIL_FLAT_MAP_HPP_
