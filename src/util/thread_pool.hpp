// Fixed-size worker pool with a work-stealing task counter.
//
// The pool owns size()-1 persistent threads; the caller of Run() acts as
// worker 0, so a pool of size 1 never spawns a thread and executes jobs
// inline. Tasks of one job are claimed dynamically from a shared atomic
// counter (one task at a time), which load-balances uneven task costs —
// exactly what SLUGGER's skewed candidate-group sizes need. Run() blocks
// until every task of the job has finished, so job boundaries are
// synchronization barriers (all writes made by tasks happen-before Run()
// returning).
//
// Tasks must not throw and must not call Run()/ParallelFor() recursively
// on the same pool.
#ifndef SLUGGER_UTIL_THREAD_POOL_HPP_
#define SLUGGER_UTIL_THREAD_POOL_HPP_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slugger {

class ThreadPool {
 public:
  /// A job maps each task index in [0, num_tasks) to one invocation of
  /// fn(task_index, worker_index), with worker_index < size().
  using TaskFn = std::function<void(uint64_t task, unsigned worker)>;

  /// Worker count to use when the user asks for "0 = auto".
  static unsigned DefaultThreads();

  /// Creates a pool of `num_threads` workers total (min 1). The calling
  /// thread is worker 0; num_threads - 1 threads are spawned.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return num_workers_; }

  /// Runs fn over all task indices in [0, num_tasks), stealing tasks from
  /// a shared counter; returns when every task has completed.
  void Run(uint64_t num_tasks, const TaskFn& fn);

  /// Splits [0, n) into chunks of at most `grain` and runs
  /// fn(begin, end, worker) over them via Run().
  void ParallelFor(uint64_t n, uint64_t grain,
                   const std::function<void(uint64_t begin, uint64_t end,
                                            unsigned worker)>& fn);

 private:
  void WorkerLoop(unsigned worker);
  void DrainTasks(unsigned worker);

  unsigned num_workers_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals a new job epoch
  std::condition_variable done_cv_;   // signals helpers finished the job
  uint64_t epoch_ = 0;                // bumped per job (guarded by mu_)
  unsigned helpers_active_ = 0;       // spawned workers still in the job
  bool stop_ = false;

  // Current job; valid while helpers_active_ > 0 or worker 0 is draining.
  const TaskFn* job_ = nullptr;
  uint64_t job_num_tasks_ = 0;
  std::atomic<uint64_t> next_task_{0};
};

}  // namespace slugger

#endif  // SLUGGER_UTIL_THREAD_POOL_HPP_
