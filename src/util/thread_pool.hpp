// Fixed-size worker pool with a work-stealing task counter.
//
// The pool owns size()-1 persistent threads; the caller of Run() acts as
// worker 0, so a pool of size 1 never spawns a thread and executes jobs
// inline. Tasks of one job are claimed dynamically from a shared atomic
// counter (one task at a time), which load-balances uneven task costs —
// exactly what SLUGGER's skewed candidate-group sizes need. Run() blocks
// until every task of the job has finished, so job boundaries are
// synchronization barriers (all writes made by tasks happen-before Run()
// returning).
//
// Tasks must not throw and must not call Run()/ParallelFor() recursively
// on the same pool.
#ifndef SLUGGER_UTIL_THREAD_POOL_HPP_
#define SLUGGER_UTIL_THREAD_POOL_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace slugger {

class ThreadPool {
 public:
  /// A job maps each task index in [0, num_tasks) to one invocation of
  /// fn(task_index, worker_index), with worker_index < size().
  using TaskFn = std::function<void(uint64_t task, unsigned worker)>;

  /// Worker count to use when the user asks for "0 = auto".
  static unsigned DefaultThreads();

  /// Creates a pool of `num_threads` workers total (min 1). The calling
  /// thread is worker 0; num_threads - 1 threads are spawned.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return num_workers_; }

  /// Runs fn over all task indices in [0, num_tasks), stealing tasks from
  /// a shared counter; returns when every task has completed.
  void Run(uint64_t num_tasks, const TaskFn& fn) SLUGGER_EXCLUDES(mu_);

  /// Splits [0, n) into chunks of at most `grain` and runs
  /// fn(begin, end, worker) over them via Run().
  void ParallelFor(uint64_t n, uint64_t grain,
                   const std::function<void(uint64_t begin, uint64_t end,
                                            unsigned worker)>& fn)
      SLUGGER_EXCLUDES(mu_);

 private:
  void WorkerLoop(unsigned worker) SLUGGER_EXCLUDES(mu_);
  void DrainTasks(unsigned worker);

  unsigned num_workers_ = 1;
  std::vector<std::thread> threads_;

  Mutex mu_;
  CondVar work_cv_;                   // signals a new job epoch
  CondVar done_cv_;                   // signals helpers finished the job
  uint64_t epoch_ SLUGGER_GUARDED_BY(mu_) = 0;  // bumped per job
  unsigned helpers_active_ SLUGGER_GUARDED_BY(mu_) = 0;
  bool stop_ SLUGGER_GUARDED_BY(mu_) = false;

  // Current job. Written under mu_ before the epoch bump that wakes the
  // helpers and cleared only after every helper checked in, so DrainTasks
  // reads it lock-free: the cv handoff is the happens-before edge. That
  // protocol — not a lock — is the synchronization, so these members are
  // deliberately NOT guarded-by (the sync.hpp convention for
  // publication-protocol data).
  const TaskFn* job_ = nullptr;
  uint64_t job_num_tasks_ = 0;
  std::atomic<uint64_t> next_task_{0};
};

}  // namespace slugger

#endif  // SLUGGER_UTIL_THREAD_POOL_HPP_
