// Checked numeric parsing for untrusted command-line input.
//
// std::atoi silently maps garbage to 0 and overflows through undefined
// behavior; casting its int result to an unsigned type wraps negative
// input into huge values. These helpers reject anything that is not a
// plain in-range decimal number, so callers can print usage and exit
// instead of proceeding with a silently mangled value.
#ifndef SLUGGER_UTIL_PARSE_HPP_
#define SLUGGER_UTIL_PARSE_HPP_

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <optional>

namespace slugger {

/// Parses a complete decimal string: rejects null/empty input, signs,
/// whitespace, trailing junk, and values above uint64 range.
inline std::optional<uint64_t> ParseUint64(const char* s) {
  if (s == nullptr || *s == '\0') return std::nullopt;
  // strtoull itself accepts leading whitespace and a sign (wrapping
  // negatives!); a count or id starts with a digit or it is invalid.
  if (*s < '0' || *s > '9') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return std::nullopt;
  return static_cast<uint64_t>(v);
}

/// ParseUint64 narrowed to uint32; values above 2^32 - 1 are rejected,
/// not truncated.
inline std::optional<uint32_t> ParseUint32(const char* s) {
  std::optional<uint64_t> v = ParseUint64(s);
  if (!v.has_value() || *v > std::numeric_limits<uint32_t>::max()) {
    return std::nullopt;
  }
  return static_cast<uint32_t>(*v);
}

}  // namespace slugger

#endif  // SLUGGER_UTIL_PARSE_HPP_
