// Capability-annotated synchronization vocabulary: the ONLY place in the
// tree allowed to name std::mutex (tools/lint/check_invariants.py enforces
// this).
//
// Every lock in the codebase is a slugger::Mutex / SharedMutex wrapped in
// Clang Thread Safety Analysis attributes, so the locking discipline that
// used to live in comments — which members a mutex guards, which methods
// must (not) be called with it held, which helpers acquire it for the
// caller — is checked at compile time by the clang CI legs
// (-Wthread-safety -Werror). On compilers without the attributes (gcc)
// every macro expands to nothing and the wrappers cost exactly a
// std::mutex.
//
// Convention used across the tree:
//   - members:   Type member_ SLUGGER_GUARDED_BY(mu_);
//   - methods:   void Publish() SLUGGER_REQUIRES(!mu_);   // retire work
//                outside the lock (SnapshotRegistry, DynamicGraph)
//                Status Helper() SLUGGER_REQUIRES(write_mu_);
//   - acquire-for-caller helpers: SLUGGER_ACQUIRE(mu) on the declaration,
//     SLUGGER_NO_THREAD_SAFETY_ANALYSIS on the definition when the body's
//     locking is protocol-driven (retry loops over dynamic lock sets);
//     the contract still binds every call site.
//   - data published through an atomic flag (BufferManager's verify-once
//     page states, CompressedGraph's materialize box) is NOT guarded-by:
//     the release/acquire pair on the flag is the synchronization, and a
//     comment at the member says so.
//
// The analysis is intraprocedural and checks lambdas as separate
// functions with an empty lock set: never touch a guarded member from a
// lambda — hoist a local pointer/copy while the lock is provably held.
#ifndef SLUGGER_UTIL_SYNC_HPP_
#define SLUGGER_UTIL_SYNC_HPP_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ----------------------------------------------------------------- macros
#if defined(__clang__)
#define SLUGGER_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SLUGGER_THREAD_ANNOTATION_(x)  // gcc and friends: compiles away
#endif

/// Declares a class to be a lockable capability ("mutex", "shared_mutex").
#define SLUGGER_CAPABILITY(x) SLUGGER_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires in its ctor / releases in its dtor.
#define SLUGGER_SCOPED_CAPABILITY SLUGGER_THREAD_ANNOTATION_(scoped_lockable)

/// Member may only be touched while the named capability is held.
#define SLUGGER_GUARDED_BY(x) SLUGGER_THREAD_ANNOTATION_(guarded_by(x))

/// Pointee may only be touched while the named capability is held.
#define SLUGGER_PT_GUARDED_BY(x) SLUGGER_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Caller must hold the capability (exclusively) when calling.
#define SLUGGER_REQUIRES(...) \
  SLUGGER_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared when calling.
#define SLUGGER_REQUIRES_SHARED(...) \
  SLUGGER_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and returns holding it.
#define SLUGGER_ACQUIRE(...) \
  SLUGGER_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires the capability in shared mode.
#define SLUGGER_ACQUIRE_SHARED(...) \
  SLUGGER_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the (exclusively held) capability.
#define SLUGGER_RELEASE(...) \
  SLUGGER_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases the shared-held capability.
#define SLUGGER_RELEASE_SHARED(...) \
  SLUGGER_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function releases the capability whichever mode it was held in.
#define SLUGGER_RELEASE_GENERIC(...) \
  SLUGGER_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the return value
/// that means success.
#define SLUGGER_TRY_ACQUIRE(...) \
  SLUGGER_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself,
/// or performs work — like retiring a snapshot — that must not run under
/// it). Equivalent contract to SLUGGER_REQUIRES(!x) but checkable without
/// -Wthread-safety-negative.
#define SLUGGER_EXCLUDES(...) \
  SLUGGER_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that the function returns a reference to the named capability
/// (accessors that expose a lock for callers to acquire).
#define SLUGGER_RETURN_CAPABILITY(x) \
  SLUGGER_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the calling thread holds the capability; tells
/// the analysis to trust it from here on.
#define SLUGGER_ASSERT_CAPABILITY(x) \
  SLUGGER_THREAD_ANNOTATION_(assert_capability(x))

/// Documented lock-ordering edges (a must be taken before b).
#define SLUGGER_ACQUIRED_BEFORE(...) \
  SLUGGER_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define SLUGGER_ACQUIRED_AFTER(...) \
  SLUGGER_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Escape hatch: turns the analysis off INSIDE this function body (its
/// declared contract still binds callers). Reserve it for protocol-driven
/// locking the static analysis cannot express, and say why at the site.
#define SLUGGER_NO_THREAD_SAFETY_ANALYSIS \
  SLUGGER_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace slugger {

// ---------------------------------------------------------------- wrappers

/// std::mutex as a named capability. Prefer MutexLock over manual
/// Lock/Unlock pairs; manual pairs are for split acquire/release across
/// branches, where the analysis still checks balance.
class SLUGGER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SLUGGER_ACQUIRE() { mu_.lock(); }
  void Unlock() SLUGGER_RELEASE() { mu_.unlock(); }
  bool TryLock() SLUGGER_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex as a capability with reader/writer modes.
class SLUGGER_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SLUGGER_ACQUIRE() { mu_.lock(); }
  void Unlock() SLUGGER_RELEASE() { mu_.unlock(); }
  void ReaderLock() SLUGGER_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() SLUGGER_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a Mutex (the std::lock_guard replacement).
class SLUGGER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SLUGGER_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() SLUGGER_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Scoped shared lock on a SharedMutex.
class SLUGGER_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) SLUGGER_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderLock() SLUGGER_RELEASE_GENERIC() { mu_->ReaderUnlock(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Scoped exclusive lock on a SharedMutex.
class SLUGGER_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) SLUGGER_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() SLUGGER_RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to Mutex. Wait() declares the classic cv
/// contract — the caller holds the mutex, the wait releases and reacquires
/// it — so forgetting the lock is a compile error under clang. There is
/// deliberately no predicate overload: a predicate lambda would be
/// analyzed with an empty lock set and flag every guarded read inside it,
/// so waits are written as explicit `while (!cond) cv.Wait(mu);` loops in
/// the annotated caller, where the condition's guarded reads are checked
/// against the held lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, reacquires before returning.
  /// Spurious wakeups happen; always wait in a condition loop.
  void Wait(Mutex& mu) SLUGGER_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the re-acquired lock
  }

  /// Timed Wait: returns false if `seconds` elapsed without a notify.
  /// Same contract as Wait — spurious wakeups return true, so callers
  /// loop on their condition and use the return only to detect timeout.
  bool WaitFor(Mutex& mu, double seconds) SLUGGER_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::duration<double>(seconds));
    lock.release();  // the caller's scope still owns the re-acquired lock
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace slugger

#endif  // SLUGGER_UTIL_SYNC_HPP_
