#include "util/random.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_set>

namespace slugger {

std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k, Rng& rng) {
  assert(k <= n);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense: shuffle a full index vector and truncate.
    std::vector<uint64_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    rng.Shuffle(all);
    all.resize(k);
    return all;
  }
  // Sparse: Floyd's algorithm.
  std::unordered_set<uint64_t> seen;
  seen.reserve(k * 2);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = rng.Below(j + 1);
    if (!seen.insert(t).second) {
      seen.insert(j);
      out.push_back(j);
    } else {
      out.push_back(t);
    }
  }
  return out;
}

}  // namespace slugger
