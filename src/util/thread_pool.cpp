#include "util/thread_pool.hpp"

#include <algorithm>

namespace slugger {

unsigned ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned num_threads)
    : num_workers_(std::max(1u, num_threads)) {
  threads_.reserve(num_workers_ - 1);
  for (unsigned w = 1; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::DrainTasks(unsigned worker) {
  const TaskFn& fn = *job_;
  const uint64_t end = job_num_tasks_;
  while (true) {
    uint64_t task = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= end) break;
    fn(task, worker);
  }
}

void ThreadPool::WorkerLoop(unsigned worker) {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    DrainTasks(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --helpers_active_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::Run(uint64_t num_tasks, const TaskFn& fn) {
  if (num_tasks == 0) return;
  if (num_workers_ == 1 || num_tasks == 1) {
    for (uint64_t task = 0; task < num_tasks; ++task) fn(task, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_num_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    helpers_active_ = num_workers_ - 1;
    ++epoch_;
  }
  work_cv_.notify_all();
  DrainTasks(/*worker=*/0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return helpers_active_ == 0; });
    job_ = nullptr;
  }
}

void ThreadPool::ParallelFor(
    uint64_t n, uint64_t grain,
    const std::function<void(uint64_t, uint64_t, unsigned)>& fn) {
  if (n == 0) return;
  grain = std::max<uint64_t>(1, grain);
  uint64_t num_chunks = (n + grain - 1) / grain;
  Run(num_chunks, [&](uint64_t chunk, unsigned worker) {
    uint64_t begin = chunk * grain;
    uint64_t end = std::min(n, begin + grain);
    fn(begin, end, worker);
  });
}

}  // namespace slugger
