#include "util/thread_pool.hpp"

#include <algorithm>

namespace slugger {

unsigned ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned num_threads)
    : num_workers_(std::max(1u, num_threads)) {
  threads_.reserve(num_workers_ - 1);
  for (unsigned w = 1; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

// job_ / job_num_tasks_ are read without mu_: the epoch handoff in
// WorkerLoop (write under mu_, then wake; clear only after every helper
// decremented helpers_active_) is the happens-before protocol, which the
// static analysis cannot see.
void ThreadPool::DrainTasks(unsigned worker) {
  const TaskFn& fn = *job_;
  const uint64_t end = job_num_tasks_;
  while (true) {
    uint64_t task = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= end) break;
    fn(task, worker);
  }
}

void ThreadPool::WorkerLoop(unsigned worker) {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      MutexLock lock(&mu_);
      while (!stop_ && epoch_ == seen_epoch) work_cv_.Wait(mu_);
      if (stop_) return;
      seen_epoch = epoch_;
    }
    DrainTasks(worker);
    {
      MutexLock lock(&mu_);
      --helpers_active_;
    }
    done_cv_.NotifyOne();
  }
}

void ThreadPool::Run(uint64_t num_tasks, const TaskFn& fn) {
  if (num_tasks == 0) return;
  if (num_workers_ == 1 || num_tasks == 1) {
    for (uint64_t task = 0; task < num_tasks; ++task) fn(task, 0);
    return;
  }
  {
    MutexLock lock(&mu_);
    job_ = &fn;
    job_num_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    helpers_active_ = num_workers_ - 1;
    ++epoch_;
  }
  work_cv_.NotifyAll();
  DrainTasks(/*worker=*/0);
  {
    MutexLock lock(&mu_);
    while (helpers_active_ != 0) done_cv_.Wait(mu_);
    job_ = nullptr;
  }
}

void ThreadPool::ParallelFor(
    uint64_t n, uint64_t grain,
    const std::function<void(uint64_t, uint64_t, unsigned)>& fn) {
  if (n == 0) return;
  grain = std::max<uint64_t>(1, grain);
  uint64_t num_chunks = (n + grain - 1) / grain;
  Run(num_chunks, [&](uint64_t chunk, unsigned worker) {
    uint64_t begin = chunk * grain;
    uint64_t end = std::min(n, begin + grain);
    fn(begin, end, worker);
  });
}

}  // namespace slugger
