// Concurrency primitives for the sharded async commit path.
//
// ShardedLockTable hashes supernode ids onto a fixed set of mutexes so that
// commits whose neighborhoods map to disjoint shards can apply their edge
// rewrites concurrently. Acquisition is always over a sorted unique shard
// list (ascending), which makes cycles — and therefore deadlocks — between
// committers impossible. Because a commit's neighborhood can change between
// computing its shard set and locking it, callers revalidate the set after
// acquisition and retry with the widened set (see RunGroupsAsync).
//
// Static contract: the table itself is one capability. Which PHYSICAL
// shards a thread holds is a runtime property (the sorted id list), so the
// annotation models "holding your commit's shard set" as holding the
// table: Lock acquires it, Unlock releases it, and code that rewrites
// shard-guarded state declares SLUGGER_REQUIRES(table). That catches the
// real bug classes — double-acquire, forgotten release on an early
// return, shard-state writes outside any acquisition — while the
// ascending-order rule inside Lock stays a runtime/TSan concern.
//
// TwoGroupLock is a group mutual-exclusion ("room") lock: any number of
// members of one group may hold it together, members of different groups
// never do. The async merge engine uses it to let many read-only
// evaluations run concurrently (read room) while commits — which write the
// shared state under their shard locks — batch in the commit room. Both
// rooms map to a SHARED acquisition of the capability (members of a room
// hold it together); exclusivity across rooms is the runtime protocol.
#ifndef SLUGGER_UTIL_SHARDED_LOCK_HPP_
#define SLUGGER_UTIL_SHARDED_LOCK_HPP_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/random.hpp"
#include "util/sync.hpp"

namespace slugger {

/// Fixed table of mutexes indexed by a hash of a 32-bit id. Lock/Unlock
/// take a SORTED, DEDUPLICATED list of shard indices; sorting is what
/// guarantees two committers can never wait on each other in a cycle.
class SLUGGER_CAPABILITY("sharded_lock_table") ShardedLockTable {
 public:
  /// `shard_count` is rounded up to a power of two (min 1).
  explicit ShardedLockTable(uint32_t shard_count = 256) {
    uint32_t n = 1;
    while (n < shard_count) n <<= 1;
    shards_ = std::vector<Mutex>(n);
    mask_ = n - 1;
  }

  ShardedLockTable(const ShardedLockTable&) = delete;
  ShardedLockTable& operator=(const ShardedLockTable&) = delete;

  uint32_t shard_count() const { return mask_ + 1; }

  uint32_t ShardOf(uint32_t id) const {
    return static_cast<uint32_t>(Mix64(id)) & mask_;
  }

  /// Sorts and deduplicates a shard list in place (required before Lock).
  static void Normalize(std::vector<uint32_t>* shard_ids) {
    std::sort(shard_ids->begin(), shard_ids->end());
    shard_ids->erase(std::unique(shard_ids->begin(), shard_ids->end()),
                     shard_ids->end());
  }

  /// Locks every shard in `sorted_unique`, in ascending order. The loop
  /// over a runtime lock set is invisible to the analysis (body opted
  /// out); the ACQUIRE contract on this declaration is what callers are
  /// checked against.
  void Lock(const std::vector<uint32_t>& sorted_unique)
      SLUGGER_ACQUIRE() SLUGGER_NO_THREAD_SAFETY_ANALYSIS {
    for (uint32_t s : sorted_unique) shards_[s].Lock();
  }

  /// Unlocks every shard in `sorted_unique` (any order is safe).
  void Unlock(const std::vector<uint32_t>& sorted_unique)
      SLUGGER_RELEASE() SLUGGER_NO_THREAD_SAFETY_ANALYSIS {
    for (uint32_t s : sorted_unique) shards_[s].Unlock();
  }

 private:
  std::vector<Mutex> shards_;
  uint32_t mask_ = 0;
};

/// Group mutual exclusion between two groups (0 and 1): concurrent within a
/// group, exclusive across groups. A member of the active group is admitted
/// only while no member of the other group waits, so neither group can
/// starve the other under a steady stream of entrants.
class SLUGGER_CAPABILITY("two_group_lock") TwoGroupLock {
 public:
  void Enter(unsigned group) SLUGGER_ACQUIRE_SHARED() {
    MutexLock lock(&mu_);
    ++waiting_[group];
    while (!(active_ == 0 ||
             (active_group_ == group && waiting_[1 - group] == 0))) {
      cv_.Wait(mu_);
    }
    --waiting_[group];
    active_group_ = group;
    ++active_;
  }

  void Exit(unsigned group) SLUGGER_RELEASE_SHARED() {
    (void)group;
    bool wake = false;
    {
      MutexLock lock(&mu_);
      wake = (--active_ == 0);
    }
    // Notify outside mu_ so woken waiters never bounce off a still-held
    // lock.
    if (wake) cv_.NotifyAll();
  }

 private:
  Mutex mu_;
  CondVar cv_;
  unsigned active_group_ SLUGGER_GUARDED_BY(mu_) = 0;
  uint32_t active_ SLUGGER_GUARDED_BY(mu_) = 0;
  uint32_t waiting_[2] SLUGGER_GUARDED_BY(mu_) = {0, 0};
};

}  // namespace slugger

#endif  // SLUGGER_UTIL_SHARDED_LOCK_HPP_
