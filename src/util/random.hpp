// Fast deterministic pseudo-random number generation.
//
// All randomized components of the library draw from Rng (xoshiro256**)
// seeded explicitly, so every run is reproducible from a single seed.
#ifndef SLUGGER_UTIL_RANDOM_HPP_
#define SLUGGER_UTIL_RANDOM_HPP_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace slugger {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a value (Stafford variant 13 finalizer).
inline uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// xoshiro256** generator: small, fast, high-quality; not cryptographic.
class Rng {
 public:
  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x5EEDBA5Eull) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound); bound must be nonzero.
  uint64_t Below(uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (l < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

/// Samples `k` distinct values from [0, n) without replacement.
/// Chooses between Floyd's algorithm and a shuffle based on density.
std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k, Rng& rng);

}  // namespace slugger

#endif  // SLUGGER_UTIL_RANDOM_HPP_
