#include "baselines/partition_state.hpp"

#include <algorithm>

namespace slugger::baselines {

PartitionState::PartitionState(const graph::Graph& g)
    : graph_(&g), dsu_(g.num_nodes()) {
  const NodeId n = g.num_nodes();
  size_.assign(n, 1);
  members_.resize(n);
  adj_.resize(n);
  within_.assign(n, 0);
  for (NodeId u = 0; u < n; ++u) members_[u] = {u};
  for (const Edge& e : g.Edges()) {
    ++adj_[e.first].GetOrInsert(e.second, 0);
    ++adj_[e.second].GetOrInsert(e.first, 0);
  }
}

uint64_t PartitionState::PairCost(uint32_t a, uint32_t b) const {
  uint64_t e;
  uint64_t t;
  if (a == b) {
    e = within_[a];
    t = static_cast<uint64_t>(size_[a]) * (size_[a] - 1) / 2;
  } else {
    const uint32_t* v = adj_[a].Find(b);
    e = v != nullptr ? *v : 0;
    t = static_cast<uint64_t>(size_[a]) * size_[b];
  }
  if (e == 0) return 0;
  return std::min(e, 1 + t - e);
}

uint64_t PartitionState::GroupCost(uint32_t group) const {
  uint64_t cost = PairCost(group, group);
  adj_[group].ForEach([&](uint32_t other, uint32_t) {
    cost += PairCost(group, other);
  });
  return cost;
}

uint64_t PartitionState::MergedCost(uint32_t a, uint32_t b) const {
  uint64_t merged_size = static_cast<uint64_t>(size_[a]) + size_[b];
  // Self pair of the merged group.
  uint64_t e_self = within_[a] + within_[b] + EdgesBetween(a, b);
  uint64_t t_self = merged_size * (merged_size - 1) / 2;
  uint64_t cost = e_self == 0 ? 0 : std::min(e_self, 1 + t_self - e_self);
  // Cross pairs: union of both adjacency maps (shared neighbors combined).
  auto cross = [&](uint32_t other) {
    uint64_t e = EdgesBetween(a, other) + EdgesBetween(b, other);
    uint64_t t = merged_size * size_[other];
    return e == 0 ? uint64_t{0} : std::min(e, 1 + t - e);
  };
  adj_[a].ForEach([&](uint32_t other, uint32_t) {
    if (other != b) cost += cross(other);
  });
  adj_[b].ForEach([&](uint32_t other, uint32_t) {
    if (other != a && !adj_[a].Contains(other)) cost += cross(other);
  });
  return cost;
}

double PartitionState::Saving(uint32_t a, uint32_t b) const {
  uint64_t before = GroupCost(a) + GroupCost(b);
  if (before == 0) return -1.0;
  uint64_t after = MergedCost(a, b);
  return 1.0 - static_cast<double>(after) / static_cast<double>(before);
}

uint32_t PartitionState::Merge(uint32_t a, uint32_t b) {
  uint64_t between = EdgesBetween(a, b);
  uint32_t rep = dsu_.Unite(a, b);
  uint32_t gone = rep == a ? b : a;

  size_[rep] = size_[a] + size_[b];
  within_[rep] = within_[a] + within_[b] + between;
  if (members_[gone].size() > members_[rep].size()) {
    members_[gone].swap(members_[rep]);
  }
  members_[rep].insert(members_[rep].end(), members_[gone].begin(),
                       members_[gone].end());
  members_[gone].clear();
  members_[gone].shrink_to_fit();

  // Fold adjacency of `gone` into `rep`, rewriting the reverse direction.
  adj_[gone].ForEach([&](uint32_t other, uint32_t count) {
    if (other == rep) return;  // became within
    adj_[other].Erase(gone);
    adj_[other].GetOrInsert(rep, 0) += count;
    adj_[rep].GetOrInsert(other, 0) += count;
  });
  adj_[rep].Erase(gone);
  adj_[gone].clear();
  return rep;
}

std::pair<std::vector<uint32_t>, uint32_t> PartitionState::DenseGroups() {
  const NodeId n = graph_->num_nodes();
  std::vector<uint32_t> dense(n, 0xFFFFFFFFu);
  std::vector<uint32_t> label(n, 0xFFFFFFFFu);
  uint32_t next = 0;
  for (NodeId u = 0; u < n; ++u) {
    uint32_t rep = dsu_.Find(u);
    if (label[rep] == 0xFFFFFFFFu) label[rep] = next++;
    dense[u] = label[rep];
  }
  return {std::move(dense), next};
}

std::vector<uint32_t> PartitionState::GroupIds() {
  std::vector<uint32_t> out;
  for (NodeId u = 0; u < graph_->num_nodes(); ++u) {
    if (dsu_.Find(u) == u) out.push_back(u);
  }
  return out;
}

}  // namespace slugger::baselines
