// The flat (non-hierarchical) graph summarization model of Navlakha et al.
// — the baseline representation G̃ = (S, P, C+, C-) of paper §II-A.
//
// S is a partition of V; a superedge (A, B) ∈ P asserts all pairs between
// A and B; corrections C+ / C- fix the exceptions at subnode level.
#ifndef SLUGGER_BASELINES_FLAT_MODEL_HPP_
#define SLUGGER_BASELINES_FLAT_MODEL_HPP_

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace slugger::baselines {

/// A flat summary; group ids are dense in [0, num_groups).
struct FlatSummary {
  NodeId num_nodes = 0;
  uint32_t num_groups = 0;
  std::vector<uint32_t> group_of;  ///< node -> group
  std::vector<std::pair<uint32_t, uint32_t>> superedges;  ///< P (a <= b)
  std::vector<Edge> corrections_plus;                     ///< C+
  std::vector<Edge> corrections_minus;                    ///< C-

  /// |P| + |C+| + |C-| (the flat objective).
  uint64_t Cost() const {
    return superedges.size() + corrections_plus.size() +
           corrections_minus.size();
  }

  /// Membership h-edges |H*| of Eq. 11: one per subnode inside a
  /// non-singleton supernode.
  uint64_t MembershipCost() const;

  /// Eq. 11: (|P| + |C+| + |C-| + |H*|) / |E|.
  double RelativeSize(uint64_t input_edges) const {
    return input_edges == 0
               ? 0.0
               : static_cast<double>(Cost() + MembershipCost()) /
                     static_cast<double>(input_edges);
  }
};

/// Optimally encodes a given partition in O(|E|) (the SWeG encode step):
/// per group pair, a superedge plus C- beats raw C+ iff it is cheaper.
/// `group_of` entries must be < num_groups; empty groups are allowed.
FlatSummary EncodePartition(const graph::Graph& g,
                            std::vector<uint32_t> group_of,
                            uint32_t num_groups);

/// Reconstructs the graph a flat summary represents (for verification).
graph::Graph DecodeFlat(const FlatSummary& summary);

}  // namespace slugger::baselines

#endif  // SLUGGER_BASELINES_FLAT_MODEL_HPP_
