#include "baselines/randomized.hpp"

#include <vector>

#include "baselines/partition_state.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace slugger::baselines {

FlatSummary SummarizeRandomized(const graph::Graph& g,
                                const RandomizedConfig& config) {
  PartitionState state(g);
  Rng rng(config.seed);
  WallTimer timer;

  // Unfinished pool of group representatives.
  std::vector<uint32_t> pool(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) pool[u] = u;

  std::vector<uint32_t> candidates;
  std::vector<uint32_t> stamp(g.num_nodes(), 0);
  uint32_t epoch = 0;

  while (!pool.empty()) {
    if (config.time_budget_seconds > 0.0 &&
        timer.Seconds() > config.time_budget_seconds) {
      break;
    }
    size_t idx = rng.Below(pool.size());
    uint32_t u = pool[idx];
    if (state.GroupOf(u) != u) {  // stale entry (merged away)
      pool[idx] = pool.back();
      pool.pop_back();
      continue;
    }

    // Collect 2-hop candidate groups (group adjacency squared), subsampled.
    ++epoch;
    candidates.clear();
    stamp[u] = epoch;
    auto consider = [&](uint32_t group) {
      if (stamp[group] != epoch) {
        stamp[group] = epoch;
        candidates.push_back(group);
      }
    };
    state.GroupAdj(u).ForEach([&](uint32_t nbr, uint32_t) {
      consider(nbr);
      if (candidates.size() < config.max_candidates * 4) {
        state.GroupAdj(nbr).ForEach(
            [&](uint32_t two_hop, uint32_t) { consider(two_hop); });
      }
    });
    if (candidates.size() > config.max_candidates) {
      rng.Shuffle(candidates);
      candidates.resize(config.max_candidates);
    }

    double best_saving = 0.0;
    uint32_t best = 0xFFFFFFFFu;
    for (uint32_t v : candidates) {
      double s = state.Saving(u, v);
      if (s > best_saving) {
        best_saving = s;
        best = v;
      }
    }
    if (best != 0xFFFFFFFFu && best_saving > 0.0) {
      uint32_t rep = state.Merge(u, best);
      pool[idx] = rep;  // merged group stays unfinished
    } else {
      pool[idx] = pool.back();  // u is finished
      pool.pop_back();
    }
  }

  auto [dense, count] = state.DenseGroups();
  return EncodePartition(g, std::move(dense), count);
}

}  // namespace slugger::baselines
