#include "baselines/sags.hpp"

#include <algorithm>
#include <vector>

#include "baselines/partition_state.hpp"
#include "util/hashing.hpp"
#include "util/random.hpp"

namespace slugger::baselines {

FlatSummary SummarizeSags(const graph::Graph& g, const SagsConfig& config) {
  PartitionState state(g);
  Rng rng(Mix64(config.seed ^ 0x5A6511ull));

  const uint32_t rows = std::max(1u, config.num_hashes / config.bands);

  // One pass per band: bucket groups by the band signature and merge
  // sampled bucket-mates pairwise.
  std::vector<std::pair<uint64_t, uint32_t>> keyed;
  for (uint32_t band = 0; band < config.bands; ++band) {
    std::vector<uint32_t> ids = state.GroupIds();
    keyed.clear();
    keyed.reserve(ids.size());
    for (uint32_t id : ids) {
      // Band signature: combined min-hashes of `rows` hash functions over
      // the group's closed neighborhood.
      uint64_t signature = 0xcbf29ce484222325ull;
      for (uint32_t r = 0; r < rows; ++r) {
        KeyedHash h(Mix64(config.seed ^ (band * 131 + r)));
        uint64_t best = ~0ull;
        for (NodeId u : state.Members(id)) {
          best = std::min(best, h(u));
          for (NodeId v : g.Neighbors(u)) best = std::min(best, h(v));
        }
        signature = (signature ^ best) * 0x100000001B3ull;
      }
      keyed.emplace_back(signature, id);
    }
    std::sort(keyed.begin(), keyed.end());

    size_t i = 0;
    while (i < keyed.size()) {
      size_t j = i + 1;
      while (j < keyed.size() && keyed[j].first == keyed[i].first) ++j;
      // Merge sampled consecutive pairs inside the bucket.
      for (size_t k = i + 1; k < j; ++k) {
        if (rng.Chance(config.sample_prob)) {
          state.Merge(state.GroupOf(keyed[i].second),
                      state.GroupOf(keyed[k].second));
        }
      }
      i = j;
    }
  }

  auto [dense, count] = state.DenseGroups();
  return EncodePartition(g, std::move(dense), count);
}

}  // namespace slugger::baselines
