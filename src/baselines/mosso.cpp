#include "baselines/mosso.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/hashing.hpp"
#include "util/random.hpp"

namespace slugger::baselines {

namespace {

/// Online partition with node moves (groups are not merge-only here, so
/// PartitionState's union-find does not apply).
class MovablePartition {
 public:
  explicit MovablePartition(NodeId n) : group_of_(n), next_group_(n) {
    for (NodeId u = 0; u < n; ++u) group_of_[u] = u;
    size_.assign(n, 1);
    within_.assign(n, 0);
  }

  uint32_t GroupOf(NodeId u) const { return group_of_[u]; }
  uint32_t Size(uint32_t g) const { return size_[g]; }
  uint64_t Within(uint32_t g) const { return within_[g]; }

  uint64_t Cross(uint32_t a, uint32_t b) const {
    auto it = cross_.find(PairKey(a, b));
    return it == cross_.end() ? 0 : it->second;
  }

  /// Registers an inserted subedge (u, v) in the group-pair counts.
  void AddEdge(NodeId u, NodeId v) {
    uint32_t a = group_of_[u];
    uint32_t b = group_of_[v];
    if (a == b) {
      ++within_[a];
    } else {
      ++cross_[PairKey(a, b)];
    }
  }

  /// Moves x (with current neighbor list `nbrs`) to group `target`.
  void Move(NodeId x, const std::vector<NodeId>& nbrs, uint32_t target) {
    uint32_t from = group_of_[x];
    if (from == target) return;
    for (NodeId w : nbrs) {
      uint32_t gw = group_of_[w];
      if (gw == from) {
        --within_[from];
        ++cross_[PairKey(target, gw)];
      } else if (gw == target) {
        DecCross(from, gw);
        ++within_[target];
      } else {
        DecCross(from, gw);
        ++cross_[PairKey(target, gw)];
      }
    }
    --size_[from];
    ++size_[target];
    group_of_[x] = target;
  }

  uint32_t FreshGroup() {
    uint32_t id = next_group_++;
    size_.push_back(0);
    within_.push_back(0);
    return id;
  }

  std::pair<std::vector<uint32_t>, uint32_t> DenseGroups() const {
    std::unordered_map<uint32_t, uint32_t> label;
    std::vector<uint32_t> dense(group_of_.size());
    uint32_t next = 0;
    for (size_t u = 0; u < group_of_.size(); ++u) {
      auto [it, inserted] = label.emplace(group_of_[u], next);
      if (inserted) ++next;
      dense[u] = it->second;
    }
    return {std::move(dense), next};
  }

 private:
  void DecCross(uint32_t a, uint32_t b) {
    auto it = cross_.find(PairKey(a, b));
    if (it != cross_.end() && --it->second == 0) cross_.erase(it);
  }

  std::vector<uint32_t> group_of_;
  std::vector<uint32_t> size_;
  std::vector<uint64_t> within_;
  std::unordered_map<uint64_t, uint64_t> cross_;
  uint32_t next_group_;
};

/// Flat cost of one pair given edge count e and capacity t.
uint64_t PairCost(uint64_t e, uint64_t t) {
  if (e == 0) return 0;
  return std::min(e, 1 + t - e);
}

uint64_t SelfCap(uint64_t s) { return s * (s - 1) / 2; }

}  // namespace

FlatSummary SummarizeMosso(const graph::Graph& g, const MossoConfig& config) {
  Rng rng(Mix64(config.seed ^ 0x305505ull));
  MovablePartition part(g.num_nodes());

  // Insertion-only stream in random order.
  std::vector<Edge> stream = g.Edges();
  rng.Shuffle(stream);

  std::vector<std::vector<NodeId>> adj(g.num_nodes());
  std::vector<uint32_t> cand;
  std::unordered_map<uint32_t, uint32_t> nbr_cnt;  // neighbor group -> #edges

  // Local cost delta of moving x from its group to `target`; considers the
  // pairs touched by x's edges plus the two self pairs (a local
  // approximation of MoSSo's trial move, DESIGN.md §4.6).
  // `nbr_cnt` must already hold x's neighbor-group counts: it is computed
  // once per trial and shared across all candidate targets (recomputing it
  // per candidate made dense graphs quadratic).
  auto move_delta = [&](NodeId x, uint32_t target) -> int64_t {
    uint32_t from = part.GroupOf(x);
    if (from == target) return 0;
    uint64_t sa = part.Size(from);
    uint64_t st = part.Size(target);

    uint64_t to_from = 0;   // edges x -> rest of its own group
    uint64_t to_target = 0; // edges x -> target members
    if (auto it = nbr_cnt.find(from); it != nbr_cnt.end()) to_from = it->second;
    if (auto it = nbr_cnt.find(target); it != nbr_cnt.end()) {
      to_target = it->second;
    }

    int64_t before = 0;
    int64_t after = 0;
    // Self pairs.
    before += PairCost(part.Within(from), SelfCap(sa));
    before += PairCost(part.Within(target), SelfCap(st));
    after += PairCost(part.Within(from) - to_from, SelfCap(sa - 1));
    after += PairCost(part.Within(target) + to_target, SelfCap(st + 1));
    // The (from, target) pair.
    uint64_t e_ft = part.Cross(from, target);
    before += PairCost(e_ft, sa * st);
    after += PairCost(e_ft - to_target + to_from, (sa - 1) * (st + 1));
    // Other pairs touched by x's edges.
    for (const auto& [group, cnt] : nbr_cnt) {
      if (group == from || group == target) continue;
      uint64_t sg = part.Size(group);
      uint64_t e_fg = part.Cross(from, group);
      uint64_t e_tg = part.Cross(target, group);
      before += PairCost(e_fg, sa * sg) + PairCost(e_tg, st * sg);
      after += PairCost(e_fg - cnt, (sa - 1) * sg) +
               PairCost(e_tg + cnt, (st + 1) * sg);
    }
    return after - before;
  };

  auto try_move = [&](NodeId x) {
    if (adj[x].empty()) return;
    // Trial moves cost O(deg(x)); hubs essentially never move profitably,
    // so skip them (keeps the stream pass near-linear on clique-heavy
    // graphs; quality is unaffected in practice).
    if (adj[x].size() > 512) return;
    nbr_cnt.clear();
    for (NodeId w : adj[x]) ++nbr_cnt[part.GroupOf(w)];
    if (rng.Chance(config.escape_prob)) {
      // Escape: x leaves for a fresh singleton if that does not hurt.
      if (part.Size(part.GroupOf(x)) > 1) {
        uint32_t fresh = part.FreshGroup();
        if (move_delta(x, fresh) <= 0) part.Move(x, adj[x], fresh);
      }
      return;
    }
    // Sample up to c random neighbors; their groups are the candidates.
    cand.clear();
    uint32_t samples =
        static_cast<uint32_t>(std::min<size_t>(config.num_samples,
                                               adj[x].size()));
    for (uint32_t s = 0; s < samples; ++s) {
      NodeId w = adj[x][rng.Below(adj[x].size())];
      cand.push_back(part.GroupOf(w));
    }
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
    // Evaluating a trial move costs O(distinct neighbor groups); cap the
    // candidate list so clique-heavy graphs stay near-linear. Sampling
    // order already favors frequently-seen groups.
    if (cand.size() > 8) cand.resize(8);

    int64_t best_delta = 0;
    uint32_t best = part.GroupOf(x);
    for (uint32_t target : cand) {
      if (target == part.GroupOf(x)) continue;
      int64_t delta = move_delta(x, target);
      if (delta < best_delta) {
        best_delta = delta;
        best = target;
      }
    }
    if (best != part.GroupOf(x)) part.Move(x, adj[x], best);
  };

  for (const Edge& e : stream) {
    adj[e.first].push_back(e.second);
    adj[e.second].push_back(e.first);
    part.AddEdge(e.first, e.second);
    try_move(e.first);
    try_move(e.second);
  }

  auto [dense, count] = part.DenseGroups();
  return EncodePartition(g, std::move(dense), count);
}

}  // namespace slugger::baselines
