// Shared mutable partition state for the flat-model baselines.
//
// Tracks a partition of V into groups (disjoint supernodes) with member
// lists, per-group adjacent-group subedge counts, and the flat encoding
// cost terms min(e, 1 + t - e) the heuristics optimize.
#ifndef SLUGGER_BASELINES_PARTITION_STATE_HPP_
#define SLUGGER_BASELINES_PARTITION_STATE_HPP_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/dsu.hpp"
#include "util/flat_map.hpp"

namespace slugger::baselines {

class PartitionState {
 public:
  explicit PartitionState(const graph::Graph& g);

  const graph::Graph& input() const { return *graph_; }

  /// Group (representative id) containing node u.
  uint32_t GroupOf(NodeId u) { return dsu_.Find(u); }

  uint32_t GroupSize(uint32_t group) const { return size_[group]; }
  const std::vector<NodeId>& Members(uint32_t group) const {
    return members_[group];
  }

  /// Adjacent groups with subedge counts (self-pairs tracked separately).
  const FlatCountMap& GroupAdj(uint32_t group) const { return adj_[group]; }

  /// Subedges with both endpoints in the group.
  uint64_t WithinCount(uint32_t group) const { return within_[group]; }

  /// Subedges between two distinct groups.
  uint64_t EdgesBetween(uint32_t a, uint32_t b) const {
    const uint32_t* v = adj_[a].Find(b);
    return v != nullptr ? *v : 0;
  }

  /// Flat encoding cost of one group pair: min(e, 1 + t - e); 0 if e == 0.
  uint64_t PairCost(uint32_t a, uint32_t b) const;

  /// Navlakha cost of a group: sum of PairCost over incident pairs
  /// (including the self pair).
  uint64_t GroupCost(uint32_t group) const;

  /// Cost of the merged group a ∪ b (as if merged), per incident pair.
  uint64_t MergedCost(uint32_t a, uint32_t b) const;

  /// Navlakha saving of merging a and b:
  /// (cost(a) + cost(b) - cost(a ∪ b)) / (cost(a) + cost(b)).
  double Saving(uint32_t a, uint32_t b) const;

  /// Merges the groups; returns the surviving representative.
  uint32_t Merge(uint32_t a, uint32_t b);

  /// Dense group labeling for EncodePartition.
  std::pair<std::vector<uint32_t>, uint32_t> DenseGroups();

  /// All current group representatives.
  std::vector<uint32_t> GroupIds();

 private:
  const graph::Graph* graph_;
  Dsu dsu_;
  std::vector<uint32_t> size_;
  std::vector<std::vector<NodeId>> members_;
  std::vector<FlatCountMap> adj_;
  std::vector<uint64_t> within_;
};

}  // namespace slugger::baselines

#endif  // SLUGGER_BASELINES_PARTITION_STATE_HPP_
