// RANDOMIZED flat summarization (Navlakha et al., SIGMOD'08).
//
// Repeatedly picks a random unfinished supernode u and merges it with the
// 2-hop neighbor maximizing the flat-model saving, if positive; otherwise
// u is finished. The slowest baseline (the paper reports it timing out on
// large graphs), so a wall-clock budget is supported.
#ifndef SLUGGER_BASELINES_RANDOMIZED_HPP_
#define SLUGGER_BASELINES_RANDOMIZED_HPP_

#include "baselines/flat_model.hpp"
#include "graph/graph.hpp"

namespace slugger::baselines {

struct RandomizedConfig {
  uint64_t seed = 0;
  /// Candidates examined per pick (2-hop supernodes can explode around
  /// hubs; the excess is subsampled).
  uint32_t max_candidates = 64;
  /// Abort merging after this many seconds (0 = unlimited) and encode what
  /// has been built so far; mirrors the paper's time-outs.
  double time_budget_seconds = 0.0;
};

FlatSummary SummarizeRandomized(const graph::Graph& g,
                                const RandomizedConfig& config);

}  // namespace slugger::baselines

#endif  // SLUGGER_BASELINES_RANDOMIZED_HPP_
