#include "baselines/sweg.hpp"

#include <algorithm>
#include <vector>

#include "baselines/partition_state.hpp"
#include "util/hashing.hpp"
#include "util/random.hpp"

namespace slugger::baselines {

namespace {

/// Shingle of a group: min over members u of min hash over {u} ∪ N(u).
uint64_t GroupShingle(const PartitionState& state, const graph::Graph& g,
                      uint32_t group, const KeyedHash& h) {
  uint64_t best = ~0ull;
  for (NodeId u : state.Members(group)) {
    best = std::min(best, h(u));
    for (NodeId v : g.Neighbors(u)) best = std::min(best, h(v));
  }
  return best;
}

/// Sorted unique subnode neighborhood of a group, N(A) = ∪_{u∈A} N(u).
void GroupNeighborhood(const PartitionState& state, const graph::Graph& g,
                       uint32_t group, std::vector<NodeId>* out) {
  out->clear();
  for (NodeId u : state.Members(group)) {
    const auto nbrs = g.Neighbors(u);
    out->insert(out->end(), nbrs.begin(), nbrs.end());
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

/// Jaccard of two sorted sets.
double SortedJaccard(const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - common;
  return uni == 0 ? 0.0 : static_cast<double>(common) / static_cast<double>(uni);
}

}  // namespace

FlatSummary SummarizeSweg(const graph::Graph& g, const SwegConfig& config) {
  PartitionState state(g);
  Rng rng(Mix64(config.seed ^ 0x5E5E5E5Eull));

  std::vector<std::vector<NodeId>> hood;  // per group member neighborhoods
  for (uint32_t t = 1; t <= config.iterations; ++t) {
    double theta = t < config.iterations ? 1.0 / (1.0 + t) : 0.0;

    // ---- Dividing step: shingle groups, re-divide oversized ones. ----
    struct Pending {
      std::vector<uint32_t> groups;
      uint32_t level;
    };
    std::vector<Pending> work;
    work.push_back({state.GroupIds(), 0});
    std::vector<std::vector<uint32_t>> final_groups;
    std::vector<std::pair<uint64_t, uint32_t>> keyed;
    while (!work.empty()) {
      Pending grp = std::move(work.back());
      work.pop_back();
      if (grp.groups.size() <= 1) continue;
      if (grp.level >= config.shingle_levels) {
        rng.Shuffle(grp.groups);
        for (size_t s = 0; s < grp.groups.size(); s += config.max_group_size) {
          size_t e = std::min(s + config.max_group_size, grp.groups.size());
          if (e - s >= 2) {
            final_groups.emplace_back(grp.groups.begin() + s,
                                      grp.groups.begin() + e);
          }
        }
        continue;
      }
      KeyedHash h(Mix64(config.seed ^ (t * 0x1234567ull) ^
                        (grp.level * 0xFEDCBA9ull)));
      keyed.clear();
      for (uint32_t id : grp.groups) {
        keyed.emplace_back(GroupShingle(state, g, id, h), id);
      }
      std::sort(keyed.begin(), keyed.end());
      size_t i = 0;
      while (i < keyed.size()) {
        size_t j = i + 1;
        while (j < keyed.size() && keyed[j].first == keyed[i].first) ++j;
        if (j - i >= 2) {
          std::vector<uint32_t> sub;
          for (size_t k = i; k < j; ++k) sub.push_back(keyed[k].second);
          if (sub.size() <= config.max_group_size) {
            final_groups.push_back(std::move(sub));
          } else {
            work.push_back({std::move(sub), grp.level + 1});
          }
        }
        i = j;
      }
    }

    // ---- Merging step: greedy SuperJaccard within each group. ----
    for (std::vector<uint32_t>& q : final_groups) {
      hood.assign(q.size(), {});
      for (size_t i = 0; i < q.size(); ++i) {
        GroupNeighborhood(state, g, q[i], &hood[i]);
      }
      std::vector<uint8_t> gone(q.size(), 0);
      // Process each element once, in random order.
      std::vector<uint32_t> order(q.size());
      for (size_t i = 0; i < q.size(); ++i) order[i] = static_cast<uint32_t>(i);
      rng.Shuffle(order);
      for (uint32_t ai : order) {
        if (gone[ai]) continue;
        double best_sim = -1.0;
        size_t best = q.size();
        for (size_t bi = 0; bi < q.size(); ++bi) {
          if (bi == ai || gone[bi]) continue;
          double sim = SortedJaccard(hood[ai], hood[bi]);
          if (sim > best_sim) {
            best_sim = sim;
            best = bi;
          }
        }
        // Jaccard picks the partner; the actual merge test compares the
        // flat-model saving against θ(t) (SWeG's merging step).
        if (best < q.size() && state.Saving(q[ai], q[best]) >= theta) {
          uint32_t rep = state.Merge(q[ai], q[best]);
          // The merged group lives on under `ai`'s slot.
          q[ai] = rep;
          gone[best] = 1;
          // Refresh the merged neighborhood in place.
          std::vector<NodeId> merged;
          merged.reserve(hood[ai].size() + hood[best].size());
          std::merge(hood[ai].begin(), hood[ai].end(), hood[best].begin(),
                     hood[best].end(), std::back_inserter(merged));
          merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
          hood[ai] = std::move(merged);
        }
      }
    }
  }

  auto [dense, count] = state.DenseGroups();
  return EncodePartition(g, std::move(dense), count);
}

}  // namespace slugger::baselines
