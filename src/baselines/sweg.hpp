// SWeG flat summarization (Shin et al., WWW'19), lossless mode (ε = 0).
//
// T iterations of: (1) divide supernodes into groups by min-hash shingles
// over member neighborhoods, (2) inside each group greedily merge pairs
// whose SuperJaccard similarity clears θ(t) = 1/(1+t); then one optimal
// encode. SLUGGER's strongest competitor throughout the paper.
#ifndef SLUGGER_BASELINES_SWEG_HPP_
#define SLUGGER_BASELINES_SWEG_HPP_

#include "baselines/flat_model.hpp"
#include "graph/graph.hpp"

namespace slugger::baselines {

struct SwegConfig {
  uint32_t iterations = 20;  ///< T (paper §IV-A)
  uint64_t seed = 0;
  uint32_t max_group_size = 500;
  uint32_t shingle_levels = 10;
};

FlatSummary SummarizeSweg(const graph::Graph& g, const SwegConfig& config);

}  // namespace slugger::baselines

#endif  // SLUGGER_BASELINES_SWEG_HPP_
