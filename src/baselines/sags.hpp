// SAGS flat summarization (Khan et al., Computing 2015).
//
// Locality-sensitive hashing picks merge candidates without evaluating the
// cost reduction: per pass, min-hash signatures are split into b bands;
// supernodes sharing a band bucket are paired and merged with sampling
// probability p. Fastest baseline, least concise (paper §IV-C).
#ifndef SLUGGER_BASELINES_SAGS_HPP_
#define SLUGGER_BASELINES_SAGS_HPP_

#include "baselines/flat_model.hpp"
#include "graph/graph.hpp"

namespace slugger::baselines {

struct SagsConfig {
  uint32_t num_hashes = 30;  ///< h (paper §IV-A)
  uint32_t bands = 10;       ///< b
  double sample_prob = 0.3;  ///< p
  uint64_t seed = 0;
};

FlatSummary SummarizeSags(const graph::Graph& g, const SagsConfig& config);

}  // namespace slugger::baselines

#endif  // SLUGGER_BASELINES_SAGS_HPP_
