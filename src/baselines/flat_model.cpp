#include "baselines/flat_model.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "graph/edge_list.hpp"
#include "util/hashing.hpp"

namespace slugger::baselines {

uint64_t FlatSummary::MembershipCost() const {
  std::vector<uint32_t> sizes(num_groups, 0);
  for (NodeId u = 0; u < num_nodes; ++u) ++sizes[group_of[u]];
  uint64_t cost = 0;
  for (uint32_t size : sizes) {
    if (size >= 2) cost += size;
  }
  return cost;
}

FlatSummary EncodePartition(const graph::Graph& g,
                            std::vector<uint32_t> group_of,
                            uint32_t num_groups) {
  FlatSummary out;
  out.num_nodes = g.num_nodes();
  out.num_groups = num_groups;
  out.group_of = std::move(group_of);

  std::vector<uint32_t> sizes(num_groups, 0);
  std::vector<std::vector<NodeId>> members(num_groups);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ++sizes[out.group_of[u]];
    members[out.group_of[u]].push_back(u);
  }

  // Subedge count per adjacent group pair.
  std::unordered_map<uint64_t, uint64_t> edge_count;
  edge_count.reserve(g.num_edges());
  for (const Edge& e : g.Edges()) {
    ++edge_count[PairKey(out.group_of[e.first], out.group_of[e.second])];
  }

  for (const auto& [key, e_ab] : edge_count) {
    uint32_t a = PairFirst(key);
    uint32_t b = PairSecond(key);
    uint64_t t_ab = a == b ? static_cast<uint64_t>(sizes[a]) * (sizes[a] - 1) / 2
                           : static_cast<uint64_t>(sizes[a]) * sizes[b];
    uint64_t with_super = 1 + (t_ab - e_ab);
    if (with_super < e_ab) {
      // Superedge + negative corrections for the missing pairs.
      out.superedges.emplace_back(a, b);
      if (a == b) {
        const auto& mem = members[a];
        for (size_t i = 0; i < mem.size(); ++i) {
          for (size_t j = i + 1; j < mem.size(); ++j) {
            if (!g.HasEdge(mem[i], mem[j])) {
              out.corrections_minus.push_back(MakeEdge(mem[i], mem[j]));
            }
          }
        }
      } else {
        for (NodeId u : members[a]) {
          for (NodeId v : members[b]) {
            if (!g.HasEdge(u, v)) {
              out.corrections_minus.push_back(MakeEdge(u, v));
            }
          }
        }
      }
    }
    // else: raw positive corrections (added in one sweep below).
  }

  // Positive corrections: edges of pairs without a superedge.
  std::unordered_set<uint64_t> has_super;
  has_super.reserve(out.superedges.size() * 2);
  for (const auto& [a, b] : out.superedges) has_super.insert(PairKey(a, b));
  for (const Edge& e : g.Edges()) {
    uint64_t key = PairKey(out.group_of[e.first], out.group_of[e.second]);
    if (!has_super.count(key)) out.corrections_plus.push_back(e);
  }
  return out;
}

graph::Graph DecodeFlat(const FlatSummary& summary) {
  std::vector<std::vector<NodeId>> members(summary.num_groups);
  for (NodeId u = 0; u < summary.num_nodes; ++u) {
    members[summary.group_of[u]].push_back(u);
  }

  // Start from superedge expansions, then apply corrections.
  std::unordered_set<uint64_t> edges;
  for (const auto& [a, b] : summary.superedges) {
    if (a == b) {
      const auto& mem = members[a];
      for (size_t i = 0; i < mem.size(); ++i) {
        for (size_t j = i + 1; j < mem.size(); ++j) {
          edges.insert(PairKey(mem[i], mem[j]));
        }
      }
    } else {
      for (NodeId u : members[a]) {
        for (NodeId v : members[b]) edges.insert(PairKey(u, v));
      }
    }
  }
  for (const Edge& e : summary.corrections_plus) {
    edges.insert(PairKey(e.first, e.second));
  }
  for (const Edge& e : summary.corrections_minus) {
    edges.erase(PairKey(e.first, e.second));
  }

  graph::EdgeListBuilder builder(summary.num_nodes);
  builder.EnsureNodes(summary.num_nodes);
  for (uint64_t key : edges) builder.Add(PairFirst(key), PairSecond(key));
  return graph::Graph::FromCanonicalEdges(summary.num_nodes,
                                          builder.Finalize());
}

}  // namespace slugger::baselines
