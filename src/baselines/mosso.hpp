// MoSSo incremental flat summarization (Ko et al., KDD'20).
//
// Processes the edge list as an insertion-only stream. On each insertion,
// each endpoint either escapes to a singleton (probability e) or samples up
// to c candidate groups through random neighbors and greedily moves to the
// best one by local flat-cost delta. A final optimal encode emits the
// summary. This is a faithful-granularity port of the published getRandom-
// Neighbor / trial-move loop, not of every implementation detail
// (DESIGN.md §4.6).
#ifndef SLUGGER_BASELINES_MOSSO_HPP_
#define SLUGGER_BASELINES_MOSSO_HPP_

#include "baselines/flat_model.hpp"
#include "graph/graph.hpp"

namespace slugger::baselines {

struct MossoConfig {
  double escape_prob = 0.3;   ///< e (paper §IV-A)
  uint32_t num_samples = 120; ///< c
  uint64_t seed = 0;
};

FlatSummary SummarizeMosso(const graph::Graph& g, const MossoConfig& config);

}  // namespace slugger::baselines

#endif  // SLUGGER_BASELINES_MOSSO_HPP_
