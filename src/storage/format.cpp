#include "storage/format.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>
#include <vector>

#include "summary/hierarchy_forest.hpp"
#include "util/varint.hpp"

namespace slugger::storage {

namespace {

bool ValidPageSize(uint64_t psz) {
  return psz >= kMinPageSize && psz <= kMaxPageSize &&
         (psz & (psz - 1)) == 0;
}

/// Pages a fixed-stride section of `entries` entries occupies when each
/// page holds floor(page_size / stride) entries (trailing slack per page).
uint64_t PagesFor(uint64_t entries, uint64_t stride, uint64_t page_size) {
  const uint64_t epp = page_size / stride;
  return (entries + epp - 1) / epp;
}

}  // namespace

summary::SummaryStats PagedHeader::ToStats() const {
  summary::SummaryStats stats;
  stats.num_subnodes = num_leaves;
  stats.num_supernodes = total_supernodes();
  stats.num_roots = num_roots;
  stats.p_count = p_count;
  stats.n_count = n_count;
  stats.h_count = h_count;
  stats.cost = p_count + n_count + h_count;
  stats.max_height = max_height;
  stats.avg_leaf_depth = avg_leaf_depth;
  return stats;
}

StatusOr<std::string> SerializePaged(const summary::SummaryGraph& summary,
                                     const summary::SummaryStats& stats,
                                     const PagedWriteOptions& options) {
  const uint64_t psz = options.page_size;
  if (!ValidPageSize(psz)) {
    return Status::InvalidArgument(
        "page_size must be a power of two in [" +
        std::to_string(kMinPageSize) + ", " + std::to_string(kMaxPageSize) +
        "], got " + std::to_string(options.page_size));
  }
  const summary::HierarchyForest& forest = summary.forest();
  const NodeId n = forest.num_leaves();

  // Renumber exactly like the v1 serializer: leaves keep their ids,
  // alive internal nodes get dense bottom-up ids (creation order already
  // lists children before parents; pruning only deletes, preserving it).
  std::vector<SupernodeId> renumber(forest.capacity(), kInvalidId);
  for (NodeId u = 0; u < n; ++u) renumber[u] = u;
  uint32_t num_internal = 0;
  for (SupernodeId s = n; s < forest.capacity(); ++s) {
    if (forest.IsAlive(s)) renumber[s] = n + num_internal++;
  }
  const uint32_t total = n + num_internal;
  std::vector<SupernodeId> fid_to_orig(total);
  for (SupernodeId s = 0; s < forest.capacity(); ++s) {
    if (renumber[s] != kInvalidId) fid_to_orig[renumber[s]] = s;
  }

  // Physical record order: preorder DFS per hierarchy tree, trees ordered
  // by their smallest leaf. The same walk assigns the leaf preorder
  // (rank / leaf_at) and each supernode's covered interval start, so a
  // node's leaves are exactly leaf_at[lo .. lo + Size).
  std::vector<uint32_t> lo(total, 0);
  std::vector<uint32_t> rank(n, 0);
  std::vector<uint32_t> leaf_at(n, 0);
  std::vector<SupernodeId> phys;
  phys.reserve(total);
  std::vector<uint8_t> seen_root(forest.capacity(), 0);
  std::vector<SupernodeId> stack;
  uint32_t next_rank = 0;
  for (NodeId v = 0; v < n; ++v) {
    const SupernodeId r = forest.Root(v);
    if (seen_root[r]) continue;
    seen_root[r] = 1;
    stack.push_back(r);
    while (!stack.empty()) {
      const SupernodeId s = stack.back();
      stack.pop_back();
      const SupernodeId fid = renumber[s];
      phys.push_back(fid);
      lo[fid] = next_rank;
      if (forest.IsLeaf(s)) {
        rank[s] = next_rank;
        leaf_at[next_rank] = static_cast<NodeId>(s);
        ++next_rank;
      } else {
        const auto& kids = forest.Children(s);
        for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
          stack.push_back(*it);
        }
      }
    }
  }

  // Encode the record stream in physical order, remembering each
  // record's byte offset for the locator.
  std::string rec;
  std::vector<uint64_t> rec_off(total, 0);
  std::vector<std::pair<uint64_t, EdgeSign>> edges;
  std::vector<SupernodeId> mapped_kids;
  for (const SupernodeId fid : phys) {
    const SupernodeId s = fid_to_orig[fid];
    rec_off[fid] = rec.size();
    PutVarint64(&rec, fid);
    const SupernodeId p = forest.Parent(s);
    PutVarint64(&rec,
                p == kInvalidId ? 0 : static_cast<uint64_t>(renumber[p]) + 1);
    PutVarint64(&rec, lo[fid]);
    PutVarint64(&rec, forest.Size(s));
    edges.clear();
    summary.ForEachEdgeOf(s, [&](SupernodeId other, EdgeSign sign) {
      edges.emplace_back(renumber[other], sign);
    });
    std::sort(edges.begin(), edges.end());
    PutVarint64(&rec, edges.size());
    uint64_t prev = 0;
    for (const auto& [ofid, sign] : edges) {
      PutVarint64(&rec, ((ofid - prev) << 1) | (sign > 0 ? 1 : 0));
      prev = ofid;
      // The other endpoint's interval rides along in the edge so the
      // coverage walk never has to fault in that endpoint's record.
      PutVarint64(&rec, lo[ofid]);
      PutVarint64(&rec, forest.Size(fid_to_orig[ofid]));
    }
    if (forest.IsLeaf(s)) {
      PutVarint64(&rec, 0);
    } else {
      const auto& kids = forest.Children(s);
      mapped_kids.clear();
      mapped_kids.reserve(kids.size());
      for (const SupernodeId c : kids) mapped_kids.push_back(renumber[c]);
      std::sort(mapped_kids.begin(), mapped_kids.end());
      PutVarint64(&rec, mapped_kids.size());
      SupernodeId prev_c = 0;
      for (const SupernodeId c : mapped_kids) {
        PutVarint64(&rec, c - prev_c);
        prev_c = c;
      }
    }
  }

  // Section geometry, then the page-table fixed point (the page table
  // indexes every page of the file, itself included).
  const uint64_t loc_pages = PagesFor(total, kLocatorStride, psz);
  const uint64_t rank_pages = PagesFor(n, kRankStride, psz);
  const uint64_t la_pages = PagesFor(n, kLeafAtStride, psz);
  const uint64_t rec_pages = (rec.size() + psz - 1) / psz;
  const uint64_t data_pages = loc_pages + rank_pages + la_pages + rec_pages;
  uint64_t pt_pages = 0;
  uint64_t num_pages = 0;
  for (;;) {
    num_pages = 1 + pt_pages + data_pages;
    const uint64_t need = PagesFor(num_pages, kPageTableStride, psz);
    if (need == pt_pages) break;
    pt_pages = need;
  }
  if (num_pages > 0xFFFFFFFFull) {
    return Status::InvalidArgument("summary too large for the paged format");
  }

  SectionRange pt{1, static_cast<uint32_t>(pt_pages)};
  SectionRange loc_r{pt.first_page + pt.num_pages,
                     static_cast<uint32_t>(loc_pages)};
  SectionRange rank_r{loc_r.first_page + loc_r.num_pages,
                      static_cast<uint32_t>(rank_pages)};
  SectionRange la_r{rank_r.first_page + rank_r.num_pages,
                    static_cast<uint32_t>(la_pages)};
  SectionRange rec_r{la_r.first_page + la_r.num_pages,
                     static_cast<uint32_t>(rec_pages)};

  std::string file(num_pages * psz, '\0');
  auto* bytes = reinterpret_cast<uint8_t*>(file.data());

  // Locator: fid -> (absolute record page, in-page offset).
  const uint64_t epp_loc = psz / kLocatorStride;
  for (uint32_t fid = 0; fid < total; ++fid) {
    uint8_t* e = bytes + (loc_r.first_page + fid / epp_loc) * psz +
                 (fid % epp_loc) * kLocatorStride;
    PutLE32(e, rec_r.first_page + static_cast<uint32_t>(rec_off[fid] / psz));
    PutLE16(e + 4, static_cast<uint16_t>(rec_off[fid] % psz));
  }

  // Rank and leaf_at, fixed 4-byte entries.
  const uint64_t epp4 = psz / kRankStride;
  for (NodeId v = 0; v < n; ++v) {
    PutLE32(bytes + (rank_r.first_page + v / epp4) * psz +
                (v % epp4) * kRankStride,
            rank[v]);
    PutLE32(bytes + (la_r.first_page + v / epp4) * psz +
                (v % epp4) * kLeafAtStride,
            leaf_at[v]);
  }

  // Record stream, chunked across its pages back to back.
  std::memcpy(bytes + static_cast<uint64_t>(rec_r.first_page) * psz,
              rec.data(), rec.size());

  // Per-page checksums of every data page; header and page-table pages
  // keep zero entries (they are covered by the two header checksums).
  const uint64_t epp_pt = psz / kPageTableStride;
  for (uint64_t p = loc_r.first_page; p < num_pages; ++p) {
    PutLE64(bytes + (pt.first_page + p / epp_pt) * psz +
                (p % epp_pt) * kPageTableStride,
            Checksum64(bytes + p * psz, psz));
  }
  const uint64_t pt_checksum =
      Checksum64(bytes + static_cast<uint64_t>(pt.first_page) * psz,
                 pt_pages * psz);

  // Header page.
  std::string hdr(reinterpret_cast<const char*>(kPagedMagic),
                  sizeof(kPagedMagic));
  PutVarint64(&hdr, kPagedVersion);
  PutVarint64(&hdr, psz);
  PutVarint64(&hdr, num_pages);
  PutVarint64(&hdr, n);
  PutVarint64(&hdr, num_internal);
  PutVarint64(&hdr, rec.size());
  for (const SectionRange& r : {pt, loc_r, rank_r, la_r, rec_r}) {
    PutVarint64(&hdr, r.first_page);
    PutVarint64(&hdr, r.num_pages);
  }
  PutVarint64(&hdr, stats.num_roots);
  PutVarint64(&hdr, stats.p_count);
  PutVarint64(&hdr, stats.n_count);
  PutVarint64(&hdr, stats.h_count);
  PutVarint64(&hdr, stats.max_height);
  PutVarint64(&hdr, std::bit_cast<uint64_t>(stats.avg_leaf_depth));
  uint8_t le64[8];
  PutLE64(le64, pt_checksum);
  hdr.append(reinterpret_cast<const char*>(le64), 8);
  PutLE64(le64, Checksum64(reinterpret_cast<const uint8_t*>(hdr.data()),
                           hdr.size()));
  hdr.append(reinterpret_cast<const char*>(le64), 8);
  assert(hdr.size() <= kMinPageSize && "header must fit the smallest page");
  std::memcpy(bytes, hdr.data(), hdr.size());
  return file;
}

StatusOr<PagedHeader> ParsePagedHeader(const char* data, size_t size,
                                       uint64_t file_size) {
  if (file_size < kMinPageSize || size < kMinPageSize) {
    return Status::Corruption("paged file truncated below the minimum page");
  }
  if (!IsPagedMagic(data, size)) {
    return Status::Corruption("bad paged magic");
  }
  // The writer keeps the whole header within the smallest legal page, so
  // parsing never needs to know page_size before reading it.
  VarintReader reader(data + sizeof(kPagedMagic),
                      kMinPageSize - sizeof(kPagedMagic));
  uint64_t version = 0, psz = 0, num_pages = 0, num_leaves = 0,
           num_internal = 0;
  Status s = reader.Get(&version);
  if (!s.ok()) return s;
  if (version != kPagedVersion) {
    return Status::Corruption("unsupported paged format version " +
                              std::to_string(version));
  }
  if (!(s = reader.Get(&psz)).ok()) return s;
  if (!ValidPageSize(psz)) {
    return Status::Corruption("invalid page size " + std::to_string(psz));
  }
  if (!(s = reader.Get(&num_pages)).ok()) return s;
  if (num_pages < 2 || num_pages > 0xFFFFFFFFull) {
    return Status::Corruption("invalid page count");
  }
  if (file_size != num_pages * psz) {
    return Status::Corruption(
        "file size " + std::to_string(file_size) + " does not match " +
        std::to_string(num_pages) + " pages of " + std::to_string(psz) +
        " bytes");
  }
  if (!(s = reader.Get(&num_leaves)).ok()) return s;
  if (num_leaves > kMaxNodes) {
    return Status::InvalidArgument(
        "declared num_leaves " + std::to_string(num_leaves) +
        " exceeds the supernode id space (max " + std::to_string(kMaxNodes) +
        ")");
  }
  if (!(s = reader.Get(&num_internal)).ok()) return s;
  // A forest over n leaves whose internal nodes all have >= 2 children
  // has at most n - 1 of them (the v1 rule).
  if (num_internal + 1 > num_leaves && num_internal != 0) {
    return Status::InvalidArgument("too many internal supernodes");
  }

  PagedHeader h;
  h.page_size = static_cast<uint32_t>(psz);
  h.num_pages = static_cast<uint32_t>(num_pages);
  h.num_leaves = static_cast<NodeId>(num_leaves);
  h.num_internal = static_cast<uint32_t>(num_internal);
  if (!(s = reader.Get(&h.record_bytes)).ok()) return s;
  if (h.record_bytes > file_size) {
    return Status::Corruption("record stream larger than the file");
  }
  SectionRange* ranges[5] = {&h.page_table, &h.locator, &h.rank, &h.leaf_at,
                             &h.records};
  for (SectionRange* r : ranges) {
    uint64_t first = 0, count = 0;
    if (!(s = reader.Get(&first)).ok()) return s;
    if (!(s = reader.Get(&count)).ok()) return s;
    if (first > num_pages || count > num_pages) {
      return Status::Corruption("section range out of bounds");
    }
    r->first_page = static_cast<uint32_t>(first);
    r->num_pages = static_cast<uint32_t>(count);
  }
  uint64_t num_roots = 0, pc = 0, nc = 0, hc = 0, mh = 0, avg_bits = 0;
  if (!(s = reader.Get(&num_roots)).ok()) return s;
  if (!(s = reader.Get(&pc)).ok()) return s;
  if (!(s = reader.Get(&nc)).ok()) return s;
  if (!(s = reader.Get(&hc)).ok()) return s;
  if (!(s = reader.Get(&mh)).ok()) return s;
  if (mh > 0xFFFFFFFFull) return Status::Corruption("max height out of range");
  if (!(s = reader.Get(&avg_bits)).ok()) return s;
  h.num_roots = num_roots;
  h.p_count = pc;
  h.n_count = nc;
  h.h_count = hc;
  h.max_height = static_cast<uint32_t>(mh);
  h.avg_leaf_depth = std::bit_cast<double>(avg_bits);

  if (reader.remaining() < 16) {
    return Status::Corruption("paged header truncated");
  }
  const auto* u8 = reinterpret_cast<const uint8_t*>(data);
  const size_t cksum_pos = sizeof(kPagedMagic) + reader.position();
  h.page_table_checksum = GetLE64(u8 + cksum_pos);
  const uint64_t stored = GetLE64(u8 + cksum_pos + 8);
  if (stored != Checksum64(u8, cksum_pos + 8)) {
    return Status::Corruption("paged header checksum mismatch");
  }
  // The writer zero-fills the header page past the checksums; anything
  // else there is damage the checksums cannot see (they only cover the
  // bytes before them), so reject it explicitly. Callers hand us at
  // least the first kMinPageSize bytes; the page-0 tail beyond that is
  // checked by the open path when eager verification is on.
  for (size_t i = cksum_pos + 16; i < kMinPageSize && i < size; ++i) {
    if (u8[i] != 0) {
      return Status::Corruption("nonzero slack in the header page");
    }
  }

  // Geometry must be exactly what the declared counts imply: section
  // layout order is fixed, fixed-stride sections have no slack pages, and
  // the record section runs to the end of the file. Anything else is a
  // forged header even if each range is individually in bounds.
  const uint64_t total = num_leaves + num_internal;
  uint64_t expect_first = 1;
  const uint64_t expects[5] = {
      PagesFor(num_pages, kPageTableStride, psz),
      PagesFor(total, kLocatorStride, psz),
      PagesFor(num_leaves, kRankStride, psz),
      PagesFor(num_leaves, kLeafAtStride, psz),
      (h.record_bytes + psz - 1) / psz,
  };
  for (int i = 0; i < 5; ++i) {
    if (ranges[i]->first_page != expect_first ||
        ranges[i]->num_pages != expects[i]) {
      return Status::Corruption("section layout does not match counts");
    }
    expect_first += expects[i];
  }
  if (expect_first != num_pages) {
    return Status::Corruption("sections do not cover the file");
  }
  // Every record encodes at least six varint fields of one byte each
  // (id, parent, lo, len, edge count, child count), so a record stream
  // too short for `total` records is rejected here, before any locator
  // entry is trusted.
  if (h.record_bytes < total * 6) {
    return Status::Corruption("record stream too short for supernode count");
  }
  return h;
}

}  // namespace slugger::storage
