#include "storage/storage.hpp"

#include <fstream>
#include <utility>

#include "storage/paged_source.hpp"
#include "summary/serialize.hpp"

namespace slugger::storage {

namespace {

PagedOpenOptions ToPagedOptions(const OpenOptions& options) {
  PagedOpenOptions paged;
  paged.buffer = options.buffer;
  paged.eager_verify = options.eager_verify;
  paged.record_cache_capacity = options.record_cache_capacity;
  return paged;
}

/// Wraps an open paged source per the requested mode.
StatusOr<CompressedGraph> FinishPagedOpen(
    StatusOr<std::shared_ptr<PagedSummarySource>> source,
    const OpenOptions& options) {
  if (!source.ok()) return source.status();
  CompressedGraph graph(std::move(source).value());
  if (options.mode == OpenOptions::Mode::kInMemory) {
    Status ready = graph.Materialize();
    if (!ready.ok()) return ready;
  }
  return graph;
}

}  // namespace

StatusOr<std::string> Serialize(const CompressedGraph& graph,
                                const SaveOptions& options) {
  // Either format serializes from the in-memory summary; a paged handle
  // must materialize first (and may legitimately fail to).
  Status ready = graph.Materialize();
  if (!ready.ok()) return ready;
  if (options.format == Format::kMonolithicV1) {
    return summary::SerializeSummary(graph.summary());
  }
  PagedWriteOptions paged;
  paged.page_size = options.page_size;
  return SerializePaged(graph.summary(), graph.stats(), paged);
}

Status Save(const CompressedGraph& graph, const std::string& path,
            const SaveOptions& options) {
  StatusOr<std::string> bytes = Serialize(graph, options);
  if (!bytes.ok()) return bytes.status();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out.write(bytes.value().data(),
            static_cast<std::streamsize>(bytes.value().size()));
  out.flush();
  if (!out) {
    return Status::IOError("write failed on " + path);
  }
  return Status::OK();
}

StatusOr<CompressedGraph> Open(const std::string& path,
                               const OpenOptions& options) {
  char magic[sizeof(kPagedMagic)] = {};
  size_t got = 0;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::IOError("cannot open " + path);
    }
    in.read(magic, sizeof(magic));
    got = static_cast<size_t>(in.gcount());
  }
  if (IsPagedMagic(magic, got)) {
    return FinishPagedOpen(
        PagedSummarySource::OpenFile(path, ToPagedOptions(options)), options);
  }
  // Not paged: hand the whole file to the v1 loader, which validates the
  // monolithic magic itself (and so also rejects unknown formats).
  StatusOr<summary::SummaryGraph> loaded = summary::LoadSummary(path);
  if (!loaded.ok()) return loaded.status();
  return CompressedGraph(std::move(loaded).value());
}

StatusOr<CompressedGraph> OpenBuffer(std::string bytes,
                                     const OpenOptions& options) {
  if (IsPagedMagic(bytes.data(), bytes.size())) {
    return FinishPagedOpen(
        PagedSummarySource::OpenBuffer(std::move(bytes),
                                       ToPagedOptions(options)),
        options);
  }
  StatusOr<summary::SummaryGraph> parsed = summary::DeserializeSummary(bytes);
  if (!parsed.ok()) return parsed.status();
  return CompressedGraph(std::move(parsed).value());
}

}  // namespace slugger::storage
