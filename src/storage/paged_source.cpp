#include "storage/paged_source.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <new>
#include <numeric>
#include <stdexcept>
#include <sys/stat.h>
#include <utility>

#include "obs/metrics.hpp"

namespace slugger::storage {

namespace {

// Decoded-record cache effectiveness across every open paged source.
struct RecordCacheObsHandles {
  obs::Counter* hits = obs::MetricsRegistry::Global().GetCounter(
      "slugger_paged_record_cache_hits_total",
      "ancestor-record lookups served from the decoded cache");
  obs::Counter* misses = obs::MetricsRegistry::Global().GetCounter(
      "slugger_paged_record_cache_misses_total",
      "ancestor-record lookups that parsed pages");
};

const RecordCacheObsHandles& RecordCacheObs() {
  static RecordCacheObsHandles handles;
  return handles;
}

/// Mirrors the override dominance constant of summary/neighbor_query.cpp:
/// large enough to out-vote any real net coverage on a pair.
constexpr int32_t kForcedCoverage = INT32_MAX / 2;

/// Restores the between-queries scratch invariant after a walk, complete
/// or aborted: zero counts over touched, clear touched.
void ResetScratch(summary::QueryScratch* scratch) {
  for (NodeId u : scratch->touched) scratch->count[u] = 0;
  scratch->touched.clear();
}

/// Varint cursor over the record stream, following it across page
/// boundaries through the buffer manager. Bounded by record_bytes: any
/// read past the stream end is Corruption, so a forged length can never
/// walk off the file.
class RecordCursor {
 public:
  RecordCursor(BufferManager* buffer, const PagedHeader& header, uint64_t pos)
      : buffer_(buffer),
        first_page_(header.records.first_page),
        page_size_(header.page_size),
        end_(header.record_bytes),
        pos_(pos) {}

  uint64_t pos() const { return pos_; }
  uint64_t remaining() const { return end_ - pos_; }

  Status Get(uint64_t* value) {
    uint64_t result = 0;
    int shift = 0;
    for (;;) {
      if (pos_ >= end_) {
        return Status::Corruption("record stream overrun");
      }
      const uint32_t rel = static_cast<uint32_t>(pos_ / page_size_);
      if (!page_ || rel != rel_page_) {
        StatusOr<PageRef> ref = buffer_->Fetch(first_page_ + rel);
        if (!ref.ok()) return ref.status();
        page_ = std::move(ref.value());
        rel_page_ = rel;
      }
      const uint8_t byte = page_.data()[pos_ % page_size_];
      ++pos_;
      if (shift > 63 || (shift == 63 && (byte & 0x7F) > 1)) {
        return Status::Corruption("varint overflow in record stream");
      }
      result |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    *value = result;
    return Status::OK();
  }

 private:
  BufferManager* buffer_;
  uint32_t first_page_;
  uint32_t rel_page_ = kInvalidId;
  uint64_t page_size_;
  uint64_t end_;
  uint64_t pos_;
  PageRef page_;
};

Status FullPread(int fd, uint8_t* out, size_t n, uint64_t off,
                 const std::string& what) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r =
        ::pread(fd, out + got, n - got, static_cast<off_t>(off + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("read failed on " + what + ": " +
                             std::strerror(errno));
    }
    if (r == 0) return Status::Corruption("short read on " + what);
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<uint64_t>> PagedSummarySource::LoadPageTable(
    const PagedHeader& header, const uint8_t* pt_bytes) {
  const uint64_t pt_len =
      static_cast<uint64_t>(header.page_table.num_pages) * header.page_size;
  if (Checksum64(pt_bytes, pt_len) != header.page_table_checksum) {
    return Status::Corruption("page table checksum mismatch");
  }
  std::vector<uint64_t> sums(header.num_pages);
  const uint64_t epp = header.page_size / kPageTableStride;
  for (uint32_t p = 0; p < header.num_pages; ++p) {
    sums[p] = GetLE64(pt_bytes + (p / epp) * header.page_size +
                      (p % epp) * kPageTableStride);
  }
  return sums;
}

StatusOr<std::shared_ptr<PagedSummarySource>> PagedSummarySource::Finish(
    PagedHeader header, std::unique_ptr<BufferManager> buffer,
    const PagedOpenOptions& options) {
  // lint:allow(naked-new: private ctor, wrapped in shared_ptr on this line)
  auto src = std::shared_ptr<PagedSummarySource>(new PagedSummarySource());
  src->header_ = header;
  src->buffer_ = std::move(buffer);
  src->cache_capacity_per_shard_ =
      options.record_cache_capacity == 0
          ? 0
          : std::max<uint32_t>(
                1, options.record_cache_capacity /
                       static_cast<uint32_t>(kCacheShards));
  if (options.eager_verify) {
    // The header checksums cover page 0 only up to kMinPageSize (the
    // parser checks that window's slack); with larger pages the rest of
    // the header page must be the writer's zero fill.
    if (header.page_size > kMinPageSize) {
      StatusOr<PageRef> head = src->buffer_->Fetch(0);
      if (!head.ok()) return head.status();
      const uint8_t* data = head.value().data();
      for (uint32_t i = kMinPageSize; i < header.page_size; ++i) {
        if (data[i] != 0) {
          return Status::Corruption("nonzero slack in the header page");
        }
      }
    }
    // Touch every data page once; verify-once backends keep the verdict.
    for (uint32_t p = header.locator.first_page; p < header.num_pages; ++p) {
      StatusOr<PageRef> ref = src->buffer_->Fetch(p);
      if (!ref.ok()) return ref.status();
    }
  }
  return src;
}

StatusOr<std::shared_ptr<PagedSummarySource>> PagedSummarySource::OpenFile(
    const std::string& path, const PagedOpenOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("fstat failed on " + path + ": " +
                           std::strerror(err));
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  uint8_t head[kMinPageSize] = {};
  const size_t head_len =
      static_cast<size_t>(std::min<uint64_t>(file_size, kMinPageSize));
  Status s = FullPread(fd, head, head_len, 0, path + " header");
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  StatusOr<PagedHeader> header = ParsePagedHeader(
      reinterpret_cast<const char*>(head), head_len, file_size);
  if (!header.ok()) {
    ::close(fd);
    return header.status();
  }
  const PagedHeader& h = header.value();
  std::string pt(static_cast<uint64_t>(h.page_table.num_pages) * h.page_size,
                 '\0');
  s = FullPread(fd, reinterpret_cast<uint8_t*>(pt.data()), pt.size(),
                static_cast<uint64_t>(h.page_table.first_page) * h.page_size,
                path + " page table");
  ::close(fd);
  if (!s.ok()) return s;
  StatusOr<std::vector<uint64_t>> sums =
      LoadPageTable(h, reinterpret_cast<const uint8_t*>(pt.data()));
  if (!sums.ok()) return sums.status();
  StatusOr<std::unique_ptr<BufferManager>> buffer = BufferManager::OpenFile(
      path, h.page_size, std::move(sums).value(), options.buffer);
  if (!buffer.ok()) return buffer.status();
  return Finish(h, std::move(buffer).value(), options);
}

StatusOr<std::shared_ptr<PagedSummarySource>> PagedSummarySource::OpenBuffer(
    std::string bytes, const PagedOpenOptions& options) {
  StatusOr<PagedHeader> header =
      ParsePagedHeader(bytes.data(), bytes.size(), bytes.size());
  if (!header.ok()) return header.status();
  const PagedHeader& h = header.value();
  StatusOr<std::vector<uint64_t>> sums = LoadPageTable(
      h, reinterpret_cast<const uint8_t*>(bytes.data()) +
             static_cast<uint64_t>(h.page_table.first_page) * h.page_size);
  if (!sums.ok()) return sums.status();
  StatusOr<std::unique_ptr<BufferManager>> buffer = BufferManager::FromBuffer(
      std::move(bytes), h.page_size, std::move(sums).value());
  if (!buffer.ok()) return buffer.status();
  return Finish(h, std::move(buffer).value(), options);
}

StatusOr<uint64_t> PagedSummarySource::LocateRecord(uint32_t fid) const {
  if (fid >= header_.total_supernodes()) {
    return Status::InvalidArgument("supernode id out of range");
  }
  const uint64_t epp = header_.page_size / kLocatorStride;
  StatusOr<PageRef> ref =
      buffer_->Fetch(header_.locator.first_page +
                     static_cast<uint32_t>(fid / epp));
  if (!ref.ok()) return ref.status();
  const uint8_t* e = ref.value().data() + (fid % epp) * kLocatorStride;
  const uint32_t rpage = GetLE32(e);
  const uint32_t roff = GetLE16(e + 4);
  if (rpage < header_.records.first_page ||
      rpage >= header_.records.first_page + header_.records.num_pages ||
      roff >= header_.page_size) {
    return Status::Corruption("locator entry out of range");
  }
  const uint64_t pos =
      static_cast<uint64_t>(rpage - header_.records.first_page) *
          header_.page_size +
      roff;
  if (pos >= header_.record_bytes) {
    return Status::Corruption("locator points past the record stream");
  }
  return pos;
}

StatusOr<PagedSummarySource::DecodedRecord> PagedSummarySource::ParseRecord(
    uint32_t fid, uint64_t pos, uint64_t* consumed) const {
  RecordCursor cur(buffer_.get(), header_, pos);
  const uint64_t total = header_.total_supernodes();
  const NodeId n = header_.num_leaves;
  uint64_t id = 0, parent_p1 = 0, lo = 0, len = 0, nedges = 0;
  Status s = cur.Get(&id);
  if (!s.ok()) return s;
  if (id != fid) {
    return Status::Corruption("record id disagrees with locator");
  }
  if (!(s = cur.Get(&parent_p1)).ok()) return s;
  DecodedRecord rec;
  if (parent_p1 != 0) {
    const uint64_t parent = parent_p1 - 1;
    // Bottom-up ids make every parent a later, internal supernode.
    if (parent >= total || parent <= fid || parent < n) {
      return Status::Corruption("record parent out of range");
    }
    rec.parent = static_cast<uint32_t>(parent);
  }
  if (!(s = cur.Get(&lo)).ok()) return s;
  if (!(s = cur.Get(&len)).ok()) return s;
  if (len == 0 || lo > n || len > n - lo) {
    return Status::Corruption("record leaf interval out of range");
  }
  rec.lo = static_cast<uint32_t>(lo);
  rec.len = static_cast<uint32_t>(len);
  if (!(s = cur.Get(&nedges)).ok()) return s;
  // An edge encodes as three varints of at least one byte each; bound the
  // count by what the remaining stream can back before reserving.
  if (nedges > cur.remaining() / 3) {
    return Status::Corruption("record edge count exceeds the stream");
  }
  rec.edges.reserve(nedges);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < nedges; ++i) {
    uint64_t packed = 0, olo = 0, olen = 0;
    if (!(s = cur.Get(&packed)).ok()) return s;
    const uint64_t delta = packed >> 1;
    if (delta > 0xFFFFFFFFull) {
      return Status::Corruption("edge endpoint delta out of range");
    }
    if (i > 0 && delta == 0) {
      return Status::Corruption("duplicate edge endpoint");
    }
    const uint64_t other = prev + delta;
    prev = other;
    if (other >= total) {
      return Status::Corruption("edge endpoint out of range");
    }
    if (!(s = cur.Get(&olo)).ok()) return s;
    if (!(s = cur.Get(&olen)).ok()) return s;
    if (olen == 0 || olo > n || olen > n - olo) {
      return Status::Corruption("edge endpoint interval out of range");
    }
    rec.edges.push_back(DecodedEdge{(packed & 1) ? +1 : -1,
                                    static_cast<uint32_t>(olo),
                                    static_cast<uint32_t>(olen)});
  }
  // The hot path stops here: children are only needed by Materialize,
  // which parses the stream sequentially itself.
  if (consumed != nullptr) *consumed = cur.pos() - pos;
  return rec;
}

StatusOr<std::shared_ptr<const PagedSummarySource::DecodedRecord>>
PagedSummarySource::FetchRecord(uint32_t fid) const {
  CacheShard& shard = cache_[fid % kCacheShards];
  if (cache_capacity_per_shard_ > 0) {
    MutexLock lock(&shard.mu);
    auto it = shard.map.find(fid);
    if (it != shard.map.end()) {
      RecordCacheObs().hits->Add(1);
      return it->second;
    }
  }
  RecordCacheObs().misses->Add(1);
  StatusOr<uint64_t> pos = LocateRecord(fid);
  if (!pos.ok()) return pos.status();
  StatusOr<DecodedRecord> rec = ParseRecord(fid, pos.value(), nullptr);
  if (!rec.ok()) return rec.status();
  auto ptr =
      std::make_shared<const DecodedRecord>(std::move(rec).value());
  if (cache_capacity_per_shard_ > 0) {
    MutexLock lock(&shard.mu);
    if (shard.map.find(fid) == shard.map.end()) {
      if (shard.map.size() >= cache_capacity_per_shard_ &&
          !shard.fifo.empty()) {
        shard.map.erase(shard.fifo.front());
        shard.fifo.pop_front();
      }
      shard.map.emplace(fid, ptr);
      shard.fifo.push_back(fid);
    }
  }
  return StatusOr<std::shared_ptr<const DecodedRecord>>(std::move(ptr));
}

template <typename Fn>
Status PagedSummarySource::ForLeafRange(uint32_t lo, uint32_t len,
                                        Fn&& fn) const {
  const uint64_t epp = header_.page_size / kLeafAtStride;
  uint32_t r = lo;
  const uint32_t end = lo + len;
  while (r < end) {
    const uint32_t page_idx = static_cast<uint32_t>(r / epp);
    StatusOr<PageRef> ref =
        buffer_->Fetch(header_.leaf_at.first_page + page_idx);
    if (!ref.ok()) return ref.status();
    const uint32_t page_end = static_cast<uint32_t>(
        std::min<uint64_t>(end, (static_cast<uint64_t>(page_idx) + 1) * epp));
    const uint8_t* base = ref.value().data();
    for (; r < page_end; ++r) {
      const uint32_t leaf = GetLE32(base + (r % epp) * kLeafAtStride);
      if (leaf >= header_.num_leaves) {
        return Status::Corruption("leaf_at entry out of range");
      }
      fn(static_cast<NodeId>(leaf));
    }
  }
  return Status::OK();
}

Status PagedSummarySource::AccumulatePaged(
    NodeId v, summary::QueryScratch* scratch) const {
  if (scratch->count.size() < header_.num_leaves) {
    scratch->count.resize(header_.num_leaves, 0);
  }
  const uint64_t total = header_.total_supernodes();
  uint64_t iters = 0;
  uint32_t node = v;
  while (node != kInvalidId) {
    if (++iters > total) {
      return Status::Corruption("parent cycle in paged hierarchy");
    }
    StatusOr<std::shared_ptr<const DecodedRecord>> rec = FetchRecord(node);
    if (!rec.ok()) return rec.status();
    for (const DecodedEdge& e : rec.value()->edges) {
      Status s = ForLeafRange(e.olo, e.olen, [&](NodeId u) {
        if (scratch->count[u] == 0) scratch->touched.push_back(u);
        scratch->count[u] += e.sign;
      });
      if (!s.ok()) return s;
    }
    node = rec.value()->parent;
  }
  return Status::OK();
}

Status PagedSummarySource::Neighbors(
    NodeId v, summary::QueryScratch* scratch,
    std::span<const summary::NeighborOverride> overrides) const {
  if (v >= header_.num_leaves) {
    return Status::InvalidArgument("node id " + std::to_string(v) +
                                   " out of range");
  }
  scratch->result.clear();
  Status s = AccumulatePaged(v, scratch);
  if (!s.ok()) {
    ResetScratch(scratch);
    return s;
  }
  for (const summary::NeighborOverride& o : overrides) {
    if (o.neighbor >= header_.num_leaves) continue;
    if (scratch->count[o.neighbor] == 0) scratch->touched.push_back(o.neighbor);
    scratch->count[o.neighbor] =
        o.sign > 0 ? kForcedCoverage : -kForcedCoverage;
  }
  for (NodeId u : scratch->touched) {
    if (scratch->count[u] > 0 && u != v) scratch->result.push_back(u);
    scratch->count[u] = 0;
  }
  scratch->touched.clear();
  std::sort(scratch->result.begin(), scratch->result.end());
  return Status::OK();
}

StatusOr<uint64_t> PagedSummarySource::Degree(
    NodeId v, summary::QueryScratch* scratch,
    std::span<const summary::NeighborOverride> overrides) const {
  if (v >= header_.num_leaves) {
    return Status::InvalidArgument("node id " + std::to_string(v) +
                                   " out of range");
  }
  Status s = AccumulatePaged(v, scratch);
  if (!s.ok()) {
    ResetScratch(scratch);
    return s;
  }
  for (const summary::NeighborOverride& o : overrides) {
    if (o.neighbor >= header_.num_leaves) continue;
    if (scratch->count[o.neighbor] == 0) scratch->touched.push_back(o.neighbor);
    scratch->count[o.neighbor] =
        o.sign > 0 ? kForcedCoverage : -kForcedCoverage;
  }
  uint64_t degree = 0;
  for (NodeId u : scratch->touched) {
    degree += scratch->count[u] > 0 && u != v;
    scratch->count[u] = 0;
  }
  scratch->touched.clear();
  return degree;
}

StatusOr<uint32_t> PagedSummarySource::RankOf(NodeId v,
                                              PageRef* cached) const {
  const uint64_t epp = header_.page_size / kRankStride;
  const uint32_t pg =
      header_.rank.first_page + static_cast<uint32_t>(v / epp);
  if (!*cached || cached->page() != pg) {
    StatusOr<PageRef> ref = buffer_->Fetch(pg);
    if (!ref.ok()) return ref.status();
    *cached = std::move(ref.value());
  }
  const uint32_t r = GetLE32(cached->data() + (v % epp) * kRankStride);
  if (r >= header_.num_leaves) {
    return Status::Corruption("rank entry out of range");
  }
  return r;
}

template <bool kDegreesOnly>
Status PagedSummarySource::RunPagedBatch(
    std::span<const NodeId> nodes, summary::BatchResult* result,
    std::vector<uint64_t>* degrees, summary::BatchScratch* s) const {
  const size_t batch = nodes.size();
  if constexpr (kDegreesOnly) {
    degrees->assign(batch, 0);
  } else {
    result->neighbors.clear();
    result->offsets.assign(batch + 1, 0);
  }
  if (batch == 0) return Status::OK();
  for (NodeId v : nodes) {
    if (v >= header_.num_leaves) {
      return Status::InvalidArgument("node id " + std::to_string(v) +
                                     " out of range");
    }
  }
  const auto fail = [&](Status st) {
    ResetScratch(&s->query);
    if constexpr (kDegreesOnly) {
      degrees->clear();
    } else {
      result->neighbors.clear();
      result->offsets.clear();
    }
    return st;
  };

  // Sort the batch by the file's leaf preorder so consecutive nodes share
  // record and leaf_at pages; `chains` doubles as the per-position rank
  // buffer (it is a plain uint32 scratch vector).
  s->chains.resize(batch);
  {
    PageRef cached;
    for (size_t i = 0; i < batch; ++i) {
      StatusOr<uint32_t> r = RankOf(nodes[i], &cached);
      if (!r.ok()) return fail(r.status());
      s->chains[i] = r.value();
    }
  }
  s->order.resize(batch);
  std::iota(s->order.begin(), s->order.end(), 0u);
  std::sort(s->order.begin(), s->order.end(),
            [s](uint32_t a, uint32_t b) {
              if (s->chains[a] != s->chains[b]) {
                return s->chains[a] < s->chains[b];
              }
              return a < b;
            });

  summary::QueryScratch& q = s->query;
  if (q.count.size() < header_.num_leaves) {
    q.count.resize(header_.num_leaves, 0);
  }
  if constexpr (!kDegreesOnly) {
    s->staged.clear();
    s->staged_begin.assign(1, 0);
  }

  for (size_t k = 0; k < batch; ++k) {
    const uint32_t i = s->order[k];
    const NodeId v = nodes[i];
    // Duplicates sort adjacently; copy the previous answer.
    if (k > 0 && nodes[s->order[k - 1]] == v) {
      if constexpr (kDegreesOnly) {
        (*degrees)[i] = (*degrees)[s->order[k - 1]];
      } else {
        const uint64_t prev_b = s->staged_begin[k - 1];
        const uint64_t prev_e = s->staged_begin[k];
        const size_t old_size = s->staged.size();
        s->staged.resize(old_size + (prev_e - prev_b));
        std::copy(s->staged.begin() + prev_b, s->staged.begin() + prev_e,
                  s->staged.begin() + old_size);
        s->staged_begin.push_back(s->staged.size());
      }
      continue;
    }
    Status st = AccumulatePaged(v, &q);
    if (!st.ok()) return fail(st);
    if constexpr (kDegreesOnly) {
      uint64_t degree = 0;
      for (NodeId u : q.touched) {
        degree += q.count[u] > 0 && u != v;
        q.count[u] = 0;
      }
      q.touched.clear();
      (*degrees)[i] = degree;
    } else {
      const size_t start = s->staged.size();
      for (NodeId u : q.touched) {
        if (q.count[u] > 0 && u != v) s->staged.push_back(u);
        q.count[u] = 0;
      }
      q.touched.clear();
      std::sort(s->staged.begin() + start, s->staged.end());
      s->staged_begin.push_back(s->staged.size());
    }
  }

  if constexpr (!kDegreesOnly) {
    // Staged answers are in processing order; emit them in input order.
    for (size_t k = 0; k < batch; ++k) {
      result->offsets[s->order[k] + 1] =
          s->staged_begin[k + 1] - s->staged_begin[k];
    }
    for (size_t i = 0; i < batch; ++i) {
      result->offsets[i + 1] += result->offsets[i];
    }
    result->neighbors.resize(s->staged.size());
    for (size_t k = 0; k < batch; ++k) {
      std::copy(s->staged.begin() + s->staged_begin[k],
                s->staged.begin() + s->staged_begin[k + 1],
                result->neighbors.begin() + result->offsets[s->order[k]]);
    }
  }
  return Status::OK();
}

Status PagedSummarySource::NeighborsBatch(std::span<const NodeId> nodes,
                                          summary::BatchResult* result,
                                          summary::BatchScratch* scratch)
    const {
  return RunPagedBatch<false>(nodes, result, nullptr, scratch);
}

Status PagedSummarySource::DegreeBatch(std::span<const NodeId> nodes,
                                       std::vector<uint64_t>* degrees,
                                       summary::BatchScratch* scratch) const {
  return RunPagedBatch<true>(nodes, nullptr, degrees, scratch);
}

StatusOr<ChainInfo> PagedSummarySource::ChainOf(NodeId v) const {
  if (v >= header_.num_leaves) {
    return Status::InvalidArgument("node id " + std::to_string(v) +
                                   " out of range");
  }
  ChainInfo info;
  const uint64_t total = header_.total_supernodes();
  uint64_t iters = 0;
  uint32_t node = v;
  while (node != kInvalidId) {
    if (++iters > total) {
      return Status::Corruption("parent cycle in paged hierarchy");
    }
    StatusOr<uint64_t> pos = LocateRecord(node);
    if (!pos.ok()) return pos.status();
    uint64_t consumed = 0;
    StatusOr<DecodedRecord> rec = ParseRecord(node, pos.value(), &consumed);
    if (!rec.ok()) return rec.status();
    info.chain_len++;
    info.chain_bytes += consumed;
    info.num_edges += rec.value().edges.size();
    for (const DecodedEdge& e : rec.value().edges) {
      info.covered_leaves += e.olen;
    }
    node = rec.value().parent;
  }
  return info;
}

StatusOr<summary::SummaryGraph> PagedSummarySource::Materialize() const {
  // The structural bounds below reject everything the stream itself can
  // contradict, but like the v1 deserializer the declared leaf count has
  // no byte-level bound — surface allocation failure as a Status instead
  // of tearing down the process.
  try {
    return MaterializeImpl();
  } catch (const std::bad_alloc&) {
    return Status::InvalidArgument(
        "paged summary declares more supernodes than memory allows");
  } catch (const std::length_error&) {
    return Status::InvalidArgument(
        "paged summary declares more supernodes than memory allows");
  }
}

StatusOr<summary::SummaryGraph> PagedSummarySource::MaterializeImpl() const {
  const NodeId n = header_.num_leaves;
  const uint64_t total = header_.total_supernodes();
  RecordCursor cur(buffer_.get(), header_, 0);

  std::vector<uint32_t> parent(total, kInvalidId);
  std::vector<uint32_t> lo(total, 0);
  std::vector<uint32_t> len(total, 0);
  std::vector<std::vector<SupernodeId>> pending(header_.num_internal);
  std::vector<uint8_t> seen(total, 0);
  struct DirectedEntry {
    uint32_t a, b;      // a's record listed b
    int8_t sign;
    uint32_t olo, olen; // b's interval as a's record claims it
  };
  std::vector<DirectedEntry> directed;

  for (uint64_t count = 0; count < total; ++count) {
    const uint64_t start = cur.pos();
    uint64_t id = 0, parent_p1 = 0, rlo = 0, rlen = 0, nedges = 0,
             nchildren = 0;
    Status s = cur.Get(&id);
    if (!s.ok()) return s;
    if (id >= total || seen[id]) {
      return Status::Corruption("record id out of range or duplicated");
    }
    seen[id] = 1;
    // Locator agreement: the random-access index must name exactly the
    // position the sequential scan found this record at.
    StatusOr<uint64_t> loc = LocateRecord(static_cast<uint32_t>(id));
    if (!loc.ok()) return loc.status();
    if (loc.value() != start) {
      return Status::Corruption("locator disagrees with record position");
    }
    if (!(s = cur.Get(&parent_p1)).ok()) return s;
    if (parent_p1 != 0) {
      const uint64_t p = parent_p1 - 1;
      if (p >= total || p <= id || p < n) {
        return Status::Corruption("record parent out of range");
      }
      parent[id] = static_cast<uint32_t>(p);
    }
    if (!(s = cur.Get(&rlo)).ok()) return s;
    if (!(s = cur.Get(&rlen)).ok()) return s;
    if (rlen == 0 || rlo > n || rlen > n - rlo) {
      return Status::Corruption("record leaf interval out of range");
    }
    if (id < n && rlen != 1) {
      return Status::Corruption("leaf record must cover one leaf");
    }
    lo[id] = static_cast<uint32_t>(rlo);
    len[id] = static_cast<uint32_t>(rlen);
    if (!(s = cur.Get(&nedges)).ok()) return s;
    if (nedges > cur.remaining() / 3) {
      return Status::Corruption("record edge count exceeds the stream");
    }
    uint64_t prev = 0;
    for (uint64_t i = 0; i < nedges; ++i) {
      uint64_t packed = 0, olo = 0, olen = 0;
      if (!(s = cur.Get(&packed)).ok()) return s;
      const uint64_t delta = packed >> 1;
      if (delta > 0xFFFFFFFFull) {
        return Status::Corruption("edge endpoint delta out of range");
      }
      if (i > 0 && delta == 0) {
        return Status::Corruption("duplicate edge endpoint");
      }
      const uint64_t other = prev + delta;
      prev = other;
      if (other >= total) {
        return Status::Corruption("edge endpoint out of range");
      }
      if (!(s = cur.Get(&olo)).ok()) return s;
      if (!(s = cur.Get(&olen)).ok()) return s;
      if (olen == 0 || olo > n || olen > n - olo) {
        return Status::Corruption("edge endpoint interval out of range");
      }
      directed.push_back(DirectedEntry{
          static_cast<uint32_t>(id), static_cast<uint32_t>(other),
          static_cast<int8_t>((packed & 1) ? +1 : -1),
          static_cast<uint32_t>(olo), static_cast<uint32_t>(olen)});
    }
    if (!(s = cur.Get(&nchildren)).ok()) return s;
    if (id < n) {
      if (nchildren != 0) {
        return Status::Corruption("leaf record with children");
      }
    } else {
      if (nchildren < 2) {
        return Status::Corruption("supernode with <2 children");
      }
      if (nchildren > cur.remaining()) {
        return Status::Corruption("child count exceeds the stream");
      }
      auto& kids = pending[id - n];
      kids.reserve(nchildren);
      uint64_t prev_c = 0;
      for (uint64_t j = 0; j < nchildren; ++j) {
        uint64_t delta = 0;
        if (!(s = cur.Get(&delta)).ok()) return s;
        if (delta > 0xFFFFFFFFull) {
          return Status::Corruption("child delta out of range");
        }
        if (j > 0 && delta == 0) {
          return Status::Corruption("duplicate child");
        }
        const uint64_t child = prev_c + delta;
        prev_c = child;
        if (child >= id) {
          return Status::Corruption("child id out of range (not bottom-up)");
        }
        kids.push_back(static_cast<SupernodeId>(child));
      }
    }
  }
  if (cur.pos() != header_.record_bytes) {
    return Status::Corruption("trailing bytes in record stream");
  }

  // Rebuild the forest with the v1 construction discipline: internal
  // nodes in ascending fid order, Merge on the first two children,
  // AdoptChild for the rest. Fresh ids are sequential, so created id ==
  // fid by construction.
  summary::SummaryGraph summary(n);
  summary.Reserve(static_cast<SupernodeId>(total));
  summary::HierarchyForest& forest = summary.forest();
  std::vector<uint8_t> has_parent(total, 0);
  for (uint32_t i = 0; i < header_.num_internal; ++i) {
    for (SupernodeId c : pending[i]) {
      if (has_parent[c]) return Status::Corruption("node parented twice");
      has_parent[c] = 1;
      if (!forest.IsRoot(c)) return Status::Corruption("child is not a root");
    }
    const SupernodeId m = summary.Merge(pending[i][0], pending[i][1]);
    assert(m == n + i);
    (void)m;
    for (size_t j = 2; j < pending[i].size(); ++j) {
      forest.AdoptChild(m, pending[i][j]);
    }
  }

  // Cross-check the per-record parent and interval claims against the
  // forest the children lists produced — the walk trusts the former, the
  // materialized summary embodies the latter, and they must be one truth.
  for (uint64_t id = 0; id < total; ++id) {
    if (forest.Parent(static_cast<SupernodeId>(id)) != parent[id]) {
      return Status::Corruption("record parent disagrees with children");
    }
    if (forest.Size(static_cast<SupernodeId>(id)) != len[id]) {
      return Status::Corruption("record interval disagrees with subtree size");
    }
  }
  // Laminar check: the children of every internal node partition its
  // interval exactly.
  {
    std::vector<SupernodeId> kids;
    for (uint32_t i = 0; i < header_.num_internal; ++i) {
      const uint64_t id = n + i;
      kids = pending[i];
      std::sort(kids.begin(), kids.end(),
                [&lo](SupernodeId a, SupernodeId b) { return lo[a] < lo[b]; });
      uint32_t at = lo[id];
      for (SupernodeId c : kids) {
        if (lo[c] != at) {
          return Status::Corruption("child intervals do not tile the parent");
        }
        at += len[c];
      }
      if (at != lo[id] + len[id]) {
        return Status::Corruption("child intervals do not tile the parent");
      }
    }
  }
  // The rank and leaf_at sections must agree with the records: rank is
  // the interval start of each leaf, and leaf_at is its inverse.
  {
    std::vector<uint32_t> ranks(n);
    PageRef cached;
    for (NodeId v = 0; v < n; ++v) {
      StatusOr<uint32_t> r = RankOf(v, &cached);
      if (!r.ok()) return r.status();
      if (r.value() != lo[v]) {
        return Status::Corruption("rank section disagrees with records");
      }
      ranks[v] = r.value();
    }
    uint32_t at = 0;
    bool inverse_ok = true;
    Status s = ForLeafRange(0, n, [&](NodeId u) {
      if (ranks[u] != at) inverse_ok = false;
      ++at;
    });
    if (!s.ok()) return s;
    if (!inverse_ok) {
      return Status::Corruption("leaf_at section is not the rank inverse");
    }
  }

  // Superedges: every non-self edge must be listed by both endpoint
  // records with the same sign, self-loops exactly once, endpoint
  // intervals as the records themselves declared.
  for (const DirectedEntry& e : directed) {
    if (e.olo != lo[e.b] || e.olen != len[e.b]) {
      return Status::Corruption("edge interval disagrees with endpoint");
    }
  }
  std::sort(directed.begin(), directed.end(),
            [](const DirectedEntry& x, const DirectedEntry& y) {
              const uint64_t kx =
                  (static_cast<uint64_t>(std::min(x.a, x.b)) << 32) |
                  std::max(x.a, x.b);
              const uint64_t ky =
                  (static_cast<uint64_t>(std::min(y.a, y.b)) << 32) |
                  std::max(y.a, y.b);
              if (kx != ky) return kx < ky;
              return x.a < y.a;
            });
  for (size_t i = 0; i < directed.size();) {
    const DirectedEntry& e = directed[i];
    const SupernodeId a = std::min(e.a, e.b);
    const SupernodeId b = std::max(e.a, e.b);
    size_t j = i;
    while (j < directed.size() &&
           std::min(directed[j].a, directed[j].b) == a &&
           std::max(directed[j].a, directed[j].b) == b) {
      ++j;
    }
    const size_t copies = j - i;
    const bool self = a == b;
    if ((self && copies != 1) || (!self && copies != 2) ||
        (copies == 2 && directed[i].sign != directed[i + 1].sign)) {
      return Status::Corruption("asymmetric superedge listing");
    }
    if (a != b && (forest.IsProperAncestor(a, b) ||
                   forest.IsProperAncestor(b, a))) {
      return Status::Corruption("nested superedge");
    }
    if (summary.GetSign(a, b) != 0) {
      return Status::Corruption("duplicate superedge");
    }
    summary.AddEdge(a, b, e.sign);
    i = j;
  }
  return summary;
}

}  // namespace slugger::storage
