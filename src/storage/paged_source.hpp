// Algorithm-4 neighbor queries served straight off a paged v2 file.
//
// A PagedSummarySource opens a v2 file with O(header + page table) I/O:
// it parses and checksums the header page, reads and checksums the page
// table, and constructs a BufferManager — no supernode record is touched
// until a query needs it. A query then faults in only the pages its
// ancestor-chain coverage walk touches: one locator entry per ancestor,
// the ancestors' records (preorder-adjacent on disk), and the leaf_at
// runs of the superedge endpoints (their intervals are denormalized into
// the edges, so endpoint records are never fetched).
//
// Every byte read off a page is treated as untrusted even though it
// passed a checksum: ids, counts, and intervals are bounded before they
// index anything, parent walks carry a cycle guard, and all failures
// surface as Status (Corruption/IOError), never a crash.
//
// Thread-safety: all query methods are const and safe to call from any
// number of threads concurrently, provided each caller brings its own
// scratch — the same contract as summary::QueryNeighbors. The decoded-
// record cache and BufferManager synchronize internally.
#ifndef SLUGGER_STORAGE_PAGED_SOURCE_HPP_
#define SLUGGER_STORAGE_PAGED_SOURCE_HPP_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/buffer_manager.hpp"
#include "storage/format.hpp"
#include "summary/neighbor_query.hpp"
#include "summary/stats.hpp"
#include "summary/summary_graph.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"
#include "util/types.hpp"

namespace slugger::storage {

struct PagedOpenOptions {
  BufferOptions buffer;
  /// Fetch (and so checksum) every data page at open. Turns any page
  /// corruption into an open-time error at the cost of O(file) I/O —
  /// off by default, which is what makes cold open O(header).
  bool eager_verify = false;
  /// Decoded supernode records kept hot (across all 16 shards); 0
  /// disables the cache. Records are small (a few edges each), so the
  /// default is a few hundred KiB — it is what keeps warm paged query
  /// throughput near the in-memory walk, which never re-parses varints.
  uint32_t record_cache_capacity = 4096;
};

/// Page-budget accounting of one node's ancestor chain, for tests that
/// assert a query touches no more pages than the chain explains and for
/// observability ("how expensive is this node?").
struct ChainInfo {
  uint32_t chain_len = 0;       ///< supernodes on the chain, leaf included
  uint64_t chain_bytes = 0;     ///< encoded bytes of the chain's records
  uint64_t covered_leaves = 0;  ///< sum of edge endpoint interval lengths
  uint64_t num_edges = 0;       ///< superedges incident to the chain
};

class PagedSummarySource {
 public:
  static StatusOr<std::shared_ptr<PagedSummarySource>> OpenFile(
      const std::string& path, const PagedOpenOptions& options = {});

  /// Takes ownership of a complete in-memory file image.
  static StatusOr<std::shared_ptr<PagedSummarySource>> OpenBuffer(
      std::string bytes, const PagedOpenOptions& options = {});

  NodeId num_leaves() const { return header_.num_leaves; }
  const PagedHeader& header() const { return header_; }
  summary::SummaryStats Stats() const { return header_.ToStats(); }
  BufferStats buffer_stats() const { return buffer_->stats(); }
  Io backend() const { return buffer_->backend(); }

  /// Neighbors of v, sorted ascending, left in scratch->result.
  /// `overrides` follow the summary::NeighborOverride contract (sorted by
  /// neighbor, each a valid subnode, v itself ignored).
  Status Neighbors(NodeId v, summary::QueryScratch* scratch,
                   std::span<const summary::NeighborOverride> overrides = {})
      const;

  StatusOr<uint64_t> Degree(
      NodeId v, summary::QueryScratch* scratch,
      std::span<const summary::NeighborOverride> overrides = {}) const;

  /// Batched neighbors in input order (duplicates allowed; a repeated
  /// node's answer is copied, not recomputed). Processes the batch in
  /// file-preorder so consecutive nodes share record pages. On error the
  /// result is emptied. Each per-node list is sorted ascending.
  Status NeighborsBatch(std::span<const NodeId> nodes,
                        summary::BatchResult* result,
                        summary::BatchScratch* scratch) const;

  Status DegreeBatch(std::span<const NodeId> nodes,
                     std::vector<uint64_t>* degrees,
                     summary::BatchScratch* scratch) const;

  /// Rebuilds the full in-memory summary from the record stream, with
  /// the v1 deserializer's structural validation (bottom-up children,
  /// single parenting, no nested or duplicate superedges) plus the v2
  /// cross-checks (locator agreement, interval/size agreement). This is
  /// the analytics path: decode/PageRank/BFS need the whole summary.
  StatusOr<summary::SummaryGraph> Materialize() const;

  /// Page-budget accounting of v's ancestor chain (bypasses the record
  /// cache so the figures reflect the file, not the cache).
  StatusOr<ChainInfo> ChainOf(NodeId v) const;

 private:
  struct DecodedEdge {
    int32_t sign;
    uint32_t olo;
    uint32_t olen;
  };
  /// The hot-path slice of one record: enough to climb and to cover.
  struct DecodedRecord {
    uint32_t parent = kInvalidId;  ///< fid of the parent, kInvalidId = root
    uint32_t lo = 0;
    uint32_t len = 0;
    std::vector<DecodedEdge> edges;
  };

  PagedSummarySource() = default;

  static StatusOr<std::shared_ptr<PagedSummarySource>> Finish(
      PagedHeader header, std::unique_ptr<BufferManager> buffer,
      const PagedOpenOptions& options);

  /// Validates the page table section against the header checksum and
  /// extracts the per-page checksum vector.
  static StatusOr<std::vector<uint64_t>> LoadPageTable(
      const PagedHeader& header, const uint8_t* pt_bytes);

  /// Record-stream byte position of fid's record, via its locator entry.
  StatusOr<uint64_t> LocateRecord(uint32_t fid) const;

  /// Parses the hot-path slice of the record at stream position `pos`,
  /// which must belong to `fid`. `consumed` (optional) receives the
  /// parsed byte count.
  StatusOr<DecodedRecord> ParseRecord(uint32_t fid, uint64_t pos,
                                      uint64_t* consumed) const;

  /// Cached fid -> decoded record.
  StatusOr<std::shared_ptr<const DecodedRecord>> FetchRecord(
      uint32_t fid) const;

  /// Applies fn(leaf) over leaf_at[lo .. lo+len), page by page.
  template <typename Fn>
  Status ForLeafRange(uint32_t lo, uint32_t len, Fn&& fn) const;

  /// The coverage pass of Algorithm 4 against the paged records; on error
  /// the scratch may hold partial counts (caller resets).
  Status AccumulatePaged(NodeId v, summary::QueryScratch* scratch) const;

  /// Preorder rank of leaf v from the rank section.
  StatusOr<uint32_t> RankOf(NodeId v, PageRef* cached) const;

  template <bool kDegreesOnly>
  Status RunPagedBatch(std::span<const NodeId> nodes,
                       summary::BatchResult* result,
                       std::vector<uint64_t>* degrees,
                       summary::BatchScratch* scratch) const;

  StatusOr<summary::SummaryGraph> MaterializeImpl() const;

  PagedHeader header_;
  std::unique_ptr<BufferManager> buffer_;

  // Decoded-record cache, sharded to keep concurrent readers off one
  // lock; FIFO eviction per shard (records are uniform enough that LRU
  // buys little over FIFO here).
  struct CacheShard {
    Mutex mu;
    std::unordered_map<uint32_t, std::shared_ptr<const DecodedRecord>> map
        SLUGGER_GUARDED_BY(mu);
    std::deque<uint32_t> fifo SLUGGER_GUARDED_BY(mu);
  };
  static constexpr size_t kCacheShards = 16;
  mutable std::array<CacheShard, kCacheShards> cache_;
  uint32_t cache_capacity_per_shard_ = 0;
};

}  // namespace slugger::storage

#endif  // SLUGGER_STORAGE_PAGED_SOURCE_HPP_
