// slugger::storage — the single persistence entry point for compressed
// graphs. One Save and one Open cover both on-disk formats:
//
//   v1 monolithic  the original varint stream (summary/serialize.hpp);
//                  loading reads and validates the whole file.
//   v2 paged       the page-segmented format of format.hpp; opening is
//                  O(header + page table) and queries fault in only the
//                  pages they touch (see PagedSummarySource).
//
// Open sniffs the leading magic bytes, so callers never say which format
// a file is in — v1 files written by older builds keep loading through
// the same call. Mode selects how a v2 file is served:
//
//   kAuto      v2 files open paged, v1 files load in memory (default)
//   kInMemory  always materialize (v2 files are fully validated up
//              front, like a v1 load)
//   kPaged     like kAuto; v1 files still load in memory, because the
//              monolithic format has no page structure to serve from —
//              documented back-compat, not an error.
//
// All parsing treats the file as untrusted: malformed input surfaces as
// InvalidArgument/Corruption, never a crash.
#ifndef SLUGGER_STORAGE_STORAGE_HPP_
#define SLUGGER_STORAGE_STORAGE_HPP_

#include <cstdint>
#include <string>

#include "api/compressed_graph.hpp"
#include "storage/buffer_manager.hpp"
#include "storage/format.hpp"
#include "util/status.hpp"

namespace slugger::storage {

enum class Format {
  kMonolithicV1,
  kPagedV2,
};

struct SaveOptions {
  Format format = Format::kPagedV2;
  /// Page size of a v2 file: a power of two in
  /// [kMinPageSize, kMaxPageSize]. Ignored by v1.
  uint32_t page_size = kDefaultPageSize;
};

struct OpenOptions {
  enum class Mode {
    kAuto,      ///< v2 paged, v1 in-memory
    kInMemory,  ///< always materialize
    kPaged,     ///< v2 paged; v1 falls back to in-memory
  };
  Mode mode = Mode::kAuto;
  /// Read-path knobs of a paged open (ignored for v1 files).
  BufferOptions buffer;
  bool eager_verify = false;
  uint32_t record_cache_capacity = 4096;
};

/// Writes `graph` to `path` in the selected format (atomically enough
/// for our purposes: a failed write leaves a partial file that will not
/// open). A paged handle is materialized first; its error propagates.
Status Save(const CompressedGraph& graph, const std::string& path,
            const SaveOptions& options = {});

/// The bytes Save would write, without touching the filesystem.
StatusOr<std::string> Serialize(const CompressedGraph& graph,
                                const SaveOptions& options = {});

/// Opens a summary file of either format (sniffed from the magic).
StatusOr<CompressedGraph> Open(const std::string& path,
                               const OpenOptions& options = {});

/// Same negotiation over an in-memory file image (takes ownership; a
/// paged open serves from the owned buffer, so no file is needed).
StatusOr<CompressedGraph> OpenBuffer(std::string bytes,
                                     const OpenOptions& options = {});

}  // namespace slugger::storage

#endif  // SLUGGER_STORAGE_STORAGE_HPP_
