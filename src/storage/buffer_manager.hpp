// Pinned read access to the pages of a v2 file.
//
// Three backends behind one Fetch(page) -> PageRef interface:
//   kMmap    the default: the whole file is mapped read-only once and
//            pages are checksum-verified on first touch (a sticky
//            per-page verified/bad flag), so a warm fetch is two atomic
//            ops and no syscall. The OS page cache is the buffer pool.
//   kPread   bounded fallback for mmap-less environments (and for tests
//            that need a hard residency cap): an LRU frame cache of at
//            most max_resident_pages pages, loaded with pread and
//            re-verified on every load; unpinned frames are evicted in
//            LRU order when the cache is full.
//   kMemory  the file image lives in an owned buffer (OpenBuffer path);
//            verify-once like mmap.
//
// Thread-safety contract: Fetch and PageRef release are safe from any
// number of threads concurrently. The mmap/memory backends are lock-free
// (atomics only); the pread backend serializes on one mutex. A PageRef
// keeps its page's bytes valid and immutable until released — the pread
// backend never evicts a pinned frame (it returns Aborted if every frame
// is pinned and a new page is needed).
//
// Checksums come from the file's page table; an entry of zero means "not
// covered here" (the header and page-table pages, which the header's own
// checksums cover). A mismatch surfaces as Corruption from Fetch, sticky
// in the verify-once backends.
#ifndef SLUGGER_STORAGE_BUFFER_MANAGER_HPP_
#define SLUGGER_STORAGE_BUFFER_MANAGER_HPP_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.hpp"
#include "util/sync.hpp"

namespace slugger::storage {

/// Which read path backs Fetch.
enum class Io {
  kAuto,   ///< mmap, falling back to pread if the map fails
  kMmap,
  kPread,
  kMemory, ///< internal: whole image owned in memory (OpenBuffer)
};

struct BufferOptions {
  Io io = Io::kAuto;
  /// Frame-cache bound of the pread backend (ignored by mmap/memory,
  /// whose residency is the OS's business). Must be >= 1.
  uint32_t max_resident_pages = 1024;
};

/// Counters for observability and the page-touch accounting tests. All
/// monotonic except resident_pages / pinned_now.
struct BufferStats {
  uint64_t fetches = 0;            ///< Fetch calls that returned a page
  uint64_t faults = 0;             ///< first-touch loads (mmap: first
                                   ///< verify; pread: disk reads)
  uint64_t evictions = 0;          ///< pread frames dropped
  uint64_t checksum_failures = 0;
  uint64_t resident_pages = 0;     ///< pages currently backed by storage
  uint64_t pinned_now = 0;
  uint64_t max_pinned = 0;         ///< high-water mark of pinned_now
};

class BufferManager;

/// Move-only RAII pin on one page. While alive, data() points at
/// page_size immutable bytes.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& o) noexcept { *this = std::move(o); }
  PageRef& operator=(PageRef&& o) noexcept {
    Release();
    mgr_ = o.mgr_;
    page_ = o.page_;
    data_ = o.data_;
    o.mgr_ = nullptr;
    o.data_ = nullptr;
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  const uint8_t* data() const { return data_; }
  uint32_t page() const { return page_; }
  explicit operator bool() const { return data_ != nullptr; }

 private:
  friend class BufferManager;
  PageRef(BufferManager* mgr, uint32_t page, const uint8_t* data)
      : mgr_(mgr), page_(page), data_(data) {}
  void Release();

  BufferManager* mgr_ = nullptr;
  uint32_t page_ = 0;
  const uint8_t* data_ = nullptr;
};

class BufferManager {
 public:
  /// Opens `path` whose length must be page_checksums.size() * page_size.
  /// The checksum vector is the file's page table (entry per page, zero =
  /// skip verification).
  static StatusOr<std::unique_ptr<BufferManager>> OpenFile(
      const std::string& path, uint32_t page_size,
      std::vector<uint64_t> page_checksums, const BufferOptions& options = {});

  /// Wraps an in-memory file image (takes ownership of the bytes).
  static StatusOr<std::unique_ptr<BufferManager>> FromBuffer(
      std::string bytes, uint32_t page_size,
      std::vector<uint64_t> page_checksums);

  ~BufferManager();
  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Pins `page` and returns a ref to its bytes. Corruption on checksum
  /// mismatch, IOError on a failed read, Aborted when the pread cache is
  /// full of pins, InvalidArgument on an out-of-range page.
  StatusOr<PageRef> Fetch(uint32_t page);

  uint32_t num_pages() const { return num_pages_; }
  uint32_t page_size() const { return page_size_; }
  Io backend() const { return backend_; }
  BufferStats stats() const;

 private:
  friend class PageRef;
  BufferManager() = default;

  void Unpin(uint32_t page) SLUGGER_REQUIRES(!mu_);
  StatusOr<const uint8_t*> FetchDirect(uint32_t page);  ///< mmap/memory
  StatusOr<const uint8_t*> FetchPread(uint32_t page) SLUGGER_REQUIRES(!mu_);

  Io backend_ = Io::kMemory;
  uint32_t page_size_ = 0;
  uint32_t num_pages_ = 0;
  std::vector<uint64_t> checksums_;

  // kMmap
  const uint8_t* map_ = nullptr;
  size_t map_len_ = 0;
  // kMemory
  std::string owned_;
  // Shared by the verify-once backends: 0 = untouched, 1 = verified,
  // 2 = checksum mismatch (sticky).
  std::unique_ptr<std::atomic<uint8_t>[]> verified_;

  // kPread
  int fd_ = -1;
  uint32_t max_resident_ = 0;
  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    uint32_t pins = 0;
    uint64_t tick = 0;
  };
  Mutex mu_;
  std::unordered_map<uint32_t, Frame> frames_ SLUGGER_GUARDED_BY(mu_);
  uint64_t clock_ SLUGGER_GUARDED_BY(mu_) = 0;

  // Counters (relaxed; exactness only matters within single-threaded
  // accounting tests).
  std::atomic<uint64_t> fetches_{0};
  std::atomic<uint64_t> faults_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> checksum_failures_{0};
  std::atomic<uint64_t> resident_{0};
  std::atomic<uint64_t> pinned_{0};
  std::atomic<uint64_t> max_pinned_{0};
};

}  // namespace slugger::storage

#endif  // SLUGGER_STORAGE_BUFFER_MANAGER_HPP_
