// On-disk format v2: the page-segmented summary layout (ISSUE 7).
//
// A v2 file is `num_pages` fixed-size pages (power-of-two page_size,
// default 64 KiB). Page 0 is the header; the remaining pages hold five
// sections, in file order:
//
//   page_table   one 64-bit checksum per file page (fixed 8-byte stride,
//                entries padded to page boundaries; entries for the
//                header and the page-table pages themselves are zero —
//                those regions are covered by the two checksums in the
//                header instead)
//   locator      per supernode id: the (page, byte-offset) of its record
//                (fixed 6-byte stride: u32 page + u16 offset, LE)
//   rank         per leaf id: its preorder rank (fixed 4-byte stride)
//   leaf_at      per preorder rank: the leaf id there (fixed 4-byte
//                stride) — the leaves of any supernode occupy one
//                contiguous run of this array
//   records      one varint record per alive supernode, concatenated
//                into a byte stream that is chunked across pages
//                (records may span page boundaries)
//
// Supernode ids in the file reuse the v1 renumbering: leaves keep their
// ids, alive internal supernodes get dense bottom-up ids (children
// before parents), so materialization can rebuild the forest with the
// exact construction discipline DeserializeSummary already uses. The
// records are PHYSICALLY ordered by a preorder traversal grouped per
// hierarchy tree, so the ancestor chain of any leaf lands in few,
// adjacent record pages — the page locality the paged query walk needs.
//
// One record (all varints):
//   id                        must equal the locator's idea of this slot
//   parent + 1                0 encodes "root"
//   lo, len                   the leaf_at interval covered by this node
//   num_edges
//     per incident superedge, sorted by the other endpoint's id:
//       (other_delta << 1) | sign_bit    delta against the previous other
//       other_lo, other_len              the OTHER endpoint's leaf_at
//                                        interval, denormalized into the
//                                        edge so the coverage walk never
//                                        fetches the endpoint's record
//   num_children              0 for leaves
//     child id deltas, sorted ascending (first delta against 0)
//
// Every parse of these structures treats the bytes as untrusted and
// bounds each count before it sizes an allocation or a loop, exactly
// like summary/serialize.hpp's v1 deserializer.
#ifndef SLUGGER_STORAGE_FORMAT_HPP_
#define SLUGGER_STORAGE_FORMAT_HPP_

#include <cstdint>
#include <cstring>
#include <string>

#include "summary/stats.hpp"
#include "summary/summary_graph.hpp"
#include "util/random.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace slugger::storage {

/// First 8 bytes of every v2 file. Deliberately NOT a valid v1 varint
/// prefix (v1 starts with a 7-byte varint magic whose first byte is
/// 0x4D), so one 8-byte sniff separates the formats.
inline constexpr uint8_t kPagedMagic[8] = {'S', 'L', 'G', 'P',
                                           'A', 'G', 'E', '2'};
inline constexpr uint64_t kPagedVersion = 2;

inline constexpr uint32_t kMinPageSize = 256;
inline constexpr uint32_t kMaxPageSize = 64 * 1024;
inline constexpr uint32_t kDefaultPageSize = 64 * 1024;

inline constexpr size_t kLocatorStride = 6;   ///< u32 page + u16 offset
inline constexpr size_t kRankStride = 4;      ///< u32 preorder rank
inline constexpr size_t kLeafAtStride = 4;    ///< u32 leaf id
inline constexpr size_t kPageTableStride = 8; ///< u64 page checksum

/// True iff `data` begins with the v2 magic.
inline bool IsPagedMagic(const char* data, size_t size) {
  return size >= sizeof(kPagedMagic) &&
         std::memcmp(data, kPagedMagic, sizeof(kPagedMagic)) == 0;
}

/// 64-bit content checksum (Mix64-based, length-keyed). Not a MAC: it
/// catches truncation, bit rot, and torn writes, not a deliberate
/// attacker who recomputes checksums — the bound-every-count parsing is
/// what keeps hostile files at "wrong answer", never "undefined
/// behavior".
inline uint64_t Checksum64(const uint8_t* data, size_t n) {
  uint64_t h = 0x534C475047453200ull ^ (n * 0x9E3779B97F4A7C15ull);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = Mix64(h ^ w);
  }
  if (i < n) {
    uint64_t tail = 0;
    std::memcpy(&tail, data + i, n - i);
    h = Mix64(h ^ tail);
  }
  return Mix64(h);
}

/// Little-endian fixed-width helpers (the file is endian-stable).
inline void PutLE16(uint8_t* out, uint16_t v) {
  out[0] = static_cast<uint8_t>(v);
  out[1] = static_cast<uint8_t>(v >> 8);
}
inline void PutLE32(uint8_t* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}
inline void PutLE64(uint8_t* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}
inline uint16_t GetLE16(const uint8_t* in) {
  return static_cast<uint16_t>(in[0] | (in[1] << 8));
}
inline uint32_t GetLE32(const uint8_t* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(in[i]) << (8 * i);
  return v;
}
inline uint64_t GetLE64(const uint8_t* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(in[i]) << (8 * i);
  return v;
}

/// A contiguous run of pages holding one section.
struct SectionRange {
  uint32_t first_page = 0;
  uint32_t num_pages = 0;
};

/// Everything the header page declares, already validated: counts are in
/// range, sections lie inside the file in layout order without overlap,
/// and each fixed-stride section has exactly the page count its entry
/// count requires.
struct PagedHeader {
  uint32_t page_size = 0;
  uint32_t num_pages = 0;
  NodeId num_leaves = 0;
  uint32_t num_internal = 0;  ///< alive non-leaf supernodes
  uint64_t record_bytes = 0;  ///< payload length of the record stream
  SectionRange page_table;
  SectionRange locator;
  SectionRange rank;
  SectionRange leaf_at;
  SectionRange records;
  uint64_t page_table_checksum = 0;
  // Advisory statistics (facade display / compaction policy input); the
  // structural fields above are the only ones bounds depend on.
  uint64_t num_roots = 0;
  uint64_t p_count = 0;
  uint64_t n_count = 0;
  uint64_t h_count = 0;
  uint32_t max_height = 0;
  double avg_leaf_depth = 0.0;

  uint32_t total_supernodes() const { return num_leaves + num_internal; }

  /// Reconstructs the facade-level stats the writer recorded.
  summary::SummaryStats ToStats() const;
};

/// Options of the paged writer.
struct PagedWriteOptions {
  uint32_t page_size = kDefaultPageSize;  ///< power of two in [256, 64Ki]
};

/// Serializes a summary into a complete v2 file image (a multiple of
/// page_size bytes, checksums included). InvalidArgument on a bad page
/// size.
StatusOr<std::string> SerializePaged(const summary::SummaryGraph& summary,
                                     const summary::SummaryStats& stats,
                                     const PagedWriteOptions& options = {});

/// Parses and validates the header page of an untrusted v2 image.
/// `data/size` must cover at least the first min(file_size, 64 KiB)
/// bytes; `file_size` is the real on-disk length, checked against the
/// declared page geometry.
StatusOr<PagedHeader> ParsePagedHeader(const char* data, size_t size,
                                       uint64_t file_size);

}  // namespace slugger::storage

#endif  // SLUGGER_STORAGE_FORMAT_HPP_
