#include "storage/buffer_manager.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.hpp"
#include "storage/format.hpp"

namespace slugger::storage {

namespace {

// Process-wide mirrors of the per-instance counters below: the registry
// counters sum across every BufferManager (all shards of a sharded
// serving run), so a cross-shard read is one consistent Counter::Value()
// instead of a stale sum over per-source stats() snapshots.
struct BufferObs {
  obs::Counter* fetches = obs::MetricsRegistry::Global().GetCounter(
      "slugger_buffer_fetches_total", "page fetches that returned a page");
  obs::Counter* faults = obs::MetricsRegistry::Global().GetCounter(
      "slugger_buffer_faults_total",
      "first-touch page loads (mmap verify / pread disk read)");
  obs::Counter* evictions = obs::MetricsRegistry::Global().GetCounter(
      "slugger_buffer_evictions_total", "pread LRU frames dropped");
  obs::Counter* checksum_failures = obs::MetricsRegistry::Global().GetCounter(
      "slugger_buffer_checksum_failures_total", "page checksum mismatches");
  obs::Gauge* resident = obs::MetricsRegistry::Global().GetGauge(
      "slugger_buffer_resident_pages",
      "pages currently resident across all buffer managers");
  obs::Gauge* pinned = obs::MetricsRegistry::Global().GetGauge(
      "slugger_buffer_pinned_pages",
      "pages currently pinned across all buffer managers");
};

const BufferObs& Obs() {
  static BufferObs handles;
  return handles;
}

void BumpMax(std::atomic<uint64_t>* max, uint64_t candidate) {
  uint64_t cur = max->load(std::memory_order_relaxed);
  while (candidate > cur &&
         !max->compare_exchange_weak(cur, candidate,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

void PageRef::Release() {
  if (mgr_ != nullptr) {
    mgr_->Unpin(page_);
    mgr_ = nullptr;
    data_ = nullptr;
  }
}

StatusOr<std::unique_ptr<BufferManager>> BufferManager::OpenFile(
    const std::string& path, uint32_t page_size,
    std::vector<uint64_t> page_checksums, const BufferOptions& options) {
  if (page_size == 0 || page_checksums.empty()) {
    return Status::InvalidArgument("buffer manager needs pages");
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("fstat failed on " + path + ": " +
                           std::strerror(err));
  }
  const uint64_t expected =
      static_cast<uint64_t>(page_checksums.size()) * page_size;
  if (static_cast<uint64_t>(st.st_size) != expected) {
    ::close(fd);
    return Status::Corruption("file length changed under the open");
  }

  // lint:allow(naked-new: private ctor, wrapped in unique_ptr on this line)
  auto mgr = std::unique_ptr<BufferManager>(new BufferManager());
  mgr->page_size_ = page_size;
  mgr->num_pages_ = static_cast<uint32_t>(page_checksums.size());
  mgr->checksums_ = std::move(page_checksums);

  if (options.io == Io::kAuto || options.io == Io::kMmap) {
    void* map = ::mmap(nullptr, expected, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);
      mgr->backend_ = Io::kMmap;
      mgr->map_ = static_cast<const uint8_t*>(map);
      mgr->map_len_ = expected;
      mgr->verified_ =
          std::make_unique<std::atomic<uint8_t>[]>(mgr->num_pages_);
      for (uint32_t p = 0; p < mgr->num_pages_; ++p) {
        mgr->verified_[p].store(0, std::memory_order_relaxed);
      }
      return mgr;
    }
    if (options.io == Io::kMmap) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("mmap failed on " + path + ": " +
                             std::strerror(err));
    }
    // kAuto: fall through to pread.
  }

  mgr->backend_ = Io::kPread;
  mgr->fd_ = fd;
  mgr->max_resident_ = options.max_resident_pages == 0
                           ? 1
                           : options.max_resident_pages;
  return mgr;
}

StatusOr<std::unique_ptr<BufferManager>> BufferManager::FromBuffer(
    std::string bytes, uint32_t page_size,
    std::vector<uint64_t> page_checksums) {
  if (page_size == 0 || page_checksums.empty() ||
      bytes.size() !=
          static_cast<uint64_t>(page_checksums.size()) * page_size) {
    return Status::InvalidArgument("buffer length does not match pages");
  }
  // lint:allow(naked-new: private ctor, wrapped in unique_ptr on this line)
  auto mgr = std::unique_ptr<BufferManager>(new BufferManager());
  mgr->backend_ = Io::kMemory;
  mgr->page_size_ = page_size;
  mgr->num_pages_ = static_cast<uint32_t>(page_checksums.size());
  mgr->checksums_ = std::move(page_checksums);
  mgr->owned_ = std::move(bytes);
  mgr->map_ = reinterpret_cast<const uint8_t*>(mgr->owned_.data());
  mgr->map_len_ = mgr->owned_.size();
  mgr->verified_ = std::make_unique<std::atomic<uint8_t>[]>(mgr->num_pages_);
  for (uint32_t p = 0; p < mgr->num_pages_; ++p) {
    mgr->verified_[p].store(0, std::memory_order_relaxed);
  }
  return mgr;
}

BufferManager::~BufferManager() {
  // This manager's pages leave the process-wide residency gauge with it.
  const uint64_t resident = resident_.load(std::memory_order_relaxed);
  if (resident != 0) Obs().resident->Add(-static_cast<int64_t>(resident));
  if (backend_ == Io::kMmap && map_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(map_), map_len_);
  }
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<PageRef> BufferManager::Fetch(uint32_t page) {
  if (page >= num_pages_) {
    return Status::InvalidArgument("page " + std::to_string(page) +
                                   " out of range");
  }
  StatusOr<const uint8_t*> data = backend_ == Io::kPread
                                      ? FetchPread(page)
                                      : FetchDirect(page);
  if (!data.ok()) return data.status();
  fetches_.fetch_add(1, std::memory_order_relaxed);
  Obs().fetches->Add(1);
  const uint64_t pins = pinned_.fetch_add(1, std::memory_order_relaxed) + 1;
  Obs().pinned->Add(1);
  BumpMax(&max_pinned_, pins);
  return PageRef(this, page, data.value());
}

StatusOr<const uint8_t*> BufferManager::FetchDirect(uint32_t page) {
  const uint8_t* data = map_ + static_cast<uint64_t>(page) * page_size_;
  uint8_t state = verified_[page].load(std::memory_order_acquire);
  if (state == 0) {
    // First touch: verify once, then publish the sticky verdict. Two
    // racing verifiers compute the same verdict, so last-store-wins is
    // fine.
    if (checksums_[page] != 0 &&
        Checksum64(data, page_size_) != checksums_[page]) {
      state = 2;
      checksum_failures_.fetch_add(1, std::memory_order_relaxed);
      Obs().checksum_failures->Add(1);
    } else {
      state = 1;
    }
    faults_.fetch_add(1, std::memory_order_relaxed);
    resident_.fetch_add(1, std::memory_order_relaxed);
    Obs().faults->Add(1);
    Obs().resident->Add(1);
    verified_[page].store(state, std::memory_order_release);
  }
  if (state == 2) {
    return Status::Corruption("page " + std::to_string(page) +
                              " checksum mismatch");
  }
  return data;
}

StatusOr<const uint8_t*> BufferManager::FetchPread(uint32_t page) {
  MutexLock lock(&mu_);
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    it->second.pins++;
    it->second.tick = ++clock_;
    return static_cast<const uint8_t*>(it->second.data.get());
  }
  if (frames_.size() >= max_resident_) {
    // Evict the least-recently-used unpinned frame.
    auto victim = frames_.end();
    for (auto f = frames_.begin(); f != frames_.end(); ++f) {
      if (f->second.pins == 0 &&
          (victim == frames_.end() || f->second.tick < victim->second.tick)) {
        victim = f;
      }
    }
    if (victim == frames_.end()) {
      return Status::Aborted("all " + std::to_string(max_resident_) +
                             " buffer frames are pinned");
    }
    frames_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    resident_.fetch_sub(1, std::memory_order_relaxed);
    Obs().evictions->Add(1);
    Obs().resident->Add(-1);
  }
  auto data = std::make_unique<uint8_t[]>(page_size_);
  const uint64_t off = static_cast<uint64_t>(page) * page_size_;
  size_t got = 0;
  while (got < page_size_) {
    const ssize_t r = ::pread(fd_, data.get() + got, page_size_ - got,
                              static_cast<off_t>(off + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread failed on page " + std::to_string(page) +
                             ": " + std::strerror(errno));
    }
    if (r == 0) {
      return Status::IOError("short read on page " + std::to_string(page));
    }
    got += static_cast<size_t>(r);
  }
  // Unlike mmap, a frame reloaded after eviction is re-verified — the
  // bytes just came off storage again.
  if (checksums_[page] != 0 &&
      Checksum64(data.get(), page_size_) != checksums_[page]) {
    checksum_failures_.fetch_add(1, std::memory_order_relaxed);
    Obs().checksum_failures->Add(1);
    return Status::Corruption("page " + std::to_string(page) +
                              " checksum mismatch");
  }
  faults_.fetch_add(1, std::memory_order_relaxed);
  resident_.fetch_add(1, std::memory_order_relaxed);
  Obs().faults->Add(1);
  Obs().resident->Add(1);
  Frame frame;
  frame.data = std::move(data);
  frame.pins = 1;
  frame.tick = ++clock_;
  const uint8_t* ptr = frame.data.get();
  frames_.emplace(page, std::move(frame));
  return ptr;
}

void BufferManager::Unpin(uint32_t page) {
  pinned_.fetch_sub(1, std::memory_order_relaxed);
  Obs().pinned->Add(-1);
  if (backend_ == Io::kPread) {
    MutexLock lock(&mu_);
    auto it = frames_.find(page);
    if (it != frames_.end() && it->second.pins > 0) it->second.pins--;
  }
}

BufferStats BufferManager::stats() const {
  // Read order makes a concurrent snapshot internally consistent: each
  // eviction increments evictions_ before decrementing resident_, and
  // each fault increments faults_ before a later fetch can complete, so
  // reading evictions -> faults -> fetches (and pinned before its
  // high-water mark, clamping below) preserves the invariants
  //   evictions <= faults,  faults - evictions >= resident's floor,
  //   pinned_now <= max_pinned
  // even while writers are mid-flight. An unordered read could observe
  // e.g. more evictions than faults and report negative residency math.
  BufferStats s;
  s.evictions = evictions_.load(std::memory_order_acquire);
  s.faults = faults_.load(std::memory_order_acquire);
  s.fetches = fetches_.load(std::memory_order_acquire);
  s.checksum_failures = checksum_failures_.load(std::memory_order_relaxed);
  s.resident_pages = resident_.load(std::memory_order_relaxed);
  s.pinned_now = pinned_.load(std::memory_order_acquire);
  s.max_pinned = max_pinned_.load(std::memory_order_acquire);
  if (s.max_pinned < s.pinned_now) s.max_pinned = s.pinned_now;
  return s;
}

}  // namespace slugger::storage
