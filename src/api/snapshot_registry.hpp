// slugger::SnapshotRegistry — the zero-downtime serving story.
//
// A service holds one registry per logical graph. Reader threads call
// Current() per request (or per small request batch) and query the
// returned snapshot; a refresh job runs Engine::Summarize on fresh data
// and calls Publish() with the replacement. The swap is atomic: readers
// that grabbed the old snapshot keep serving from it until they drop
// their shared_ptr, readers that call Current() after the swap see the
// new one, and nobody ever observes a half-built summary.
//
// Thread-safety contract: every member is safe to call from any number
// of threads concurrently. Current() and version() never block Publish()
// for longer than a pointer swap (the retired summary is destroyed
// outside the internal lock, so the last reader — not the publisher —
// pays for freeing a large summary only if it is also the last owner).
// The CompressedGraph inside a snapshot is const and therefore serves
// concurrent queries under its own contract (one scratch per thread).
#ifndef SLUGGER_API_SNAPSHOT_REGISTRY_HPP_
#define SLUGGER_API_SNAPSHOT_REGISTRY_HPP_

#include <atomic>
#include <cstdint>
#include <memory>

#include "api/compressed_graph.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace slugger {

class SnapshotRegistry {
 public:
  /// Shared ownership keeps a summary alive for exactly as long as any
  /// reader still serves from it, however long ago it was replaced.
  using Snapshot = std::shared_ptr<const CompressedGraph>;

  /// Starts empty: Current() returns null until the first Publish().
  SnapshotRegistry() = default;

  /// Starts serving `initial` immediately (version 1).
  explicit SnapshotRegistry(CompressedGraph initial);

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// The snapshot to serve this request from; null before any Publish().
  /// Grab once per request and query the copy — do not re-fetch between
  /// dependent queries, or a concurrent swap may split them across
  /// summaries.
  Snapshot Current() const SLUGGER_REQUIRES(!mu_);

  /// Monotonic publish counter (0 before any Publish). A cheap way for
  /// readers to notice a swap without holding snapshots.
  uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }

  /// Atomically replaces the served snapshot, taking ownership of the
  /// replacement. Returns the snapshot now being served.
  Snapshot Publish(CompressedGraph replacement) SLUGGER_REQUIRES(!mu_);

  /// Same, for a snapshot the caller already shares (e.g. one registry
  /// feeding several). InvalidArgument on null — the registry never
  /// swaps in an unserveable state.
  ///
  /// The REQUIRES(!mu_) is the retire-outside-lock obligation made
  /// static: the retired snapshot's destructor (potentially a whole
  /// summary) must run after mu_ is dropped, so no caller may enter with
  /// mu_ held and no refactor may hoist the swap into a wider critical
  /// section.
  Status Publish(Snapshot replacement) SLUGGER_REQUIRES(!mu_);

 private:
  mutable Mutex mu_;
  Snapshot current_ SLUGGER_GUARDED_BY(mu_);
  std::atomic<uint64_t> version_{0};
};

}  // namespace slugger

#endif  // SLUGGER_API_SNAPSHOT_REGISTRY_HPP_
