#include "api/engine.hpp"

#include <string>
#include <utility>

namespace slugger {

Status EngineOptions::Validate() const {
  if (config.iterations == 0) {
    return Status::InvalidArgument(
        "iterations must be >= 1 (0 would produce the trivial identity "
        "summary without ever running the merge phase)");
  }
  if (config.max_group_size < 2) {
    return Status::InvalidArgument(
        "max_group_size must be >= 2 (a candidate group needs at least "
        "two supernodes to propose a merge); got " +
        std::to_string(config.max_group_size));
  }
  if (config.engine > MergeEngine::kAsync) {
    return Status::InvalidArgument(
        "engine is not one of kAuto/kSequential/kRoundBased/kAsync");
  }
  return Status::OK();
}

Engine::Engine(EngineOptions options)
    : options_(std::move(options)), options_status_(options_.Validate()) {
  if (!options_status_.ok()) return;  // inert engine; Summarize reports it
  const core::SluggerConfig& config = options_.config;
  const unsigned threads = config.num_threads == 0
                               ? ThreadPool::DefaultThreads()
                               : config.num_threads;
  // Same condition core::Summarize uses to build its own pool; creating it
  // here once amortizes thread startup across every run of this Engine.
  if (threads > 1 ||
      core::ResolveEngine(config, threads) != MergeEngine::kSequential) {
    pool_.emplace(threads);
  }
}

StatusOr<CompressedGraph> Engine::Summarize(const graph::Graph& g,
                                            const RunOptions& run) {
  if (!options_status_.ok()) return options_status_;
  if (g.num_nodes() > kMaxNodes) {
    return Status::InvalidArgument(
        "graph has " + std::to_string(g.num_nodes()) +
        " nodes; the supernode id space supports at most " +
        std::to_string(kMaxNodes) +
        " (merging can allocate up to n - 1 fresh ids)");
  }
  core::SummarizeHooks hooks;
  hooks.progress = run.progress;
  hooks.cancel = run.cancel;
  hooks.pool = pool();
  core::SluggerResult result = core::Summarize(g, options_.config, hooks);
  return CompressedGraph(std::move(result.summary), result.stats);
}

}  // namespace slugger
