#include "api/engine.hpp"

#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace slugger {

namespace {

// Registered once per process; the registry owns the metrics, these are
// stable handles (the pattern every instrumented layer uses).
struct EngineObs {
  obs::Counter* runs = obs::MetricsRegistry::Global().GetCounter(
      "slugger_engine_runs_total", "Summarize runs completed");
  obs::Counter* runs_failed = obs::MetricsRegistry::Global().GetCounter(
      "slugger_engine_runs_failed_total",
      "Summarize calls rejected before running (bad options/graph)");
  obs::Counter* runs_cancelled = obs::MetricsRegistry::Global().GetCounter(
      "slugger_engine_runs_cancelled_total",
      "Summarize runs stopped early by a cancel token");
  obs::Counter* iterations = obs::MetricsRegistry::Global().GetCounter(
      "slugger_engine_iterations_total", "merge iterations completed");
  obs::Counter* merges = obs::MetricsRegistry::Global().GetCounter(
      "slugger_engine_merges_total", "accepted supernode merges");
  // Summarize runs span ~ms (toy graphs) to minutes: 100us first bound,
  // x2 growth, 24 buckets tops out around 14 minutes.
  obs::Histogram* run_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "slugger_engine_summarize_seconds",
      obs::HistogramOptions{1e-4, 2.0, 24}, "end-to-end Summarize latency");
  obs::Histogram* candidate_seconds =
      obs::MetricsRegistry::Global().GetHistogram(
          "slugger_engine_candidate_seconds",
          obs::HistogramOptions{1e-4, 2.0, 24},
          "per-run candidate-generation phase time");
  obs::Histogram* merge_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "slugger_engine_merge_seconds", obs::HistogramOptions{1e-4, 2.0, 24},
      "per-run candidate+merge phase time");
  obs::Histogram* prune_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "slugger_engine_prune_seconds", obs::HistogramOptions{1e-4, 2.0, 24},
      "per-run prune phase time");
  // Last-run summary shape: gauges because the meaningful read is "the
  // current hierarchy", not an accumulation across runs.
  obs::Gauge* last_merges = obs::MetricsRegistry::Global().GetGauge(
      "slugger_engine_last_merges", "merges accepted by the last iteration");
  obs::Gauge* last_p = obs::MetricsRegistry::Global().GetGauge(
      "slugger_engine_last_p_edges", "|P+| after the last iteration");
  obs::Gauge* last_n = obs::MetricsRegistry::Global().GetGauge(
      "slugger_engine_last_n_edges", "|P-| after the last iteration");
  obs::Gauge* last_h = obs::MetricsRegistry::Global().GetGauge(
      "slugger_engine_last_h_edges", "|H| after the last iteration");
};

const EngineObs& Obs() {
  static EngineObs handles;
  return handles;
}

}  // namespace

Status EngineOptions::Validate() const {
  if (config.iterations == 0) {
    return Status::InvalidArgument(
        "iterations must be >= 1 (0 would produce the trivial identity "
        "summary without ever running the merge phase)");
  }
  if (config.max_group_size < 2) {
    return Status::InvalidArgument(
        "max_group_size must be >= 2 (a candidate group needs at least "
        "two supernodes to propose a merge); got " +
        std::to_string(config.max_group_size));
  }
  if (config.engine > MergeEngine::kAsync) {
    return Status::InvalidArgument(
        "engine is not one of kAuto/kSequential/kRoundBased/kAsync");
  }
  return Status::OK();
}

Engine::Engine(EngineOptions options)
    : options_(std::move(options)), options_status_(options_.Validate()) {
  if (!options_status_.ok()) return;  // inert engine; Summarize reports it
  const core::SluggerConfig& config = options_.config;
  const unsigned threads = config.num_threads == 0
                               ? ThreadPool::DefaultThreads()
                               : config.num_threads;
  // Same condition core::Summarize uses to build its own pool; creating it
  // here once amortizes thread startup across every run of this Engine.
  if (threads > 1 ||
      core::ResolveEngine(config, threads) != MergeEngine::kSequential) {
    pool_.emplace(threads);
  }
}

StatusOr<CompressedGraph> Engine::Summarize(const graph::Graph& g,
                                            const RunOptions& run) {
  if (!options_status_.ok()) {
    Obs().runs_failed->Add(1);
    return options_status_;
  }
  if (g.num_nodes() > kMaxNodes) {
    Obs().runs_failed->Add(1);
    return Status::InvalidArgument(
        "graph has " + std::to_string(g.num_nodes()) +
        " nodes; the supernode id space supports at most " +
        std::to_string(kMaxNodes) +
        " (merging can allocate up to n - 1 fresh ids)");
  }
  core::SummarizeHooks hooks;
  // Per-iteration metrics piggyback on the progress hook (it fires once
  // per iteration on the driving thread); the caller's observer still
  // sees every event unchanged.
  hooks.progress = [user = run.progress](const core::ProgressEvent& ev) {
    const EngineObs& o = Obs();
    o.iterations->Add(1);
    o.last_merges->Set(static_cast<int64_t>(ev.merges));
    o.last_p->Set(static_cast<int64_t>(ev.p_count));
    o.last_n->Set(static_cast<int64_t>(ev.n_count));
    o.last_h->Set(static_cast<int64_t>(ev.h_count));
    if (user) user(ev);
  };
  hooks.cancel = run.cancel;
  hooks.pool = pool();
  obs::ScopedSpan span(&obs::MetricsRegistry::Global(), "engine.summarize",
                       /*parent=*/0, Obs().run_seconds, g.num_nodes());
  core::SluggerResult result = core::Summarize(g, options_.config, hooks);
  const EngineObs& o = Obs();
  o.runs->Add(1);
  if (result.cancelled) o.runs_cancelled->Add(1);
  o.merges->Add(result.merges);
  o.candidate_seconds->Observe(result.candidate_seconds);
  o.merge_seconds->Observe(result.merge_seconds);
  o.prune_seconds->Observe(result.prune_seconds);
  return CompressedGraph(std::move(result.summary), result.stats);
}

}  // namespace slugger
