#include "api/snapshot_registry.hpp"

#include <utility>

namespace slugger {

SnapshotRegistry::SnapshotRegistry(CompressedGraph initial) {
  Publish(std::move(initial));
}

SnapshotRegistry::Snapshot SnapshotRegistry::Current() const {
  MutexLock lock(&mu_);
  return current_;
}

SnapshotRegistry::Snapshot SnapshotRegistry::Publish(
    CompressedGraph replacement) {
  Snapshot snapshot =
      std::make_shared<const CompressedGraph>(std::move(replacement));
  // Never fails: snapshot was just allocated, so the null check — the
  // overload's only error path — cannot trip.
  (void)Publish(Snapshot(snapshot));
  return snapshot;
}

Status SnapshotRegistry::Publish(Snapshot replacement) {
  if (replacement == nullptr) {
    return Status::InvalidArgument("cannot publish a null snapshot");
  }
  Snapshot retired;
  {
    MutexLock lock(&mu_);
    retired = std::move(current_);
    current_ = std::move(replacement);
    version_.fetch_add(1, std::memory_order_relaxed);
  }
  // `retired` drops here, outside the lock: if this was the last owner of
  // a large summary, its destruction must not stall concurrent readers.
  return Status::OK();
}

}  // namespace slugger
