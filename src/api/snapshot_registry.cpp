#include "api/snapshot_registry.hpp"

#include <utility>

namespace slugger {

SnapshotRegistry::SnapshotRegistry(CompressedGraph initial) {
  Publish(std::move(initial));
}

SnapshotRegistry::Snapshot SnapshotRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

SnapshotRegistry::Snapshot SnapshotRegistry::Publish(
    CompressedGraph replacement) {
  Snapshot snapshot =
      std::make_shared<const CompressedGraph>(std::move(replacement));
  Publish(Snapshot(snapshot));  // never fails: snapshot is non-null
  return snapshot;
}

Status SnapshotRegistry::Publish(Snapshot replacement) {
  if (replacement == nullptr) {
    return Status::InvalidArgument("cannot publish a null snapshot");
  }
  Snapshot retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    retired = std::move(current_);
    current_ = std::move(replacement);
    version_.fetch_add(1, std::memory_order_relaxed);
  }
  // `retired` drops here, outside the lock: if this was the last owner of
  // a large summary, its destruction must not stall concurrent readers.
  return Status::OK();
}

}  // namespace slugger
