#include "api/snapshot_registry.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace slugger {

namespace {

struct SnapshotObs {
  obs::Counter* publishes = obs::MetricsRegistry::Global().GetCounter(
      "slugger_snapshot_publish_total",
      "snapshot swaps across every registry");
  // Destroying a retired summary happens outside the registry lock, but
  // the publisher thread still pays it; the distribution shows when
  // last-owner retirement starts costing refresh jobs real time.
  obs::Histogram* retire_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "slugger_snapshot_retire_seconds",
      obs::HistogramOptions{1e-7, 4.0, 16},
      "time to drop the retired snapshot after a swap");
  obs::Gauge* last_version = obs::MetricsRegistry::Global().GetGauge(
      "slugger_snapshot_last_version",
      "version of the most recent publish on any registry");
};

const SnapshotObs& Obs() {
  static SnapshotObs handles;
  return handles;
}

}  // namespace

SnapshotRegistry::SnapshotRegistry(CompressedGraph initial) {
  Publish(std::move(initial));
}

SnapshotRegistry::Snapshot SnapshotRegistry::Current() const {
  MutexLock lock(&mu_);
  return current_;
}

SnapshotRegistry::Snapshot SnapshotRegistry::Publish(
    CompressedGraph replacement) {
  Snapshot snapshot =
      std::make_shared<const CompressedGraph>(std::move(replacement));
  // Never fails: snapshot was just allocated, so the null check — the
  // overload's only error path — cannot trip.
  (void)Publish(Snapshot(snapshot));
  return snapshot;
}

Status SnapshotRegistry::Publish(Snapshot replacement) {
  if (replacement == nullptr) {
    return Status::InvalidArgument("cannot publish a null snapshot");
  }
  Snapshot retired;
  {
    MutexLock lock(&mu_);
    retired = std::move(current_);
    current_ = std::move(replacement);
    Obs().last_version->Set(static_cast<int64_t>(
        version_.fetch_add(1, std::memory_order_relaxed) + 1));
  }
  Obs().publishes->Add(1);
  // `retired` drops here, outside the lock: if this was the last owner of
  // a large summary, its destruction must not stall concurrent readers.
  if (retired != nullptr) {
    WallTimer retire_timer;
    retired.reset();
    Obs().retire_seconds->Observe(retire_timer.Seconds());
  }
  return Status::OK();
}

}  // namespace slugger
