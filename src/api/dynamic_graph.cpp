#include "api/dynamic_graph.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "algs/summary_ops.hpp"
#include "obs/metrics.hpp"
#include "summary/neighbor_query.hpp"
#include "util/timer.hpp"

namespace slugger {

namespace {

using stream::NeighborOverride;

// Edit-stream and compaction metrics, summed across every DynamicGraph
// in the process (per-instance exact counts stay on stats()).
struct DynamicObs {
  obs::Counter* edits_applied = obs::MetricsRegistry::Global().GetCounter(
      "slugger_dynamic_edits_applied_total",
      "edge edits that changed the represented graph");
  obs::Counter* edits_redundant = obs::MetricsRegistry::Global().GetCounter(
      "slugger_dynamic_edits_redundant_total",
      "edge edits that were already satisfied");
  obs::Counter* compactions_fold = obs::MetricsRegistry::Global().GetCounter(
      "slugger_dynamic_compactions_fold_total",
      "compactions resolved by localized leaf-pair folding");
  obs::Counter* compactions_rebuild =
      obs::MetricsRegistry::Global().GetCounter(
          "slugger_dynamic_compactions_rebuild_total",
          "compactions resolved by full re-summarization");
  obs::Counter* compactions_failed = obs::MetricsRegistry::Global().GetCounter(
      "slugger_dynamic_compactions_failed_total",
      "compactions that returned an error");
  obs::Histogram* apply_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "slugger_dynamic_apply_seconds", obs::HistogramOptions{1e-6, 2.0, 24},
      "ApplyEdits call latency (whole batch of edits)");
  obs::Histogram* fold_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "slugger_dynamic_compaction_fold_seconds",
      obs::HistogramOptions{1e-4, 2.0, 24}, "fold compaction duration");
  obs::Histogram* rebuild_seconds =
      obs::MetricsRegistry::Global().GetHistogram(
          "slugger_dynamic_compaction_rebuild_seconds",
          obs::HistogramOptions{1e-4, 2.0, 24},
          "rebuild compaction duration");
  // Overlay shape of the most recently mutated DynamicGraph: how far the
  // live graph has drifted from its compacted base.
  obs::Gauge* overlay_corrections = obs::MetricsRegistry::Global().GetGauge(
      "slugger_dynamic_overlay_corrections",
      "live overlay corrections after the last edit batch");
  obs::Gauge* overlay_ratio_ppm = obs::MetricsRegistry::Global().GetGauge(
      "slugger_dynamic_overlay_ratio_ppm",
      "overlay corrections per million base-cost units");
};

const DynamicObs& Obs() {
  static DynamicObs handles;
  return handles;
}

/// Thread-local backing of the scratch-free overloads, mirroring the
/// CompressedGraph facade: one scratch per thread serves every
/// DynamicGraph (all counters are zero between queries).
QueryScratch& ThreadLocalScratch() {
  thread_local QueryScratch scratch;
  return scratch;
}

OverlayBatchScratch& ThreadLocalOverlayScratch() {
  thread_local OverlayBatchScratch scratch;
  return scratch;
}

/// True iff the sorted correction list removes `u`.
bool IsRemoved(std::span<const NeighborOverride> deltas, NodeId u) {
  return summary::FindOverrideSign(deltas, u) < 0;
}

}  // namespace

DynamicGraph::DynamicGraph(CompressedGraph initial,
                           DynamicGraphOptions options)
    : num_nodes_(initial.num_nodes()),
      options_(std::move(options)),
      compactor_(options_.policy, options_.rebuild) {
  SnapshotRegistry::Snapshot base = registry_.Publish(std::move(initial));
  state_ = std::make_shared<State>(
      State{std::move(base), std::make_shared<stream::EdgeOverlay>(),
            registry_.version()});
}

DynamicGraph::~DynamicGraph() {
  cancel_.Cancel();
  WaitForCompaction();
}

std::shared_ptr<const DynamicGraph::State> DynamicGraph::CurrentState() const {
  MutexLock lock(&state_mu_);
  return state_;
}

void DynamicGraph::SetState(std::shared_ptr<const State> next) {
  std::shared_ptr<const State> retired;
  {
    MutexLock lock(&state_mu_);
    retired.swap(state_);
    state_ = std::move(next);
  }
  // `retired` (possibly the last reference to a big overlay) dies here,
  // outside the lock readers take.
}

bool DynamicGraph::BaseHasEdge(const CompressedGraph& base, NodeId u,
                               NodeId v, QueryScratch* scratch) const {
  // Through the facade, not summary::QueryNeighbors: a paged base (see
  // storage::Open) has no in-memory summary to walk.
  const std::vector<NodeId>& nbrs = base.Neighbors(u, scratch);
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

Status DynamicGraph::ValidateEdits(std::span<const EdgeEdit> edits) const {
  for (size_t i = 0; i < edits.size(); ++i) {
    const EdgeEdit& e = edits[i];
    if (e.u >= num_nodes_ || e.v >= num_nodes_) {
      return Status::InvalidArgument(
          "edit at position " + std::to_string(i) + " touches node " +
          std::to_string(e.u >= num_nodes_ ? e.u : e.v) +
          ", out of range (graph has " + std::to_string(num_nodes_) +
          " nodes; edits cannot grow the node universe)");
    }
    if (e.u == e.v) {
      return Status::InvalidArgument(
          "edit at position " + std::to_string(i) + " is a self-loop on node " +
          std::to_string(e.u) + " (the represented graph is simple)");
    }
  }
  return Status::OK();
}

Status DynamicGraph::ApplyEdits(std::span<const EdgeEdit> edits) {
  MutexLock lock(&write_mu_);
  Status valid = ValidateEdits(edits);
  if (!valid.ok()) return valid;
  if (edits.empty()) return Status::OK();
  obs::ScopedTimer obs_timer(Obs().apply_seconds);

  std::shared_ptr<const State> cur = CurrentState();
  const CompressedGraph& base = *cur->base;
  auto next = std::make_shared<stream::EdgeOverlay>(*cur->overlay);
  uint64_t applied = 0;
  uint64_t redundant = 0;
  // Hoisted while write_mu_ is provably held: the membership-probe lambda
  // below is analyzed with an empty lock set, so it must not name the
  // guarded member itself.
  QueryScratch* probe_scratch = &write_scratch_;
  for (const EdgeEdit& e : edits) {
    const bool changed = next->Apply(
        e, [&] { return BaseHasEdge(base, e.u, e.v, probe_scratch); });
    if (changed) {
      ++applied;
    } else {
      ++redundant;
    }
  }
  edits_applied_.fetch_add(applied, std::memory_order_relaxed);
  edits_redundant_.fetch_add(redundant, std::memory_order_relaxed);
  Obs().edits_applied->Add(applied);
  Obs().edits_redundant->Add(redundant);
  Obs().overlay_corrections->Set(
      static_cast<int64_t>(next->correction_count()));
  const uint64_t base_cost = cur->base->stats().cost;
  if (base_cost != 0) {
    Obs().overlay_ratio_ppm->Set(static_cast<int64_t>(
        next->correction_count() * 1000000 / base_cost));
  }

  if (compaction_running_.load(std::memory_order_acquire)) {
    // The in-flight compaction snapshotted an older overlay; log these
    // edits so the publish step can re-base them onto the new summary.
    pending_log_.insert(pending_log_.end(), edits.begin(), edits.end());
  }

  auto next_state = std::make_shared<State>(
      State{cur->base, std::move(next), cur->base_version});
  SetState(next_state);

  const bool auto_compact_healthy =
      last_compaction_error_.ok() ||
      last_compaction_error_.code() == Status::Code::kAborted;
  if (options_.auto_compact && auto_compact_healthy &&
      !compaction_running_.load(std::memory_order_acquire) &&
      compactor_.ShouldCompact(*next_state->base, *next_state->overlay)) {
    StartBackgroundCompaction(std::move(next_state));
  }
  return Status::OK();
}

const std::vector<NodeId>& DynamicGraph::Neighbors(
    NodeId v, QueryScratch* scratch) const {
  if (v >= num_nodes_) {
    scratch->result.clear();
    return scratch->result;
  }
  std::shared_ptr<const State> s = CurrentState();
  return s->base->Neighbors(v, scratch, s->overlay->DeltasOf(v));
}

const std::vector<NodeId>& DynamicGraph::Neighbors(NodeId v) const {
  return Neighbors(v, &ThreadLocalScratch());
}

size_t DynamicGraph::Degree(NodeId v, QueryScratch* scratch) const {
  if (v >= num_nodes_) return 0;
  std::shared_ptr<const State> s = CurrentState();
  const int64_t degree = static_cast<int64_t>(s->base->Degree(v, scratch)) +
                         s->overlay->DegreeDelta(v);
  return degree < 0 ? 0 : static_cast<size_t>(degree);
}

size_t DynamicGraph::Degree(NodeId v) const {
  return Degree(v, &ThreadLocalScratch());
}

Status DynamicGraph::NeighborsBatch(std::span<const NodeId> nodes,
                                    BatchResult* out,
                                    OverlayBatchScratch* scratch) const {
  std::shared_ptr<const State> s = CurrentState();
  const stream::EdgeOverlay& overlay = *s->overlay;
  if (overlay.empty()) {
    // No corrections: the base facade answers directly (and validates).
    return s->base->NeighborsBatch(nodes, out, &scratch->batch);
  }
  Status status = s->base->NeighborsBatch(nodes, &scratch->base,
                                          &scratch->batch);
  if (!status.ok()) return status;

  // Patch each answer: drop removed base edges, append added ones. The
  // overlay invariant makes sizes exact up front (every correction is
  // worth exactly one edge of difference).
  const size_t batch = nodes.size();
  out->offsets.assign(batch + 1, 0);
  for (size_t i = 0; i < batch; ++i) {
    int64_t size = static_cast<int64_t>(scratch->base[i].size());
    for (const NeighborOverride& o : overlay.DeltasOf(nodes[i])) {
      size += o.sign;
    }
    out->offsets[i + 1] = static_cast<uint64_t>(size < 0 ? 0 : size);
  }
  for (size_t i = 0; i < batch; ++i) out->offsets[i + 1] += out->offsets[i];
  out->neighbors.resize(out->offsets[batch]);
  for (size_t i = 0; i < batch; ++i) {
    auto write = out->neighbors.begin() + out->offsets[i];
    const std::span<const NodeId> from_base = scratch->base[i];
    const std::span<const NeighborOverride> deltas =
        overlay.DeltasOf(nodes[i]);
    if (deltas.empty()) {
      write = std::copy(from_base.begin(), from_base.end(), write);
      continue;
    }
    for (const NodeId u : from_base) {
      if (!IsRemoved(deltas, u)) *write++ = u;
    }
    for (const NeighborOverride& o : deltas) {
      if (o.sign > 0) *write++ = o.neighbor;
    }
  }
  return Status::OK();
}

Status DynamicGraph::NeighborsBatch(std::span<const NodeId> nodes,
                                    BatchResult* out) const {
  return NeighborsBatch(nodes, out, &ThreadLocalOverlayScratch());
}

Status DynamicGraph::DegreeBatch(std::span<const NodeId> nodes,
                                 std::vector<uint64_t>* degrees,
                                 OverlayBatchScratch* scratch) const {
  std::shared_ptr<const State> s = CurrentState();
  Status status = s->base->DegreeBatch(nodes, degrees, &scratch->batch);
  if (!status.ok()) return status;
  const stream::EdgeOverlay& overlay = *s->overlay;
  if (overlay.empty()) return Status::OK();
  for (size_t i = 0; i < nodes.size(); ++i) {
    const int64_t degree = static_cast<int64_t>((*degrees)[i]) +
                           overlay.DegreeDelta(nodes[i]);
    (*degrees)[i] = static_cast<uint64_t>(degree < 0 ? 0 : degree);
  }
  return Status::OK();
}

Status DynamicGraph::DegreeBatch(std::span<const NodeId> nodes,
                                 std::vector<uint64_t>* degrees) const {
  return DegreeBatch(nodes, degrees, &ThreadLocalOverlayScratch());
}

void DynamicGraph::StartBackgroundCompaction(
    std::shared_ptr<const State> snapshot) {
  MutexLock wlock(&worker_mu_);
  // The previous worker (if any) has finished — compaction_running_ is
  // false and it clears that flag under write_mu_, which we hold — so
  // this join reaps a dead thread without blocking.
  if (worker_.joinable()) worker_.join();
  pending_log_.clear();
  compaction_running_.store(true, std::memory_order_release);
  worker_ = std::thread([this, snap = std::move(snapshot)] {
    // Fire-and-forget by design: the verdict is recorded in
    // last_compaction_error_ (and compactions_failed_) before the worker
    // exits, so nothing is lost with the detached return value.
    (void)RunCompaction(std::move(snap));
  });
}

Status DynamicGraph::RunCompaction(std::shared_ptr<const State> snapshot) {
  stream::CompactionStats cstats;
  WallTimer compact_timer;  // which histogram gets it depends on cstats.kind
  StatusOr<CompressedGraph> result = compactor_.Compact(
      *snapshot->base, *snapshot->overlay, &cancel_, &cstats);
  const double compact_seconds = compact_timer.Seconds();

  MutexLock lock(&write_mu_);
  Status status = result.ok() ? Status::OK() : result.status();
  last_compaction_error_ = status;
  if (!result.ok()) {
    compactions_failed_.fetch_add(1, std::memory_order_relaxed);
    Obs().compactions_failed->Add(1);
  }
  if (result.ok()) {
    SnapshotRegistry::Snapshot new_base =
        registry_.Publish(std::move(result).value());
    // Re-base the edits that raced the compaction onto the new summary:
    // both sides start from the same mutated graph, and edits are
    // ensure-present / ensure-absent, so replaying them in order lands
    // on exactly the state readers were already seeing. (Scratch pointer
    // hoisted under write_mu_ — see ApplyEdits.)
    auto overlay = std::make_shared<stream::EdgeOverlay>();
    QueryScratch* probe_scratch = &write_scratch_;
    for (const EdgeEdit& e : pending_log_) {
      overlay->Apply(
          e, [&] { return BaseHasEdge(*new_base, e.u, e.v, probe_scratch); });
    }
    SetState(std::make_shared<State>(
        State{std::move(new_base), std::move(overlay), registry_.version()}));
    auto& counter = cstats.kind == stream::CompactionKind::kFold
                        ? compactions_fold_
                        : compactions_rebuild_;
    counter.fetch_add(1, std::memory_order_relaxed);
    if (cstats.kind == stream::CompactionKind::kFold) {
      Obs().compactions_fold->Add(1);
      Obs().fold_seconds->Observe(compact_seconds);
    } else {
      Obs().compactions_rebuild->Add(1);
      Obs().rebuild_seconds->Observe(compact_seconds);
    }
  }
  pending_log_.clear();
  compaction_running_.store(false, std::memory_order_release);
  compaction_done_cv_.NotifyAll();
  return status;
}

Status DynamicGraph::Compact() {
  std::shared_ptr<const State> snapshot;
  while (true) {
    WaitForCompaction();
    MutexLock lock(&write_mu_);
    // A concurrent ApplyEdits may have re-triggered auto-compaction
    // between the wait and the lock; wait it out and try again.
    if (compaction_running_.load(std::memory_order_acquire)) continue;
    snapshot = CurrentState();
    if (snapshot->overlay->empty()) return Status::OK();
    pending_log_.clear();
    compaction_running_.store(true, std::memory_order_release);
    break;
  }
  return RunCompaction(std::move(snapshot));
}

void DynamicGraph::WaitForCompaction() {
  // Reap the worker thread first (join must not hold write_mu_ — the
  // worker acquires it to publish); then block on the flag, which covers
  // synchronous Compact() calls running on other threads too.
  std::thread worker;
  {
    MutexLock lock(&worker_mu_);
    worker = std::move(worker_);
  }
  if (worker.joinable()) worker.join();
  MutexLock lock(&write_mu_);
  while (compaction_running_.load(std::memory_order_acquire)) {
    compaction_done_cv_.Wait(write_mu_);
  }
}

Status DynamicGraph::last_compaction_error() const {
  MutexLock lock(&write_mu_);
  return last_compaction_error_;
}

DynamicGraphStats DynamicGraph::stats() const {
  std::shared_ptr<const State> s = CurrentState();
  DynamicGraphStats out;
  out.edits_applied = edits_applied_.load(std::memory_order_relaxed);
  out.edits_redundant = edits_redundant_.load(std::memory_order_relaxed);
  out.corrections = s->overlay->correction_count();
  out.dirty_nodes = s->overlay->dirty_node_count();
  out.compactions_fold = compactions_fold_.load(std::memory_order_relaxed);
  out.compactions_rebuild =
      compactions_rebuild_.load(std::memory_order_relaxed);
  out.compactions_failed =
      compactions_failed_.load(std::memory_order_relaxed);
  out.base_version = s->base_version;
  out.base_cost = s->base->stats().cost;
  return out;
}

namespace {

/// The pinned overlay as summary-SpMV correction terms. The overlay
/// invariant (+1 pairs absent from the base, -1 pairs present) is
/// exactly the EdgeCorrection contract, so no reconciliation is needed.
std::vector<algs::EdgeCorrection> OverlayCorrections(
    const stream::EdgeOverlay& overlay) {
  std::vector<algs::EdgeCorrection> corrections;
  corrections.reserve(overlay.correction_count());
  overlay.ForEachCorrection([&corrections](NodeId u, NodeId v, EdgeSign sign) {
    corrections.push_back({u, v, sign});
  });
  return corrections;
}

}  // namespace

std::vector<double> DynamicGraph::PageRank(double d, uint32_t iterations,
                                           ThreadPool* pool) const {
  std::shared_ptr<const State> s = CurrentState();
  return algs::PageRankOnHierarchy(s->base->summary(), d, iterations, pool,
                                   OverlayCorrections(*s->overlay));
}

std::vector<uint32_t> DynamicGraph::Bfs(NodeId start) const {
  std::shared_ptr<const State> s = CurrentState();
  if (start >= num_nodes_) {
    return std::vector<uint32_t>(num_nodes_, algs::kUnreached);
  }
  return algs::BfsOnHierarchy(s->base->summary(), start,
                              OverlayCorrections(*s->overlay));
}

uint64_t DynamicGraph::Triangles(ThreadPool* pool) const {
  std::shared_ptr<const State> s = CurrentState();
  return algs::TrianglesOnHierarchy(s->base->summary(), pool,
                                    OverlayCorrections(*s->overlay));
}

graph::Graph DynamicGraph::Decode() const {
  std::shared_ptr<const State> s = CurrentState();
  return stream::ApplyOverlay(s->base->Decode(), *s->overlay);
}

}  // namespace slugger
