// slugger::ShardedGraph — the facade over the sharded pipeline
// (ISSUE 8): partition + per-shard summarize + publish + coordinate in
// one call, mirroring how Engine + CompressedGraph wrap the single-box
// pipeline. A service that outgrows one summary keeps the same batch
// query surface; only construction changes.
//
//   slugger::ShardedOptions options;
//   options.num_shards = 4;
//   auto sharded = slugger::ShardedGraph::Build(g, options);
//   sharded.value().NeighborsBatch(nodes, &out);          // == single box
//   sharded.value().Rebalance(g, /*max_skew=*/1.5);       // when skewed
//
// Lifecycle: Build runs the offline pipeline (deterministic partition,
// concurrent per-shard Engine::Summarize) and starts serving. Each
// shard's SnapshotRegistry is exposed so a refresh job can republish a
// better summary of the SAME shard edge set at any time without
// coordination (answers are invariant across lossless republishes).
// Rebalance is the coordinated path: it re-partitions, re-summarizes,
// and atomically installs the new manifest + registries as one epoch.
//
// Thread-safety: queries follow the Coordinator contract (any number
// of concurrent callers when no dispatch pool is configured; one
// pooled dispatcher at a time otherwise). Build and Rebalance are
// mutating and need external exclusion against each other, but queries
// may run concurrently with Rebalance — they serve the old epoch until
// the atomic swap and the new one after.
#ifndef SLUGGER_API_SHARDED_GRAPH_HPP_
#define SLUGGER_API_SHARDED_GRAPH_HPP_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "api/compressed_graph.hpp"
#include "api/engine.hpp"
#include "api/snapshot_registry.hpp"
#include "dist/coordinator.hpp"
#include "dist/manifest.hpp"
#include "dist/partitioner.hpp"
#include "dist/shard_summarizer.hpp"
#include "graph/graph.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace slugger {

struct ShardedOptions {
  /// Partitioner knobs (shard count, assignment strategy).
  dist::PartitionOptions partition;

  /// Per-shard engine knobs (num_threads is overridden to 1; see
  /// dist::ShardSummarizer).
  EngineOptions engine;

  /// Workers for the shared pool driving per-shard summarization and,
  /// when parallel_dispatch is set, coordinator fan-out. 0 = auto.
  uint32_t num_threads = 0;

  /// Give the coordinator the pool for parallel shard dispatch. Leave
  /// false when many threads will query one ShardedGraph concurrently
  /// (pooled dispatch admits one batch caller at a time).
  bool parallel_dispatch = true;

  /// Forwarded to the coordinator (see dist::CoordinatorOptions).
  double shard_time_budget_seconds = 0.0;
  bool allow_degraded = false;

  /// Offline-run hooks, fanned in across shards.
  dist::ShardProgress progress;
  const CancelToken* cancel = nullptr;
};

/// Outcome of a Rebalance call, whether or not it re-partitioned.
struct RebalanceReport {
  bool rebalanced = false;
  double skew_before = 1.0;
  double skew_after = 1.0;  ///< == skew_before when not rebalanced
};

class ShardedGraph {
 public:
  /// Empty handle (0 shards, null coordinator); useful only as a
  /// move-assign target — every accessor assumes a Build()-made object.
  ShardedGraph() = default;

  /// Runs the whole offline pipeline and starts serving. Errors from
  /// option validation, partitioning, or any shard's summarization
  /// surface here; a cancelled run still builds (lossless best-so-far
  /// shard summaries, the Engine contract).
  static StatusOr<ShardedGraph> Build(const graph::Graph& g,
                                      const ShardedOptions& options = {});

  ShardedGraph(ShardedGraph&&) = default;
  ShardedGraph& operator=(ShardedGraph&&) = default;

  NodeId num_nodes() const { return num_nodes_; }
  uint32_t num_shards() const;

  /// The manifest of the epoch currently serving.
  std::shared_ptr<const dist::ShardManifest> manifest() const;

  /// Scatter-gather queries; identical contract (and answers) to a
  /// single-box CompressedGraph — see dist::Coordinator.
  Status NeighborsBatch(std::span<const NodeId> nodes, BatchResult* out,
                        dist::GatherStats* stats = nullptr) const;
  Status DegreeBatch(std::span<const NodeId> nodes,
                     std::vector<uint64_t>* degrees,
                     dist::GatherStats* stats = nullptr) const;

  /// Live cost skew (see dist::Coordinator::CostSkew).
  double CostSkew() const;

  /// The rebalance hook: when CostSkew() exceeds `max_skew`,
  /// re-partition g (the same graph Build saw — the facade does not
  /// retain it) with the balanced-degree strategy, re-summarize every
  /// shard, and atomically install the new epoch. Readers never pause:
  /// in-flight batches finish on the old epoch. No-op (rebalanced =
  /// false) while the skew is within budget.
  StatusOr<RebalanceReport> Rebalance(const graph::Graph& g, double max_skew);

  /// Shard s's registry, for shard-local refresh jobs (republishing a
  /// better summary of the same shard edges needs no coordination) and
  /// for tests that inject degraded shards. Owned jointly with the
  /// serving epoch; s must be < num_shards().
  std::shared_ptr<SnapshotRegistry> shard_registry(uint32_t s) const;

  /// The coordinator, for advanced consumers (epoch swaps, options).
  dist::Coordinator& coordinator() { return *coordinator_; }
  const dist::Coordinator& coordinator() const { return *coordinator_; }

 private:
  /// Partition + summarize + wrap in fresh registries, shared by Build
  /// and Rebalance.
  static StatusOr<dist::ServingEpoch> BuildEpoch(
      const graph::Graph& g, const ShardedOptions& options,
      ThreadPool* pool);

  ShardedOptions options_;
  NodeId num_nodes_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<dist::Coordinator> coordinator_;
};

}  // namespace slugger

#endif  // SLUGGER_API_SHARDED_GRAPH_HPP_
