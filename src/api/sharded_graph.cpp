#include "api/sharded_graph.hpp"

#include <string>
#include <utility>

namespace slugger {

StatusOr<dist::ServingEpoch> ShardedGraph::BuildEpoch(
    const graph::Graph& g, const ShardedOptions& options, ThreadPool* pool) {
  StatusOr<dist::ShardManifest> manifest =
      dist::PartitionGraph(g, options.partition);
  if (!manifest.ok()) return manifest.status();

  dist::ShardSummarizeOptions summarize;
  summarize.engine = options.engine;
  summarize.pool = pool;
  summarize.progress = options.progress;
  summarize.cancel = options.cancel;
  dist::ShardSummarizer summarizer(std::move(summarize));
  StatusOr<std::vector<CompressedGraph>> shards =
      summarizer.SummarizeShards(g, manifest.value());
  if (!shards.ok()) return shards.status();

  dist::ServingEpoch epoch;
  epoch.manifest = std::make_shared<const dist::ShardManifest>(
      std::move(manifest).value());
  epoch.shards.reserve(shards.value().size());
  for (CompressedGraph& shard : shards.value()) {
    epoch.shards.push_back(
        std::make_shared<SnapshotRegistry>(std::move(shard)));
  }
  return epoch;
}

StatusOr<ShardedGraph> ShardedGraph::Build(const graph::Graph& g,
                                           const ShardedOptions& options) {
  ShardedGraph sharded;
  sharded.options_ = options;
  sharded.num_nodes_ = g.num_nodes();
  const unsigned threads = options.num_threads == 0
                               ? ThreadPool::DefaultThreads()
                               : options.num_threads;
  if (threads > 1) sharded.pool_ = std::make_unique<ThreadPool>(threads);

  StatusOr<dist::ServingEpoch> epoch =
      BuildEpoch(g, options, sharded.pool_.get());
  if (!epoch.ok()) return epoch.status();

  dist::CoordinatorOptions coordinate;
  coordinate.pool =
      options.parallel_dispatch ? sharded.pool_.get() : nullptr;
  coordinate.shard_time_budget_seconds = options.shard_time_budget_seconds;
  coordinate.allow_degraded = options.allow_degraded;
  sharded.coordinator_ = std::make_unique<dist::Coordinator>(
      std::move(epoch).value(), coordinate);
  Status healthy = sharded.coordinator_->status();
  if (!healthy.ok()) return healthy;
  return sharded;
}

uint32_t ShardedGraph::num_shards() const {
  std::shared_ptr<const dist::ServingEpoch> epoch = coordinator_->epoch();
  return epoch != nullptr ? epoch->manifest->num_shards() : 0;
}

std::shared_ptr<const dist::ShardManifest> ShardedGraph::manifest() const {
  std::shared_ptr<const dist::ServingEpoch> epoch = coordinator_->epoch();
  return epoch != nullptr ? epoch->manifest : nullptr;
}

Status ShardedGraph::NeighborsBatch(std::span<const NodeId> nodes,
                                    BatchResult* out,
                                    dist::GatherStats* stats) const {
  return coordinator_->NeighborsBatch(nodes, out, stats);
}

Status ShardedGraph::DegreeBatch(std::span<const NodeId> nodes,
                                 std::vector<uint64_t>* degrees,
                                 dist::GatherStats* stats) const {
  return coordinator_->DegreeBatch(nodes, degrees, stats);
}

double ShardedGraph::CostSkew() const { return coordinator_->CostSkew(); }

StatusOr<RebalanceReport> ShardedGraph::Rebalance(const graph::Graph& g,
                                                  double max_skew) {
  if (g.num_nodes() != num_nodes_) {
    return Status::InvalidArgument(
        "Rebalance needs the graph this deployment serves (" +
        std::to_string(num_nodes_) + " nodes), got " +
        std::to_string(g.num_nodes()));
  }
  RebalanceReport report;
  report.skew_before = CostSkew();
  report.skew_after = report.skew_before;
  if (report.skew_before <= max_skew) return report;

  // Balanced-degree is the re-partition strategy regardless of how the
  // deployment started: skew is exactly what it greedily minimizes.
  ShardedOptions rebuilt = options_;
  rebuilt.partition.strategy = dist::PartitionStrategy::kBalancedDegree;
  StatusOr<dist::ServingEpoch> epoch = BuildEpoch(g, rebuilt, pool_.get());
  if (!epoch.ok()) return epoch.status();
  Status adopted = coordinator_->AdoptEpoch(std::move(epoch).value());
  if (!adopted.ok()) return adopted;
  report.rebalanced = true;
  report.skew_after = CostSkew();
  return report;
}

std::shared_ptr<SnapshotRegistry> ShardedGraph::shard_registry(
    uint32_t s) const {
  std::shared_ptr<const dist::ServingEpoch> epoch = coordinator_->epoch();
  if (epoch == nullptr || s >= epoch->shards.size()) return nullptr;
  return epoch->shards[s];
}

}  // namespace slugger
