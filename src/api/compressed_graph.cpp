#include "api/compressed_graph.hpp"

#include <utility>

#include "summary/decode.hpp"
#include "summary/serialize.hpp"
#include "summary/verify.hpp"

namespace slugger {

namespace {

/// Backing store of the scratch-free query overloads. One scratch per
/// thread serves every CompressedGraph: the coverage counters are all
/// zero between queries, so switching summaries only ever grows the
/// buffers.
QueryScratch& ThreadLocalScratch() {
  thread_local QueryScratch scratch;
  return scratch;
}

}  // namespace

CompressedGraph::CompressedGraph(summary::SummaryGraph summary)
    : summary_(std::move(summary)), stats_(summary::ComputeStats(summary_)) {}

CompressedGraph::CompressedGraph(summary::SummaryGraph summary,
                                 summary::SummaryStats stats)
    : summary_(std::move(summary)), stats_(stats) {}

const std::vector<NodeId>& CompressedGraph::Neighbors(
    NodeId v, QueryScratch* scratch) const {
  return summary::QueryNeighbors(summary_, v, scratch);
}

const std::vector<NodeId>& CompressedGraph::Neighbors(NodeId v) const {
  return Neighbors(v, &ThreadLocalScratch());
}

size_t CompressedGraph::Degree(NodeId v, QueryScratch* scratch) const {
  return summary::QueryDegree(summary_, v, scratch);
}

size_t CompressedGraph::Degree(NodeId v) const {
  return Degree(v, &ThreadLocalScratch());
}

graph::Graph CompressedGraph::Decode(ThreadPool* pool) const {
  return summary::Decode(summary_, pool);
}

Status CompressedGraph::Verify(const graph::Graph& expected,
                               ThreadPool* pool) const {
  return summary::VerifyLossless(expected, summary_, pool);
}

Status CompressedGraph::Save(const std::string& path) const {
  return summary::SaveSummary(summary_, path);
}

StatusOr<CompressedGraph> CompressedGraph::Load(const std::string& path) {
  StatusOr<summary::SummaryGraph> loaded = summary::LoadSummary(path);
  if (!loaded.ok()) return loaded.status();
  return CompressedGraph(std::move(loaded).value());
}

std::string CompressedGraph::Serialize() const {
  return summary::SerializeSummary(summary_);
}

StatusOr<CompressedGraph> CompressedGraph::Deserialize(
    const std::string& buffer) {
  StatusOr<summary::SummaryGraph> parsed =
      summary::DeserializeSummary(buffer);
  if (!parsed.ok()) return parsed.status();
  return CompressedGraph(std::move(parsed).value());
}

}  // namespace slugger
