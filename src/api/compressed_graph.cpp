#include "api/compressed_graph.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <string>
#include <utility>

#include "algs/summary_ops.hpp"
#include "obs/metrics.hpp"
#include "storage/paged_source.hpp"
#include "storage/storage.hpp"
#include "summary/decode.hpp"
#include "summary/serialize.hpp"
#include "summary/verify.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace slugger {

namespace {

// Serving-path metrics. Counters are always-on (one relaxed add); the
// single-query latency histogram is sampled 1-in-64 so the two clock
// reads amortize to ~nothing against the ~3M q/s hot path.
struct QueryObs {
  obs::Counter* single = obs::MetricsRegistry::Global().GetCounter(
      "slugger_query_single_total", "single Neighbors/Degree calls");
  obs::Counter* batches = obs::MetricsRegistry::Global().GetCounter(
      "slugger_query_batch_total", "NeighborsBatch/DegreeBatch calls");
  obs::Counter* batch_nodes = obs::MetricsRegistry::Global().GetCounter(
      "slugger_query_batch_nodes_total", "nodes answered by batch calls");
  obs::Counter* errors = obs::MetricsRegistry::Global().GetCounter(
      "slugger_query_errors_total",
      "paged-backend query failures (absorbed or surfaced)");
  obs::Counter* paged = obs::MetricsRegistry::Global().GetCounter(
      "slugger_query_paged_total", "queries served by the paged backend");
  obs::Histogram* single_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "slugger_query_single_seconds", obs::HistogramOptions{1e-7, 2.0, 24},
      "single-query latency, sampled 1-in-64");
  obs::Histogram* batch_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "slugger_query_batch_seconds", obs::HistogramOptions{1e-6, 2.0, 24},
      "whole-batch latency");
};

const QueryObs& Obs() {
  static QueryObs handles;
  return handles;
}

/// The single-query latency histogram every 64th call on this thread,
/// null otherwise (a null ScopedTimer never touches the clock).
obs::Histogram* SampledSingleHistogram() {
  if constexpr (!obs::kEnabled) return nullptr;
  thread_local uint32_t tick = 0;
  return ((++tick & 63u) == 0) ? Obs().single_seconds : nullptr;
}

/// Backing store of the scratch-free query overloads. One scratch per
/// thread serves every CompressedGraph: the coverage counters are all
/// zero between queries, so switching summaries only ever grows the
/// buffers.
QueryScratch& ThreadLocalScratch() {
  thread_local QueryScratch scratch;
  return scratch;
}

/// Same lifecycle for the batched path; pool workers persist across jobs,
/// so each one warms up exactly one of these.
BatchScratch& ThreadLocalBatchScratch() {
  thread_local BatchScratch scratch;
  return scratch;
}

/// Below this size the per-shard sort/stitch overhead beats the win from
/// parallelism; the parallel overloads fall back to the sequential path.
constexpr size_t kMinParallelBatch = 256;

/// Coordinator prologue of the parallel batch overloads: the batch
/// positions sorted by the cached leaf rank (same order ComputeBatchOrder
/// derives, but rank-only — no ancestor chains are materialized; each
/// shard rebuilds exactly the chains of its own slice) plus the node list
/// in that order.
void SortBatchByRank(std::span<const NodeId> nodes,
                     const std::vector<uint32_t>& leaf_rank,
                     std::vector<uint32_t>* order,
                     std::vector<NodeId>* sorted_nodes) {
  const size_t batch = nodes.size();
  order->resize(batch);
  std::iota(order->begin(), order->end(), 0u);
  std::sort(order->begin(), order->end(),
            [&leaf_rank, nodes](uint32_t a, uint32_t b) {
              const uint32_t ra = leaf_rank[nodes[a]];
              const uint32_t rb = leaf_rank[nodes[b]];
              if (ra != rb) return ra < rb;
              return a < b;
            });
  sorted_nodes->resize(batch);
  for (size_t k = 0; k < batch; ++k) {
    (*sorted_nodes)[k] = nodes[(*order)[k]];
  }
}

/// Contiguous slice of the sorted batch owned by one shard.
struct ShardRange {
  size_t begin;
  size_t end;
};
ShardRange ShardBounds(size_t batch, size_t shard, size_t shards) {
  return {batch * shard / shards, batch * (shard + 1) / shards};
}

}  // namespace

// States: 0 = serving paged, 1 = materialized (summary/leaf_rank set),
// 2 = materialization failed (error set; queries keep serving paged).
struct CompressedGraph::PagedBox {
  std::shared_ptr<storage::PagedSummarySource> source;
  Mutex mu;
  std::atomic<int> state{0};
  // summary / leaf_rank are written once under mu and PUBLISHED by the
  // release-store of state (readers acquire-load state == 1 before
  // touching them), so they are protocol-synchronized, not guarded-by —
  // the sync.hpp convention for verify-once/publish-once data.
  std::shared_ptr<const summary::SummaryGraph> summary;
  std::shared_ptr<const std::vector<uint32_t>> leaf_rank;
  Status error SLUGGER_GUARDED_BY(mu);

  // Query-error observability (query_errors()/last_status()): counted
  // even on the single-query paths that degrade errors to empty answers.
  std::atomic<uint64_t> query_errors{0};
  Mutex err_mu;
  Status last_error SLUGGER_GUARDED_BY(err_mu);

  void RecordError(const Status& failed) SLUGGER_REQUIRES(!err_mu) {
    query_errors.fetch_add(1, std::memory_order_relaxed);
    Obs().errors->Add(1);  // process-wide mirror of the per-instance count
    MutexLock lock(&err_mu);
    last_error = failed;
  }
};

CompressedGraph::CompressedGraph(summary::SummaryGraph summary)
    : summary_(std::move(summary)),
      stats_(summary::ComputeStats(summary_)),
      leaf_rank_(summary_.forest().ComputeLeafPreorder()),
      num_nodes_(summary_.num_leaves()) {}

CompressedGraph::CompressedGraph(summary::SummaryGraph summary,
                                 summary::SummaryStats stats)
    : summary_(std::move(summary)),
      stats_(stats),
      leaf_rank_(summary_.forest().ComputeLeafPreorder()),
      num_nodes_(summary_.num_leaves()) {}

CompressedGraph::CompressedGraph(
    std::shared_ptr<storage::PagedSummarySource> source)
    : stats_(source->Stats()),
      num_nodes_(source->num_leaves()),
      box_(std::make_shared<PagedBox>()) {
  box_->source = std::move(source);
}

bool CompressedGraph::ServePaged() const {
  return box_ != nullptr && box_->state.load(std::memory_order_acquire) != 1;
}

bool CompressedGraph::paged() const { return ServePaged(); }

uint64_t CompressedGraph::query_errors() const {
  return box_ ? box_->query_errors.load(std::memory_order_relaxed) : 0;
}

Status CompressedGraph::last_status() const {
  if (!box_) return Status::OK();
  MutexLock lock(&box_->err_mu);
  return box_->last_error;
}

std::shared_ptr<storage::PagedSummarySource> CompressedGraph::paged_source()
    const {
  return box_ ? box_->source : nullptr;
}

const summary::SummaryGraph& CompressedGraph::ActiveSummary() const {
  if (box_ && box_->state.load(std::memory_order_acquire) == 1) {
    return *box_->summary;
  }
  return summary_;
}

const std::vector<uint32_t>& CompressedGraph::ActiveLeafRank() const {
  if (box_ && box_->state.load(std::memory_order_acquire) == 1) {
    return *box_->leaf_rank;
  }
  return leaf_rank_;
}

Status CompressedGraph::Materialize() const {
  if (!box_) return Status::OK();
  if (box_->state.load(std::memory_order_acquire) == 1) return Status::OK();
  MutexLock lock(&box_->mu);
  const int state = box_->state.load(std::memory_order_relaxed);
  if (state == 1) return Status::OK();
  if (state == 2) return box_->error;
  StatusOr<summary::SummaryGraph> rebuilt = box_->source->Materialize();
  if (!rebuilt.ok()) {
    box_->error = rebuilt.status();
    box_->state.store(2, std::memory_order_release);
    return box_->error;
  }
  auto owned = std::make_shared<const summary::SummaryGraph>(
      std::move(rebuilt).value());
  box_->leaf_rank = std::make_shared<const std::vector<uint32_t>>(
      owned->forest().ComputeLeafPreorder());
  box_->summary = std::move(owned);
  box_->state.store(1, std::memory_order_release);
  return Status::OK();
}

const summary::SummaryGraph& CompressedGraph::summary() const {
  // A failed materialization is sticky (box_->error); this reference
  // accessor degrades to the empty in-memory summary, and callers that
  // need the verdict call Materialize() directly.
  if (box_) (void)Materialize();
  return ActiveSummary();
}

const std::vector<NodeId>& CompressedGraph::Neighbors(
    NodeId v, QueryScratch* scratch) const {
  return Neighbors(v, scratch, {});
}

const std::vector<NodeId>& CompressedGraph::Neighbors(
    NodeId v, QueryScratch* scratch,
    std::span<const NeighborOverride> overrides) const {
  Obs().single->Add(1);
  obs::ScopedTimer obs_timer(SampledSingleHistogram());
  if (v >= num_nodes_) {
    // The core query path asserts v is in range (walking ForEachEdgeOf on
    // an arbitrary id is undefined behavior); the facade absorbs hostile
    // ids here instead.
    scratch->result.clear();
    return scratch->result;
  }
  if (ServePaged()) {
    // This overload has no error channel, so a paged I/O or corruption
    // failure degrades to an empty list; query_errors()/last_status()
    // record it and the batch APIs surface it.
    Obs().paged->Add(1);
    Status served = box_->source->Neighbors(v, scratch, overrides);
    if (!served.ok()) {
      box_->RecordError(served);
      scratch->result.clear();
    }
    return scratch->result;
  }
  return summary::QueryNeighbors(ActiveSummary(), v, scratch, overrides);
}

const std::vector<NodeId>& CompressedGraph::Neighbors(NodeId v) const {
  return Neighbors(v, &ThreadLocalScratch());
}

size_t CompressedGraph::Degree(NodeId v, QueryScratch* scratch) const {
  return Degree(v, scratch, {});
}

size_t CompressedGraph::Degree(
    NodeId v, QueryScratch* scratch,
    std::span<const NeighborOverride> overrides) const {
  Obs().single->Add(1);
  obs::ScopedTimer obs_timer(SampledSingleHistogram());
  if (v >= num_nodes_) return 0;
  if (ServePaged()) {
    Obs().paged->Add(1);
    StatusOr<uint64_t> degree = box_->source->Degree(v, scratch, overrides);
    if (!degree.ok()) {
      box_->RecordError(degree.status());
      return 0;
    }
    return static_cast<size_t>(degree.value());
  }
  return summary::QueryDegree(ActiveSummary(), v, scratch, overrides);
}

size_t CompressedGraph::Degree(NodeId v) const {
  return Degree(v, &ThreadLocalScratch());
}

Status CompressedGraph::ValidateBatch(std::span<const NodeId> nodes) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= num_nodes_) {
      return Status::InvalidArgument(
          "batch node id " + std::to_string(nodes[i]) + " at position " +
          std::to_string(i) + " is out of range (graph has " +
          std::to_string(num_nodes_) + " nodes)");
    }
  }
  return Status::OK();
}

Status CompressedGraph::NeighborsBatch(std::span<const NodeId> nodes,
                                       BatchResult* out,
                                       BatchScratch* scratch) const {
  Status valid = ValidateBatch(nodes);
  if (!valid.ok()) return valid;
  const QueryObs& o = Obs();
  o.batches->Add(1);
  o.batch_nodes->Add(nodes.size());
  obs::ScopedTimer obs_timer(o.batch_seconds);
  if (ServePaged()) {
    o.paged->Add(1);
    Status served = box_->source->NeighborsBatch(nodes, out, scratch);
    if (!served.ok()) box_->RecordError(served);
    return served;
  }
  summary::QueryNeighborsBatch(ActiveSummary(), nodes, out, scratch,
                               &ActiveLeafRank());
  return Status::OK();
}

Status CompressedGraph::NeighborsBatch(std::span<const NodeId> nodes,
                                       BatchResult* out) const {
  return NeighborsBatch(nodes, out, &ThreadLocalBatchScratch());
}

Status CompressedGraph::NeighborsBatch(std::span<const NodeId> nodes,
                                       BatchResult* out,
                                       ThreadPool* pool) const {
  if (pool == nullptr || pool->size() <= 1 ||
      nodes.size() < kMinParallelBatch || ServePaged()) {
    // Paged handles stay sequential: the batch already amortizes page
    // faults via file-preorder, and shards would contend on the record
    // cache for little gain.
    return NeighborsBatch(nodes, out);
  }
  Status valid = ValidateBatch(nodes);
  if (!valid.ok()) return valid;
  const QueryObs& o = Obs();
  o.batches->Add(1);
  o.batch_nodes->Add(nodes.size());
  obs::ScopedTimer obs_timer(o.batch_seconds);

  // Sort the whole batch by hierarchy locality once, then hand each
  // worker a contiguous slice of the sorted order: shards keep the
  // ancestor-chain amortization and re-sorting a presorted slice inside
  // QueryNeighborsBatch is near-free.
  const summary::SummaryGraph& active = ActiveSummary();
  const std::vector<uint32_t>& leaf_rank = ActiveLeafRank();
  const size_t batch = nodes.size();
  std::vector<uint32_t> order;
  std::vector<NodeId> sorted_nodes;
  SortBatchByRank(nodes, leaf_rank, &order, &sorted_nodes);

  // Each shard's slice is already locality-sorted, so the identity
  // permutation is a valid precomputed order: shards skip the per-slice
  // re-sort inside QueryNeighborsBatch. One iota serves every shard —
  // subspan(0, len) is 0..len-1.
  std::vector<uint32_t> identity(batch);
  std::iota(identity.begin(), identity.end(), 0u);

  const size_t shards = pool->size();
  std::vector<BatchResult> shard_results(shards);
  pool->Run(shards, [&](uint64_t shard, unsigned) {
    const ShardRange range = ShardBounds(batch, shard, shards);
    summary::QueryNeighborsBatch(
        active,
        std::span<const NodeId>(sorted_nodes)
            .subspan(range.begin, range.end - range.begin),
        &shard_results[shard], &ThreadLocalBatchScratch(), &leaf_rank,
        std::span<const uint32_t>(identity)
            .subspan(0, range.end - range.begin));
  });

  // Stitch shard answers (sorted order) back into input order.
  out->offsets.assign(batch + 1, 0);
  for (size_t shard = 0; shard < shards; ++shard) {
    const size_t begin = ShardBounds(batch, shard, shards).begin;
    const BatchResult& r = shard_results[shard];
    for (size_t k = 0; k < r.size(); ++k) {
      out->offsets[order[begin + k] + 1] = r.offsets[k + 1] - r.offsets[k];
    }
  }
  for (size_t i = 0; i < batch; ++i) out->offsets[i + 1] += out->offsets[i];
  out->neighbors.resize(out->offsets[batch]);
  for (size_t shard = 0; shard < shards; ++shard) {
    const size_t begin = ShardBounds(batch, shard, shards).begin;
    const BatchResult& r = shard_results[shard];
    for (size_t k = 0; k < r.size(); ++k) {
      std::span<const NodeId> src = r[k];
      std::copy(src.begin(), src.end(),
                out->neighbors.begin() + out->offsets[order[begin + k]]);
    }
  }
  return Status::OK();
}

Status CompressedGraph::DegreeBatch(std::span<const NodeId> nodes,
                                    std::vector<uint64_t>* degrees,
                                    BatchScratch* scratch) const {
  Status valid = ValidateBatch(nodes);
  if (!valid.ok()) return valid;
  const QueryObs& o = Obs();
  o.batches->Add(1);
  o.batch_nodes->Add(nodes.size());
  obs::ScopedTimer obs_timer(o.batch_seconds);
  if (ServePaged()) {
    o.paged->Add(1);
    Status served = box_->source->DegreeBatch(nodes, degrees, scratch);
    if (!served.ok()) box_->RecordError(served);
    return served;
  }
  summary::QueryDegreeBatch(ActiveSummary(), nodes, degrees, scratch,
                            &ActiveLeafRank());
  return Status::OK();
}

Status CompressedGraph::DegreeBatch(std::span<const NodeId> nodes,
                                    std::vector<uint64_t>* degrees) const {
  return DegreeBatch(nodes, degrees, &ThreadLocalBatchScratch());
}

Status CompressedGraph::DegreeBatch(std::span<const NodeId> nodes,
                                    std::vector<uint64_t>* degrees,
                                    ThreadPool* pool) const {
  if (pool == nullptr || pool->size() <= 1 ||
      nodes.size() < kMinParallelBatch || ServePaged()) {
    return DegreeBatch(nodes, degrees);
  }
  Status valid = ValidateBatch(nodes);
  if (!valid.ok()) return valid;
  const QueryObs& o = Obs();
  o.batches->Add(1);
  o.batch_nodes->Add(nodes.size());
  obs::ScopedTimer obs_timer(o.batch_seconds);

  const summary::SummaryGraph& active = ActiveSummary();
  const std::vector<uint32_t>& leaf_rank = ActiveLeafRank();
  const size_t batch = nodes.size();
  std::vector<uint32_t> order;
  std::vector<NodeId> sorted_nodes;
  SortBatchByRank(nodes, leaf_rank, &order, &sorted_nodes);

  // Identity precomputed order per slice, as in the Neighbors overload.
  std::vector<uint32_t> identity(batch);
  std::iota(identity.begin(), identity.end(), 0u);

  degrees->assign(batch, 0);
  const size_t shards = pool->size();
  pool->Run(shards, [&](uint64_t shard, unsigned) {
    const ShardRange range = ShardBounds(batch, shard, shards);
    std::vector<uint64_t> local;
    summary::QueryDegreeBatch(
        active,
        std::span<const NodeId>(sorted_nodes)
            .subspan(range.begin, range.end - range.begin),
        &local, &ThreadLocalBatchScratch(), &leaf_rank,
        std::span<const uint32_t>(identity)
            .subspan(0, range.end - range.begin));
    // Shards own disjoint ranges of the order permutation, so these
    // writes never alias across workers.
    for (size_t k = 0; k < local.size(); ++k) {
      (*degrees)[order[range.begin + k]] = local[k];
    }
  });
  return Status::OK();
}

std::vector<double> CompressedGraph::PageRank(double d, uint32_t iterations,
                                              ThreadPool* pool) const {
  if (box_ && !Materialize().ok()) return {};
  return algs::PageRankOnHierarchy(ActiveSummary(), d, iterations, pool);
}

std::vector<uint32_t> CompressedGraph::Bfs(NodeId start) const {
  if (start >= num_nodes_ || (box_ && !Materialize().ok())) {
    // Same absorb-hostile-ids stance as Neighbors(): nothing is reachable
    // from a node that does not exist (or a summary that cannot load).
    return std::vector<uint32_t>(num_nodes_, algs::kUnreached);
  }
  return algs::BfsOnHierarchy(ActiveSummary(), start);
}

uint64_t CompressedGraph::Triangles(ThreadPool* pool) const {
  if (box_ && !Materialize().ok()) return 0;
  return algs::TrianglesOnHierarchy(ActiveSummary(), pool);
}

graph::Graph CompressedGraph::Decode(ThreadPool* pool) const {
  // Sticky failure degrades to decoding the empty summary; the verdict
  // stays observable through a direct Materialize() call.
  if (box_) (void)Materialize();
  return summary::Decode(ActiveSummary(), pool);
}

Status CompressedGraph::Verify(const graph::Graph& expected,
                               ThreadPool* pool) const {
  Status ready = Materialize();
  if (!ready.ok()) return ready;
  return summary::VerifyLossless(expected, ActiveSummary(), pool);
}

Status CompressedGraph::Save(const std::string& path) const {
  storage::SaveOptions options;
  options.format = storage::Format::kMonolithicV1;
  return storage::Save(*this, path, options);
}

StatusOr<CompressedGraph> CompressedGraph::Load(const std::string& path) {
  storage::OpenOptions options;
  options.mode = storage::OpenOptions::Mode::kInMemory;
  return storage::Open(path, options);
}

std::string CompressedGraph::Serialize() const {
  storage::SaveOptions options;
  options.format = storage::Format::kMonolithicV1;
  StatusOr<std::string> bytes = storage::Serialize(*this, options);
  return bytes.ok() ? std::move(bytes).value() : std::string();
}

StatusOr<CompressedGraph> CompressedGraph::Deserialize(
    const std::string& buffer) {
  storage::OpenOptions options;
  options.mode = storage::OpenOptions::Mode::kInMemory;
  return storage::OpenBuffer(buffer, options);
}

}  // namespace slugger
