#include "api/compressed_graph.hpp"

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>

#include "algs/summary_ops.hpp"
#include "summary/decode.hpp"
#include "summary/serialize.hpp"
#include "summary/verify.hpp"
#include "util/thread_pool.hpp"

namespace slugger {

namespace {

/// Backing store of the scratch-free query overloads. One scratch per
/// thread serves every CompressedGraph: the coverage counters are all
/// zero between queries, so switching summaries only ever grows the
/// buffers.
QueryScratch& ThreadLocalScratch() {
  thread_local QueryScratch scratch;
  return scratch;
}

/// Same lifecycle for the batched path; pool workers persist across jobs,
/// so each one warms up exactly one of these.
BatchScratch& ThreadLocalBatchScratch() {
  thread_local BatchScratch scratch;
  return scratch;
}

/// Below this size the per-shard sort/stitch overhead beats the win from
/// parallelism; the parallel overloads fall back to the sequential path.
constexpr size_t kMinParallelBatch = 256;

/// Coordinator prologue of the parallel batch overloads: the batch
/// positions sorted by the cached leaf rank (same order ComputeBatchOrder
/// derives, but rank-only — no ancestor chains are materialized; each
/// shard rebuilds exactly the chains of its own slice) plus the node list
/// in that order.
void SortBatchByRank(std::span<const NodeId> nodes,
                     const std::vector<uint32_t>& leaf_rank,
                     std::vector<uint32_t>* order,
                     std::vector<NodeId>* sorted_nodes) {
  const size_t batch = nodes.size();
  order->resize(batch);
  std::iota(order->begin(), order->end(), 0u);
  std::sort(order->begin(), order->end(),
            [&leaf_rank, nodes](uint32_t a, uint32_t b) {
              const uint32_t ra = leaf_rank[nodes[a]];
              const uint32_t rb = leaf_rank[nodes[b]];
              if (ra != rb) return ra < rb;
              return a < b;
            });
  sorted_nodes->resize(batch);
  for (size_t k = 0; k < batch; ++k) {
    (*sorted_nodes)[k] = nodes[(*order)[k]];
  }
}

/// Contiguous slice of the sorted batch owned by one shard.
struct ShardRange {
  size_t begin;
  size_t end;
};
ShardRange ShardBounds(size_t batch, size_t shard, size_t shards) {
  return {batch * shard / shards, batch * (shard + 1) / shards};
}

}  // namespace

CompressedGraph::CompressedGraph(summary::SummaryGraph summary)
    : summary_(std::move(summary)),
      stats_(summary::ComputeStats(summary_)),
      leaf_rank_(summary_.forest().ComputeLeafPreorder()) {}

CompressedGraph::CompressedGraph(summary::SummaryGraph summary,
                                 summary::SummaryStats stats)
    : summary_(std::move(summary)),
      stats_(stats),
      leaf_rank_(summary_.forest().ComputeLeafPreorder()) {}

const std::vector<NodeId>& CompressedGraph::Neighbors(
    NodeId v, QueryScratch* scratch) const {
  if (v >= summary_.num_leaves()) {
    // The core query path asserts v is in range (walking ForEachEdgeOf on
    // an arbitrary id is undefined behavior); the facade absorbs hostile
    // ids here instead.
    scratch->result.clear();
    return scratch->result;
  }
  return summary::QueryNeighbors(summary_, v, scratch);
}

const std::vector<NodeId>& CompressedGraph::Neighbors(NodeId v) const {
  return Neighbors(v, &ThreadLocalScratch());
}

size_t CompressedGraph::Degree(NodeId v, QueryScratch* scratch) const {
  if (v >= summary_.num_leaves()) return 0;
  return summary::QueryDegree(summary_, v, scratch);
}

size_t CompressedGraph::Degree(NodeId v) const {
  return Degree(v, &ThreadLocalScratch());
}

Status CompressedGraph::ValidateBatch(std::span<const NodeId> nodes) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= summary_.num_leaves()) {
      return Status::InvalidArgument(
          "batch node id " + std::to_string(nodes[i]) + " at position " +
          std::to_string(i) + " is out of range (graph has " +
          std::to_string(summary_.num_leaves()) + " nodes)");
    }
  }
  return Status::OK();
}

Status CompressedGraph::NeighborsBatch(std::span<const NodeId> nodes,
                                       BatchResult* out,
                                       BatchScratch* scratch) const {
  Status valid = ValidateBatch(nodes);
  if (!valid.ok()) return valid;
  summary::QueryNeighborsBatch(summary_, nodes, out, scratch, &leaf_rank_);
  return Status::OK();
}

Status CompressedGraph::NeighborsBatch(std::span<const NodeId> nodes,
                                       BatchResult* out) const {
  return NeighborsBatch(nodes, out, &ThreadLocalBatchScratch());
}

Status CompressedGraph::NeighborsBatch(std::span<const NodeId> nodes,
                                       BatchResult* out,
                                       ThreadPool* pool) const {
  if (pool == nullptr || pool->size() <= 1 ||
      nodes.size() < kMinParallelBatch) {
    return NeighborsBatch(nodes, out);
  }
  Status valid = ValidateBatch(nodes);
  if (!valid.ok()) return valid;

  // Sort the whole batch by hierarchy locality once, then hand each
  // worker a contiguous slice of the sorted order: shards keep the
  // ancestor-chain amortization and re-sorting a presorted slice inside
  // QueryNeighborsBatch is near-free.
  const size_t batch = nodes.size();
  std::vector<uint32_t> order;
  std::vector<NodeId> sorted_nodes;
  SortBatchByRank(nodes, leaf_rank_, &order, &sorted_nodes);

  const size_t shards = pool->size();
  std::vector<BatchResult> shard_results(shards);
  pool->Run(shards, [&](uint64_t shard, unsigned) {
    const ShardRange range = ShardBounds(batch, shard, shards);
    summary::QueryNeighborsBatch(
        summary_,
        std::span<const NodeId>(sorted_nodes)
            .subspan(range.begin, range.end - range.begin),
        &shard_results[shard], &ThreadLocalBatchScratch(), &leaf_rank_);
  });

  // Stitch shard answers (sorted order) back into input order.
  out->offsets.assign(batch + 1, 0);
  for (size_t shard = 0; shard < shards; ++shard) {
    const size_t begin = ShardBounds(batch, shard, shards).begin;
    const BatchResult& r = shard_results[shard];
    for (size_t k = 0; k < r.size(); ++k) {
      out->offsets[order[begin + k] + 1] = r.offsets[k + 1] - r.offsets[k];
    }
  }
  for (size_t i = 0; i < batch; ++i) out->offsets[i + 1] += out->offsets[i];
  out->neighbors.resize(out->offsets[batch]);
  for (size_t shard = 0; shard < shards; ++shard) {
    const size_t begin = ShardBounds(batch, shard, shards).begin;
    const BatchResult& r = shard_results[shard];
    for (size_t k = 0; k < r.size(); ++k) {
      std::span<const NodeId> src = r[k];
      std::copy(src.begin(), src.end(),
                out->neighbors.begin() + out->offsets[order[begin + k]]);
    }
  }
  return Status::OK();
}

Status CompressedGraph::DegreeBatch(std::span<const NodeId> nodes,
                                    std::vector<uint64_t>* degrees,
                                    BatchScratch* scratch) const {
  Status valid = ValidateBatch(nodes);
  if (!valid.ok()) return valid;
  summary::QueryDegreeBatch(summary_, nodes, degrees, scratch, &leaf_rank_);
  return Status::OK();
}

Status CompressedGraph::DegreeBatch(std::span<const NodeId> nodes,
                                    std::vector<uint64_t>* degrees) const {
  return DegreeBatch(nodes, degrees, &ThreadLocalBatchScratch());
}

Status CompressedGraph::DegreeBatch(std::span<const NodeId> nodes,
                                    std::vector<uint64_t>* degrees,
                                    ThreadPool* pool) const {
  if (pool == nullptr || pool->size() <= 1 ||
      nodes.size() < kMinParallelBatch) {
    return DegreeBatch(nodes, degrees);
  }
  Status valid = ValidateBatch(nodes);
  if (!valid.ok()) return valid;

  const size_t batch = nodes.size();
  std::vector<uint32_t> order;
  std::vector<NodeId> sorted_nodes;
  SortBatchByRank(nodes, leaf_rank_, &order, &sorted_nodes);

  degrees->assign(batch, 0);
  const size_t shards = pool->size();
  pool->Run(shards, [&](uint64_t shard, unsigned) {
    const ShardRange range = ShardBounds(batch, shard, shards);
    std::vector<uint64_t> local;
    summary::QueryDegreeBatch(
        summary_,
        std::span<const NodeId>(sorted_nodes)
            .subspan(range.begin, range.end - range.begin),
        &local, &ThreadLocalBatchScratch(), &leaf_rank_);
    // Shards own disjoint ranges of the order permutation, so these
    // writes never alias across workers.
    for (size_t k = 0; k < local.size(); ++k) {
      (*degrees)[order[range.begin + k]] = local[k];
    }
  });
  return Status::OK();
}

std::vector<double> CompressedGraph::PageRank(double d, uint32_t iterations,
                                              ThreadPool* pool) const {
  return algs::PageRankOnHierarchy(summary_, d, iterations, pool);
}

std::vector<uint32_t> CompressedGraph::Bfs(NodeId start) const {
  if (start >= summary_.num_leaves()) {
    // Same absorb-hostile-ids stance as Neighbors(): nothing is reachable
    // from a node that does not exist.
    return std::vector<uint32_t>(summary_.num_leaves(), algs::kUnreached);
  }
  return algs::BfsOnHierarchy(summary_, start);
}

uint64_t CompressedGraph::Triangles(ThreadPool* pool) const {
  return algs::TrianglesOnHierarchy(summary_, pool);
}

graph::Graph CompressedGraph::Decode(ThreadPool* pool) const {
  return summary::Decode(summary_, pool);
}

Status CompressedGraph::Verify(const graph::Graph& expected,
                               ThreadPool* pool) const {
  return summary::VerifyLossless(expected, summary_, pool);
}

Status CompressedGraph::Save(const std::string& path) const {
  return summary::SaveSummary(summary_, path);
}

StatusOr<CompressedGraph> CompressedGraph::Load(const std::string& path) {
  StatusOr<summary::SummaryGraph> loaded = summary::LoadSummary(path);
  if (!loaded.ok()) return loaded.status();
  return CompressedGraph(std::move(loaded).value());
}

std::string CompressedGraph::Serialize() const {
  return summary::SerializeSummary(summary_);
}

StatusOr<CompressedGraph> CompressedGraph::Deserialize(
    const std::string& buffer) {
  StatusOr<summary::SummaryGraph> parsed =
      summary::DeserializeSummary(buffer);
  if (!parsed.ok()) return parsed.status();
  return CompressedGraph(std::move(parsed).value());
}

}  // namespace slugger
