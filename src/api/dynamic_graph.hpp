// slugger::DynamicGraph — a live, losslessly mutable view over one
// compressed graph (ISSUE 5): the pipeline stage between summarization
// and serving.
//
// A DynamicGraph holds an immutable base CompressedGraph plus a
// stream::EdgeOverlay of raw-edge corrections. ApplyEdits() mutates the
// represented graph without re-summarizing; every read (single, batched)
// merges the overlay into the summary query walk, so answers ALWAYS
// equal the decoded mutated graph. When the overlay outgrows its cost
// model, a stream::Compactor folds it back into the summary — localized
// leaf-pair folding for small dirty sets, a full Engine::Summarize
// rebuild otherwise — and the fresh base is published through an
// internal SnapshotRegistry.
//
// Thread-safety contract:
//  - Reads (Neighbors / Degree / *Batch / Decode / stats) are safe from
//    any number of threads, one scratch per thread, and NEVER block on
//    writers or compaction beyond a pointer-copy: each read pins an
//    immutable {base, overlay} state snapshot (SnapshotRegistry-style
//    copy-on-write swap).
//  - ApplyEdits and Compact are safe from any thread (internally
//    serialized); a single logical writer gets the obvious sequential
//    semantics.
//  - Background compaction runs on its own thread; edits that arrive
//    while it folds are re-based onto the new summary at publish time,
//    so no edit is ever lost and readers never see a half-compacted
//    state. The destructor cancels any in-flight compaction and joins.
#ifndef SLUGGER_API_DYNAMIC_GRAPH_HPP_
#define SLUGGER_API_DYNAMIC_GRAPH_HPP_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "api/compressed_graph.hpp"
#include "api/engine.hpp"
#include "api/snapshot_registry.hpp"
#include "graph/graph.hpp"
#include "stream/compactor.hpp"
#include "stream/edge_overlay.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace slugger {

/// Re-exported so facade users never include stream headers directly.
using EdgeEdit = stream::EdgeEdit;
using EditKind = stream::EditKind;
using CompactionPolicy = stream::CompactionPolicy;

struct DynamicGraphOptions {
  /// When to compact and when folding gives way to rebuilding.
  CompactionPolicy policy;

  /// Engine configuration of rebuild compactions (iterations, threads,
  /// engine flavor). Validated at construction; an invalid configuration
  /// surfaces from the first compaction, never as a crash.
  EngineOptions rebuild;

  /// Start background compaction automatically when the policy triggers
  /// (checked after every ApplyEdits). With false, compaction runs only
  /// through explicit Compact() calls — what deterministic tests want.
  bool auto_compact = true;
};

/// Point-in-time observability counters.
struct DynamicGraphStats {
  uint64_t edits_applied = 0;    ///< edits that changed the graph
  uint64_t edits_redundant = 0;  ///< no-op edits (already present/absent)
  uint64_t corrections = 0;      ///< current overlay size
  uint64_t dirty_nodes = 0;      ///< nodes with incident corrections
  uint64_t compactions_fold = 0;
  uint64_t compactions_rebuild = 0;
  uint64_t compactions_failed = 0;  ///< see last_compaction_error()
  uint64_t base_version = 0;     ///< SnapshotRegistry publish counter
  uint64_t base_cost = 0;        ///< current base summary cost
};

/// Per-caller buffers of the overlay-aware batched read path.
struct OverlayBatchScratch {
  BatchScratch batch;     ///< base-summary batch state
  BatchResult base;       ///< base answers, before patching
};

class DynamicGraph {
 public:
  explicit DynamicGraph(CompressedGraph initial,
                        DynamicGraphOptions options = {});
  ~DynamicGraph();

  DynamicGraph(const DynamicGraph&) = delete;
  DynamicGraph& operator=(const DynamicGraph&) = delete;

  /// The fixed node universe (edits mutate edges, never nodes).
  NodeId num_nodes() const { return num_nodes_; }

  /// Applies a batch of edge insertions/deletions atomically with
  /// respect to readers: a reader sees either none or all of the batch.
  /// The whole batch is validated first — InvalidArgument (endpoint out
  /// of range, or a self-loop) applies nothing. Redundant edits
  /// (inserting a present edge, deleting an absent one) are counted but
  /// are no-ops. May trigger background compaction per the options.
  ///
  /// Cost: per edit, one base-summary membership probe (a neighbor
  /// query) when the pair carries no correction yet — plus, PER CALL,
  /// one copy-on-write snapshot of the overlay (that copy is what lets
  /// readers run lock-free). The copy is O(current corrections), so
  /// batch edits where you can: a k-edit batch pays one copy, k calls
  /// to ApplyEdit pay k.
  Status ApplyEdits(std::span<const EdgeEdit> edits)
      SLUGGER_REQUIRES(!write_mu_, !state_mu_);

  /// Single-edit convenience. Per-call cost is the same as a 1-edit
  /// batch (including the O(corrections) snapshot copy) — prefer
  /// batched ApplyEdits on hot write paths.
  Status ApplyEdit(const EdgeEdit& edit) { return ApplyEdits({&edit, 1}); }

  /// One-hop neighbors of v in the MUTATED graph, in unspecified order;
  /// the reference points into *scratch. Out-of-range v yields an empty
  /// list, mirroring CompressedGraph. Any number of concurrent callers,
  /// one scratch per thread; never blocks on writers.
  const std::vector<NodeId>& Neighbors(NodeId v, QueryScratch* scratch) const;

  /// Scratch-free overload backed by a thread-local scratch.
  const std::vector<NodeId>& Neighbors(NodeId v) const;

  /// Degree of v in the mutated graph (out-of-range v yields 0).
  size_t Degree(NodeId v, QueryScratch* scratch) const;
  size_t Degree(NodeId v) const;

  /// Batched reads over the mutated graph, in input order (duplicates
  /// allowed): the base summary answers through the amortized batch walk,
  /// then overlay corrections patch each touched node. InvalidArgument
  /// if any id is out of range, in which case *out is untouched.
  Status NeighborsBatch(std::span<const NodeId> nodes, BatchResult* out,
                        OverlayBatchScratch* scratch) const;
  Status NeighborsBatch(std::span<const NodeId> nodes, BatchResult* out) const;
  Status DegreeBatch(std::span<const NodeId> nodes,
                     std::vector<uint64_t>* degrees,
                     OverlayBatchScratch* scratch) const;
  Status DegreeBatch(std::span<const NodeId> nodes,
                     std::vector<uint64_t>* degrees) const;

  /// Synchronous compaction: waits for any in-flight background run,
  /// then folds/rebuilds the current overlay per policy. OK with an
  /// empty overlay (no-op). Readers keep serving throughout.
  Status Compact() SLUGGER_REQUIRES(!write_mu_, !worker_mu_, !state_mu_);

  /// Blocks until no background compaction is in flight. (A new one may
  /// start from a concurrent ApplyEdits afterwards.)
  void WaitForCompaction() SLUGGER_REQUIRES(!worker_mu_, !write_mu_);

  bool compaction_in_flight() const {
    return compaction_running_.load(std::memory_order_acquire);
  }

  /// Verdict of the most recent compaction (OK before any ran, or after
  /// a successful one). Background failures land here instead of
  /// vanishing with the worker thread; a non-OK, non-Aborted verdict
  /// (e.g. invalid rebuild options) also PAUSES auto-compaction — the
  /// failure is deterministic, so re-spawning a doomed rebuild after
  /// every batch would only burn decode time while the overlay grows.
  /// An explicit Compact() still runs (and reports the error afresh).
  Status last_compaction_error() const SLUGGER_REQUIRES(!write_mu_);

  /// Every compacted base is published here (version 1 is the summary
  /// the DynamicGraph was constructed with). External consumers that
  /// only need eventually-compacted reads can serve straight from the
  /// registry's snapshots.
  const SnapshotRegistry& registry() const { return registry_; }

  DynamicGraphStats stats() const;

  /// Hierarchy-native analytics over the MUTATED graph: the pinned
  /// state's overlay corrections enter the summary SpMV as extra signed
  /// rank-1 terms (algs/summary_ops), so results match running the same
  /// algorithm on Decode() — live, without waiting for compaction. Same
  /// concurrency contract as the other reads: never blocks on writers,
  /// any number of concurrent callers.
  std::vector<double> PageRank(double d = 0.85, uint32_t iterations = 20,
                               ThreadPool* pool = nullptr) const;
  std::vector<uint32_t> Bfs(NodeId start) const;
  uint64_t Triangles(ThreadPool* pool = nullptr) const;

  /// The exact mutated graph (base decode + overlay), for verification
  /// and export.
  graph::Graph Decode() const;

 private:
  /// One immutable generation of the served state; readers pin it with a
  /// shared_ptr copy and writers swap in replacements whole. The base's
  /// registry version rides along so stats() reports one coherent
  /// generation instead of mixing a pinned overlay with a live counter.
  struct State {
    SnapshotRegistry::Snapshot base;
    std::shared_ptr<const stream::EdgeOverlay> overlay;
    uint64_t base_version = 0;
  };

  std::shared_ptr<const State> CurrentState() const
      SLUGGER_REQUIRES(!state_mu_);
  void SetState(std::shared_ptr<const State> next)
      SLUGGER_REQUIRES(!state_mu_);
  bool BaseHasEdge(const CompressedGraph& base, NodeId u, NodeId v,
                   QueryScratch* scratch) const;
  Status ValidateEdits(std::span<const EdgeEdit> edits) const;
  /// Claims the compaction slot for `snapshot`.
  void StartBackgroundCompaction(std::shared_ptr<const State> snapshot)
      SLUGGER_REQUIRES(write_mu_, !worker_mu_);
  /// Compacts `snapshot`, publishes, re-bases pending edits, releases
  /// the claimed slot. Runs with no locks held until the publish step.
  Status RunCompaction(std::shared_ptr<const State> snapshot)
      SLUGGER_REQUIRES(!write_mu_, !state_mu_);

  NodeId num_nodes_ = 0;
  DynamicGraphOptions options_;
  stream::Compactor compactor_;
  SnapshotRegistry registry_;
  CancelToken cancel_;

  /// Guards state_ swaps and reads (pointer copy only — the pointee is
  /// immutable, so readers never hold it while querying).
  mutable Mutex state_mu_;
  std::shared_ptr<const State> state_ SLUGGER_GUARDED_BY(state_mu_);

  /// Serializes writers: ApplyEdits bodies, compaction claim/publish,
  /// and the pending-edit log. Never held while compacting or querying
  /// (mutable only for the const last_compaction_error() accessor).
  mutable Mutex write_mu_;
  /// Edits since compaction started.
  std::vector<EdgeEdit> pending_log_ SLUGGER_GUARDED_BY(write_mu_);
  /// Base-membership probe buffers.
  QueryScratch write_scratch_ SLUGGER_GUARDED_BY(write_mu_);
  std::atomic<bool> compaction_running_{false};
  CondVar compaction_done_cv_;  ///< with write_mu_
  Status last_compaction_error_ SLUGGER_GUARDED_BY(write_mu_);

  /// Guards the worker handle only (join must not hold write_mu_).
  Mutex worker_mu_;
  std::thread worker_ SLUGGER_GUARDED_BY(worker_mu_);

  std::atomic<uint64_t> edits_applied_{0};
  std::atomic<uint64_t> edits_redundant_{0};
  std::atomic<uint64_t> compactions_fold_{0};
  std::atomic<uint64_t> compactions_rebuild_{0};
  std::atomic<uint64_t> compactions_failed_{0};
};

}  // namespace slugger

#endif  // SLUGGER_API_DYNAMIC_GRAPH_HPP_
