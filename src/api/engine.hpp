// slugger::Engine — the supported way into the library for services.
//
// Lifecycle: construct one Engine with validated EngineOptions, keep it
// for the process lifetime, and call Summarize() per request. The Engine
// owns a persistent util::ThreadPool reused across runs (no per-run
// thread startup/teardown), validates every option up front (Status
// instead of asserts or silent UB), and plumbs per-run hooks — a
// per-iteration ProgressObserver and a cooperative CancelToken — through
// all three merge engines. A cancelled run is not an error: it returns
// the lossless best-so-far CompressedGraph.
//
// Thread-safety: Summarize() is NOT reentrant — one run at a time per
// Engine (a service wanting parallel compression jobs holds one Engine
// per job slot). The returned CompressedGraph is independent of the
// Engine and serves concurrent readers; see compressed_graph.hpp.
//
//   slugger::EngineOptions options;
//   options.config.iterations = 20;
//   options.config.num_threads = 8;
//   slugger::Engine engine(options);
//   auto compressed = engine.Summarize(g);
//   if (!compressed.ok()) { /* bad options or graph */ }
//   const auto& neighbors = compressed.value().Neighbors(v, &scratch);
#ifndef SLUGGER_API_ENGINE_HPP_
#define SLUGGER_API_ENGINE_HPP_

#include <optional>

#include "api/compressed_graph.hpp"
#include "core/config.hpp"
#include "core/hooks.hpp"
#include "core/slugger.hpp"
#include "graph/graph.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace slugger {

/// Re-exported hook vocabulary so facade users never include core
/// headers directly.
using ProgressEvent = core::ProgressEvent;
using ProgressObserver = core::ProgressObserver;
using MergeEngine = core::MergeEngine;

/// Engine-lifetime configuration: the algorithm knobs plus validation.
struct EngineOptions {
  /// Algorithm knobs (iterations, seed, group size, engine, threads...).
  core::SluggerConfig config;

  /// InvalidArgument on any knob the algorithms cannot honor — values
  /// that today would fail asserts or silently misbehave deep inside the
  /// core layer (iterations == 0, max_group_size < 2, an out-of-range
  /// engine enum). OK otherwise.
  Status Validate() const;
};

/// Per-run options of Engine::Summarize.
struct RunOptions {
  /// Fires after every completed iteration with merge counts, current
  /// p/n/h sizes, and elapsed wall time — exactly config.iterations
  /// times on an uncancelled run. Called on the summarizing thread.
  ProgressObserver progress;

  /// Cooperative cancellation, polled at iteration, merge, round, and
  /// pruning-round boundaries in every merge engine. When fired the run
  /// returns early with the lossless best-so-far summary (Status OK).
  const CancelToken* cancel = nullptr;
};

class Engine {
 public:
  /// Validates `options` once; an invalid Engine stays inert and reports
  /// the validation failure from every Summarize() call.
  explicit Engine(EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineOptions& options() const { return options_; }

  /// The validation verdict of the construction-time options.
  const Status& status() const { return options_status_; }

  /// Effective worker count of the persistent pool (1 when the
  /// configuration never needs one).
  unsigned num_threads() const { return pool_ ? pool_->size() : 1; }

  /// Runs SLUGGER on g over the persistent pool. InvalidArgument when the
  /// construction options failed validation or g is too large for the
  /// supernode id space; otherwise OK — including cancelled runs, which
  /// yield the lossless best-so-far summary.
  StatusOr<CompressedGraph> Summarize(const graph::Graph& g,
                                      const RunOptions& run = {});

  /// Largest representable input: a summarization of n leaves allocates
  /// at most n - 1 fresh supernode ids, so 2n - 2 must stay below
  /// kInvalidId. Larger graphs would silently wrap SupernodeId. The same
  /// bound gates untrusted buffers in DeserializeSummary.
  static constexpr NodeId kMaxNodes = slugger::kMaxNodes;

  /// The persistent pool, for callers that want to reuse it for Decode /
  /// Verify on this Engine's thread budget. Null when num_threads() == 1.
  ThreadPool* pool() { return pool_ ? &*pool_ : nullptr; }

 private:
  EngineOptions options_;
  Status options_status_;
  std::optional<ThreadPool> pool_;
};

}  // namespace slugger

#endif  // SLUGGER_API_ENGINE_HPP_
