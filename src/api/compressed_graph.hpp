// slugger::CompressedGraph — the service-grade handle to one compressed
// graph. Owns the summary and its statistics; everything a server needs
// after (or instead of) running the Engine goes through this class:
// neighbor/degree queries, full decode, losslessness verification, and
// binary save/load.
//
// Thread-safety contract: after construction the summary is immutable.
// All const members are safe to call from any number of threads
// concurrently, PROVIDED each querying thread passes its own
// QueryScratch (or uses the scratch-free overloads, which keep one
// scratch per thread internally). Non-const operations (move-assign,
// destruction) require external exclusion, as usual.
#ifndef SLUGGER_API_COMPRESSED_GRAPH_HPP_
#define SLUGGER_API_COMPRESSED_GRAPH_HPP_

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "summary/neighbor_query.hpp"
#include "summary/stats.hpp"
#include "summary/summary_graph.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace slugger {

class ThreadPool;

/// Re-exported so facade users never include summary headers directly.
using QueryScratch = summary::QueryScratch;

class CompressedGraph {
 public:
  /// Empty handle (0 nodes); useful only as a move-assign target.
  CompressedGraph() = default;

  /// Takes ownership of a summary and computes its statistics.
  explicit CompressedGraph(summary::SummaryGraph summary);

  /// Takes ownership of a summary with already-computed statistics.
  CompressedGraph(summary::SummaryGraph summary, summary::SummaryStats stats);

  /// Number of nodes of the represented (uncompressed) graph.
  NodeId num_nodes() const { return summary_.num_leaves(); }

  /// Size/composition statistics of the summary (Eq. 1 / Eq. 10).
  const summary::SummaryStats& stats() const { return stats_; }

  /// One-hop neighbors of v in the represented graph, in unspecified
  /// order (paper Algorithm 4; never decompresses the whole graph). The
  /// returned reference points into *scratch. Safe to call concurrently
  /// from many threads, one scratch per thread.
  const std::vector<NodeId>& Neighbors(NodeId v, QueryScratch* scratch) const;

  /// Scratch-free convenience overload backed by a thread-local scratch;
  /// the reference is valid until this thread's next query.
  const std::vector<NodeId>& Neighbors(NodeId v) const;

  /// Degree of v, via the count-only coverage pass (no neighbor list is
  /// materialized). Same concurrency contract as Neighbors().
  size_t Degree(NodeId v, QueryScratch* scratch) const;
  size_t Degree(NodeId v) const;

  /// Reconstructs the exact represented graph. With a pool,
  /// reconstruction is parallel and byte-identical to the sequential one.
  graph::Graph Decode(ThreadPool* pool = nullptr) const;

  /// Checks that this summary losslessly represents `expected`.
  Status Verify(const graph::Graph& expected, ThreadPool* pool = nullptr) const;

  /// Binary round trip (varint format of summary/serialize.hpp).
  Status Save(const std::string& path) const;
  static StatusOr<CompressedGraph> Load(const std::string& path);
  std::string Serialize() const;
  static StatusOr<CompressedGraph> Deserialize(const std::string& buffer);

  /// Read-only access to the internal layer, for advanced consumers
  /// (summary-level algorithms in algs/, hierarchy introspection). The
  /// returned summary must never be mutated while queries are in flight.
  const summary::SummaryGraph& summary() const { return summary_; }

 private:
  summary::SummaryGraph summary_;
  summary::SummaryStats stats_;
};

}  // namespace slugger

#endif  // SLUGGER_API_COMPRESSED_GRAPH_HPP_
