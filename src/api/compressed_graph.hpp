// slugger::CompressedGraph — the service-grade handle to one compressed
// graph. Everything a server needs after (or instead of) running the
// Engine goes through this class: neighbor/degree queries, full decode,
// losslessness verification, and persistence.
//
// A handle is backed in one of two ways:
//   - in-memory: owns a SummaryGraph (the classic mode);
//   - paged: holds a storage::PagedSummarySource and serves queries
//     straight off the on-disk v2 pages, faulting in only the pages a
//     query's ancestor chain touches. Analytics (PageRank/Bfs/Triangles/
//     Decode/Verify) and summary() transparently materialize the full
//     summary on first use; Materialize() does it explicitly so the
//     caller sees the Status.
//
// Persistence lives in storage/storage.hpp (slugger::storage::Open /
// Save); the Save/Load/Serialize/Deserialize members below are
// deprecated wrappers kept for source compatibility.
//
// Thread-safety contract: after construction the summary is immutable.
// All const members are safe to call from any number of threads
// concurrently, PROVIDED each querying thread passes its own
// QueryScratch (or uses the scratch-free overloads, which keep one
// scratch per thread internally). Lazy materialization synchronizes
// internally and happens at most once per underlying source. Non-const
// operations (move-assign, destruction) require external exclusion, as
// usual.
#ifndef SLUGGER_API_COMPRESSED_GRAPH_HPP_
#define SLUGGER_API_COMPRESSED_GRAPH_HPP_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "summary/neighbor_query.hpp"
#include "summary/stats.hpp"
#include "summary/summary_graph.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace slugger {

class ThreadPool;

namespace storage {
class PagedSummarySource;
}  // namespace storage

/// Re-exported so facade users never include summary headers directly.
using QueryScratch = summary::QueryScratch;
using BatchScratch = summary::BatchScratch;
using BatchResult = summary::BatchResult;
using NeighborOverride = summary::NeighborOverride;

class CompressedGraph {
 public:
  /// Empty handle (0 nodes); useful only as a move-assign target.
  CompressedGraph() = default;

  /// Takes ownership of a summary and computes its statistics.
  explicit CompressedGraph(summary::SummaryGraph summary);

  /// Takes ownership of a summary with already-computed statistics.
  CompressedGraph(summary::SummaryGraph summary, summary::SummaryStats stats);

  /// Paged handle over an open v2 file (see storage::Open, which is how
  /// one is normally built). Queries serve off the pages; copies share
  /// the source and the at-most-once materialization.
  explicit CompressedGraph(
      std::shared_ptr<storage::PagedSummarySource> source);

  /// Number of nodes of the represented (uncompressed) graph.
  NodeId num_nodes() const { return num_nodes_; }

  /// Size/composition statistics of the summary (Eq. 1 / Eq. 10).
  const summary::SummaryStats& stats() const { return stats_; }

  /// True while queries are answered from on-disk pages (a paged handle
  /// that has not materialized yet).
  bool paged() const;

  /// The paged source backing this handle, or nullptr for in-memory
  /// handles. Exposes buffer statistics for observability.
  std::shared_ptr<storage::PagedSummarySource> paged_source() const;

  /// Forces a paged handle fully into memory (idempotent; no-op for
  /// in-memory handles). After OK, queries no longer touch the file.
  /// A failure (corrupt record stream) is sticky and re-returned.
  Status Materialize() const;

  /// Number of queries (single or batched) this handle has absorbed or
  /// surfaced an I/O/corruption error for since construction. Always 0
  /// for in-memory handles, whose queries cannot fail. The signal the
  /// single-query overloads lack: Neighbors()/Degree() degrade errors
  /// to empty answers, so a serving layer (the dist coordinator's
  /// degraded-shard accounting) watches this counter instead of
  /// mistaking holes for isolated nodes. Shared across copies of a
  /// paged handle, like the source itself.
  uint64_t query_errors() const;

  /// The most recent query error (OK when query_errors() == 0).
  Status last_status() const;

  /// One-hop neighbors of v in the represented graph (paper Algorithm 4;
  /// never decompresses the whole graph). In-memory handles return them
  /// in unspecified order; paged handles sorted ascending. The returned
  /// reference points into *scratch. Safe to call concurrently from many
  /// threads, one scratch per thread. An out-of-range v (>= num_nodes())
  /// yields an empty list — never undefined behavior; so does an I/O or
  /// corruption error on the paged path. Callers that need those
  /// distinctions should use NeighborsBatch, whose Status reports them.
  const std::vector<NodeId>& Neighbors(NodeId v, QueryScratch* scratch) const;

  /// Scratch-free convenience overload backed by a thread-local scratch;
  /// the reference is valid until this thread's next query.
  const std::vector<NodeId>& Neighbors(NodeId v) const;

  /// Override-aware overload: `overrides` are per-query edge corrections
  /// following the summary::NeighborOverride contract (sorted by
  /// neighbor, each a valid node id, v itself ignored). This is how
  /// DynamicGraph layers its overlay on any base, paged or not.
  const std::vector<NodeId>& Neighbors(
      NodeId v, QueryScratch* scratch,
      std::span<const NeighborOverride> overrides) const;

  /// Degree of v, via the count-only coverage pass (no neighbor list is
  /// materialized). Same concurrency and bounds contract as Neighbors()
  /// (out-of-range v yields 0, as does a paged-path error).
  size_t Degree(NodeId v, QueryScratch* scratch) const;
  size_t Degree(NodeId v) const;
  size_t Degree(NodeId v, QueryScratch* scratch,
                std::span<const NeighborOverride> overrides) const;

  /// Batched Neighbors over a node list (duplicates allowed): answers
  /// land in *out in input order. The batch is processed in hierarchy-
  /// locality order so consecutive nodes reuse one coverage pass per
  /// shared ancestor chain instead of re-walking Algorithm 4 per node —
  /// measurably faster than a Neighbors() loop on any summary with real
  /// hierarchy (see bench_batch_query). InvalidArgument if any id is
  /// >= num_nodes(), in which case *out is untouched. On a paged handle
  /// an I/O or corruption error surfaces here as a non-OK Status and
  /// *out is emptied. Concurrency: same as Neighbors() — any number of
  /// threads, one scratch per thread (the scratch-free overload keeps
  /// one per thread internally).
  Status NeighborsBatch(std::span<const NodeId> nodes, BatchResult* out,
                        BatchScratch* scratch) const;
  Status NeighborsBatch(std::span<const NodeId> nodes, BatchResult* out) const;

  /// Parallel overload: shards the locality-sorted batch across `pool`
  /// (each shard stays contiguous in the sorted order, preserving the
  /// amortization). Falls back to the sequential path for small batches,
  /// a pool of one, or a paged handle. Must not be called from inside
  /// another job running on the same pool.
  Status NeighborsBatch(std::span<const NodeId> nodes, BatchResult* out,
                        ThreadPool* pool) const;

  /// Batched Degree under the same contract: degrees->at(i) answers
  /// nodes[i]; no neighbor lists are materialized.
  Status DegreeBatch(std::span<const NodeId> nodes,
                     std::vector<uint64_t>* degrees,
                     BatchScratch* scratch) const;
  Status DegreeBatch(std::span<const NodeId> nodes,
                     std::vector<uint64_t>* degrees) const;
  Status DegreeBatch(std::span<const NodeId> nodes,
                     std::vector<uint64_t>* degrees, ThreadPool* pool) const;

  /// Hierarchy-native analytics (algs/summary_ops): evaluated directly on
  /// the compressed structure at O(n + |P| + |N|) per pass instead of
  /// O(|E|), with results exactly matching the same algorithm run on
  /// Decode() (PageRank up to summation-order rounding). Safe to call
  /// concurrently; a pool parallelizes the per-superedge loops and must
  /// not be shared with an enclosing pool job. A paged handle
  /// materializes first; if that fails, PageRank/Decode return empty,
  /// Bfs returns all-unreached, Triangles returns 0 (use Materialize()
  /// or Verify() to observe the Status).
  std::vector<double> PageRank(double d = 0.85, uint32_t iterations = 20,
                               ThreadPool* pool = nullptr) const;

  /// Hop distances from `start`; unreachable nodes (and every node, if
  /// `start` is out of range) get 0xFFFFFFFF.
  std::vector<uint32_t> Bfs(NodeId start) const;

  /// Exact global triangle count of the represented graph.
  uint64_t Triangles(ThreadPool* pool = nullptr) const;

  /// Reconstructs the exact represented graph. With a pool,
  /// reconstruction is parallel and byte-identical to the sequential one.
  graph::Graph Decode(ThreadPool* pool = nullptr) const;

  /// Checks that this summary losslessly represents `expected`.
  Status Verify(const graph::Graph& expected, ThreadPool* pool = nullptr) const;

  /// Deprecated persistence surface — thin wrappers over
  /// slugger::storage. Save/Serialize keep writing the v1 monolithic
  /// format byte-for-byte; Load/Deserialize read both formats but always
  /// materialize. New code should use storage::Open / storage::Save,
  /// which add the paged v2 format and out-of-core opens.
  [[deprecated("use slugger::storage::Save")]] Status Save(
      const std::string& path) const;
  [[deprecated("use slugger::storage::Open")]] static StatusOr<
      CompressedGraph>
  Load(const std::string& path);
  [[deprecated("use slugger::storage::Serialize")]] std::string Serialize()
      const;
  [[deprecated("use slugger::storage::OpenBuffer")]] static StatusOr<
      CompressedGraph>
  Deserialize(const std::string& buffer);

  /// Read-only access to the internal layer, for advanced consumers
  /// (summary-level algorithms in algs/, hierarchy introspection). The
  /// returned summary must never be mutated while queries are in flight.
  /// A paged handle materializes first; on failure the returned summary
  /// is empty (0 leaves) — call Materialize() when the Status matters.
  const summary::SummaryGraph& summary() const;

 private:
  // Shared across copies of a paged handle so the source is opened once
  // and materialization happens at most once no matter how many handles
  // point at it.
  struct PagedBox;

  Status ValidateBatch(std::span<const NodeId> nodes) const;
  /// True when queries must go to the pages (paged and not yet
  /// materialized — a failed materialization keeps serving paged).
  bool ServePaged() const;
  const summary::SummaryGraph& ActiveSummary() const;
  const std::vector<uint32_t>& ActiveLeafRank() const;

  summary::SummaryGraph summary_;
  summary::SummaryStats stats_;
  // Leaf preorder of the (immutable) hierarchy, computed once at
  // construction so every batched query sorts on a cached integer rank
  // instead of re-deriving hierarchy locality per call. Paged handles
  // compute it on materialization instead (into box_).
  std::vector<uint32_t> leaf_rank_;
  NodeId num_nodes_ = 0;
  std::shared_ptr<PagedBox> box_;
};

}  // namespace slugger

#endif  // SLUGGER_API_COMPRESSED_GRAPH_HPP_
