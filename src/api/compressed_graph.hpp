// slugger::CompressedGraph — the service-grade handle to one compressed
// graph. Owns the summary and its statistics; everything a server needs
// after (or instead of) running the Engine goes through this class:
// neighbor/degree queries, full decode, losslessness verification, and
// binary save/load.
//
// Thread-safety contract: after construction the summary is immutable.
// All const members are safe to call from any number of threads
// concurrently, PROVIDED each querying thread passes its own
// QueryScratch (or uses the scratch-free overloads, which keep one
// scratch per thread internally). Non-const operations (move-assign,
// destruction) require external exclusion, as usual.
#ifndef SLUGGER_API_COMPRESSED_GRAPH_HPP_
#define SLUGGER_API_COMPRESSED_GRAPH_HPP_

#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "summary/neighbor_query.hpp"
#include "summary/stats.hpp"
#include "summary/summary_graph.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace slugger {

class ThreadPool;

/// Re-exported so facade users never include summary headers directly.
using QueryScratch = summary::QueryScratch;
using BatchScratch = summary::BatchScratch;
using BatchResult = summary::BatchResult;

class CompressedGraph {
 public:
  /// Empty handle (0 nodes); useful only as a move-assign target.
  CompressedGraph() = default;

  /// Takes ownership of a summary and computes its statistics.
  explicit CompressedGraph(summary::SummaryGraph summary);

  /// Takes ownership of a summary with already-computed statistics.
  CompressedGraph(summary::SummaryGraph summary, summary::SummaryStats stats);

  /// Number of nodes of the represented (uncompressed) graph.
  NodeId num_nodes() const { return summary_.num_leaves(); }

  /// Size/composition statistics of the summary (Eq. 1 / Eq. 10).
  const summary::SummaryStats& stats() const { return stats_; }

  /// One-hop neighbors of v in the represented graph, in unspecified
  /// order (paper Algorithm 4; never decompresses the whole graph). The
  /// returned reference points into *scratch. Safe to call concurrently
  /// from many threads, one scratch per thread. An out-of-range v
  /// (>= num_nodes()) yields an empty list — never undefined behavior;
  /// callers that need the distinction should use NeighborsBatch, whose
  /// Status reports out-of-range ids as InvalidArgument.
  const std::vector<NodeId>& Neighbors(NodeId v, QueryScratch* scratch) const;

  /// Scratch-free convenience overload backed by a thread-local scratch;
  /// the reference is valid until this thread's next query.
  const std::vector<NodeId>& Neighbors(NodeId v) const;

  /// Degree of v, via the count-only coverage pass (no neighbor list is
  /// materialized). Same concurrency and bounds contract as Neighbors()
  /// (out-of-range v yields 0).
  size_t Degree(NodeId v, QueryScratch* scratch) const;
  size_t Degree(NodeId v) const;

  /// Batched Neighbors over a node list (duplicates allowed): answers
  /// land in *out in input order. The batch is processed in hierarchy-
  /// locality order so consecutive nodes reuse one coverage pass per
  /// shared ancestor chain instead of re-walking Algorithm 4 per node —
  /// measurably faster than a Neighbors() loop on any summary with real
  /// hierarchy (see bench_batch_query). InvalidArgument if any id is
  /// >= num_nodes(), in which case *out is untouched. Concurrency: same
  /// as Neighbors() — any number of threads, one scratch per thread (the
  /// scratch-free overload keeps one per thread internally).
  Status NeighborsBatch(std::span<const NodeId> nodes, BatchResult* out,
                        BatchScratch* scratch) const;
  Status NeighborsBatch(std::span<const NodeId> nodes, BatchResult* out) const;

  /// Parallel overload: shards the locality-sorted batch across `pool`
  /// (each shard stays contiguous in the sorted order, preserving the
  /// amortization). Falls back to the sequential path for small batches
  /// or a pool of one. Must not be called from inside another job running
  /// on the same pool.
  Status NeighborsBatch(std::span<const NodeId> nodes, BatchResult* out,
                        ThreadPool* pool) const;

  /// Batched Degree under the same contract: degrees->at(i) answers
  /// nodes[i]; no neighbor lists are materialized.
  Status DegreeBatch(std::span<const NodeId> nodes,
                     std::vector<uint64_t>* degrees,
                     BatchScratch* scratch) const;
  Status DegreeBatch(std::span<const NodeId> nodes,
                     std::vector<uint64_t>* degrees) const;
  Status DegreeBatch(std::span<const NodeId> nodes,
                     std::vector<uint64_t>* degrees, ThreadPool* pool) const;

  /// Hierarchy-native analytics (algs/summary_ops): evaluated directly on
  /// the compressed structure at O(n + |P| + |N|) per pass instead of
  /// O(|E|), with results exactly matching the same algorithm run on
  /// Decode() (PageRank up to summation-order rounding). Safe to call
  /// concurrently; a pool parallelizes the per-superedge loops and must
  /// not be shared with an enclosing pool job.
  std::vector<double> PageRank(double d = 0.85, uint32_t iterations = 20,
                               ThreadPool* pool = nullptr) const;

  /// Hop distances from `start`; unreachable nodes (and every node, if
  /// `start` is out of range) get 0xFFFFFFFF.
  std::vector<uint32_t> Bfs(NodeId start) const;

  /// Exact global triangle count of the represented graph.
  uint64_t Triangles(ThreadPool* pool = nullptr) const;

  /// Reconstructs the exact represented graph. With a pool,
  /// reconstruction is parallel and byte-identical to the sequential one.
  graph::Graph Decode(ThreadPool* pool = nullptr) const;

  /// Checks that this summary losslessly represents `expected`.
  Status Verify(const graph::Graph& expected, ThreadPool* pool = nullptr) const;

  /// Binary round trip (varint format of summary/serialize.hpp).
  Status Save(const std::string& path) const;
  static StatusOr<CompressedGraph> Load(const std::string& path);
  std::string Serialize() const;
  static StatusOr<CompressedGraph> Deserialize(const std::string& buffer);

  /// Read-only access to the internal layer, for advanced consumers
  /// (summary-level algorithms in algs/, hierarchy introspection). The
  /// returned summary must never be mutated while queries are in flight.
  const summary::SummaryGraph& summary() const { return summary_; }

 private:
  Status ValidateBatch(std::span<const NodeId> nodes) const;

  summary::SummaryGraph summary_;
  summary::SummaryStats stats_;
  // Leaf preorder of the (immutable) hierarchy, computed once at
  // construction so every batched query sorts on a cached integer rank
  // instead of re-deriving hierarchy locality per call.
  std::vector<uint32_t> leaf_rank_;
};

}  // namespace slugger

#endif  // SLUGGER_API_COMPRESSED_GRAPH_HPP_
