#include "stream/compactor.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "summary/neighbor_query.hpp"
#include "summary/summary_graph.hpp"
#include "util/timer.hpp"

namespace slugger::stream {

namespace {

/// Corrections flattened to canonical (u < v, sign) triples and grouped
/// by u, so the fold runs ONE coverage pass per distinct smaller
/// endpoint instead of one per correction.
struct Correction {
  NodeId u;
  NodeId v;
  EdgeSign sign;
};

std::vector<Correction> SortedCorrections(const EdgeOverlay& overlay) {
  std::vector<Correction> all;
  all.reserve(overlay.correction_count());
  overlay.ForEachCorrection([&](NodeId u, NodeId v, EdgeSign sign) {
    all.push_back({u, v, sign});
  });
  std::sort(all.begin(), all.end(), [](const Correction& a,
                                       const Correction& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  return all;
}

}  // namespace

Compactor::Compactor(CompactionPolicy policy, EngineOptions rebuild_options)
    : policy_(policy), engine_(std::move(rebuild_options)) {}

bool Compactor::ShouldCompact(const CompressedGraph& base,
                              const EdgeOverlay& overlay) const {
  const uint64_t corrections = overlay.correction_count();
  if (corrections < policy_.min_corrections) return false;
  const double cost = static_cast<double>(base.stats().cost);
  return static_cast<double>(corrections) >= policy_.max_overlay_ratio * cost;
}

StatusOr<CompressedGraph> Compactor::Compact(const CompressedGraph& base,
                                             const EdgeOverlay& overlay,
                                             const CancelToken* cancel,
                                             CompactionStats* stats) {
  WallTimer timer;
  CompactionStats local;
  local.corrections = overlay.correction_count();
  local.old_cost = base.stats().cost;

  const NodeId n = base.num_nodes();
  const double dirty_fraction =
      n == 0 ? 0.0
             : static_cast<double>(overlay.dirty_node_count()) /
                   static_cast<double>(n);
  const bool fold_allowed =
      dirty_fraction <= policy_.max_fold_dirty_fraction &&
      folded_since_rebuild_ + overlay.correction_count() <=
          policy_.rebuild_after_folded;

  StatusOr<CompressedGraph> result = Status::Aborted("unreached");
  if (fold_allowed) {
    local.kind = CompactionKind::kFold;
    result = TryFold(base, overlay, cancel);
    if (!result.ok() && result.status().code() == Status::Code::kNotFound) {
      local.fold_fell_back = true;
      result = Rebuild(base, overlay, cancel);
      local.kind = CompactionKind::kRebuild;
    }
  } else {
    local.kind = CompactionKind::kRebuild;
    result = Rebuild(base, overlay, cancel);
  }
  if (!result.ok()) {
    if (stats != nullptr) *stats = local;
    return result.status();
  }

  if (local.kind == CompactionKind::kFold) {
    folded_since_rebuild_ += overlay.correction_count();
  } else {
    folded_since_rebuild_ = 0;
  }
  local.new_cost = result.value().stats().cost;
  local.seconds = timer.Seconds();
  if (stats != nullptr) *stats = local;
  return result;
}

StatusOr<CompressedGraph> Compactor::TryFold(const CompressedGraph& base,
                                             const EdgeOverlay& overlay,
                                             const CancelToken* cancel) const {
  summary::SummaryGraph folded = base.summary();  // deep copy
  summary::QueryScratch scratch;
  const std::vector<Correction> corrections = SortedCorrections(overlay);

  size_t i = 0;
  while (i < corrections.size()) {
    if (IsCancelled(cancel)) return Status::Aborted("compaction cancelled");
    const NodeId u = corrections[i].u;
    // One coverage pass answers every corrected pair {u, *} of the group.
    summary::AccumulateCoverage(folded, u, &scratch);
    // Resolve the group, then restore the scratch invariant — mutations
    // touch only leaf pairs {u, v} of THIS group, which later groups
    // (all with larger smaller-endpoints) never read again.
    Status verdict = Status::OK();
    for (; i < corrections.size() && corrections[i].u == u; ++i) {
      const NodeId v = corrections[i].v;
      const bool want_present = corrections[i].sign > 0;
      const EdgeSign leaf_sign = folded.GetSign(u, v);
      // Net coverage contributed by every ancestor pair EXCEPT the leaf
      // pair itself — the only term a fold may rewrite.
      const int32_t outer = scratch.count[v] - leaf_sign;
      EdgeSign target;
      if (want_present) {
        if (outer >= 1) {
          target = 0;  // already over-covered; drop any leaf n-edge
        } else if (outer == 0) {
          target = +1;
        } else {
          verdict = Status::NotFound("fold infeasible: pair under-covered");
          break;
        }
      } else {
        if (outer <= 0) {
          target = 0;
        } else if (outer == 1) {
          target = -1;
        } else {
          verdict = Status::NotFound("fold infeasible: pair over-covered");
          break;
        }
      }
      if (target != leaf_sign) {
        if (leaf_sign != 0) folded.RemoveEdge(u, v);
        if (target != 0) folded.AddEdge(u, v, target);
      }
    }
    for (NodeId t : scratch.touched) scratch.count[t] = 0;
    scratch.touched.clear();
    if (!verdict.ok()) return verdict;
  }
  return CompressedGraph(std::move(folded));
}

StatusOr<CompressedGraph> Compactor::Rebuild(const CompressedGraph& base,
                                             const EdgeOverlay& overlay,
                                             const CancelToken* cancel) {
  if (IsCancelled(cancel)) return Status::Aborted("compaction cancelled");
  const graph::Graph mutated = ApplyOverlay(base.Decode(engine_.pool()),
                                            overlay);
  if (IsCancelled(cancel)) return Status::Aborted("compaction cancelled");
  RunOptions run;
  run.cancel = cancel;
  StatusOr<CompressedGraph> rebuilt = engine_.Summarize(mutated, run);
  if (!rebuilt.ok()) return rebuilt.status();
  // A cancelled Summarize returns a lossless best-so-far summary, but a
  // cancelled *compaction* must not publish at all (the caller is
  // shutting down or wants the base kept) — discard it.
  if (IsCancelled(cancel)) return Status::Aborted("compaction cancelled");
  return rebuilt;
}

}  // namespace slugger::stream
