// stream::Compactor — folds an EdgeOverlay back into its base summary.
//
// The overlay keeps edits cheap, but every correction is one unit of
// storage the summary is not compressing and one override the query walk
// must merge. The compactor watches that cost (ShouldCompact) and, past
// the threshold, produces a fresh CompressedGraph representing the
// mutated graph with an EMPTY overlay, by one of two strategies:
//
//  - kFold (localized): copy the summary and, for each corrected pair,
//    solve for the leaf-level superedge that moves the pair's net signed
//    coverage across zero (present: net >= 1; absent: net <= 0). Work is
//    proportional to the dirty nodes' ancestor chains — the affected
//    subtrees — not the graph. Folding is exact but can be infeasible
//    when higher superedges over-cover a pair by 2 or more (one leaf
//    edge shifts net by at most 1); then, and when the dirty set is too
//    large a fraction of the graph for localized work to pay, it
//    falls back to:
//
//  - kRebuild (global): decode the base, apply the overlay, and re-run
//    Engine::Summarize on the mutated graph over the compactor's
//    persistent thread pool. Folding also *accumulates* leaf-level
//    corrections that merging would compress away, so after enough folds
//    the policy forces a rebuild to restore compression quality.
//
// Both paths honor cooperative cancellation: a cancelled Compact returns
// Status::Aborted and the caller keeps serving base + overlay unchanged
// (a half-folded summary represents neither the old nor the new graph,
// so nothing partial ever escapes).
//
// Thread-safety: one Compact() at a time per Compactor (it is stateful
// across calls — the fold budget); ShouldCompact is const and safe
// concurrently with nothing else running.
#ifndef SLUGGER_STREAM_COMPACTOR_HPP_
#define SLUGGER_STREAM_COMPACTOR_HPP_

#include <cstdint>

#include "api/compressed_graph.hpp"
#include "api/engine.hpp"
#include "stream/edge_overlay.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace slugger::stream {

/// The overlay cost model: when to compact, and how.
struct CompactionPolicy {
  /// Never compact below this many corrections (tiny overlays cost less
  /// than any compaction would).
  uint64_t min_corrections = 1024;

  /// Compact once corrections exceed this fraction of the base summary's
  /// cost (|P+| + |P-| + |H|) — the point where the overlay's storage
  /// and query overhead rivals what the summary saves.
  double max_overlay_ratio = 0.05;

  /// Fold when the dirty-node fraction is at most this; a larger dirty
  /// set means the "localized" work touches much of the hierarchy anyway
  /// and a rebuild both costs the same order and compresses better.
  double max_fold_dirty_fraction = 0.02;

  /// Force a rebuild once this many corrections have been folded since
  /// the last one: folded leaf edges are stored verbatim (never merged),
  /// so compression quality decays with every fold.
  uint64_t rebuild_after_folded = 1u << 18;
};

enum class CompactionKind : uint8_t { kFold = 0, kRebuild = 1 };

/// What one Compact() did, for observability and benches.
struct CompactionStats {
  CompactionKind kind = CompactionKind::kFold;
  bool fold_fell_back = false;  ///< fold was tried but infeasible
  uint64_t corrections = 0;     ///< overlay size that was folded in
  uint64_t old_cost = 0;        ///< base summary cost before
  uint64_t new_cost = 0;        ///< summary cost after
  double seconds = 0.0;
};

class Compactor {
 public:
  /// `rebuild_options` configure the Engine used by rebuild compactions
  /// (iterations, threads, engine flavor); the Engine and its pool
  /// persist across compactions.
  explicit Compactor(CompactionPolicy policy,
                     EngineOptions rebuild_options = {});

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  const CompactionPolicy& policy() const { return policy_; }

  /// True when the overlay has outgrown the policy thresholds against
  /// this base.
  bool ShouldCompact(const CompressedGraph& base,
                     const EdgeOverlay& overlay) const;

  /// Produces a CompressedGraph of base + overlay (fold or rebuild per
  /// policy; an infeasible fold transparently rebuilds). On cancellation
  /// returns Status::Aborted with the base untouched. An empty overlay
  /// returns a copy of the base. `stats` (optional) reports what ran.
  StatusOr<CompressedGraph> Compact(const CompressedGraph& base,
                                    const EdgeOverlay& overlay,
                                    const CancelToken* cancel = nullptr,
                                    CompactionStats* stats = nullptr);

 private:
  /// Localized fold; NotFound signals "infeasible, rebuild instead"
  /// (never escapes Compact), Aborted signals cancellation.
  StatusOr<CompressedGraph> TryFold(const CompressedGraph& base,
                                    const EdgeOverlay& overlay,
                                    const CancelToken* cancel) const;

  StatusOr<CompressedGraph> Rebuild(const CompressedGraph& base,
                                    const EdgeOverlay& overlay,
                                    const CancelToken* cancel);

  CompactionPolicy policy_;
  Engine engine_;
  uint64_t folded_since_rebuild_ = 0;
};

}  // namespace slugger::stream

#endif  // SLUGGER_STREAM_COMPACTOR_HPP_
