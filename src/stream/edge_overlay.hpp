// stream::EdgeOverlay — the signed correction set of the dynamic-update
// subsystem (ISSUE 5).
//
// A summarized graph is immutable, but a served graph mutates. The
// overlay layers a set of raw-edge corrections over one base summary:
// edges ADDED to the represented graph (absent in the base) and edges
// REMOVED from it (present in the base). The mutated graph a
// slugger::DynamicGraph serves is, by definition,
//
//     decode(base) ∪ {added} \ {removed}
//
// and the overlay maintains exactly one invariant that makes queries and
// compaction cheap: a +1 correction's edge is NOT in the base graph and
// a -1 correction's edge IS. Every Apply() preserves it (re-inserting a
// removed base edge erases the correction instead of stacking a second
// one), so the net degree delta of a node is a plain sum of signs and a
// correction list plugs straight into the summary query walk as
// NeighborOverride spans.
//
// Thread-safety: const members are safe from any number of threads.
// Apply() requires external exclusion; DynamicGraph never mutates a
// shared overlay — it copies, applies, and publishes the copy
// (copy-on-write), so readers hold immutable overlays only.
#ifndef SLUGGER_STREAM_EDGE_OVERLAY_HPP_
#define SLUGGER_STREAM_EDGE_OVERLAY_HPP_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "summary/neighbor_query.hpp"
#include "util/types.hpp"

namespace slugger::stream {

/// The per-pair correction vocabulary shared with the summary query walk.
using summary::NeighborOverride;

enum class EditKind : uint8_t {
  kInsert = 0,  ///< ensure the edge exists in the represented graph
  kDelete = 1,  ///< ensure the edge does not exist
};

/// One raw-edge mutation. Endpoints are subnode ids of the base graph
/// (the node universe is fixed; edits cannot grow it) and u != v — both
/// are validated at the DynamicGraph boundary, not here.
struct EdgeEdit {
  NodeId u;
  NodeId v;
  EditKind kind;
};

class EdgeOverlay {
 public:
  EdgeOverlay() = default;

  /// Applies one edit and returns true iff it changed the represented
  /// graph (an insert of a present edge / delete of an absent one is a
  /// redundant no-op). `base_has_edge` is invoked at most once, and only
  /// when the pair carries no correction yet, to learn whether {u, v} is
  /// an edge of the BASE graph — the caller answers it with a summary
  /// query. The overlay trusts the answer for its invariant.
  template <typename BaseHasEdgeFn>
  bool Apply(const EdgeEdit& edit, BaseHasEdgeFn&& base_has_edge) {
    const EdgeSign current = CorrectionSign(edit.u, edit.v);
    if (edit.kind == EditKind::kInsert) {
      if (current > 0) return false;  // already added
      if (current < 0) {              // re-insert of a removed base edge
        EraseCorrection(edit.u, edit.v);
        --removed_;
        return true;
      }
      if (base_has_edge()) return false;  // already present in the base
      SetCorrection(edit.u, edit.v, +1);
      ++added_;
      return true;
    }
    if (current < 0) return false;  // already removed
    if (current > 0) {              // delete of a previously added edge
      EraseCorrection(edit.u, edit.v);
      --added_;
      return true;
    }
    if (!base_has_edge()) return false;  // absent in the base too
    SetCorrection(edit.u, edit.v, -1);
    ++removed_;
    return true;
  }

  /// The corrections incident to v, sorted by neighbor id — ready to be
  /// merged into a query as summary::QueryNeighbors overrides. Empty for
  /// clean nodes. The span is valid until the next mutation.
  std::span<const NeighborOverride> DeltasOf(NodeId v) const {
    auto it = deltas_.find(v);
    if (it == deltas_.end()) return {};
    return {it->second.data(), it->second.size()};
  }

  /// Exact degree change of v in the mutated graph vs. the base: the sum
  /// of correction signs (the invariant makes each sign worth exactly
  /// one edge of difference).
  int64_t DegreeDelta(NodeId v) const {
    int64_t delta = 0;
    for (const NeighborOverride& o : DeltasOf(v)) delta += o.sign;
    return delta;
  }

  /// Sign of the correction on pair {u, v}: +1 added, -1 removed, 0 none.
  EdgeSign CorrectionSign(NodeId u, NodeId v) const;

  /// Invokes fn(u, v, sign) once per correction, with u < v.
  template <typename Fn>
  void ForEachCorrection(Fn&& fn) const {
    for (const auto& [node, list] : deltas_) {
      for (const NeighborOverride& o : list) {
        if (node < o.neighbor) fn(node, o.neighbor, o.sign);
      }
    }
  }

  uint64_t added_count() const { return added_; }
  uint64_t removed_count() const { return removed_; }

  /// Total corrections — the overlay's contribution to the cost model
  /// (each correction is one extra stored "edge" on top of the summary).
  uint64_t correction_count() const { return added_ + removed_; }
  bool empty() const { return correction_count() == 0; }

  /// Number of nodes with at least one incident correction — the dirty
  /// set whose size decides localized folding vs. a global rebuild.
  size_t dirty_node_count() const { return deltas_.size(); }

  /// The dirty nodes, in unspecified order.
  std::vector<NodeId> DirtyNodes() const;

 private:
  void SetCorrection(NodeId u, NodeId v, EdgeSign sign);
  void EraseCorrection(NodeId u, NodeId v);
  void SetDirected(NodeId from, NodeId to, EdgeSign sign);
  void EraseDirected(NodeId from, NodeId to);

  /// Per-node sorted correction lists; every correction appears under
  /// both endpoints. Empty lists are erased so dirty_node_count() stays
  /// the size of the true dirty set.
  std::unordered_map<NodeId, std::vector<NeighborOverride>> deltas_;
  uint64_t added_ = 0;
  uint64_t removed_ = 0;
};

/// The mutated graph the overlay represents over `base`: applies every
/// correction to the decoded edge list. Used by rebuild compaction and
/// by tests; linear in |base| + |overlay|.
graph::Graph ApplyOverlay(const graph::Graph& base, const EdgeOverlay& overlay);

}  // namespace slugger::stream

#endif  // SLUGGER_STREAM_EDGE_OVERLAY_HPP_
