#include "stream/edge_overlay.hpp"

#include <algorithm>
#include <unordered_set>

namespace slugger::stream {

namespace {

/// Sorted-insert position of `neighbor` in a per-node correction list.
std::vector<NeighborOverride>::iterator LowerBound(
    std::vector<NeighborOverride>& list, NodeId neighbor) {
  return std::lower_bound(list.begin(), list.end(), neighbor,
                          [](const NeighborOverride& o, NodeId key) {
                            return o.neighbor < key;
                          });
}

uint64_t PairKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

EdgeSign EdgeOverlay::CorrectionSign(NodeId u, NodeId v) const {
  return summary::FindOverrideSign(DeltasOf(u), v);
}

void EdgeOverlay::SetDirected(NodeId from, NodeId to, EdgeSign sign) {
  std::vector<NeighborOverride>& list = deltas_[from];
  auto pos = LowerBound(list, to);
  if (pos != list.end() && pos->neighbor == to) {
    pos->sign = sign;
    return;
  }
  list.insert(pos, NeighborOverride{to, sign});
}

void EdgeOverlay::EraseDirected(NodeId from, NodeId to) {
  auto it = deltas_.find(from);
  if (it == deltas_.end()) return;
  std::vector<NeighborOverride>& list = it->second;
  auto pos = LowerBound(list, to);
  if (pos != list.end() && pos->neighbor == to) list.erase(pos);
  if (list.empty()) deltas_.erase(it);
}

void EdgeOverlay::SetCorrection(NodeId u, NodeId v, EdgeSign sign) {
  SetDirected(u, v, sign);
  SetDirected(v, u, sign);
}

void EdgeOverlay::EraseCorrection(NodeId u, NodeId v) {
  EraseDirected(u, v);
  EraseDirected(v, u);
}

std::vector<NodeId> EdgeOverlay::DirtyNodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(deltas_.size());
  for (const auto& [node, list] : deltas_) nodes.push_back(node);
  return nodes;
}

graph::Graph ApplyOverlay(const graph::Graph& base,
                          const EdgeOverlay& overlay) {
  std::unordered_set<uint64_t> removed;
  removed.reserve(overlay.removed_count() * 2);
  std::vector<Edge> edges;
  edges.reserve(base.num_edges() + overlay.added_count());
  overlay.ForEachCorrection([&](NodeId u, NodeId v, EdgeSign sign) {
    if (sign > 0) {
      edges.push_back(MakeEdge(u, v));
    } else {
      removed.insert(PairKey(u, v));
    }
  });
  for (const Edge& e : base.Edges()) {
    if (removed.empty() || removed.count(PairKey(e.first, e.second)) == 0) {
      edges.push_back(e);
    }
  }
  return graph::Graph::FromEdges(base.num_nodes(), edges);
}

}  // namespace slugger::stream
