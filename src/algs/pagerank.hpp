// PageRank by power iteration over any neighbor source (paper Alg. 6).
#ifndef SLUGGER_ALGS_PAGERANK_HPP_
#define SLUGGER_ALGS_PAGERANK_HPP_

#include <vector>

#include "algs/neighbor_source.hpp"

namespace slugger::algs {

/// Runs `iterations` rounds of the paper's undirected PageRank with
/// damping factor d; isolated-node mass is redistributed uniformly.
template <typename Source>
std::vector<double> PageRank(Source& src, double d, uint32_t iterations) {
  const NodeId n = src.num_nodes();
  std::vector<double> rank(n, n ? 1.0 / n : 0.0);
  std::vector<double> next(n, 0.0);
  for (uint32_t t = 0; t < iterations; ++t) {
    // Retained mass is tallied in the push loop (a node pushes all of its
    // rank, so summing rank[u] over non-isolated u equals summing next),
    // and the damping pass re-zeros next in place for the next round —
    // two passes over the vectors per iteration instead of four.
    double mass = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      auto nbrs = src.Neighbors(u);
      if (nbrs.empty()) continue;
      const double share = rank[u] / static_cast<double>(nbrs.size());
      mass += rank[u];
      for (NodeId w : nbrs) next[w] += share;
    }
    const double teleport = (1.0 - d * mass) / static_cast<double>(n);
    for (NodeId v = 0; v < n; ++v) {
      rank[v] = d * next[v] + teleport;
      next[v] = 0.0;
    }
  }
  return rank;
}

std::vector<double> PageRankOnGraph(const graph::Graph& g, double d,
                                    uint32_t iterations);
std::vector<double> PageRankOnSummary(const summary::SummaryGraph& s, double d,
                                      uint32_t iterations);

/// PageRank through the batch-aware adapter: one amortized
/// QueryNeighborsBatch sweep materializes the adjacency, then the T
/// power iterations run on plain array reads. Identical output to
/// PageRankOnSummary (both serve the represented graph exactly).
std::vector<double> PageRankOnSummaryBatched(const summary::SummaryGraph& s,
                                             double d, uint32_t iterations);

}  // namespace slugger::algs

#endif  // SLUGGER_ALGS_PAGERANK_HPP_
