// Global triangle counting over any neighbor source.
#ifndef SLUGGER_ALGS_TRIANGLES_HPP_
#define SLUGGER_ALGS_TRIANGLES_HPP_

#include <algorithm>
#include <vector>

#include "algs/neighbor_source.hpp"

namespace slugger::algs {

/// Counts triangles by sorted-adjacency intersection. Neighbor lists are
/// materialized once per node (for summaries this is one partial
/// decompression per node, §VIII-B).
template <typename Source>
uint64_t CountTriangles(Source& src) {
  const NodeId n = src.num_nodes();
  std::vector<std::vector<NodeId>> up(n);  // neighbors v > u only
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : src.Neighbors(u)) {
      if (v > u) up[u].push_back(v);
    }
    std::sort(up[u].begin(), up[u].end());
  }
  uint64_t triangles = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : up[u]) {
      // |up(u) ∩ up(v)| closes triangles u < v < w.
      const auto& a = up[u];
      const auto& b = up[v];
      size_t i = 0, j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) {
          ++triangles;
          ++i;
          ++j;
        } else if (a[i] < b[j]) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  return triangles;
}

uint64_t TrianglesOnGraph(const graph::Graph& g);
uint64_t TrianglesOnSummary(const summary::SummaryGraph& s);

}  // namespace slugger::algs

#endif  // SLUGGER_ALGS_TRIANGLES_HPP_
