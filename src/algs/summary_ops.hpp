// Summary-domain analytics: linear-algebra passes evaluated directly on
// the compressed structure, at summary cost instead of edge cost.
//
// The core primitive is a summary SpMV, y = A * x, where A is the exact
// adjacency matrix of the represented graph. Every superedge (A, B, s)
// contributes the signed rank-1 block s * (x_A x_B^T + x_B x_A^T), and a
// self-loop (A, A, s) the block s * (x_A x_A^T - diag(x_A)), so signed
// coverage composes exactly like the Algorithm-4 walk: the unit-coverage
// invariant (net signed coverage of every pair equals the 0/1 adjacency
// indicator) makes the sum of blocks EQUAL the adjacency matrix, not an
// approximation of it.
//
// The blocks never materialize. In the leaf preorder of the hierarchy
// forest the leaves of any supernode occupy one contiguous interval
// (HierarchyForest::LeafLayout), so per multiply:
//   1. permute x into preorder and take prefix sums — sum(x over any
//      supernode) becomes one subtraction;
//   2. each superedge turns into O(1) updates of a difference array
//      (plus a diagonal-coefficient difference array for self-loops);
//   3. one prefix scan of the difference arrays scatters y.
// Total cost per multiply: O(n + |P| + |N|), independent of |E|.
//
// EdgeOverlay corrections enter as extra signed rank-1 terms on leaf
// pairs (O(1) each), so analytics run on the LIVE mutated graph of a
// DynamicGraph without compaction.
//
// Thread-safety: a SummaryOps is immutable after construction; concurrent
// callers need one Scratch each (the QueryScratch pattern). Passing a
// ThreadPool parallelizes the per-superedge loop with per-worker
// difference arrays merged by position range.
#ifndef SLUGGER_ALGS_SUMMARY_OPS_HPP_
#define SLUGGER_ALGS_SUMMARY_OPS_HPP_

#include <cstdint>
#include <span>
#include <vector>

#include "algs/bfs.hpp"
#include "summary/summary_graph.hpp"
#include "util/types.hpp"

namespace slugger {
class ThreadPool;
}

namespace slugger::algs {

/// One raw-edge correction layered over the summary: sign +1 adds edge
/// {u, v} to the represented graph, -1 removes it. Matches the
/// stream::EdgeOverlay invariant (+1 edges are absent from the base, -1
/// edges present), which is what keeps the corrected adjacency matrix
/// exactly 0/1. Endpoints must be leaves with u != v.
struct EdgeCorrection {
  NodeId u;
  NodeId v;
  EdgeSign sign;
};

class SummaryOps {
 public:
  /// Reusable per-caller buffers; allocation-free after warmup. One per
  /// concurrent caller, like summary::QueryScratch.
  struct Scratch {
    std::vector<double> permuted_d, prefix_d, diff_d, dcoef_d, worker_d;
    std::vector<int64_t> permuted_i, prefix_i, diff_i, dcoef_i, worker_i;
  };

  /// Snapshots the superedges of `s` into interval form. The summary must
  /// outlive this object and stay immutable while it is used.
  explicit SummaryOps(const summary::SummaryGraph& s);

  NodeId num_nodes() const { return n_; }
  size_t superedge_count() const { return edges_.size(); }

  /// y = A * x over the represented graph (plus `corrections`), exactly.
  /// x and y must both have num_nodes() entries and must not alias. With
  /// a pool of more than one worker the per-superedge loop is sharded
  /// (per-worker difference arrays, merged by position range); the result
  /// is deterministic for a fixed pool size. Must not be called from
  /// inside another job running on the same pool.
  void Multiply(std::span<const double> x, std::span<double> y,
                Scratch* scratch, ThreadPool* pool = nullptr,
                std::span<const EdgeCorrection> corrections = {}) const;
  void Multiply(std::span<const int64_t> x, std::span<int64_t> y,
                Scratch* scratch, ThreadPool* pool = nullptr,
                std::span<const EdgeCorrection> corrections = {}) const;

  /// Exact degree vector of the represented graph: one integer multiply
  /// with x = 1, so each supernode aggregate is just its leaf count — the
  /// QueryDegreeBatch-free bottom-up count.
  std::vector<int64_t> Degrees(
      Scratch* scratch, ThreadPool* pool = nullptr,
      std::span<const EdgeCorrection> corrections = {}) const;

  /// Hop distances from `start` (kUnreached marks other components) via
  /// level-synchronous frontier expansion: each level is one integer
  /// SpMV over the frontier indicator, skipping superedges with no
  /// frontier mass on either side and retiring superedges once both
  /// endpoint supernodes are fully visited (the visited-bitmask pruning:
  /// a fully covered supernode is never expanded again). `start` must be
  /// < num_nodes(); cost O(levels * (n + |P| + |N|)).
  std::vector<uint32_t> BfsDistances(
      NodeId start, Scratch* scratch,
      std::span<const EdgeCorrection> corrections = {}) const;

  /// Exact global triangle count at summary cost, from the trace
  /// identity 6T = tr(A^3) with A = sum of signed superedge blocks.
  /// Expanding the cube multilinearly by how many of a triangle's three
  /// sides are covered by "flat" terms (leaf-leaf superedges and overlay
  /// corrections, merged to net weights) versus "structural" terms
  /// (superedges with a non-leaf side, and self-loops) gives four parts:
  ///   flat^3        sorted-adjacency intersection over the flat graph;
  ///   flat^2 struct flat wedges closed by a structural block, found via
  ///                 per-leaf structural link lists + interval sums;
  ///   flat struct^2 per flat edge, link-pair interval intersections;
  ///   struct^3      link-graph triple enumeration where each trace is
  ///                 a sum of interval-clamp products (inclusion-
  ///                 exclusion over the self-loop diagonal terms).
  /// All block intersections are interval clamps because the interval
  /// family of a forest preorder is laminar. A pool parallelizes the
  /// enumeration loops with per-worker accumulators.
  uint64_t CountTriangles(
      ThreadPool* pool = nullptr,
      std::span<const EdgeCorrection> corrections = {}) const;

 private:
  /// One superedge in interval form; [alo, ahi) x [blo, bhi) in leaf
  /// preorder positions. self marks a == b (block minus its diagonal).
  struct Superedge {
    uint32_t alo, ahi, blo, bhi;
    int32_t sign;
    uint32_t self;
    SupernodeId a, b;  ///< original supernode ids (triangle link lists)
  };

  template <typename T>
  void MultiplyImpl(std::span<const T> x, std::span<T> y, Scratch* scratch,
                    ThreadPool* pool,
                    std::span<const EdgeCorrection> corrections) const;

  NodeId n_ = 0;
  const summary::SummaryGraph* summary_;
  summary::HierarchyForest::LeafLayout layout_;
  std::vector<Superedge> edges_;
};

/// PageRank by power iteration evaluated on the summary: each round is
/// one summary SpMV, O(|P| + |N| + n) instead of O(|E|). Numerically the
/// same recurrence as algs::PageRank (same damping, teleport and
/// isolated-node handling), so results agree with the edge-cost kernels
/// to summation-order rounding (~1e-12 per round).
std::vector<double> PageRankOnHierarchy(
    const summary::SummaryGraph& s, double d, uint32_t iterations,
    ThreadPool* pool = nullptr,
    std::span<const EdgeCorrection> corrections = {});

/// BFS distances on the summary (start must be < num_leaves()).
std::vector<uint32_t> BfsOnHierarchy(
    const summary::SummaryGraph& s, NodeId start,
    std::span<const EdgeCorrection> corrections = {});

/// Exact triangle count on the summary.
uint64_t TrianglesOnHierarchy(
    const summary::SummaryGraph& s, ThreadPool* pool = nullptr,
    std::span<const EdgeCorrection> corrections = {});

}  // namespace slugger::algs

#endif  // SLUGGER_ALGS_SUMMARY_OPS_HPP_
