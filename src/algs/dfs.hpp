// Iterative depth-first search over any neighbor source (paper Alg. 5).
#ifndef SLUGGER_ALGS_DFS_HPP_
#define SLUGGER_ALGS_DFS_HPP_

#include <vector>

#include "algs/neighbor_source.hpp"

namespace slugger::algs {

/// Preorder visit sequence of the component containing `start`.
template <typename Source>
std::vector<NodeId> DfsPreorder(Source& src, NodeId start) {
  std::vector<uint8_t> visited(src.num_nodes(), 0);
  std::vector<NodeId> order;
  std::vector<NodeId> stack{start};
  visited[start] = 1;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    order.push_back(u);
    // Push in reverse so lower-numbered neighbors are visited first.
    auto nbrs = src.Neighbors(u);
    for (size_t i = nbrs.size(); i-- > 0;) {
      NodeId v = nbrs[i];
      if (!visited[v]) {
        visited[v] = 1;
        stack.push_back(v);
      }
    }
  }
  return order;
}

std::vector<NodeId> DfsOnGraph(const graph::Graph& g, NodeId start);
std::vector<NodeId> DfsOnSummary(const summary::SummaryGraph& s, NodeId start);

}  // namespace slugger::algs

#endif  // SLUGGER_ALGS_DFS_HPP_
