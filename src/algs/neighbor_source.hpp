// Neighbor-source concept: graph algorithms run unchanged on the raw CSR
// graph or on a hierarchical summary via partial decompression (paper
// §VIII-C). A Source provides num_nodes() and Neighbors(u).
#ifndef SLUGGER_ALGS_NEIGHBOR_SOURCE_HPP_
#define SLUGGER_ALGS_NEIGHBOR_SOURCE_HPP_

#include <span>

#include "graph/graph.hpp"
#include "summary/neighbor_query.hpp"
#include "summary/summary_graph.hpp"

namespace slugger::algs {

/// Adapter over an uncompressed graph.
class RawSource {
 public:
  explicit RawSource(const graph::Graph& g) : g_(&g) {}
  NodeId num_nodes() const { return g_->num_nodes(); }
  std::span<const NodeId> Neighbors(NodeId u) { return g_->Neighbors(u); }

 private:
  const graph::Graph* g_;
};

/// Adapter over a summary: neighbors are decompressed on the fly
/// (Algorithm 4), never materializing the whole graph.
class SummarySource {
 public:
  explicit SummarySource(const summary::SummaryGraph& s)
      : num_nodes_(s.num_leaves()), query_(s) {}
  NodeId num_nodes() const { return num_nodes_; }
  std::span<const NodeId> Neighbors(NodeId u) {
    const std::vector<NodeId>& v = query_.Neighbors(u);
    return {v.data(), v.size()};
  }

 private:
  NodeId num_nodes_;
  summary::NeighborQuery query_;
};

}  // namespace slugger::algs

#endif  // SLUGGER_ALGS_NEIGHBOR_SOURCE_HPP_
