// Neighbor-source concept: graph algorithms run unchanged on the raw CSR
// graph or on a hierarchical summary via partial decompression (paper
// §VIII-C). A Source provides num_nodes() and Neighbors(u).
#ifndef SLUGGER_ALGS_NEIGHBOR_SOURCE_HPP_
#define SLUGGER_ALGS_NEIGHBOR_SOURCE_HPP_

#include <algorithm>
#include <numeric>
#include <span>

#include "graph/graph.hpp"
#include "summary/neighbor_query.hpp"
#include "summary/summary_graph.hpp"

namespace slugger::algs {

/// Adapter over an uncompressed graph.
class RawSource {
 public:
  explicit RawSource(const graph::Graph& g) : g_(&g) {}
  NodeId num_nodes() const { return g_->num_nodes(); }
  std::span<const NodeId> Neighbors(NodeId u) { return g_->Neighbors(u); }

 private:
  const graph::Graph* g_;
};

/// Adapter over a summary: neighbors are decompressed on the fly
/// (Algorithm 4), never materializing the whole graph. Built on the
/// QueryScratch split: the summary stays shared and immutable, all
/// mutable query state lives in this instance — several threads may run
/// algorithms over one summary concurrently, one SummarySource each.
class SummarySource {
 public:
  explicit SummarySource(const summary::SummaryGraph& s) : s_(&s) {}
  NodeId num_nodes() const { return s_->num_leaves(); }
  std::span<const NodeId> Neighbors(NodeId u) {
    const std::vector<NodeId>& v = summary::QueryNeighbors(*s_, u, &scratch_);
    return {v.data(), v.size()};
  }

 private:
  const summary::SummaryGraph* s_;
  summary::QueryScratch scratch_;
};

/// Batch-aware adapter: materializes the whole adjacency up front
/// through QueryNeighborsBatch — the hierarchy-locality walk pays one
/// coverage application per shared ancestor chain instead of one full
/// Algorithm-4 pass per node — then serves Neighbors(u) as O(1) span
/// lookups. The batch sweep runs in node blocks (`block_size`) so peak
/// per-block scratch stays bounded on large summaries.
///
/// The right source for multi-pass analytics (PageRank's T sweeps, BFS
/// frontiers that revisit hubs): one amortized sweep, then every pass is
/// pure array reads. For a single pass over few nodes, SummarySource's
/// lazy decompression costs less. Thread-safe after construction (all
/// members are immutable; Neighbors is const).
class BatchedSummarySource {
 public:
  explicit BatchedSummarySource(const summary::SummaryGraph& s,
                                size_t block_size = size_t{1} << 16)
      : num_nodes_(s.num_leaves()) {
    adjacency_.offsets.reserve(num_nodes_ + 1);
    adjacency_.offsets.push_back(0);
    summary::BatchScratch scratch;
    summary::BatchResult block;
    std::vector<NodeId> ids;
    for (NodeId begin = 0; begin < num_nodes_;) {
      const NodeId end = static_cast<NodeId>(
          std::min<size_t>(num_nodes_, begin + block_size));
      ids.resize(end - begin);
      std::iota(ids.begin(), ids.end(), begin);
      summary::QueryNeighborsBatch(s, ids, &block, &scratch);
      const uint64_t offset = adjacency_.neighbors.size();
      adjacency_.neighbors.insert(adjacency_.neighbors.end(),
                                  block.neighbors.begin(),
                                  block.neighbors.end());
      for (size_t i = 1; i < block.offsets.size(); ++i) {
        adjacency_.offsets.push_back(offset + block.offsets[i]);
      }
      begin = end;
    }
  }

  NodeId num_nodes() const { return num_nodes_; }
  std::span<const NodeId> Neighbors(NodeId u) const { return adjacency_[u]; }

 private:
  NodeId num_nodes_ = 0;
  summary::BatchResult adjacency_;  ///< full CSR, offsets over all nodes
};

}  // namespace slugger::algs

#endif  // SLUGGER_ALGS_NEIGHBOR_SOURCE_HPP_
