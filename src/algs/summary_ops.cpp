#include "algs/summary_ops.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <utility>

#include "util/thread_pool.hpp"

namespace slugger::algs {

namespace {

/// Below this many superedges the per-worker array zeroing and merge of
/// the parallel SpMV cost more than the edge loop itself.
constexpr size_t kMinParallelEdges = 2048;

/// Scratch buffer selection by scalar type (double for PageRank, int64
/// for frontier counts and degrees).
template <typename T>
struct Buffers;

template <>
struct Buffers<double> {
  static std::vector<double>& permuted(SummaryOps::Scratch& s) { return s.permuted_d; }
  static std::vector<double>& prefix(SummaryOps::Scratch& s) { return s.prefix_d; }
  static std::vector<double>& diff(SummaryOps::Scratch& s) { return s.diff_d; }
  static std::vector<double>& dcoef(SummaryOps::Scratch& s) { return s.dcoef_d; }
  static std::vector<double>& worker(SummaryOps::Scratch& s) { return s.worker_d; }
};

template <>
struct Buffers<int64_t> {
  static std::vector<int64_t>& permuted(SummaryOps::Scratch& s) { return s.permuted_i; }
  static std::vector<int64_t>& prefix(SummaryOps::Scratch& s) { return s.prefix_i; }
  static std::vector<int64_t>& diff(SummaryOps::Scratch& s) { return s.diff_i; }
  static std::vector<int64_t>& dcoef(SummaryOps::Scratch& s) { return s.dcoef_i; }
  static std::vector<int64_t>& worker(SummaryOps::Scratch& s) { return s.worker_i; }
};

/// Runs fn over [0, n) — chunked across the pool when one is available,
/// inline as worker 0 otherwise. Callers size per-worker accumulators by
/// WorkerCount().
void ForRange(ThreadPool* pool, uint64_t n, uint64_t grain,
              const std::function<void(uint64_t, uint64_t, unsigned)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1 || n <= grain) {
    fn(0, n, 0);
    return;
  }
  pool->ParallelFor(n, grain, fn);
}

unsigned WorkerCount(ThreadPool* pool) {
  return pool == nullptr ? 1u : pool->size();
}

}  // namespace

SummaryOps::SummaryOps(const summary::SummaryGraph& s)
    : n_(s.num_leaves()),
      summary_(&s),
      layout_(s.forest().ComputeLeafLayout()) {
  edges_.reserve(s.p_count() + s.n_count());
  s.ForEachEdge([&](SupernodeId a, SupernodeId b, EdgeSign sign) {
    Superedge e;
    e.alo = layout_.lo[a];
    e.ahi = layout_.hi[a];
    e.blo = layout_.lo[b];
    e.bhi = layout_.hi[b];
    e.sign = sign;
    e.self = (a == b) ? 1u : 0u;
    e.a = a;
    e.b = b;
    edges_.push_back(e);
  });
}

template <typename T>
void SummaryOps::MultiplyImpl(std::span<const T> x, std::span<T> y,
                              Scratch* scratch, ThreadPool* pool,
                              std::span<const EdgeCorrection> corrections) const {
  assert(x.size() == n_ && y.size() == n_);
  if (n_ == 0) return;
  std::vector<T>& permuted = Buffers<T>::permuted(*scratch);
  std::vector<T>& prefix = Buffers<T>::prefix(*scratch);
  std::vector<T>& diff = Buffers<T>::diff(*scratch);
  std::vector<T>& dcoef = Buffers<T>::dcoef(*scratch);
  const std::vector<NodeId>& leaf_at = layout_.leaf_at;

  permuted.resize(n_);
  for (uint32_t pos = 0; pos < n_; ++pos) permuted[pos] = x[leaf_at[pos]];
  prefix.resize(size_t{n_} + 1);
  prefix[0] = T{};
  for (uint32_t pos = 0; pos < n_; ++pos) {
    prefix[pos + 1] = prefix[pos] + permuted[pos];
  }

  // The per-superedge loop: each edge is O(1) — two interval sums off the
  // prefix array, four difference-array updates (self-loops additionally
  // push -sign onto the diagonal-coefficient array, which later excludes
  // each leaf's own x from its block sum).
  auto apply = [this, &prefix](size_t begin, size_t end, T* d, T* dc) {
    for (size_t e = begin; e < end; ++e) {
      const Superedge& se = edges_[e];
      const T s = static_cast<T>(se.sign);
      const T sum_a = s * (prefix[se.ahi] - prefix[se.alo]);
      if (se.self == 0) {
        const T sum_b = s * (prefix[se.bhi] - prefix[se.blo]);
        d[se.alo] += sum_b;
        d[se.ahi] -= sum_b;
        d[se.blo] += sum_a;
        d[se.bhi] -= sum_a;
      } else {
        d[se.alo] += sum_a;
        d[se.ahi] -= sum_a;
        dc[se.alo] -= s;
        dc[se.ahi] += s;
      }
    }
  };

  const size_t m = edges_.size();
  if (pool == nullptr || pool->size() <= 1 || m < kMinParallelEdges) {
    diff.assign(size_t{n_} + 1, T{});
    dcoef.assign(size_t{n_} + 1, T{});
    apply(0, m, diff.data(), dcoef.data());
  } else {
    // Shard the edge list into one contiguous chunk per worker, each with
    // its own pair of difference arrays (zeroed inside the task so the
    // O(workers * n) wipe is itself parallel), then merge by position.
    std::vector<T>& worker = Buffers<T>::worker(*scratch);
    const size_t num_chunks = pool->size();
    const size_t stride = 2 * (size_t{n_} + 1);
    worker.resize(num_chunks * stride);
    pool->Run(num_chunks, [&](uint64_t chunk, unsigned) {
      T* wdiff = worker.data() + chunk * stride;
      std::fill(wdiff, wdiff + stride, T{});
      apply(m * chunk / num_chunks, m * (chunk + 1) / num_chunks, wdiff,
            wdiff + n_ + 1);
    });
    diff.resize(size_t{n_} + 1);
    dcoef.resize(size_t{n_} + 1);
    pool->ParallelFor(
        size_t{n_} + 1, 1 << 14, [&](uint64_t begin, uint64_t end, unsigned) {
          for (uint64_t pos = begin; pos < end; ++pos) {
            T d{};
            T dc{};
            for (size_t c = 0; c < num_chunks; ++c) {
              d += worker[c * stride + pos];
              dc += worker[c * stride + n_ + 1 + pos];
            }
            diff[pos] = d;
            dcoef[pos] = dc;
          }
        });
  }

  T acc{};
  T dacc{};
  for (uint32_t pos = 0; pos < n_; ++pos) {
    acc += diff[pos];
    dacc += dcoef[pos];
    y[leaf_at[pos]] = acc + dacc * permuted[pos];
  }
  // Overlay corrections: extra signed rank-1 terms on leaf pairs.
  for (const EdgeCorrection& c : corrections) {
    const T s = static_cast<T>(c.sign);
    y[c.u] += s * x[c.v];
    y[c.v] += s * x[c.u];
  }
}

void SummaryOps::Multiply(std::span<const double> x, std::span<double> y,
                          Scratch* scratch, ThreadPool* pool,
                          std::span<const EdgeCorrection> corrections) const {
  MultiplyImpl<double>(x, y, scratch, pool, corrections);
}

void SummaryOps::Multiply(std::span<const int64_t> x, std::span<int64_t> y,
                          Scratch* scratch, ThreadPool* pool,
                          std::span<const EdgeCorrection> corrections) const {
  MultiplyImpl<int64_t>(x, y, scratch, pool, corrections);
}

std::vector<int64_t> SummaryOps::Degrees(
    Scratch* scratch, ThreadPool* pool,
    std::span<const EdgeCorrection> corrections) const {
  std::vector<int64_t> ones(n_, 1);
  std::vector<int64_t> deg(n_);
  Multiply(std::span<const int64_t>(ones), std::span<int64_t>(deg), scratch,
           pool, corrections);
  return deg;
}

std::vector<uint32_t> SummaryOps::BfsDistances(
    NodeId start, Scratch* scratch,
    std::span<const EdgeCorrection> corrections) const {
  std::vector<uint32_t> dist(n_, kUnreached);
  if (n_ == 0) return dist;
  assert(start < n_);

  // Everything runs in leaf-preorder position space; only dist writes
  // translate back to node ids. xp is the 0/1 frontier indicator; under
  // the unit-coverage invariant y[pos] is then the exact count of
  // frontier neighbors, so y > 0 is the discovery test.
  std::vector<int64_t>& xp = scratch->permuted_i;
  std::vector<int64_t>& prefix = scratch->prefix_i;
  std::vector<int64_t>& diff = scratch->diff_i;
  std::vector<int64_t>& dcoef = scratch->dcoef_i;
  xp.assign(n_, 0);
  prefix.resize(size_t{n_} + 1);
  std::vector<int64_t> y(n_);
  std::vector<uint8_t> visited(n_, 0);
  std::vector<uint32_t> vis_prefix(size_t{n_} + 1);

  std::vector<Superedge> active(edges_);
  struct Corr {
    uint32_t pu, pv;
    int32_t sign;
  };
  std::vector<Corr> corr;
  corr.reserve(corrections.size());
  for (const EdgeCorrection& c : corrections) {
    corr.push_back({layout_.rank[c.u], layout_.rank[c.v], c.sign});
  }

  const uint32_t pstart = layout_.rank[start];
  visited[pstart] = 1;
  dist[start] = 0;
  xp[pstart] = 1;
  uint64_t frontier = 1;
  for (uint32_t level = 1; frontier > 0; ++level) {
    prefix[0] = 0;
    for (uint32_t pos = 0; pos < n_; ++pos) prefix[pos + 1] = prefix[pos] + xp[pos];
    diff.assign(size_t{n_} + 1, 0);
    dcoef.assign(size_t{n_} + 1, 0);
    for (const Superedge& se : active) {
      const int64_t raw_a = prefix[se.ahi] - prefix[se.alo];
      if (se.self == 0) {
        const int64_t raw_b = prefix[se.bhi] - prefix[se.blo];
        if (raw_a == 0 && raw_b == 0) continue;  // no frontier mass nearby
        const int64_t sum_a = se.sign * raw_a;
        const int64_t sum_b = se.sign * raw_b;
        diff[se.alo] += sum_b;
        diff[se.ahi] -= sum_b;
        diff[se.blo] += sum_a;
        diff[se.bhi] -= sum_a;
      } else {
        if (raw_a == 0) continue;
        const int64_t sum_a = se.sign * raw_a;
        diff[se.alo] += sum_a;
        diff[se.ahi] -= sum_a;
        dcoef[se.alo] -= se.sign;
        dcoef[se.ahi] += se.sign;
      }
    }
    int64_t acc = 0;
    int64_t dacc = 0;
    for (uint32_t pos = 0; pos < n_; ++pos) {
      acc += diff[pos];
      dacc += dcoef[pos];
      y[pos] = acc + dacc * xp[pos];
    }
    for (const Corr& c : corr) {
      y[c.pu] += c.sign * xp[c.pv];
      y[c.pv] += c.sign * xp[c.pu];
    }

    frontier = 0;
    for (uint32_t pos = 0; pos < n_; ++pos) {
      if (visited[pos] == 0 && y[pos] > 0) {
        visited[pos] = 1;
        dist[layout_.leaf_at[pos]] = level;
        xp[pos] = 1;
        ++frontier;
      } else {
        xp[pos] = 0;
      }
    }
    if (frontier == 0) break;

    // Visited-bitmask pruning: a superedge whose BOTH supernodes are
    // fully visited can never discover a leaf again — its block updates
    // land only on visited positions — so it is retired. Retired edges
    // leave unvisited positions' coverage untouched, keeping y exact
    // where the discovery test reads it.
    vis_prefix[0] = 0;
    for (uint32_t pos = 0; pos < n_; ++pos) {
      vis_prefix[pos + 1] = vis_prefix[pos] + visited[pos];
    }
    auto fully_visited = [&vis_prefix](uint32_t lo, uint32_t hi) {
      return vis_prefix[hi] - vis_prefix[lo] == hi - lo;
    };
    size_t kept = 0;
    for (const Superedge& se : active) {
      const bool dead = fully_visited(se.alo, se.ahi) &&
                        (se.self != 0 || fully_visited(se.blo, se.bhi));
      if (!dead) active[kept++] = se;
    }
    active.resize(kept);
    size_t ckept = 0;
    for (const Corr& c : corr) {
      if (visited[c.pu] == 0 || visited[c.pv] == 0) corr[ckept++] = c;
    }
    corr.resize(ckept);
  }
  return dist;
}

uint64_t SummaryOps::CountTriangles(
    ThreadPool* pool, std::span<const EdgeCorrection> corrections) const {
  if (n_ < 3) return 0;
  const std::vector<uint32_t>& rank = layout_.rank;
  const unsigned workers = WorkerCount(pool);

  // ---- split the combined edge set -----------------------------------
  // Flat: both endpoints are leaves (plus every overlay correction), net
  // weight per pair. Structural: a non-leaf side or a self-loop.
  struct Flat {
    uint32_t pu, pv;  ///< positions, pu < pv
    int64_t w;
  };
  struct Structural {
    uint32_t alo, ahi, blo, bhi;
    int32_t sign;
    uint32_t self;
  };
  std::vector<Flat> flat_raw;
  std::vector<Structural> structural;
  std::vector<uint32_t> structural_a, structural_b;  // supernode ids
  for (const Superedge& se : edges_) {
    if (se.self == 0 && se.ahi - se.alo == 1 && se.bhi - se.blo == 1) {
      uint32_t pu = se.alo;
      uint32_t pv = se.blo;
      if (pu > pv) std::swap(pu, pv);
      flat_raw.push_back({pu, pv, se.sign});
    } else {
      structural.push_back({se.alo, se.ahi, se.blo, se.bhi, se.sign, se.self});
      structural_a.push_back(se.a);
      structural_b.push_back(se.b);
    }
  }
  for (const EdgeCorrection& c : corrections) {
    uint32_t pu = rank[c.u];
    uint32_t pv = rank[c.v];
    if (pu > pv) std::swap(pu, pv);
    flat_raw.push_back({pu, pv, c.sign});
  }
  // A base leaf-leaf superedge and a correction can hit the same pair;
  // coverage is additive, so parallel entries merge to one net weight.
  std::sort(flat_raw.begin(), flat_raw.end(), [](const Flat& a, const Flat& b) {
    return a.pu != b.pu ? a.pu < b.pu : a.pv < b.pv;
  });
  std::vector<Flat> flat;
  flat.reserve(flat_raw.size());
  for (size_t i = 0; i < flat_raw.size();) {
    size_t j = i;
    int64_t w = 0;
    while (j < flat_raw.size() && flat_raw[j].pu == flat_raw[i].pu &&
           flat_raw[j].pv == flat_raw[i].pv) {
      w += flat_raw[j].w;
      ++j;
    }
    if (w != 0) flat.push_back({flat_raw[i].pu, flat_raw[i].pv, w});
    i = j;
  }

  // ---- flat adjacency CSR in position space --------------------------
  // Sorted neighbor positions with a global cumulative-weight array, so
  // "signed flat mass from p into interval [lo, hi)" is two binary
  // searches and one subtraction.
  std::vector<uint64_t> off(size_t{n_} + 1, 0);
  for (const Flat& f : flat) {
    ++off[f.pu + 1];
    ++off[f.pv + 1];
  }
  for (uint32_t pos = 0; pos < n_; ++pos) off[pos + 1] += off[pos];
  std::vector<uint32_t> nbr_pos(flat.size() * 2);
  std::vector<int64_t> nbr_w(flat.size() * 2);
  {
    std::vector<uint64_t> cursor(off.begin(), off.end() - 1);
    for (const Flat& f : flat) {
      nbr_pos[cursor[f.pu]] = f.pv;
      nbr_w[cursor[f.pu]++] = f.w;
      nbr_pos[cursor[f.pv]] = f.pu;
      nbr_w[cursor[f.pv]++] = f.w;
    }
  }
  ForRange(pool, n_, 1024, [&](uint64_t begin, uint64_t end, unsigned) {
    std::vector<std::pair<uint32_t, int64_t>> tmp;
    for (uint64_t p = begin; p < end; ++p) {
      tmp.clear();
      for (uint64_t k = off[p]; k < off[p + 1]; ++k) {
        tmp.emplace_back(nbr_pos[k], nbr_w[k]);
      }
      std::sort(tmp.begin(), tmp.end());
      for (size_t k = 0; k < tmp.size(); ++k) {
        nbr_pos[off[p] + k] = tmp[k].first;
        nbr_w[off[p] + k] = tmp[k].second;
      }
    }
  });
  std::vector<int64_t> wcum(nbr_w.size() + 1, 0);
  for (size_t k = 0; k < nbr_w.size(); ++k) wcum[k + 1] = wcum[k] + nbr_w[k];
  // Signed flat mass from p into positions [lo, hi). Always stays inside
  // p's slice, so the global cumulative array subtracts cleanly.
  auto flat_interval_sum = [&](uint32_t p, uint32_t lo, uint32_t hi) -> int64_t {
    const uint32_t* base = nbr_pos.data();
    const uint32_t* b = std::lower_bound(base + off[p], base + off[p + 1], lo);
    const uint32_t* e = std::lower_bound(b, base + off[p + 1], hi);
    return wcum[e - base] - wcum[b - base];
  };

  // ---- per-leaf structural link lists --------------------------------
  // links[pos] = structural edges covering the leaf at that position, as
  // (partner interval, sign, self). Discovered once per leaf by walking
  // its ancestor chain over per-supernode incidence lists.
  struct Link {
    uint32_t ylo, yhi;
    int32_t sign;
    uint32_t self;
  };
  const summary::HierarchyForest& forest = summary_->forest();
  std::vector<std::vector<uint32_t>> inc(layout_.lo.size());
  for (size_t e = 0; e < structural.size(); ++e) {
    inc[structural_a[e]].push_back(static_cast<uint32_t>(e));
    if (structural_b[e] != structural_a[e]) {
      inc[structural_b[e]].push_back(static_cast<uint32_t>(e));
    }
  }
  std::vector<uint64_t> link_off(size_t{n_} + 1, 0);
  for (uint32_t pos = 0; pos < n_; ++pos) {
    uint64_t count = 0;
    for (SupernodeId x = layout_.leaf_at[pos]; x != kInvalidId;
         x = forest.Parent(x)) {
      count += inc[x].size();
    }
    link_off[pos + 1] = count;
  }
  for (uint32_t pos = 0; pos < n_; ++pos) link_off[pos + 1] += link_off[pos];
  std::vector<Link> links(link_off[n_]);
  ForRange(pool, n_, 1024, [&](uint64_t begin, uint64_t end, unsigned) {
    for (uint64_t pos = begin; pos < end; ++pos) {
      uint64_t k = link_off[pos];
      for (SupernodeId x = layout_.leaf_at[pos]; x != kInvalidId;
           x = forest.Parent(x)) {
        for (uint32_t e : inc[x]) {
          const Structural& st = structural[e];
          Link link;
          link.sign = st.sign;
          link.self = st.self;
          if (st.self != 0 || x == structural_a[e]) {
            // Self-loop partner is the supernode itself (minus the leaf);
            // otherwise the leaf sits under side A, partner is B.
            link.ylo = st.self != 0 ? st.alo : st.blo;
            link.yhi = st.self != 0 ? st.ahi : st.bhi;
          } else {
            link.ylo = st.alo;
            link.yhi = st.ahi;
          }
          links[k++] = link;
        }
      }
    }
  });

  // ---- T0: all three sides flat --------------------------------------
  // Signed triangle count over the flat graph, each triple once
  // (smallest-two-positions edge owns it), weights multiplied.
  std::vector<int64_t> acc0(workers, 0);
  ForRange(pool, flat.size(), 256, [&](uint64_t begin, uint64_t end, unsigned w) {
    int64_t local = 0;
    for (uint64_t fi = begin; fi < end; ++fi) {
      const Flat& f = flat[fi];
      const uint32_t* base = nbr_pos.data();
      const uint32_t* i = std::upper_bound(base + off[f.pu], base + off[f.pu + 1], f.pv);
      const uint32_t* iend = base + off[f.pu + 1];
      const uint32_t* j = std::upper_bound(base + off[f.pv], base + off[f.pv + 1], f.pv);
      const uint32_t* jend = base + off[f.pv + 1];
      int64_t sum = 0;
      while (i < iend && j < jend) {
        if (*i == *j) {
          sum += nbr_w[i - base] * nbr_w[j - base];
          ++i;
          ++j;
        } else if (*i < *j) {
          ++i;
        } else {
          ++j;
        }
      }
      local += f.w * sum;
    }
    acc0[w] += local;
  });

  // ---- T1: two flat sides, one structural ----------------------------
  // For each directed flat edge (center -> anchor) and each structural
  // link of the anchor, the third vertex ranges over the center's flat
  // neighbors inside the partner interval (minus the anchor itself for
  // self-loops). Every (wedge, cover) pair is found from both anchors,
  // so the sum is exactly twice T1.
  std::vector<int64_t> acc1(workers, 0);
  ForRange(pool, flat.size(), 256, [&](uint64_t begin, uint64_t end, unsigned w) {
    int64_t local = 0;
    auto one_direction = [&](uint32_t center, uint32_t anchor, int64_t fw) {
      for (uint64_t k = link_off[anchor]; k < link_off[anchor + 1]; ++k) {
        const Link& l = links[k];
        int64_t mass = flat_interval_sum(center, l.ylo, l.yhi);
        if (l.self != 0) mass -= fw;  // exclude the anchor itself
        local += l.sign * fw * mass;
      }
    };
    for (uint64_t fi = begin; fi < end; ++fi) {
      const Flat& f = flat[fi];
      one_direction(f.pu, f.pv, f.w);
      one_direction(f.pv, f.pu, f.w);
    }
    acc1[w] += local;
  });

  // ---- T2: one flat side, two structural -----------------------------
  // For flat edge {u, v}, the apex w runs over the intersection of a
  // partner interval of v and one of u; self-loop links exclude their
  // own leaf from the partner set (w = u / w = v are excluded
  // automatically: a partner set never contains its own leaf).
  std::vector<int64_t> acc2(workers, 0);
  ForRange(pool, flat.size(), 256, [&](uint64_t begin, uint64_t end, unsigned w) {
    int64_t local = 0;
    for (uint64_t fi = begin; fi < end; ++fi) {
      const Flat& f = flat[fi];
      for (uint64_t k1 = link_off[f.pv]; k1 < link_off[f.pv + 1]; ++k1) {
        const Link& l1 = links[k1];
        for (uint64_t k2 = link_off[f.pu]; k2 < link_off[f.pu + 1]; ++k2) {
          const Link& l2 = links[k2];
          const uint32_t lo = std::max(l1.ylo, l2.ylo);
          const uint32_t hi = std::min(l1.yhi, l2.yhi);
          if (lo >= hi) continue;
          int64_t count = hi - lo;
          if (l1.self != 0 && f.pv >= lo && f.pv < hi) --count;
          if (l2.self != 0 && f.pu >= lo && f.pu < hi) --count;
          local += f.w * l1.sign * l2.sign * count;
        }
      }
    }
    acc2[w] += local;
  });

  // ---- T3: all three sides structural --------------------------------
  // 6 * T3 = tr(C^3) for C = sum of signed structural blocks (an integer
  // symmetric matrix with zero diagonal). A triple's trace is nonzero
  // only when the three edges pairwise overlap on some side, so the
  // enumeration walks the side-overlap link graph: multisets {i,i,i} x1,
  // {i,i,j} / {i,j,j} x3, {i,j,k} x6 (cyclic + reversal invariance of
  // the trace on symmetric factors).
  const size_t ms = structural.size();
  std::vector<std::vector<uint32_t>> ladj(ms);  // forward neighbors j > i
  ForRange(pool, ms, 16, [&](uint64_t begin, uint64_t end, unsigned) {
    auto overlap = [](uint32_t alo, uint32_t ahi, uint32_t blo, uint32_t bhi) {
      return std::max(alo, blo) < std::min(ahi, bhi);
    };
    for (uint64_t i = begin; i < end; ++i) {
      const Structural& x = structural[i];
      for (size_t j = i + 1; j < ms; ++j) {
        const Structural& y = structural[j];
        if (overlap(x.alo, x.ahi, y.alo, y.ahi) ||
            overlap(x.alo, x.ahi, y.blo, y.bhi) ||
            overlap(x.blo, x.bhi, y.alo, y.ahi) ||
            overlap(x.blo, x.bhi, y.blo, y.bhi)) {
          ladj[i].push_back(static_cast<uint32_t>(j));
        }
      }
    }
  });

  // A structural block expands into at most two primitive terms: outer
  // products chi_U chi_V^T, and for self-loops the diagonal correction
  // -diag(chi_A). Traces of term triples are products of interval-clamp
  // cardinalities (the interval family is laminar).
  struct Term {
    bool diag;
    uint32_t ulo, uhi, vlo, vhi;  // diag terms use [ulo, uhi) only
    int32_t w;
  };
  auto terms_of = [&structural](uint32_t e, Term out[2]) -> int {
    const Structural& st = structural[e];
    if (st.self == 0) {
      out[0] = {false, st.alo, st.ahi, st.blo, st.bhi, 1};
      out[1] = {false, st.blo, st.bhi, st.alo, st.ahi, 1};
    } else {
      out[0] = {false, st.alo, st.ahi, st.alo, st.ahi, 1};
      out[1] = {true, st.alo, st.ahi, 0, 0, -1};
    }
    return 2;
  };
  auto trace_of_terms = [](const Term* t0, const Term* t1, const Term* t2) -> int64_t {
    const Term* t[3] = {t0, t1, t2};
    const int diags = int(t[0]->diag) + int(t[1]->diag) + int(t[2]->diag);
    // The trace is cyclic-invariant; rotate diag terms to the tail so
    // only four patterns remain (OOO, OOD, ODD, DDD).
    while ((diags == 1 && !t[2]->diag) || (diags == 2 && t[0]->diag)) {
      const Term* tmp = t[0];
      t[0] = t[1];
      t[1] = t[2];
      t[2] = tmp;
    }
    const int64_t w = int64_t{t[0]->w} * t[1]->w * t[2]->w;
    auto clamp2 = [](uint32_t alo, uint32_t ahi, uint32_t blo, uint32_t bhi) -> int64_t {
      const uint32_t lo = std::max(alo, blo);
      const uint32_t hi = std::min(ahi, bhi);
      return lo < hi ? int64_t{hi} - lo : 0;
    };
    switch (diags) {
      case 0:
        // tr(O1 O2 O3) = |V1 ^ U2| |V2 ^ U3| |V3 ^ U1|
        return w * clamp2(t[0]->vlo, t[0]->vhi, t[1]->ulo, t[1]->uhi) *
               clamp2(t[1]->vlo, t[1]->vhi, t[2]->ulo, t[2]->uhi) *
               clamp2(t[2]->vlo, t[2]->vhi, t[0]->ulo, t[0]->uhi);
      case 1: {
        // tr(O1 O2 D) = |V1 ^ U2| |U1 ^ V2 ^ W|
        const uint32_t lo = std::max({t[0]->ulo, t[1]->vlo, t[2]->ulo});
        const uint32_t hi = std::min({t[0]->uhi, t[1]->vhi, t[2]->uhi});
        return w * clamp2(t[0]->vlo, t[0]->vhi, t[1]->ulo, t[1]->uhi) *
               (lo < hi ? int64_t{hi} - lo : 0);
      }
      case 2: {
        // tr(O D1 D2) = |U ^ V ^ W1 ^ W2|
        const uint32_t lo = std::max({t[0]->ulo, t[0]->vlo, t[1]->ulo, t[2]->ulo});
        const uint32_t hi = std::min({t[0]->uhi, t[0]->vhi, t[1]->uhi, t[2]->uhi});
        return w * (lo < hi ? int64_t{hi} - lo : 0);
      }
      default: {
        // tr(D1 D2 D3) = |W1 ^ W2 ^ W3|
        const uint32_t lo = std::max({t[0]->ulo, t[1]->ulo, t[2]->ulo});
        const uint32_t hi = std::min({t[0]->uhi, t[1]->uhi, t[2]->uhi});
        return w * (lo < hi ? int64_t{hi} - lo : 0);
      }
    }
  };
  auto trace_triple = [&](uint32_t e1, uint32_t e2, uint32_t e3) -> int64_t {
    Term a[2], b[2], c[2];
    const int na = terms_of(e1, a);
    const int nb = terms_of(e2, b);
    const int nc = terms_of(e3, c);
    int64_t total = 0;
    for (int i = 0; i < na; ++i) {
      for (int j = 0; j < nb; ++j) {
        for (int k = 0; k < nc; ++k) {
          total += trace_of_terms(&a[i], &b[j], &c[k]);
        }
      }
    }
    return total;
  };

  std::vector<int64_t> acc3(workers, 0);  // accumulates tr(C^3)
  ForRange(pool, ms, 8, [&](uint64_t begin, uint64_t end, unsigned w) {
    int64_t local = 0;
    for (uint64_t i = begin; i < end; ++i) {
      const int64_t si = structural[i].sign;
      local += si * si * si * trace_triple(i, i, i);
      const std::vector<uint32_t>& ni = ladj[i];
      for (size_t a = 0; a < ni.size(); ++a) {
        const uint32_t j = ni[a];
        const int64_t sj = structural[j].sign;
        local += 3 * si * si * sj * trace_triple(i, i, j);
        local += 3 * si * sj * sj * trace_triple(i, j, j);
        // Common forward neighbors k > j of i and j close a triple.
        const std::vector<uint32_t>& nj = ladj[j];
        size_t p = a + 1;
        size_t q = 0;
        while (p < ni.size() && q < nj.size()) {
          if (ni[p] == nj[q]) {
            const uint32_t k = ni[p];
            local += 6 * si * sj * structural[k].sign * trace_triple(i, j, k);
            ++p;
            ++q;
          } else if (ni[p] < nj[q]) {
            ++p;
          } else {
            ++q;
          }
        }
      }
    }
    acc3[w] += local;
  });

  int64_t t0 = 0, t1x2 = 0, t2 = 0, t3x6 = 0;
  for (unsigned w = 0; w < workers; ++w) {
    t0 += acc0[w];
    t1x2 += acc1[w];
    t2 += acc2[w];
    t3x6 += acc3[w];
  }
  assert(t1x2 % 2 == 0);
  assert(t3x6 % 6 == 0);
  const int64_t total = t0 + t1x2 / 2 + t2 + t3x6 / 6;
  assert(total >= 0);
  return static_cast<uint64_t>(total);
}

std::vector<double> PageRankOnHierarchy(
    const summary::SummaryGraph& s, double d, uint32_t iterations,
    ThreadPool* pool, std::span<const EdgeCorrection> corrections) {
  SummaryOps ops(s);
  SummaryOps::Scratch scratch;
  const NodeId n = ops.num_nodes();
  std::vector<double> rank(n, n ? 1.0 / n : 0.0);
  if (n == 0) return rank;
  const std::vector<int64_t> deg = ops.Degrees(&scratch, pool, corrections);
  std::vector<double> scaled(n);
  std::vector<double> y(n);
  for (uint32_t t = 0; t < iterations; ++t) {
    // Same recurrence as the edge-cost kernel: push rank[u] / deg(u),
    // with the retained mass (isolated nodes push nothing) feeding the
    // uniform teleport term.
    double mass = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (deg[u] > 0) {
        scaled[u] = rank[u] / static_cast<double>(deg[u]);
        mass += rank[u];
      } else {
        scaled[u] = 0.0;
      }
    }
    ops.Multiply(std::span<const double>(scaled), std::span<double>(y),
                 &scratch, pool, corrections);
    const double teleport = (1.0 - d * mass) / static_cast<double>(n);
    for (NodeId v = 0; v < n; ++v) rank[v] = d * y[v] + teleport;
  }
  return rank;
}

std::vector<uint32_t> BfsOnHierarchy(
    const summary::SummaryGraph& s, NodeId start,
    std::span<const EdgeCorrection> corrections) {
  SummaryOps ops(s);
  SummaryOps::Scratch scratch;
  return ops.BfsDistances(start, &scratch, corrections);
}

uint64_t TrianglesOnHierarchy(const summary::SummaryGraph& s, ThreadPool* pool,
                              std::span<const EdgeCorrection> corrections) {
  SummaryOps ops(s);
  return ops.CountTriangles(pool, corrections);
}

}  // namespace slugger::algs
