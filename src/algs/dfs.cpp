#include "algs/dfs.hpp"

namespace slugger::algs {

std::vector<NodeId> DfsOnGraph(const graph::Graph& g, NodeId start) {
  RawSource src(g);
  return DfsPreorder(src, start);
}

std::vector<NodeId> DfsOnSummary(const summary::SummaryGraph& s, NodeId start) {
  // The batched adapter materializes adjacency in amortized sweeps
  // instead of one decode per visited node.
  BatchedSummarySource src(s);
  return DfsPreorder(src, start);
}

}  // namespace slugger::algs
