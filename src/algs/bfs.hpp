// Breadth-first search over any neighbor source.
#ifndef SLUGGER_ALGS_BFS_HPP_
#define SLUGGER_ALGS_BFS_HPP_

#include <deque>
#include <vector>

#include "algs/neighbor_source.hpp"

namespace slugger::algs {

inline constexpr uint32_t kUnreached = 0xFFFFFFFFu;

/// Hop distances from `start`; kUnreached marks other components.
template <typename Source>
std::vector<uint32_t> BfsDistances(Source& src, NodeId start) {
  std::vector<uint32_t> dist(src.num_nodes(), kUnreached);
  std::deque<NodeId> queue;
  dist[start] = 0;
  queue.push_back(start);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : src.Neighbors(u)) {
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<uint32_t> BfsOnGraph(const graph::Graph& g, NodeId start);
std::vector<uint32_t> BfsOnSummary(const summary::SummaryGraph& s, NodeId start);

}  // namespace slugger::algs

#endif  // SLUGGER_ALGS_BFS_HPP_
