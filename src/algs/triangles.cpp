#include "algs/triangles.hpp"

namespace slugger::algs {

uint64_t TrianglesOnGraph(const graph::Graph& g) {
  RawSource src(g);
  return CountTriangles(src);
}

uint64_t TrianglesOnSummary(const summary::SummaryGraph& s) {
  SummarySource src(s);
  return CountTriangles(src);
}

}  // namespace slugger::algs
