#include "algs/triangles.hpp"

#include "algs/summary_ops.hpp"

namespace slugger::algs {

uint64_t TrianglesOnGraph(const graph::Graph& g) {
  RawSource src(g);
  return CountTriangles(src);
}

uint64_t TrianglesOnSummary(const summary::SummaryGraph& s) {
  // Hierarchy-native: per superedge-pair block counting with
  // inclusion-exclusion, at summary cost.
  return TrianglesOnHierarchy(s);
}

}  // namespace slugger::algs
