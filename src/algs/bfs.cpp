#include "algs/bfs.hpp"

#include "algs/summary_ops.hpp"

namespace slugger::algs {

std::vector<uint32_t> BfsOnGraph(const graph::Graph& g, NodeId start) {
  RawSource src(g);
  return BfsDistances(src, start);
}

std::vector<uint32_t> BfsOnSummary(const summary::SummaryGraph& s,
                                   NodeId start) {
  // Hierarchy-native: level-synchronous frontier expansion through
  // superedges, never materializing adjacency.
  return BfsOnHierarchy(s, start);
}

}  // namespace slugger::algs
