#include "algs/bfs.hpp"

namespace slugger::algs {

std::vector<uint32_t> BfsOnGraph(const graph::Graph& g, NodeId start) {
  RawSource src(g);
  return BfsDistances(src, start);
}

std::vector<uint32_t> BfsOnSummary(const summary::SummaryGraph& s,
                                   NodeId start) {
  SummarySource src(s);
  return BfsDistances(src, start);
}

}  // namespace slugger::algs
