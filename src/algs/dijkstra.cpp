#include "algs/dijkstra.hpp"

namespace slugger::algs {

std::vector<uint64_t> DijkstraOnGraph(const graph::Graph& g, NodeId start) {
  RawSource src(g);
  return DijkstraDistances(src, start);
}

std::vector<uint64_t> DijkstraOnSummary(const summary::SummaryGraph& s,
                                        NodeId start) {
  // The batched adapter materializes adjacency in amortized sweeps
  // instead of one decode per visited node.
  BatchedSummarySource src(s);
  return DijkstraDistances(src, start);
}

}  // namespace slugger::algs
