#include "algs/pagerank.hpp"

namespace slugger::algs {

std::vector<double> PageRankOnGraph(const graph::Graph& g, double d,
                                    uint32_t iterations) {
  RawSource src(g);
  return PageRank(src, d, iterations);
}

std::vector<double> PageRankOnSummary(const summary::SummaryGraph& s, double d,
                                      uint32_t iterations) {
  SummarySource src(s);
  return PageRank(src, d, iterations);
}

std::vector<double> PageRankOnSummaryBatched(const summary::SummaryGraph& s,
                                             double d, uint32_t iterations) {
  BatchedSummarySource src(s);
  return PageRank(src, d, iterations);
}

}  // namespace slugger::algs
