#include "algs/pagerank.hpp"

#include "algs/summary_ops.hpp"

namespace slugger::algs {

std::vector<double> PageRankOnGraph(const graph::Graph& g, double d,
                                    uint32_t iterations) {
  RawSource src(g);
  return PageRank(src, d, iterations);
}

std::vector<double> PageRankOnSummary(const summary::SummaryGraph& s, double d,
                                      uint32_t iterations) {
  // Hierarchy-native: each round is one summary SpMV, O(|P| + |N| + n)
  // instead of materializing adjacency and paying O(|E|).
  return PageRankOnHierarchy(s, d, iterations);
}

std::vector<double> PageRankOnSummaryBatched(const summary::SummaryGraph& s,
                                             double d, uint32_t iterations) {
  BatchedSummarySource src(s);
  return PageRank(src, d, iterations);
}

}  // namespace slugger::algs
