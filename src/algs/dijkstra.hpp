// Dijkstra's algorithm over any neighbor source.
//
// The paper runs unweighted graph algorithms directly on summaries; with
// unit edge weights Dijkstra's distances must equal BFS hop counts, which
// the test suite exploits as a cross-check.
#ifndef SLUGGER_ALGS_DIJKSTRA_HPP_
#define SLUGGER_ALGS_DIJKSTRA_HPP_

#include <queue>
#include <vector>

#include "algs/neighbor_source.hpp"

namespace slugger::algs {

inline constexpr uint64_t kInfDistance = ~0ull;

/// Unit-weight shortest-path distances from `start`.
template <typename Source>
std::vector<uint64_t> DijkstraDistances(Source& src, NodeId start) {
  std::vector<uint64_t> dist(src.num_nodes(), kInfDistance);
  using Item = std::pair<uint64_t, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[start] = 0;
  heap.emplace(0, start);
  while (!heap.empty()) {
    auto [du, u] = heap.top();
    heap.pop();
    if (du != dist[u]) continue;  // stale entry
    for (NodeId v : src.Neighbors(u)) {
      uint64_t dv = du + 1;
      if (dv < dist[v]) {
        dist[v] = dv;
        heap.emplace(dv, v);
      }
    }
  }
  return dist;
}

std::vector<uint64_t> DijkstraOnGraph(const graph::Graph& g, NodeId start);
std::vector<uint64_t> DijkstraOnSummary(const summary::SummaryGraph& s,
                                        NodeId start);

}  // namespace slugger::algs

#endif  // SLUGGER_ALGS_DIJKSTRA_HPP_
