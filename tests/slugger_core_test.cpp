// Tests for SLUGGER's driver machinery: state aggregates, merge planner,
// candidate generation, pruning substeps, thresholds, height bounds.
#include <gtest/gtest.h>

#include <set>

#include "core/candidate_generation.hpp"
#include "core/merge_planner.hpp"
#include "core/pruning.hpp"
#include "core/slugger.hpp"
#include "core/slugger_state.hpp"
#include "gen/generators.hpp"
#include "summary/decode.hpp"
#include "summary/verify.hpp"

namespace slugger::core {
namespace {

graph::Graph TwinGraph() {
  // Nodes 0 and 1 are twins: identical neighborhoods {2,3,4} and adjacent
  // to each other — the canonical profitable merge.
  return graph::Graph::FromEdges(
      5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}});
}

// ----------------------------------------------------------------- state
TEST(SluggerState, InitialAggregates) {
  graph::Graph g = TwinGraph();
  SluggerState state(g);
  EXPECT_EQ(state.roots().size(), 5u);
  EXPECT_EQ(state.IncCost(0), 4u);  // deg(0)
  EXPECT_EQ(state.IncCost(2), 2u);
  EXPECT_EQ(state.Between(0, 1), 1u);
  EXPECT_EQ(state.HCost(0), 0u);
  EXPECT_EQ(state.TotalCostFromAggregates(), g.num_edges());
  EXPECT_TRUE(state.ValidateAggregates());
}

TEST(SluggerState, MergeFoldsAggregates) {
  graph::Graph g = TwinGraph();
  SluggerState state(g);
  SupernodeId m = state.MergeRoots(0, 1);
  EXPECT_EQ(state.FindRoot(0), m);
  EXPECT_EQ(state.FindRoot(1), m);
  EXPECT_EQ(state.HCost(m), 2u);
  EXPECT_EQ(state.IncCost(m), 7u);  // all 7 edges touch the tree
  EXPECT_EQ(state.Between(m, 2), 2u);
  EXPECT_EQ(state.Height(m), 1u);
  EXPECT_EQ(state.roots().size(), 4u);
  EXPECT_TRUE(state.ValidateAggregates());
}

TEST(SluggerState, EdgeOpsKeepAggregatesConsistent) {
  graph::Graph g = gen::ErdosRenyi(60, 240, 4);
  SluggerState state(g);
  MergePlanner planner(&state);
  // Perform a few merges through the planner, validating after each.
  Rng rng(5);
  for (int step = 0; step < 10; ++step) {
    SupernodeId a = state.roots()[rng.Below(state.roots().size())];
    SupernodeId b = state.roots()[rng.Below(state.roots().size())];
    if (a == b) continue;
    MergePlan plan = planner.Evaluate(a, b);
    ASSERT_TRUE(plan.valid);
    planner.Commit(plan);
    ASSERT_TRUE(state.ValidateAggregates()) << "step " << step;
    ASSERT_EQ(state.TotalCostFromAggregates(), state.summary().Cost());
  }
}

// --------------------------------------------------------------- planner
TEST(MergePlanner, TwinMergeSavesAndStaysLossless) {
  graph::Graph g = TwinGraph();
  SluggerState state(g);
  MergePlanner planner(&state);
  MergePlan plan = planner.Evaluate(0, 1);
  ASSERT_TRUE(plan.valid);
  // Before: cost 7 (edges of 0 and 1). After: {0,1} with self-loop + three
  // edges to 2,3,4 + 2 h-edges = 6.
  EXPECT_EQ(plan.cost_before, 7u);
  EXPECT_EQ(plan.cost_after, 6u);
  EXPECT_NEAR(plan.saving, 1.0 - 6.0 / 7.0, 1e-12);
  planner.Commit(plan);
  EXPECT_TRUE(summary::VerifyLossless(g, state.summary()).ok());
  EXPECT_EQ(state.summary().Cost(), 6u);
}

TEST(MergePlanner, CostAfterMatchesCommittedCost) {
  // The predicted numerator must equal the real cost delta on commit.
  graph::Graph g = gen::Caveman(4, 6, 0.15, 9);
  SluggerState state(g);
  MergePlanner planner(&state);
  Rng rng(3);
  for (int step = 0; step < 12; ++step) {
    SupernodeId a = state.roots()[rng.Below(state.roots().size())];
    SupernodeId b = state.roots()[rng.Below(state.roots().size())];
    if (a == b) continue;
    MergePlan plan = planner.Evaluate(a, b);
    uint64_t other_cost = state.summary().Cost() + plan.cost_before -
                          plan.cost_before;  // total before
    uint64_t before_total = state.summary().Cost();
    planner.Commit(plan);
    uint64_t after_total = state.summary().Cost();
    EXPECT_EQ(after_total - (before_total - plan.cost_before),
              plan.cost_after)
        << "step " << step;
    (void)other_cost;
    ASSERT_TRUE(summary::VerifyLossless(g, state.summary()).ok())
        << "step " << step;
  }
}

TEST(MergePlanner, DisjointMergeCostsTwoExtra) {
  // Lemma 1: merging two far-apart roots adds exactly the two h-edges.
  graph::Graph g = graph::Graph::FromEdges(6, {{0, 1}, {2, 3}, {4, 5}});
  SluggerState state(g);
  MergePlanner planner(&state);
  MergePlan plan = planner.Evaluate(0, 2);
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.cost_after, plan.cost_before + 2);
  EXPECT_LT(plan.saving, 0.0);
}

TEST(MergePlanner, ScanPrefilterKeepsOverlappingPartners) {
  graph::Graph g = TwinGraph();
  SluggerState state(g);
  MergePlanner planner(&state);
  planner.BeginScan(0);
  EXPECT_TRUE(planner.MayOverlap(1));  // adjacent
  graph::Graph g2 = graph::Graph::FromEdges(6, {{0, 2}, {1, 2}, {4, 5}});
  SluggerState state2(g2);
  MergePlanner planner2(&state2);
  planner2.BeginScan(0);
  EXPECT_TRUE(planner2.MayOverlap(1));   // share neighbor 2
  EXPECT_FALSE(planner2.MayOverlap(4));  // distance >= 3
}

// ---------------------------------------------------------- candidates
TEST(CandidateGeneration, GroupsRespectSizeCap) {
  graph::Graph g = gen::Caveman(10, 30, 0.05, 2);
  SluggerState state(g);
  CandidateGenerator generator(g, 1, /*max_group_size=*/16,
                               /*shingle_levels=*/10);
  auto groups = generator.Generate(state, 1);
  ASSERT_FALSE(groups.empty());
  std::set<SupernodeId> seen;
  for (const auto& group : groups) {
    EXPECT_GE(group.size(), 2u);
    EXPECT_LE(group.size(), 16u);
    for (SupernodeId r : group) {
      EXPECT_TRUE(seen.insert(r).second) << "root in two groups";
    }
  }
}

TEST(CandidateGeneration, SimilarNeighborhoodsShareGroups) {
  // Twins share their shingle, so some group must contain both.
  graph::Graph g = TwinGraph();
  SluggerState state(g);
  CandidateGenerator generator(g, 3, 500, 10);
  auto groups = generator.Generate(state, 1);
  bool together = false;
  for (const auto& group : groups) {
    std::set<SupernodeId> s(group.begin(), group.end());
    if (s.count(0) && s.count(1)) together = true;
  }
  EXPECT_TRUE(together);
}

TEST(CandidateGeneration, ZeroShingleLevelsRandomlyGroupsAllRoots) {
  // shingle_levels = 0 means "random division only": every root lands in
  // a group (except at most one leftover), with no shingle filtering.
  graph::Graph g = gen::ErdosRenyi(300, 900, 8);
  SluggerState state(g);
  CandidateGenerator generator(g, 1, /*max_group_size=*/32,
                               /*shingle_levels=*/0);
  auto groups = generator.Generate(state, 1);
  std::set<SupernodeId> seen;
  for (const auto& group : groups) {
    EXPECT_GE(group.size(), 2u);
    EXPECT_LE(group.size(), 32u);
    for (SupernodeId r : group) {
      EXPECT_TRUE(seen.insert(r).second) << "root in two groups";
    }
  }
  EXPECT_GE(seen.size() + 1, state.roots().size());
}

TEST(CandidateGeneration, VariesAcrossIterations) {
  graph::Graph g = gen::ErdosRenyi(300, 900, 8);
  SluggerState state(g);
  CandidateGenerator generator(g, 1, 500, 10);
  auto g1 = generator.Generate(state, 1);
  auto g2 = generator.Generate(state, 2);
  // Different iteration hashes shuffle the groups (almost surely).
  EXPECT_NE(g1, g2);
}

// -------------------------------------------------------------- pruning
TEST(Pruning, Step1RemovesEdgeFreeSupernodes) {
  graph::Graph g = graph::Graph::FromEdges(4, {{0, 1}, {2, 3}});
  summary::SummaryGraph s(4);
  SupernodeId m = s.Merge(0, 1);
  s.AddEdge(m, m, +1);       // encodes edge (0,1)
  s.AddEdge(2, 3, +1);
  SupernodeId useless = s.Merge(2, 3);  // no incident edges
  (void)useless;
  uint64_t before = s.Cost();
  PruneOptions opt;
  opt.enable_step2 = opt.enable_step3 = false;
  PruneAblation ablation = PruneSummary(&s, g, opt);
  EXPECT_EQ(ablation.stage[0].cost, before);
  EXPECT_LT(s.Cost(), before);
  EXPECT_TRUE(summary::VerifyLossless(g, s).ok());
  EXPECT_TRUE(s.forest().IsRoot(2));
}

TEST(Pruning, Step2PushesSingleEdgeDown) {
  // Root {0,1} with a single edge to node 2 dissolves; the edge reattaches
  // to both children, saving |H| = 2 and paying one extra edge.
  graph::Graph g = graph::Graph::FromEdges(3, {{0, 2}, {1, 2}});
  summary::SummaryGraph s(3);
  SupernodeId m = s.Merge(0, 1);
  s.AddEdge(m, 2, +1);
  EXPECT_EQ(s.Cost(), 3u);
  PruneOptions opt;
  opt.enable_step1 = opt.enable_step3 = false;
  PruneSummary(&s, g, opt);
  EXPECT_EQ(s.Cost(), 2u);
  EXPECT_FALSE(s.forest().IsAlive(m));
  EXPECT_TRUE(summary::VerifyLossless(g, s).ok());
}

TEST(Pruning, Step2SignCancellation) {
  // p-edge ({0,1}, 2) with existing n-edge (1, 2): pushing down cancels.
  graph::Graph g = graph::Graph::FromEdges(3, {{0, 2}});
  summary::SummaryGraph s(3);
  SupernodeId m = s.Merge(0, 1);
  s.AddEdge(m, 2, +1);
  s.AddEdge(1, 2, -1);
  ASSERT_TRUE(summary::VerifyLossless(g, s).ok());
  PruneOptions opt;
  opt.enable_step1 = opt.enable_step3 = false;
  PruneSummary(&s, g, opt);
  EXPECT_TRUE(summary::VerifyLossless(g, s).ok());
  EXPECT_EQ(s.Cost(), 1u);  // single p-edge (0, 2)
}

TEST(Pruning, Step3FlattensWhenCheaper) {
  // A wasteful hierarchical encoding of a single edge collapses to flat.
  graph::Graph g = graph::Graph::FromEdges(4, {{0, 2}, {1, 2}, {0, 3}, {1, 3}});
  summary::SummaryGraph s(4);
  // Encode each edge separately but hang 0,1 under a pointless supernode
  // that carries a self-loop-free structure the flat model beats.
  s.InitFromEdges(g.Edges());
  summary::SummaryGraph flat_ref(4);
  flat_ref.InitFromEdges(g.Edges());
  SupernodeId m = s.Merge(0, 1);
  // Re-encode {0,1} x {2}: single edge (m, 2); same for {3}.
  s.RemoveEdge(0, 2);
  s.RemoveEdge(1, 2);
  s.AddEdge(m, 2, +1);
  s.RemoveEdge(0, 3);
  s.RemoveEdge(1, 3);
  s.AddEdge(m, 3, +1);
  EXPECT_EQ(s.Cost(), 4u);  // 2 p + 2 h
  ASSERT_TRUE(summary::VerifyLossless(g, s).ok());
  PruneOptions opt;
  PruneAblation ablation = PruneSummary(&s, g, opt);
  EXPECT_TRUE(summary::VerifyLossless(g, s).ok());
  EXPECT_LE(s.Cost(), 4u);
  EXPECT_LE(ablation.stage[3].cost, ablation.stage[0].cost);
}

TEST(Pruning, SubstepsMonotonicallyImprove) {
  gen::PlantedHierarchyOptions opt_gen;
  opt_gen.branching = 3;
  opt_gen.depth = 2;
  opt_gen.leaf_size = 7;
  opt_gen.leaf_density = 0.9;
  opt_gen.pair_link_prob = 0.5;
  opt_gen.pair_link_decay = 0.5;
  graph::Graph g = gen::PlantedHierarchy(opt_gen, 3);
  SluggerConfig config;
  config.iterations = 10;
  config.pruning_rounds = 1;
  SluggerResult r = Summarize(g, config);
  const PruneAblation& ab = r.prune_ablation;
  EXPECT_LE(ab.stage[1].cost, ab.stage[0].cost);
  EXPECT_LE(ab.stage[2].cost, ab.stage[1].cost);
  EXPECT_LE(ab.stage[3].cost, ab.stage[2].cost);
  EXPECT_LE(ab.stage[3].max_height, ab.stage[0].max_height);
  EXPECT_LE(ab.stage[3].avg_leaf_depth, ab.stage[0].avg_leaf_depth + 1e-9);
}

// ---------------------------------------------------------------- driver
TEST(Driver, ThresholdSchedule) {
  EXPECT_DOUBLE_EQ(MergingThreshold(1, 20), 0.5);
  EXPECT_DOUBLE_EQ(MergingThreshold(2, 20), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(MergingThreshold(19, 20), 0.05);
  EXPECT_DOUBLE_EQ(MergingThreshold(20, 20), 0.0);
  EXPECT_DOUBLE_EQ(MergingThreshold(1, 1), 0.0);
}

TEST(Driver, DeterministicForSeed) {
  graph::Graph g = gen::Caveman(6, 12, 0.1, 2);
  SluggerConfig config;
  config.iterations = 8;
  config.seed = 42;
  SluggerResult a = Summarize(g, config);
  SluggerResult b = Summarize(g, config);
  EXPECT_EQ(a.stats.cost, b.stats.cost);
  EXPECT_EQ(a.merges, b.merges);
  config.seed = 43;
  SluggerResult c = Summarize(g, config);
  // Different seeds usually explore different merges (not guaranteed, but
  // overwhelmingly likely on this graph).
  EXPECT_TRUE(c.stats.cost != a.stats.cost || c.merges != a.merges ||
              c.evaluations != a.evaluations);
}

TEST(Driver, MoreIterationsNeverHurtMuch) {
  graph::Graph g = gen::Caveman(8, 16, 0.08, 5);
  SluggerConfig c1;
  c1.iterations = 1;
  c1.seed = 7;
  SluggerConfig c20 = c1;
  c20.iterations = 20;
  uint64_t cost1 = Summarize(g, c1).stats.cost;
  uint64_t cost20 = Summarize(g, c20).stats.cost;
  EXPECT_LE(cost20, cost1 + cost1 / 10);  // Table III trend
}

TEST(Driver, HeightBoundRespected) {
  gen::PlantedHierarchyOptions opt_gen;
  opt_gen.branching = 4;
  opt_gen.depth = 3;
  opt_gen.leaf_size = 6;
  opt_gen.leaf_density = 0.95;
  opt_gen.pair_link_prob = 0.6;
  opt_gen.pair_link_decay = 0.4;
  graph::Graph g = gen::PlantedHierarchy(opt_gen, 5);
  for (uint32_t hb : {2u, 5u, 7u}) {
    SluggerConfig config;
    config.iterations = 10;
    config.max_height = hb;
    config.pruning_rounds = 0;  // pruning only lowers heights
    SluggerResult r = Summarize(g, config);
    EXPECT_LE(r.stats.max_height, hb) << "Hb = " << hb;
    EXPECT_TRUE(summary::VerifyLossless(g, r.summary).ok());
  }
}

TEST(Driver, HeightBoundTradeoff) {
  // Table V: looser height bounds compress at least as well (statistically;
  // we allow slack for heuristic noise).
  gen::PlantedHierarchyOptions opt_gen;
  opt_gen.branching = 4;
  opt_gen.depth = 3;
  opt_gen.leaf_size = 8;
  opt_gen.leaf_density = 0.9;
  opt_gen.pair_link_prob = 0.6;
  opt_gen.pair_link_decay = 0.35;
  graph::Graph g = gen::PlantedHierarchy(opt_gen, 11);
  SluggerConfig tight;
  tight.iterations = 12;
  tight.max_height = 2;
  SluggerConfig loose = tight;
  loose.max_height = 0;
  uint64_t cost_tight = Summarize(g, tight).stats.cost;
  uint64_t cost_loose = Summarize(g, loose).stats.cost;
  EXPECT_LE(cost_loose, cost_tight + cost_tight / 8);
}

TEST(Driver, PruningDisabledKeepsLosslessness) {
  graph::Graph g = gen::ErdosRenyi(100, 350, 2);
  SluggerConfig config;
  config.iterations = 6;
  config.pruning_rounds = 0;
  SluggerResult r = Summarize(g, config);
  EXPECT_TRUE(summary::VerifyLossless(g, r.summary).ok());
}

TEST(Driver, EmptyAndTinyGraphs) {
  graph::Graph empty = graph::Graph::FromEdges(0, {});
  SluggerResult r0 = Summarize(empty, {});
  EXPECT_EQ(r0.stats.cost, 0u);

  graph::Graph isolated = graph::Graph::FromEdges(5, {});
  SluggerResult r1 = Summarize(isolated, {});
  EXPECT_EQ(r1.stats.cost, 0u);
  EXPECT_TRUE(summary::VerifyLossless(isolated, r1.summary).ok());

  graph::Graph one_edge = graph::Graph::FromEdges(2, {{0, 1}});
  SluggerResult r2 = Summarize(one_edge, {});
  EXPECT_TRUE(summary::VerifyLossless(one_edge, r2.summary).ok());
  EXPECT_LE(r2.stats.cost, 1u);
}

}  // namespace
}  // namespace slugger::core
