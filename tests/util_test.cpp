// Unit tests for the utility substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/dsu.hpp"
#include "util/flat_map.hpp"
#include "util/hashing.hpp"
#include "util/random.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"
#include "util/varint.hpp"

namespace slugger {
namespace {

// ---------------------------------------------------------------- Status
TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::Corruption("bad magic");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kCorruption);
  EXPECT_EQ(s.ToString(), "Corruption: bad magic");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status::NotFound("x"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kNotFound);
}

// ------------------------------------------------------------------- Rng
TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> w = v;
  rng.Shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  for (uint64_t k : {0ull, 1ull, 5ull, 50ull, 100ull}) {
    auto sample = SampleWithoutReplacement(100, k, rng);
    std::set<uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (uint64_t x : sample) EXPECT_LT(x, 100u);
  }
}

// --------------------------------------------------------------- hashing
TEST(Hashing, PairKeyCanonical) {
  EXPECT_EQ(PairKey(3, 9), PairKey(9, 3));
  EXPECT_EQ(PairFirst(PairKey(3, 9)), 3u);
  EXPECT_EQ(PairSecond(PairKey(3, 9)), 9u);
  EXPECT_NE(PairKey(1, 2), PairKey(1, 3));
}

TEST(Hashing, KeyedHashFamiliesDiffer) {
  KeyedHash h1(1), h2(2);
  int differing = 0;
  for (uint32_t x = 0; x < 100; ++x) {
    if (h1(x) != h2(x)) ++differing;
  }
  EXPECT_GT(differing, 95);
}

// -------------------------------------------------------------- FlatMap32
TEST(FlatMap, PutFindErase) {
  FlatMap32<int8_t> m;
  EXPECT_TRUE(m.Put(5, 1));
  EXPECT_FALSE(m.Put(5, -1));  // overwrite, not insert
  ASSERT_NE(m.Find(5), nullptr);
  EXPECT_EQ(*m.Find(5), -1);
  EXPECT_TRUE(m.Erase(5));
  EXPECT_FALSE(m.Erase(5));
  EXPECT_EQ(m.Find(5), nullptr);
}

TEST(FlatMap, MatchesStdMapUnderChurn) {
  // Randomized differential test against std::map, exercising the
  // backward-shift deletion heavily.
  FlatMap32<int8_t> m;
  std::map<uint32_t, int8_t> ref;
  Rng rng(21);
  for (int step = 0; step < 20000; ++step) {
    uint32_t key = static_cast<uint32_t>(rng.Below(200));
    if (rng.Chance(0.5)) {
      int8_t val = static_cast<int8_t>(rng.Below(120));
      m.Put(key, val);
      ref[key] = val;
    } else {
      EXPECT_EQ(m.Erase(key), ref.erase(key) > 0) << "step " << step;
    }
    if (step % 1000 == 0) {
      ASSERT_EQ(m.size(), ref.size());
      for (const auto& [k, v] : ref) {
        ASSERT_NE(m.Find(k), nullptr) << "missing " << k;
        ASSERT_EQ(*m.Find(k), v);
      }
    }
  }
}

TEST(FlatMap, ForEachVisitsAllOnce) {
  FlatMap32<uint32_t> m;
  for (uint32_t i = 0; i < 100; ++i) m.Put(i * 3, i);
  std::set<uint32_t> keys;
  m.ForEach([&](uint32_t k, uint32_t) { EXPECT_TRUE(keys.insert(k).second); });
  EXPECT_EQ(keys.size(), 100u);
}

TEST(FlatMap, GetOrInsertAggregates) {
  FlatMap32<uint32_t> m;
  for (int i = 0; i < 10; ++i) ++m.GetOrInsert(7, 0);
  EXPECT_EQ(*m.Find(7), 10u);
}

TEST(FlatMap, SoftClearKeepsCapacity) {
  FlatMap32<uint32_t> m;
  for (uint32_t i = 0; i < 1000; ++i) m.Put(i, i);
  size_t cap = m.capacity();
  m.SoftClear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.Find(3), nullptr);
  m.Put(3, 9);
  EXPECT_EQ(*m.Find(3), 9u);
}

// ------------------------------------------------------------------- Dsu
TEST(Dsu, UniteAndFind) {
  Dsu d(10);
  EXPECT_FALSE(d.Same(1, 2));
  d.Unite(1, 2);
  EXPECT_TRUE(d.Same(1, 2));
  d.Unite(2, 3);
  EXPECT_TRUE(d.Same(1, 3));
  EXPECT_FALSE(d.Same(1, 4));
  EXPECT_EQ(d.SetSize(3), 3u);
}

TEST(Dsu, AddGrowsUniverse) {
  Dsu d(2);
  uint32_t id = d.Add();
  EXPECT_EQ(id, 2u);
  d.Unite(0, id);
  EXPECT_TRUE(d.Same(0, 2));
  EXPECT_EQ(d.universe_size(), 3u);
}

// ---------------------------------------------------------------- varint
TEST(Varint, RoundTripValues) {
  std::string buf;
  std::vector<uint64_t> values{0, 1, 127, 128, 300, 1u << 20, ~0ull};
  for (uint64_t v : values) PutVarint64(&buf, v);
  VarintReader reader(buf);
  for (uint64_t expected : values) {
    uint64_t got = 0;
    ASSERT_TRUE(reader.Get(&got).ok());
    EXPECT_EQ(got, expected);
  }
  EXPECT_TRUE(reader.exhausted());
}

TEST(Varint, SignedZigZagRoundTrip) {
  std::string buf;
  std::vector<int64_t> values{0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (int64_t v : values) PutVarintSigned64(&buf, v);
  VarintReader reader(buf);
  for (int64_t expected : values) {
    int64_t got = 0;
    ASSERT_TRUE(reader.GetSigned(&got).ok());
    EXPECT_EQ(got, expected);
  }
}

TEST(Varint, TruncatedInputRejected) {
  std::string buf;
  PutVarint64(&buf, 1u << 30);
  buf.pop_back();
  VarintReader reader(buf);
  uint64_t v = 0;
  EXPECT_EQ(reader.Get(&v).code(), Status::Code::kCorruption);
}

TEST(Varint, OverlongInputRejected) {
  std::string buf(11, static_cast<char>(0x80));
  VarintReader reader(buf);
  uint64_t v = 0;
  EXPECT_FALSE(reader.Get(&v).ok());
}

TEST(Varint, GetBytesBoundsChecked) {
  std::string buf = "abc";
  VarintReader reader(buf);
  std::string out;
  EXPECT_TRUE(reader.GetBytes(2, &out).ok());
  EXPECT_EQ(out, "ab");
  EXPECT_FALSE(reader.GetBytes(2, &out).ok());
}

// ----------------------------------------------------------------- timer
TEST(Timer, MonotoneNonNegative) {
  WallTimer t;
  double a = t.Seconds();
  double b = t.Seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace slugger
