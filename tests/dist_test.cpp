// Tests for the in-process sharding subsystem (ISSUE 8): deterministic
// partitioning and manifest round-trips, per-shard summarization, and
// the coordinator's scatter-gather contract — byte-identical agreement
// with a single-box CompressedGraph across shard counts (boundary
// nodes, duplicates, hostile ids included), degraded-shard Status
// paths, rebalance, and multi-reader churn with a mid-stream shard
// republish (the churn test runs under ThreadSanitizer in CI). Also
// covers the satellite changes riding along: the paged query-error
// counter on CompressedGraph and precomputed batch orders.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/sharded_graph.hpp"
#include "api/snapshot_registry.hpp"
#include "dist/coordinator.hpp"
#include "dist/manifest.hpp"
#include "dist/partitioner.hpp"
#include "dist/shard_summarizer.hpp"
#include "gen/generators.hpp"
#include "graph/partition_stream.hpp"
#include "storage/storage.hpp"
#include "util/random.hpp"

namespace slugger {
namespace {

CompressedGraph Compress(const graph::Graph& g, uint64_t seed = 7,
                         uint32_t iterations = 10) {
  EngineOptions options;
  options.config.iterations = iterations;
  options.config.seed = seed;
  Engine engine(options);
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  EXPECT_TRUE(compressed.ok()) << compressed.status().ToString();
  return std::move(compressed).value();
}

ShardedGraph BuildSharded(const graph::Graph& g, uint32_t num_shards,
                          dist::PartitionStrategy strategy =
                              dist::PartitionStrategy::kBalancedDegree) {
  ShardedOptions options;
  options.partition.num_shards = num_shards;
  options.partition.strategy = strategy;
  options.engine.config.iterations = 10;
  options.engine.config.seed = 7;
  StatusOr<ShardedGraph> sharded = ShardedGraph::Build(g, options);
  EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
  return std::move(sharded).value();
}

/// Permutation of all nodes plus 200 random duplicates — every node is
/// queried at least once, boundary nodes included.
std::vector<NodeId> AdversarialBatch(NodeId num_nodes, uint64_t seed) {
  std::vector<NodeId> nodes(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) nodes[v] = v;
  Rng rng(seed);
  for (NodeId v = 0; v < num_nodes; ++v) {
    std::swap(nodes[v], nodes[rng.Below(num_nodes)]);
  }
  for (int i = 0; i < 200; ++i) {
    nodes.push_back(static_cast<NodeId>(rng.Below(num_nodes)));
  }
  return nodes;
}

/// The coordinator's canonical form of a single-box answer: same
/// offsets, each per-position neighbor list sorted ascending.
BatchResult CanonicalSingleBox(const CompressedGraph& cg,
                               const std::vector<NodeId>& nodes) {
  BatchResult expected;
  EXPECT_TRUE(cg.NeighborsBatch(nodes, &expected).ok());
  for (size_t i = 0; i < expected.size(); ++i) {
    std::sort(expected.neighbors.begin() + expected.offsets[i],
              expected.neighbors.begin() + expected.offsets[i + 1]);
  }
  return expected;
}

/// Byte-identical agreement: offsets AND neighbor bytes, not just sets.
void ExpectShardedAgreesWithSingleBox(const graph::Graph& g,
                                      const CompressedGraph& single,
                                      const ShardedGraph& sharded,
                                      const std::vector<NodeId>& nodes) {
  const BatchResult expected = CanonicalSingleBox(single, nodes);

  BatchResult got;
  dist::GatherStats stats;
  ASSERT_TRUE(sharded.NeighborsBatch(nodes, &got, &stats).ok());
  ASSERT_EQ(got.offsets, expected.offsets);
  ASSERT_EQ(got.neighbors, expected.neighbors);

  std::vector<uint64_t> degrees;
  ASSERT_TRUE(sharded.DegreeBatch(nodes, &degrees).ok());
  ASSERT_EQ(degrees.size(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    ASSERT_EQ(degrees[i], expected.offsets[i + 1] - expected.offsets[i])
        << "position " << i << ", node " << nodes[i];
    // Lossless end to end: the stitched degree is the graph's.
    ASSERT_EQ(degrees[i], g.Degree(nodes[i])) << "node " << nodes[i];
  }
  // Isolated nodes route to no shard at all, so subqueries may be below
  // the batch size; it must still be positive and bounded by full fan-out.
  ASSERT_GT(stats.shards_dispatched, 0u);
  ASSERT_GT(stats.subqueries, 0u);
  ASSERT_LE(stats.subqueries, nodes.size() * sharded.num_shards());
}

// ----------------------------------------------------- partitioner

TEST(Partitioner, IsDeterministicForEveryStrategy) {
  graph::Graph g = gen::RMat(9, 4096, 0.57, 0.19, 0.19, /*seed=*/3);
  for (dist::PartitionStrategy strategy :
       {dist::PartitionStrategy::kContiguous, dist::PartitionStrategy::kHashed,
        dist::PartitionStrategy::kBalancedDegree}) {
    dist::PartitionOptions options;
    options.num_shards = 4;
    options.strategy = strategy;
    StatusOr<dist::ShardManifest> a = dist::PartitionGraph(g, options);
    StatusOr<dist::ShardManifest> b = dist::PartitionGraph(g, options);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a.value(), b.value())
        << "strategy " << static_cast<int>(strategy);
    ASSERT_EQ(a.value().Serialize(), b.value().Serialize());
  }
}

TEST(Partitioner, EveryEdgeHasExactlyOneOwnerAndStatsAdd) {
  graph::Graph g = gen::ErdosRenyi(500, 3000, 11);
  dist::PartitionOptions options;
  options.num_shards = 4;
  StatusOr<dist::ShardManifest> manifest = dist::PartitionGraph(g, options);
  ASSERT_TRUE(manifest.ok());
  const dist::ShardManifest& m = manifest.value();

  uint64_t owned_total = 0, nodes_total = 0, degree_total = 0;
  for (const dist::ShardStats& s : m.shard_stats()) {
    owned_total += s.owned_edges;
    nodes_total += s.num_nodes;
    degree_total += s.total_degree;
    ASSERT_EQ(s.owned_edges, s.internal_edges + s.boundary_edges);
  }
  ASSERT_EQ(owned_total, g.num_edges());
  ASSERT_EQ(nodes_total, g.num_nodes());
  ASSERT_EQ(degree_total, 2 * g.num_edges());
  for (const Edge& e : g.Edges()) {
    ASSERT_EQ(m.OwnerOf(e), m.HomeOf(e.first));
  }
}

TEST(Partitioner, TouchSetsAreExactlyTheIncidentOwners) {
  graph::Graph g = gen::ErdosRenyi(300, 1500, 17);
  dist::PartitionOptions options;
  options.num_shards = 8;
  options.strategy = dist::PartitionStrategy::kHashed;
  StatusOr<dist::ShardManifest> manifest = dist::PartitionGraph(g, options);
  ASSERT_TRUE(manifest.ok());
  const dist::ShardManifest& m = manifest.value();

  // Brute-force the owners of each node's incident edges and compare.
  std::vector<std::vector<uint32_t>> expected(g.num_nodes());
  for (const Edge& e : g.Edges()) {
    expected[e.first].push_back(m.OwnerOf(e));
    expected[e.second].push_back(m.OwnerOf(e));
  }
  uint32_t boundary_nodes = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::sort(expected[v].begin(), expected[v].end());
    expected[v].erase(std::unique(expected[v].begin(), expected[v].end()),
                      expected[v].end());
    const std::span<const uint32_t> touch = m.TouchSet(v);
    ASSERT_EQ(std::vector<uint32_t>(touch.begin(), touch.end()), expected[v])
        << "node " << v;
    if (m.IsBoundary(v)) ++boundary_nodes;
  }
  // A hashed 8-way split of a random graph must create boundary nodes,
  // or the agreement tests would not exercise stitching at all.
  ASSERT_GT(boundary_nodes, 0u);
}

TEST(Partitioner, RejectsImpossibleShardCounts) {
  graph::Graph g = gen::ErdosRenyi(10, 20, 1);
  dist::PartitionOptions zero;
  zero.num_shards = 0;
  ASSERT_FALSE(dist::PartitionGraph(g, zero).ok());
  dist::PartitionOptions toomany;
  toomany.num_shards = 11;
  ASSERT_FALSE(dist::PartitionGraph(g, toomany).ok());
}

// -------------------------------------------------------- manifest

TEST(Manifest, RoundTripsThroughBytesAndFiles) {
  graph::Graph g = gen::RMat(8, 2048, 0.6, 0.15, 0.15, /*seed=*/5);
  for (uint32_t shards : {1u, 3u, 8u}) {
    dist::PartitionOptions options;
    options.num_shards = shards;
    StatusOr<dist::ShardManifest> manifest = dist::PartitionGraph(g, options);
    ASSERT_TRUE(manifest.ok());

    const std::string bytes = manifest.value().Serialize();
    StatusOr<dist::ShardManifest> reparsed =
        dist::ShardManifest::Deserialize(bytes);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    ASSERT_EQ(reparsed.value(), manifest.value()) << shards << " shards";

    const std::string path =
        testing::TempDir() + "/manifest_" + std::to_string(shards) + ".slgm";
    ASSERT_TRUE(manifest.value().Save(path).ok());
    StatusOr<dist::ShardManifest> loaded = dist::ShardManifest::Load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded.value(), manifest.value());
    std::remove(path.c_str());
  }
}

TEST(Manifest, EveryTruncationAndBitFlipIsRejected) {
  graph::Graph g = gen::ErdosRenyi(64, 256, 9);
  dist::PartitionOptions options;
  options.num_shards = 4;
  StatusOr<dist::ShardManifest> manifest = dist::PartitionGraph(g, options);
  ASSERT_TRUE(manifest.ok());
  const std::string bytes = manifest.value().Serialize();

  for (size_t len = 0; len < bytes.size(); ++len) {
    StatusOr<dist::ShardManifest> parsed =
        dist::ShardManifest::Deserialize(bytes.substr(0, len));
    ASSERT_FALSE(parsed.ok()) << "truncation to " << len << " bytes accepted";
  }
  // The trailing checksum covers the whole payload, so any flip anywhere
  // must be rejected (as Corruption or a structural InvalidArgument).
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x20);
    StatusOr<dist::ShardManifest> parsed =
        dist::ShardManifest::Deserialize(corrupt);
    ASSERT_FALSE(parsed.ok()) << "bit flip at " << pos << " accepted";
  }
}

// ----------------------------------------- sharded vs single box

TEST(ShardedServing, AgreesWithSingleBoxOnRmatAcrossShardCounts) {
  graph::Graph g = gen::RMat(10, 8192, 0.57, 0.19, 0.19, /*seed=*/3);
  CompressedGraph single = Compress(g);
  const std::vector<NodeId> nodes = AdversarialBatch(g.num_nodes(), 11);
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    ShardedGraph sharded = BuildSharded(g, shards);
    ASSERT_EQ(sharded.num_shards(), shards);
    ExpectShardedAgreesWithSingleBox(g, single, sharded, nodes);
  }
}

TEST(ShardedServing, AgreesWithSingleBoxOnErdosRenyiEveryStrategy) {
  graph::Graph g = gen::ErdosRenyi(900, 5400, 21);
  CompressedGraph single = Compress(g);
  const std::vector<NodeId> nodes = AdversarialBatch(g.num_nodes(), 12);
  for (dist::PartitionStrategy strategy :
       {dist::PartitionStrategy::kContiguous, dist::PartitionStrategy::kHashed,
        dist::PartitionStrategy::kBalancedDegree}) {
    ShardedGraph sharded = BuildSharded(g, 4, strategy);
    // The split must produce boundary nodes for this to test stitching.
    uint32_t boundary = 0;
    const std::shared_ptr<const dist::ShardManifest> manifest =
        sharded.manifest();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (manifest->IsBoundary(v)) ++boundary;
    }
    ASSERT_GT(boundary, 0u) << "strategy " << static_cast<int>(strategy);
    ExpectShardedAgreesWithSingleBox(g, single, sharded, nodes);
  }
}

TEST(ShardedServing, OutOfRangeIdFailsExactlyLikeSingleBox) {
  graph::Graph g = gen::ErdosRenyi(200, 800, 31);
  CompressedGraph single = Compress(g);
  ShardedGraph sharded = BuildSharded(g, 4);

  const std::vector<NodeId> nodes = {3, 7, g.num_nodes(), 1};
  BatchResult single_out, sharded_out;
  Status single_status = single.NeighborsBatch(nodes, &single_out);
  dist::GatherStats stats;
  Status sharded_status = sharded.NeighborsBatch(nodes, &sharded_out, &stats);
  ASSERT_FALSE(single_status.ok());
  ASSERT_FALSE(sharded_status.ok());
  // Same contract AND the same message, so clients can switch backends
  // without re-learning the error surface.
  ASSERT_EQ(sharded_status.ToString(), single_status.ToString());
  ASSERT_EQ(stats.shards_dispatched, 0u) << "validation must precede fan-out";
}

TEST(ShardedServing, EmptyBatchIsOkAndEmpty) {
  graph::Graph g = gen::ErdosRenyi(50, 100, 2);
  ShardedGraph sharded = BuildSharded(g, 2);
  BatchResult out;
  ASSERT_TRUE(sharded.NeighborsBatch({}, &out).ok());
  ASSERT_EQ(out.size(), 0u);
  std::vector<uint64_t> degrees;
  ASSERT_TRUE(sharded.DegreeBatch({}, &degrees).ok());
  ASSERT_TRUE(degrees.empty());
}

// ------------------------------------------- degraded-shard paths

TEST(Coordinator, UnpublishedShardFailsBatchStrictlyAndDegradesGracefully) {
  graph::Graph g = gen::ErdosRenyi(400, 2400, 13);
  CompressedGraph single = Compress(g);
  ShardedGraph sharded = BuildSharded(g, 4);

  // Rebuild the epoch with shard 2's registry replaced by an empty one
  // (registered but never published — a crashed replica).
  const uint32_t victim = 2;
  dist::ServingEpoch degraded_epoch = *sharded.coordinator().epoch();
  ASSERT_GT(degraded_epoch.manifest->shard_stats()[victim].owned_edges, 0u);
  degraded_epoch.shards[victim] = std::make_shared<SnapshotRegistry>();

  const std::vector<NodeId> nodes = AdversarialBatch(g.num_nodes(), 29);

  // Strict coordinator: the batch fails with a Status naming the shard.
  dist::Coordinator strict(degraded_epoch);
  ASSERT_TRUE(strict.status().ok());
  BatchResult out;
  dist::GatherStats stats;
  Status failed = strict.NeighborsBatch(nodes, &out, &stats);
  ASSERT_FALSE(failed.ok());
  ASSERT_NE(failed.ToString().find("shard 2"), std::string::npos)
      << failed.ToString();
  ASSERT_EQ(out.size(), 0u) << "a failed batch must not leave partial output";
  ASSERT_EQ(stats.degraded.size(), 1u);
  ASSERT_EQ(stats.degraded[0].first, victim);

  // Degraded coordinator: the batch succeeds, the casualty is recorded,
  // and answers are a subset of the truth — exact wherever the victim
  // shard was not touched.
  dist::CoordinatorOptions tolerant;
  tolerant.allow_degraded = true;
  dist::Coordinator serve_what_we_have(degraded_epoch, tolerant);
  BatchResult partial;
  dist::GatherStats partial_stats;
  ASSERT_TRUE(
      serve_what_we_have.NeighborsBatch(nodes, &partial, &partial_stats).ok());
  ASSERT_EQ(partial_stats.degraded.size(), 1u);
  const BatchResult expected = CanonicalSingleBox(single, nodes);
  const std::shared_ptr<const dist::ShardManifest> manifest =
      sharded.manifest();
  for (size_t i = 0; i < nodes.size(); ++i) {
    const std::span<const NodeId> got = partial[i];
    const std::span<const NodeId> full = expected[i];
    const std::span<const uint32_t> touch = manifest->TouchSet(nodes[i]);
    const bool touches_victim =
        std::find(touch.begin(), touch.end(), victim) != touch.end();
    if (!touches_victim) {
      ASSERT_TRUE(std::equal(got.begin(), got.end(), full.begin(), full.end()))
          << "untouched node " << nodes[i] << " must be exact";
    } else {
      ASSERT_TRUE(std::includes(full.begin(), full.end(), got.begin(),
                                got.end()))
          << "degraded answer for node " << nodes[i]
          << " must be a subset of the truth";
    }
  }
}

TEST(Coordinator, MalformedEpochLeavesItInertWithAStatus) {
  dist::Coordinator no_manifest(dist::ServingEpoch{});
  ASSERT_FALSE(no_manifest.status().ok());
  BatchResult out;
  Status failed = no_manifest.NeighborsBatch({}, &out);
  ASSERT_EQ(failed.ToString(), no_manifest.status().ToString());

  graph::Graph g = gen::ErdosRenyi(50, 100, 3);
  StatusOr<dist::ShardManifest> manifest = dist::PartitionGraph(g, {});
  ASSERT_TRUE(manifest.ok());
  dist::ServingEpoch missing_registries;
  missing_registries.manifest = std::make_shared<const dist::ShardManifest>(
      std::move(manifest).value());
  dist::Coordinator mismatched(missing_registries);
  ASSERT_FALSE(mismatched.status().ok());
}

TEST(Coordinator, RejectedAdoptKeepsTheOldEpochServing) {
  graph::Graph g = gen::ErdosRenyi(200, 1000, 7);
  CompressedGraph single = Compress(g);
  ShardedGraph sharded = BuildSharded(g, 2);
  const std::vector<NodeId> nodes = AdversarialBatch(g.num_nodes(), 5);

  ASSERT_FALSE(sharded.coordinator().AdoptEpoch(dist::ServingEpoch{}).ok());
  ASSERT_TRUE(sharded.coordinator().status().ok())
      << "a serving coordinator must not lose its healthy verdict";
  ExpectShardedAgreesWithSingleBox(g, single, sharded, nodes);
}

TEST(Coordinator, AdoptEpochRetiresTheOldEpochOutsideItsLock) {
  // Regression test: AdoptEpoch used to drop the last reference to the
  // retired epoch while still holding epoch_mu_. A destructor that
  // re-enters the coordinator (or merely a large epoch teardown) would
  // then run inside the lock, stalling — or here, deadlocking — every
  // concurrent status()/epoch() reader. The traced registry's deleter
  // calls status(): with the retire-outside-lock discipline it returns;
  // with the regression this test hangs on the non-recursive mutex.
  graph::Graph g = gen::ErdosRenyi(50, 100, 11);
  StatusOr<dist::ShardManifest> partitioned = dist::PartitionGraph(g, {});
  ASSERT_TRUE(partitioned.ok());
  auto manifest = std::make_shared<const dist::ShardManifest>(
      std::move(partitioned).value());

  dist::Coordinator* coord_ptr = nullptr;
  std::atomic<bool> deleter_ran{false};
  std::atomic<bool> status_ok_in_deleter{false};

  dist::ServingEpoch first;
  first.manifest = manifest;
  {
    auto inner = std::make_shared<SnapshotRegistry>();
    first.shards.emplace_back(
        inner.get(), [inner, &coord_ptr, &deleter_ran,
                      &status_ok_in_deleter](SnapshotRegistry*) mutable {
          if (coord_ptr != nullptr) {
            status_ok_in_deleter.store(coord_ptr->status().ok());
          }
          deleter_ran.store(true);
          inner.reset();
        });
  }
  for (uint32_t s = 1; s < manifest->num_shards(); ++s) {
    first.shards.push_back(std::make_shared<SnapshotRegistry>());
  }

  dist::Coordinator coord(std::move(first));
  ASSERT_TRUE(coord.status().ok());
  coord_ptr = &coord;

  dist::ServingEpoch second;
  second.manifest = manifest;
  for (uint32_t s = 0; s < manifest->num_shards(); ++s) {
    second.shards.push_back(std::make_shared<SnapshotRegistry>());
  }
  ASSERT_TRUE(coord.AdoptEpoch(std::move(second)).ok());

  EXPECT_TRUE(deleter_ran.load())
      << "the adopt must have dropped the last reference to the old epoch";
  EXPECT_TRUE(status_ok_in_deleter.load())
      << "status() must be reachable while the retired epoch tears down";
}

// ------------------------------------------- republish + rebalance

TEST(ShardedServing, ShardLocalRepublishKeepsAnswersInvariant) {
  graph::Graph g = gen::RMat(9, 4096, 0.57, 0.19, 0.19, /*seed=*/19);
  CompressedGraph single = Compress(g);
  ShardedGraph sharded = BuildSharded(g, 4);
  const std::vector<NodeId> nodes = AdversarialBatch(g.num_nodes(), 23);
  ExpectShardedAgreesWithSingleBox(g, single, sharded, nodes);

  // Republish shard 1 with a summary from a different seed and effort:
  // a different hierarchy over the SAME edge set. Lossless means the
  // answers cannot move.
  const std::shared_ptr<const dist::ShardManifest> manifest =
      sharded.manifest();
  graph::Graph shard_graph =
      graph::BuildShardGraph(g, manifest->node_map(), 1);
  sharded.shard_registry(1)->Publish(
      Compress(shard_graph, /*seed=*/99, /*iterations=*/3));
  ExpectShardedAgreesWithSingleBox(g, single, sharded, nodes);
}

TEST(ShardedServing, RebalanceSwapsTheEpochAndKeepsAnswers) {
  graph::Graph g = gen::RMat(9, 4096, 0.6, 0.15, 0.15, /*seed=*/41);
  CompressedGraph single = Compress(g);
  // Contiguous on an RMAT graph concentrates the dense low-id quadrant
  // on shard 0 — reliably skewed, so the rebalance has work to do.
  ShardedGraph sharded =
      BuildSharded(g, 4, dist::PartitionStrategy::kContiguous);
  const std::vector<NodeId> nodes = AdversarialBatch(g.num_nodes(), 43);

  const double skew = sharded.CostSkew();
  ASSERT_GE(skew, 1.0);

  // Above-current threshold: a no-op that must not touch the epoch.
  const std::shared_ptr<const dist::ShardManifest> before =
      sharded.manifest();
  StatusOr<RebalanceReport> noop = sharded.Rebalance(g, skew + 1.0);
  ASSERT_TRUE(noop.ok());
  ASSERT_FALSE(noop.value().rebalanced);
  ASSERT_EQ(sharded.manifest().get(), before.get());

  // Force a rebalance (any skew beats a 0.99 budget) and require the
  // balanced-degree strategy in the new manifest plus unchanged answers.
  StatusOr<RebalanceReport> forced = sharded.Rebalance(g, 0.99);
  ASSERT_TRUE(forced.ok()) << forced.status().ToString();
  ASSERT_TRUE(forced.value().rebalanced);
  ASSERT_EQ(sharded.manifest()->strategy(),
            dist::PartitionStrategy::kBalancedDegree);
  ASSERT_LE(forced.value().skew_after, forced.value().skew_before + 1e-9);
  ExpectShardedAgreesWithSingleBox(g, single, sharded, nodes);

  // Wrong graph: rejected before any repartitioning.
  graph::Graph other = gen::ErdosRenyi(10, 20, 1);
  ASSERT_FALSE(sharded.Rebalance(other, 0.5).ok());
}

// --------------------------------------------------- reader churn

// Many readers serve batches while one shard's registry republishes
// alternating summaries of the same shard edge set mid-stream. Readers
// must see byte-identical answers throughout (lossless invariance), and
// TSan must see no races. Sequential dispatch (no pool) is the mode
// documented safe for concurrent batch callers.
TEST(ShardedServing, ConcurrentReadersSurviveShardRepublishChurn) {
  graph::Graph g = gen::ErdosRenyi(600, 3600, 47);
  CompressedGraph single = Compress(g);
  ShardedOptions options;
  options.partition.num_shards = 4;
  options.engine.config.iterations = 10;
  options.engine.config.seed = 7;
  options.parallel_dispatch = false;
  StatusOr<ShardedGraph> built = ShardedGraph::Build(g, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ShardedGraph& sharded = built.value();

  const std::vector<NodeId> nodes = AdversarialBatch(g.num_nodes(), 53);
  const BatchResult expected = CanonicalSingleBox(single, nodes);

  // Two interchangeable summaries of the churned shard, prepared before
  // the readers start so the writer loop is pure Publish.
  const std::shared_ptr<const dist::ShardManifest> manifest =
      sharded.manifest();
  graph::Graph shard_graph =
      graph::BuildShardGraph(g, manifest->node_map(), 0);
  SnapshotRegistry::Snapshot variants[2] = {
      std::make_shared<const CompressedGraph>(
          Compress(shard_graph, /*seed=*/101, /*iterations=*/3)),
      std::make_shared<const CompressedGraph>(
          Compress(shard_graph, /*seed=*/202, /*iterations=*/12)),
  };

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batches_served{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      BatchResult out;
      std::vector<uint64_t> degrees;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!sharded.NeighborsBatch(nodes, &out).ok() ||
            out.offsets != expected.offsets ||
            out.neighbors != expected.neighbors) {
          mismatches.fetch_add(1);
          break;
        }
        if (!sharded.DegreeBatch(nodes, &degrees).ok()) {
          mismatches.fetch_add(1);
          break;
        }
        batches_served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::shared_ptr<SnapshotRegistry> registry = sharded.shard_registry(0);
  for (int swap = 0; swap < 50; ++swap) {
    ASSERT_TRUE(registry->Publish(variants[swap % 2]).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Let readers overlap the final snapshot too, then stop.
  while (batches_served.load(std::memory_order_relaxed) < 8 &&
         mismatches.load() == 0) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  ASSERT_EQ(mismatches.load(), 0);
  ASSERT_GT(batches_served.load(), 0u);
}

// ------------------------------------- satellite: paged query errors

TEST(QueryErrors, InMemoryHandleNeverCounts) {
  graph::Graph g = gen::ErdosRenyi(100, 400, 3);
  CompressedGraph cg = Compress(g);
  (void)cg.Neighbors(5);
  (void)cg.Degree(5);
  ASSERT_EQ(cg.query_errors(), 0u);
  ASSERT_TRUE(cg.last_status().ok());
}

TEST(QueryErrors, PagedIoFailuresAreCountedAndLastStatusSet) {
  graph::Graph g = gen::ErdosRenyi(500, 4000, 13);
  CompressedGraph cg = Compress(g);
  const std::string path = testing::TempDir() + "/query_errors.slg2";
  ASSERT_TRUE(storage::Save(cg, path, {}).ok());

  storage::OpenOptions open;
  open.mode = storage::OpenOptions::Mode::kPaged;
  // The pread backend turns a truncated file into plain read errors;
  // mmap would SIGBUS on a fault past the new EOF.
  open.buffer.io = storage::Io::kPread;
  StatusOr<CompressedGraph> paged = storage::Open(path, open);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  ASSERT_TRUE(paged.value().paged());
  ASSERT_EQ(paged.value().query_errors(), 0u);

  // Truncate the file behind the open handle: record-page faults now
  // hit EOF. The single-query path degrades to an empty answer but the
  // counter and last_status() expose what happened.
  ASSERT_EQ(truncate(path.c_str(), 128), 0);
  NodeId victim = 0;
  while (victim < g.num_nodes() && g.Degree(victim) == 0) ++victim;
  ASSERT_LT(victim, g.num_nodes());

  const std::vector<NodeId>& answer = paged.value().Neighbors(victim);
  ASSERT_TRUE(answer.empty());
  ASSERT_GT(paged.value().query_errors(), 0u);
  ASSERT_FALSE(paged.value().last_status().ok());

  const uint64_t after_single = paged.value().query_errors();
  BatchResult out;
  ASSERT_FALSE(paged.value().NeighborsBatch({{victim}}, &out).ok());
  ASSERT_GT(paged.value().query_errors(), after_single);
  std::remove(path.c_str());
}

// --------------------------------- satellite: precomputed batch order

TEST(BatchOrder, PrecomputedIdentityOnPresortedBatchMatchesDefault) {
  graph::Graph g = gen::RMat(9, 4096, 0.57, 0.19, 0.19, /*seed=*/3);
  CompressedGraph cg = Compress(g);
  const summary::SummaryGraph& s = cg.summary();
  const std::vector<uint32_t> leaf_rank = s.forest().ComputeLeafPreorder();
  const std::vector<NodeId> nodes = AdversarialBatch(g.num_nodes(), 61);

  // Sort the batch by locality once, the way the parallel overloads do.
  summary::BatchScratch scratch;
  summary::ComputeBatchOrder(s, nodes, &scratch, &leaf_rank);
  std::vector<NodeId> sorted_nodes(nodes.size());
  for (size_t k = 0; k < nodes.size(); ++k) {
    sorted_nodes[k] = nodes[scratch.order[k]];
  }
  std::vector<uint32_t> identity(nodes.size());
  std::iota(identity.begin(), identity.end(), 0u);

  BatchResult with_sort, with_identity;
  summary::BatchScratch s1, s2;
  summary::QueryNeighborsBatch(s, sorted_nodes, &with_sort, &s1, &leaf_rank);
  summary::QueryNeighborsBatch(s, sorted_nodes, &with_identity, &s2,
                               &leaf_rank, identity);
  ASSERT_EQ(with_identity.offsets, with_sort.offsets);
  ASSERT_EQ(with_identity.neighbors, with_sort.neighbors);

  std::vector<uint64_t> deg_sort, deg_identity;
  summary::QueryDegreeBatch(s, sorted_nodes, &deg_sort, &s1, &leaf_rank);
  summary::QueryDegreeBatch(s, sorted_nodes, &deg_identity, &s2, &leaf_rank,
                            identity);
  ASSERT_EQ(deg_identity, deg_sort);
}

}  // namespace
}  // namespace slugger
