// End-to-end sweep over the shipped dataset analogs at tiny scale: the
// exact workloads the bench harness uses must summarize losslessly under
// every algorithm, and SLUGGER must respect the paper's quality trends.
#include <gtest/gtest.h>

#include <string>

#include "baselines/sags.hpp"
#include "baselines/sweg.hpp"
#include "core/slugger.hpp"
#include "gen/datasets.hpp"
#include "summary/verify.hpp"

namespace slugger {
namespace {

class DatasetSweep : public ::testing::TestWithParam<int> {
 protected:
  const gen::DatasetSpec& spec() const {
    return gen::AllDatasets()[static_cast<size_t>(GetParam())];
  }
};

TEST_P(DatasetSweep, SluggerLossless) {
  graph::Graph g = gen::GenerateDataset(spec().name, gen::Scale::kTiny, 7);
  core::SluggerConfig config;
  config.iterations = 10;
  config.seed = 7;
  core::SluggerResult r = core::Summarize(g, config);
  Status ok = summary::VerifyLossless(g, r.summary);
  ASSERT_TRUE(ok.ok()) << spec().name << ": " << ok.ToString();
  // Pruning substep 3 guarantees the cost never exceeds the flat-optimal
  // encoding of the final partition, which is at most |E|.
  EXPECT_LE(r.stats.cost, g.num_edges()) << spec().name;
}

TEST_P(DatasetSweep, SwegLossless) {
  graph::Graph g = gen::GenerateDataset(spec().name, gen::Scale::kTiny, 7);
  baselines::SwegConfig config;
  config.iterations = 10;
  config.seed = 7;
  baselines::FlatSummary s = baselines::SummarizeSweg(g, config);
  EXPECT_EQ(baselines::DecodeFlat(s), g) << spec().name;
}

TEST_P(DatasetSweep, SagsLossless) {
  graph::Graph g = gen::GenerateDataset(spec().name, gen::Scale::kTiny, 7);
  baselines::SagsConfig config;
  config.seed = 7;
  baselines::FlatSummary s = baselines::SummarizeSags(g, config);
  EXPECT_EQ(baselines::DecodeFlat(s), g) << spec().name;
}

TEST_P(DatasetSweep, HierarchyAnalogsCompressWell) {
  // The hyperlink analogs are the paper's strong-compression regime; the
  // trend (ratio well under 1/2) must hold even at tiny scale.
  const std::string& name = spec().name;
  bool hyperlink = name == "CN-syn" || name == "EU-syn" || name == "IC-syn" ||
                   name == "U2-syn" || name == "U5-syn" || name == "PR-syn";
  if (!hyperlink) GTEST_SKIP() << "trend asserted for hyperlink analogs only";
  graph::Graph g = gen::GenerateDataset(name, gen::Scale::kTiny, 7);
  core::SluggerConfig config;
  config.iterations = 15;
  config.seed = 7;
  core::SluggerResult r = core::Summarize(g, config);
  EXPECT_LT(r.stats.RelativeSize(g.num_edges()), 0.5) << name;
}

INSTANTIATE_TEST_SUITE_P(
    All16, DatasetSweep, ::testing::Range(0, 16),
    [](const ::testing::TestParamInfo<int>& info) {
      std::string name = gen::AllDatasets()[info.param].name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace slugger
