// Tests for the encoding universes, the exact solver, and the memo table.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "core/encoding_solver.hpp"
#include "core/encoding_universe.hpp"
#include "core/memo_table.hpp"
#include "util/random.hpp"

namespace slugger::core {
namespace {

// ------------------------------------------------------------ universes
TEST(Universe, Case1FullShapeStructure) {
  const Universe& u = GetCase1Universe(SideShape::kInt00, SideShape::kInt00);
  EXPECT_EQ(u.kind, Universe::Kind::kCase1);
  // All 4 units present and non-singleton: all 10 classes active.
  EXPECT_EQ(u.active_mask, 0x3FF);
  // (M, M) must be a legal slot covering everything.
  int mm = u.SlotIdFor(kM, kM);
  ASSERT_GE(mm, 0);
  EXPECT_EQ(u.slots[mm].cover, 0x3FF);
  // Nested pairs are not slots.
  EXPECT_LT(u.SlotIdFor(kM, kA), 0);
  EXPECT_LT(u.SlotIdFor(kA, kA1), 0);
  EXPECT_LT(u.SlotIdFor(kM, kB2), 0);
  // Cross-side and sibling pairs are slots.
  EXPECT_GE(u.SlotIdFor(kA, kB), 0);
  EXPECT_GE(u.SlotIdFor(kA1, kB2), 0);
  EXPECT_GE(u.SlotIdFor(kA1, kA2), 0);
  EXPECT_GE(u.SlotIdFor(kA, kA), 0);  // self-loops allowed
}

TEST(Universe, Case1LeafShapes) {
  const Universe& u = GetCase1Universe(SideShape::kLeaf, SideShape::kLeaf);
  // Units: A (singleton), B (singleton): only the cross class is active.
  EXPECT_EQ(u.active_mask, 1u << Case1ClassIndex(0, 2));
  // Slots: (A,B) and (M,M) at least; self-loops on singletons are useless.
  EXPECT_GE(u.SlotIdFor(kA, kB), 0);
  EXPECT_GE(u.SlotIdFor(kM, kM), 0);
  EXPECT_LT(u.SlotIdFor(kA, kA), 0);
  EXPECT_LT(u.SlotIdFor(kA1, kA2), 0);  // absent nodes
}

TEST(Universe, Case1SingletonChildClasses) {
  // A internal with both children singleton: self classes of units 0,1
  // are empty; the sibling class (0,1) is active.
  const Universe& u = GetCase1Universe(SideShape::kInt11, SideShape::kLeaf);
  EXPECT_FALSE(u.active_mask & (1u << Case1ClassIndex(0, 0)));
  EXPECT_FALSE(u.active_mask & (1u << Case1ClassIndex(1, 1)));
  EXPECT_TRUE(u.active_mask & (1u << Case1ClassIndex(0, 1)));
  EXPECT_TRUE(u.active_mask & (1u << Case1ClassIndex(0, 2)));
}

TEST(Universe, Case2Structure) {
  const Universe& u = GetCase2Universe(true, true, true);
  EXPECT_EQ(u.kind, Universe::Kind::kCase2);
  EXPECT_EQ(u.active_mask, 0xFF);  // 4 m-units x 2 c-units
  // 7 m-side nodes x 3 c-side nodes, all legal.
  EXPECT_EQ(u.slots.size(), 21u);
  int mc = u.SlotIdFor(kM, kC);
  ASSERT_GE(mc, 0);
  EXPECT_EQ(u.slots[mc].cover, 0xFF);
  int a1c2 = u.SlotIdFor(kA1, kC2);
  ASSERT_GE(a1c2, 0);
  EXPECT_EQ(u.slots[a1c2].cover,
            1u << Case2ClassIndex(0, 1));
}

TEST(Universe, Case2LeafC) {
  const Universe& u = GetCase2Universe(false, false, false);
  // m-units: A, B; c-unit: C -> 2 active classes.
  EXPECT_EQ(u.active_mask,
            (1u << Case2ClassIndex(0, 0)) | (1u << Case2ClassIndex(2, 0)));
  // Nodes: M, A, B on the m-side; C on the c-side -> 3 slots.
  EXPECT_EQ(u.slots.size(), 3u);
}

TEST(Universe, CodesAreUnique) {
  std::set<uint8_t> codes;
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 5; ++b) {
      EXPECT_TRUE(codes
                      .insert(GetCase1Universe(static_cast<SideShape>(a),
                                               static_cast<SideShape>(b))
                                  .code)
                      .second);
    }
  }
  for (int bits = 0; bits < 8; ++bits) {
    EXPECT_TRUE(
        codes.insert(GetCase2Universe(bits & 4, bits & 2, bits & 1).code)
            .second);
  }
}

// --------------------------------------------------------------- solver
/// Applies a solved encoding and checks it reproduces `target` exactly on
/// active classes.
void ExpectCoverageMatches(const Universe& u, const SolvedEncoding& enc,
                           const int8_t* target) {
  ASSERT_TRUE(enc.feasible);
  int sum[16] = {0};
  for (auto [slot, sign] : enc.edges) {
    for (int c = 0; c < u.num_classes; ++c) {
      if (u.slots[slot].cover >> c & 1) sum[c] += sign;
    }
  }
  for (int c = 0; c < u.num_classes; ++c) {
    if (u.active_mask >> c & 1) {
      EXPECT_EQ(sum[c], target[c]) << "class " << c;
    }
  }
}

TEST(Solver, ZeroTargetIsEmpty) {
  const Universe& u = GetCase1Universe(SideShape::kInt00, SideShape::kInt00);
  int8_t target[16] = {0};
  SolvedEncoding enc = SolveMinimumEncoding(u, target);
  ASSERT_TRUE(enc.feasible);
  EXPECT_EQ(enc.cost(), 0);
}

TEST(Solver, AllOnesUsesSingleSelfLoop) {
  // Target 1 on every class: the (M, M) self-loop alone covers it.
  const Universe& u = GetCase1Universe(SideShape::kInt00, SideShape::kInt00);
  int8_t target[16];
  std::memset(target, 0, sizeof(target));
  for (int c = 0; c < 10; ++c) target[c] = 1;
  SolvedEncoding enc = SolveMinimumEncoding(u, target);
  ASSERT_TRUE(enc.feasible);
  EXPECT_EQ(enc.cost(), 1);
  EXPECT_EQ(u.slots[enc.edges[0].first].p, kM);
  ExpectCoverageMatches(u, enc, target);
}

TEST(Solver, AllButOneUsesNegativeEdge) {
  // All classes 1 except one: (M,M) plus one n-edge beats 9 identity edges.
  const Universe& u = GetCase1Universe(SideShape::kInt00, SideShape::kInt00);
  int8_t target[16];
  std::memset(target, 0, sizeof(target));
  for (int c = 0; c < 10; ++c) target[c] = 1;
  target[Case1ClassIndex(0, 2)] = 0;  // drop class (A1, B1)
  SolvedEncoding enc = SolveMinimumEncoding(u, target);
  ASSERT_TRUE(enc.feasible);
  EXPECT_EQ(enc.cost(), 2);
  ExpectCoverageMatches(u, enc, target);
}

TEST(Solver, CrossSideBipartite) {
  // All 4 cross classes set, within-side classes zero: one (A, B) edge.
  const Universe& u = GetCase1Universe(SideShape::kInt00, SideShape::kInt00);
  int8_t target[16];
  std::memset(target, 0, sizeof(target));
  for (int i : {0, 1}) {
    for (int j : {2, 3}) target[Case1ClassIndex(i, j)] = 1;
  }
  SolvedEncoding enc = SolveMinimumEncoding(u, target);
  ASSERT_TRUE(enc.feasible);
  EXPECT_EQ(enc.cost(), 1);
  const Slot& s = u.slots[enc.edges[0].first];
  EXPECT_EQ(static_cast<int>(s.p), kA);
  EXPECT_EQ(static_cast<int>(s.q), kB);
}

TEST(Solver, MatchesBruteForceRandomTargets) {
  // Exhaustive cross-check on random {0,1} targets across several shapes.
  Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    const Universe& u = GetCase1Universe(
        static_cast<SideShape>(rng.Below(5)),
        static_cast<SideShape>(rng.Below(5)));
    int8_t target[16];
    std::memset(target, 0, sizeof(target));
    for (int c = 0; c < u.num_classes; ++c) {
      if (u.active_mask >> c & 1) {
        target[c] = static_cast<int8_t>(rng.Below(2));
      }
    }
    SolvedEncoding fast = SolveMinimumEncoding(u, target);
    SolvedEncoding slow = SolveByBruteForce(u, target, 4);
    ASSERT_TRUE(fast.feasible);
    if (slow.feasible) {
      EXPECT_EQ(fast.cost(), slow.cost()) << "trial " << trial;
    } else {
      EXPECT_GT(fast.cost(), 4);
    }
    ExpectCoverageMatches(u, fast, target);
  }
}

TEST(Solver, Case2MatchesBruteForce) {
  Rng rng(123);
  for (int trial = 0; trial < 60; ++trial) {
    const Universe& u =
        GetCase2Universe(rng.Chance(0.5), rng.Chance(0.5), rng.Chance(0.5));
    int8_t target[16];
    std::memset(target, 0, sizeof(target));
    for (int c = 0; c < u.num_classes; ++c) {
      if (u.active_mask >> c & 1) {
        target[c] = static_cast<int8_t>(rng.Below(2));
      }
    }
    SolvedEncoding fast = SolveMinimumEncoding(u, target);
    SolvedEncoding slow = SolveByBruteForce(u, target, 4);
    ASSERT_TRUE(fast.feasible);
    if (slow.feasible) {
      EXPECT_EQ(fast.cost(), slow.cost()) << "trial " << trial;
    }
    ExpectCoverageMatches(u, fast, target);
  }
}

TEST(Solver, HandlesNegativeTargets) {
  // Re-encoding can demand net negative coverage on a class.
  const Universe& u = GetCase2Universe(true, false, false);
  int8_t target[16];
  std::memset(target, 0, sizeof(target));
  target[Case2ClassIndex(0, 0)] = -1;
  SolvedEncoding enc = SolveMinimumEncoding(u, target);
  ASSERT_TRUE(enc.feasible);
  EXPECT_EQ(enc.cost(), 1);
  EXPECT_EQ(enc.edges[0].second, -1);
  ExpectCoverageMatches(u, enc, target);
}

// ----------------------------------------------------------------- memo
TEST(MemoTable, CachesSolutions) {
  MemoTable table;
  const Universe& u = GetCase1Universe(SideShape::kLeaf, SideShape::kLeaf);
  int8_t target[16] = {0};
  target[Case1ClassIndex(0, 2)] = 1;
  const SolvedEncoding& first = table.Solve(u, target);
  EXPECT_TRUE(first.feasible);
  EXPECT_EQ(first.cost(), 1);
  size_t count = table.entry_count();
  table.Solve(u, target);
  EXPECT_EQ(table.entry_count(), count);  // cache hit
}

TEST(MemoTable, WarmUpEnumeratesAllBinaryTargets) {
  MemoTable table;
  size_t added = table.WarmUp();
  // 25 case-1 shapes with up to 2^10 targets + 8 case-2 shapes with up to
  // 2^8 targets; shared keys reduce the raw sum.
  EXPECT_GT(added, 5000u);
  EXPECT_GT(table.ApproxBytes(), 10000u);
  // The paper reports the memoized table at roughly 56 KB; ours should be
  // the same order of magnitude (well under 10 MB).
  EXPECT_LT(table.ApproxBytes(), 10u << 20);
}

TEST(MemoTable, GlobalSingletonStable) {
  MemoTable& a = MemoTable::Global();
  MemoTable& b = MemoTable::Global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace slugger::core
