// Robustness and failure-injection tests: malformed inputs must produce
// Status errors (never crashes or silent corruption), and long random
// operation sequences must keep every invariant intact.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>

#include "baselines/flat_model.hpp"
#include "core/merge_planner.hpp"
#include "core/pruning.hpp"
#include "core/slugger.hpp"
#include "core/slugger_state.hpp"
#include "gen/generators.hpp"
#include "graph/graph_io.hpp"
#include "summary/decode.hpp"
#include "summary/neighbor_query.hpp"
#include "summary/serialize.hpp"
#include "summary/verify.hpp"
#include "util/random.hpp"

namespace slugger {
namespace {

// ------------------------------------------------ deserialization fuzz
TEST(Fuzz, DeserializeSummaryNeverCrashesOnRandomBytes) {
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    size_t len = rng.Below(200);
    std::string bytes;
    bytes.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Below(256)));
    }
    auto result = summary::DeserializeSummary(bytes);
    // Random bytes essentially never form a valid summary; the point is
    // that the call returns instead of crashing or allocating wildly.
    if (result.ok()) {
      EXPECT_LE(result.value().num_leaves(), 0xFFFFFFFEu);
    }
  }
}

TEST(Fuzz, DeserializeMutatedValidBuffer) {
  // Start from a valid buffer and apply random mutations; every outcome
  // must be either a clean error or a structurally valid summary.
  graph::Graph g = gen::Caveman(3, 6, 0.1, 1);
  summary::SummaryGraph s(g.num_nodes());
  s.InitFromEdges(g.Edges());
  s.Merge(0, 1);
  std::string base = summary::SerializeSummary(s);

  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = base;
    int flips = 1 + static_cast<int>(rng.Below(4));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.Below(mutated.size());
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << rng.Below(8)));
    }
    auto result = summary::DeserializeSummary(mutated);
    if (result.ok()) {
      // If it parsed, decoding must not crash either.
      graph::Graph decoded = summary::Decode(result.value());
      EXPECT_LE(decoded.num_nodes(), 0xFFFFFFFEu);
    }
  }
}

TEST(Fuzz, GraphBinaryLoaderOnRandomBytes) {
  Rng rng(5);
  std::string path = "/tmp/slugger_fuzz_graph.bin";
  for (int trial = 0; trial < 100; ++trial) {
    size_t len = rng.Below(300);
    std::string bytes;
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Below(256)));
    }
    {
      std::ofstream out(path, std::ios::binary);
      out << bytes;
    }
    auto result = graph::LoadBinary(path);
    (void)result;  // must simply not crash; usually a Corruption status
  }
  std::remove(path.c_str());
}

// --------------------------------------------- long-sequence invariants
TEST(Invariants, RandomMergeSequencesKeepAggregatesAndSemantics) {
  // Hundreds of random planner-driven merges with full aggregate
  // validation and losslessness checks along the way.
  for (uint64_t seed : {11ull, 22ull}) {
    graph::Graph g = gen::DuplicationDivergence(120, 2, 0.4, 0.7, seed);
    core::SluggerState state(g);
    core::MergePlanner planner(&state);
    Rng rng(seed);
    int checked = 0;
    for (int step = 0; step < 60 && state.roots().size() > 2; ++step) {
      SupernodeId a = state.roots()[rng.Below(state.roots().size())];
      SupernodeId b = state.roots()[rng.Below(state.roots().size())];
      if (a == b) continue;
      core::MergePlan plan = planner.Evaluate(a, b);
      ASSERT_TRUE(plan.valid);
      planner.Commit(plan);
      if (step % 10 == 0) {
        ASSERT_TRUE(state.ValidateAggregates()) << "seed " << seed;
        ASSERT_TRUE(summary::VerifyLossless(g, state.summary()).ok())
            << "seed " << seed << " step " << step;
        ++checked;
      }
    }
    EXPECT_GT(checked, 0);
  }
}

TEST(Invariants, PruningAfterArbitraryMergesStaysLossless) {
  // Even deliberately bad merge sequences (random pairs, not greedy) must
  // survive pruning losslessly.
  for (uint64_t seed : {5ull, 9ull, 13ull}) {
    graph::Graph g = gen::ErdosRenyi(80, 300, seed);
    core::SluggerState state(g);
    core::MergePlanner planner(&state);
    Rng rng(seed);
    for (int step = 0; step < 25; ++step) {
      SupernodeId a = state.roots()[rng.Below(state.roots().size())];
      SupernodeId b = state.roots()[rng.Below(state.roots().size())];
      if (a == b) continue;
      planner.Commit(planner.Evaluate(a, b));
    }
    core::PruneOptions opt;
    opt.rounds = 3;
    core::PruneSummary(&state.summary(), g, opt);
    ASSERT_TRUE(summary::VerifyLossless(g, state.summary()).ok())
        << "seed " << seed;
  }
}

TEST(Invariants, NeighborQueryMatchesDecodeOnRealSummaries) {
  // Partial decompression equals full decode on genuine SLUGGER outputs
  // (hand-built summaries are covered in summary_model_test).
  for (uint64_t seed : {3ull, 4ull}) {
    graph::Graph g = gen::Affiliation(200, 80, 3, 7, seed);
    core::SluggerConfig config;
    config.iterations = 10;
    config.seed = seed;
    core::SluggerResult r = core::Summarize(g, config);
    graph::Graph decoded = summary::Decode(r.summary);
    ASSERT_EQ(decoded, g);
    summary::NeighborQuery query(r.summary);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      std::vector<NodeId> got = query.Neighbors(u);
      std::sort(got.begin(), got.end());
      auto want = g.Neighbors(u);
      ASSERT_EQ(got.size(), want.size()) << "node " << u;
      EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
    }
  }
}

TEST(Invariants, SummaryRoundTripAfterFullPipeline) {
  // Summarize -> serialize -> reload -> decode == input, across configs.
  graph::Graph g = gen::WattsStrogatz(150, 6, 0.15, 21);
  for (uint32_t hb : {0u, 3u}) {
    core::SluggerConfig config;
    config.iterations = 8;
    config.max_height = hb;
    core::SluggerResult r = core::Summarize(g, config);
    std::string buffer = summary::SerializeSummary(r.summary);
    auto reloaded = summary::DeserializeSummary(buffer);
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    EXPECT_TRUE(summary::VerifyLossless(g, reloaded.value()).ok());
    EXPECT_EQ(reloaded.value().Cost(), r.summary.Cost());
  }
}

// ------------------------------------------------------- flat-model fuzz
TEST(Fuzz, FlatEncodeDecodeRandomPartitions) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    graph::Graph g = gen::ErdosRenyi(60, 50 + rng.Below(300), trial);
    uint32_t k = 1 + static_cast<uint32_t>(rng.Below(12));
    std::vector<uint32_t> groups(g.num_nodes());
    for (auto& v : groups) v = static_cast<uint32_t>(rng.Below(k));
    baselines::FlatSummary s = baselines::EncodePartition(g, groups, k);
    ASSERT_EQ(baselines::DecodeFlat(s), g) << "trial " << trial;
    // Optimal encode can never exceed the trivial all-corrections cost.
    EXPECT_LE(s.Cost(), g.num_edges());
  }
}

}  // namespace
}  // namespace slugger
