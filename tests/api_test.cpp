// Tests for the service-grade facade (slugger::Engine +
// slugger::CompressedGraph): option validation returns InvalidArgument
// instead of asserting, the progress observer fires exactly `iterations`
// times under every merge engine, cooperative cancellation still yields a
// lossless summary, concurrent Neighbors()/Degree() readers with private
// scratches agree with the sequential answers (run under TSan in CI), and
// summaries round-trip through CompressedGraph Save/Load.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "gen/generators.hpp"
#include "graph/graph.hpp"

namespace slugger {
namespace {

graph::Graph TestGraph(uint64_t seed = 3) {
  return gen::ErdosRenyi(500, 2500, seed);
}

/// The three concrete engines; every facade behavior must hold for all.
struct EngineCase {
  MergeEngine engine;
  uint32_t threads;
  const char* name;
};
const EngineCase kEngineCases[] = {
    {MergeEngine::kSequential, 1, "sequential"},
    {MergeEngine::kRoundBased, 2, "round-based"},
    {MergeEngine::kAsync, 2, "async"},
};

EngineOptions OptionsFor(const EngineCase& c, uint32_t iterations = 6) {
  EngineOptions options;
  options.config.iterations = iterations;
  options.config.seed = 7;
  options.config.engine = c.engine;
  options.config.num_threads = c.threads;
  return options;
}

// ------------------------------------------------------------ validation
TEST(EngineOptions, DefaultOptionsAreValid) {
  EXPECT_TRUE(EngineOptions{}.Validate().ok());
}

TEST(EngineOptions, ZeroIterationsIsInvalidArgument) {
  EngineOptions options;
  options.config.iterations = 0;
  Status s = options.Validate();
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

TEST(EngineOptions, TinyGroupSizeIsInvalidArgument) {
  EngineOptions options;
  options.config.max_group_size = 1;
  EXPECT_EQ(options.Validate().code(), Status::Code::kInvalidArgument);
  options.config.max_group_size = 0;
  EXPECT_EQ(options.Validate().code(), Status::Code::kInvalidArgument);
}

TEST(EngineOptions, OutOfRangeEngineEnumIsInvalidArgument) {
  EngineOptions options;
  options.config.engine = static_cast<MergeEngine>(250);
  EXPECT_EQ(options.Validate().code(), Status::Code::kInvalidArgument);
}

TEST(Engine, SummarizeReportsInvalidOptionsInsteadOfAsserting) {
  EngineOptions options;
  options.config.iterations = 0;
  Engine engine(options);
  EXPECT_FALSE(engine.status().ok());
  StatusOr<CompressedGraph> result = engine.Summarize(TestGraph());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
  // The failure is stable across calls (the service can keep probing).
  EXPECT_EQ(engine.Summarize(TestGraph()).status().code(),
            Status::Code::kInvalidArgument);
}

// -------------------------------------------------------------- progress
TEST(Engine, ProgressFiresExactlyIterationsTimesUnderEveryEngine) {
  graph::Graph g = TestGraph();
  for (const EngineCase& c : kEngineCases) {
    SCOPED_TRACE(c.name);
    constexpr uint32_t kIterations = 6;
    Engine engine(OptionsFor(c, kIterations));
    std::vector<ProgressEvent> events;
    RunOptions run;
    run.progress = [&](const ProgressEvent& e) { events.push_back(e); };
    StatusOr<CompressedGraph> result = engine.Summarize(g, run);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(events.size(), kIterations);
    for (uint32_t i = 0; i < kIterations; ++i) {
      EXPECT_EQ(events[i].iteration, i + 1);
      EXPECT_EQ(events[i].total_iterations, kIterations);
      EXPECT_GT(events[i].p_count + events[i].n_count + events[i].h_count,
                0u);
      EXPECT_GE(events[i].elapsed_seconds, 0.0);
      if (i > 0) {
        EXPECT_GE(events[i].merges, events[i - 1].merges);
        EXPECT_GE(events[i].elapsed_seconds, events[i - 1].elapsed_seconds);
      }
    }
    EXPECT_TRUE(result.value().Verify(g).ok());
  }
}

// ---------------------------------------------------------- cancellation
TEST(Engine, CancellationMidRunStillYieldsLosslessSummary) {
  graph::Graph g = TestGraph();
  for (const EngineCase& c : kEngineCases) {
    SCOPED_TRACE(c.name);
    Engine engine(OptionsFor(c, /*iterations=*/20));
    CancelToken cancel;
    uint32_t fired = 0;
    RunOptions run;
    run.cancel = &cancel;
    run.progress = [&](const ProgressEvent& e) {
      ++fired;
      if (e.iteration == 2) cancel.Cancel();
    };
    StatusOr<CompressedGraph> result = engine.Summarize(g, run);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_LT(fired, 20u);  // the run really did stop early
    EXPECT_TRUE(result.value().Verify(g).ok());
  }
}

TEST(Engine, PreCancelledTokenReturnsTheIdentitySummary) {
  graph::Graph g = TestGraph();
  for (const EngineCase& c : kEngineCases) {
    SCOPED_TRACE(c.name);
    Engine engine(OptionsFor(c));
    CancelToken cancel;
    cancel.Cancel();
    RunOptions run;
    run.cancel = &cancel;
    bool progressed = false;
    run.progress = [&](const ProgressEvent&) { progressed = true; };
    StatusOr<CompressedGraph> result = engine.Summarize(g, run);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(progressed);
    // Even the never-merged initial state is a lossless representation.
    EXPECT_TRUE(result.value().Verify(g).ok());
  }
}

// ------------------------------------------------------- engine lifetime
TEST(Engine, PersistentPoolIsReusedAcrossRuns) {
  EngineOptions options;
  options.config.iterations = 4;
  options.config.num_threads = 2;
  Engine engine(options);
  EXPECT_EQ(engine.num_threads(), 2u);
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    graph::Graph g = TestGraph(seed);
    StatusOr<CompressedGraph> result = engine.Summarize(g);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().Verify(g, engine.pool()).ok()) << seed;
  }
}

// ------------------------------------------------------------ query path
TEST(CompressedGraph, DegreeMatchesNeighborsSize) {
  graph::Graph g = TestGraph();
  Engine engine(OptionsFor(kEngineCases[0]));
  StatusOr<CompressedGraph> result = engine.Summarize(g);
  ASSERT_TRUE(result.ok());
  const CompressedGraph& cg = result.value();
  QueryScratch scratch;
  for (NodeId v = 0; v < cg.num_nodes(); ++v) {
    size_t expected = cg.Neighbors(v, &scratch).size();
    EXPECT_EQ(cg.Degree(v, &scratch), expected) << "node " << v;
    EXPECT_EQ(g.Degree(v), expected) << "node " << v;  // lossless queries
  }
}

TEST(CompressedGraph, ConcurrentNeighborsAgreeWithSequentialAnswers) {
  graph::Graph g = gen::ErdosRenyi(600, 2400, 11);
  Engine engine(OptionsFor(kEngineCases[1], /*iterations=*/10));
  StatusOr<CompressedGraph> result = engine.Summarize(g);
  ASSERT_TRUE(result.ok());
  const CompressedGraph& cg = result.value();

  // Sequential ground truth, canonicalized.
  std::vector<std::vector<NodeId>> expected(cg.num_nodes());
  QueryScratch scratch;
  for (NodeId v = 0; v < cg.num_nodes(); ++v) {
    expected[v] = cg.Neighbors(v, &scratch);
    std::sort(expected[v].begin(), expected[v].end());
  }

  // 8 readers over the SAME CompressedGraph, each with its own scratch,
  // all querying every node. TSan-checked in CI.
  constexpr unsigned kReaders = 8;
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (unsigned r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      QueryScratch local;
      // Stagger start nodes so readers collide on different summary
      // regions at any instant.
      NodeId start = static_cast<NodeId>(r * cg.num_nodes() / kReaders);
      for (NodeId i = 0; i < cg.num_nodes(); ++i) {
        NodeId v = (start + i) % cg.num_nodes();
        std::vector<NodeId> got = cg.Neighbors(v, &local);
        std::sort(got.begin(), got.end());
        if (got != expected[v]) mismatches.fetch_add(1);
        if (cg.Degree(v, &local) != expected[v].size()) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

// ------------------------------------------------------------ round trip
// The legacy quartet is deprecated in favor of slugger::storage, but it
// must keep working verbatim; these tests pin that, so silence the
// self-inflicted warnings.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(CompressedGraph, SaveLoadRoundTripsThroughTheFacade) {
  graph::Graph g = TestGraph();
  Engine engine(OptionsFor(kEngineCases[0]));
  StatusOr<CompressedGraph> result = engine.Summarize(g);
  ASSERT_TRUE(result.ok());
  const CompressedGraph& cg = result.value();

  std::string path = testing::TempDir() + "/api_roundtrip.summary";
  ASSERT_TRUE(cg.Save(path).ok());
  StatusOr<CompressedGraph> loaded = CompressedGraph::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().stats().cost, cg.stats().cost);
  EXPECT_EQ(loaded.value().num_nodes(), cg.num_nodes());
  EXPECT_TRUE(loaded.value().Verify(g).ok());
  EXPECT_TRUE(loaded.value().Decode() == g);

  // In-memory round trip and corruption reporting.
  std::string buffer = cg.Serialize();
  StatusOr<CompressedGraph> parsed = CompressedGraph::Deserialize(buffer);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().stats().cost, cg.stats().cost);
  buffer.resize(buffer.size() / 2);
  EXPECT_FALSE(CompressedGraph::Deserialize(buffer).ok());
}

TEST(CompressedGraph, LoadOfMissingFileIsAnError) {
  StatusOr<CompressedGraph> loaded =
      CompressedGraph::Load(testing::TempDir() + "/definitely_absent.summary");
  EXPECT_FALSE(loaded.ok());
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace slugger
