// Corruption-matrix tests for the untrusted-input surface (ISSUE 4): a
// hostile or damaged summary file must produce a Status error — never a
// crash, out-of-range id, or huge allocation — and out-of-range node ids
// must be absorbed at the CompressedGraph boundary. The whole suite runs
// under ASan+UBSan in CI, so "no crash" is checked with teeth.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/engine.hpp"
#include "gen/generators.hpp"
#include "storage/format.hpp"
#include "storage/storage.hpp"
#include "summary/serialize.hpp"
#include "util/types.hpp"
#include "util/varint.hpp"

namespace slugger {
namespace {

/// One real summary buffer shared by the matrix tests: small enough that
/// exhaustive truncation/bit-flip sweeps stay fast, rich enough to have
/// internal supernodes and both edge signs.
const std::string& RealSummaryBuffer() {
  static const std::string buffer = [] {
    gen::PlantedHierarchyOptions opt;
    opt.branching = 3;
    opt.depth = 2;
    opt.leaf_size = 6;
    opt.leaf_density = 0.9;
    opt.pair_link_prob = 0.5;
    opt.pair_link_decay = 0.2;
    graph::Graph g = gen::PlantedHierarchy(opt, /*seed=*/5);
    EngineOptions options;
    options.config.iterations = 8;
    options.config.seed = 5;
    Engine engine(options);
    StatusOr<CompressedGraph> compressed = engine.Summarize(g);
    EXPECT_TRUE(compressed.ok());
    storage::SaveOptions v1;
    v1.format = storage::Format::kMonolithicV1;
    StatusOr<std::string> bytes = storage::Serialize(compressed.value(), v1);
    EXPECT_TRUE(bytes.ok());
    return std::move(bytes).value();
  }();
  return buffer;
}

/// The same summary as a paged v2 image with the smallest legal pages, so
/// the sweeps cover header, page-table, locator, rank/leaf_at, and record
/// pages in a file small enough for exhaustive corruption.
const std::string& RealPagedBuffer() {
  static const std::string buffer = [] {
    storage::OpenOptions in_memory;
    in_memory.mode = storage::OpenOptions::Mode::kInMemory;
    StatusOr<CompressedGraph> cg =
        storage::OpenBuffer(RealSummaryBuffer(), in_memory);
    EXPECT_TRUE(cg.ok());
    storage::SaveOptions save;
    save.page_size = storage::kMinPageSize;
    StatusOr<std::string> bytes = storage::Serialize(cg.value(), save);
    EXPECT_TRUE(bytes.ok());
    return std::move(bytes).value();
  }();
  return buffer;
}

/// A parse that unexpectedly succeeds must still yield a usable summary:
/// exercise the full query surface so ASan sees any latent corruption.
void ExpectServable(const CompressedGraph& cg) {
  QueryScratch scratch;
  for (NodeId v = 0; v < cg.num_nodes(); ++v) {
    EXPECT_EQ(cg.Degree(v, &scratch), cg.Neighbors(v, &scratch).size());
  }
}

// ------------------------------------------------------------ truncation
TEST(CorruptionMatrix, EveryTruncationIsAnErrorNeverACrash) {
  const std::string& buffer = RealSummaryBuffer();
  ASSERT_GT(buffer.size(), 16u);
  for (size_t len = 0; len < buffer.size(); ++len) {
    StatusOr<summary::SummaryGraph> parsed =
        summary::DeserializeSummary(buffer.substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix of " << len << " bytes parsed";
  }
}

// -------------------------------------------------------------- bit flips
TEST(CorruptionMatrix, EveryBitFlipIsRejectedOrStillServable) {
  const std::string& buffer = RealSummaryBuffer();
  size_t accepted = 0;
  for (size_t i = 0; i < buffer.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = buffer;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      storage::OpenOptions in_memory;
      in_memory.mode = storage::OpenOptions::Mode::kInMemory;
      StatusOr<CompressedGraph> parsed =
          storage::OpenBuffer(std::move(flipped), in_memory);
      if (parsed.ok()) {
        // e.g. a flipped superedge sign still describes a valid summary —
        // of a different graph. It must serve queries without tripping
        // the sanitizers.
        ++accepted;
        ExpectServable(parsed.value());
      }
    }
  }
  // The format has no checksum, so some flips survive; most must not.
  EXPECT_LT(accepted, buffer.size());
}

// ------------------------------------------------------- oversized counts
std::string Header(uint64_t magic, uint64_t version) {
  std::string out;
  PutVarint64(&out, magic);
  PutVarint64(&out, version);
  return out;
}

/// The real magic/version, recovered from a genuine buffer so these tests
/// need no access to the private constants.
std::string ValidHeader() {
  const std::string& buffer = RealSummaryBuffer();
  VarintReader reader(buffer);
  uint64_t magic = 0, version = 0;
  EXPECT_TRUE(reader.Get(&magic).ok());
  EXPECT_TRUE(reader.Get(&version).ok());
  return Header(magic, version);
}

TEST(CorruptionMatrix, HugeLeafCountIsRejectedBeforeAllocating) {
  for (uint64_t leaves :
       {uint64_t{kMaxNodes} + 1, uint64_t{1} << 40, uint64_t{1} << 62,
        ~uint64_t{0}}) {
    std::string buf = ValidHeader();
    PutVarint64(&buf, leaves);
    PutVarint64(&buf, 0);  // num_internal
    PutVarint64(&buf, 0);  // num_edges
    StatusOr<summary::SummaryGraph> parsed = summary::DeserializeSummary(buf);
    ASSERT_FALSE(parsed.ok()) << "leaves=" << leaves;
    EXPECT_EQ(parsed.status().code(), Status::Code::kInvalidArgument);
  }
}

TEST(CorruptionMatrix, LeafCountAtTheEngineLimitRoundTrips) {
  // The deserializer's bound must not reject what the engine can emit;
  // probing the exact limit with a real allocation would need gigabytes,
  // so check the boundary predicate from below with a small file.
  std::string buf = ValidHeader();
  PutVarint64(&buf, 1000);
  PutVarint64(&buf, 0);
  PutVarint64(&buf, 0);
  StatusOr<summary::SummaryGraph> parsed = summary::DeserializeSummary(buf);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().num_leaves(), 1000u);
}

TEST(CorruptionMatrix, HugeInternalCountIsRejectedBeforeAllocating) {
  // Structurally plausible (n - 1 internal nodes for n leaves) but far
  // larger than the remaining handful of bytes could ever encode.
  std::string buf = ValidHeader();
  PutVarint64(&buf, uint64_t{1} << 30);        // num_leaves (within range)
  PutVarint64(&buf, (uint64_t{1} << 30) - 1);  // num_internal
  StatusOr<summary::SummaryGraph> parsed = summary::DeserializeSummary(buf);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Status::Code::kInvalidArgument);
}

TEST(CorruptionMatrix, HugeChildCountIsRejectedBeforeAllocating) {
  std::string buf = ValidHeader();
  PutVarint64(&buf, 10);           // num_leaves
  PutVarint64(&buf, 1);            // num_internal
  PutVarint64(&buf, uint64_t{1} << 60);  // num_children of the first node
  StatusOr<summary::SummaryGraph> parsed = summary::DeserializeSummary(buf);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Status::Code::kInvalidArgument);
}

TEST(CorruptionMatrix, HugeEdgeCountIsRejected) {
  std::string buf = ValidHeader();
  PutVarint64(&buf, 10);  // num_leaves
  PutVarint64(&buf, 0);   // num_internal
  PutVarint64(&buf, uint64_t{1} << 60);  // num_edges
  StatusOr<summary::SummaryGraph> parsed = summary::DeserializeSummary(buf);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Status::Code::kInvalidArgument);
}

TEST(CorruptionMatrix, WrappingDeltasAreRejected) {
  {
    // Child delta chosen to wrap the running child id back into range.
    std::string buf = ValidHeader();
    PutVarint64(&buf, 10);  // num_leaves
    PutVarint64(&buf, 1);   // num_internal
    PutVarint64(&buf, 2);   // num_children
    PutVarint64(&buf, 1);   // child 1
    PutVarint64(&buf, ~uint64_t{0});  // child delta: would wrap to 0
    EXPECT_FALSE(summary::DeserializeSummary(buf).ok());
  }
  {
    // Superedge endpoint delta with the same wrap construction.
    std::string buf = ValidHeader();
    PutVarint64(&buf, 10);  // num_leaves
    PutVarint64(&buf, 0);   // num_internal
    PutVarint64(&buf, 1);   // num_edges
    PutVarint64(&buf, ~uint64_t{0});  // a-delta
    PutVarint64(&buf, 3);             // packed b-delta + sign
    EXPECT_FALSE(summary::DeserializeSummary(buf).ok());
  }
}

TEST(CorruptionMatrix, BadMagicAndVersionAreRejected) {
  const std::string& good = RealSummaryBuffer();
  VarintReader reader(good);
  uint64_t magic = 0, version = 0;
  ASSERT_TRUE(reader.Get(&magic).ok());
  ASSERT_TRUE(reader.Get(&version).ok());

  std::string bad_magic = Header(magic ^ 1, version);
  PutVarint64(&bad_magic, 10);
  EXPECT_FALSE(summary::DeserializeSummary(bad_magic).ok());

  std::string bad_version = Header(magic, version + 1);
  PutVarint64(&bad_version, 10);
  EXPECT_FALSE(summary::DeserializeSummary(bad_version).ok());

  EXPECT_FALSE(summary::DeserializeSummary("").ok());
  EXPECT_FALSE(summary::DeserializeSummary("not a summary at all").ok());
}

// ------------------------------------------------- paged format (v2)
// The paged matrix has two layers of defense: the header and page-table
// checksums reject damage at open, and per-page checksums reject damage
// in data pages lazily, at the first query that touches them. Either
// way: a Status, never a crash (this whole file runs under ASan+UBSan).

/// Drives the full query surface of a possibly-damaged paged handle; all
/// errors must surface as Status / empty answers.
void ExpectNoCrashServing(const CompressedGraph& cg) {
  QueryScratch scratch;
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < cg.num_nodes(); ++v) {
    EXPECT_EQ(cg.Degree(v, &scratch), cg.Neighbors(v, &scratch).size());
    nodes.push_back(v);
  }
  BatchResult result;
  BatchScratch batch_scratch;
  (void)cg.NeighborsBatch(nodes, &result, &batch_scratch);
  std::vector<uint64_t> degrees;
  (void)cg.DegreeBatch(nodes, &degrees, &batch_scratch);
  (void)cg.Materialize();
}

TEST(PagedCorruptionMatrix, EveryTruncationIsAnErrorNeverACrash) {
  const std::string& buffer = RealPagedBuffer();
  ASSERT_GT(buffer.size(), 2u * storage::kMinPageSize);
  // Every strict prefix must fail at open: the header pins the exact
  // file length, so even page-aligned truncations are caught up front.
  for (size_t len = 0; len < buffer.size(); ++len) {
    StatusOr<CompressedGraph> opened =
        storage::OpenBuffer(buffer.substr(0, len));
    EXPECT_FALSE(opened.ok()) << "prefix of " << len << " bytes opened";
  }
}

TEST(PagedCorruptionMatrix, EveryBitFlipIsRejectedOrFailsAsStatus) {
  const std::string& buffer = RealPagedBuffer();
  size_t open_accepted = 0;
  size_t eager_accepted = 0;
  for (size_t i = 0; i < buffer.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = buffer;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));

      // Eager verification checksums every page at open, so no single
      // bit flip anywhere in the file survives it.
      storage::OpenOptions eager;
      eager.eager_verify = true;
      if (storage::OpenBuffer(flipped, eager).ok()) ++eager_accepted;

      // A lazy open only validates the header and page table; a flip in
      // a data page is caught by that page's checksum at query time and
      // must degrade to Status errors / empty answers, never a crash.
      StatusOr<CompressedGraph> opened =
          storage::OpenBuffer(std::move(flipped));
      if (opened.ok()) {
        ++open_accepted;
        ExpectNoCrashServing(opened.value());
      }
    }
  }
  EXPECT_EQ(eager_accepted, 0u);
  // Lazy opens accept flips beyond the header/page-table pages and
  // reject everything before them.
  EXPECT_LT(open_accepted, buffer.size() * 8);
}

TEST(PagedCorruptionMatrix, DataPageDamageSurfacesAsCorruptionStatus) {
  const std::string& buffer = RealPagedBuffer();
  // Flip one byte in the middle of the last page (deep in the record
  // stream): the lazy open succeeds, queries that touch the page fail
  // with Corruption, and the batch API reports it.
  std::string flipped = buffer;
  flipped[buffer.size() - storage::kMinPageSize / 2] ^= 0x10;
  StatusOr<CompressedGraph> opened = storage::OpenBuffer(std::move(flipped));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < opened.value().num_nodes(); ++v) nodes.push_back(v);
  BatchResult result;
  BatchScratch scratch;
  Status s = opened.value().NeighborsBatch(nodes, &result, &scratch);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kCorruption);
  EXPECT_EQ(result.size(), 0u);  // emptied, not half-filled

  // Materialization walks the whole record stream, so it must fail too —
  // and the failure is sticky, not a crash on retry.
  EXPECT_FALSE(opened.value().Materialize().ok());
  EXPECT_FALSE(opened.value().Materialize().ok());
  EXPECT_FALSE(opened.value().Verify(graph::Graph()).ok());
}

TEST(PagedCorruptionMatrix, ForgedHeaderCountsAreRejectedBeforeAllocating) {
  const std::string& good = RealPagedBuffer();
  // Rewriting header varints shifts field boundaries and breaks the
  // header checksum; every such forgery must die at open with a Status.
  // Target the first varint bytes after the magic (version, page size,
  // page count, leaf count, internal count, record bytes).
  for (size_t i = sizeof(storage::kPagedMagic);
       i < sizeof(storage::kPagedMagic) + 24; ++i) {
    for (uint8_t forged : {0x00, 0x7F, 0xFF}) {
      if (static_cast<uint8_t>(good[i]) == forged) continue;  // no-op forgery
      std::string bad = good;
      bad[i] = static_cast<char>(forged);
      StatusOr<CompressedGraph> opened = storage::OpenBuffer(std::move(bad));
      EXPECT_FALSE(opened.ok()) << "byte " << i << " forged to "
                                << static_cast<int>(forged);
    }
  }
}

TEST(PagedCorruptionMatrix, PageTableDamageIsRejectedAtOpen) {
  const std::string& good = RealPagedBuffer();
  // The page table starts at page 1; zeroing a data page's checksum
  // entry would disable verification of that page, so the table itself
  // is covered by a checksum in the (self-checksummed) header. Entries
  // 0 and 1 cover the header and the table (legitimately zero) — target
  // the data-page entries after them.
  for (size_t offset : {size_t{16}, size_t{24}, size_t{40}}) {
    std::string bad = good;
    for (int b = 0; b < 8; ++b) {
      bad[storage::kMinPageSize + offset + b] = '\0';
    }
    EXPECT_FALSE(storage::OpenBuffer(std::move(bad)).ok())
        << "zeroed page-table entry at offset " << offset;
  }
}

// --------------------------------------------------- query bounds checks
TEST(QueryBounds, OutOfRangeSingleQueriesYieldEmptyAnswers) {
  graph::Graph g = gen::ErdosRenyi(300, 1200, 17);
  Engine engine;
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  ASSERT_TRUE(compressed.ok());
  const CompressedGraph& cg = compressed.value();

  QueryScratch scratch;
  for (NodeId v : {cg.num_nodes(), cg.num_nodes() + 1,
                   NodeId{0x7FFFFFFF}, kInvalidId}) {
    EXPECT_TRUE(cg.Neighbors(v, &scratch).empty()) << v;
    EXPECT_EQ(cg.Degree(v, &scratch), 0u) << v;
    EXPECT_TRUE(cg.Neighbors(v).empty()) << v;  // thread-local overload
    EXPECT_EQ(cg.Degree(v), 0u) << v;
  }
  // In-range queries still work after the rejected ones (the scratch was
  // not poisoned).
  EXPECT_EQ(cg.Degree(0, &scratch), g.Degree(0));
}

TEST(QueryBounds, BatchWithAnyOutOfRangeIdIsInvalidArgument) {
  graph::Graph g = gen::ErdosRenyi(300, 1200, 18);
  Engine engine;
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  ASSERT_TRUE(compressed.ok());
  const CompressedGraph& cg = compressed.value();

  std::vector<NodeId> nodes = {1, 2, cg.num_nodes(), 3};
  BatchResult result;
  BatchScratch scratch;
  Status s = cg.NeighborsBatch(nodes, &result, &scratch);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  std::vector<uint64_t> degrees;
  EXPECT_EQ(cg.DegreeBatch(nodes, &degrees, &scratch).code(),
            Status::Code::kInvalidArgument);

  // The same batch minus the bad id succeeds and agrees with the graph.
  nodes[2] = 0;
  ASSERT_TRUE(cg.NeighborsBatch(nodes, &result, &scratch).ok());
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(result[i].size(), g.Degree(nodes[i]));
  }
}

}  // namespace
}  // namespace slugger
