// Graph algorithms on summaries must agree with the raw graph (§VIII-C).
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <set>

#include "algs/bfs.hpp"
#include "algs/dfs.hpp"
#include "algs/dijkstra.hpp"
#include "algs/pagerank.hpp"
#include "algs/summary_ops.hpp"
#include "algs/triangles.hpp"
#include "api/dynamic_graph.hpp"
#include "api/engine.hpp"
#include "core/slugger.hpp"
#include "gen/generators.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace slugger::algs {
namespace {

struct Instance {
  graph::Graph g;
  summary::SummaryGraph summary;
};

Instance MakeInstance(uint64_t seed) {
  gen::PlantedHierarchyOptions opt;
  opt.branching = 3;
  opt.depth = 2;
  opt.leaf_size = 7;
  opt.leaf_density = 0.9;
  opt.pair_link_prob = 0.5;
  opt.pair_link_decay = 0.4;
  opt.noise_density = 0.003;
  graph::Graph g = gen::PlantedHierarchy(opt, seed);
  core::SluggerConfig config;
  config.iterations = 10;
  config.seed = seed;
  core::SluggerResult r = core::Summarize(g, config);
  return {std::move(g), std::move(r.summary)};
}

class AlgsOnSummary : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgsOnSummary, BfsDistancesMatch) {
  Instance inst = MakeInstance(GetParam());
  for (NodeId start : {NodeId{0}, inst.g.num_nodes() / 2}) {
    EXPECT_EQ(BfsOnGraph(inst.g, start), BfsOnSummary(inst.summary, start));
  }
}

TEST_P(AlgsOnSummary, DfsVisitsSameComponent) {
  Instance inst = MakeInstance(GetParam());
  auto raw = DfsOnGraph(inst.g, 0);
  auto cmp = DfsOnSummary(inst.summary, 0);
  // Neighbor order differs between sources; compare visited sets.
  std::set<NodeId> raw_set(raw.begin(), raw.end());
  std::set<NodeId> cmp_set(cmp.begin(), cmp.end());
  EXPECT_EQ(raw_set, cmp_set);
}

TEST_P(AlgsOnSummary, PageRankMatches) {
  Instance inst = MakeInstance(GetParam());
  auto raw = PageRankOnGraph(inst.g, 0.85, 20);
  auto cmp = PageRankOnSummary(inst.summary, 0.85, 20);
  ASSERT_EQ(raw.size(), cmp.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    // The hierarchy-native path runs the same recurrence but sums block
    // contributions in a different order, so agreement is up to rounding,
    // not bitwise.
    EXPECT_NEAR(raw[i], cmp[i], 1e-9) << "node " << i;
  }
}

TEST_P(AlgsOnSummary, BatchedSourceAdjacencyMatchesRaw) {
  Instance inst = MakeInstance(GetParam());
  // A small block size forces several batch sweeps over one instance.
  BatchedSummarySource batched(inst.summary, 64);
  ASSERT_EQ(batched.num_nodes(), inst.g.num_nodes());
  for (NodeId u = 0; u < inst.g.num_nodes(); ++u) {
    std::span<const NodeId> got = batched.Neighbors(u);
    std::vector<NodeId> sorted(got.begin(), got.end());
    std::sort(sorted.begin(), sorted.end());
    std::span<const NodeId> want = inst.g.Neighbors(u);
    ASSERT_EQ(sorted, std::vector<NodeId>(want.begin(), want.end()))
        << "node " << u;
  }
}

TEST_P(AlgsOnSummary, PageRankBatchedMatchesRaw) {
  Instance inst = MakeInstance(GetParam());
  auto raw = PageRankOnGraph(inst.g, 0.85, 20);
  auto batched = PageRankOnSummaryBatched(inst.summary, 0.85, 20);
  ASSERT_EQ(raw.size(), batched.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(raw[i], batched[i], 1e-12) << "node " << i;
  }
}

TEST_P(AlgsOnSummary, DijkstraMatchesAndEqualsBfs) {
  Instance inst = MakeInstance(GetParam());
  NodeId start = 1;
  auto dij_raw = DijkstraOnGraph(inst.g, start);
  auto dij_sum = DijkstraOnSummary(inst.summary, start);
  auto bfs = BfsOnGraph(inst.g, start);
  ASSERT_EQ(dij_raw.size(), dij_sum.size());
  for (size_t i = 0; i < dij_raw.size(); ++i) {
    EXPECT_EQ(dij_raw[i], dij_sum[i]);
    uint64_t bfs_d = bfs[i] == kUnreached ? kInfDistance : bfs[i];
    EXPECT_EQ(dij_raw[i], bfs_d) << "unit-weight Dijkstra == BFS";
  }
}

TEST_P(AlgsOnSummary, TriangleCountsMatch) {
  Instance inst = MakeInstance(GetParam());
  EXPECT_EQ(TrianglesOnGraph(inst.g), TrianglesOnSummary(inst.summary));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgsOnSummary,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull));

// ---------------------------------------------------------------------
// Hierarchy-native agreement suite: PageRank / BFS / triangles computed
// directly on the summary (algs/summary_ops) must agree with the raw
// graph on structures the planted-hierarchy fixture does not cover —
// skewed RMAT and unstructured ER, where the summary keeps many flat
// superedges and signed corrections.

summary::SummaryGraph Summarize(const graph::Graph& g, uint64_t seed) {
  core::SluggerConfig config;
  config.iterations = 10;
  config.seed = seed;
  return core::Summarize(g, config).summary;
}

struct NamedGraph {
  const char* name;
  graph::Graph (*make)();
};

graph::Graph RmatGraph() { return gen::RMat(9, 4096, 0.57, 0.19, 0.19, 13); }
graph::Graph ErGraph() { return gen::ErdosRenyi(600, 2400, 17); }

class HierarchyNative : public ::testing::TestWithParam<NamedGraph> {};

TEST_P(HierarchyNative, PageRankAgreesWithRaw) {
  graph::Graph g = GetParam().make();
  summary::SummaryGraph s = Summarize(g, 5);
  auto raw = PageRankOnGraph(g, 0.85, 20);
  auto native = PageRankOnHierarchy(s, 0.85, 20);
  ASSERT_EQ(raw.size(), native.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(raw[i], native[i], 1e-9) << "node " << i;
  }
}

TEST_P(HierarchyNative, BfsAgreesWithRaw) {
  graph::Graph g = GetParam().make();
  summary::SummaryGraph s = Summarize(g, 5);
  for (NodeId start : {NodeId{0}, g.num_nodes() / 3, g.num_nodes() - 1}) {
    EXPECT_EQ(BfsOnGraph(g, start), BfsOnHierarchy(s, start))
        << "start " << start;
  }
}

TEST_P(HierarchyNative, TrianglesAgreeWithRaw) {
  graph::Graph g = GetParam().make();
  summary::SummaryGraph s = Summarize(g, 5);
  EXPECT_EQ(TrianglesOnGraph(g), TrianglesOnHierarchy(s));
}

TEST_P(HierarchyNative, DegreesAreExact) {
  graph::Graph g = GetParam().make();
  summary::SummaryGraph s = Summarize(g, 5);
  SummaryOps ops(s);
  SummaryOps::Scratch scratch;
  std::vector<int64_t> deg = ops.Degrees(&scratch);
  ASSERT_EQ(deg.size(), g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(deg[u], static_cast<int64_t>(g.Neighbors(u).size()))
        << "node " << u;
  }
}

TEST_P(HierarchyNative, PoolResultsMatchSerial) {
  graph::Graph g = GetParam().make();
  summary::SummaryGraph s = Summarize(g, 5);
  ThreadPool pool(4);
  // Integer passes are order-independent, so pooled triangles are exact;
  // pooled PageRank merges per-worker difference arrays in a fixed
  // order, so it is compared at rounding tolerance.
  EXPECT_EQ(TrianglesOnHierarchy(s), TrianglesOnHierarchy(s, &pool));
  auto serial = PageRankOnHierarchy(s, 0.85, 20);
  auto pooled = PageRankOnHierarchy(s, 0.85, 20, &pool);
  ASSERT_EQ(serial.size(), pooled.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i], pooled[i], 1e-12) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, HierarchyNative,
    ::testing::Values(NamedGraph{"rmat", RmatGraph}, NamedGraph{"er", ErGraph}),
    [](const ::testing::TestParamInfo<NamedGraph>& info) {
      return info.param.name;
    });

// Overlay-aware analytics: after random edits, the DynamicGraph's
// hierarchy-native results must equal decode-then-compute on the mutated
// graph — live, with the overlay entering as correction terms.
TEST(HierarchyNativeOverlay, DynamicGraphAnalyticsMatchDecode) {
  graph::Graph g = gen::ErdosRenyi(300, 1200, 23);
  EngineOptions options;
  options.config.iterations = 10;
  options.config.seed = 7;
  Engine engine(options);
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();

  DynamicGraphOptions dopt;
  dopt.auto_compact = false;  // keep every edit in the overlay
  DynamicGraph dg(std::move(compressed).value(), dopt);

  Rng rng(29);
  std::vector<EdgeEdit> edits;
  for (int i = 0; i < 200; ++i) {
    NodeId u = static_cast<NodeId>(rng.Below(g.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.Below(g.num_nodes()));
    if (u == v) continue;
    edits.push_back({u, v, rng.NextDouble() < 0.5 ? EditKind::kInsert
                                                  : EditKind::kDelete});
  }
  ASSERT_TRUE(dg.ApplyEdits(edits).ok());
  ASSERT_GT(dg.stats().corrections, 0u);

  graph::Graph mutated = dg.Decode();
  auto raw_pr = PageRankOnGraph(mutated, 0.85, 20);
  auto live_pr = dg.PageRank(0.85, 20);
  ASSERT_EQ(raw_pr.size(), live_pr.size());
  for (size_t i = 0; i < raw_pr.size(); ++i) {
    EXPECT_NEAR(raw_pr[i], live_pr[i], 1e-9) << "node " << i;
  }
  for (NodeId start : {NodeId{0}, g.num_nodes() / 2}) {
    EXPECT_EQ(BfsOnGraph(mutated, start), dg.Bfs(start)) << "start " << start;
  }
  EXPECT_EQ(TrianglesOnGraph(mutated), dg.Triangles());
  ThreadPool pool(4);
  EXPECT_EQ(TrianglesOnGraph(mutated), dg.Triangles(&pool));
}

TEST(HierarchyNativeFacade, CompressedGraphAnalytics) {
  graph::Graph g = gen::Caveman(8, 12, 0.1, 31);
  EngineOptions options;
  options.config.iterations = 10;
  options.config.seed = 7;
  Engine engine(options);
  StatusOr<CompressedGraph> compressed = engine.Summarize(g);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  const CompressedGraph& cg = compressed.value();

  EXPECT_EQ(TrianglesOnGraph(g), cg.Triangles());
  EXPECT_EQ(BfsOnGraph(g, 0), cg.Bfs(0));
  // Out-of-range start is absorbed, never UB: nothing is reachable.
  std::vector<uint32_t> dist = cg.Bfs(g.num_nodes() + 5);
  EXPECT_TRUE(std::all_of(dist.begin(), dist.end(),
                          [](uint32_t d) { return d == kUnreached; }));
  auto raw = PageRankOnGraph(g, 0.85, 20);
  auto facade = cg.PageRank(0.85, 20);
  ASSERT_EQ(raw.size(), facade.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(raw[i], facade[i], 1e-9) << "node " << i;
  }
}

TEST(HierarchyNativeEdgeCases, EmptyAndIsolated) {
  // Empty summary: no nodes at all.
  summary::SummaryGraph empty(0);
  EXPECT_EQ(TrianglesOnHierarchy(empty), 0u);
  EXPECT_TRUE(PageRankOnHierarchy(empty, 0.85, 5).empty());

  // Edgeless graph: every node isolated; PageRank is uniform teleport,
  // BFS reaches only the start.
  graph::Graph g = graph::Graph::FromEdges(5, {});
  summary::SummaryGraph s = Summarize(g, 3);
  EXPECT_EQ(TrianglesOnHierarchy(s), 0u);
  auto pr = PageRankOnHierarchy(s, 0.85, 5);
  ASSERT_EQ(pr.size(), 5u);
  for (double v : pr) EXPECT_NEAR(v, 0.2, 1e-12);
  auto dist = BfsOnHierarchy(s, 2);
  EXPECT_EQ(dist[2], 0u);
  for (NodeId u : {0u, 1u, 3u, 4u}) EXPECT_EQ(dist[u], kUnreached);
}

TEST(Algs, KnownTriangleCount) {
  // K4 has 4 triangles.
  graph::Graph g = graph::Graph::FromEdges(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(TrianglesOnGraph(g), 4u);
}

TEST(Algs, BfsUnreachableMarked) {
  graph::Graph g = graph::Graph::FromEdges(4, {{0, 1}});
  auto dist = BfsOnGraph(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreached);
}

TEST(Algs, PageRankSumsToOne) {
  graph::Graph g = gen::ErdosRenyi(100, 300, 3);
  auto pr = PageRankOnGraph(g, 0.85, 30);
  double sum = 0;
  for (double v : pr) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace slugger::algs
