// Graph algorithms on summaries must agree with the raw graph (§VIII-C).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "algs/bfs.hpp"
#include "algs/dfs.hpp"
#include "algs/dijkstra.hpp"
#include "algs/pagerank.hpp"
#include "algs/triangles.hpp"
#include "core/slugger.hpp"
#include "gen/generators.hpp"

namespace slugger::algs {
namespace {

struct Instance {
  graph::Graph g;
  summary::SummaryGraph summary;
};

Instance MakeInstance(uint64_t seed) {
  gen::PlantedHierarchyOptions opt;
  opt.branching = 3;
  opt.depth = 2;
  opt.leaf_size = 7;
  opt.leaf_density = 0.9;
  opt.pair_link_prob = 0.5;
  opt.pair_link_decay = 0.4;
  opt.noise_density = 0.003;
  graph::Graph g = gen::PlantedHierarchy(opt, seed);
  core::SluggerConfig config;
  config.iterations = 10;
  config.seed = seed;
  core::SluggerResult r = core::Summarize(g, config);
  return {std::move(g), std::move(r.summary)};
}

class AlgsOnSummary : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgsOnSummary, BfsDistancesMatch) {
  Instance inst = MakeInstance(GetParam());
  for (NodeId start : {NodeId{0}, inst.g.num_nodes() / 2}) {
    EXPECT_EQ(BfsOnGraph(inst.g, start), BfsOnSummary(inst.summary, start));
  }
}

TEST_P(AlgsOnSummary, DfsVisitsSameComponent) {
  Instance inst = MakeInstance(GetParam());
  auto raw = DfsOnGraph(inst.g, 0);
  auto cmp = DfsOnSummary(inst.summary, 0);
  // Neighbor order differs between sources; compare visited sets.
  std::set<NodeId> raw_set(raw.begin(), raw.end());
  std::set<NodeId> cmp_set(cmp.begin(), cmp.end());
  EXPECT_EQ(raw_set, cmp_set);
}

TEST_P(AlgsOnSummary, PageRankMatches) {
  Instance inst = MakeInstance(GetParam());
  auto raw = PageRankOnGraph(inst.g, 0.85, 20);
  auto cmp = PageRankOnSummary(inst.summary, 0.85, 20);
  ASSERT_EQ(raw.size(), cmp.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(raw[i], cmp[i], 1e-12) << "node " << i;
  }
}

TEST_P(AlgsOnSummary, BatchedSourceAdjacencyMatchesRaw) {
  Instance inst = MakeInstance(GetParam());
  // A small block size forces several batch sweeps over one instance.
  BatchedSummarySource batched(inst.summary, 64);
  ASSERT_EQ(batched.num_nodes(), inst.g.num_nodes());
  for (NodeId u = 0; u < inst.g.num_nodes(); ++u) {
    std::span<const NodeId> got = batched.Neighbors(u);
    std::vector<NodeId> sorted(got.begin(), got.end());
    std::sort(sorted.begin(), sorted.end());
    std::span<const NodeId> want = inst.g.Neighbors(u);
    ASSERT_EQ(sorted, std::vector<NodeId>(want.begin(), want.end()))
        << "node " << u;
  }
}

TEST_P(AlgsOnSummary, PageRankBatchedMatchesRaw) {
  Instance inst = MakeInstance(GetParam());
  auto raw = PageRankOnGraph(inst.g, 0.85, 20);
  auto batched = PageRankOnSummaryBatched(inst.summary, 0.85, 20);
  ASSERT_EQ(raw.size(), batched.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(raw[i], batched[i], 1e-12) << "node " << i;
  }
}

TEST_P(AlgsOnSummary, DijkstraMatchesAndEqualsBfs) {
  Instance inst = MakeInstance(GetParam());
  NodeId start = 1;
  auto dij_raw = DijkstraOnGraph(inst.g, start);
  auto dij_sum = DijkstraOnSummary(inst.summary, start);
  auto bfs = BfsOnGraph(inst.g, start);
  ASSERT_EQ(dij_raw.size(), dij_sum.size());
  for (size_t i = 0; i < dij_raw.size(); ++i) {
    EXPECT_EQ(dij_raw[i], dij_sum[i]);
    uint64_t bfs_d = bfs[i] == kUnreached ? kInfDistance : bfs[i];
    EXPECT_EQ(dij_raw[i], bfs_d) << "unit-weight Dijkstra == BFS";
  }
}

TEST_P(AlgsOnSummary, TriangleCountsMatch) {
  Instance inst = MakeInstance(GetParam());
  EXPECT_EQ(TrianglesOnGraph(inst.g), TrianglesOnSummary(inst.summary));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgsOnSummary,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull));

TEST(Algs, KnownTriangleCount) {
  // K4 has 4 triangles.
  graph::Graph g = graph::Graph::FromEdges(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(TrianglesOnGraph(g), 4u);
}

TEST(Algs, BfsUnreachableMarked) {
  graph::Graph g = graph::Graph::FromEdges(4, {{0, 1}});
  auto dist = BfsOnGraph(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreached);
}

TEST(Algs, PageRankSumsToOne) {
  graph::Graph g = gen::ErdosRenyi(100, 300, 3);
  auto pr = PageRankOnGraph(g, 0.85, 30);
  double sum = 0;
  for (double v : pr) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace slugger::algs
